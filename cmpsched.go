// Package cmpsched reproduces "Scheduling Threads for Constructive Cache
// Sharing on CMPs" (Chen et al., SPAA 2007) as a Go library.
//
// The package is a thin public facade over the internal packages:
//
//   - computation DAGs and memory-reference streams (internal/dag,
//     internal/refs),
//   - the schedulers, constructed by name through a run-time registry
//     (RegisterScheduler / NewScheduler / SchedulerNames): the paper's
//     Parallel Depth First (PDF) and Work Stealing (WS) pair, a FIFO
//     ablation baseline, a space-bounded scheduler that pins tasks to the
//     smallest cache level or L2 slice fitting their profiled working set,
//     and locality-guided work-stealing variants (internal/sched),
//   - an event-driven CMP simulator with private L1s, a pluggable L2
//     topology (shared, per-core private or clustered slices) and a
//     bandwidth-limited memory system every slice arbitrates for
//     (internal/cmpsim, internal/cache, internal/memsys),
//   - the paper's CMP configuration tables (internal/config),
//   - the benchmark workloads: Mergesort, Hash Join, LU, Matrix Multiply,
//     Quicksort and a Heat stencil (internal/workload), plus the irregular
//     graph kernels BFS, SSSP, PageRank, triangle counting, LDD
//     connectivity, k-core peeling, maximal independent set and maximal
//     matching over generated uniform/grid/RMAT graphs, walkable from a
//     flat or byte-compressed CSR (internal/graph),
//   - the LruTree one-pass working-set profiler, the SetAssoc baseline and
//     the automatic task-coarsening pass (internal/profile,
//     internal/coarsen),
//   - the zero-cost-when-off observability layer: a task-lifecycle tracer
//     with Chrome trace-event export, a metrics registry and a live
//     progress reporter (internal/obs),
//   - the design-space sweep engine — content-addressed result caching over
//     a bounded worker pool — and the sweep service that shares one engine
//     between concurrent HTTP clients with single-flight deduplication and
//     streaming delivery (internal/sweep, internal/sweepsvc, cmd/sweepd,
//     cmd/sweepctl),
//   - and the experiment harness that regenerates every table and figure of
//     the paper's evaluation (internal/experiments).
//
// # Quick start
//
//	d, _, err := cmpsched.BuildWorkload("mergesort")
//	if err != nil { ... }
//	cfg := cmpsched.DefaultConfig(8).Scaled(cmpsched.DefaultScale)
//	seq, _ := cmpsched.RunSequential(d, cfg)
//	pdf, _ := cmpsched.Run(d, cmpsched.NewPDF(), cfg)
//	fmt.Printf("speedup %.2f, %.3f L2 misses per 1000 instructions\n",
//		pdf.Speedup(seq), pdf.L2MissesPerKiloInstr())
//
// See the examples/ directory and cmd/experiments for complete programs.
package cmpsched

import (
	"io"

	"cmpsched/internal/cache"
	"cmpsched/internal/cmpsim"
	"cmpsched/internal/coarsen"
	"cmpsched/internal/config"
	"cmpsched/internal/dag"
	"cmpsched/internal/experiments"
	"cmpsched/internal/obs"
	"cmpsched/internal/profile"
	"cmpsched/internal/sched"
	"cmpsched/internal/sweep"
	"cmpsched/internal/sweepsvc"
	"cmpsched/internal/taskgroup"
	"cmpsched/internal/workload"
)

// Re-exported core types.
type (
	// DAG is a computation DAG of tasks with dependence edges and
	// per-task memory-reference streams.
	DAG = dag.DAG
	// Task is one node of a computation DAG.
	Task = dag.Task
	// TaskID identifies a task within a DAG.
	TaskID = dag.TaskID
	// GroupTree is the hierarchical task-group tree used by the profiler
	// and the coarsening pass.
	GroupTree = taskgroup.Tree
	// GroupNode is one task group.
	GroupNode = taskgroup.Node

	// Scheduler decides which ready task each idle core runs next.
	Scheduler = sched.Scheduler
	// SchedulerFactory constructs a fresh scheduler instance; it is what
	// RegisterScheduler records in the scheduler registry.
	SchedulerFactory = sched.Factory
	// SchedMachine describes the cache machine a scheduler is placing
	// tasks onto (core count, L1 and L2-slice capacities, core-to-slice
	// map); the simulator hands it to schedulers implementing
	// SchedMachineAware before each run.
	SchedMachine = sched.Machine
	// SchedMachineAware is implemented by schedulers whose placement
	// decisions depend on the cache machine, e.g. the space-bounded
	// scheduler.
	SchedMachineAware = sched.MachineAware
	// StealPolicy selects how an idle locality-guided WS core picks its
	// steal victim (StealNearest, StealOldest).
	StealPolicy = sched.StealPolicy

	// CMPConfig is a machine configuration (cores, caches, memory).
	CMPConfig = config.CMP
	// CacheTopology describes how the L2 capacity is organised: one shared
	// cache (the paper's machine), per-core private slices, or clustered
	// slices of k cores each.  See SharedTopology, PrivateTopology,
	// ClusteredTopology and CMPConfig.WithTopology.
	CacheTopology = cache.Topology
	// SimResult summarises one simulation run.
	SimResult = cmpsim.Result
	// SimOptions controls a simulation run.
	SimOptions = cmpsim.Options

	// Workload builds a benchmark's DAG and group tree.
	Workload = workload.Workload
	// MergesortConfig parameterises the Mergesort benchmark.
	MergesortConfig = workload.MergesortConfig
	// HashJoinConfig parameterises the Hash Join benchmark.
	HashJoinConfig = workload.HashJoinConfig
	// LUConfig parameterises the LU-factorisation benchmark.
	LUConfig = workload.LUConfig
	// MatMulConfig parameterises the blocked matrix-multiply benchmark.
	MatMulConfig = workload.MatMulConfig
	// CholeskyConfig parameterises the blocked Cholesky benchmark.
	CholeskyConfig = workload.CholeskyConfig
	// QuicksortConfig parameterises the parallel quicksort benchmark.
	QuicksortConfig = workload.QuicksortConfig
	// HeatConfig parameterises the Jacobi-stencil benchmark.
	HeatConfig = workload.HeatConfig

	// GraphShape selects the input graph (family, size, degree, seed) and
	// task grain shared by the irregular graph kernels.
	GraphShape = workload.GraphShape
	// BFSConfig parameterises the level-synchronous BFS kernel.
	BFSConfig = workload.BFSConfig
	// SSSPConfig parameterises the Bellman-Ford shortest-paths kernel.
	SSSPConfig = workload.SSSPConfig
	// PageRankConfig parameterises the PageRank power-iteration kernel.
	PageRankConfig = workload.PageRankConfig
	// TrianglesConfig parameterises the triangle-counting kernel.
	TrianglesConfig = workload.TrianglesConfig
	// ConnectivityConfig parameterises the low-diameter-decomposition
	// connected-components kernel.
	ConnectivityConfig = workload.ConnectivityConfig
	// KCoreConfig parameterises the bucketed-peeling k-core kernel.
	KCoreConfig = workload.KCoreConfig
	// MISConfig parameterises the maximal-independent-set kernel.
	MISConfig = workload.MISConfig
	// MatchingConfig parameterises the maximal-matching kernel.
	MatchingConfig = workload.MatchingConfig

	// ProfileConfig configures a working-set profiling pass.
	ProfileConfig = profile.Config
	// Profile is the result of an LruTree profiling pass.
	Profile = profile.Profile
	// GroupStats summarises one task group's cache behaviour.
	GroupStats = profile.GroupStats

	// CoarsenParams identifies the CMP configuration an automatic
	// task-coarsening decision targets.
	CoarsenParams = coarsen.Params
	// CoarsenSelection is the outcome of a coarsening pass: the groups to
	// run sequentially and the parallelization-table thresholds.
	CoarsenSelection = coarsen.Selection

	// ExperimentOptions controls the experiment harness.
	ExperimentOptions = experiments.Options

	// SweepSpec declares a design-space sweep: the cross product of
	// workloads, schedulers and CMP configurations (see internal/sweep).
	SweepSpec = sweep.Spec
	// SweepJob is one simulation of a sweep.
	SweepJob = sweep.Job
	// SweepKey is the content address of one simulation run.
	SweepKey = sweep.Key
	// SweepResult is the outcome of one sweep job.
	SweepResult = sweep.Result
	// SweepEngine runs job lists on a bounded worker pool with
	// deterministic result ordering.
	SweepEngine = sweep.Engine
	// SweepEngineOptions configure a SweepEngine.
	SweepEngineOptions = sweep.EngineOptions
	// SweepCache memoises finished runs by content address.
	SweepCache = sweep.Cache
	// SweepSummaryRow aggregates one (workload, scheduler) series.
	SweepSummaryRow = sweep.SummaryRow
	// SweepWorkloadFactory builds workloads for sweep specifications; see
	// ExperimentOptions.WorkloadFactory for the paper-sized inputs.
	SweepWorkloadFactory = sweep.WorkloadFactory
	// SweepLeaseOptions tune the crash-safe flight leases that make a disk
	// cache directory shareable between processes (TTL before a dead
	// holder's lease is taken over, heartbeat and poll cadence; see
	// NewSweepSharedDiskCache).
	SweepLeaseOptions = sweep.LeaseOptions

	// SweepService shares one sweep engine between concurrent clients with
	// cross-client single-flight deduplication, admission control and
	// streaming per-job delivery (the core of cmd/sweepd; see
	// internal/sweepsvc).
	SweepService = sweepsvc.Service
	// SweepServiceOptions configure a SweepService (worker count, queue and
	// sweep bounds, cache, metrics).
	SweepServiceOptions = sweepsvc.Options
	// SweepHandler is the HTTP/JSON binding of a SweepService: submission
	// with NDJSON/SSE result streaming, status, cancellation, metrics and
	// health endpoints.
	SweepHandler = sweepsvc.Handler
	// SweepRequest is the strict wire encoding of one sweep submission — a
	// declarative grid or an explicit point list — expanding to the same
	// cache keys the CLI produces.
	SweepRequest = sweepsvc.Request
	// SweepPoint is one explicit design-space point of a SweepRequest.
	SweepPoint = sweepsvc.Point
	// SweepEvent is one message of a sweep's result stream (accepted,
	// result, done, cancelled).
	SweepEvent = sweepsvc.Event

	// Tracer records task-lifecycle events (spawn, ready, run, steal,
	// migrate, pin, finish) stamped with simulated cycles; attach one via
	// SimOptions.Tracer.  A nil *Tracer is a valid no-op sink: every method
	// is nil-receiver-safe, so instrumented code never branches on "is
	// tracing on".
	Tracer = obs.Tracer
	// TraceEvent is one recorded lifecycle event.
	TraceEvent = obs.Event
	// TraceEventKind discriminates lifecycle events (spawn, ready, run,
	// steal, migrate, pin, finish).
	TraceEventKind = obs.EventKind
	// ChromeTraceConfig controls Chrome trace-event JSON export
	// (Tracer.WriteChromeTrace): core count and an optional task-name
	// resolver for human-readable duration rows.
	ChromeTraceConfig = obs.ChromeTraceConfig
	// MetricsRegistry is a named collection of counters, gauges, histograms
	// and sharded counters with snapshot-on-demand export; attach one via
	// SimOptions.Metrics or SweepEngineOptions.Metrics.  A nil *Registry
	// hands out nil instruments whose methods are no-ops.
	MetricsRegistry = obs.Registry
	// MetricSample is one name/value pair of a MetricsRegistry snapshot.
	MetricSample = obs.Sample
	// SweepProgress is a live line-oriented progress reporter for sweep
	// runs (the -progress flag of cmd/sweep).
	SweepProgress = obs.Progress
)

// DefaultScale is the factor by which cache capacities and workload inputs
// are divided in the repository's default experiment runs (see DESIGN.md).
const DefaultScale = config.DefaultScale

// StealNearest and StealOldest are the steal policies NewLocalityWS
// accepts: nearest-slice-first stealing and globally-oldest-task stealing.
const (
	StealNearest = sched.StealNearest
	StealOldest  = sched.StealOldest
)

// NewPDF returns a Parallel Depth First scheduler.
func NewPDF() Scheduler { return sched.NewPDF() }

// NewWS returns a Work Stealing scheduler.
func NewWS() Scheduler { return sched.NewWS() }

// NewSpaceBounded returns the space-bounded scheduler ("sb"): tasks are
// annotated with working-set estimates from the LruTree profiler and pinned
// to the smallest cache level or L2 slice whose capacity fits them.
func NewSpaceBounded() Scheduler { return sched.NewSpaceBounded() }

// NewLocalityWS returns a Work Stealing scheduler with a locality-guided
// steal policy ("ws:nearest", "ws:oldest").
func NewLocalityWS(policy StealPolicy) Scheduler { return sched.NewLocalityWS(policy) }

// NewScheduler constructs a registered scheduler by canonical name ("pdf",
// "ws", "fifo", "sb", "ws:nearest", "ws:oldest", or any name added through
// RegisterScheduler); see SchedulerNames.
func NewScheduler(name string) (Scheduler, error) { return sched.New(name) }

// SchedulerNames lists the registered schedulers in sorted order.
func SchedulerNames() []string { return sched.Names() }

// RegisterScheduler adds a named scheduler factory to the registry
// NewScheduler and sweep specifications resolve names against.  Names are
// canonical lower-case spellings as they appear in sweep content-address
// keys; duplicates panic.
func RegisterScheduler(name string, f SchedulerFactory) { sched.Register(name, f) }

// SharedTopology returns the shared-L2 topology (the paper's machine, and
// the default for every configuration).
func SharedTopology() CacheTopology { return cache.Shared() }

// PrivateTopology returns the private-L2-per-core topology: the total L2
// capacity split into one slice per core.
func PrivateTopology() CacheTopology { return cache.Private() }

// ClusteredTopology returns the topology with k cores sharing each L2
// slice; k=1 degenerates to private and k>=P to shared.
func ClusteredTopology(k int) CacheTopology { return cache.Clustered(k) }

// ParseTopology decodes the canonical topology encodings "shared",
// "private" and "clustered:<k>" (the forms accepted by the -topology flags
// of cmd/cmpsim and cmd/sweep).
func ParseTopology(s string) (CacheTopology, error) { return cache.ParseTopology(s) }

// DefaultConfig returns the Table 2 (scaling-technology) configuration with
// the given core count (1, 2, 4, 8, 16 or 32). It panics on unknown counts;
// use config.Default via the internal package for error handling.
func DefaultConfig(cores int) CMPConfig { return config.MustDefault(cores) }

// SingleTech45Config returns the Table 3 (45 nm single-technology)
// configuration with the given core count.
func SingleTech45Config(cores int) CMPConfig { return config.MustSingleTech45(cores) }

// DefaultConfigs returns every Table 2 configuration.
func DefaultConfigs() []CMPConfig { return config.Defaults() }

// SingleTech45Configs returns every Table 3 configuration.
func SingleTech45Configs() []CMPConfig { return config.SingleTech45All() }

// Run simulates the DAG on the configuration under the scheduler.
func Run(d *DAG, s Scheduler, cfg CMPConfig) (*SimResult, error) {
	return cmpsim.Run(d, s, cfg)
}

// RunWithOptions simulates with explicit options.
func RunWithOptions(d *DAG, s Scheduler, cfg CMPConfig, opts SimOptions) (*SimResult, error) {
	return cmpsim.RunWithOptions(d, s, cfg, opts)
}

// RunSequential simulates the sequential execution of the DAG on one core of
// the configuration — the baseline the paper's speedups are measured
// against.
func RunSequential(d *DAG, cfg CMPConfig) (*SimResult, error) {
	return cmpsim.RunSequential(d, cfg)
}

// BuildWorkload builds a benchmark by name with its default (scaled)
// parameters; see WorkloadNames for the registered names (the regular suite
// plus the graph kernels "bfs", "sssp", "pagerank" and "triangles").
func BuildWorkload(name string) (*DAG, *GroupTree, error) {
	w, err := workload.New(name)
	if err != nil {
		return nil, nil, err
	}
	return w.Build()
}

// NewMergesort, NewHashJoin, NewLU, NewMatMul, NewQuicksort and NewHeat
// construct benchmarks with explicit parameters (zero fields take defaults).
func NewMergesort(cfg MergesortConfig) Workload { return workload.NewMergesort(cfg) }

// NewHashJoin constructs the hash-join benchmark.
func NewHashJoin(cfg HashJoinConfig) Workload { return workload.NewHashJoin(cfg) }

// HashJoinConfigForL2 sizes hash-join sub-partitions for a given shared-L2
// capacity, the way a database system would.
func HashJoinConfigForL2(l2Bytes int64) HashJoinConfig {
	return workload.HashJoinConfigForL2(l2Bytes)
}

// NewLU constructs the LU-factorisation benchmark.
func NewLU(cfg LUConfig) Workload { return workload.NewLU(cfg) }

// NewMatMul constructs the blocked matrix-multiply benchmark.
func NewMatMul(cfg MatMulConfig) Workload { return workload.NewMatMul(cfg) }

// NewCholesky constructs the blocked Cholesky-factorisation benchmark.
func NewCholesky(cfg CholeskyConfig) Workload { return workload.NewCholesky(cfg) }

// NewQuicksort constructs the parallel quicksort benchmark.
func NewQuicksort(cfg QuicksortConfig) Workload { return workload.NewQuicksort(cfg) }

// NewHeat constructs the Jacobi-stencil benchmark.
func NewHeat(cfg HeatConfig) Workload { return workload.NewHeat(cfg) }

// NewBFS constructs the level-synchronous breadth-first-search benchmark on
// a generated graph (zero fields take defaults: a uniform random graph of
// 2^15 vertices, average degree 8).
func NewBFS(cfg BFSConfig) Workload { return workload.NewBFS(cfg) }

// NewSSSP constructs the round-based Bellman-Ford shortest-paths benchmark.
func NewSSSP(cfg SSSPConfig) Workload { return workload.NewSSSP(cfg) }

// NewPageRank constructs the PageRank power-iteration benchmark.
func NewPageRank(cfg PageRankConfig) Workload { return workload.NewPageRank(cfg) }

// NewTriangles constructs the triangle-counting benchmark.
func NewTriangles(cfg TrianglesConfig) Workload { return workload.NewTriangles(cfg) }

// NewConnectivity constructs the low-diameter-decomposition
// connected-components benchmark.
func NewConnectivity(cfg ConnectivityConfig) Workload { return workload.NewConnectivity(cfg) }

// NewKCore constructs the bucketed-peeling k-core benchmark.
func NewKCore(cfg KCoreConfig) Workload { return workload.NewKCore(cfg) }

// NewMIS constructs the random-priority maximal-independent-set benchmark.
func NewMIS(cfg MISConfig) Workload { return workload.NewMIS(cfg) }

// NewMatching constructs the random-priority maximal-matching benchmark.
func NewMatching(cfg MatchingConfig) Workload { return workload.NewMatching(cfg) }

// WorkloadNames lists the available benchmarks.
func WorkloadNames() []string { return workload.Names() }

// RegisterWorkload adds a named workload factory to the registry BuildWorkload
// and sweep specifications resolve names against.
func RegisterWorkload(name string, f func() Workload) { workload.Register(name, f) }

// ProfileWorkingSets runs the one-pass LruTree profiler over the DAG's
// sequential trace.
func ProfileWorkingSets(d *DAG, cfg ProfileConfig) (*Profile, error) {
	return profile.NewLruTree(cfg).ProfileDAG(d)
}

// DefaultProfileCacheSizes returns a convenient ladder of cache sizes for
// profiling scaled configurations.
func DefaultProfileCacheSizes() []int64 { return profile.DefaultCacheSizes() }

// CoarsenTasks applies the paper's stop criterion (W ≤ K·C/(2P)) to a
// profiled task-group tree, returning the groups to run sequentially and the
// parallelization-table thresholds for the configuration.
func CoarsenTasks(p *Profile, tree *GroupTree, params CoarsenParams) (*CoarsenSelection, error) {
	return coarsen.Coarsen(p, tree, params)
}

// CollapseDAG applies a coarsening selection to a DAG, merging each selected
// group into a single sequential task.
func CollapseDAG(d *DAG, tree *GroupTree, sel *CoarsenSelection) (*DAG, error) {
	return coarsen.CollapseDAG(d, tree, sel)
}

// NewTracer returns an empty task-lifecycle tracer.
func NewTracer() *Tracer { return obs.NewTracer() }

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewSweepProgress returns a progress reporter writing to w, labelled label,
// expecting total steps.
func NewSweepProgress(w io.Writer, label string, total int) *SweepProgress {
	return obs.NewProgress(w, label, total)
}

// ValidateChromeTrace structurally checks an exported Chrome trace-event
// document: well-formed JSON, matched begin/end nesting per thread row, and
// the presence of every required lifecycle stage (cmd/tracecheck wraps it).
func ValidateChromeTrace(data []byte, required []string) error {
	return obs.ValidateChromeTrace(data, required)
}

// NewSweepEngine returns a parallel sweep engine (see internal/sweep).
func NewSweepEngine(opts SweepEngineOptions) *SweepEngine { return sweep.NewEngine(opts) }

// NewSweepMemoryCache returns an in-memory sweep result cache.
func NewSweepMemoryCache() SweepCache { return sweep.NewMemoryCache() }

// NewSweepDiskCache returns a sweep result cache persisted under dir, so
// repeated sweeps across processes are near-instant.
func NewSweepDiskCache(dir string) (SweepCache, error) { return sweep.NewDiskCache(dir) }

// NewSweepSharedDiskCache returns a disk-backed sweep cache that is safe to
// share between concurrent processes (a sweepd fleet, CLI runs): per-key
// crash-safe flight leases make each distinct simulation run at most once
// across every process on the directory, with stale leases from crashed
// holders fenced and taken over after opts.TTL.
func NewSweepSharedDiskCache(dir string, opts SweepLeaseOptions) (SweepCache, error) {
	dc, err := sweep.NewDiskCache(dir)
	if err != nil {
		return nil, err
	}
	return sweep.NewLeasedCache(dc, opts), nil
}

// RunSweep expands the spec and executes it with the given engine options.
func RunSweep(spec SweepSpec, opts SweepEngineOptions) ([]SweepResult, error) {
	return spec.Run(opts)
}

// NewSweepService returns a sweep service sharing one engine between
// concurrent clients (see SweepService); drain it with its Drain method
// before discarding it.
func NewSweepService(opts SweepServiceOptions) *SweepService { return sweepsvc.NewService(opts) }

// NewSweepHandler binds a sweep service to its HTTP/JSON surface (the
// handler cmd/sweepd serves).
func NewSweepHandler(svc *SweepService) *SweepHandler { return sweepsvc.NewHandler(svc) }

// WriteSweepCSV, WriteSweepJSON and ReadSweepJSON export and import sweep
// results (JSON round-trips losslessly).
var (
	WriteSweepCSV  = sweep.WriteCSV
	WriteSweepJSON = sweep.WriteJSON
	ReadSweepJSON  = sweep.ReadJSON
)

// Experiment runners: each regenerates one of the paper's tables or figures
// and returns a result whose String method prints the corresponding rows.
var (
	Figure1            = experiments.Figure1
	Figure2            = experiments.Figure2
	Figure3            = experiments.Figure3
	Figure4            = experiments.Figure4
	Figure5            = experiments.Figure5
	Figure6            = experiments.Figure6
	Figure8            = experiments.Figure8
	GranularityStudy   = experiments.Granularity
	ProfilerComparison = experiments.ProfilerComparison
	// TopologyComparison evaluates the paper's shared-vs-private premise:
	// PDF vs WS with the L2 organised as shared, clustered and per-core
	// private slices (not a paper figure; see EXPERIMENTS.md).
	TopologyComparison = experiments.TopologyComparison
	// SchedulerComparison widens the scheduler axis itself: every
	// registered comparison scheduler (pdf, ws, ws:nearest, sb) across
	// shared, clustered and private topologies on mergesort, hashjoin and
	// BFS (not a paper figure; see EXPERIMENTS.md).
	SchedulerComparison = experiments.SchedulerComparison
)
