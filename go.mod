module cmpsched

go 1.24
