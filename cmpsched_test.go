package cmpsched

import "testing"

// TestFacadeEndToEnd drives the public API the way the quick-start example
// does: build a workload, simulate it sequentially and under both
// schedulers, profile it and coarsen it.
func TestFacadeEndToEnd(t *testing.T) {
	ms := NewMergesort(MergesortConfig{Elements: 1 << 14, TaskWorkingSetBytes: 4 << 10})
	d, tree, err := ms.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	cfg := DefaultConfig(8).Scaled(DefaultScale * 16)
	seq, err := RunSequential(d, cfg)
	if err != nil {
		t.Fatalf("RunSequential: %v", err)
	}
	pdf, err := Run(d, NewPDF(), cfg)
	if err != nil {
		t.Fatalf("Run pdf: %v", err)
	}
	ws, err := Run(d, NewWS(), cfg)
	if err != nil {
		t.Fatalf("Run ws: %v", err)
	}
	if pdf.Speedup(seq) <= 1 || ws.Speedup(seq) <= 1 {
		t.Fatalf("parallel runs should beat sequential: pdf %.2f ws %.2f", pdf.Speedup(seq), ws.Speedup(seq))
	}
	if pdf.L2.Misses > ws.L2.Misses {
		t.Fatalf("PDF should not incur more misses than WS: %d vs %d", pdf.L2.Misses, ws.L2.Misses)
	}

	prof, err := ProfileWorkingSets(d, ProfileConfig{LineBytes: 128, CacheSizes: DefaultProfileCacheSizes()})
	if err != nil {
		t.Fatalf("ProfileWorkingSets: %v", err)
	}
	sel, err := CoarsenTasks(prof, tree, CoarsenParams{CacheSizeBytes: cfg.L2.SizeBytes, Cores: cfg.Cores})
	if err != nil {
		t.Fatalf("CoarsenTasks: %v", err)
	}
	coarse, err := CollapseDAG(d, tree, sel)
	if err != nil {
		t.Fatalf("CollapseDAG: %v", err)
	}
	if coarse.NumTasks() > d.NumTasks() {
		t.Fatalf("coarsening increased task count")
	}
	if _, err := Run(coarse, NewPDF(), cfg); err != nil {
		t.Fatalf("running coarsened DAG: %v", err)
	}
}

func TestFacadeConstructors(t *testing.T) {
	// The regular suite plus the eight graph kernels.
	if len(WorkloadNames()) != 15 {
		t.Fatalf("WorkloadNames = %v", WorkloadNames())
	}
	for _, name := range WorkloadNames() {
		if _, _, err := BuildWorkload(name); err != nil {
			t.Fatalf("BuildWorkload(%q): %v", name, err)
		}
	}
	if _, _, err := BuildWorkload("bogus"); err == nil {
		t.Fatalf("unknown workload accepted")
	}
	if _, err := NewScheduler("pdf"); err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	if _, err := NewScheduler("bogus"); err == nil {
		t.Fatalf("unknown scheduler accepted")
	}
	if len(DefaultConfigs()) != 6 || len(SingleTech45Configs()) != 14 {
		t.Fatalf("configuration tables wrong sizes")
	}
	if SingleTech45Config(26).L2.SizeBytes >= SingleTech45Config(1).L2.SizeBytes {
		t.Fatalf("45nm trade-off missing")
	}
	hj := HashJoinConfigForL2(1 << 20)
	if hj.SubPartitionBytes <= 0 {
		t.Fatalf("HashJoinConfigForL2 returned empty config")
	}
	for _, w := range []Workload{
		NewHashJoin(HashJoinConfig{}), NewLU(LUConfig{}), NewMatMul(MatMulConfig{}),
		NewCholesky(CholeskyConfig{}), NewQuicksort(QuicksortConfig{}), NewHeat(HeatConfig{}),
	} {
		if w.Name() == "" {
			t.Fatalf("workload missing name")
		}
	}
}
