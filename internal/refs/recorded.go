package refs

import (
	"sync"

	"cmpsched/internal/prng"
)

// Recorded replays a pre-materialized reference stream from an immutable
// arena slice.  It is the content-addressed form of a stream: NextBlock is a
// bounds-checked copy and NextSlice hands out the arena directly, with no
// regeneration and no dispatch into the producer's walk code, and every
// Recorded carries the canonical 64-bit fingerprint of its content.
//
// Recorded values sharing one arena are produced by a TraceStore; the arena
// is never written after construction, so any number of cursors (across
// goroutines) may replay it concurrently as long as each cursor is used by
// one goroutine at a time, like every other Gen.
type Recorded struct {
	refs   []Ref // immutable; shared by every cursor interned from one stream
	tail   int64
	instrs int64 // sum of refs[i].Instrs plus tail, fixed at construction
	fp     uint64
	pos    int
}

// Recorded serves both the simulator's block reader and its zero-copy slice
// fast path.
var (
	_ Bulk   = (*Recorded)(nil)
	_ Sliced = (*Recorded)(nil)
)

// refBytes is the in-memory footprint of one arena entry, used for the
// store's arena-bytes accounting.
const refBytes = int64(24) // 8 (Addr) + 8 (Instrs) + 1 (Write) + padding

// fingerprintSeed seeds the stream fingerprint so it is not the identity on
// trivial streams; the value is arbitrary but fixed (changing it would move
// every fingerprint, which only matters within one process).
const fingerprintSeed = 0x9E3779B97F4A7C15

// FingerprintRefs returns the canonical 64-bit fingerprint of a materialized
// stream: a splitmix64-mixed hash over every reference (address, write bit,
// instruction count) and the trailing instruction count.  Two streams that
// drain identically always fingerprint identically; the converse holds only
// probabilistically, which is why TraceStore verifies content equality before
// sharing an arena.
func FingerprintRefs(rs []Ref, tail int64) uint64 {
	h := prng.Mix64(fingerprintSeed ^ uint64(len(rs)))
	for i := range rs {
		r := &rs[i]
		w := uint64(0)
		if r.Write {
			w = 1
		}
		h = prng.Mix64(h ^ r.Addr)
		h = prng.Mix64(h ^ uint64(r.Instrs)<<1 ^ w)
	}
	return prng.Mix64(h ^ uint64(tail))
}

// Fingerprint drains g (resetting it before and after) and returns its
// canonical stream fingerprint: FingerprintRefs over the drained references
// and the instructions that follow the final one.
func Fingerprint(g Gen) uint64 {
	rs, tail := drainTail(g)
	return FingerprintRefs(rs, tail)
}

// drainTail collects g's references and computes its trailing instruction
// count from the Instrs total, resetting g before and after.
func drainTail(g Gen) ([]Ref, int64) {
	rs := Collect(g)
	var sum int64
	for i := range rs {
		sum += rs[i].Instrs
	}
	return rs, g.Instrs() - sum
}

// Record drains g and returns the equivalent Recorded stream (not interned:
// the arena belongs to the returned value alone).  g is Reset before and
// after.  The result drains identically to g and reports the same Len and
// Instrs totals.
func Record(g Gen) *Recorded {
	rs, tail := drainTail(g)
	return newRecorded(rs, tail)
}

func newRecorded(rs []Ref, tail int64) *Recorded {
	var sum int64
	for i := range rs {
		sum += rs[i].Instrs
	}
	return &Recorded{refs: rs, tail: tail, instrs: sum + tail, fp: FingerprintRefs(rs, tail)}
}

// Fingerprint returns the stream's canonical content fingerprint.
func (r *Recorded) Fingerprint() uint64 { return r.fp }

// Tail returns the number of instructions retired after the final reference.
func (r *Recorded) Tail() int64 { return r.tail }

// Clone returns a fresh cursor over the same arena, positioned at the start.
// Clones replay the identical stream and may be used concurrently with each
// other (the arena is immutable; only each cursor's position is stateful).
func (r *Recorded) Clone() *Recorded {
	return &Recorded{refs: r.refs, tail: r.tail, instrs: r.instrs, fp: r.fp}
}

// Len implements Gen.
func (r *Recorded) Len() int64 { return int64(len(r.refs)) }

// Instrs implements Gen.
func (r *Recorded) Instrs() int64 { return r.instrs }

// Reset implements Gen.
func (r *Recorded) Reset() { r.pos = 0 }

// Next implements Gen.
func (r *Recorded) Next() (Ref, bool) {
	if r.pos >= len(r.refs) {
		return Ref{}, false
	}
	ref := r.refs[r.pos]
	r.pos++
	return ref, true
}

// NextBlock implements Bulk: a bounds-checked copy out of the arena.
func (r *Recorded) NextBlock(buf []Ref) int {
	n := copy(buf, r.refs[r.pos:])
	r.pos += n
	return n
}

// NextSlice implements Sliced, handing out the remainder of the arena
// directly.  Callers must treat the slice as read-only.
func (r *Recorded) NextSlice() []Ref {
	out := r.refs[r.pos:]
	r.pos = len(r.refs)
	return out
}

// TraceStoreStats summarises a store's interning activity.
type TraceStoreStats struct {
	// Interned is the total number of Intern/InternRefs requests served.
	Interned int64
	// Unique is the number of distinct streams recorded (each owning one
	// arena).  Interned - Unique is the number of arena rebuilds avoided.
	Unique int64
	// ArenaBytes is the memory held by the unique arenas.
	ArenaBytes int64
}

// TraceStore interns reference streams by content: streams that drain
// identically share one immutable arena, and every Intern call returns an
// independent replay cursor over it.  Lookup is by 64-bit fingerprint with
// full content verification on a match, so fingerprint collisions cost a
// comparison but can never alias two different streams.
//
// A store is safe for concurrent use; the cursors it returns follow the
// usual Gen contract (one goroutine at a time per cursor).
type TraceStore struct {
	mu    sync.Mutex
	byFP  map[uint64][]*Recorded
	stats TraceStoreStats
}

// NewTraceStore returns an empty store.
func NewTraceStore() *TraceStore {
	return &TraceStore{byFP: make(map[uint64][]*Recorded)}
}

// InternRefs interns the stream that emits rs then retires tail trailing
// instructions.  The first occurrence copies rs into a private arena; later
// identical streams share it.  rs is not retained — callers may reuse the
// backing slice.
func (s *TraceStore) InternRefs(rs []Ref, tail int64) *Recorded {
	fp := FingerprintRefs(rs, tail)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Interned++
	for _, t := range s.byFP[fp] {
		if t.tail == tail && sameRefs(t.refs, rs) {
			return t.Clone()
		}
	}
	arena := make([]Ref, len(rs))
	copy(arena, rs)
	t := newRecorded(arena, tail)
	s.byFP[fp] = append(s.byFP[fp], t)
	s.stats.Unique++
	s.stats.ArenaBytes += int64(len(arena)) * refBytes
	return t.Clone()
}

// Intern drains g (resetting it before and after) and interns its stream,
// returning a Recorded cursor that drains identically to g.  A Recorded
// input skips the drain and interns its arena directly.
func (s *TraceStore) Intern(g Gen) *Recorded {
	if r, ok := g.(*Recorded); ok {
		return s.internRecorded(r)
	}
	rs, tail := drainTail(g)
	return s.InternRefs(rs, tail)
}

// internRecorded interns an already-materialized stream without copying when
// its arena is new to the store.
func (s *TraceStore) internRecorded(r *Recorded) *Recorded {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Interned++
	for _, t := range s.byFP[r.fp] {
		if t.tail == r.tail && sameRefs(t.refs, r.refs) {
			return t.Clone()
		}
	}
	t := &Recorded{refs: r.refs, tail: r.tail, instrs: r.instrs, fp: r.fp}
	s.byFP[r.fp] = append(s.byFP[r.fp], t)
	s.stats.Unique++
	s.stats.ArenaBytes += int64(len(t.refs)) * refBytes
	return t.Clone()
}

// Stats returns a snapshot of the store's interning counters.
func (s *TraceStore) Stats() TraceStoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// sameRefs reports element-wise equality, with an identity fast path for
// re-interned arenas.
func sameRefs(a, b []Ref) bool {
	if len(a) != len(b) {
		return false
	}
	if len(a) == 0 {
		return true
	}
	if &a[0] == &b[0] {
		return true
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
