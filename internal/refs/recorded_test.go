package refs

import (
	"math/rand"
	"sync"
	"testing"
)

// TestRecordedMatchesSource pins the recording contract over every generator
// shape: Record(g) reports the same Len and Instrs totals and drains the
// identical reference sequence.
func TestRecordedMatchesSource(t *testing.T) {
	for name, mk := range bulkFixtures() {
		want := drain(t, mk())
		src := mk()
		r := Record(src)
		if r.Len() != src.Len() || r.Instrs() != src.Instrs() {
			t.Fatalf("%s: recorded totals (%d, %d), want (%d, %d)",
				name, r.Len(), r.Instrs(), src.Len(), src.Instrs())
		}
		got := drain(t, r)
		if len(got) != len(want) {
			t.Fatalf("%s: recorded %d refs, want %d", name, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: recorded ref %d = %+v, want %+v", name, i, got[i], want[i])
			}
		}
		// Record promises to leave the source rewound.
		if again := drain(t, src); len(again) != len(want) {
			t.Fatalf("%s: source drained %d refs after Record, want %d", name, len(again), len(want))
		}
	}
}

// TestRecordedResetMidStream drains part of a recording through each API,
// resets, and requires a full identical replay — the Bulk-suite Reset
// behaviour, plus the Sliced fast path.
func TestRecordedResetMidStream(t *testing.T) {
	r := Record(NewScan(1<<20, 1000, 64, 2))
	want := drain(t, r)
	r.Reset()

	buf := make([]Ref, 3)
	r.NextBlock(buf)
	r.Next()
	r.Reset()
	if got := drain(t, r); len(got) != len(want) {
		t.Fatalf("post-Reset drain: %d refs, want %d", len(got), len(want))
	}

	r.Reset()
	r.Next()
	rest := r.NextSlice()
	if len(rest) != len(want)-1 {
		t.Fatalf("NextSlice after one Next: %d refs, want %d", len(rest), len(want)-1)
	}
	for i := range rest {
		if rest[i] != want[i+1] {
			t.Fatalf("NextSlice ref %d = %+v, want %+v", i, rest[i], want[i+1])
		}
	}
	if more := r.NextSlice(); len(more) != 0 {
		t.Fatalf("second NextSlice returned %d refs, want 0", len(more))
	}
	if _, ok := r.Next(); ok {
		t.Fatalf("Next after NextSlice exhaustion returned a ref")
	}
	r.Reset()
	if got := drain(t, r); len(got) != len(want) {
		t.Fatalf("drain after NextSlice+Reset: %d refs, want %d", len(got), len(want))
	}
}

// TestRecordedZeroLengthBuffer pins that an empty destination neither
// advances the stream nor signals exhaustion by accident.
func TestRecordedZeroLengthBuffer(t *testing.T) {
	r := Record(NewScan(1<<20, 256, 64, 1))
	if n := r.NextBlock(nil); n != 0 {
		t.Fatalf("NextBlock(nil) = %d, want 0", n)
	}
	if n := r.NextBlock([]Ref{}); n != 0 {
		t.Fatalf("NextBlock(empty) = %d, want 0", n)
	}
	got := drain(t, r)
	if int64(len(got)) != r.Len() {
		t.Fatalf("zero-length reads consumed refs: drained %d, want %d", len(got), r.Len())
	}
}

// TestCloneIndependentCursors runs two clones over one arena at different
// paces and requires identical streams.
func TestCloneIndependentCursors(t *testing.T) {
	r := Record(&Random{Base: 1 << 22, Bytes: 1 << 14, LineBytes: 64, Count: 150, Seed: 11, InstrsPerRef: 2})
	a, b := r.Clone(), r.Clone()
	want := drain(t, r.Clone())
	var got []Ref
	buf := make([]Ref, 7)
	for {
		n := a.NextBlock(buf)
		if n == 0 {
			break
		}
		got = append(got, buf[:n]...)
		b.Next() // interleave the other cursor; it must not disturb a
	}
	if len(got) != len(want) {
		t.Fatalf("clone drained %d refs, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("clone ref %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestInternSharesArenas pins the content-addressing: identical streams share
// one arena (pointer-identical backing storage), distinct streams do not,
// and the stats ledger counts both accurately.
func TestInternSharesArenas(t *testing.T) {
	s := NewTraceStore()
	mk := func() Gen { return NewScan(1<<20, 640, 64, 2) }
	a := s.Intern(mk())
	b := s.Intern(mk())
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("identical streams fingerprint differently: %x vs %x", a.Fingerprint(), b.Fingerprint())
	}
	sa, sb := a.NextSlice(), b.NextSlice()
	if len(sa) == 0 || &sa[0] != &sb[0] {
		t.Fatalf("identical streams do not share an arena")
	}
	c := s.Intern(&Strided{Base: 1 << 21, StrideBytes: 128, Count: 10, InstrsPerRef: 1})
	sc := c.NextSlice()
	if len(sc) > 0 && len(sa) > 0 && &sc[0] == &sa[0] {
		t.Fatalf("distinct streams share an arena")
	}
	st := s.Stats()
	if st.Interned != 3 || st.Unique != 2 {
		t.Fatalf("stats = %+v, want Interned 3, Unique 2", st)
	}
	wantBytes := (a.Len() + c.Len()) * refBytes
	if st.ArenaBytes != wantBytes {
		t.Fatalf("ArenaBytes = %d, want %d", st.ArenaBytes, wantBytes)
	}
}

// TestInternTailDistinguishes pins that two streams with equal references but
// different trailing instruction counts never share an entry.
func TestInternTailDistinguishes(t *testing.T) {
	s := NewTraceStore()
	rs := []Ref{{Addr: 64, Instrs: 1}, {Addr: 128, Write: true, Instrs: 2}}
	a := s.InternRefs(rs, 5)
	b := s.InternRefs(rs, 6)
	if a.Instrs() == b.Instrs() {
		t.Fatalf("different tails produced equal totals")
	}
	if st := s.Stats(); st.Unique != 2 {
		t.Fatalf("Unique = %d, want 2", st.Unique)
	}
}

// TestInternRefsDoesNotRetainInput pins that InternRefs copies: mutating the
// caller's slice afterwards must not corrupt the arena.
func TestInternRefsDoesNotRetainInput(t *testing.T) {
	s := NewTraceStore()
	rs := []Ref{{Addr: 64, Instrs: 1}, {Addr: 128, Instrs: 2}}
	a := s.InternRefs(rs, 0)
	rs[0].Addr = 0xDEAD
	if got := a.NextSlice(); got[0].Addr != 64 {
		t.Fatalf("arena aliases the caller's slice: %+v", got[0])
	}
}

// TestFingerprintQuickCheck generates random short streams and checks the
// content-addressing law both ways on every pair: equal drains imply equal
// fingerprints (by construction), and — with the store's verification — a
// shared arena implies equal drains.  Near-identical streams (prefixes, one
// flipped write bit, shifted instruction counts) are included deliberately.
func TestFingerprintQuickCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	streams := make([][]Ref, 0, 64)
	tails := make([]int64, 0, 64)
	for i := 0; i < 64; i++ {
		n := rng.Intn(6)
		rs := make([]Ref, n)
		for j := range rs {
			rs[j] = Ref{
				Addr:   uint64(rng.Intn(4)) * 64,
				Write:  rng.Intn(2) == 0,
				Instrs: int64(rng.Intn(3)),
			}
		}
		streams = append(streams, rs)
		tails = append(tails, int64(rng.Intn(2)))
	}
	s := NewTraceStore()
	interned := make([]*Recorded, len(streams))
	for i := range streams {
		interned[i] = s.InternRefs(streams[i], tails[i])
	}
	for i := range streams {
		for j := range streams {
			same := tails[i] == tails[j] && sameRefs(streams[i], streams[j])
			fpEq := FingerprintRefs(streams[i], tails[i]) == FingerprintRefs(streams[j], tails[j])
			if same && !fpEq {
				t.Fatalf("identical streams %d and %d fingerprint differently", i, j)
			}
			shared := len(streams[i]) > 0 && len(streams[j]) > 0 &&
				&interned[i].refs[0] == &interned[j].refs[0]
			if shared && !same {
				t.Fatalf("distinct streams %d and %d share an arena", i, j)
			}
			if same && !shared && len(streams[i]) > 0 {
				t.Fatalf("identical streams %d and %d do not share an arena", i, j)
			}
		}
	}
}

// TestTraceStoreConcurrentIntern hammers one store from many goroutines
// (run under -race in CI) and checks the ledger adds up.
func TestTraceStoreConcurrentIntern(t *testing.T) {
	s := NewTraceStore()
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// 10 distinct contents, interned over and over.
				r := s.Intern(NewScan(1<<20, int64(64*(1+i%10)), 64, 1))
				if r.Len() == 0 {
					t.Errorf("worker %d: empty recording", w)
					return
				}
				drainAll(r)
			}
		}(w)
	}
	wg.Wait()
	st := s.Stats()
	if st.Interned != workers*perWorker || st.Unique != 10 {
		t.Fatalf("stats = %+v, want Interned %d, Unique 10", st, workers*perWorker)
	}
}

func drainAll(g Gen) {
	for {
		if _, ok := g.Next(); !ok {
			return
		}
	}
}
