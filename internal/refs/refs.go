// Package refs provides composable, deterministic memory-reference streams.
//
// A task in a computation DAG (package dag) carries a reference generator
// describing the memory it touches and the instructions it retires between
// references.  The CMP simulator (package cmpsim) replays these streams
// through the modelled cache hierarchy, and the working-set profiler
// (package profile) consumes the same streams to compute stack distances.
//
// References are expressed at whatever granularity the producer chooses; the
// workload generators in this repository emit one reference per cache line
// touched, which keeps traces compact while preserving miss behaviour.
package refs

import "cmpsched/internal/prng"

// Ref is a single memory reference.
type Ref struct {
	// Addr is the byte address of the reference. Consumers map it to a
	// cache line by masking with their line size.
	Addr uint64
	// Write reports whether the reference is a store.
	Write bool
	// Instrs is the number of instructions retired since the previous
	// reference of the same stream (exclusive of the memory operation
	// itself). The simulator charges these cycles before the access.
	Instrs int64
}

// Gen is a resettable stream of memory references.
//
// Implementations are not safe for concurrent use; callers that replay a
// stream several times must call Reset between iterations.
type Gen interface {
	// Len returns the total number of references the stream produces.
	Len() int64
	// Instrs returns the total number of instructions the stream retires,
	// including instructions that follow the final reference.
	Instrs() int64
	// Reset rewinds the stream to its beginning.
	Reset()
	// Next returns the next reference. ok is false once the stream is
	// exhausted.
	Next() (r Ref, ok bool)
}

// Bulk is an optional extension of Gen for consumers that drain references
// in blocks.  One NextBlock call replaces up to len(buf) dynamic-dispatch
// Next calls, which is what lets the simulator's inner loop amortise
// interface-method overhead across a whole block of references.
//
// NextBlock and Next may be mixed freely: both advance the same stream
// position.  Every generator in this package implements Bulk; ReadBlock
// adapts third-party Gens that do not.
type Bulk interface {
	Gen
	// NextBlock fills buf with the stream's next references and returns
	// the number produced.  When len(buf) > 0, a return of 0 means the
	// stream is exhausted; a short (non-zero) return does not.
	NextBlock(buf []Ref) int
}

// Sliced is an optional extension of Bulk for generators whose remaining
// stream is already resident in memory (Points, Recorded).  NextSlice hands
// out the backing storage itself, so a consumer replays the whole stream
// without a single copy — the simulator's fastest drain path.
//
// NextSlice shares the stream position with Next and NextBlock: it returns
// everything not yet consumed and advances the position to the end, so an
// empty slice means the stream is exhausted.  Callers must treat the
// returned slice as read-only; it remains valid across Reset.
type Sliced interface {
	Bulk
	// NextSlice returns the stream's remaining references as a slice of the
	// generator's backing storage and advances the position past them.
	NextSlice() []Ref
}

// BlockSize is the batch size block-oriented consumers (the simulator, the
// profiler's trace reader) use by default.  64 references amortise dispatch
// to noise while keeping per-core buffers comfortably inside the host L1.
const BlockSize = 64

// ReadBlock fills buf from g: the Bulk fast path when g implements it, a
// per-reference Next loop otherwise.  The fallback return contract is the
// same as Bulk's — 0 from a non-empty buf means exhausted.
func ReadBlock(g Gen, buf []Ref) int {
	if b, ok := g.(Bulk); ok {
		return b.NextBlock(buf)
	}
	n := 0
	for n < len(buf) {
		r, ok := g.Next()
		if !ok {
			break
		}
		buf[n] = r
		n++
	}
	return n
}

// Every generator in this package implements Bulk, so the simulator's block
// reader always takes the amortised path for repository workloads.
var (
	_ Bulk = Empty{}
	_ Bulk = Compute{}
	_ Bulk = (*Points)(nil)
	_ Bulk = (*Scan)(nil)
	_ Bulk = (*Strided)(nil)
	_ Bulk = (*Random)(nil)
	_ Bulk = (*Concat)(nil)
	_ Bulk = (*Interleave)(nil)
	_ Bulk = (*Repeat)(nil)
	_ Bulk = (*WithTail)(nil)

	// Resident generators also serve the zero-copy slice path.
	_ Sliced = (*Points)(nil)
)

// intn returns a uniform value in [0, n) drawn from r. n must be > 0.
func intn(r *prng.SplitMix64, n uint64) uint64 {
	// Multiply-shift reduction; bias is negligible for our trace sizes.
	hi, _ := mul64(r.Next(), n)
	return hi
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return hi, lo
}

// Empty is a generator producing no references and no instructions.
type Empty struct{}

// Len implements Gen.
func (Empty) Len() int64 { return 0 }

// Instrs implements Gen.
func (Empty) Instrs() int64 { return 0 }

// Reset implements Gen.
func (Empty) Reset() {}

// Next implements Gen.
func (Empty) Next() (Ref, bool) { return Ref{}, false }

// NextBlock implements Bulk.
func (Empty) NextBlock([]Ref) int { return 0 }

// Compute is a generator that retires instructions without touching memory.
type Compute struct {
	// N is the number of instructions retired.
	N int64
}

// Len implements Gen.
func (Compute) Len() int64 { return 0 }

// Instrs implements Gen.
func (c Compute) Instrs() int64 { return c.N }

// Reset implements Gen.
func (Compute) Reset() {}

// Next implements Gen.
func (Compute) Next() (Ref, bool) { return Ref{}, false }

// NextBlock implements Bulk.
func (Compute) NextBlock([]Ref) int { return 0 }

// Points replays an explicit list of references.  It backs the graph
// kernels' per-task traces as well as tests and hand-built micro traces, so
// its streams can run to hundreds of thousands of references.
type Points struct {
	// Refs is the reference list.  It must not be mutated after the first
	// Instrs call: the instruction total is computed once and cached.
	Refs []Ref
	// Tail is the number of instructions retired after the final
	// reference.
	Tail int64
	pos  int

	// sum caches the total of Refs[i].Instrs; sumValid guards the first
	// computation so Instrs is O(1) on every later call (it is called per
	// task by dag.AddTask, dag.Validate and the coarsening pass).
	sum      int64
	sumValid bool
}

// NewPoints returns a Points generator over refs.
func NewPoints(refs []Ref, tail int64) *Points {
	p := &Points{Refs: refs, Tail: tail}
	p.refSum()
	return p
}

// Len implements Gen.
func (p *Points) Len() int64 { return int64(len(p.Refs)) }

func (p *Points) refSum() int64 {
	if !p.sumValid {
		var total int64
		for _, r := range p.Refs {
			total += r.Instrs
		}
		p.sum = total
		p.sumValid = true
	}
	return p.sum
}

// Instrs implements Gen.
func (p *Points) Instrs() int64 { return p.Tail + p.refSum() }

// Reset implements Gen.
func (p *Points) Reset() { p.pos = 0 }

// Next implements Gen.
func (p *Points) Next() (Ref, bool) {
	if p.pos >= len(p.Refs) {
		return Ref{}, false
	}
	r := p.Refs[p.pos]
	p.pos++
	return r, true
}

// NextBlock implements Bulk.
func (p *Points) NextBlock(buf []Ref) int {
	n := copy(buf, p.Refs[p.pos:])
	p.pos += n
	return n
}

// NextSlice implements Sliced, handing out the remainder of Refs directly.
// Callers must treat the slice as read-only.
func (p *Points) NextSlice() []Ref {
	out := p.Refs[p.pos:]
	p.pos = len(p.Refs)
	return out
}

// Scan walks a contiguous region sequentially, touching one address per
// LineBytes, optionally several times.
type Scan struct {
	// Base is the starting byte address of the region.
	Base uint64
	// Bytes is the size of the region in bytes.
	Bytes int64
	// LineBytes is the distance between successive references; it is
	// normally the cache-line size. Must be > 0.
	LineBytes int64
	// Write marks the references as stores.
	Write bool
	// InstrsPerRef is the number of instructions retired before each
	// reference.
	InstrsPerRef int64
	// Passes is the number of complete passes over the region. Zero is
	// treated as one pass.
	Passes int

	pos int64 // references emitted so far
}

// NewScan returns a single sequential read pass over [base, base+bytes).
func NewScan(base uint64, bytes, lineBytes, instrsPerRef int64) *Scan {
	return &Scan{Base: base, Bytes: bytes, LineBytes: lineBytes, InstrsPerRef: instrsPerRef, Passes: 1}
}

func (s *Scan) passes() int64 {
	if s.Passes <= 0 {
		return 1
	}
	return int64(s.Passes)
}

func (s *Scan) linesPerPass() int64 {
	if s.LineBytes <= 0 || s.Bytes <= 0 {
		return 0
	}
	return (s.Bytes + s.LineBytes - 1) / s.LineBytes
}

// Len implements Gen.
func (s *Scan) Len() int64 { return s.linesPerPass() * s.passes() }

// Instrs implements Gen.
func (s *Scan) Instrs() int64 { return s.Len() * s.InstrsPerRef }

// Reset implements Gen.
func (s *Scan) Reset() { s.pos = 0 }

// Next implements Gen.
func (s *Scan) Next() (Ref, bool) {
	if s.pos >= s.Len() {
		return Ref{}, false
	}
	lines := s.linesPerPass()
	idx := s.pos % lines
	s.pos++
	return Ref{
		Addr:   s.Base + uint64(idx*s.LineBytes),
		Write:  s.Write,
		Instrs: s.InstrsPerRef,
	}, true
}

// NextBlock implements Bulk.
func (s *Scan) NextBlock(buf []Ref) int {
	total := s.Len()
	lines := s.linesPerPass()
	n := 0
	for n < len(buf) && s.pos < total {
		idx := s.pos % lines
		buf[n] = Ref{
			Addr:   s.Base + uint64(idx*s.LineBytes),
			Write:  s.Write,
			Instrs: s.InstrsPerRef,
		}
		s.pos++
		n++
	}
	return n
}

// Strided emits Count references starting at Base with a fixed stride.
type Strided struct {
	Base         uint64
	StrideBytes  int64
	Count        int64
	Write        bool
	InstrsPerRef int64

	pos int64
}

// Len implements Gen.
func (s *Strided) Len() int64 { return s.Count }

// Instrs implements Gen.
func (s *Strided) Instrs() int64 { return s.Count * s.InstrsPerRef }

// Reset implements Gen.
func (s *Strided) Reset() { s.pos = 0 }

// Next implements Gen.
func (s *Strided) Next() (Ref, bool) {
	if s.pos >= s.Count {
		return Ref{}, false
	}
	r := Ref{
		Addr:   s.Base + uint64(s.pos*s.StrideBytes),
		Write:  s.Write,
		Instrs: s.InstrsPerRef,
	}
	s.pos++
	return r, true
}

// NextBlock implements Bulk.
func (s *Strided) NextBlock(buf []Ref) int {
	n := 0
	for n < len(buf) && s.pos < s.Count {
		buf[n] = Ref{
			Addr:   s.Base + uint64(s.pos*s.StrideBytes),
			Write:  s.Write,
			Instrs: s.InstrsPerRef,
		}
		s.pos++
		n++
	}
	return n
}

// Random emits Count references uniformly distributed over a region, aligned
// to LineBytes. The sequence is a deterministic function of Seed.
type Random struct {
	Base         uint64
	Bytes        int64
	LineBytes    int64
	Count        int64
	Seed         uint64
	Write        bool
	InstrsPerRef int64

	pos int64
	r   *prng.SplitMix64
}

// Len implements Gen.
func (g *Random) Len() int64 { return g.Count }

// Instrs implements Gen.
func (g *Random) Instrs() int64 { return g.Count * g.InstrsPerRef }

// Reset implements Gen.
func (g *Random) Reset() {
	g.pos = 0
	g.r = nil
}

func (g *Random) lines() uint64 {
	lb := g.LineBytes
	if lb <= 0 {
		lb = 64
	}
	n := g.Bytes / lb
	if n <= 0 {
		n = 1
	}
	return uint64(n)
}

// Next implements Gen.
func (g *Random) Next() (Ref, bool) {
	if g.pos >= g.Count {
		return Ref{}, false
	}
	if g.r == nil {
		g.r = &prng.SplitMix64{State: g.Seed}
	}
	lb := g.LineBytes
	if lb <= 0 {
		lb = 64
	}
	line := intn(g.r, g.lines())
	g.pos++
	return Ref{
		Addr:   g.Base + line*uint64(lb),
		Write:  g.Write,
		Instrs: g.InstrsPerRef,
	}, true
}

// NextBlock implements Bulk.
func (g *Random) NextBlock(buf []Ref) int {
	if g.pos >= g.Count {
		return 0
	}
	if g.r == nil {
		g.r = &prng.SplitMix64{State: g.Seed}
	}
	lb := g.LineBytes
	if lb <= 0 {
		lb = 64
	}
	lines := g.lines()
	n := 0
	for n < len(buf) && g.pos < g.Count {
		line := intn(g.r, lines)
		buf[n] = Ref{
			Addr:   g.Base + line*uint64(lb),
			Write:  g.Write,
			Instrs: g.InstrsPerRef,
		}
		g.pos++
		n++
	}
	return n
}

// Concat runs a sequence of generators back to back.
type Concat struct {
	gens []Gen
	idx  int

	// lenSum/instrSum cache the per-child totals, which workload builders
	// and dag.Validate otherwise recompute per call over what can be a long
	// child list.  Append invalidates the cache.
	lenSum, instrSum int64
	sumsValid        bool
}

// NewConcat returns a generator replaying gens in order. Nil entries are
// skipped.
func NewConcat(gens ...Gen) *Concat {
	out := make([]Gen, 0, len(gens))
	for _, g := range gens {
		if g != nil {
			out = append(out, g)
		}
	}
	return &Concat{gens: out}
}

// Append adds more generators to the end of the sequence.
func (c *Concat) Append(gens ...Gen) {
	for _, g := range gens {
		if g != nil {
			c.gens = append(c.gens, g)
		}
	}
	c.sumsValid = false
}

func (c *Concat) totals() (lenSum, instrSum int64) {
	if !c.sumsValid {
		c.lenSum, c.instrSum = 0, 0
		for _, g := range c.gens {
			c.lenSum += g.Len()
			c.instrSum += g.Instrs()
		}
		c.sumsValid = true
	}
	return c.lenSum, c.instrSum
}

// Len implements Gen.
func (c *Concat) Len() int64 {
	lenSum, _ := c.totals()
	return lenSum
}

// Instrs implements Gen.
func (c *Concat) Instrs() int64 {
	_, instrSum := c.totals()
	return instrSum
}

// Reset implements Gen.
func (c *Concat) Reset() {
	c.idx = 0
	for _, g := range c.gens {
		g.Reset()
	}
}

// Next implements Gen.
func (c *Concat) Next() (Ref, bool) {
	for c.idx < len(c.gens) {
		if r, ok := c.gens[c.idx].Next(); ok {
			return r, true
		}
		c.idx++
	}
	return Ref{}, false
}

// NextBlock implements Bulk: each child fills as much of the buffer as it
// can, and exhausted children advance the cursor, so one call typically
// returns a full block even across child boundaries.
func (c *Concat) NextBlock(buf []Ref) int {
	n := 0
	for n < len(buf) && c.idx < len(c.gens) {
		k := ReadBlock(c.gens[c.idx], buf[n:])
		if k == 0 {
			c.idx++
			continue
		}
		n += k
	}
	return n
}

// Interleave alternates references from two generators (a, b, a, b, ...)
// until both are exhausted.  It models loops that touch two structures per
// iteration, such as a probe that reads an input record and then a hash
// bucket.
type Interleave struct {
	A, B Gen
	turn int
}

// NewInterleave returns an interleaving of a and b.
func NewInterleave(a, b Gen) *Interleave { return &Interleave{A: a, B: b} }

// Len implements Gen.
func (i *Interleave) Len() int64 { return i.A.Len() + i.B.Len() }

// Instrs implements Gen.
func (i *Interleave) Instrs() int64 { return i.A.Instrs() + i.B.Instrs() }

// Reset implements Gen.
func (i *Interleave) Reset() {
	i.turn = 0
	i.A.Reset()
	i.B.Reset()
}

// Next implements Gen.
func (i *Interleave) Next() (Ref, bool) {
	first, second := i.A, i.B
	if i.turn == 1 {
		first, second = i.B, i.A
	}
	i.turn = 1 - i.turn
	if r, ok := first.Next(); ok {
		return r, true
	}
	return second.Next()
}

// NextBlock implements Bulk.  The alternation is inherently per-reference,
// so the block is assembled by Next calls; the consumer still saves its own
// per-reference dispatch on the outer stream.
func (i *Interleave) NextBlock(buf []Ref) int {
	n := 0
	for n < len(buf) {
		r, ok := i.Next()
		if !ok {
			break
		}
		buf[n] = r
		n++
	}
	return n
}

// Repeat replays an inner generator a fixed number of times, resetting it
// between rounds.
type Repeat struct {
	G     Gen
	Times int
	round int
}

// NewRepeat returns a generator that replays g `times` times.
func NewRepeat(g Gen, times int) *Repeat { return &Repeat{G: g, Times: times} }

// Len implements Gen.
func (r *Repeat) Len() int64 { return r.G.Len() * int64(max64(0, int64(r.Times))) }

// Instrs implements Gen.
func (r *Repeat) Instrs() int64 { return r.G.Instrs() * int64(max64(0, int64(r.Times))) }

// Reset implements Gen.
func (r *Repeat) Reset() {
	r.round = 0
	r.G.Reset()
}

// Next implements Gen.
func (r *Repeat) Next() (Ref, bool) {
	for r.round < r.Times {
		if ref, ok := r.G.Next(); ok {
			return ref, true
		}
		r.round++
		if r.round < r.Times {
			r.G.Reset()
		}
	}
	return Ref{}, false
}

// NextBlock implements Bulk.
func (r *Repeat) NextBlock(buf []Ref) int {
	n := 0
	for n < len(buf) && r.round < r.Times {
		k := ReadBlock(r.G, buf[n:])
		if k == 0 {
			r.round++
			if r.round < r.Times {
				r.G.Reset()
			}
			continue
		}
		n += k
	}
	return n
}

// WithTail wraps a generator and adds trailing instructions after the last
// reference, e.g. loop epilogues or result combination code.
type WithTail struct {
	G    Gen
	Tail int64
}

// NewWithTail wraps g with tail trailing instructions.
func NewWithTail(g Gen, tail int64) *WithTail { return &WithTail{G: g, Tail: tail} }

// Len implements Gen.
func (w *WithTail) Len() int64 { return w.G.Len() }

// Instrs implements Gen.
func (w *WithTail) Instrs() int64 { return w.G.Instrs() + w.Tail }

// Reset implements Gen.
func (w *WithTail) Reset() { w.G.Reset() }

// Next implements Gen.
func (w *WithTail) Next() (Ref, bool) { return w.G.Next() }

// NextBlock implements Bulk.
func (w *WithTail) NextBlock(buf []Ref) int { return ReadBlock(w.G, buf) }

// Collect drains g and returns all of its references.  The generator is
// Reset before and after collection.  Intended for tests and the profiler's
// trace writer; not for very long streams.
func Collect(g Gen) []Ref {
	g.Reset()
	out := make([]Ref, 0, g.Len())
	for {
		r, ok := g.Next()
		if !ok {
			break
		}
		out = append(out, r)
	}
	g.Reset()
	return out
}

// Count drains g counting references and instructions; it Resets g before
// and after.
func Count(g Gen) (refCount, instrs int64) {
	g.Reset()
	for {
		r, ok := g.Next()
		if !ok {
			break
		}
		refCount++
		instrs += r.Instrs
	}
	g.Reset()
	return refCount, instrs
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
