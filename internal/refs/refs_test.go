package refs

import (
	"cmpsched/internal/prng"
	"testing"
	"testing/quick"
)

func drain(t *testing.T, g Gen) []Ref {
	t.Helper()
	var out []Ref
	for {
		r, ok := g.Next()
		if !ok {
			break
		}
		out = append(out, r)
		if len(out) > 1<<22 {
			t.Fatalf("generator did not terminate")
		}
	}
	return out
}

func TestEmpty(t *testing.T) {
	var g Empty
	if g.Len() != 0 || g.Instrs() != 0 {
		t.Fatalf("Empty should have no refs or instrs")
	}
	if _, ok := g.Next(); ok {
		t.Fatalf("Empty.Next returned a ref")
	}
}

func TestCompute(t *testing.T) {
	g := Compute{N: 123}
	if g.Len() != 0 {
		t.Fatalf("Compute.Len = %d, want 0", g.Len())
	}
	if g.Instrs() != 123 {
		t.Fatalf("Compute.Instrs = %d, want 123", g.Instrs())
	}
	if _, ok := g.Next(); ok {
		t.Fatalf("Compute.Next returned a ref")
	}
}

func TestPoints(t *testing.T) {
	rs := []Ref{{Addr: 0, Instrs: 2}, {Addr: 64, Write: true, Instrs: 3}}
	g := NewPoints(rs, 5)
	if g.Len() != 2 {
		t.Fatalf("Len = %d, want 2", g.Len())
	}
	if g.Instrs() != 10 {
		t.Fatalf("Instrs = %d, want 10", g.Instrs())
	}
	got := drain(t, g)
	if len(got) != 2 || got[1].Addr != 64 || !got[1].Write {
		t.Fatalf("unexpected refs %+v", got)
	}
	// After Reset the stream replays identically.
	g.Reset()
	got2 := drain(t, g)
	if len(got2) != len(got) {
		t.Fatalf("replay length %d, want %d", len(got2), len(got))
	}
}

func TestScanAddressesAndCounts(t *testing.T) {
	g := &Scan{Base: 1 << 20, Bytes: 1024, LineBytes: 128, InstrsPerRef: 4, Passes: 1}
	if g.Len() != 8 {
		t.Fatalf("Len = %d, want 8", g.Len())
	}
	if g.Instrs() != 32 {
		t.Fatalf("Instrs = %d, want 32", g.Instrs())
	}
	rs := drain(t, g)
	if len(rs) != 8 {
		t.Fatalf("drained %d refs, want 8", len(rs))
	}
	for i, r := range rs {
		want := uint64(1<<20 + i*128)
		if r.Addr != want {
			t.Fatalf("ref %d addr=%d, want %d", i, r.Addr, want)
		}
		if r.Instrs != 4 {
			t.Fatalf("ref %d instrs=%d, want 4", i, r.Instrs)
		}
	}
}

func TestScanMultiplePasses(t *testing.T) {
	g := &Scan{Base: 0, Bytes: 256, LineBytes: 64, Passes: 3}
	if g.Len() != 12 {
		t.Fatalf("Len = %d, want 12", g.Len())
	}
	rs := drain(t, g)
	if len(rs) != 12 {
		t.Fatalf("drained %d, want 12", len(rs))
	}
	// The second pass revisits the same addresses.
	if rs[0].Addr != rs[4].Addr || rs[3].Addr != rs[7].Addr {
		t.Fatalf("passes do not revisit addresses: %+v", rs)
	}
}

func TestScanRoundsUpPartialLine(t *testing.T) {
	g := &Scan{Base: 0, Bytes: 100, LineBytes: 64, Passes: 1}
	if g.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (100 bytes spans 2 lines)", g.Len())
	}
}

func TestScanZeroPassesTreatedAsOne(t *testing.T) {
	g := &Scan{Base: 0, Bytes: 128, LineBytes: 64}
	if g.Len() != 2 {
		t.Fatalf("Len = %d, want 2", g.Len())
	}
}

func TestStrided(t *testing.T) {
	g := &Strided{Base: 1000, StrideBytes: 256, Count: 4, InstrsPerRef: 7, Write: true}
	rs := drain(t, g)
	if len(rs) != 4 {
		t.Fatalf("drained %d, want 4", len(rs))
	}
	for i, r := range rs {
		if r.Addr != uint64(1000+256*i) {
			t.Fatalf("ref %d addr=%d", i, r.Addr)
		}
		if !r.Write {
			t.Fatalf("ref %d should be a write", i)
		}
	}
	if g.Instrs() != 28 {
		t.Fatalf("Instrs = %d, want 28", g.Instrs())
	}
}

func TestRandomDeterministicAndInRange(t *testing.T) {
	mk := func() *Random {
		return &Random{Base: 4096, Bytes: 8192, LineBytes: 64, Count: 200, Seed: 42, InstrsPerRef: 3}
	}
	a := drain(t, mk())
	b := drain(t, mk())
	if len(a) != 200 || len(b) != 200 {
		t.Fatalf("lengths %d, %d, want 200", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("ref %d differs between identical seeds: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].Addr < 4096 || a[i].Addr >= 4096+8192 {
			t.Fatalf("ref %d addr %d outside region", i, a[i].Addr)
		}
		if a[i].Addr%64 != 0 {
			t.Fatalf("ref %d addr %d not line aligned", i, a[i].Addr)
		}
	}
}

func TestRandomDifferentSeedsDiffer(t *testing.T) {
	a := drain(t, &Random{Bytes: 1 << 20, LineBytes: 64, Count: 64, Seed: 1})
	b := drain(t, &Random{Bytes: 1 << 20, LineBytes: 64, Count: 64, Seed: 2})
	same := 0
	for i := range a {
		if a[i].Addr == b[i].Addr {
			same++
		}
	}
	if same == len(a) {
		t.Fatalf("different seeds produced identical streams")
	}
}

func TestRandomResetReplays(t *testing.T) {
	g := &Random{Bytes: 1 << 16, LineBytes: 64, Count: 50, Seed: 7}
	a := drain(t, g)
	g.Reset()
	b := drain(t, g)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("reset replay differs at %d", i)
		}
	}
}

func TestConcat(t *testing.T) {
	a := &Scan{Base: 0, Bytes: 128, LineBytes: 64, InstrsPerRef: 1}
	b := &Scan{Base: 1024, Bytes: 128, LineBytes: 64, InstrsPerRef: 2}
	g := NewConcat(a, nil, b)
	if g.Len() != 4 {
		t.Fatalf("Len = %d, want 4", g.Len())
	}
	if g.Instrs() != 2+4 {
		t.Fatalf("Instrs = %d, want 6", g.Instrs())
	}
	rs := drain(t, g)
	if rs[0].Addr != 0 || rs[2].Addr != 1024 {
		t.Fatalf("unexpected order %+v", rs)
	}
	g.Reset()
	if again := drain(t, g); len(again) != 4 {
		t.Fatalf("reset drain %d, want 4", len(again))
	}
}

func TestConcatAppend(t *testing.T) {
	g := NewConcat()
	g.Append(&Strided{Base: 0, StrideBytes: 64, Count: 2})
	g.Append(nil, &Strided{Base: 512, StrideBytes: 64, Count: 3})
	if g.Len() != 5 {
		t.Fatalf("Len = %d, want 5", g.Len())
	}
}

func TestInterleave(t *testing.T) {
	a := &Strided{Base: 0, StrideBytes: 64, Count: 3, InstrsPerRef: 1}
	b := &Strided{Base: 1 << 20, StrideBytes: 64, Count: 2, InstrsPerRef: 1}
	g := NewInterleave(a, b)
	rs := drain(t, g)
	if len(rs) != 5 {
		t.Fatalf("drained %d, want 5", len(rs))
	}
	// Pattern a b a b a.
	wantHigh := []bool{false, true, false, true, false}
	for i, r := range rs {
		high := r.Addr >= 1<<20
		if high != wantHigh[i] {
			t.Fatalf("position %d from wrong stream (addr=%d)", i, r.Addr)
		}
	}
}

func TestRepeat(t *testing.T) {
	inner := &Strided{Base: 0, StrideBytes: 64, Count: 3, InstrsPerRef: 2}
	g := NewRepeat(inner, 4)
	if g.Len() != 12 {
		t.Fatalf("Len = %d, want 12", g.Len())
	}
	if g.Instrs() != 24 {
		t.Fatalf("Instrs = %d, want 24", g.Instrs())
	}
	rs := drain(t, g)
	if len(rs) != 12 {
		t.Fatalf("drained %d, want 12", len(rs))
	}
	if rs[0].Addr != rs[3].Addr {
		t.Fatalf("repeat rounds do not revisit addresses")
	}
	g.Reset()
	if len(drain(t, g)) != 12 {
		t.Fatalf("reset drain mismatch")
	}
}

func TestWithTail(t *testing.T) {
	inner := &Strided{Base: 0, StrideBytes: 64, Count: 2, InstrsPerRef: 5}
	g := NewWithTail(inner, 100)
	if g.Instrs() != 110 {
		t.Fatalf("Instrs = %d, want 110", g.Instrs())
	}
	if g.Len() != 2 {
		t.Fatalf("Len = %d, want 2", g.Len())
	}
}

func TestCollectAndCount(t *testing.T) {
	g := &Scan{Base: 0, Bytes: 512, LineBytes: 64, InstrsPerRef: 3}
	rs := Collect(g)
	if len(rs) != 8 {
		t.Fatalf("Collect returned %d refs, want 8", len(rs))
	}
	n, instrs := Count(g)
	if n != 8 || instrs != 24 {
		t.Fatalf("Count = (%d, %d), want (8, 24)", n, instrs)
	}
	// Collect/Count must leave the generator usable.
	if len(drain(t, g)) != 8 {
		t.Fatalf("generator not reset after Collect/Count")
	}
}

// Property: for every generator construction, the number of refs drained
// equals Len() and the drained instruction total never exceeds Instrs().
func TestPropertyLenMatchesDrain(t *testing.T) {
	f := func(baseSeed uint64, nSmall uint8, stride uint8, passes uint8) bool {
		n := int64(nSmall%64) + 1
		st := int64(stride%8+1) * 64
		p := int(passes%3) + 1
		gens := []Gen{
			&Scan{Base: baseSeed % (1 << 30), Bytes: n * 64, LineBytes: 64, InstrsPerRef: 2, Passes: p},
			&Strided{Base: baseSeed % (1 << 30), StrideBytes: st, Count: n, InstrsPerRef: 1},
			&Random{Base: baseSeed % (1 << 30), Bytes: n * 256, LineBytes: 64, Count: n, Seed: baseSeed},
		}
		all := NewConcat(gens...)
		var count, instrs int64
		all.Reset()
		for {
			r, ok := all.Next()
			if !ok {
				break
			}
			count++
			instrs += r.Instrs
		}
		return count == all.Len() && instrs <= all.Instrs()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Reset always replays an identical stream.
func TestPropertyResetReplay(t *testing.T) {
	f := func(seed uint64, count uint8) bool {
		g := NewConcat(
			&Random{Bytes: 1 << 18, LineBytes: 64, Count: int64(count%50) + 1, Seed: seed},
			&Scan{Base: 1 << 20, Bytes: int64(count%20+1) * 64, LineBytes: 64},
		)
		a := Collect(g)
		b := Collect(g)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMul64(t *testing.T) {
	hi, lo := mul64(1<<32, 1<<32)
	if hi != 1 || lo != 0 {
		t.Fatalf("mul64(2^32,2^32) = (%d,%d), want (1,0)", hi, lo)
	}
	hi, lo = mul64(0xffffffffffffffff, 2)
	if hi != 1 || lo != 0xfffffffffffffffe {
		t.Fatalf("mul64 overflow case wrong: (%d,%d)", hi, lo)
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := &prng.SplitMix64{State: 99}
	for i := 0; i < 1000; i++ {
		v := intn(r, 17)
		if v >= 17 {
			t.Fatalf("intn(17) produced %d", v)
		}
	}
}

// bulkFixtures builds one instance of every generator shape for the Bulk
// contract tests.  Each entry is a factory so tests can build independent
// identical streams for Next-vs-NextBlock comparison.
func bulkFixtures() map[string]func() Gen {
	points := func() Gen {
		rs := make([]Ref, 0, 200)
		for i := 0; i < 200; i++ {
			rs = append(rs, Ref{Addr: uint64(i * 64), Write: i%3 == 0, Instrs: int64(i % 7)})
		}
		return NewPoints(rs, 9)
	}
	return map[string]func() Gen{
		"empty":   func() Gen { return Empty{} },
		"compute": func() Gen { return Compute{N: 10} },
		"points":  points,
		"scan":    func() Gen { return &Scan{Base: 1 << 20, Bytes: 4096, LineBytes: 64, InstrsPerRef: 3, Passes: 3} },
		"strided": func() Gen { return &Strided{Base: 1 << 21, StrideBytes: 192, Count: 173, InstrsPerRef: 2} },
		"random": func() Gen {
			return &Random{Base: 1 << 22, Bytes: 1 << 16, LineBytes: 64, Count: 301, Seed: 7, InstrsPerRef: 4}
		},
		"concat": func() Gen {
			return NewConcat(
				NewScan(1<<20, 1000, 64, 1),
				&Strided{Base: 1 << 21, StrideBytes: 64, Count: 5, InstrsPerRef: 2},
				Empty{},
				&Random{Base: 1 << 22, Bytes: 1 << 12, LineBytes: 64, Count: 77, Seed: 3, InstrsPerRef: 1},
			)
		},
		"interleave": func() Gen {
			return NewInterleave(
				NewScan(1<<20, 900, 64, 1),
				&Strided{Base: 1 << 21, StrideBytes: 128, Count: 40, InstrsPerRef: 2},
			)
		},
		"repeat":   func() Gen { return NewRepeat(NewScan(1<<20, 500, 64, 2), 4) },
		"withtail": func() Gen { return NewWithTail(NewScan(1<<20, 700, 64, 1), 33) },
		"recorded": func() Gen { return Record(NewScan(1<<20, 900, 64, 2)) },
		"interned": func() Gen {
			return NewTraceStore().Intern(&Strided{Base: 1 << 21, StrideBytes: 256, Count: 99, InstrsPerRef: 3})
		},
	}
}

// TestAllGeneratorsImplementBulk pins the package invariant the simulator's
// batched reader relies on: every generator here has a native NextBlock.
func TestAllGeneratorsImplementBulk(t *testing.T) {
	for name, mk := range bulkFixtures() {
		if _, ok := mk().(Bulk); !ok {
			t.Errorf("%s: does not implement Bulk", name)
		}
	}
}

// TestNextBlockMatchesNext drains each generator per-reference and in blocks
// of several sizes (including 1 and a non-divisor of the stream length) and
// requires identical reference sequences.
func TestNextBlockMatchesNext(t *testing.T) {
	for name, mk := range bulkFixtures() {
		want := drain(t, mk())
		for _, bs := range []int{1, 3, BlockSize, 1000} {
			g := mk()
			var got []Ref
			buf := make([]Ref, bs)
			for {
				n := ReadBlock(g, buf)
				if n == 0 {
					break
				}
				got = append(got, buf[:n]...)
				if len(got) > 1<<22 {
					t.Fatalf("%s: block drain did not terminate", name)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("%s bs=%d: %d refs via blocks, %d via Next", name, bs, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s bs=%d: ref %d = %+v via blocks, %+v via Next", name, bs, i, got[i], want[i])
				}
			}
		}
	}
}

// TestNextBlockMixesWithNext checks the two drain styles share one stream
// position, and that Reset rewinds the blocked stream too.
func TestNextBlockMixesWithNext(t *testing.T) {
	for name, mk := range bulkFixtures() {
		want := drain(t, mk())
		g := mk()
		var got []Ref
		buf := make([]Ref, 5)
		for turn := 0; ; turn++ {
			if turn%2 == 0 {
				r, ok := g.Next()
				if !ok {
					break
				}
				got = append(got, r)
			} else {
				n := ReadBlock(g, buf)
				if n == 0 {
					break
				}
				got = append(got, buf[:n]...)
			}
		}
		// A Next-exhaustion on an even turn can end the loop while block
		// reads would still return data or vice versa; both styles agree on
		// exhaustion, so the full sequence must have been consumed either way.
		if len(got) != len(want) {
			t.Fatalf("%s: mixed drain produced %d refs, want %d", name, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: mixed drain ref %d = %+v, want %+v", name, i, got[i], want[i])
			}
		}
		g.Reset()
		again := drain(t, g)
		if len(again) != len(want) {
			t.Fatalf("%s: post-Reset drain produced %d refs, want %d", name, len(again), len(want))
		}
	}
}

// TestReadBlockFallback exercises the adapter path for a Gen that does not
// implement Bulk.
type nextOnlyGen struct{ s Scan }

func (g *nextOnlyGen) Len() int64        { return g.s.Len() }
func (g *nextOnlyGen) Instrs() int64     { return g.s.Instrs() }
func (g *nextOnlyGen) Reset()            { g.s.Reset() }
func (g *nextOnlyGen) Next() (Ref, bool) { return g.s.Next() }

func TestReadBlockFallback(t *testing.T) {
	mk := func() Gen {
		return &nextOnlyGen{s: Scan{Base: 4096, Bytes: 1000, LineBytes: 64, InstrsPerRef: 2, Passes: 2}}
	}
	if _, ok := mk().(Bulk); ok {
		t.Fatalf("fixture unexpectedly implements Bulk")
	}
	want := drain(t, mk())
	g := mk()
	buf := make([]Ref, 7)
	var got []Ref
	for {
		n := ReadBlock(g, buf)
		if n == 0 {
			break
		}
		got = append(got, buf[:n]...)
	}
	if len(got) != len(want) {
		t.Fatalf("fallback drained %d refs, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("fallback ref %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestPointsInstrsCached guards the O(1) Instrs satellite fix: the total is
// computed once, stays correct across Reset/drain cycles, and NewPoints
// precomputes it.
func TestPointsInstrsCached(t *testing.T) {
	rs := []Ref{{Addr: 0, Instrs: 2}, {Addr: 64, Instrs: 3}, {Addr: 128, Instrs: 4}}
	p := NewPoints(rs, 5)
	if got := p.Instrs(); got != 14 {
		t.Fatalf("Instrs = %d, want 14", got)
	}
	drain(t, p)
	p.Reset()
	if got := p.Instrs(); got != 14 {
		t.Fatalf("Instrs after drain = %d, want 14", got)
	}
	// Zero-value construction computes lazily.
	lazy := &Points{Refs: rs, Tail: 1}
	if got := lazy.Instrs(); got != 10 {
		t.Fatalf("lazy Instrs = %d, want 10", got)
	}
	if got := lazy.Instrs(); got != 10 {
		t.Fatalf("lazy Instrs second call = %d, want 10", got)
	}
}

// TestConcatTotalsCachedAndInvalidated guards Concat's cached Len/Instrs
// sums and their invalidation on Append.
func TestConcatTotalsCachedAndInvalidated(t *testing.T) {
	c := NewConcat(NewScan(0, 640, 64, 2))
	if c.Len() != 10 || c.Instrs() != 20 {
		t.Fatalf("Len/Instrs = %d/%d, want 10/20", c.Len(), c.Instrs())
	}
	if c.Len() != 10 || c.Instrs() != 20 {
		t.Fatalf("cached Len/Instrs = %d/%d, want 10/20", c.Len(), c.Instrs())
	}
	c.Append(&Strided{Base: 1 << 20, StrideBytes: 64, Count: 4, InstrsPerRef: 3})
	if c.Len() != 14 || c.Instrs() != 32 {
		t.Fatalf("post-Append Len/Instrs = %d/%d, want 14/32", c.Len(), c.Instrs())
	}
}
