package minheap

import (
	"math/rand"
	"sort"
	"testing"
)

type intItem int

func (a intItem) Less(b intItem) bool { return a < b }

func TestHeapSortsAndZeroValueWorks(t *testing.T) {
	var h Heap[intItem] // zero value usable
	r := rand.New(rand.NewSource(1))
	const n = 1000
	want := make([]int, 0, n)
	for i := 0; i < n; i++ {
		v := r.Intn(10 * n)
		h.Push(intItem(v))
		want = append(want, v)
	}
	sort.Ints(want)
	if h.Len() != n {
		t.Fatalf("Len = %d, want %d", h.Len(), n)
	}
	if int(h.Min()) != want[0] {
		t.Fatalf("Min = %d, want %d", h.Min(), want[0])
	}
	for i, w := range want {
		if got := int(h.Pop()); got != w {
			t.Fatalf("pop %d = %d, want %d", i, got, w)
		}
	}
	if h.Len() != 0 {
		t.Fatalf("Len after drain = %d", h.Len())
	}
}

func TestHeapInterleavedPushPop(t *testing.T) {
	h := New[intItem](4)
	h.Push(5)
	h.Push(1)
	h.Push(3)
	if got := h.Pop(); got != 1 {
		t.Fatalf("Pop = %d, want 1", got)
	}
	h.Push(2)
	h.Push(0)
	for _, w := range []intItem{0, 2, 3, 5} {
		if got := h.Pop(); got != w {
			t.Fatalf("Pop = %d, want %d", got, w)
		}
	}
	h.Push(7)
	h.Reset()
	if h.Len() != 0 {
		t.Fatalf("Len after Reset = %d", h.Len())
	}
}

func TestPushIsAllocationFreeAfterWarmup(t *testing.T) {
	h := New[intItem](64)
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			h.Push(intItem(64 - i))
		}
		for h.Len() > 0 {
			h.Pop()
		}
	})
	if allocs != 0 {
		t.Fatalf("push/pop cycle allocated %.1f times, want 0", allocs)
	}
}
