// Package minheap is a typed binary min-heap for hot paths.
//
// container/heap's interface{} methods box every pushed element onto the Go
// heap, which in the simulator meant one allocation per simulated memory
// reference (engine events) and one per task (scheduler ready items).  This
// heap is generic over the element type with ordering supplied by the
// element's Less method, so it monomorphizes to direct calls on value types:
// pushes and pops are allocation-free slice operations once the backing
// array has grown to its working size (or was sized by New).
//
// The sift algorithms mirror container/heap's exactly, so for element types
// whose order is total (no Less ties) the pop sequence is identical —
// which is what lets the engine and schedulers swap implementations without
// perturbing event order.
package minheap

// Ordered is implemented by heap elements: Less reports whether the
// receiver sorts strictly before other.
type Ordered[T any] interface {
	Less(other T) bool
}

// Heap is a binary min-heap.  The zero value is an empty heap; New
// preallocates capacity.
type Heap[T Ordered[T]] struct {
	s []T
}

// New returns an empty heap whose backing array holds capacity elements
// before any push allocates.
func New[T Ordered[T]](capacity int) *Heap[T] {
	return &Heap[T]{s: make([]T, 0, capacity)}
}

// Len returns the number of elements.
func (h *Heap[T]) Len() int { return len(h.s) }

// Min returns the smallest element without removing it.  Valid only when
// Len() > 0.
func (h *Heap[T]) Min() T { return h.s[0] }

// Reset empties the heap, keeping the backing array.
func (h *Heap[T]) Reset() { h.s = h.s[:0] }

// Push adds x.
func (h *Heap[T]) Push(x T) {
	h.s = append(h.s, x)
	s := h.s
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s[i].Less(s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

// Pop removes and returns the smallest element.  Valid only when Len() > 0.
func (h *Heap[T]) Pop() T {
	s := h.s
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	h.s = s[:last]
	s = h.s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && s[l].Less(s[smallest]) {
			smallest = l
		}
		if r < last && s[r].Less(s[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		s[i], s[smallest] = s[smallest], s[i]
		i = smallest
	}
	return top
}
