package taskgroup

import (
	"testing"

	"cmpsched/internal/dag"
)

// buildSample builds a DAG of 8 tasks and a two-level group tree:
//
//	root (owns 0, 7)
//	├── left  (owns 1, 2, 3)   phase 0
//	└── right                  phase 1
//	    ├── r0 (owns 4, 5)
//	    └── r1 (owns 6)
func buildSample(t *testing.T) (*dag.DAG, *Tree) {
	t.Helper()
	d := dag.New("sample")
	for i := 0; i < 8; i++ {
		d.AddComputeTask("t", 10)
	}
	tr := New("root")
	left := tr.AddChild(nil, "left", "site:a", 100, 0)
	right := tr.AddChild(tr.Root, "right", "site:a", 200, 1)
	r0 := tr.AddChild(right, "r0", "site:b", 50, 0)
	r1 := tr.AddChild(right, "r1", "site:b", 60, 0)
	tr.Own(tr.Root, 0)
	tr.Own(left, 1, 2, 3)
	tr.Own(r0, 4, 5)
	tr.Own(r1, 6)
	tr.Own(tr.Root, 7)
	if err := tr.Finalize(d); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	return d, tr
}

func TestFinalizeComputesRanges(t *testing.T) {
	_, tr := buildSample(t)
	if tr.Root.First != 0 || tr.Root.Last != 7 || tr.Root.NumTasks() != 8 {
		t.Fatalf("root range = [%d,%d]", tr.Root.First, tr.Root.Last)
	}
	left := tr.Nodes[1]
	if left.First != 1 || left.Last != 3 || left.NumTasks() != 3 {
		t.Fatalf("left range = [%d,%d]", left.First, left.Last)
	}
	right := tr.Nodes[2]
	if right.First != 4 || right.Last != 6 {
		t.Fatalf("right range = [%d,%d]", right.First, right.Last)
	}
	if tr.NumGroups() != 5 {
		t.Fatalf("NumGroups = %d", tr.NumGroups())
	}
}

func TestLeafAndPhases(t *testing.T) {
	_, tr := buildSample(t)
	if !tr.Nodes[1].IsLeaf() || tr.Nodes[2].IsLeaf() {
		t.Fatalf("IsLeaf wrong")
	}
	phases := tr.Root.ChildrenByPhase()
	if len(phases) != 2 || len(phases[0]) != 1 || phases[0][0].Name != "left" || phases[1][0].Name != "right" {
		t.Fatalf("ChildrenByPhase = %+v", phases)
	}
	if tr.Nodes[3].ChildrenByPhase() != nil {
		t.Fatalf("leaf node should have no phases")
	}
}

func TestWalkPreOrderAndPrune(t *testing.T) {
	_, tr := buildSample(t)
	var names []string
	tr.Walk(func(n *Node) bool {
		names = append(names, n.Name)
		return n.Name != "right" // prune right's children
	})
	want := []string{"root", "left", "right"}
	if len(names) != len(want) {
		t.Fatalf("Walk visited %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Walk visited %v, want %v", names, want)
		}
	}
}

func TestGroupsBySite(t *testing.T) {
	_, tr := buildSample(t)
	bySite := tr.GroupsBySite()
	if len(bySite["site:a"]) != 2 || len(bySite["site:b"]) != 2 {
		t.Fatalf("GroupsBySite = %v", bySite)
	}
	if len(bySite[""]) != 0 {
		t.Fatalf("empty site should not be indexed")
	}
}

func TestFinalizeRejectsOverlappingSiblings(t *testing.T) {
	d := dag.New("bad")
	for i := 0; i < 4; i++ {
		d.AddComputeTask("t", 1)
	}
	tr := New("root")
	a := tr.AddChild(nil, "a", "", 0, 0)
	b := tr.AddChild(nil, "b", "", 0, 0)
	tr.Own(a, 0, 2)
	tr.Own(b, 1, 3)
	if err := tr.Finalize(d); err == nil {
		t.Fatalf("Finalize accepted overlapping siblings")
	}
}

func TestFinalizeRejectsHoles(t *testing.T) {
	d := dag.New("bad")
	for i := 0; i < 5; i++ {
		d.AddComputeTask("t", 1)
	}
	tr := New("root")
	tr.Own(tr.Root, 0, 4) // hole: tasks 1..3 belong to nobody inside [0,4]
	if err := tr.Finalize(d); err == nil {
		t.Fatalf("Finalize accepted a non-consecutive group")
	}
}

func TestFinalizeRejectsUnknownTask(t *testing.T) {
	d := dag.New("bad")
	d.AddComputeTask("t", 1)
	tr := New("root")
	tr.Own(tr.Root, 0, 99)
	if err := tr.Finalize(d); err == nil {
		t.Fatalf("Finalize accepted unknown task ID")
	}
}

func TestEmptyGroupAllowed(t *testing.T) {
	d := dag.New("tiny")
	d.AddComputeTask("t", 1)
	tr := New("root")
	tr.Own(tr.Root, 0)
	tr.AddChild(nil, "empty", "", 0, 0)
	if err := tr.Finalize(d); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	empty := tr.Nodes[1]
	if empty.NumTasks() != 0 {
		t.Fatalf("empty group NumTasks = %d", empty.NumTasks())
	}
}

func TestAddChildNilParentMeansRoot(t *testing.T) {
	tr := New("root")
	c := tr.AddChild(nil, "c", "", 0, 0)
	if c.Parent != tr.Root {
		t.Fatalf("nil parent should attach to root")
	}
	if len(tr.Root.Children) != 1 {
		t.Fatalf("root has %d children", len(tr.Root.Children))
	}
}
