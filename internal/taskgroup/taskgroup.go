// Package taskgroup represents the hierarchical task-group trees used by the
// working-set profiler (§6.1) and the automatic task-coarsening pass (§6.2).
//
// A task group is a set of tasks that are consecutive in the sequential
// execution of the program (a sub-graph of the DAG).  Groups nest: each
// parent is a superset of its children, sibling groups are disjoint, and the
// leaves of the hierarchy correspond to the finest-grain tasks.  Workload
// generators build the tree alongside the DAG; the profiler annotates each
// node with its working-set size; the coarsening pass walks the tree top
// down deciding where to stop parallelising.
package taskgroup

import (
	"fmt"

	"cmpsched/internal/dag"
)

// Node is one task group.
type Node struct {
	// ID is the node's index within its Tree.
	ID int
	// Name is a human-readable label, e.g. "sort[0:65536)".
	Name string
	// Site labels the spawn location in the program (the paper's
	// parallelization-table key, file:line).  Children created by the
	// same source-level spawn share a Site.
	Site string
	// Param is the value the program would compare against a threshold at
	// Site to decide whether to parallelise (e.g. sub-array bytes).
	Param float64
	// Phase groups children into independent sets: children with equal
	// Phase may run in parallel with each other, while different phases
	// are separated by dependences (e.g. the two recursive sorts are
	// phase 0 and the merge group is phase 1). The coarsening criterion
	// is applied to each phase separately (paper footnote 8).
	Phase int

	// Parent is nil for the root.
	Parent *Node
	// Children in creation (sequential) order.
	Children []*Node
	// Tasks are the task IDs owned directly by this node (not through
	// children), in creation order.
	Tasks []dag.TaskID

	// First and Last are the inclusive range of task IDs covered by the
	// node (own tasks plus all descendants). They are computed by
	// Finalize; the node covers tasks First..Last consecutively.
	First, Last dag.TaskID
}

// NumTasks returns the number of tasks covered by the node once the tree is
// finalized.
func (n *Node) NumTasks() int {
	if n.Last < n.First {
		return 0
	}
	return int(n.Last-n.First) + 1
}

// IsLeaf reports whether the node has no child groups.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// ChildrenByPhase partitions the children into phases, in ascending phase
// order. Children within a phase keep their creation order.
func (n *Node) ChildrenByPhase() [][]*Node {
	if len(n.Children) == 0 {
		return nil
	}
	byPhase := make(map[int][]*Node)
	maxPhase := 0
	for _, c := range n.Children {
		byPhase[c.Phase] = append(byPhase[c.Phase], c)
		if c.Phase > maxPhase {
			maxPhase = c.Phase
		}
	}
	var out [][]*Node
	for p := 0; p <= maxPhase; p++ {
		if nodes, ok := byPhase[p]; ok {
			out = append(out, nodes)
		}
	}
	return out
}

// Tree is a hierarchical grouping of a DAG's tasks.
type Tree struct {
	// Root covers every task.
	Root *Node
	// Nodes lists every node, indexed by Node.ID, in creation order.
	Nodes []*Node
}

// New returns a tree containing only a root node.
func New(rootName string) *Tree {
	t := &Tree{}
	t.Root = t.newNode(nil, rootName, "", 0, 0)
	return t
}

func (t *Tree) newNode(parent *Node, name, site string, param float64, phase int) *Node {
	n := &Node{
		ID:     len(t.Nodes),
		Name:   name,
		Site:   site,
		Param:  param,
		Phase:  phase,
		Parent: parent,
		First:  dag.TaskID(1),
		Last:   dag.TaskID(0), // empty until Finalize
	}
	if parent != nil {
		parent.Children = append(parent.Children, n)
	}
	t.Nodes = append(t.Nodes, n)
	return n
}

// AddChild creates a child group under parent.
func (t *Tree) AddChild(parent *Node, name, site string, param float64, phase int) *Node {
	if parent == nil {
		parent = t.Root
	}
	return t.newNode(parent, name, site, param, phase)
}

// Own records task IDs owned directly by node n.
func (t *Tree) Own(n *Node, ids ...dag.TaskID) {
	n.Tasks = append(n.Tasks, ids...)
}

// NumGroups returns the number of nodes in the tree.
func (t *Tree) NumGroups() int { return len(t.Nodes) }

// Walk visits nodes in pre-order. If fn returns false the node's children
// are skipped.
func (t *Tree) Walk(fn func(*Node) bool) {
	var rec func(*Node)
	rec = func(n *Node) {
		if !fn(n) {
			return
		}
		for _, c := range n.Children {
			rec(c)
		}
	}
	if t.Root != nil {
		rec(t.Root)
	}
}

// Finalize computes each node's covering task range and validates the
// paper's structural requirements: every group covers a consecutive task
// range, each parent is a superset of its children, and sibling groups are
// disjoint.
func (t *Tree) Finalize(d *dag.DAG) error {
	var rec func(n *Node) (first, last dag.TaskID, err error)
	rec = func(n *Node) (dag.TaskID, dag.TaskID, error) {
		first := dag.TaskID(1<<31 - 1)
		last := dag.TaskID(-1)
		include := func(f, l dag.TaskID) {
			if f < first {
				first = f
			}
			if l > last {
				last = l
			}
		}
		for _, id := range n.Tasks {
			if d.Task(id) == nil {
				return 0, 0, fmt.Errorf("taskgroup: node %q owns unknown task %d", n.Name, id)
			}
			include(id, id)
		}
		prevLast := dag.TaskID(-1)
		prevName := ""
		for _, c := range n.Children {
			cf, cl, err := rec(c)
			if err != nil {
				return 0, 0, err
			}
			if cl >= 0 {
				if prevLast >= 0 && cf <= prevLast {
					return 0, 0, fmt.Errorf("taskgroup: sibling groups %q and %q overlap (%d <= %d)",
						prevName, c.Name, cf, prevLast)
				}
				prevLast, prevName = cl, c.Name
				include(cf, cl)
			}
		}
		if last < 0 {
			// Empty group: allowed, covers nothing.
			n.First, n.Last = 1, 0
			return n.First, n.Last, nil
		}
		n.First, n.Last = first, last
		return first, last, nil
	}
	if t.Root == nil {
		return fmt.Errorf("taskgroup: tree has no root")
	}
	if _, _, err := rec(t.Root); err != nil {
		return err
	}
	// The root must cover every task consecutively; interior nodes must
	// cover consecutive ranges too (checked by counting coverage).
	return t.checkConsecutive(d)
}

// checkConsecutive verifies that each node's range is fully covered by its
// own tasks plus its children's ranges (no holes belonging to other parts of
// the program), which is what makes the one-pass working-set computation for
// "groups of consecutive tasks" valid.
func (t *Tree) checkConsecutive(d *dag.DAG) error {
	var err error
	t.Walk(func(n *Node) bool {
		if err != nil || n.Last < n.First {
			return false
		}
		covered := int64(0)
		for _, c := range n.Children {
			if c.Last >= c.First {
				covered += int64(c.Last-c.First) + 1
			}
		}
		covered += int64(len(n.Tasks))
		want := int64(n.Last-n.First) + 1
		if covered != want {
			err = fmt.Errorf("taskgroup: group %q covers tasks %d..%d (%d tasks) but owns/encloses only %d",
				n.Name, n.First, n.Last, want, covered)
			return false
		}
		return true
	})
	return err
}

// GroupsBySite returns the nodes grouped by spawn site, preserving creation
// order within each site. Used when building the parallelization table.
func (t *Tree) GroupsBySite() map[string][]*Node {
	out := make(map[string][]*Node)
	t.Walk(func(n *Node) bool {
		if n.Site != "" {
			out[n.Site] = append(out[n.Site], n)
		}
		return true
	})
	return out
}
