package cache

import (
	"fmt"
	"strconv"
	"strings"

	"cmpsched/internal/imath"
)

// TopologyKind selects how the L2 capacity is organised relative to the
// cores.  The paper's machine (§4.1) is TopologyShared; TopologyPrivate and
// TopologyClustered generalise it so the shared-vs-private design axis the
// paper argues from (constructive sharing needs a *shared* L2) can be
// evaluated rather than assumed.
type TopologyKind int

const (
	// TopologyShared is one L2 serving every core (the paper's machine).
	// It is the zero value, so configurations that predate the topology
	// layer keep their exact pre-refactor behaviour.
	TopologyShared TopologyKind = iota
	// TopologyPrivate gives each core its own L2 slice of 1/P of the total
	// capacity (equal-area comparison).
	TopologyPrivate
	// TopologyClustered shares one L2 slice among each group of
	// Topology.ClusterSize cores.  ClusterSize 1 degenerates to private,
	// ClusterSize >= P to shared.
	TopologyClustered
)

// String implements fmt.Stringer.
func (k TopologyKind) String() string {
	switch k {
	case TopologyShared:
		return "shared"
	case TopologyPrivate:
		return "private"
	case TopologyClustered:
		return "clustered"
	default:
		return fmt.Sprintf("TopologyKind(%d)", int(k))
	}
}

// MinL2HitLatency is the floor for scaled-down L2 slice hit latencies, in
// cycles: the latency of the smallest (1 MB) L2 in the paper's Table 3.
const MinL2HitLatency int64 = 7

// Topology describes how the chip's L2 capacity is partitioned into slices
// and how cores map onto them.  The zero value is the shared topology, i.e.
// the paper's machine.
type Topology struct {
	// Kind selects shared, private or clustered.
	Kind TopologyKind
	// ClusterSize is the number of cores sharing one L2 slice; it is only
	// meaningful for TopologyClustered.
	ClusterSize int
}

// Shared returns the shared-L2 topology (the paper's machine).
func Shared() Topology { return Topology{Kind: TopologyShared} }

// Private returns the private-L2-per-core topology.
func Private() Topology { return Topology{Kind: TopologyPrivate} }

// Clustered returns the topology with k cores per L2 slice.
func Clustered(k int) Topology {
	return Topology{Kind: TopologyClustered, ClusterSize: k}
}

// ParseTopology decodes the canonical encodings "shared", "private" and
// "clustered:<k>".
func ParseTopology(s string) (Topology, error) {
	switch {
	case s == "shared":
		return Shared(), nil
	case s == "private":
		return Private(), nil
	case strings.HasPrefix(s, "clustered:"):
		k, err := strconv.Atoi(strings.TrimPrefix(s, "clustered:"))
		if err != nil || k <= 0 {
			return Topology{}, fmt.Errorf("cache: bad cluster size in topology %q (want clustered:<k> with k >= 1)", s)
		}
		return Clustered(k), nil
	default:
		return Topology{}, fmt.Errorf("cache: unknown topology %q (want shared, private or clustered:<k>)", s)
	}
}

// MustParseTopology is ParseTopology but panics on error.
func MustParseTopology(s string) Topology {
	t, err := ParseTopology(s)
	if err != nil {
		panic(err)
	}
	return t
}

// String returns the canonical encoding accepted by ParseTopology.  It is
// the form folded into sweep content-address keys (config fingerprints), so
// distinct topologies always hash to distinct cache entries.
func (t Topology) String() string {
	switch t.Kind {
	case TopologyShared:
		return "shared"
	case TopologyPrivate:
		return "private"
	case TopologyClustered:
		return fmt.Sprintf("clustered:%d", t.ClusterSize)
	default:
		return fmt.Sprintf("topology(%d)", int(t.Kind))
	}
}

// Validate reports topologies that cannot be instantiated on cores cores.
func (t Topology) Validate(cores int) error {
	if cores <= 0 {
		return fmt.Errorf("cache: topology needs at least one core, got %d", cores)
	}
	switch t.Kind {
	case TopologyShared, TopologyPrivate:
		return nil
	case TopologyClustered:
		if t.ClusterSize <= 0 {
			return fmt.Errorf("cache: clustered topology needs ClusterSize >= 1, got %d", t.ClusterSize)
		}
		return nil
	default:
		return fmt.Errorf("cache: unknown topology kind %d", int(t.Kind))
	}
}

// coresPerSlice returns the number of cores mapped to one slice.
func (t Topology) coresPerSlice(cores int) int {
	switch t.Kind {
	case TopologyPrivate:
		return 1
	case TopologyClustered:
		k := t.ClusterSize
		if k > cores {
			k = cores
		}
		return k
	default:
		return cores
	}
}

// Slices returns the number of L2 slices the topology creates on a machine
// with cores cores: 1 for shared, cores for private, ceil(cores/k) for
// clustered.
func (t Topology) Slices(cores int) int {
	k := t.coresPerSlice(cores)
	return (cores + k - 1) / k
}

// SliceOf returns the L2 slice serving the given core.
func (t Topology) SliceOf(core, cores int) int {
	return core / t.coresPerSlice(cores)
}

// SliceConfig derives one slice's cache configuration from the total L2
// configuration: capacity is divided evenly among the slices (equal-area
// comparison — the aggregate sliced capacity never exceeds the total by
// more than one line per slice), the line size is unchanged, associativity
// shrinks when a slice's share cannot hold a full set (so the floor is one
// line, not one set — a full-associativity floor would silently hand a
// finely sliced machine many times the shared capacity at extreme scale
// factors), and the hit latency shrinks by 2 cycles per capacity halving
// (the trend of the paper's Tables 2-3, where each doubling of L2 capacity
// costs about 2 cycles), floored at MinL2HitLatency.  With one slice the
// total configuration is returned unchanged.
func (t Topology) SliceConfig(total Config, cores int) Config {
	slices := t.Slices(cores)
	if slices <= 1 {
		return total
	}
	slice := total
	slice.SizeBytes = total.SizeBytes / int64(slices)
	if slice.SizeBytes < total.LineBytes {
		slice.SizeBytes = total.LineBytes
	}
	if int64(slice.Assoc)*total.LineBytes > slice.SizeBytes {
		slice.Assoc = int(slice.SizeBytes / total.LineBytes)
	}
	lat := total.HitLatency - 2*imath.Log2Ceil(int64(slices))
	if lat < MinL2HitLatency {
		lat = MinL2HitLatency
	}
	if lat > total.HitLatency {
		lat = total.HitLatency
	}
	slice.HitLatency = lat
	return slice
}
