package cache

import (
	"testing"
	"testing/quick"
)

func smallCache(t *testing.T, sizeBytes int64, assoc int) *Cache {
	t.Helper()
	c, err := New(Config{SizeBytes: sizeBytes, LineBytes: 64, Assoc: assoc, HitLatency: 10})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestConfigSetsAndLines(t *testing.T) {
	cfg := Config{SizeBytes: 64 * 1024, LineBytes: 128, Assoc: 4}
	if cfg.Sets() != 128 {
		t.Fatalf("Sets = %d, want 128", cfg.Sets())
	}
	if cfg.Lines() != 512 {
		t.Fatalf("Lines = %d, want 512", cfg.Lines())
	}
	if cfg.EffectiveBytes() != 64*1024 {
		t.Fatalf("EffectiveBytes = %d", cfg.EffectiveBytes())
	}
}

func TestConfigNonPowerOfTwo(t *testing.T) {
	// 10MB, 20-way, 128B lines => 4096 sets.
	cfg := Config{SizeBytes: 10 << 20, LineBytes: 128, Assoc: 20}
	if cfg.Sets() != 4096 {
		t.Fatalf("Sets = %d, want 4096", cfg.Sets())
	}
	// An awkward size still yields at least one set and a usable cache.
	cfg = Config{SizeBytes: 100 * 128, LineBytes: 128, Assoc: 28}
	if cfg.Sets() != 3 {
		t.Fatalf("Sets = %d, want 3", cfg.Sets())
	}
	if _, err := New(cfg); err != nil {
		t.Fatalf("New: %v", err)
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []Config{
		{SizeBytes: 1024, LineBytes: 0, Assoc: 4},
		{SizeBytes: 1024, LineBytes: 64, Assoc: 0},
		{SizeBytes: 64, LineBytes: 64, Assoc: 4},
		{SizeBytes: 1024, LineBytes: 64, Assoc: 4, HitLatency: -1},
	}
	for i, cfg := range cases {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid config %+v", i, cfg)
		}
	}
	good := Config{SizeBytes: 1024, LineBytes: 64, Assoc: 4, HitLatency: 3}
	if err := good.Validate(); err != nil {
		t.Fatalf("Validate rejected good config: %v", err)
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := smallCache(t, 4096, 4)
	r := c.Access(1000, false)
	if r.Hit {
		t.Fatalf("first access should miss")
	}
	r = c.Access(1000, false)
	if !r.Hit {
		t.Fatalf("second access should hit")
	}
	// Same line, different offset within the 64-byte line (line base 960).
	r = c.Access(1000+16, true)
	if !r.Hit {
		t.Fatalf("same-line access should hit")
	}
	s := c.Stats()
	if s.Accesses != 3 || s.Hits != 2 || s.Misses != 1 || s.Writes != 1 || s.Reads != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	// Direct-mapped-ish: 2-way, 2 sets, 64B lines => 256 bytes.
	c := smallCache(t, 256, 2)
	// Three lines mapping to the same set (stride = sets*line = 128).
	a, b, d := uint64(0), uint64(128), uint64(256)
	c.Access(a, false)
	c.Access(b, false)
	// Touch a so that b is LRU.
	c.Access(a, false)
	r := c.Access(d, false)
	if !r.Evicted || r.EvictedAddr != b {
		t.Fatalf("expected eviction of %d, got %+v", b, r)
	}
	if !c.Contains(a) || c.Contains(b) || !c.Contains(d) {
		t.Fatalf("LRU state wrong: a=%v b=%v d=%v", c.Contains(a), c.Contains(b), c.Contains(d))
	}
}

func TestDirtyEvictionReportsWriteback(t *testing.T) {
	c := smallCache(t, 256, 2)
	c.Access(0, true) // dirty
	c.Access(128, false)
	r := c.Access(256, false) // evicts LRU (addr 0, dirty)
	if !r.Evicted || !r.EvictedDirty || r.EvictedAddr != 0 {
		t.Fatalf("expected dirty eviction of line 0, got %+v", r)
	}
	if c.Stats().Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", c.Stats().Writebacks)
	}
}

func TestInvalidate(t *testing.T) {
	c := smallCache(t, 4096, 4)
	c.Access(512, true)
	present, dirty := c.Invalidate(512)
	if !present || !dirty {
		t.Fatalf("Invalidate = (%v, %v), want (true, true)", present, dirty)
	}
	if c.Contains(512) {
		t.Fatalf("line still present after Invalidate")
	}
	present, _ = c.Invalidate(512)
	if present {
		t.Fatalf("second Invalidate should report absent")
	}
}

func TestFlushAndOccupancy(t *testing.T) {
	c := smallCache(t, 4096, 4)
	for i := 0; i < 8; i++ {
		c.Access(uint64(i*64), i%2 == 0)
	}
	if c.OccupiedLines() != 8 {
		t.Fatalf("OccupiedLines = %d, want 8", c.OccupiedLines())
	}
	dirty := c.Flush()
	if dirty != 4 {
		t.Fatalf("Flush dirty = %d, want 4", dirty)
	}
	if c.OccupiedLines() != 0 {
		t.Fatalf("cache not empty after Flush")
	}
}

func TestWorkingSetFitsNoCapacityMisses(t *testing.T) {
	// A working set equal to the cache size, accessed repeatedly, should
	// incur only cold misses (fully-associative behaviour approximated by
	// LRU within sets; use stride matching set mapping to avoid conflict).
	c := smallCache(t, 64*1024, 4)
	lines := int64(64 * 1024 / 64)
	for pass := 0; pass < 5; pass++ {
		for i := int64(0); i < lines; i++ {
			c.Access(uint64(i*64), false)
		}
	}
	s := c.Stats()
	if s.Misses != lines {
		t.Fatalf("misses = %d, want %d (cold only)", s.Misses, lines)
	}
	if s.MissRate() >= 0.25 {
		t.Fatalf("miss rate %f too high", s.MissRate())
	}
}

func TestWorkingSetExceedsCapacityThrashes(t *testing.T) {
	// Sequential passes over 2x the cache size with LRU should miss on
	// every access (the classic LRU sequential-thrash behaviour).
	c := smallCache(t, 4*1024, 4)
	lines := int64(2 * 4 * 1024 / 64)
	for pass := 0; pass < 3; pass++ {
		for i := int64(0); i < lines; i++ {
			c.Access(uint64(i*64), false)
		}
	}
	s := c.Stats()
	if s.Hits != 0 {
		t.Fatalf("hits = %d, want 0 for sequential thrash", s.Hits)
	}
}

func TestResetStatsKeepsContents(t *testing.T) {
	c := smallCache(t, 4096, 4)
	c.Access(0, false)
	c.ResetStats()
	if c.Stats().Accesses != 0 {
		t.Fatalf("stats not reset")
	}
	if r := c.Access(0, false); !r.Hit {
		t.Fatalf("contents lost by ResetStats")
	}
}

func TestStatsAddAndMissRate(t *testing.T) {
	a := Stats{Accesses: 10, Hits: 6, Misses: 4, Reads: 7, Writes: 3, Evictions: 2, Writebacks: 1}
	b := Stats{Accesses: 5, Hits: 5}
	a.Add(b)
	if a.Accesses != 15 || a.Hits != 11 || a.Misses != 4 {
		t.Fatalf("Add result %+v", a)
	}
	if got := a.MissRate(); got != 4.0/15.0 {
		t.Fatalf("MissRate = %f", got)
	}
	var empty Stats
	if empty.MissRate() != 0 {
		t.Fatalf("empty MissRate should be 0")
	}
}

// Property: the number of occupied lines never exceeds capacity, and
// hits+misses always equals accesses.
func TestPropertyCacheInvariants(t *testing.T) {
	f := func(addrs []uint16, writes []bool) bool {
		c := MustNew(Config{SizeBytes: 2048, LineBytes: 64, Assoc: 4, HitLatency: 1})
		for i, a := range addrs {
			w := i < len(writes) && writes[i]
			c.Access(uint64(a), w)
		}
		s := c.Stats()
		if s.Hits+s.Misses != s.Accesses {
			return false
		}
		if s.Reads+s.Writes != s.Accesses {
			return false
		}
		return c.OccupiedLines() <= c.Config().Lines()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: an access immediately after the same access is always a hit.
func TestPropertyRepeatAccessHits(t *testing.T) {
	f := func(addrs []uint32) bool {
		c := MustNew(Config{SizeBytes: 8192, LineBytes: 64, Assoc: 8, HitLatency: 1})
		for _, a := range addrs {
			c.Access(uint64(a), false)
			if r := c.Access(uint64(a), false); !r.Hit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("MustNew did not panic on invalid config")
		}
	}()
	MustNew(Config{})
}
