package cache

import (
	"math/rand"
	"testing"
)

// holderTestConfigs is a spread of hierarchy shapes for the masked-probe
// equivalence property: small caches force heavy eviction traffic, several
// topologies exercise multi-L1 slices, and WriteInvalidate adds the
// directory's own L1 invalidations to the mix.
func holderTestConfigs() []HierarchyConfig {
	l1 := Config{SizeBytes: 1 << 10, LineBytes: 64, Assoc: 2, HitLatency: 1}
	l2 := Config{SizeBytes: 8 << 10, LineBytes: 64, Assoc: 4, HitLatency: 10}
	return []HierarchyConfig{
		{Cores: 4, L1: l1, L2: l2},
		{Cores: 8, L1: l1, L2: l2},
		{Cores: 8, L1: l1, L2: l2, WriteInvalidate: true},
		{Cores: 8, L1: l1, L2: l2, Topology: Topology{Kind: TopologyPrivate}},
		{Cores: 8, L1: l1, L2: l2, Topology: Topology{Kind: TopologyClustered, ClusterSize: 4}},
	}
}

// TestMaskedInvalidationMatchesExhaustiveProbe drives a masked hierarchy and
// a probe-everything hierarchy through an identical randomized access stream
// and requires identical classification at every step and identical final
// statistics.  This is the bit-identity claim behind the holder-mask
// optimisation: probing only recorded holders must be indistinguishable from
// probing every L1 the slice serves.
func TestMaskedInvalidationMatchesExhaustiveProbe(t *testing.T) {
	for ci, cfg := range holderTestConfigs() {
		masked, err := NewHierarchy(cfg)
		if err != nil {
			t.Fatalf("config %d: %v", ci, err)
		}
		exhaustive, err := NewHierarchy(cfg)
		if err != nil {
			t.Fatalf("config %d: %v", ci, err)
		}
		// Forcing the fallback flag makes every inclusive-victim probe walk
		// all of the slice's L1s — the pre-optimisation behaviour.
		exhaustive.probeAll = true

		rng := rand.New(rand.NewSource(int64(100 + ci)))
		// A footprint a few times the L2 keeps hits, misses and evictions
		// all common; a handful of hot lines maximises cross-core sharing.
		lines := int64(4 * cfg.L2.SizeBytes / cfg.L2.LineBytes)
		for step := 0; step < 200000; step++ {
			core := rng.Intn(cfg.Cores)
			var line int64
			if rng.Intn(4) == 0 {
				line = int64(rng.Intn(16)) // hot shared lines
			} else {
				line = rng.Int63n(lines)
			}
			addr := uint64(line)*uint64(cfg.L2.LineBytes) + uint64(rng.Intn(int(cfg.L2.LineBytes)))
			write := rng.Intn(3) == 0
			got := masked.Access(core, addr, write)
			want := exhaustive.Access(core, addr, write)
			if got != want {
				t.Fatalf("config %d step %d (core %d addr %#x write %v): masked %+v, exhaustive %+v",
					ci, step, core, addr, write, got, want)
			}
		}
		if g, w := masked.L1Stats(), exhaustive.L1Stats(); g != w {
			t.Fatalf("config %d: L1 stats diverged: %+v vs %+v", ci, g, w)
		}
		if g, w := masked.L2Stats(), exhaustive.L2Stats(); g != w {
			t.Fatalf("config %d: L2 stats diverged: %+v vs %+v", ci, g, w)
		}
		if g, w := masked.Invalidations(), exhaustive.Invalidations(); g != w {
			t.Fatalf("config %d: coherence invalidations diverged: %d vs %d", ci, g, w)
		}
		// The fallback must never have tripped on the masked side: inclusion
		// guarantees L1 write-backs hit L2.
		if masked.probeAll {
			t.Fatalf("config %d: masked hierarchy fell back to exhaustive probing", ci)
		}
	}
}

// TestLastSlotIdentifiesResidentLine pins the Cache.LastSlot contract the
// holder masks are built on: after any Access, the slot holds the accessed
// line, and the slot is stable across re-touches until eviction.
func TestLastSlotIdentifiesResidentLine(t *testing.T) {
	c := MustNew(Config{SizeBytes: 1 << 10, LineBytes: 64, Assoc: 2, HitLatency: 1})
	rng := rand.New(rand.NewSource(7))
	slotOf := make(map[uint64]int)
	for step := 0; step < 20000; step++ {
		addr := uint64(rng.Intn(64)) * 64
		r := c.Access(addr, rng.Intn(2) == 0)
		slot := c.LastSlot()
		if slot < 0 || slot >= int(c.Config().Lines()) {
			t.Fatalf("step %d: slot %d out of range", step, slot)
		}
		if r.Hit {
			if want, ok := slotOf[addr]; ok && want != slot {
				t.Fatalf("step %d: line %#x moved slots %d -> %d without eviction", step, addr, want, slot)
			}
		}
		if r.Evicted {
			delete(slotOf, r.EvictedAddr)
		}
		slotOf[addr] = slot
	}
}
