package cache

import "testing"

func TestTopologyParseStringRoundTrip(t *testing.T) {
	for _, enc := range []string{"shared", "private", "clustered:4", "clustered:1"} {
		topo, err := ParseTopology(enc)
		if err != nil {
			t.Fatalf("ParseTopology(%q): %v", enc, err)
		}
		if got := topo.String(); got != enc {
			t.Errorf("round trip %q -> %q", enc, got)
		}
	}
	for _, bad := range []string{"", "l3", "clustered", "clustered:", "clustered:0", "clustered:-2", "clustered:x"} {
		if _, err := ParseTopology(bad); err == nil {
			t.Errorf("ParseTopology(%q) accepted", bad)
		}
	}
}

func TestTopologyZeroValueIsShared(t *testing.T) {
	var topo Topology
	if topo != Shared() {
		t.Fatalf("zero Topology = %v, want shared", topo)
	}
	if topo.String() != "shared" {
		t.Fatalf("zero Topology string = %q", topo.String())
	}
}

func TestTopologySlicesAndSliceOf(t *testing.T) {
	cases := []struct {
		topo   Topology
		cores  int
		slices int
		// sliceOf[core] for every core
		want []int
	}{
		{Shared(), 4, 1, []int{0, 0, 0, 0}},
		{Private(), 4, 4, []int{0, 1, 2, 3}},
		{Clustered(2), 4, 2, []int{0, 0, 1, 1}},
		{Clustered(2), 5, 3, []int{0, 0, 1, 1, 2}},
		{Clustered(4), 4, 1, []int{0, 0, 0, 0}},
		{Clustered(8), 4, 1, []int{0, 0, 0, 0}}, // k > P clamps to shared
		{Clustered(1), 3, 3, []int{0, 1, 2}},
	}
	for _, c := range cases {
		if got := c.topo.Slices(c.cores); got != c.slices {
			t.Errorf("%v.Slices(%d) = %d, want %d", c.topo, c.cores, got, c.slices)
		}
		for core, want := range c.want {
			if got := c.topo.SliceOf(core, c.cores); got != want {
				t.Errorf("%v.SliceOf(%d, %d) = %d, want %d", c.topo, core, c.cores, got, want)
			}
		}
	}
}

func TestTopologyValidate(t *testing.T) {
	if err := Shared().Validate(0); err == nil {
		t.Errorf("accepted zero cores")
	}
	if err := Clustered(0).Validate(4); err == nil {
		t.Errorf("accepted cluster size 0")
	}
	if err := (Topology{Kind: TopologyKind(99)}).Validate(4); err == nil {
		t.Errorf("accepted unknown kind")
	}
	for _, topo := range []Topology{Shared(), Private(), Clustered(3)} {
		if err := topo.Validate(8); err != nil {
			t.Errorf("%v.Validate(8): %v", topo, err)
		}
	}
}

func TestTopologySliceConfig(t *testing.T) {
	total := Config{SizeBytes: 8 << 20, LineBytes: 128, Assoc: 16, HitLatency: 13}

	// One slice: the total configuration is returned untouched.
	if got := Shared().SliceConfig(total, 8); got != total {
		t.Errorf("shared slice config %+v != total %+v", got, total)
	}

	// Private on 8 cores: capacity /8, latency -2*log2(8)=6, floored at 7.
	got := Private().SliceConfig(total, 8)
	if got.SizeBytes != (8<<20)/8 {
		t.Errorf("private slice size = %d, want %d", got.SizeBytes, (8<<20)/8)
	}
	if got.HitLatency != 7 {
		t.Errorf("private slice latency = %d, want 7 (13-6)", got.HitLatency)
	}
	if got.Assoc != total.Assoc || got.LineBytes != total.LineBytes {
		t.Errorf("slice config changed assoc/line: %+v", got)
	}

	// Clustered:4 on 8 cores: 2 slices, capacity /2, latency 13-2=11.
	got = Clustered(4).SliceConfig(total, 8)
	if got.SizeBytes != (8<<20)/2 || got.HitLatency != 11 {
		t.Errorf("clustered:4 slice = %+v, want size %d latency 11", got, (8<<20)/2)
	}

	// The latency floor holds even for extreme slicing.
	tiny := Config{SizeBytes: 1 << 20, LineBytes: 128, Assoc: 16, HitLatency: 7}
	got = Private().SliceConfig(tiny, 64)
	if got.HitLatency != MinL2HitLatency {
		t.Errorf("sliced latency = %d, want floor %d", got.HitLatency, MinL2HitLatency)
	}

	// When a slice's share cannot hold a full set, associativity shrinks
	// instead of the capacity floor inflating: the aggregate sliced
	// capacity must never exceed the total by more than one line per slice
	// (the equal-area guarantee), and the slice must stay valid.
	scaled := Config{SizeBytes: 5120, LineBytes: 128, Assoc: 20, HitLatency: 13}
	got = Private().SliceConfig(scaled, 32)
	if got.Assoc != 1 || got.SizeBytes != 160 {
		t.Errorf("undersized slice = %+v, want 160 B direct-mapped", got)
	}
	if err := got.Validate(); err != nil {
		t.Errorf("undersized slice invalid: %v", err)
	}
	for _, cores := range []int{2, 8, 32, 64} {
		for _, topo := range []Topology{Private(), Clustered(2), Clustered(4)} {
			slices := topo.Slices(cores)
			sl := topo.SliceConfig(scaled, cores)
			if agg, bound := sl.SizeBytes*int64(slices), scaled.SizeBytes+scaled.LineBytes*int64(slices); agg > bound {
				t.Errorf("%v on %d cores: aggregate slice capacity %d exceeds total %d (+1 line/slice bound %d)",
					topo, cores, agg, scaled.SizeBytes, bound)
			}
		}
	}
}

// TestHierarchyPrivateSliceIsolation checks that with private slices one
// core's traffic cannot displace another core's L2 lines — the defining
// property that forfeits constructive sharing.
func TestHierarchyPrivateSliceIsolation(t *testing.T) {
	cfg := HierarchyConfig{
		Cores:    2,
		L1:       Config{SizeBytes: 512, LineBytes: 64, Assoc: 2, HitLatency: 1},
		L2:       Config{SizeBytes: 8 << 10, LineBytes: 64, Assoc: 4, HitLatency: 9},
		Topology: Private(),
	}
	h, err := NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumSlices() != 2 {
		t.Fatalf("NumSlices = %d, want 2", h.NumSlices())
	}
	// Core 0 loads a line; core 1 then streams far more data than one slice
	// holds.  Core 0's slice must still contain the line.
	h.Access(0, 0x1000, false)
	for i := 0; i < 1024; i++ {
		h.Access(1, uint64(0x100000+i*64), false)
	}
	if !h.L2Slice(0).Contains(0x1000) {
		t.Errorf("core 1's traffic evicted core 0's private-slice line")
	}
	if h.L2Slice(1).Contains(0x1000) {
		t.Errorf("core 0's line leaked into core 1's slice")
	}
	// Per-slice stats attribute the traffic to the right slice.
	stats := h.L2SliceStats()
	if stats[0].Accesses != 1 || stats[1].Accesses != 1024 {
		t.Errorf("slice accesses = %d/%d, want 1/1024", stats[0].Accesses, stats[1].Accesses)
	}
	agg := h.L2Stats()
	if agg.Accesses != 1025 {
		t.Errorf("aggregate accesses = %d, want 1025", agg.Accesses)
	}
}

// TestHierarchyClusteredSharingWithinCluster checks that cores in the same
// cluster share a slice (constructive sharing) while cores in different
// clusters do not.
func TestHierarchyClusteredSharingWithinCluster(t *testing.T) {
	cfg := HierarchyConfig{
		Cores:    4,
		L1:       Config{SizeBytes: 256, LineBytes: 64, Assoc: 2, HitLatency: 1},
		L2:       Config{SizeBytes: 16 << 10, LineBytes: 64, Assoc: 4, HitLatency: 9},
		Topology: Clustered(2),
	}
	h, err := NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumSlices() != 2 {
		t.Fatalf("NumSlices = %d, want 2", h.NumSlices())
	}
	// Core 0 fetches a line (misses to memory, fills slice 0).
	if acc := h.Access(0, 0x2000, false); acc.Level != LevelMemory || acc.Slice != 0 {
		t.Fatalf("first access: %+v", acc)
	}
	// Cluster-mate core 1 hits it in the shared slice.
	if acc := h.Access(1, 0x2000, false); acc.Level != LevelL2 || acc.Slice != 0 {
		t.Errorf("cluster-mate access should hit slice 0's L2, got %+v", acc)
	}
	// Core 2 (other cluster) misses all the way to memory.
	if acc := h.Access(2, 0x2000, false); acc.Level != LevelMemory || acc.Slice != 1 {
		t.Errorf("cross-cluster access should miss to memory on slice 1, got %+v", acc)
	}
}

// TestHierarchyInclusiveInvalidationPerSlice checks that an inclusive-L2
// victim invalidates L1 copies only in the cores the evicting slice serves.
func TestHierarchyInclusiveInvalidationPerSlice(t *testing.T) {
	// Tiny direct-ish L2 slices force evictions quickly.
	cfg := HierarchyConfig{
		Cores:    2,
		L1:       Config{SizeBytes: 4 << 10, LineBytes: 64, Assoc: 4, HitLatency: 1},
		L2:       Config{SizeBytes: 512, LineBytes: 64, Assoc: 2, HitLatency: 9},
		Topology: Private(),
	}
	h, err := NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Both cores load the same address into their own slice and L1.
	h.Access(0, 0x40, false)
	h.Access(1, 0x40, false)
	// Core 0 thrashes its own tiny slice (4 lines per slice: 512/64/2 = 4
	// sets... actually 512/(64*2) = 4 sets of 2 ways = 8 lines).
	for i := 1; i < 64; i++ {
		h.Access(0, uint64(0x40+i*64*4), false)
	}
	// Core 0's copy must be gone from its L1 (inclusion), core 1's intact.
	if h.L1(0).Contains(0x40) && !h.L2Slice(0).Contains(0x40) {
		t.Errorf("core 0's L1 kept a line its slice evicted (inclusion violated)")
	}
	if !h.L1(1).Contains(0x40) {
		t.Errorf("slice 0's eviction invalidated core 1's L1 line in another slice")
	}
}
