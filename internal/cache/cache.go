// Package cache models set-associative caches with LRU replacement and the
// two-level (private L1, shared L2) hierarchy used by the CMP simulator.
//
// The model is functional rather than cycle-accurate: each access classifies
// as a hit or a miss at each level and reports the victim line (for
// write-back traffic accounting).  Latencies are attached by the caller
// (package cmpsim) from the configuration tables in package config.
package cache

import "fmt"

// Config describes one cache.
type Config struct {
	// SizeBytes is the total capacity.
	SizeBytes int64
	// LineBytes is the cache-line size.
	LineBytes int64
	// Assoc is the set associativity (ways).
	Assoc int
	// HitLatency is the access latency in cycles charged on a hit.
	HitLatency int64
}

// Sets returns the number of sets implied by the configuration (at least 1).
func (c Config) Sets() int {
	if c.LineBytes <= 0 || c.Assoc <= 0 {
		return 1
	}
	sets := c.SizeBytes / (c.LineBytes * int64(c.Assoc))
	if sets < 1 {
		sets = 1
	}
	return int(sets)
}

// Lines returns the total number of lines the cache holds.
func (c Config) Lines() int64 { return int64(c.Sets()) * int64(c.Assoc) }

// EffectiveBytes returns the capacity actually modelled (Sets*Assoc*Line),
// which may be slightly below SizeBytes when SizeBytes is not an exact
// multiple of LineBytes*Assoc.
func (c Config) EffectiveBytes() int64 { return c.Lines() * c.LineBytes }

// Validate reports obviously inconsistent configurations.
func (c Config) Validate() error {
	if c.LineBytes <= 0 {
		return fmt.Errorf("cache: LineBytes must be positive, got %d", c.LineBytes)
	}
	if c.Assoc <= 0 {
		return fmt.Errorf("cache: Assoc must be positive, got %d", c.Assoc)
	}
	if c.SizeBytes < c.LineBytes*int64(c.Assoc) {
		return fmt.Errorf("cache: SizeBytes %d smaller than one set (%d)", c.SizeBytes, c.LineBytes*int64(c.Assoc))
	}
	if c.HitLatency < 0 {
		return fmt.Errorf("cache: negative HitLatency %d", c.HitLatency)
	}
	return nil
}

// Stats accumulates access counts for one cache.
type Stats struct {
	Accesses   int64
	Hits       int64
	Misses     int64
	Reads      int64
	Writes     int64
	Evictions  int64
	Writebacks int64
}

// MissRate returns Misses/Accesses, or 0 when there were no accesses.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Accesses += other.Accesses
	s.Hits += other.Hits
	s.Misses += other.Misses
	s.Reads += other.Reads
	s.Writes += other.Writes
	s.Evictions += other.Evictions
	s.Writebacks += other.Writebacks
}

// Per-way state bits held in Cache.state.
const (
	lineValid uint8 = 1 << iota
	lineDirty
)

// Cache is a set-associative cache with true-LRU replacement and a
// write-back, write-allocate policy.
//
// Way metadata is stored structure-of-arrays in flat set-major slices (set i
// occupies index range [i*assoc, (i+1)*assoc)): tags, LRU use counters and
// packed valid/dirty bits live in separate arrays so the hit scan — the
// single hottest loop in the simulator — streams only the 8-byte tags
// instead of dragging padded per-way structs through the host cache.
// Line/set arithmetic uses shifts and masks whenever the line size and set
// count are powers of two — every access otherwise pays two hardware
// integer divisions.  Neither layout nor arithmetic affects classification:
// the modelled geometry and LRU behaviour are identical.
type Cache struct {
	cfg Config
	// tags[i] is the line base address held by flat way i (valid only when
	// state[i]&lineValid is set; invalid ways may hold stale tags).
	tags []uint64
	// use is the per-way LRU timestamp: the cache clock at last touch.
	use []uint64
	// state packs the valid and dirty bits per way.
	state   []uint8
	assoc   int
	numSets int
	setMask uint64
	clock   uint64
	// Per-access counters.  The access count itself is derived from the
	// clock (which advances exactly once per Access) minus the clock value
	// at the last stats reset, and Hits/Reads are derived in Stats()
	// (Hits = Accesses-Misses, Reads = Accesses-Writes) — so a hit bumps
	// nothing beyond the clock.
	clockBase  uint64
	misses     int64
	writes     int64
	evictions  int64
	writebacks int64
	// power2 records whether the set count is a power of two, enabling
	// mask-based indexing.
	power2 bool
	// linePow2/lineShift/lineMask enable shift/mask line arithmetic when
	// LineBytes is a power of two.
	linePow2  bool
	lineShift uint
	lineMask  uint64
	// lastSlot is the flat way index (set*assoc + way) touched by the most
	// recent Access: the hit way, or the filled victim on a miss.  Exposed
	// via LastSlot so the hierarchy can key per-line bookkeeping off the
	// slot a line occupies without an extra lookup.
	lastSlot int
}

// AccessResult describes the outcome of a single cache access.
type AccessResult struct {
	// Hit reports whether the line was present.
	Hit bool
	// Evicted reports whether a valid line was displaced to make room.
	Evicted bool
	// EvictedAddr is the base address of the displaced line when Evicted.
	EvictedAddr uint64
	// EvictedDirty reports whether the displaced line was dirty (requires
	// a write-back).
	EvictedDirty bool
}

// New returns an empty cache with the given configuration.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Sets()
	lines := n * cfg.Assoc
	// tags and use share one backing array to keep per-cache construction
	// cheap; the hot scans index them independently.
	words := make([]uint64, 2*lines)
	c := &Cache{
		cfg:     cfg,
		tags:    words[:lines:lines],
		use:     words[lines:],
		state:   make([]uint8, lines),
		assoc:   cfg.Assoc,
		numSets: n,
		power2:  n&(n-1) == 0,
	}
	if c.power2 {
		c.setMask = uint64(n - 1)
	}
	if lb := uint64(cfg.LineBytes); lb&(lb-1) == 0 {
		c.linePow2 = true
		c.lineMask = ^(lb - 1)
		for 1<<c.lineShift < lb {
			c.lineShift++
		}
	}
	return c, nil
}

// MustNew is New but panics on error; for use with known-good configs.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the accumulated statistics.
func (c *Cache) Stats() Stats {
	accesses := int64(c.clock - c.clockBase)
	return Stats{
		Accesses:   accesses,
		Hits:       accesses - c.misses,
		Misses:     c.misses,
		Reads:      accesses - c.writes,
		Writes:     c.writes,
		Evictions:  c.evictions,
		Writebacks: c.writebacks,
	}
}

// ResetStats clears the statistics without touching cache contents.
func (c *Cache) ResetStats() {
	c.clockBase = c.clock
	c.misses, c.writes, c.evictions, c.writebacks = 0, 0, 0, 0
}

// lineAddr returns the base address of the line containing addr.
func (c *Cache) lineAddr(addr uint64) uint64 {
	if c.linePow2 {
		return addr & c.lineMask
	}
	return addr - addr%uint64(c.cfg.LineBytes)
}

func (c *Cache) setIndex(lineAddr uint64) int {
	var idx uint64
	if c.linePow2 {
		idx = lineAddr >> c.lineShift
	} else {
		idx = lineAddr / uint64(c.cfg.LineBytes)
	}
	if c.power2 {
		return int(idx & c.setMask)
	}
	return int(idx % uint64(c.numSets))
}

// setBase returns the flat index of the first way of the set holding
// lineAddr.
func (c *Cache) setBase(lineAddr uint64) int {
	return c.setIndex(lineAddr) * c.assoc
}

// Access performs a read or write of addr, allocating on miss, and returns
// the outcome.
func (c *Cache) Access(addr uint64, write bool) AccessResult {
	la := c.lineAddr(addr)
	base := c.setIndex(la) * c.assoc
	c.clock++
	if write {
		c.writes++
	}
	tags := c.tags[base : base+c.assoc]
	st := c.state[base : base+c.assoc : base+c.assoc]
	// Hit scan: tag compare first — a stale tag on an invalid way is the
	// only false positive, so the state byte is consulted only on a match.
	for i := range tags {
		if tags[i] == la && st[i]&lineValid != 0 {
			c.use[base+i] = c.clock
			if write {
				st[i] |= lineDirty
			}
			c.lastSlot = base + i
			return AccessResult{Hit: true}
		}
	}
	// Miss: fill the first invalid way, otherwise evict LRU (lowest use,
	// ties to the lowest index) — one scan tracking both candidates.
	c.misses++
	use := c.use[base : base+c.assoc : base+c.assoc]
	victim := -1
	lru := 0
	lruUse := use[0]
	for i := range st {
		if st[i]&lineValid == 0 {
			victim = i
			break
		}
		if use[i] < lruUse {
			lru, lruUse = i, use[i]
		}
	}
	res := AccessResult{}
	if victim == -1 {
		victim = lru
		res.Evicted = true
		res.EvictedAddr = tags[victim]
		res.EvictedDirty = st[victim]&lineDirty != 0
		c.evictions++
		if res.EvictedDirty {
			c.writebacks++
		}
	}
	tags[victim] = la
	use[victim] = c.clock
	if write {
		st[victim] = lineValid | lineDirty
	} else {
		st[victim] = lineValid
	}
	c.lastSlot = base + victim
	return res
}

// LastSlot returns the flat slot index (set*assoc + way) of the line touched
// by the most recent Access: the way that hit, or the way filled on a miss.
// Slot indices are stable identifiers for resident lines — a line stays in
// its slot until evicted — so callers can maintain per-resident-line state in
// a dense array of Config.Lines() entries.
func (c *Cache) LastSlot() int { return c.lastSlot }

// Contains reports whether the line holding addr is present, without
// affecting LRU state or statistics.
func (c *Cache) Contains(addr uint64) bool {
	la := c.lineAddr(addr)
	base := c.setBase(la)
	for i := 0; i < c.assoc; i++ {
		if c.tags[base+i] == la && c.state[base+i]&lineValid != 0 {
			return true
		}
	}
	return false
}

// Invalidate removes the line holding addr if present, returning whether it
// was present and dirty.
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	la := c.lineAddr(addr)
	base := c.setBase(la)
	for i := 0; i < c.assoc; i++ {
		if c.tags[base+i] == la && c.state[base+i]&lineValid != 0 {
			dirty = c.state[base+i]&lineDirty != 0
			c.tags[base+i] = 0
			c.use[base+i] = 0
			c.state[base+i] = 0
			return true, dirty
		}
	}
	return false, false
}

// Flush invalidates every line, returning the number of dirty lines that
// would have been written back.
func (c *Cache) Flush() (dirty int64) {
	for i := range c.state {
		if c.state[i]&(lineValid|lineDirty) == lineValid|lineDirty {
			dirty++
		}
		c.tags[i] = 0
		c.use[i] = 0
		c.state[i] = 0
	}
	return dirty
}

// OccupiedLines returns the number of valid lines currently resident.
func (c *Cache) OccupiedLines() int64 {
	var n int64
	for i := range c.state {
		if c.state[i]&lineValid != 0 {
			n++
		}
	}
	return n
}
