// Package cache models set-associative caches with LRU replacement and the
// two-level (private L1, shared L2) hierarchy used by the CMP simulator.
//
// The model is functional rather than cycle-accurate: each access classifies
// as a hit or a miss at each level and reports the victim line (for
// write-back traffic accounting).  Latencies are attached by the caller
// (package cmpsim) from the configuration tables in package config.
package cache

import "fmt"

// Config describes one cache.
type Config struct {
	// SizeBytes is the total capacity.
	SizeBytes int64
	// LineBytes is the cache-line size.
	LineBytes int64
	// Assoc is the set associativity (ways).
	Assoc int
	// HitLatency is the access latency in cycles charged on a hit.
	HitLatency int64
}

// Sets returns the number of sets implied by the configuration (at least 1).
func (c Config) Sets() int {
	if c.LineBytes <= 0 || c.Assoc <= 0 {
		return 1
	}
	sets := c.SizeBytes / (c.LineBytes * int64(c.Assoc))
	if sets < 1 {
		sets = 1
	}
	return int(sets)
}

// Lines returns the total number of lines the cache holds.
func (c Config) Lines() int64 { return int64(c.Sets()) * int64(c.Assoc) }

// EffectiveBytes returns the capacity actually modelled (Sets*Assoc*Line),
// which may be slightly below SizeBytes when SizeBytes is not an exact
// multiple of LineBytes*Assoc.
func (c Config) EffectiveBytes() int64 { return c.Lines() * c.LineBytes }

// Validate reports obviously inconsistent configurations.
func (c Config) Validate() error {
	if c.LineBytes <= 0 {
		return fmt.Errorf("cache: LineBytes must be positive, got %d", c.LineBytes)
	}
	if c.Assoc <= 0 {
		return fmt.Errorf("cache: Assoc must be positive, got %d", c.Assoc)
	}
	if c.SizeBytes < c.LineBytes*int64(c.Assoc) {
		return fmt.Errorf("cache: SizeBytes %d smaller than one set (%d)", c.SizeBytes, c.LineBytes*int64(c.Assoc))
	}
	if c.HitLatency < 0 {
		return fmt.Errorf("cache: negative HitLatency %d", c.HitLatency)
	}
	return nil
}

// Stats accumulates access counts for one cache.
type Stats struct {
	Accesses   int64
	Hits       int64
	Misses     int64
	Reads      int64
	Writes     int64
	Evictions  int64
	Writebacks int64
}

// MissRate returns Misses/Accesses, or 0 when there were no accesses.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Accesses += other.Accesses
	s.Hits += other.Hits
	s.Misses += other.Misses
	s.Reads += other.Reads
	s.Writes += other.Writes
	s.Evictions += other.Evictions
	s.Writebacks += other.Writebacks
}

type way struct {
	tag   uint64
	valid bool
	dirty bool
	// use is a per-cache monotonically increasing counter recording the
	// most recent touch, used for LRU selection.
	use uint64
}

// Cache is a set-associative cache with true-LRU replacement and a
// write-back, write-allocate policy.
//
// The ways of all sets live in one flat set-major array (set i occupies
// ways[i*assoc : (i+1)*assoc]), and line/set arithmetic uses shifts and
// masks whenever the line size and set count are powers of two — every
// access otherwise pays two hardware integer divisions, which dominated the
// simulator's profile.  Neither change affects classification: the modelled
// geometry and LRU behaviour are identical.
type Cache struct {
	cfg     Config
	ways    []way
	assoc   int
	numSets int
	setMask uint64
	clock   uint64
	stats   Stats
	// power2 records whether the set count is a power of two, enabling
	// mask-based indexing.
	power2 bool
	// linePow2/lineShift/lineMask enable shift/mask line arithmetic when
	// LineBytes is a power of two.
	linePow2  bool
	lineShift uint
	lineMask  uint64
}

// AccessResult describes the outcome of a single cache access.
type AccessResult struct {
	// Hit reports whether the line was present.
	Hit bool
	// Evicted reports whether a valid line was displaced to make room.
	Evicted bool
	// EvictedAddr is the base address of the displaced line when Evicted.
	EvictedAddr uint64
	// EvictedDirty reports whether the displaced line was dirty (requires
	// a write-back).
	EvictedDirty bool
}

// New returns an empty cache with the given configuration.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Sets()
	c := &Cache{
		cfg:     cfg,
		ways:    make([]way, n*cfg.Assoc),
		assoc:   cfg.Assoc,
		numSets: n,
		power2:  n&(n-1) == 0,
	}
	if c.power2 {
		c.setMask = uint64(n - 1)
	}
	if lb := uint64(cfg.LineBytes); lb&(lb-1) == 0 {
		c.linePow2 = true
		c.lineMask = ^(lb - 1)
		for 1<<c.lineShift < lb {
			c.lineShift++
		}
	}
	return c, nil
}

// MustNew is New but panics on error; for use with known-good configs.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats clears the statistics without touching cache contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// lineAddr returns the base address of the line containing addr.
func (c *Cache) lineAddr(addr uint64) uint64 {
	if c.linePow2 {
		return addr & c.lineMask
	}
	return addr - addr%uint64(c.cfg.LineBytes)
}

func (c *Cache) setIndex(lineAddr uint64) int {
	var idx uint64
	if c.linePow2 {
		idx = lineAddr >> c.lineShift
	} else {
		idx = lineAddr / uint64(c.cfg.LineBytes)
	}
	if c.power2 {
		return int(idx & c.setMask)
	}
	return int(idx % uint64(c.numSets))
}

// set returns the ways of the set holding lineAddr.
func (c *Cache) set(lineAddr uint64) []way {
	si := c.setIndex(lineAddr)
	return c.ways[si*c.assoc : (si+1)*c.assoc]
}

// Access performs a read or write of addr, allocating on miss, and returns
// the outcome.
func (c *Cache) Access(addr uint64, write bool) AccessResult {
	la := c.lineAddr(addr)
	set := c.set(la)
	c.clock++
	c.stats.Accesses++
	if write {
		c.stats.Writes++
	} else {
		c.stats.Reads++
	}
	tag := la
	// Hit path.
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].use = c.clock
			if write {
				set[i].dirty = true
			}
			c.stats.Hits++
			return AccessResult{Hit: true}
		}
	}
	// Miss: find an invalid way, otherwise evict LRU.
	c.stats.Misses++
	victim := -1
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
	}
	res := AccessResult{}
	if victim == -1 {
		victim = 0
		for i := 1; i < len(set); i++ {
			if set[i].use < set[victim].use {
				victim = i
			}
		}
		res.Evicted = true
		res.EvictedAddr = set[victim].tag
		res.EvictedDirty = set[victim].dirty
		c.stats.Evictions++
		if set[victim].dirty {
			c.stats.Writebacks++
		}
	}
	set[victim] = way{tag: tag, valid: true, dirty: write, use: c.clock}
	return res
}

// Contains reports whether the line holding addr is present, without
// affecting LRU state or statistics.
func (c *Cache) Contains(addr uint64) bool {
	la := c.lineAddr(addr)
	set := c.set(la)
	for i := range set {
		if set[i].valid && set[i].tag == la {
			return true
		}
	}
	return false
}

// Invalidate removes the line holding addr if present, returning whether it
// was present and dirty.
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	la := c.lineAddr(addr)
	set := c.set(la)
	for i := range set {
		if set[i].valid && set[i].tag == la {
			present = true
			dirty = set[i].dirty
			set[i] = way{}
			return present, dirty
		}
	}
	return false, false
}

// Flush invalidates every line, returning the number of dirty lines that
// would have been written back.
func (c *Cache) Flush() (dirty int64) {
	for i := range c.ways {
		if c.ways[i].valid && c.ways[i].dirty {
			dirty++
		}
		c.ways[i] = way{}
	}
	return dirty
}

// OccupiedLines returns the number of valid lines currently resident.
func (c *Cache) OccupiedLines() int64 {
	var n int64
	for i := range c.ways {
		if c.ways[i].valid {
			n++
		}
	}
	return n
}
