package cache

import "cmpsched/internal/obs"

// Publish folds the statistics into reg as counters under prefix (e.g.
// "cache.l1" yields "cache.l1.hits").  Counters accumulate, so publishing
// the stats of successive runs — a sweep's jobs — sums them; publishing into
// a nil registry is a no-op.
func (s Stats) Publish(reg *obs.Registry, prefix string) {
	reg.Counter(prefix + ".accesses").Add(s.Accesses)
	reg.Counter(prefix + ".hits").Add(s.Hits)
	reg.Counter(prefix + ".misses").Add(s.Misses)
	reg.Counter(prefix + ".evictions").Add(s.Evictions)
	reg.Counter(prefix + ".writebacks").Add(s.Writebacks)
}
