package cache

import "testing"

func testHierarchy(t *testing.T, cores int, writeInv bool) *Hierarchy {
	t.Helper()
	h, err := NewHierarchy(HierarchyConfig{
		Cores:           cores,
		L1:              Config{SizeBytes: 1024, LineBytes: 64, Assoc: 2, HitLatency: 1},
		L2:              Config{SizeBytes: 16 * 1024, LineBytes: 64, Assoc: 4, HitLatency: 10},
		WriteInvalidate: writeInv,
	})
	if err != nil {
		t.Fatalf("NewHierarchy: %v", err)
	}
	return h
}

func TestHierarchyLevels(t *testing.T) {
	h := testHierarchy(t, 2, false)
	// Cold: must go to memory.
	r := h.Access(0, 4096, false)
	if r.Level != LevelMemory || r.OffChipTransfers != 1 {
		t.Fatalf("cold access = %+v", r)
	}
	// Same core, same line: L1 hit.
	r = h.Access(0, 4096+8, false)
	if r.Level != LevelL1 {
		t.Fatalf("second access level = %v, want L1", r.Level)
	}
	// Different core, same line: misses its own L1, hits shared L2.
	r = h.Access(1, 4096, false)
	if r.Level != LevelL2 {
		t.Fatalf("cross-core access level = %v, want L2 (constructive sharing)", r.Level)
	}
	if r.OffChipTransfers != 0 {
		t.Fatalf("L2 hit should not use off-chip bandwidth, got %d transfers", r.OffChipTransfers)
	}
}

func TestHierarchyStatsAggregation(t *testing.T) {
	h := testHierarchy(t, 4, false)
	for core := 0; core < 4; core++ {
		for i := 0; i < 10; i++ {
			h.Access(core, uint64(i*64), false)
		}
	}
	l1 := h.L1Stats()
	if l1.Accesses != 40 {
		t.Fatalf("L1 accesses = %d, want 40", l1.Accesses)
	}
	l2 := h.L2Stats()
	// Core 0 misses all 10 in L1 and L2; later cores hit in L2.
	if l2.Misses != 10 {
		t.Fatalf("L2 misses = %d, want 10", l2.Misses)
	}
	if l2.Hits != l2.Accesses-10 {
		t.Fatalf("L2 hits = %d, accesses = %d", l2.Hits, l2.Accesses)
	}
	h.ResetStats()
	if h.L1Stats().Accesses != 0 || h.L2Stats().Accesses != 0 {
		t.Fatalf("ResetStats did not clear")
	}
}

func TestHierarchyDirtyL2EvictionCostsBandwidth(t *testing.T) {
	// Tiny L2 to force evictions of dirty lines.
	h, err := NewHierarchy(HierarchyConfig{
		Cores: 1,
		L1:    Config{SizeBytes: 128, LineBytes: 64, Assoc: 2, HitLatency: 1},
		L2:    Config{SizeBytes: 256, LineBytes: 64, Assoc: 2, HitLatency: 10},
	})
	if err != nil {
		t.Fatalf("NewHierarchy: %v", err)
	}
	transfers := 0
	// Write a long stream; dirty victims must be written back off-chip.
	for i := 0; i < 64; i++ {
		r := h.Access(0, uint64(i*64), true)
		transfers += r.OffChipTransfers
	}
	// 64 fetches plus a substantial number of dirty write-backs.
	if transfers <= 64 {
		t.Fatalf("transfers = %d, want > 64 (write-backs must consume bandwidth)", transfers)
	}
}

func TestHierarchyInclusionInvalidatesL1(t *testing.T) {
	h, err := NewHierarchy(HierarchyConfig{
		Cores: 1,
		L1:    Config{SizeBytes: 4096, LineBytes: 64, Assoc: 4, HitLatency: 1},
		L2:    Config{SizeBytes: 256, LineBytes: 64, Assoc: 2, HitLatency: 10},
	})
	if err != nil {
		t.Fatalf("NewHierarchy: %v", err)
	}
	h.Access(0, 0, false)
	// Fill the L2 set containing line 0 to force its eviction from L2.
	for i := 1; i <= 8; i++ {
		h.Access(0, uint64(i*256), false) // same L2 set (2 sets of 64B lines => stride 128; use 256 to be safe for both sets)
	}
	if h.L1(0).Contains(0) && !h.L2().Contains(0) {
		t.Fatalf("inclusion violated: line 0 in L1 but not in L2")
	}
}

func TestHierarchyWriteInvalidate(t *testing.T) {
	h := testHierarchy(t, 2, true)
	h.Access(0, 4096, false)
	h.Access(1, 4096, false)
	// Core 1 writes: core 0's copy must be invalidated.
	r := h.Access(1, 4096, true)
	if r.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", r.Invalidations)
	}
	if h.L1(0).Contains(4096) {
		t.Fatalf("stale copy left in core 0's L1")
	}
	if h.Invalidations() != 1 {
		t.Fatalf("total invalidations = %d, want 1", h.Invalidations())
	}
}

func TestHierarchyConfigErrors(t *testing.T) {
	_, err := NewHierarchy(HierarchyConfig{Cores: 0})
	if err == nil {
		t.Fatalf("accepted zero cores")
	}
	_, err = NewHierarchy(HierarchyConfig{Cores: 65,
		L1: Config{SizeBytes: 1024, LineBytes: 64, Assoc: 2},
		L2: Config{SizeBytes: 1024, LineBytes: 64, Assoc: 2}})
	if err == nil {
		t.Fatalf("accepted 65 cores")
	}
	_, err = NewHierarchy(HierarchyConfig{Cores: 1,
		L1: Config{},
		L2: Config{SizeBytes: 1024, LineBytes: 64, Assoc: 2}})
	if err == nil {
		t.Fatalf("accepted invalid L1")
	}
	_, err = NewHierarchy(HierarchyConfig{Cores: 1,
		L1: Config{SizeBytes: 1024, LineBytes: 64, Assoc: 2},
		L2: Config{}})
	if err == nil {
		t.Fatalf("accepted invalid L2")
	}
}

func TestLevelString(t *testing.T) {
	if LevelL1.String() != "L1" || LevelL2.String() != "L2" || LevelMemory.String() != "memory" {
		t.Fatalf("Level.String wrong")
	}
	if Level(9).String() == "" {
		t.Fatalf("unknown level should still format")
	}
}
