package cache

import (
	"fmt"
	"math/bits"
)

// Level identifies where in the hierarchy an access was satisfied.
type Level int

// Hierarchy levels.
const (
	LevelL1 Level = iota
	LevelL2
	LevelMemory
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelMemory:
		return "memory"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// HierarchyConfig configures a private-L1 / sliced-L2 hierarchy.  The zero
// Topology is the shared topology, so existing shared-L2 configurations are
// unchanged.
type HierarchyConfig struct {
	// Cores is the number of private L1 caches.
	Cores int
	// L1 is the per-core L1 configuration.
	L1 Config
	// L2 is the *total* L2 configuration; the topology divides it into
	// slices (see Topology.SliceConfig).
	L2 Config
	// Topology partitions the L2 capacity into slices and maps cores onto
	// them: shared (one slice, the paper's machine), private (one slice per
	// core) or clustered (ClusterSize cores per slice).
	Topology Topology
	// WriteInvalidate enables a simple directory that invalidates other
	// cores' L1 copies when a core writes a line.  It affects only
	// coherence statistics, not timing.
	WriteInvalidate bool
}

// HierarchyAccess is the outcome of one access through the hierarchy.
type HierarchyAccess struct {
	// Level is the level that satisfied the access (L1, L2, or memory).
	Level Level
	// Slice is the index of the L2 slice serving the accessing core (0 for
	// the shared topology).  Callers use it to charge the slice's hit
	// latency and to attribute off-chip traffic to the slice's port.
	Slice int
	// OffChipTransfers is the number of off-chip line transfers triggered:
	// 1 for the fetch when the access missed in L2, plus 1 if a dirty L2
	// victim must be written back.
	OffChipTransfers int
	// L1Evicted / L2Evicted report capacity displacement at each level.
	L1Evicted bool
	L2Evicted bool
	// Invalidations is the number of remote L1 copies invalidated (only
	// when WriteInvalidate is enabled).
	Invalidations int
}

// Hierarchy is a private-L1, sliced-L2 cache hierarchy.  With the shared
// topology (one slice) it is exactly the paper's machine.
type Hierarchy struct {
	cfg      HierarchyConfig
	l1s      []*Cache
	l2s      []*Cache
	sliceOf  []int      // core -> L2 slice index
	sliceL1s [][]*Cache // slice -> the L1s of the cores it serves
	sliceCfg Config
	dir      map[uint64]uint64 // line -> bitmask of cores with an L1 copy
	invs     int64

	// holders[s][slot] is a bitmask of cores that MAY hold, in their L1, the
	// line resident in slot `slot` of L2 slice s.  It is maintained as a
	// superset of the true holder set (bits go stale when an L1 silently
	// drops its copy), which is sound: inclusive-victim invalidation probes
	// exactly the masked L1s instead of every L1 the slice serves, and
	// probing a non-holder is a statistics-free no-op.  Inclusion (an L1
	// line is always present in its backing slice) guarantees L1 dirty
	// write-backs hit L2 and therefore never move lines between slots behind
	// the mask's back; if a write-back ever misses, probeAll pins the slice
	// back to the exhaustive probe so classification stays identical.
	holders  [][]uint64
	probeAll bool
}

// NewHierarchy builds the hierarchy.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	if cfg.Cores <= 0 {
		return nil, fmt.Errorf("cache: hierarchy needs at least one core, got %d", cfg.Cores)
	}
	if cfg.Cores > 64 {
		return nil, fmt.Errorf("cache: hierarchy supports at most 64 cores, got %d", cfg.Cores)
	}
	if err := cfg.Topology.Validate(cfg.Cores); err != nil {
		return nil, err
	}
	h := &Hierarchy{cfg: cfg}
	for i := 0; i < cfg.Cores; i++ {
		l1, err := New(cfg.L1)
		if err != nil {
			return nil, fmt.Errorf("cache: L1[%d]: %w", i, err)
		}
		h.l1s = append(h.l1s, l1)
	}
	h.sliceCfg = cfg.Topology.SliceConfig(cfg.L2, cfg.Cores)
	slices := cfg.Topology.Slices(cfg.Cores)
	for i := 0; i < slices; i++ {
		l2, err := New(h.sliceCfg)
		if err != nil {
			return nil, fmt.Errorf("cache: L2 slice[%d]: %w", i, err)
		}
		h.l2s = append(h.l2s, l2)
	}
	h.sliceOf = make([]int, cfg.Cores)
	h.sliceL1s = make([][]*Cache, slices)
	h.holders = make([][]uint64, slices)
	for i := range h.holders {
		h.holders[i] = make([]uint64, h.sliceCfg.Lines())
	}
	for c := 0; c < cfg.Cores; c++ {
		s := cfg.Topology.SliceOf(c, cfg.Cores)
		h.sliceOf[c] = s
		h.sliceL1s[s] = append(h.sliceL1s[s], h.l1s[c])
	}
	if cfg.WriteInvalidate {
		h.dir = make(map[uint64]uint64)
	}
	return h, nil
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// L1 returns core's private L1 cache.
func (h *Hierarchy) L1(core int) *Cache { return h.l1s[core] }

// L2 returns the first L2 slice; with the shared topology this is the one
// shared L2 cache.
func (h *Hierarchy) L2() *Cache { return h.l2s[0] }

// NumSlices returns the number of L2 slices.
func (h *Hierarchy) NumSlices() int { return len(h.l2s) }

// L2Slice returns the i-th L2 slice.
func (h *Hierarchy) L2Slice(i int) *Cache { return h.l2s[i] }

// SliceOf returns the L2 slice index serving core.
func (h *Hierarchy) SliceOf(core int) int { return h.sliceOf[core] }

// SliceConfig returns the per-slice L2 configuration (capacity and latency
// already divided by the topology).
func (h *Hierarchy) SliceConfig() Config { return h.sliceCfg }

// Invalidations returns the total number of coherence invalidations.
func (h *Hierarchy) Invalidations() int64 { return h.invs }

// Access performs one memory access by core and classifies it.
func (h *Hierarchy) Access(core int, addr uint64, write bool) HierarchyAccess {
	if core < 0 || core >= len(h.l1s) {
		panic(fmt.Sprintf("cache: access from unknown core %d", core))
	}
	slice := h.sliceOf[core]
	out := HierarchyAccess{Slice: slice}
	l1 := h.l1s[core]
	l2 := h.l2s[slice]

	r1 := l1.Access(addr, write)
	out.L1Evicted = r1.Evicted
	if h.dir != nil {
		line := addr - addr%uint64(h.cfg.L2.LineBytes)
		h.trackL1(core, addr, line, write, r1, &out)
	}
	if r1.Hit {
		out.Level = LevelL1
		return out
	}

	// An L1 dirty victim is written back into the core's L2 slice (on-chip
	// traffic only).  Inclusion means the victim is still resident in L2, so
	// this hits; a miss would fill a slot without holder bookkeeping, so it
	// drops the slice group back to exhaustive victim probing.
	if r1.Evicted && r1.EvictedDirty {
		wb := l2.Access(r1.EvictedAddr, true)
		if !wb.Hit {
			h.probeAll = true
		}
		if wb.Evicted && wb.EvictedDirty {
			out.OffChipTransfers++
		}
	}

	r2 := l2.Access(addr, write)
	slot := l2.LastSlot()
	out.L2Evicted = r2.Evicted
	if r2.Evicted {
		// Inclusive L2 slices: drop any stale L1 copies of the victim line
		// held by the cores this slice serves, so the model never holds
		// lines absent from their backing slice.  Only the recorded holders
		// need probing (Invalidate elsewhere is a no-op with no stats), which
		// turns the per-eviction cost from cores-per-slice probes into a
		// popcount-sized loop.
		if h.probeAll {
			for _, l1c := range h.sliceL1s[slice] {
				l1c.Invalidate(r2.EvictedAddr)
			}
		} else {
			for m := h.holders[slice][slot]; m != 0; m &= m - 1 {
				h.l1s[bits.TrailingZeros64(m)].Invalidate(r2.EvictedAddr)
			}
		}
		if h.dir != nil {
			h.dropDir(r2.EvictedAddr, slice)
		}
		if r2.EvictedDirty {
			out.OffChipTransfers++
		}
	}
	if r2.Hit {
		h.holders[slice][slot] |= 1 << uint(core)
		out.Level = LevelL2
		return out
	}
	h.holders[slice][slot] = 1 << uint(core)
	out.Level = LevelMemory
	out.OffChipTransfers++
	return out
}

// dropDir removes from the directory the L1 copies belonging to slice's
// cores after an inclusive-L2 victim invalidation.
func (h *Hierarchy) dropDir(line uint64, slice int) {
	mask, ok := h.dir[line]
	if !ok {
		return
	}
	for c := range h.l1s {
		if h.sliceOf[c] == slice {
			mask &^= 1 << uint(c)
		}
	}
	if mask == 0 {
		delete(h.dir, line)
	} else {
		h.dir[line] = mask
	}
}

// trackL1 maintains the write-invalidate directory.
func (h *Hierarchy) trackL1(core int, addr, line uint64, write bool, r1 AccessResult, out *HierarchyAccess) {
	if r1.Evicted {
		evLine := r1.EvictedAddr - r1.EvictedAddr%uint64(h.cfg.L2.LineBytes)
		if mask, ok := h.dir[evLine]; ok {
			mask &^= 1 << uint(core)
			if mask == 0 {
				delete(h.dir, evLine)
			} else {
				h.dir[evLine] = mask
			}
		}
	}
	mask := h.dir[line]
	if write {
		// Invalidate all other copies.
		others := mask &^ (1 << uint(core))
		for c := 0; others != 0; c++ {
			if others&1 != 0 {
				if present, _ := h.l1s[c].Invalidate(addr); present {
					out.Invalidations++
					h.invs++
				}
			}
			others >>= 1
		}
		mask = 1 << uint(core)
	} else {
		mask |= 1 << uint(core)
	}
	h.dir[line] = mask
}

// L1Stats returns the aggregate statistics over all private L1 caches.
func (h *Hierarchy) L1Stats() Stats {
	var total Stats
	for _, c := range h.l1s {
		total.Add(c.Stats())
	}
	return total
}

// L2Stats returns the aggregate L2 statistics over all slices (for the
// shared topology this is the single shared L2's statistics, as before).
func (h *Hierarchy) L2Stats() Stats {
	var total Stats
	for _, c := range h.l2s {
		total.Add(c.Stats())
	}
	return total
}

// L2SliceStats returns a copy of each slice's statistics, indexed by slice.
func (h *Hierarchy) L2SliceStats() []Stats {
	out := make([]Stats, len(h.l2s))
	for i, c := range h.l2s {
		out[i] = c.Stats()
	}
	return out
}

// ResetStats clears statistics on every cache.
func (h *Hierarchy) ResetStats() {
	for _, c := range h.l1s {
		c.ResetStats()
	}
	for _, c := range h.l2s {
		c.ResetStats()
	}
	h.invs = 0
}
