package cache

import "fmt"

// Level identifies where in the hierarchy an access was satisfied.
type Level int

// Hierarchy levels.
const (
	LevelL1 Level = iota
	LevelL2
	LevelMemory
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelMemory:
		return "memory"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// HierarchyConfig configures a private-L1 / shared-L2 hierarchy.
type HierarchyConfig struct {
	// Cores is the number of private L1 caches.
	Cores int
	// L1 is the per-core L1 configuration.
	L1 Config
	// L2 is the shared L2 configuration.
	L2 Config
	// WriteInvalidate enables a simple directory that invalidates other
	// cores' L1 copies when a core writes a line.  It affects only
	// coherence statistics, not timing.
	WriteInvalidate bool
}

// HierarchyAccess is the outcome of one access through the hierarchy.
type HierarchyAccess struct {
	// Level is the level that satisfied the access (L1, L2, or memory).
	Level Level
	// OffChipTransfers is the number of off-chip line transfers triggered:
	// 1 for the fetch when the access missed in L2, plus 1 if a dirty L2
	// victim must be written back.
	OffChipTransfers int
	// L1Evicted / L2Evicted report capacity displacement at each level.
	L1Evicted bool
	L2Evicted bool
	// Invalidations is the number of remote L1 copies invalidated (only
	// when WriteInvalidate is enabled).
	Invalidations int
}

// Hierarchy is a private-L1, shared-L2 cache hierarchy.
type Hierarchy struct {
	cfg  HierarchyConfig
	l1s  []*Cache
	l2   *Cache
	dir  map[uint64]uint64 // line -> bitmask of cores with an L1 copy
	invs int64
}

// NewHierarchy builds the hierarchy.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	if cfg.Cores <= 0 {
		return nil, fmt.Errorf("cache: hierarchy needs at least one core, got %d", cfg.Cores)
	}
	if cfg.Cores > 64 {
		return nil, fmt.Errorf("cache: hierarchy supports at most 64 cores, got %d", cfg.Cores)
	}
	h := &Hierarchy{cfg: cfg}
	for i := 0; i < cfg.Cores; i++ {
		l1, err := New(cfg.L1)
		if err != nil {
			return nil, fmt.Errorf("cache: L1[%d]: %w", i, err)
		}
		h.l1s = append(h.l1s, l1)
	}
	l2, err := New(cfg.L2)
	if err != nil {
		return nil, fmt.Errorf("cache: L2: %w", err)
	}
	h.l2 = l2
	if cfg.WriteInvalidate {
		h.dir = make(map[uint64]uint64)
	}
	return h, nil
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// L1 returns core's private L1 cache.
func (h *Hierarchy) L1(core int) *Cache { return h.l1s[core] }

// L2 returns the shared L2 cache.
func (h *Hierarchy) L2() *Cache { return h.l2 }

// Invalidations returns the total number of coherence invalidations.
func (h *Hierarchy) Invalidations() int64 { return h.invs }

// Access performs one memory access by core and classifies it.
func (h *Hierarchy) Access(core int, addr uint64, write bool) HierarchyAccess {
	if core < 0 || core >= len(h.l1s) {
		panic(fmt.Sprintf("cache: access from unknown core %d", core))
	}
	out := HierarchyAccess{}
	l1 := h.l1s[core]
	line := addr - addr%uint64(h.cfg.L2.LineBytes)

	r1 := l1.Access(addr, write)
	out.L1Evicted = r1.Evicted
	if h.dir != nil {
		h.trackL1(core, addr, line, write, r1, &out)
	}
	if r1.Hit {
		out.Level = LevelL1
		return out
	}

	// An L1 dirty victim is written back into the shared L2 (on-chip
	// traffic only).
	if r1.Evicted && r1.EvictedDirty {
		wb := h.l2.Access(r1.EvictedAddr, true)
		if wb.Evicted && wb.EvictedDirty {
			out.OffChipTransfers++
		}
	}

	r2 := h.l2.Access(addr, write)
	out.L2Evicted = r2.Evicted
	if r2.Evicted {
		// Inclusive L2: drop any stale L1 copies of the victim line so
		// the model never holds lines absent from L2.
		for _, l1c := range h.l1s {
			l1c.Invalidate(r2.EvictedAddr)
		}
		if h.dir != nil {
			delete(h.dir, r2.EvictedAddr)
		}
		if r2.EvictedDirty {
			out.OffChipTransfers++
		}
	}
	if r2.Hit {
		out.Level = LevelL2
		return out
	}
	out.Level = LevelMemory
	out.OffChipTransfers++
	return out
}

// trackL1 maintains the write-invalidate directory.
func (h *Hierarchy) trackL1(core int, addr, line uint64, write bool, r1 AccessResult, out *HierarchyAccess) {
	if r1.Evicted {
		evLine := r1.EvictedAddr - r1.EvictedAddr%uint64(h.cfg.L2.LineBytes)
		if mask, ok := h.dir[evLine]; ok {
			mask &^= 1 << uint(core)
			if mask == 0 {
				delete(h.dir, evLine)
			} else {
				h.dir[evLine] = mask
			}
		}
	}
	mask := h.dir[line]
	if write {
		// Invalidate all other copies.
		others := mask &^ (1 << uint(core))
		for c := 0; others != 0; c++ {
			if others&1 != 0 {
				if present, _ := h.l1s[c].Invalidate(addr); present {
					out.Invalidations++
					h.invs++
				}
			}
			others >>= 1
		}
		mask = 1 << uint(core)
	} else {
		mask |= 1 << uint(core)
	}
	h.dir[line] = mask
}

// L1Stats returns the aggregate statistics over all private L1 caches.
func (h *Hierarchy) L1Stats() Stats {
	var total Stats
	for _, c := range h.l1s {
		total.Add(c.Stats())
	}
	return total
}

// L2Stats returns the shared L2 statistics.
func (h *Hierarchy) L2Stats() Stats { return h.l2.Stats() }

// ResetStats clears statistics on every cache.
func (h *Hierarchy) ResetStats() {
	for _, c := range h.l1s {
		c.ResetStats()
	}
	h.l2.ResetStats()
	h.invs = 0
}
