package coarsen

import (
	"testing"

	"cmpsched/internal/cmpsim"
	"cmpsched/internal/config"
	"cmpsched/internal/dag"
	"cmpsched/internal/profile"
	"cmpsched/internal/sched"
	"cmpsched/internal/taskgroup"
	"cmpsched/internal/workload"
)

// buildProfiledMergesort builds a small Mergesort plus its profile and
// task-group tree.
func buildProfiledMergesort(t *testing.T, elements, taskWS int64) (*dag.DAG, *profile.Profile, *taskgroup.Tree) {
	t.Helper()
	ms := workload.NewMergesort(workload.MergesortConfig{Elements: elements, TaskWorkingSetBytes: taskWS})
	d, tree, err := ms.Build()
	if err != nil {
		t.Fatal(err)
	}
	pr, err := profile.NewLruTree(profile.Config{
		LineBytes:  128,
		CacheSizes: []int64{8 << 10, 32 << 10, 128 << 10, 512 << 10},
	}).ProfileDAG(d)
	if err != nil {
		t.Fatal(err)
	}
	return d, pr, tree
}

func TestParamsValidate(t *testing.T) {
	if err := (Params{CacheSizeBytes: 0, Cores: 4}).Validate(); err == nil {
		t.Fatalf("zero cache accepted")
	}
	if err := (Params{CacheSizeBytes: 1024, Cores: 0}).Validate(); err == nil {
		t.Fatalf("zero cores accepted")
	}
	if (Params{}).slack() != 2 || (Params{SlackFactor: 4}).slack() != 4 {
		t.Fatalf("slack default wrong")
	}
}

func TestCoarsenSelectsSequentialGroups(t *testing.T) {
	d, pr, tree := buildProfiledMergesort(t, 1<<14, 2<<10)
	_ = d
	cacheSize := int64(64 << 10)
	cores := 4
	sel, err := Coarsen(pr, tree, Params{CacheSizeBytes: cacheSize, Cores: cores})
	if err != nil {
		t.Fatalf("Coarsen: %v", err)
	}
	if len(sel.Sequential) == 0 {
		t.Fatalf("coarsening selected nothing on a fine-grained DAG")
	}
	// Every selected group's working set obeys the budget at its parent:
	// the parent's working set W <= K * cache/(2*cores), so in particular
	// each selected child's own working set is below the parent's.
	budget := cacheSize / int64(cores*2)
	for _, id := range sel.Sequential {
		n := tree.Nodes[id]
		parent := n.Parent
		if parent == nil {
			t.Fatalf("root selected as sequential")
		}
		w := pr.GroupOf(parent).WorkingSetBytes
		k := int64(0)
		for _, sib := range parent.ChildrenByPhase() {
			for _, c := range sib {
				if c.Phase == n.Phase {
					k++
				}
			}
		}
		if w > k*budget {
			t.Fatalf("group %q selected although parent working set %d exceeds %d*%d", n.Name, w, k, budget)
		}
	}
	// Selected groups must not be nested in one another.
	for _, a := range sel.Sequential {
		for _, b := range sel.Sequential {
			if a == b {
				continue
			}
			na, nb := tree.Nodes[a], tree.Nodes[b]
			if na.First >= nb.First && na.Last <= nb.Last {
				t.Fatalf("selected group %q nested inside %q", na.Name, nb.Name)
			}
		}
	}
	// The parallelization table has a threshold for the sort site.
	if sel.Threshold("mergesort.go:sort") <= 0 && sel.Threshold("mergesort.go:merge") <= 0 {
		t.Fatalf("no thresholds recorded: %+v", sel.Table)
	}
	if sel.IsSequential(-1) {
		t.Fatalf("IsSequential(-1) should be false")
	}
}

func TestCoarsenLargerCacheMeansCoarserTasks(t *testing.T) {
	_, pr, tree := buildProfiledMergesort(t, 1<<14, 2<<10)
	small, err := Coarsen(pr, tree, Params{CacheSizeBytes: 16 << 10, Cores: 8})
	if err != nil {
		t.Fatal(err)
	}
	large, err := Coarsen(pr, tree, Params{CacheSizeBytes: 1 << 20, Cores: 8})
	if err != nil {
		t.Fatal(err)
	}
	smallThresh := small.Threshold("mergesort.go:sort")
	largeThresh := large.Threshold("mergesort.go:sort")
	if largeThresh < smallThresh {
		t.Fatalf("larger cache should allow coarser (>= threshold) tasks: %f vs %f", largeThresh, smallThresh)
	}
	// More cores means finer tasks (smaller per-core budget).
	few, err := Coarsen(pr, tree, Params{CacheSizeBytes: 256 << 10, Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	many, err := Coarsen(pr, tree, Params{CacheSizeBytes: 256 << 10, Cores: 16})
	if err != nil {
		t.Fatal(err)
	}
	if many.Threshold("mergesort.go:sort") > few.Threshold("mergesort.go:sort") {
		t.Fatalf("more cores should not coarsen more: %f vs %f",
			many.Threshold("mergesort.go:sort"), few.Threshold("mergesort.go:sort"))
	}
}

func TestCoarsenErrors(t *testing.T) {
	_, pr, tree := buildProfiledMergesort(t, 1<<13, 2<<10)
	if _, err := Coarsen(pr, nil, Params{CacheSizeBytes: 1024, Cores: 2}); err == nil {
		t.Fatalf("nil tree accepted")
	}
	if _, err := Coarsen(pr, tree, Params{}); err == nil {
		t.Fatalf("invalid params accepted")
	}
}

func TestCollapseDAGPreservesWorkAndValidity(t *testing.T) {
	d, pr, tree := buildProfiledMergesort(t, 1<<14, 2<<10)
	sel, err := Coarsen(pr, tree, Params{CacheSizeBytes: 64 << 10, Cores: 4})
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := CollapseDAG(d, tree, sel)
	if err != nil {
		t.Fatalf("CollapseDAG: %v", err)
	}
	if coarse.NumTasks() >= d.NumTasks() {
		t.Fatalf("collapse did not reduce task count: %d -> %d", d.NumTasks(), coarse.NumTasks())
	}
	if coarse.TotalInstrs() != d.TotalInstrs() {
		t.Fatalf("total work changed: %d -> %d", d.TotalInstrs(), coarse.TotalInstrs())
	}
	if coarse.TotalRefs() != d.TotalRefs() {
		t.Fatalf("total refs changed: %d -> %d", d.TotalRefs(), coarse.TotalRefs())
	}
	if err := coarse.Validate(); err != nil {
		t.Fatalf("collapsed DAG invalid: %v", err)
	}
	if _, err := coarse.TopologicalCheck(); err != nil {
		t.Fatalf("collapsed DAG cyclic: %v", err)
	}
}

func TestCollapsedDAGSimulatesCorrectly(t *testing.T) {
	d, pr, tree := buildProfiledMergesort(t, 1<<13, 2<<10)
	cfg := config.MustDefault(4).Scaled(256) // tiny caches for a fast run
	sel, err := Coarsen(pr, tree, Params{CacheSizeBytes: cfg.L2.SizeBytes, Cores: cfg.Cores})
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := CollapseDAG(d, tree, sel)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cmpsim.Run(coarse, sched.NewPDF(), cfg)
	if err != nil {
		t.Fatalf("simulating collapsed DAG: %v", err)
	}
	if res.TasksExecuted != coarse.NumTasks() {
		t.Fatalf("collapsed run incomplete")
	}
	// The fine-grained original must also still simulate (generators are
	// shared but reset between runs).
	if _, err := cmpsim.Run(d, sched.NewPDF(), cfg); err != nil {
		t.Fatalf("simulating original after collapse: %v", err)
	}
}

func TestCollapseDAGErrors(t *testing.T) {
	d, pr, tree := buildProfiledMergesort(t, 1<<13, 2<<10)
	if _, err := CollapseDAG(nil, tree, &Selection{}); err == nil {
		t.Fatalf("nil DAG accepted")
	}
	if _, err := CollapseDAG(d, tree, &Selection{Sequential: []int{9999}}); err == nil {
		t.Fatalf("unknown group accepted")
	}
	// Overlapping selections are rejected: pick a parent and its child.
	var parent, child int = -1, -1
	for _, n := range tree.Nodes {
		if len(n.Children) > 0 && n.Parent != nil && n.Children[0].NumTasks() > 0 {
			parent, child = n.ID, n.Children[0].ID
			break
		}
	}
	if parent >= 0 {
		if _, err := CollapseDAG(d, tree, &Selection{Sequential: []int{parent, child}}); err == nil {
			t.Fatalf("overlapping selection accepted")
		}
	}
	_ = pr
}
