// Package coarsen implements the automatic task-coarsening pass of §6.2.
//
// Programs are written with very fine-grained tasks; the working-set
// profiler (package profile) measures the working set of every task group;
// this package then walks the task-group tree top-down and decides, per
// group, whether its children are already small enough to stop
// parallelising — the paper's heuristic stop criterion
//
//	W ≤ K × (cacheSize / (numCores × 2))
//
// where W is the group's working-set size and K the number of child groups
// in the independent set under consideration.  Children selected this way
// are collapsed into single sequential tasks (CollapseDAG), and the
// parameter values at the stopping groups populate the per-configuration
// parallelization table (Figure 7b) that a compiled program would consult at
// run time.
package coarsen

import (
	"fmt"
	"sort"

	"cmpsched/internal/dag"
	"cmpsched/internal/profile"
	"cmpsched/internal/refs"
	"cmpsched/internal/taskgroup"
)

// Params identify the CMP configuration a coarsening decision targets.
type Params struct {
	// CacheSizeBytes is the shared L2 capacity.
	CacheSizeBytes int64
	// Cores is the number of cores P.
	Cores int
	// SlackFactor is the "2" in the stop criterion; it leaves room for
	// task-size variability so early-finishing children do not drag in
	// unrelated work. Zero means 2.
	SlackFactor int
}

func (p Params) slack() int64 {
	if p.SlackFactor <= 0 {
		return 2
	}
	return int64(p.SlackFactor)
}

// Validate reports invalid parameters.
func (p Params) Validate() error {
	if p.CacheSizeBytes <= 0 {
		return fmt.Errorf("coarsen: non-positive cache size %d", p.CacheSizeBytes)
	}
	if p.Cores <= 0 {
		return fmt.Errorf("coarsen: non-positive core count %d", p.Cores)
	}
	return nil
}

// TableEntry is one row of the parallelization table (Figure 7b): for the
// given CMP configuration and spawn site, sub-problems whose parameter value
// is at most Threshold are executed sequentially.
type TableEntry struct {
	L2SizeBytes int64
	Cores       int
	Site        string
	Threshold   float64
}

// Selection is the outcome of a coarsening pass.
type Selection struct {
	// Params is the configuration the selection targets.
	Params Params
	// Sequential lists the IDs of the task-group-tree nodes that are
	// collapsed into single sequential tasks.
	Sequential []int
	// Table is the parallelization table derived from the selection, one
	// entry per spawn site that had a stopping group.
	Table []TableEntry
}

// IsSequential reports whether the given group node was selected to run as a
// single sequential task.
func (s *Selection) IsSequential(nodeID int) bool {
	for _, id := range s.Sequential {
		if id == nodeID {
			return true
		}
	}
	return false
}

// Threshold returns the parallelization-table threshold for a spawn site,
// or 0 if the site has no entry.
func (s *Selection) Threshold(site string) float64 {
	for _, e := range s.Table {
		if e.Site == site {
			return e.Threshold
		}
	}
	return 0
}

// Coarsen walks the tree top-down applying the stop criterion, using the
// working sets measured by the profiler.
func Coarsen(pr *profile.Profile, tree *taskgroup.Tree, p Params) (*Selection, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if tree == nil || tree.Root == nil {
		return nil, fmt.Errorf("coarsen: nil task-group tree")
	}
	sel := &Selection{Params: p}
	perChildBudget := p.CacheSizeBytes / (int64(p.Cores) * p.slack())
	thresholds := make(map[string]float64)

	var walk func(n *taskgroup.Node)
	walk = func(n *taskgroup.Node) {
		if n.IsLeaf() {
			return
		}
		w := pr.GroupOf(n).WorkingSetBytes
		for _, phase := range n.ChildrenByPhase() {
			k := int64(len(phase))
			if w <= k*perChildBudget {
				// Stop: each child of this phase becomes one sequential
				// task.
				for _, c := range phase {
					if c.NumTasks() > 0 {
						sel.Sequential = append(sel.Sequential, c.ID)
					}
					if c.Site != "" && c.Param > thresholds[c.Site] {
						thresholds[c.Site] = c.Param
					}
				}
				continue
			}
			for _, c := range phase {
				walk(c)
			}
		}
	}
	walk(tree.Root)
	sort.Ints(sel.Sequential)

	sites := make([]string, 0, len(thresholds))
	for site := range thresholds {
		sites = append(sites, site)
	}
	sort.Strings(sites)
	for _, site := range sites {
		sel.Table = append(sel.Table, TableEntry{
			L2SizeBytes: p.CacheSizeBytes,
			Cores:       p.Cores,
			Site:        site,
			Threshold:   thresholds[site],
		})
	}
	return sel, nil
}

// CollapseDAG applies a selection to a DAG, producing a new DAG in which
// every selected group's tasks are merged into one sequential task whose
// reference stream is the concatenation of its members' streams.  This is
// the paper's "dag" evaluation mode (the middle bars of Figure 8): the trace
// stays the finest-grain trace, only the task structure is coarsened, so a
// merged task still pays its members' parallel-code overheads.
//
// The new DAG shares reference generators with the original; the two must
// not be simulated concurrently.
func CollapseDAG(d *dag.DAG, tree *taskgroup.Tree, sel *Selection) (*dag.DAG, error) {
	if d == nil || tree == nil || sel == nil {
		return nil, fmt.Errorf("coarsen: nil argument to CollapseDAG")
	}
	// groupOf[taskID] = selected node covering the task, or nil.
	groupOf := make([]*taskgroup.Node, d.NumTasks())
	for _, id := range sel.Sequential {
		if id < 0 || id >= len(tree.Nodes) {
			return nil, fmt.Errorf("coarsen: selection references unknown group %d", id)
		}
		n := tree.Nodes[id]
		for t := n.First; t <= n.Last; t++ {
			if groupOf[t] != nil {
				return nil, fmt.Errorf("coarsen: task %d selected by both %q and %q", t, groupOf[t].Name, n.Name)
			}
			groupOf[t] = n
		}
	}

	out := dag.New(d.Name + "/coarsened")
	newID := make([]dag.TaskID, d.NumTasks())
	for i := range newID {
		newID[i] = dag.None
	}
	for _, task := range d.Tasks() {
		if g := groupOf[task.ID]; g != nil {
			if task.ID != g.First {
				newID[task.ID] = newID[g.First]
				continue
			}
			// First member: create the merged sequential task.
			gens := make([]refs.Gen, 0, int(g.Last-g.First)+1)
			for t := g.First; t <= g.Last; t++ {
				if member := d.Task(t); member.Refs != nil {
					gens = append(gens, member.Refs)
				}
			}
			merged := out.AddTask(g.Name+"(seq)", refs.NewConcat(gens...))
			merged.Site = g.Site
			merged.Param = g.Param
			merged.Level = d.Task(g.First).Level
			newID[task.ID] = merged.ID
			continue
		}
		copyTask := out.AddTask(task.Name, task.Refs)
		copyTask.Site = task.Site
		copyTask.Param = task.Param
		copyTask.Level = task.Level
		newID[task.ID] = copyTask.ID
	}

	// Re-create edges, dropping intra-group edges and duplicates.
	type edge struct{ from, to dag.TaskID }
	seen := make(map[edge]bool)
	for _, task := range d.Tasks() {
		for _, succ := range task.Succs {
			u, v := newID[task.ID], newID[succ]
			if u == v {
				continue
			}
			e := edge{u, v}
			if seen[e] {
				continue
			}
			seen[e] = true
			if err := out.AddEdge(u, v); err != nil {
				return nil, fmt.Errorf("coarsen: rebuilding edges: %w", err)
			}
		}
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("coarsen: collapsed DAG invalid: %w", err)
	}
	return out, nil
}
