package faultinject

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"cmpsched/internal/prng"
)

// HTTPFaults configures the HTTP fault middleware: per-request injected
// rejections, latency, and mid-stream connection drops, decided by a seeded
// splitmix64 stream in request-arrival order.  Exactly one decision value is
// consumed per matched request, so a single-client test replays the same
// schedule every run.
type HTTPFaults struct {
	// Seed seeds the decision stream.
	Seed uint64
	// Rate429 is the fraction of requests rejected with 429 Too Many
	// Requests plus a Retry-After header — the saturated-server fault.
	Rate429 float64
	// Rate503 is the fraction rejected with 503 Service Unavailable — the
	// dead-or-draining-server fault.
	Rate503 float64
	// RateDrop is the fraction whose response is cut mid-stream after
	// DropAfterBytes of body — the broken-connection fault.
	RateDrop float64
	// RetryAfter is the hint attached to injected 429s (default one
	// second).
	RetryAfter time.Duration
	// Latency is added before every matched request is served (zero adds
	// none).
	Latency time.Duration
	// DropAfterBytes is how much of the response body passes through before
	// an injected drop tears the connection down (default 256).
	DropAfterBytes int64
	// PathPrefix restricts injection to matching request paths (default
	// "/sweeps"), so health and metrics endpoints stay readable while the
	// data path misbehaves.
	PathPrefix string
	// Logf, when non-nil, receives one line per injected fault.
	Logf func(format string, args ...any)
}

// ParseHTTPFaults decodes the -fault-inject flag syntax: comma-separated
// key=value pairs from seed=<n>, 429=<rate>, 503=<rate>, drop=<rate>,
// latency=<duration>, drop-bytes=<n>, prefix=<path>.  An empty string
// returns the zero value (no faults).
func ParseHTTPFaults(s string) (HTTPFaults, error) {
	var cfg HTTPFaults
	if s = strings.TrimSpace(s); s == "" {
		return cfg, nil
	}
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return cfg, fmt.Errorf("faultinject: bad pair %q (want key=value)", kv)
		}
		var err error
		switch k {
		case "seed":
			cfg.Seed, err = strconv.ParseUint(v, 10, 64)
		case "429":
			cfg.Rate429, err = parseRate(v)
		case "503":
			cfg.Rate503, err = parseRate(v)
		case "drop":
			cfg.RateDrop, err = parseRate(v)
		case "latency":
			cfg.Latency, err = time.ParseDuration(v)
		case "drop-bytes":
			cfg.DropAfterBytes, err = strconv.ParseInt(v, 10, 64)
		case "prefix":
			cfg.PathPrefix = v
		default:
			return cfg, fmt.Errorf("faultinject: unknown key %q", k)
		}
		if err != nil {
			return cfg, fmt.Errorf("faultinject: bad %s=%q: %v", k, v, err)
		}
	}
	return cfg, nil
}

// parseRate parses a probability and range-checks it.
func parseRate(s string) (float64, error) {
	r, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if r < 0 || r > 1 {
		return 0, fmt.Errorf("rate %v outside [0, 1]", r)
	}
	return r, nil
}

// withDefaults fills the zero fields.
func (c HTTPFaults) withDefaults() HTTPFaults {
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.DropAfterBytes <= 0 {
		c.DropAfterBytes = 256
	}
	if c.PathPrefix == "" {
		c.PathPrefix = "/sweeps"
	}
	return c
}

// Enabled reports whether any fault can fire.
func (c HTTPFaults) Enabled() bool {
	return c.Rate429 > 0 || c.Rate503 > 0 || c.RateDrop > 0 || c.Latency > 0
}

// Wrap returns h with the fault schedule in front of it.  A disabled
// configuration returns h unchanged.
func (c HTTPFaults) Wrap(h http.Handler) http.Handler {
	if !c.Enabled() {
		return h
	}
	c = c.withDefaults()
	inj := &httpInjector{cfg: c, next: h, rng: prng.SplitMix64{State: c.Seed}}
	return inj
}

// httpInjector is the middleware state: the decision stream and counters.
type httpInjector struct {
	cfg  HTTPFaults
	next http.Handler

	mu       sync.Mutex
	rng      prng.SplitMix64
	requests int
}

// logf logs through the configured logger.
func (inj *httpInjector) logf(format string, args ...any) {
	if inj.cfg.Logf != nil {
		inj.cfg.Logf(format, args...)
	}
}

// decide consumes one stream value and maps it onto the configured fault
// bands: [0,429-rate) injects 429, the next band 503, the next a drop.
func (inj *httpInjector) decide() (n int, fault string) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.requests++
	u := float64(inj.rng.Next()>>11) / float64(1<<53) // uniform in [0,1)
	switch {
	case u < inj.cfg.Rate429:
		fault = "429"
	case u < inj.cfg.Rate429+inj.cfg.Rate503:
		fault = "503"
	case u < inj.cfg.Rate429+inj.cfg.Rate503+inj.cfg.RateDrop:
		fault = "drop"
	}
	return inj.requests, fault
}

// ServeHTTP implements http.Handler.
func (inj *httpInjector) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if !strings.HasPrefix(r.URL.Path, inj.cfg.PathPrefix) {
		inj.next.ServeHTTP(w, r)
		return
	}
	n, fault := inj.decide()
	if inj.cfg.Latency > 0 {
		time.Sleep(inj.cfg.Latency)
	}
	switch fault {
	case "429":
		inj.logf("faultinject: request %d: injected 429", n)
		w.Header().Set("Retry-After", strconv.FormatInt(int64((inj.cfg.RetryAfter+time.Second-1)/time.Second), 10))
		http.Error(w, "faultinject: injected saturation", http.StatusTooManyRequests)
	case "503":
		inj.logf("faultinject: request %d: injected 503", n)
		http.Error(w, "faultinject: injected unavailability", http.StatusServiceUnavailable)
	case "drop":
		inj.logf("faultinject: request %d: dropping stream after %d bytes", n, inj.cfg.DropAfterBytes)
		dw := &droppingWriter{ResponseWriter: w, budget: inj.cfg.DropAfterBytes}
		inj.next.ServeHTTP(dw, r)
	default:
		inj.next.ServeHTTP(w, r)
	}
}

// droppingWriter passes budget bytes of body through, then aborts the
// connection via http.ErrAbortHandler — net/http closes the socket without
// a terminating chunk, which a streaming client observes as a mid-stream
// disconnect.
type droppingWriter struct {
	http.ResponseWriter
	budget int64
}

// Write implements http.ResponseWriter.
func (d *droppingWriter) Write(p []byte) (int, error) {
	if d.budget <= 0 {
		panic(http.ErrAbortHandler)
	}
	if int64(len(p)) > d.budget {
		n, _ := d.ResponseWriter.Write(p[:d.budget])
		d.budget = 0
		if f, ok := d.ResponseWriter.(http.Flusher); ok {
			f.Flush()
		}
		_ = n
		panic(http.ErrAbortHandler)
	}
	d.budget -= int64(len(p))
	return d.ResponseWriter.Write(p)
}

// Flush implements http.Flusher so streamed responses keep flushing through
// the wrapper.
func (d *droppingWriter) Flush() {
	if f, ok := d.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
