// Package faultinject is the deterministic fault-injection harness for the
// sweep system's durability and availability paths.
//
// It has two halves.  The filesystem half is an FS interface covering
// exactly the operations the disk cache and its lease layer perform, with a
// passthrough implementation over the real filesystem (OS) and a Faulty
// wrapper that injects I/O errors, partial writes and crash-before-rename by
// a seeded schedule — so a test (or a -fault-inject dev run) can replay the
// precise interleaving in which a writer died, byte for byte, on every run.
// The HTTP half (see http.go) wraps a handler with injected 429/503
// rejections, added latency and mid-stream connection drops on the same kind
// of seeded schedule, exercising the client's retry, reconnect and failover
// paths without real network failures.
//
// Determinism is the point: every fault decision consumes one value from a
// splitmix64 stream seeded by the caller, so a failing chaos run is
// reproduced exactly by its seed, never hunted statistically.
package faultinject

import (
	"io"
	"io/fs"
	"os"
	"time"
)

// File is the writable-file surface the cache's atomic-write protocol needs:
// write, close, and the name to rename from.
type File interface {
	io.Writer
	// Close flushes and closes the file.
	Close() error
	// Name returns the file's path.
	Name() string
}

// FS is the filesystem surface of the disk cache and its lease layer.  All
// methods have the semantics of the identically named os functions.
type FS interface {
	// MkdirAll creates a directory and any missing parents.
	MkdirAll(path string, perm fs.FileMode) error
	// ReadFile reads a whole file.
	ReadFile(name string) ([]byte, error)
	// WriteFile writes data to a file, creating or truncating it.
	WriteFile(name string, data []byte, perm fs.FileMode) error
	// CreateTemp creates a new temporary file in dir (os.CreateTemp).
	CreateTemp(dir, pattern string) (File, error)
	// OpenFile opens a file with the given flags (os.OpenFile); with
	// os.O_CREATE|os.O_EXCL it is the atomic claim primitive leases use.
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// Stat describes a file (leases read freshness off ModTime).
	Stat(name string) (fs.FileInfo, error)
	// ReadDir lists a directory (the cache's open-time garbage collection).
	ReadDir(name string) ([]fs.DirEntry, error)
	// Chtimes sets a file's access and modification times (the lease
	// heartbeat).
	Chtimes(name string, atime, mtime time.Time) error
}

// osFS is the passthrough FS over the real filesystem.
type osFS struct{}

// MkdirAll implements FS.
func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

// ReadFile implements FS.
func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// WriteFile implements FS.
func (osFS) WriteFile(name string, data []byte, perm fs.FileMode) error {
	return os.WriteFile(name, data, perm)
}

// CreateTemp implements FS.
func (osFS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }

// OpenFile implements FS.
func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

// Rename implements FS.
func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (osFS) Remove(name string) error { return os.Remove(name) }

// Stat implements FS.
func (osFS) Stat(name string) (fs.FileInfo, error) { return os.Stat(name) }

// ReadDir implements FS.
func (osFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }

// Chtimes implements FS.
func (osFS) Chtimes(name string, atime, mtime time.Time) error {
	return os.Chtimes(name, atime, mtime)
}

// OS returns the passthrough FS over the real filesystem.
func OS() FS { return osFS{} }
