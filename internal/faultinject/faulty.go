package faultinject

import (
	"errors"
	"fmt"
	"io/fs"
	"sync"
	"time"

	"cmpsched/internal/prng"
)

// Op names one class of filesystem operation for fault scheduling.
type Op string

// The fault-schedulable operation classes.  OpWrite covers File.Write on
// files returned by CreateTemp/OpenFile/WriteFile; the others map one to one
// onto FS methods.
const (
	// OpRead is ReadFile.
	OpRead Op = "read"
	// OpWrite is File.Write (and the write inside WriteFile).
	OpWrite Op = "write"
	// OpCreate is CreateTemp and OpenFile.
	OpCreate Op = "create"
	// OpRename is Rename — the commit point of the atomic-write protocol.
	OpRename Op = "rename"
	// OpRemove is Remove.
	OpRemove Op = "remove"
	// OpStat is Stat.
	OpStat Op = "stat"
	// OpReadDir is ReadDir.
	OpReadDir Op = "readdir"
	// OpChtimes is Chtimes — the lease heartbeat.
	OpChtimes Op = "chtimes"
)

// ErrInjected is the injected I/O failure (the harness's EIO).
var ErrInjected = errors.New("faultinject: injected I/O error")

// ErrCrashed reports an operation attempted after the simulated process
// crash: every operation on a crashed Faulty fails with it, so cleanup code
// paths (remove-on-error, lease release) are suppressed exactly as a real
// SIGKILL would suppress them.
var ErrCrashed = errors.New("faultinject: process crashed")

// Faulty wraps an FS with a deterministic fault schedule.  Two mechanisms
// compose: per-operation-class probabilistic faults driven by a seeded
// splitmix64 stream (SetRate), and exact triggers naming the nth call of a
// class (FailAt, CrashAt).  A triggered OpWrite performs a partial write
// (half the buffer reaches the inner file) before failing; a CrashAt trigger
// additionally freezes the whole filesystem in the crashed state, leaving
// temp files, unrenamed entries and unreleased leases behind for recovery
// code to find.  All methods are safe for concurrent use; the probabilistic
// stream is consumed under a mutex, so a single-goroutine caller sees a
// fully reproducible schedule.
type Faulty struct {
	mu       sync.Mutex
	inner    FS
	rng      prng.SplitMix64
	rates    map[Op]uint64 // threshold in [0, 2^64): fault when next() < threshold
	failAt   map[Op]map[int]error
	crashAt  map[Op]map[int]bool
	counts   map[Op]int
	injected map[Op]int
	crashed  bool
}

// NewFaulty wraps inner with an empty fault schedule seeded for the
// probabilistic stream.
func NewFaulty(inner FS, seed uint64) *Faulty {
	return &Faulty{
		inner:    inner,
		rng:      prng.SplitMix64{State: seed},
		rates:    make(map[Op]uint64),
		failAt:   make(map[Op]map[int]error),
		crashAt:  make(map[Op]map[int]bool),
		counts:   make(map[Op]int),
		injected: make(map[Op]int),
	}
}

// SetRate makes a fraction rate (0 to 1) of future op calls fail with
// ErrInjected, decided by the seeded stream.
func (f *Faulty) SetRate(op Op, rate float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rates[op] = rateThreshold(rate)
}

// rateThreshold maps a probability to a uint64 comparison threshold.
func rateThreshold(rate float64) uint64 {
	if rate <= 0 {
		return 0
	}
	if rate >= 1 {
		return ^uint64(0)
	}
	return uint64(rate * float64(1<<63) * 2)
}

// FailAt makes the nth future call (1-based, counted from construction) of
// op fail with err (ErrInjected when err is nil).
func (f *Faulty) FailAt(op Op, nth int, err error) {
	if err == nil {
		err = ErrInjected
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failAt[op] == nil {
		f.failAt[op] = make(map[int]error)
	}
	f.failAt[op][nth] = err
}

// CrashAt makes the nth call (1-based) of op crash the simulated process:
// the call fails with ErrCrashed without reaching the inner filesystem, and
// every subsequent operation fails the same way.  CrashAt(OpRename, n) is
// the canonical "writer died between temp write and commit" schedule.
func (f *Faulty) CrashAt(op Op, nth int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashAt[op] == nil {
		f.crashAt[op] = make(map[int]bool)
	}
	f.crashAt[op][nth] = true
}

// Crash freezes the filesystem immediately: every subsequent operation
// fails with ErrCrashed.
func (f *Faulty) Crash() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashed = true
}

// Crashed reports whether the simulated process has crashed.
func (f *Faulty) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Counts returns per-class operation counts (including faulted calls).
func (f *Faulty) Counts() map[Op]int {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[Op]int, len(f.counts))
	for k, v := range f.counts {
		out[k] = v
	}
	return out
}

// Injected returns per-class injected-fault counts.
func (f *Faulty) Injected() map[Op]int {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[Op]int, len(f.injected))
	for k, v := range f.injected {
		out[k] = v
	}
	return out
}

// check runs one op through the schedule, returning the injected error (if
// any) for this call.
func (f *Faulty) check(op Op) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	f.counts[op]++
	n := f.counts[op]
	if f.crashAt[op][n] {
		f.crashed = true
		f.injected[op]++
		return ErrCrashed
	}
	if err, ok := f.failAt[op][n]; ok {
		f.injected[op]++
		return err
	}
	if th := f.rates[op]; th > 0 && f.rng.Next() < th {
		f.injected[op]++
		return ErrInjected
	}
	return nil
}

// MkdirAll implements FS.
func (f *Faulty) MkdirAll(path string, perm fs.FileMode) error {
	if err := f.check(OpCreate); err != nil {
		return err
	}
	return f.inner.MkdirAll(path, perm)
}

// ReadFile implements FS.
func (f *Faulty) ReadFile(name string) ([]byte, error) {
	if err := f.check(OpRead); err != nil {
		return nil, err
	}
	return f.inner.ReadFile(name)
}

// WriteFile implements FS.  An injected write fault leaves a half-written
// file behind, like a torn write on a real disk.
func (f *Faulty) WriteFile(name string, data []byte, perm fs.FileMode) error {
	if err := f.check(OpWrite); err != nil {
		if !errors.Is(err, ErrCrashed) {
			_ = f.inner.WriteFile(name, data[:len(data)/2], perm)
		}
		return err
	}
	return f.inner.WriteFile(name, data, perm)
}

// CreateTemp implements FS.
func (f *Faulty) CreateTemp(dir, pattern string) (File, error) {
	if err := f.check(OpCreate); err != nil {
		return nil, err
	}
	file, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultyFile{f: f, inner: file}, nil
}

// OpenFile implements FS.
func (f *Faulty) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	if err := f.check(OpCreate); err != nil {
		return nil, err
	}
	file, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultyFile{f: f, inner: file}, nil
}

// Rename implements FS.
func (f *Faulty) Rename(oldpath, newpath string) error {
	if err := f.check(OpRename); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

// Remove implements FS.
func (f *Faulty) Remove(name string) error {
	if err := f.check(OpRemove); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

// Stat implements FS.
func (f *Faulty) Stat(name string) (fs.FileInfo, error) {
	if err := f.check(OpStat); err != nil {
		return nil, err
	}
	return f.inner.Stat(name)
}

// ReadDir implements FS.
func (f *Faulty) ReadDir(name string) ([]fs.DirEntry, error) {
	if err := f.check(OpReadDir); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(name)
}

// Chtimes implements FS.
func (f *Faulty) Chtimes(name string, atime, mtime time.Time) error {
	if err := f.check(OpChtimes); err != nil {
		return err
	}
	return f.inner.Chtimes(name, atime, mtime)
}

// faultyFile routes writes through the parent's schedule.
type faultyFile struct {
	f     *Faulty
	inner File
}

// Write implements File: an injected fault writes half the buffer through
// (a partial write) and then fails.
func (w *faultyFile) Write(p []byte) (int, error) {
	if err := w.f.check(OpWrite); err != nil {
		if errors.Is(err, ErrCrashed) {
			return 0, err
		}
		n, _ := w.inner.Write(p[:len(p)/2])
		return n, fmt.Errorf("partial write of %s: %w", w.inner.Name(), err)
	}
	return w.inner.Write(p)
}

// Close implements File; a crashed filesystem refuses even Close, so the
// file stays exactly as the dead process left it.
func (w *faultyFile) Close() error {
	if w.f.Crashed() {
		return ErrCrashed
	}
	return w.inner.Close()
}

// Name implements File.
func (w *faultyFile) Name() string { return w.inner.Name() }
