package faultinject

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	fsys := OS()
	if err := fsys.MkdirAll(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := fsys.CreateTemp(dir, "t-*.tmp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(dir, "final")
	if err := fsys.Rename(f.Name(), dst); err != nil {
		t.Fatal(err)
	}
	data, err := fsys.ReadFile(dst)
	if err != nil || string(data) != "hello" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	if _, err := fsys.Stat(dst); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-time.Hour)
	if err := fsys.Chtimes(dst, old, old); err != nil {
		t.Fatal(err)
	}
	st, _ := fsys.Stat(dst)
	if d := time.Since(st.ModTime()); d < 59*time.Minute {
		t.Fatalf("Chtimes did not move mtime (age %v)", d)
	}
	ents, err := fsys.ReadDir(dir)
	if err != nil || len(ents) != 2 {
		t.Fatalf("ReadDir = %d entries, %v", len(ents), err)
	}
	if err := fsys.Remove(dst); err != nil {
		t.Fatal(err)
	}
}

func TestFailAtExactTrigger(t *testing.T) {
	dir := t.TempDir()
	f := NewFaulty(OS(), 1)
	f.FailAt(OpRead, 2, nil)
	path := filepath.Join(dir, "x")
	if err := os.WriteFile(path, []byte("v"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadFile(path); err != nil {
		t.Fatalf("read 1 should pass: %v", err)
	}
	if _, err := f.ReadFile(path); !errors.Is(err, ErrInjected) {
		t.Fatalf("read 2 should fail injected, got %v", err)
	}
	if _, err := f.ReadFile(path); err != nil {
		t.Fatalf("read 3 should pass: %v", err)
	}
	if got := f.Injected()[OpRead]; got != 1 {
		t.Fatalf("injected reads = %d, want 1", got)
	}
}

func TestCrashAtRenameLeavesTempAndFreezes(t *testing.T) {
	dir := t.TempDir()
	f := NewFaulty(OS(), 1)
	f.CrashAt(OpRename, 1)

	tmp, err := f.CreateTemp(dir, "put-*.tmp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tmp.Write([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := tmp.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Rename(tmp.Name(), filepath.Join(dir, "entry")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("rename should crash, got %v", err)
	}
	// The dead process's cleanup (remove-on-error) must also fail, so the
	// temp file survives, exactly as after a SIGKILL.
	if err := f.Remove(tmp.Name()); !errors.Is(err, ErrCrashed) {
		t.Fatalf("remove after crash should fail, got %v", err)
	}
	if !f.Crashed() {
		t.Fatal("not marked crashed")
	}
	if _, err := os.Stat(tmp.Name()); err != nil {
		t.Fatalf("temp file should survive the crash: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "entry")); !os.IsNotExist(err) {
		t.Fatalf("entry must not exist after crash-before-rename: %v", err)
	}
}

func TestPartialWrite(t *testing.T) {
	dir := t.TempDir()
	f := NewFaulty(OS(), 1)
	f.FailAt(OpWrite, 1, nil)
	tmp, err := f.CreateTemp(dir, "t-*.tmp")
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("0123456789")
	if _, err := tmp.Write(payload); err == nil {
		t.Fatal("write should fail")
	}
	tmp.Close()
	data, err := os.ReadFile(tmp.Name())
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != len(payload)/2 {
		t.Fatalf("partial write left %d bytes, want %d", len(data), len(payload)/2)
	}
}

func TestSeededRateIsDeterministic(t *testing.T) {
	run := func(seed uint64) []bool {
		f := NewFaulty(OS(), seed)
		f.SetRate(OpStat, 0.5)
		out := make([]bool, 64)
		for i := range out {
			_, err := f.Stat("/nonexistent-path-for-schedule")
			out[i] = errors.Is(err, ErrInjected)
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule diverged at op %d", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
	faults := 0
	for _, hit := range a {
		if hit {
			faults++
		}
	}
	if faults == 0 || faults == len(a) {
		t.Fatalf("rate 0.5 injected %d/%d faults", faults, len(a))
	}
}

func TestParseHTTPFaults(t *testing.T) {
	cfg, err := ParseHTTPFaults("seed=7,429=0.2,503=0.1,drop=0.25,latency=50ms,drop-bytes=128,prefix=/x")
	if err != nil {
		t.Fatal(err)
	}
	want := HTTPFaults{Seed: 7, Rate429: 0.2, Rate503: 0.1, RateDrop: 0.25,
		Latency: 50 * time.Millisecond, DropAfterBytes: 128, PathPrefix: "/x"}
	if fmt.Sprintf("%+v", cfg) != fmt.Sprintf("%+v", want) {
		t.Fatalf("got %+v want %+v", cfg, want)
	}
	if _, err := ParseHTTPFaults("bogus=1"); err == nil {
		t.Fatal("unknown key should fail")
	}
	if _, err := ParseHTTPFaults("429=1.5"); err == nil {
		t.Fatal("out-of-range rate should fail")
	}
	empty, err := ParseHTTPFaults("")
	if err != nil || empty.Enabled() {
		t.Fatalf("empty spec should disable: %+v, %v", empty, err)
	}
}

func TestHTTPInjector429And503(t *testing.T) {
	backend := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	})
	srv := httptest.NewServer(HTTPFaults{Seed: 3, Rate429: 0.3, Rate503: 0.3, PathPrefix: "/sweeps"}.Wrap(backend))
	defer srv.Close()

	var got429, got503, gotOK int
	for i := 0; i < 40; i++ {
		resp, err := http.Get(srv.URL + "/sweeps")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusTooManyRequests:
			got429++
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
		case http.StatusServiceUnavailable:
			got503++
		case http.StatusOK:
			gotOK++
		}
	}
	if got429 == 0 || got503 == 0 || gotOK == 0 {
		t.Fatalf("fault mix missing a band: 429=%d 503=%d ok=%d", got429, got503, gotOK)
	}
	// Unmatched paths are never faulted.
	for i := 0; i < 20; i++ {
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("health path was faulted: %d", resp.StatusCode)
		}
	}
}

func TestHTTPInjectorDropsStream(t *testing.T) {
	payload := make([]byte, 16<<10)
	backend := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		for i := 0; i < 4; i++ {
			w.Write(payload)
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
		}
	})
	srv := httptest.NewServer(HTTPFaults{Seed: 1, RateDrop: 1, DropAfterBytes: 100}.Wrap(backend))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/sweeps")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	n, err := io.Copy(io.Discard, resp.Body)
	if err == nil {
		t.Fatalf("stream should be torn down mid-body (read %d bytes cleanly)", n)
	}
	if n > 200 {
		t.Fatalf("read %d bytes, want roughly the 100-byte budget", n)
	}
}
