package dag

import (
	"testing"

	"cmpsched/internal/refs"
)

// buildReplayFixture makes a small fork-join DAG with a mix of ref-bearing and
// compute-only tasks, including two tasks with byte-identical streams.
func buildReplayFixture(t *testing.T) *DAG {
	t.Helper()
	d := New("diamond")
	mk := func() refs.Gen { return refs.NewScan(1<<20, 640, 64, 2) }
	root := d.AddComputeTask("root", 100)
	a := d.AddTask("a", mk())
	b := d.AddTask("b", mk()) // identical stream to a
	c := d.AddTask("c", &refs.Strided{Base: 1 << 21, StrideBytes: 128, Count: 30, InstrsPerRef: 1})
	join := d.AddComputeTask("join", 50)
	d.Fork(root.ID, a.ID, b.ID, c.ID)
	d.Join(join.ID, a.ID, b.ID, c.ID)
	d.RecordMetric("m", 7)
	if err := d.Validate(); err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}
	return d
}

// TestSnapshotInstantiateEquivalence pins that instances replicate the
// template exactly: structure, totals, metrics, and every task's reference
// stream.
func TestSnapshotInstantiateEquivalence(t *testing.T) {
	src := buildReplayFixture(t)
	wantStreams := make([][]refs.Ref, src.NumTasks())
	for i, task := range src.Tasks() {
		if task.Refs != nil {
			wantStreams[i] = refs.Collect(task.Refs)
		}
	}

	snap := Record(src, nil)
	if snap.NumTasks() != src.NumTasks() {
		t.Fatalf("snapshot has %d tasks, want %d", snap.NumTasks(), src.NumTasks())
	}
	inst := snap.Instantiate()
	if err := inst.Validate(); err != nil {
		t.Fatalf("instance invalid: %v", err)
	}
	if inst.Name != src.Name || inst.NumTasks() != src.NumTasks() {
		t.Fatalf("instance shape (%q, %d), want (%q, %d)", inst.Name, inst.NumTasks(), src.Name, src.NumTasks())
	}
	if inst.TotalInstrs() != src.TotalInstrs() || inst.TotalRefs() != src.TotalRefs() {
		t.Fatalf("instance totals differ from source")
	}
	if inst.Metrics()["m"] != 7 {
		t.Fatalf("instance lost metrics: %v", inst.Metrics())
	}
	for i, task := range inst.Tasks() {
		want := src.Task(TaskID(i))
		if task.Name != want.Name || task.Instrs != want.Instrs ||
			len(task.Preds) != len(want.Preds) || len(task.Succs) != len(want.Succs) {
			t.Fatalf("task %d structure differs: %+v vs %+v", i, task, want)
		}
		if (task.Refs == nil) != (want.Refs == nil) {
			t.Fatalf("task %d ref-stream presence differs", i)
		}
		if task.Refs == nil {
			continue
		}
		got := refs.Collect(task.Refs)
		if len(got) != len(wantStreams[i]) {
			t.Fatalf("task %d drained %d refs, want %d", i, len(got), len(wantStreams[i]))
		}
		for j := range got {
			if got[j] != wantStreams[i][j] {
				t.Fatalf("task %d ref %d = %+v, want %+v", i, j, got[j], wantStreams[i][j])
			}
		}
	}
}

// TestSnapshotInstancesAreIndependent pins that sibling instances never share
// cursor state: draining one must not move the other, and identical sibling
// tasks share one interned arena.
func TestSnapshotInstancesAreIndependent(t *testing.T) {
	snap := Record(buildReplayFixture(t), nil)
	i1, i2 := snap.Instantiate(), snap.Instantiate()

	a1 := i1.Task(1).Refs
	a2 := i2.Task(1).Refs
	refs.Collect(a1) // fully drains and Resets via Collect
	a1.Reset()
	for k := 0; k < 3; k++ {
		a1.Next()
	}
	got := refs.Collect(a2)
	if int64(len(got)) != a2.Len() {
		t.Fatalf("sibling cursor was disturbed: drained %d of %d", len(got), a2.Len())
	}

	// Tasks "a" and "b" emit identical streams; the snapshot's store interns
	// them into one arena.
	st := snap.Store().Stats()
	if st.Unique >= st.Interned {
		t.Fatalf("identical sibling tasks were not interned: %+v", st)
	}
	ra, ok1 := i1.Task(1).Refs.(*refs.Recorded)
	rb, ok2 := i1.Task(2).Refs.(*refs.Recorded)
	if !ok1 || !ok2 {
		t.Fatalf("instance tasks are not Recorded streams")
	}
	if ra.Fingerprint() != rb.Fingerprint() {
		t.Fatalf("identical tasks fingerprint differently")
	}
	ra.Reset()
	rb.Reset()
	sa, sb := ra.NextSlice(), rb.NextSlice()
	if len(sa) == 0 || &sa[0] != &sb[0] {
		t.Fatalf("identical tasks do not share an arena")
	}
}

// TestRecordIntoSharedStore pins cross-DAG sharing: recording two builds of
// the same DAG into one store must not grow the arena twice.
func TestRecordIntoSharedStore(t *testing.T) {
	store := refs.NewTraceStore()
	Record(buildReplayFixture(t), store)
	after1 := store.Stats().ArenaBytes
	Record(buildReplayFixture(t), store)
	after2 := store.Stats().ArenaBytes
	if after1 == 0 {
		t.Fatalf("first recording interned nothing")
	}
	if after2 != after1 {
		t.Fatalf("second recording grew the arena: %d -> %d bytes", after1, after2)
	}
}
