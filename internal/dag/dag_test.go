package dag

import (
	"errors"
	"testing"
	"testing/quick"

	"cmpsched/internal/refs"
)

// buildDiamond builds a 4-task diamond: a -> {b, c} -> d.
func buildDiamond(t *testing.T) (*DAG, []*Task) {
	t.Helper()
	d := New("diamond")
	a := d.AddComputeTask("a", 10)
	b := d.AddComputeTask("b", 20)
	c := d.AddComputeTask("c", 30)
	e := d.AddComputeTask("d", 5)
	d.Fork(a.ID, b.ID, c.ID)
	d.Join(e.ID, b.ID, c.ID)
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return d, []*Task{a, b, c, e}
}

func TestAddTaskAssignsSequentialIDs(t *testing.T) {
	d := New("t")
	for i := 0; i < 5; i++ {
		task := d.AddComputeTask("x", int64(i))
		if int(task.ID) != i || task.Seq != i {
			t.Fatalf("task %d got ID=%d Seq=%d", i, task.ID, task.Seq)
		}
	}
	if d.NumTasks() != 5 {
		t.Fatalf("NumTasks = %d, want 5", d.NumTasks())
	}
}

func TestAddTaskInstrsFromGenerator(t *testing.T) {
	d := New("t")
	g := &refs.Scan{Base: 0, Bytes: 1024, LineBytes: 64, InstrsPerRef: 4}
	task := d.AddTask("scan", g)
	if task.Instrs != g.Instrs() {
		t.Fatalf("Instrs = %d, want %d", task.Instrs, g.Instrs())
	}
	if d.TotalRefs() != g.Len() {
		t.Fatalf("TotalRefs = %d, want %d", d.TotalRefs(), g.Len())
	}
}

func TestAddEdgeErrors(t *testing.T) {
	d := New("t")
	a := d.AddComputeTask("a", 1)
	b := d.AddComputeTask("b", 1)
	if err := d.AddEdge(a.ID, b.ID); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if err := d.AddEdge(a.ID, b.ID); err == nil {
		t.Fatalf("duplicate edge accepted")
	}
	if err := d.AddEdge(a.ID, a.ID); err == nil {
		t.Fatalf("self edge accepted")
	}
	if err := d.AddEdge(a.ID, 99); err == nil {
		t.Fatalf("edge to unknown task accepted")
	}
	if err := d.AddEdge(-2, b.ID); err == nil {
		t.Fatalf("edge from unknown task accepted")
	}
}

func TestRootsAndSinks(t *testing.T) {
	d, ts := buildDiamond(t)
	roots := d.Roots()
	if len(roots) != 1 || roots[0] != ts[0].ID {
		t.Fatalf("Roots = %v", roots)
	}
	sinks := d.Sinks()
	if len(sinks) != 1 || sinks[0] != ts[3].ID {
		t.Fatalf("Sinks = %v", sinks)
	}
}

func TestDepthAndWork(t *testing.T) {
	d, _ := buildDiamond(t)
	if got := d.TotalInstrs(); got != 65 {
		t.Fatalf("TotalInstrs = %d, want 65", got)
	}
	// Critical path a(10) -> c(30) -> d(5) = 45.
	if got := d.Depth(); got != 45 {
		t.Fatalf("Depth = %d, want 45", got)
	}
	path := d.CriticalPath()
	if len(path) != 3 || path[0] != 0 || path[1] != 2 || path[2] != 3 {
		t.Fatalf("CriticalPath = %v, want [0 2 3]", path)
	}
}

func TestDepthEmptyAndSingle(t *testing.T) {
	d := New("empty")
	if d.Depth() != 0 {
		t.Fatalf("empty DAG depth = %d", d.Depth())
	}
	if d.CriticalPath() != nil {
		t.Fatalf("empty DAG critical path should be nil")
	}
	d.AddComputeTask("only", 42)
	if d.Depth() != 42 {
		t.Fatalf("single task depth = %d, want 42", d.Depth())
	}
}

func TestValidateDetectsBackwardEdge(t *testing.T) {
	d := New("bad")
	a := d.AddComputeTask("a", 1)
	b := d.AddComputeTask("b", 1)
	// Force a backwards edge bypassing AddEdge ordering rules.
	bt := d.Task(b.ID)
	at := d.Task(a.ID)
	bt.Succs = append(bt.Succs, a.ID)
	at.Preds = append(at.Preds, b.ID)
	err := d.Validate()
	if err == nil || !errors.Is(err, ErrCycle) {
		t.Fatalf("Validate = %v, want ErrCycle", err)
	}
}

func TestValidateDetectsMissingReverseLink(t *testing.T) {
	d := New("bad")
	a := d.AddComputeTask("a", 1)
	b := d.AddComputeTask("b", 1)
	d.Task(a.ID).Succs = append(d.Task(a.ID).Succs, b.ID) // no Preds update
	if err := d.Validate(); err == nil {
		t.Fatalf("Validate accepted missing reverse link")
	}
}

func TestValidateDetectsInstrsMismatch(t *testing.T) {
	d := New("bad")
	task := d.AddTask("scan", &refs.Scan{Base: 0, Bytes: 256, LineBytes: 64, InstrsPerRef: 2})
	task.Instrs = 999
	if err := d.Validate(); err == nil {
		t.Fatalf("Validate accepted Instrs mismatch")
	}
}

func TestTopologicalCheck(t *testing.T) {
	d, _ := buildDiamond(t)
	n, err := d.TopologicalCheck()
	if err != nil || n != 4 {
		t.Fatalf("TopologicalCheck = (%d, %v)", n, err)
	}
	// Introduce a cycle manually.
	d.Task(3).Succs = append(d.Task(3).Succs, 1)
	d.Task(1).Preds = append(d.Task(1).Preds, 3)
	if _, err := d.TopologicalCheck(); err == nil {
		t.Fatalf("TopologicalCheck missed a cycle")
	}
}

func TestResetRefsAllowsReplay(t *testing.T) {
	d := New("t")
	g := &refs.Scan{Base: 0, Bytes: 256, LineBytes: 64}
	d.AddTask("scan", g)
	// Drain once.
	for {
		if _, ok := g.Next(); !ok {
			break
		}
	}
	if _, ok := g.Next(); ok {
		t.Fatalf("generator should be exhausted")
	}
	d.ResetRefs()
	if _, ok := g.Next(); !ok {
		t.Fatalf("ResetRefs did not rewind the generator")
	}
}

func TestComputeStats(t *testing.T) {
	d, _ := buildDiamond(t)
	s := d.ComputeStats()
	if s.Tasks != 4 || s.Edges != 4 || s.Roots != 1 || s.Sinks != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MaxOutDeg != 2 || s.MaxInDeg != 2 {
		t.Fatalf("degree stats = %+v", s)
	}
	if s.Depth != 45 || s.TotalInstrs != 65 {
		t.Fatalf("weight stats = %+v", s)
	}
	if s.String() == "" {
		t.Fatalf("Stats.String empty")
	}
}

func TestLevels(t *testing.T) {
	d := New("levels")
	a := d.AddComputeTask("a", 1)
	b := d.AddComputeTask("b", 1)
	c := d.AddComputeTask("c", 1)
	a.Level = 2
	b.Level = 0
	c.Level = 2
	levels := d.Levels()
	if len(levels) != 2 || levels[0] != 0 || levels[1] != 2 {
		t.Fatalf("Levels = %v", levels)
	}
	byLevel := d.TasksByLevel()
	if len(byLevel[2]) != 2 || len(byLevel[0]) != 1 {
		t.Fatalf("TasksByLevel = %v", byLevel)
	}
}

func TestTaskLookup(t *testing.T) {
	d, ts := buildDiamond(t)
	if d.Task(ts[1].ID) != ts[1] {
		t.Fatalf("Task lookup mismatch")
	}
	if d.Task(None) != nil || d.Task(100) != nil {
		t.Fatalf("invalid lookups should return nil")
	}
	if len(d.SequentialOrder()) != 4 {
		t.Fatalf("SequentialOrder length wrong")
	}
}

// Property: random fork/join DAG construction (children always created
// after parents) always validates and is acyclic; depth <= total work.
func TestPropertyRandomSPDagValid(t *testing.T) {
	f := func(sizes []uint8) bool {
		d := New("prop")
		// Build a random two-level fork-join structure.
		root := d.AddComputeTask("root", 5)
		prev := root.ID
		for _, s := range sizes {
			width := int(s%4) + 1
			children := make([]TaskID, 0, width)
			for i := 0; i < width; i++ {
				c := d.AddComputeTask("c", int64(s%16)+1)
				d.MustEdge(prev, c.ID)
				children = append(children, c.ID)
			}
			join := d.AddComputeTask("join", 1)
			d.Join(join.ID, children...)
			prev = join.ID
		}
		if err := d.Validate(); err != nil {
			return false
		}
		if _, err := d.TopologicalCheck(); err != nil {
			return false
		}
		return d.Depth() <= d.TotalInstrs()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
