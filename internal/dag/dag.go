// Package dag models the computation DAG executed by the schedulers.
//
// Each node is a task: a thread, or the portion of a thread between
// synchronisation points, with no internal dependences to or from other
// nodes.  A task carries its instruction count (the node weight used for
// depth/work accounting), a memory-reference stream (package refs), and the
// position it would occupy in the sequential depth-first (1DF) execution of
// the program — the order the Parallel Depth First scheduler prioritises.
//
// Workload generators construct DAGs by creating tasks in sequential
// execution order and adding dependence edges; Validate checks that the edge
// structure is acyclic and consistent with the sequential order.
package dag

import (
	"errors"
	"fmt"
	"sort"

	"cmpsched/internal/refs"
)

// TaskID identifies a task within a DAG. IDs are dense, starting at 0, in
// task-creation order.
type TaskID int32

// None is the zero value used where no task applies.
const None TaskID = -1

// Task is a node of the computation DAG.
type Task struct {
	// ID is the task's identifier within its DAG.
	ID TaskID
	// Name is a human-readable label, e.g. "merge[0:1024]".
	Name string
	// Seq is the position of the task in the sequential (1DF) execution
	// order of the program. The PDF scheduler always runs the ready task
	// with the smallest Seq.
	Seq int
	// Instrs is the number of instructions the task retires, equal to
	// Refs.Instrs() when Refs is non-nil. It is the node weight used for
	// work and depth computations.
	Instrs int64
	// Refs generates the task's memory references. Nil means the task
	// performs no memory accesses (Instrs compute-only cycles).
	Refs refs.Gen

	// Preds and Succs are the dependence edges. A task is ready when all
	// of its predecessors have completed.
	Preds []TaskID
	Succs []TaskID

	// Site labels the spawn location in the source program (file:line in
	// the paper's parallelization table). Used by the coarsening pass.
	Site string
	// Param is the workload-specific parameter controlling the grain at
	// the spawn site (e.g. sub-array bytes), recorded so that coarsening
	// decisions can be mapped back to thresholds.
	Param float64
	// Level is an optional workload-defined level (e.g. merge level in
	// Mergesort) used by per-level analyses such as Figure 1.
	Level int
	// Group is the index of the leaf task group that owns this task in
	// the workload's group tree, or -1.
	Group int
}

// DAG is a directed acyclic graph of tasks.
type DAG struct {
	// Name identifies the workload instance that produced the DAG.
	Name  string
	tasks []*Task
	// metrics holds workload-recorded scalar annotations (see RecordMetric).
	metrics map[string]int64
}

// RecordMetric attaches a named scalar annotation to the DAG — facts only
// the workload builder knows, such as the per-level frontier sizes of the
// graph kernels.  The simulator publishes annotations into its metrics
// registry (prefixed "dag.") when metrics are enabled; they have no effect
// on the simulation itself.
func (d *DAG) RecordMetric(name string, v int64) {
	if d.metrics == nil {
		d.metrics = make(map[string]int64)
	}
	d.metrics[name] = v
}

// Metrics returns the workload-recorded annotations (nil when none were
// recorded).  The map is the DAG's own; callers must not mutate it.
func (d *DAG) Metrics() map[string]int64 { return d.metrics }

// New returns an empty DAG with the given name.
func New(name string) *DAG {
	return &DAG{Name: name}
}

// AddTask appends a task. Tasks must be created in sequential (1DF)
// execution order: the n-th task created receives Seq = n.
func (d *DAG) AddTask(name string, gen refs.Gen) *Task {
	var instrs int64
	if gen != nil {
		instrs = gen.Instrs()
	}
	t := &Task{
		ID:     TaskID(len(d.tasks)),
		Name:   name,
		Seq:    len(d.tasks),
		Instrs: instrs,
		Refs:   gen,
		Group:  -1,
	}
	d.tasks = append(d.tasks, t)
	return t
}

// AddComputeTask appends a task that retires instrs instructions and
// performs no memory references.
func (d *DAG) AddComputeTask(name string, instrs int64) *Task {
	return d.AddTask(name, refs.Compute{N: instrs})
}

// AddEdge records a dependence from task `from` to task `to` (to cannot
// start until from completes). Self edges and duplicate edges are rejected.
func (d *DAG) AddEdge(from, to TaskID) error {
	if !d.valid(from) || !d.valid(to) {
		return fmt.Errorf("dag: edge %d->%d references unknown task (have %d tasks)", from, to, len(d.tasks))
	}
	if from == to {
		return fmt.Errorf("dag: self edge on task %d", from)
	}
	f := d.tasks[from]
	for _, s := range f.Succs {
		if s == to {
			return fmt.Errorf("dag: duplicate edge %d->%d", from, to)
		}
	}
	f.Succs = append(f.Succs, to)
	d.tasks[to].Preds = append(d.tasks[to].Preds, from)
	return nil
}

// MustEdge is AddEdge but panics on error; intended for workload generators
// whose edge structure is correct by construction.
func (d *DAG) MustEdge(from, to TaskID) {
	if err := d.AddEdge(from, to); err != nil {
		panic(err)
	}
}

// Fork adds edges from parent to every child.
func (d *DAG) Fork(parent TaskID, children ...TaskID) {
	for _, c := range children {
		d.MustEdge(parent, c)
	}
}

// Join adds edges from every pred to join.
func (d *DAG) Join(join TaskID, preds ...TaskID) {
	for _, p := range preds {
		d.MustEdge(p, join)
	}
}

func (d *DAG) valid(id TaskID) bool { return id >= 0 && int(id) < len(d.tasks) }

// Task returns the task with the given ID, or nil.
func (d *DAG) Task(id TaskID) *Task {
	if !d.valid(id) {
		return nil
	}
	return d.tasks[id]
}

// NumTasks returns the number of tasks.
func (d *DAG) NumTasks() int { return len(d.tasks) }

// Tasks returns the tasks in creation (sequential) order. The slice is the
// DAG's backing store; callers must not modify it.
func (d *DAG) Tasks() []*Task { return d.tasks }

// Roots returns the tasks with no predecessors, in sequential order.
func (d *DAG) Roots() []TaskID {
	var roots []TaskID
	for _, t := range d.tasks {
		if len(t.Preds) == 0 {
			roots = append(roots, t.ID)
		}
	}
	return roots
}

// Sinks returns the tasks with no successors, in sequential order.
func (d *DAG) Sinks() []TaskID {
	var sinks []TaskID
	for _, t := range d.tasks {
		if len(t.Succs) == 0 {
			sinks = append(sinks, t.ID)
		}
	}
	return sinks
}

// TotalInstrs returns the total work (sum of task instruction counts).
func (d *DAG) TotalInstrs() int64 {
	var total int64
	for _, t := range d.tasks {
		total += t.Instrs
	}
	return total
}

// TotalRefs returns the total number of memory references across all tasks.
func (d *DAG) TotalRefs() int64 {
	var total int64
	for _, t := range d.tasks {
		if t.Refs != nil {
			total += t.Refs.Len()
		}
	}
	return total
}

// Depth returns the weight of the heaviest dependence path (the critical
// path length D in the paper's notation), measured in instructions.
func (d *DAG) Depth() int64 {
	// Tasks are in a topological order (Seq order), so a single forward
	// sweep computes longest paths.
	if len(d.tasks) == 0 {
		return 0
	}
	finish := make([]int64, len(d.tasks))
	var depth int64
	for _, t := range d.tasks {
		var start int64
		for _, p := range t.Preds {
			if finish[p] > start {
				start = finish[p]
			}
		}
		finish[t.ID] = start + t.Instrs
		if finish[t.ID] > depth {
			depth = finish[t.ID]
		}
	}
	return depth
}

// ErrCycle is returned by Validate when the edge structure is cyclic or
// inconsistent with the sequential order.
var ErrCycle = errors.New("dag: edges are not consistent with a sequential (topological) order")

// Validate checks structural invariants:
//   - task IDs are dense and Seq equals creation order,
//   - every edge joins two known tasks,
//   - predecessor Seq is strictly less than successor Seq (hence acyclic),
//   - Instrs agrees with the reference generator when present.
func (d *DAG) Validate() error {
	for i, t := range d.tasks {
		if int(t.ID) != i {
			return fmt.Errorf("dag: task at position %d has ID %d", i, t.ID)
		}
		if t.Seq != i {
			return fmt.Errorf("dag: task %d has Seq %d, want %d", t.ID, t.Seq, i)
		}
		if t.Refs != nil && t.Instrs != t.Refs.Instrs() {
			return fmt.Errorf("dag: task %d Instrs=%d but generator reports %d", t.ID, t.Instrs, t.Refs.Instrs())
		}
		for _, s := range t.Succs {
			if !d.valid(s) {
				return fmt.Errorf("dag: task %d has unknown successor %d", t.ID, s)
			}
			if d.tasks[s].Seq <= t.Seq {
				return fmt.Errorf("%w: edge %d->%d goes backwards in sequential order", ErrCycle, t.ID, s)
			}
		}
		for _, p := range t.Preds {
			if !d.valid(p) {
				return fmt.Errorf("dag: task %d has unknown predecessor %d", t.ID, p)
			}
		}
	}
	// Cross-check that Preds and Succs mirror each other.
	for _, t := range d.tasks {
		for _, s := range t.Succs {
			if !contains(d.tasks[s].Preds, t.ID) {
				return fmt.Errorf("dag: edge %d->%d missing reverse link", t.ID, s)
			}
		}
		for _, p := range t.Preds {
			if !contains(d.tasks[p].Succs, t.ID) {
				return fmt.Errorf("dag: edge %d->%d missing forward link", p, t.ID)
			}
		}
	}
	return nil
}

func contains(ids []TaskID, id TaskID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// ResetRefs rewinds every task's reference generator so the DAG can be
// replayed by another simulation or profiling pass.
func (d *DAG) ResetRefs() {
	for _, t := range d.tasks {
		if t.Refs != nil {
			t.Refs.Reset()
		}
	}
}

// SequentialOrder returns task IDs sorted by Seq (equivalently, creation
// order).  It exists mostly for symmetry and for callers holding a filtered
// task set.
func (d *DAG) SequentialOrder() []TaskID {
	ids := make([]TaskID, len(d.tasks))
	for i := range ids {
		ids[i] = TaskID(i)
	}
	return ids
}

// TopologicalCheck verifies by Kahn's algorithm that the DAG is acyclic and
// returns the number of tasks visited. It is a heavier-weight check than
// Validate used by property tests.
func (d *DAG) TopologicalCheck() (int, error) {
	indeg := make([]int, len(d.tasks))
	for _, t := range d.tasks {
		indeg[t.ID] = len(t.Preds)
	}
	var queue []TaskID
	for _, t := range d.tasks {
		if indeg[t.ID] == 0 {
			queue = append(queue, t.ID)
		}
	}
	visited := 0
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		visited++
		for _, s := range d.tasks[id].Succs {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if visited != len(d.tasks) {
		return visited, ErrCycle
	}
	return visited, nil
}

// CriticalPath returns the IDs of tasks along one heaviest dependence path,
// in execution order.
func (d *DAG) CriticalPath() []TaskID {
	if len(d.tasks) == 0 {
		return nil
	}
	finish := make([]int64, len(d.tasks))
	prev := make([]TaskID, len(d.tasks))
	for i := range prev {
		prev[i] = None
	}
	var last TaskID
	var depth int64 = -1
	for _, t := range d.tasks {
		var start int64
		best := None
		for _, p := range t.Preds {
			if finish[p] > start {
				start = finish[p]
				best = p
			}
		}
		prev[t.ID] = best
		finish[t.ID] = start + t.Instrs
		if finish[t.ID] > depth {
			depth = finish[t.ID]
			last = t.ID
		}
	}
	var path []TaskID
	for id := last; id != None; id = prev[id] {
		path = append(path, id)
	}
	// Reverse into execution order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// Stats summarises the DAG for reporting.
type Stats struct {
	Tasks       int
	Edges       int
	TotalInstrs int64
	TotalRefs   int64
	Depth       int64
	MaxOutDeg   int
	MaxInDeg    int
	Roots       int
	Sinks       int
}

// ComputeStats gathers summary statistics about the DAG.
func (d *DAG) ComputeStats() Stats {
	s := Stats{
		Tasks:       len(d.tasks),
		TotalInstrs: d.TotalInstrs(),
		TotalRefs:   d.TotalRefs(),
		Depth:       d.Depth(),
		Roots:       len(d.Roots()),
		Sinks:       len(d.Sinks()),
	}
	for _, t := range d.tasks {
		s.Edges += len(t.Succs)
		if len(t.Succs) > s.MaxOutDeg {
			s.MaxOutDeg = len(t.Succs)
		}
		if len(t.Preds) > s.MaxInDeg {
			s.MaxInDeg = len(t.Preds)
		}
	}
	return s
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	return fmt.Sprintf("tasks=%d edges=%d instrs=%d refs=%d depth=%d roots=%d sinks=%d maxOut=%d maxIn=%d",
		s.Tasks, s.Edges, s.TotalInstrs, s.TotalRefs, s.Depth, s.Roots, s.Sinks, s.MaxOutDeg, s.MaxInDeg)
}

// TasksByLevel groups task IDs by their Level field, returning levels in
// ascending order. Used by per-level miss analyses (Figure 1).
func (d *DAG) TasksByLevel() map[int][]TaskID {
	out := make(map[int][]TaskID)
	for _, t := range d.tasks {
		out[t.Level] = append(out[t.Level], t.ID)
	}
	return out
}

// Levels returns the distinct Level values present, ascending.
func (d *DAG) Levels() []int {
	seen := make(map[int]bool)
	for _, t := range d.tasks {
		seen[t.Level] = true
	}
	levels := make([]int, 0, len(seen))
	for l := range seen {
		levels = append(levels, l)
	}
	sort.Ints(levels)
	return levels
}
