package dag

import "cmpsched/internal/refs"

// Snapshot is an immutable recording of a DAG: every task's reference stream
// drained into a content-addressed trace store (identical streams share one
// arena), with the task and edge structure kept as a read-only template.
// Instantiate stamps out independently simulatable copies, so a DAG that
// would otherwise be rebuilt per run — the N scheduler x topology jobs of a
// sweep, or repeated runs of one workload — is generated once and replayed
// from recorded blocks thereafter.
//
// A Snapshot is safe for concurrent Instantiate calls.  The instances share
// the template's edge slices and metrics map, which simulation never
// mutates; each instance gets its own task structs and replay cursors, so
// concurrent simulations of sibling instances never share generator state.
type Snapshot struct {
	name     string
	tasks    []Task           // template structs; Refs nil (see recorded)
	recorded []*refs.Recorded // per-task template cursors, nil for ref-less tasks
	metrics  map[string]int64
	store    *refs.TraceStore
}

// Record drains every reference stream of d into store (creating a private
// store when nil) and returns the Snapshot.  d must be fully built: Record
// shares its edge slices with the template, so adding edges to d afterwards
// is not allowed.  d's generators are Reset after draining, and the recorded
// streams replay them exactly, so instances simulate bit-identically to d.
func Record(d *DAG, store *refs.TraceStore) *Snapshot {
	if store == nil {
		store = refs.NewTraceStore()
	}
	s := &Snapshot{
		name:     d.Name,
		tasks:    make([]Task, len(d.tasks)),
		recorded: make([]*refs.Recorded, len(d.tasks)),
		metrics:  d.metrics,
		store:    store,
	}
	for i, t := range d.tasks {
		s.tasks[i] = *t
		if t.Refs != nil {
			s.recorded[i] = store.Intern(t.Refs)
			s.tasks[i].Refs = nil
		}
	}
	return s
}

// Instantiate returns a fresh DAG instance: new task structs with rewound
// replay cursors over the shared arenas.  Instances are independent for
// simulation purposes and may run concurrently with each other and with the
// source DAG.
func (s *Snapshot) Instantiate() *DAG {
	tasks := make([]Task, len(s.tasks))
	copy(tasks, s.tasks)
	ptrs := make([]*Task, len(tasks))
	for i := range tasks {
		if r := s.recorded[i]; r != nil {
			tasks[i].Refs = r.Clone()
		}
		ptrs[i] = &tasks[i]
	}
	return &DAG{Name: s.name, tasks: ptrs, metrics: s.metrics}
}

// NumTasks returns the number of tasks in the template.
func (s *Snapshot) NumTasks() int { return len(s.tasks) }

// Store returns the trace store backing the snapshot's arenas, for interning
// further DAGs into the same store or reading sharing statistics.
func (s *Snapshot) Store() *refs.TraceStore { return s.store }
