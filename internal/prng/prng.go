// Package prng provides the splitmix64 pseudo-random primitives shared by
// the reference-stream, workload and graph generators.  splitmix64 is tiny,
// fast and fully deterministic across platforms, which is what keeps traces
// — and therefore sweep cache keys — reproducible everywhere.
//
// Callers keep their own reduction strategies (multiply-shift in refs,
// modulo in graph): only the generator state step and the finaliser live
// here, so consolidating the copies cannot change any generated stream.
package prng

// SplitMix64 is a splitmix64 pseudo-random number generator.
type SplitMix64 struct{ State uint64 }

// Next advances the state and returns the next 64-bit value.
func (s *SplitMix64) Next() uint64 {
	s.State += 0x9e3779b97f4a7c15
	return Mix64(s.State)
}

// Mix64 is the splitmix64 finaliser, also usable as a stateless hash (e.g.
// deriving symmetric edge weights from endpoint pairs).
func Mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
