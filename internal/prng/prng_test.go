package prng

import "testing"

// TestKnownValues pins the generator to the reference splitmix64 outputs for
// seed 1234567 (from the public-domain reference implementation), so any
// drift that would silently change every generated trace fails loudly.
func TestKnownValues(t *testing.T) {
	s := &SplitMix64{State: 1234567}
	want := []uint64{
		6457827717110365317,
		3203168211198807973,
		9817491932198370423,
		4593380528125082431,
		16408922859458223821,
	}
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Fatalf("Next() #%d = %d, want %d", i, got, w)
		}
	}
}

func TestMix64MatchesNextStep(t *testing.T) {
	s := &SplitMix64{State: 42}
	if got, want := s.Next(), Mix64(42+0x9e3779b97f4a7c15); got != want {
		t.Fatalf("Next() = %d, Mix64(state+gamma) = %d", got, want)
	}
}

func TestDeterministicAcrossInstances(t *testing.T) {
	a, b := &SplitMix64{State: 7}, &SplitMix64{State: 7}
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("instances diverged at step %d", i)
		}
	}
}
