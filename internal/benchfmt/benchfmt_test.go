package benchfmt

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: cmpsched
cpu: AMD EPYC 7B13
BenchmarkSimulateMergesortPDF  	      30	  37315743 ns/op	  136560 B/op	    2628 allocs/op
BenchmarkSimulateBFSUniformPDF 	      57	  20880773 ns/op	        86.43 L2-MPKI	   26229 B/op	     129 allocs/op
PASS
ok  	cmpsched	12.3s
`

func TestParse(t *testing.T) {
	report, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if report.Goos != "linux" || report.Goarch != "amd64" || report.Pkg != "cmpsched" || report.CPU != "AMD EPYC 7B13" {
		t.Fatalf("header = %+v", report)
	}
	if len(report.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(report.Benchmarks))
	}
	ms := report.Benchmarks[0]
	if ms.Name != "BenchmarkSimulateMergesortPDF" || ms.Iterations != 30 {
		t.Fatalf("benchmark 0 = %+v", ms)
	}
	if ms.Metrics["ns/op"] != 37315743 || ms.Metrics["allocs/op"] != 2628 {
		t.Fatalf("metrics 0 = %+v", ms.Metrics)
	}
	bfs := report.Benchmarks[1]
	if bfs.Metrics["L2-MPKI"] != 86.43 {
		t.Fatalf("custom metric not kept: %+v", bfs.Metrics)
	}
	if !strings.Contains(bfs.Raw, "20880773 ns/op") {
		t.Fatalf("raw line not preserved: %q", bfs.Raw)
	}
}

func TestParseLineRejectsMalformed(t *testing.T) {
	for _, line := range []string{
		"BenchmarkOnlyName",
		"BenchmarkNoIters abc 1 ns/op",
		"BenchmarkOddFields 10 123 ns/op extra",
		"BenchmarkBadValue 10 abc ns/op",
	} {
		if _, ok := ParseLine(line); ok {
			t.Errorf("ParseLine accepted %q", line)
		}
	}
}

// bench builds a one-line report entry for Compare tests.
func bench(name string, ns, allocs float64) Benchmark {
	return Benchmark{Name: name, Metrics: map[string]float64{"ns/op": ns, "allocs/op": allocs}}
}

func TestCompareWithinTolerance(t *testing.T) {
	base := &Report{Benchmarks: []Benchmark{bench("A", 1000, 50), bench("B", 2000, 90)}}
	cand := &Report{Benchmarks: []Benchmark{bench("A", 1090, 50), bench("B", 1800, 88)}}
	findings, regressions := Compare(base, cand, Tolerance{Time: 0.10})
	if regressions != 0 {
		t.Fatalf("regressions = %d, findings %+v", regressions, findings)
	}
	if len(findings) != 2 || findings[0].Name != "A" || findings[1].Name != "B" {
		t.Fatalf("findings = %+v", findings)
	}
}

func TestCompareTimeRegression(t *testing.T) {
	base := &Report{Benchmarks: []Benchmark{bench("A", 1000, 50)}}
	cand := &Report{Benchmarks: []Benchmark{bench("A", 1111, 50)}}
	findings, regressions := Compare(base, cand, Tolerance{Time: 0.10})
	if regressions != 1 || !findings[0].Regression {
		t.Fatalf("+11.1%% time not flagged: %+v", findings)
	}
}

func TestCompareAnyAllocIncreaseFails(t *testing.T) {
	base := &Report{Benchmarks: []Benchmark{bench("A", 1000, 53)}}
	cand := &Report{Benchmarks: []Benchmark{bench("A", 900, 54)}}
	findings, regressions := Compare(base, cand, Tolerance{Time: 0.10})
	if regressions != 1 || !findings[0].Regression {
		t.Fatalf("single alloc increase not flagged: %+v", findings)
	}
	if !strings.Contains(findings[0].Detail, "allocs/op 53 -> 54") {
		t.Fatalf("detail = %q", findings[0].Detail)
	}
}

// benchB builds an entry with a B/op metric for the bytes-band tests.
func benchB(name string, ns, allocs, bytes float64) Benchmark {
	b := bench(name, ns, allocs)
	b.Metrics["B/op"] = bytes
	return b
}

func TestCompareBytesBand(t *testing.T) {
	base := &Report{Benchmarks: []Benchmark{benchB("A", 1000, 50, 10000)}}

	within := &Report{Benchmarks: []Benchmark{benchB("A", 1000, 50, 10900)}}
	if findings, regressions := Compare(base, within, Tolerance{Time: 0.10, Bytes: 0.10}); regressions != 0 {
		t.Fatalf("+9%% bytes flagged inside +10%% band: %+v", findings)
	}

	over := &Report{Benchmarks: []Benchmark{benchB("A", 1000, 50, 11200)}}
	findings, regressions := Compare(base, over, Tolerance{Time: 0.10, Bytes: 0.10})
	if regressions != 1 || !findings[0].Regression {
		t.Fatalf("+12%% bytes not flagged: %+v", findings)
	}
	if !strings.Contains(findings[0].Detail, "B/op 10000 -> 11200") {
		t.Fatalf("detail = %q", findings[0].Detail)
	}

	// Zero band disables the check entirely (historical baselines).
	if findings, regressions := Compare(base, over, Tolerance{Time: 0.10}); regressions != 0 {
		t.Fatalf("bytes check ran with zero band: %+v", findings)
	}
}

func TestCompareBytesRoundingSlack(t *testing.T) {
	// A small baseline whose band lands between integers must not trip on
	// rounding: 45 B/op with a 10% band allows 49.5, and the +0.5 slack lets
	// the integer-reported 50 through.
	base := &Report{Benchmarks: []Benchmark{benchB("A", 1000, 50, 45)}}
	cand := &Report{Benchmarks: []Benchmark{benchB("A", 1000, 50, 50)}}
	if findings, regressions := Compare(base, cand, Tolerance{Time: 0.10, Bytes: 0.10}); regressions != 0 {
		t.Fatalf("sub-byte rounding tripped the band: %+v", findings)
	}
}

func TestCompareMissingAndNewBenchmarks(t *testing.T) {
	base := &Report{Benchmarks: []Benchmark{bench("Gone", 1000, 10)}}
	cand := &Report{Benchmarks: []Benchmark{bench("New", 1000, 10)}}
	findings, regressions := Compare(base, cand, Tolerance{Time: 0.10})
	if regressions != 1 {
		t.Fatalf("missing baseline benchmark not flagged: %+v", findings)
	}
	if len(findings) != 2 {
		t.Fatalf("findings = %+v", findings)
	}
	// Sorted by name: "Gone" (regression) then "New" (informational).
	if !findings[0].Regression || findings[1].Regression {
		t.Fatalf("findings = %+v", findings)
	}
}
