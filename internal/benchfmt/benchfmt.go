// Package benchfmt parses `go test -bench` output into a machine-readable
// report and compares two reports under a regression-tolerance policy.  It is
// the shared core of cmd/benchjson (archive a run as JSON) and cmd/benchgate
// (fail CI when a run regresses past the tolerance band against the
// committed baseline).
package benchfmt

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the full benchmark name including any -cpu suffix (e.g.
	// "BenchmarkSimulateMergesortPDF-8").
	Name string `json:"name"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value for every "<value> <unit>" pair on the
	// line: ns/op, B/op, allocs/op and custom ReportMetric units.
	Metrics map[string]float64 `json:"metrics"`
	// Raw is the original line, for benchstat reconstruction.
	Raw string `json:"raw"`
}

// Report is the document emitted by benchjson and consumed by benchgate.
type Report struct {
	// Timestamp is the UTC generation time (RFC 3339).
	Timestamp string `json:"timestamp"`
	// Goos/Goarch/CPU/Pkg echo the `go test` header lines when present.
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	Pkg    string `json:"pkg,omitempty"`
	// Notes carries free-form provenance for the run — what machine it was
	// taken on, what baseline it replaced and why.  It is ignored by Compare.
	Notes string `json:"notes,omitempty"`
	// Benchmarks are the parsed results in input order.
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Parse reads `go test -bench` output, collecting header fields and every
// benchmark result line.
func Parse(r io.Reader) (*Report, error) {
	report := &Report{Timestamp: time.Now().UTC().Format(time.RFC3339)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			report.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			report.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			report.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			report.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := ParseLine(line)
			if ok {
				report.Benchmarks = append(report.Benchmarks, b)
			}
		}
	}
	return report, sc.Err()
}

// ParseLine parses one result line: name, iteration count, then
// "<value> <unit>" pairs.  ok is false for lines that are not complete
// benchmark results (e.g. a bare "BenchmarkFoo" continuation line).
func ParseLine(line string) (b Benchmark, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b = Benchmark{
		Name:       fields[0],
		Iterations: iters,
		Metrics:    make(map[string]float64, (len(fields)-2)/2),
		Raw:        line,
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}

// Tolerance is the regression policy Compare applies per benchmark.
type Tolerance struct {
	// Time is the allowed fractional ns/op increase (0.10 = +10%).  Wall
	// time is noisy, so it gets a band rather than an exact bar.
	Time float64
	// AllocBand is the allowed absolute allocs/op increase.  Allocation
	// counts are deterministic, so the default band of zero fails ANY
	// increase — the policy that protects the simulator's zero-alloc
	// steady state.
	AllocBand float64
	// Bytes is the allowed fractional B/op increase (0.10 = +10%).  Unlike
	// allocation counts, byte totals move with runtime internals (map growth
	// thresholds, stack sizes), so they get a fractional band like time
	// rather than the exact bar — but unlike time they are not noisy, so the
	// band can be tight.  The zero value disables the check, matching the
	// historical policy for baselines captured before byte gating.
	Bytes float64
}

// Finding is one per-benchmark comparison outcome.
type Finding struct {
	// Name is the benchmark compared.
	Name string
	// Regression is true when the candidate breaks the tolerance.
	Regression bool
	// Detail is the human-readable comparison line.
	Detail string
}

// Compare checks every baseline benchmark against the candidate report.  A
// benchmark regresses when its ns/op grows beyond tol.Time, its allocs/op
// grows beyond tol.AllocBand, its B/op grows beyond tol.Bytes (when set), or
// it disappeared from the candidate.
// Candidate-only benchmarks are reported as informational findings (new
// benchmarks are not regressions).  Findings are sorted by name; the
// returned count is the number of regressions.
func Compare(baseline, candidate *Report, tol Tolerance) (findings []Finding, regressions int) {
	cand := make(map[string]Benchmark, len(candidate.Benchmarks))
	for _, b := range candidate.Benchmarks {
		cand[b.Name] = b
	}
	for _, base := range baseline.Benchmarks {
		c, ok := cand[base.Name]
		if !ok {
			findings = append(findings, Finding{
				Name:       base.Name,
				Regression: true,
				Detail:     "missing from candidate run",
			})
			continue
		}
		delete(cand, base.Name)
		f := compareOne(base, c, tol)
		findings = append(findings, f)
	}
	for name := range cand {
		findings = append(findings, Finding{
			Name:   name,
			Detail: "new benchmark (no baseline)",
		})
	}
	sort.Slice(findings, func(i, j int) bool { return findings[i].Name < findings[j].Name })
	for _, f := range findings {
		if f.Regression {
			regressions++
		}
	}
	return findings, regressions
}

// compareOne applies the tolerance to a single benchmark pair.
func compareOne(base, cand Benchmark, tol Tolerance) Finding {
	var problems []string
	details := make([]string, 0, 2)
	if bt, ok := base.Metrics["ns/op"]; ok {
		ct := cand.Metrics["ns/op"]
		ratio := 0.0
		if bt > 0 {
			ratio = ct/bt - 1
		}
		details = append(details, fmt.Sprintf("time %+.1f%%", ratio*100))
		if ratio > tol.Time {
			problems = append(problems, fmt.Sprintf("ns/op %.0f -> %.0f (%+.1f%% > %+.1f%% band)",
				bt, ct, ratio*100, tol.Time*100))
		}
	}
	if ba, ok := base.Metrics["allocs/op"]; ok {
		ca := cand.Metrics["allocs/op"]
		details = append(details, fmt.Sprintf("allocs %.0f -> %.0f", ba, ca))
		if ca > ba+tol.AllocBand {
			problems = append(problems, fmt.Sprintf("allocs/op %.0f -> %.0f (any increase fails)", ba, ca))
		}
	}
	if bb, ok := base.Metrics["B/op"]; ok && tol.Bytes > 0 {
		cb := cand.Metrics["B/op"]
		ratio := 0.0
		if bb > 0 {
			ratio = cb/bb - 1
		}
		details = append(details, fmt.Sprintf("bytes %+.1f%%", ratio*100))
		// The +0.5 slack keeps sub-byte rounding of tiny baselines from
		// tripping the band.
		if cb > bb*(1+tol.Bytes)+0.5 {
			problems = append(problems, fmt.Sprintf("B/op %.0f -> %.0f (%+.1f%% > %+.1f%% band)",
				bb, cb, ratio*100, tol.Bytes*100))
		}
	}
	if len(problems) > 0 {
		return Finding{Name: base.Name, Regression: true, Detail: strings.Join(problems, "; ")}
	}
	return Finding{Name: base.Name, Detail: strings.Join(details, ", ")}
}
