package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestNilDisabledState proves the zero-cost-when-off contract at the API
// level: every tracer and metric method on a nil receiver is a no-op and
// allocates nothing.
func TestNilDisabledState(t *testing.T) {
	var tr *Tracer
	var reg *Registry
	allocs := testing.AllocsPerRun(100, func() {
		tr.Reset()
		tr.SetTime(42)
		tr.Spawn(1, 0)
		tr.Ready(1, 0)
		tr.Run(1, 0)
		tr.Finish(1, 0)
		tr.Steal(1, 2, 3)
		tr.Pin(1, 0, PinL1)
		tr.Migrate(1, 0)
		reg.Counter("c").Add(1)
		reg.Gauge("g").Set(1)
		reg.Histogram("h", nil).Observe(1)
		reg.ShardedCounter("s", 4).Add(0, 1)
		var p *Progress
		p.Step(false)
		p.Finish()
	})
	if allocs != 0 {
		t.Fatalf("disabled instrumentation allocated %.1f times per call set", allocs)
	}
	if tr.Len() != 0 || len(tr.Events()) != 0 {
		t.Fatalf("nil tracer recorded events")
	}
	if reg.Snapshot() != nil {
		t.Fatalf("nil registry produced a snapshot")
	}
}

func TestTracerRecordsLifecycle(t *testing.T) {
	tr := NewTracer()
	tr.Spawn(0, -1)
	tr.Ready(0, -1)
	tr.SetTime(10)
	tr.Run(0, 2)
	tr.SetTime(50)
	tr.Finish(0, 2)
	tr.Steal(1, 3, 0)
	events := tr.Events()
	want := []Event{
		{Time: 0, Task: 0, Core: -1, Aux: -1, Kind: EvSpawn},
		{Time: 0, Task: 0, Core: -1, Aux: -1, Kind: EvReady},
		{Time: 10, Task: 0, Core: 2, Aux: -1, Kind: EvRun},
		{Time: 50, Task: 0, Core: 2, Aux: -1, Kind: EvFinish},
		{Time: 50, Task: 1, Core: 3, Aux: 0, Kind: EvSteal},
	}
	if len(events) != len(want) {
		t.Fatalf("recorded %d events, want %d", len(events), len(want))
	}
	for i, e := range events {
		if e != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, e, want[i])
		}
	}
	tr.Reset()
	if tr.Len() != 0 {
		t.Fatalf("Reset left %d events", tr.Len())
	}
}

// TestChromeTraceDeterministicAndValid pins the export contract: identical
// event streams produce byte-identical documents, and the document is valid
// JSON in the trace-event object format.
func TestChromeTraceDeterministicAndValid(t *testing.T) {
	build := func() *Tracer {
		tr := NewTracer()
		tr.Spawn(0, -1)
		tr.Ready(0, -1)
		tr.Run(0, 0)
		tr.SetTime(100)
		tr.Pin(1, 0, PinSlice)
		tr.Steal(1, 1, 0)
		tr.Run(1, 1)
		tr.SetTime(200)
		tr.Finish(0, 0)
		tr.Finish(1, 1)
		return tr
	}
	var a, b bytes.Buffer
	if err := build().WriteChromeTrace(&a, ChromeTraceConfig{Cores: 2}); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteChromeTrace(&b, ChromeTraceConfig{Cores: 2}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("identical event streams exported different documents")
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	// 2 thread-name metadata events + 8 lifecycle events.
	if len(doc.TraceEvents) != 10 {
		t.Fatalf("exported %d events, want 10", len(doc.TraceEvents))
	}
	phases := map[string]int{}
	for _, e := range doc.TraceEvents {
		phases[e["ph"].(string)]++
	}
	if phases["M"] != 2 || phases["B"] != 2 || phases["E"] != 2 || phases["i"] != 4 {
		t.Fatalf("unexpected phase mix %v", phases)
	}
}

func TestRegistrySnapshotSortedAndDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Counter("z.last").Add(3)
		r.Counter("a.first").Add(1)
		r.Gauge("m.gauge").Set(-7)
		h := r.Histogram("h.lat", []int64{10, 100})
		h.Observe(5)
		h.Observe(50)
		h.Observe(5000)
		sc := r.ShardedCounter("s.sharded", 4)
		sc.Add(0, 2)
		sc.Add(3, 5)
		return r
	}
	var a, b strings.Builder
	if err := build().WriteTable(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteTable(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("snapshot table not deterministic:\n%s\nvs\n%s", a.String(), b.String())
	}
	want := strings.Join([]string{
		"a.first=1",
		"h.lat.count=3",
		"h.lat.le_10=1",
		"h.lat.le_100=1",
		"h.lat.le_inf=1",
		"h.lat.sum=5055",
		"m.gauge=-7",
		"s.sharded=7",
		"z.last=3",
	}, "\n") + "\n"
	if a.String() != want {
		t.Fatalf("snapshot table:\n%s\nwant:\n%s", a.String(), want)
	}
	var js bytes.Buffer
	if err := build().WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]int64
	if err := json.Unmarshal(js.Bytes(), &decoded); err != nil {
		t.Fatalf("WriteJSON output invalid: %v", err)
	}
	if decoded["s.sharded"] != 7 || decoded["h.lat.sum"] != 5055 {
		t.Fatalf("WriteJSON decoded %v", decoded)
	}
}

func TestRegistryHandleIdentityAndKindMismatch(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Fatalf("same name returned distinct counter handles")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("kind mismatch did not panic")
		}
	}()
	r.Gauge("x")
}

// TestShardedCounterConcurrent exercises the padded shards from concurrent
// writers (run under -race in CI's race step).
func TestShardedCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 1000
	sc := r.ShardedCounter("jobs", workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				sc.Add(w, 1)
			}
		}(w)
	}
	wg.Wait()
	if got := sc.Value(); got != workers*per {
		t.Fatalf("sharded counter sums to %d, want %d", got, workers*per)
	}
	// Out-of-range writers fold onto shard 0 rather than dropping updates.
	sc.Add(-1, 1)
	sc.Add(workers+5, 1)
	if got := sc.Value(); got != workers*per+2 {
		t.Fatalf("out-of-range adds lost: %d", got)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(10, 10, 4)
	want := []int64{10, 100, 1000, 10000}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestProgressWritesAndFinishes(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, "sweep", 2)
	p.Step(false)
	p.Step(true)
	p.Finish()
	out := buf.String()
	if !strings.Contains(out, "sweep: 1/2") || !strings.Contains(out, "sweep: 2/2") {
		t.Fatalf("missing step lines in %q", out)
	}
	if !strings.Contains(out, "2/2 done, 1 cached") || !strings.HasSuffix(out, "\n") {
		t.Fatalf("missing finish line in %q", out)
	}
}
