// Package obs is the simulator's observability layer: a task-lifecycle
// tracer that exports Chrome trace-event JSON (loadable in Perfetto or
// chrome://tracing), a low-overhead metrics registry (counters, gauges,
// fixed-bucket histograms, padded sharded counters) with deterministic
// snapshot rendering, and a live progress reporter for long sweeps.
//
// Everything here is built to be zero-cost when disabled.  The tracer and
// every metric handle are nil-receiver safe: instrumentation points call
// methods on possibly-nil pointers unconditionally, and a nil receiver
// returns immediately without allocating, so the simulator's hot path and
// allocation budget are untouched when no tracer or registry is attached
// (pinned by the cmpsim golden-fingerprint and AllocsPerRun tests).
// Instrumentation also never feeds back into simulated time: a traced run
// produces bit-identical cycles and cache statistics to an untraced one.
//
// The registry's snapshots are deterministic — sorted by metric name, with
// histograms flattened to stable sub-keys — so the `-v` metric tables of
// cmd/cmpsim and cmd/sweep are byte-reproducible and testable, and
// Registry.WriteJSON is the expvar-style snapshot hook a future sweepd
// server can expose over HTTP.
package obs
