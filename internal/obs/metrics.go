package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.  Add is an uncontended
// atomic increment; single-writer users (the simulator's goroutine) pay a
// few nanoseconds per update.  A nil *Counter is the disabled state: Add
// returns immediately.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins metric.  A nil *Gauge is the disabled state.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge's current value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Value returns the gauge's current value (0 on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram: bounds are inclusive upper bucket
// edges, with an implicit overflow bucket above the last bound.  Observe is
// a binary search plus an atomic increment.  A nil *Histogram is the
// disabled state.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1: the last is the overflow bucket
	count  atomic.Int64
	sum    atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations (0 on a nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on a nil histogram).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// ExpBuckets returns n bucket bounds growing geometrically from start by
// factor — the conventional shape for latency- and size-like metrics.
func ExpBuckets(start, factor int64, n int) []int64 {
	if start < 1 {
		start = 1
	}
	if factor < 2 {
		factor = 2
	}
	bounds := make([]int64, 0, n)
	for v := start; len(bounds) < n; v *= factor {
		bounds = append(bounds, v)
	}
	return bounds
}

// shard is one cache-line-padded counter cell.  The padding keeps adjacent
// shards out of each other's cache lines, so concurrent writers (one shard
// per sweep worker or per core) never false-share.
type shard struct {
	v atomic.Int64
	_ [56]byte
}

// ShardedCounter is a counter split into padded per-writer shards.  Each
// concurrent writer owns one shard index (its worker or core number) and
// increments without contending — or false-sharing — with the others; Value
// folds the shards on demand.  A nil *ShardedCounter is the disabled state.
type ShardedCounter struct {
	shards []shard
}

// Add increments the writer's shard by d; out-of-range writers fold onto
// shard 0 so the total stays correct.
func (s *ShardedCounter) Add(writer int, d int64) {
	if s == nil {
		return
	}
	if writer < 0 || writer >= len(s.shards) {
		writer = 0
	}
	s.shards[writer].v.Add(d)
}

// Value returns the sum across shards (0 on a nil counter).
func (s *ShardedCounter) Value() int64 {
	if s == nil {
		return 0
	}
	var total int64
	for i := range s.shards {
		total += s.shards[i].v.Load()
	}
	return total
}

// metric is one registered metric of any kind.
type metric struct {
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	sharded *ShardedCounter
}

// Registry holds named metrics and renders deterministic snapshots.
// Handles are created on first use and shared afterwards, so publishers in
// different packages (cmpsim, sched, cache, memsys, sweep) can contribute
// to one registry without coordination.  Registration takes a mutex;
// updates through the returned handles are lock-free.
//
// A nil *Registry is the disabled state: every lookup returns a nil handle
// whose update methods return immediately, so publishing code needs no
// branches and costs nothing when metrics are off.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// lookup returns the named metric, creating it with mk on first use.
// Kind mismatches (a name registered twice as different kinds) panic: they
// are programming errors, like duplicate scheduler registrations.
func (r *Registry) lookup(name string, mk func() *metric, pick func(*metric) bool) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.metrics[name]
	if !ok {
		m = mk()
		r.metrics[name] = m
		return m
	}
	if !pick(m) {
		panic(fmt.Sprintf("obs: metric %q re-registered as a different kind", name))
	}
	return m
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	m := r.lookup(name,
		func() *metric { return &metric{counter: &Counter{}} },
		func(m *metric) bool { return m.counter != nil })
	return m.counter
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	m := r.lookup(name,
		func() *metric { return &metric{gauge: &Gauge{}} },
		func(m *metric) bool { return m.gauge != nil })
	return m.gauge
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds (ascending inclusive upper edges) on first use; later callers
// share the first registration's buckets.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	m := r.lookup(name,
		func() *metric {
			b := make([]int64, len(bounds))
			copy(b, bounds)
			return &metric{hist: &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}}
		},
		func(m *metric) bool { return m.hist != nil })
	return m.hist
}

// ShardedCounter returns the named sharded counter with the given shard
// count, creating it on first use; later callers share the first
// registration's shards.
func (r *Registry) ShardedCounter(name string, shards int) *ShardedCounter {
	if r == nil {
		return nil
	}
	if shards < 1 {
		shards = 1
	}
	m := r.lookup(name,
		func() *metric { return &metric{sharded: &ShardedCounter{shards: make([]shard, shards)}} },
		func(m *metric) bool { return m.sharded != nil })
	return m.sharded
}

// Sample is one flattened snapshot entry.
type Sample struct {
	// Name is the metric name; histogram entries carry stable sub-key
	// suffixes (".count", ".sum", ".le_<bound>", ".le_inf").
	Name string
	// Value is the sampled value.
	Value int64
}

// Snapshot returns a flattened, name-sorted view of every metric.  The
// flattening and ordering are deterministic, so two registries fed the same
// updates snapshot identically — which is what makes the CLI `-v` tables
// testable.
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Sample, 0, len(r.metrics))
	for name, m := range r.metrics {
		switch {
		case m.counter != nil:
			out = append(out, Sample{Name: name, Value: m.counter.Value()})
		case m.gauge != nil:
			out = append(out, Sample{Name: name, Value: m.gauge.Value()})
		case m.sharded != nil:
			out = append(out, Sample{Name: name, Value: m.sharded.Value()})
		case m.hist != nil:
			out = append(out, Sample{Name: name + ".count", Value: m.hist.Count()})
			out = append(out, Sample{Name: name + ".sum", Value: m.hist.Sum()})
			for i, b := range m.hist.bounds {
				out = append(out, Sample{Name: fmt.Sprintf("%s.le_%d", name, b), Value: m.hist.counts[i].Load()})
			}
			out = append(out, Sample{Name: name + ".le_inf", Value: m.hist.counts[len(m.hist.bounds)].Load()})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteTable writes the snapshot as sorted "name=value" lines — the format
// the CLIs print under -v.
func (r *Registry) WriteTable(w io.Writer) error {
	for _, s := range r.Snapshot() {
		if _, err := fmt.Fprintf(w, "%s=%d\n", s.Name, s.Value); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON writes the snapshot as a single expvar-style JSON object with
// sorted keys — the hook a sweep server can expose over HTTP.
func (r *Registry) WriteJSON(w io.Writer) error {
	samples := r.Snapshot()
	if _, err := io.WriteString(w, "{"); err != nil {
		return err
	}
	for i, s := range samples {
		sep := ","
		if i == 0 {
			sep = ""
		}
		if _, err := fmt.Fprintf(w, "%s%q:%d", sep, s.Name, s.Value); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "}\n")
	return err
}
