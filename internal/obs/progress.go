package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress is a live progress reporter for long job streams (cmd/sweep's
// -progress flag).  Each Step rewrites one status line in place (carriage
// return, no newline) with done/total, percentage, cache hits, elapsed time,
// mean per-job time and a naive ETA; Finish prints the final summary line
// and a newline.  Methods are serialised by a mutex so streaming callbacks
// need no locking of their own.
//
// A nil *Progress is the disabled state: every method returns immediately,
// so callers hold one pointer and never branch on whether reporting is on.
type Progress struct {
	mu     sync.Mutex
	w      io.Writer
	label  string
	total  int
	done   int
	cached int
	start  time.Time
}

// NewProgress returns a reporter writing to w, labelled (e.g. "sweep"),
// expecting total steps.
func NewProgress(w io.Writer, label string, total int) *Progress {
	return &Progress{w: w, label: label, total: total, start: time.Now()}
}

// Step records one completed job (cached reports whether it was served from
// the result cache) and redraws the status line.
func (p *Progress) Step(cached bool) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	if cached {
		p.cached++
	}
	elapsed := time.Since(p.start)
	line := fmt.Sprintf("\r%s: %d/%d (%.0f%%) cached %d | %.1fs elapsed",
		p.label, p.done, p.total, pct(p.done, p.total), p.cached, elapsed.Seconds())
	if p.done > 0 && p.done < p.total {
		perJob := elapsed / time.Duration(p.done)
		eta := perJob * time.Duration(p.total-p.done)
		line += fmt.Sprintf(", %.0fms/job, ~%.1fs left", float64(perJob.Microseconds())/1000, eta.Seconds())
	}
	fmt.Fprint(p.w, line)
}

// Finish terminates the status line with a final summary and newline.
func (p *Progress) Finish() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	fmt.Fprintf(p.w, "\r%s: %d/%d done, %d cached, %.2fs total%s\n",
		p.label, p.done, p.total, p.cached, time.Since(p.start).Seconds(),
		"                    ") // pad over any longer prior line
}

// pct returns 100*a/b, tolerating b == 0.
func pct(a, b int) float64 {
	if b == 0 {
		return 100
	}
	return 100 * float64(a) / float64(b)
}
