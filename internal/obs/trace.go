package obs

// EventKind classifies one task-lifecycle event.
type EventKind uint8

// The task lifecycle stages recorded by the tracer.  Spawn, Ready, Run and
// Finish are emitted by the simulator for every task; Steal, Migrate and Pin
// are emitted by the schedulers whose policies produce them (work stealing,
// locality-guided stealing, space-bounded placement).
const (
	// EvSpawn marks a task's dependences being satisfied: its last
	// predecessor finished on Core (-1 for DAG roots, which spawn at the
	// start of the run).
	EvSpawn EventKind = iota
	// EvReady marks the task entering the scheduler's ready structures.
	// In this simulator readiness and enqueueing are simultaneous, so an
	// EvReady always carries the same timestamp as its EvSpawn.
	EvReady
	// EvRun marks the task being assigned to Core and starting execution.
	EvRun
	// EvFinish marks the task completing on Core.
	EvFinish
	// EvSteal marks the task being taken from another core's ready pool by
	// an idle core; Core is the thief and Aux the victim core.
	EvSteal
	// EvMigrate marks a space-bounded task running away from its pinned
	// pool to keep the schedule greedy; Core is the core that took it.
	EvMigrate
	// EvPin marks a space-bounded placement decision; Core is the anchor
	// core and Aux one of PinL1, PinSlice, PinGlobal.
	EvPin
)

// Aux values for EvPin events: the smallest cache level that fits the
// task's profiled working set.
const (
	// PinL1 pins the task to the enabling core's private L1.
	PinL1 int32 = iota
	// PinSlice pins the task to the enabling core's L2 slice.
	PinSlice
	// PinGlobal leaves the task in the global pool.
	PinGlobal
)

// String returns the canonical lower-case event name used in trace exports.
func (k EventKind) String() string {
	switch k {
	case EvSpawn:
		return "spawn"
	case EvReady:
		return "ready"
	case EvRun:
		return "run"
	case EvFinish:
		return "finish"
	case EvSteal:
		return "steal"
	case EvMigrate:
		return "migrate"
	case EvPin:
		return "pin"
	default:
		return "unknown"
	}
}

// Event is one recorded lifecycle event.  Time is in simulated cycles; Core
// and Task identify where and what; Aux carries the kind-specific extra
// (steal victim, pin level), -1 when unused.
type Event struct {
	// Time is the simulated cycle the event occurred at.
	Time int64
	// Task is the DAG task ID.
	Task int32
	// Core is the core the event is attributed to (-1 for DAG roots).
	Core int32
	// Aux is the kind-specific payload: victim core for EvSteal, pin level
	// for EvPin, -1 otherwise.
	Aux int32
	// Kind is the lifecycle stage.
	Kind EventKind
}

// Tracer records task-lifecycle events in simulation order.  The simulator
// advances the tracer's clock (SetTime) as it processes events, so emitters
// that do not know the simulated time — the schedulers — still produce
// correctly stamped events.
//
// A nil *Tracer is the disabled state: every method is nil-receiver safe
// and returns immediately, so instrumentation points need no branches and a
// disabled run records, allocates and perturbs nothing.  Tracers are not
// safe for concurrent use; like the scheduler interface, they are driven
// from the simulator's single goroutine.
type Tracer struct {
	now    int64
	events []Event
}

// NewTracer returns an enabled tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Reset discards recorded events (keeping storage) and rewinds the clock,
// so a tracer can be reused across runs.  The simulator resets the tracer
// at the start of every run, making each run's trace self-contained.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.now = 0
	t.events = t.events[:0]
}

// SetTime advances the tracer's clock to the given simulated cycle; events
// emitted afterwards are stamped with it.
func (t *Tracer) SetTime(now int64) {
	if t == nil {
		return
	}
	t.now = now
}

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Events returns the recorded events in emission order.  The slice aliases
// the tracer's storage; callers must not retain it across Reset.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

func (t *Tracer) emit(kind EventKind, task, core, aux int32) {
	if t == nil {
		return
	}
	t.events = append(t.events, Event{Time: t.now, Task: task, Core: core, Aux: aux, Kind: kind})
}

// Spawn records a task's dependences being satisfied by a completion on
// core (-1 for DAG roots).
func (t *Tracer) Spawn(task, core int32) { t.emit(EvSpawn, task, core, -1) }

// Ready records the task entering the scheduler's ready structures.
func (t *Tracer) Ready(task, core int32) { t.emit(EvReady, task, core, -1) }

// Run records the task starting execution on core.
func (t *Tracer) Run(task, core int32) { t.emit(EvRun, task, core, -1) }

// Finish records the task completing on core.
func (t *Tracer) Finish(task, core int32) { t.emit(EvFinish, task, core, -1) }

// Steal records thief taking the task from victim's ready pool.
func (t *Tracer) Steal(task, thief, victim int32) { t.emit(EvSteal, task, thief, victim) }

// Migrate records the task overflowing out of its pinned pool onto core.
func (t *Tracer) Migrate(task, core int32) { t.emit(EvMigrate, task, core, -1) }

// Pin records a placement decision for the task: level is PinL1, PinSlice
// or PinGlobal, anchored at core.
func (t *Tracer) Pin(task, core, level int32) { t.emit(EvPin, task, core, level) }
