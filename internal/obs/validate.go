package obs

import (
	"encoding/json"
	"fmt"
	"sort"
)

// ValidateChromeTrace checks that data is a well-formed Chrome trace-event
// JSON document of the shape WriteChromeTrace emits, and that every required
// lifecycle stage appears at least once.  Stage names are the EventKind
// strings ("spawn", "ready", "run", "finish", "steal", "migrate", "pin");
// "run" and "finish" are carried by B and E duration events, the rest by
// instants.  It is the schema gate behind cmd/tracecheck: pure validation
// against the documented format, no external trace tooling required.
//
// The checks: the document parses, traceEvents is non-empty, every event has
// a name and a known phase (B, E, i, M), timestamps are non-negative,
// instants carry thread scope, and B/E events nest per thread row (an E
// always closes the B of the same task on the same row).
func ValidateChromeTrace(data []byte, required []string) error {
	var doc struct {
		TraceEvents []struct {
			Name  string          `json:"name"`
			Cat   string          `json:"cat"`
			Phase string          `json:"ph"`
			TS    int64           `json:"ts"`
			TID   int32           `json:"tid"`
			Scope string          `json:"s"`
			Args  json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("not valid trace-event JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("traceEvents is empty")
	}

	seen := map[string]int{}
	open := map[int32][]string{} // per-row stack of open B slice names
	for i, e := range doc.TraceEvents {
		if e.Name == "" {
			return fmt.Errorf("event %d: missing name", i)
		}
		if e.TS < 0 {
			return fmt.Errorf("event %d (%s): negative timestamp %d", i, e.Name, e.TS)
		}
		if e.TID < 0 {
			return fmt.Errorf("event %d (%s): negative tid %d", i, e.Name, e.TID)
		}
		switch e.Phase {
		case "M":
			// Metadata rows (thread names) carry no stage.
		case "B":
			seen["run"]++
			open[e.TID] = append(open[e.TID], e.Name)
		case "E":
			seen["finish"]++
			stack := open[e.TID]
			if len(stack) == 0 {
				return fmt.Errorf("event %d (%s): E without open B on row %d", i, e.Name, e.TID)
			}
			if top := stack[len(stack)-1]; top != e.Name {
				return fmt.Errorf("event %d: E %q does not close open B %q on row %d", i, e.Name, top, e.TID)
			}
			open[e.TID] = stack[:len(stack)-1]
		case "i":
			if e.Scope != "t" {
				return fmt.Errorf("event %d (%s): instant without thread scope", i, e.Name)
			}
			seen[e.Name]++
		default:
			return fmt.Errorf("event %d (%s): unknown phase %q", i, e.Name, e.Phase)
		}
	}
	for tid, stack := range open {
		if len(stack) > 0 {
			return fmt.Errorf("row %d: %d unclosed B events (first %q)", tid, len(stack), stack[0])
		}
	}

	var missing []string
	for _, stage := range required {
		if seen[stage] == 0 {
			missing = append(missing, stage)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return fmt.Errorf("required lifecycle stages absent: %v", missing)
	}
	return nil
}
