package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// ChromeTraceConfig parameterises WriteChromeTrace.
type ChromeTraceConfig struct {
	// Cores, when positive, pre-declares that many named core rows even if
	// some recorded no events; zero infers the rows from the events.
	Cores int
	// TaskName, when non-nil, names the per-task slices (e.g. from the
	// DAG's task labels); nil falls back to "task <id>".
	TaskName func(task int32) string
}

// chromeEvent is one entry of the Chrome trace-event JSON format.  The
// fields are fixed-order structs (not maps) so encoding/json renders the
// document byte-deterministically.
type chromeEvent struct {
	Name  string `json:"name"`
	Cat   string `json:"cat,omitempty"`
	Phase string `json:"ph"`
	TS    int64  `json:"ts"`
	PID   int    `json:"pid"`
	TID   int32  `json:"tid"`
	Scope string `json:"s,omitempty"`
	Args  any    `json:"args,omitempty"`
}

// The args payloads shown in the Perfetto detail pane, one fixed-order
// struct per event shape (task IDs and victim cores are not omitempty:
// task 0 and core 0 are valid values).
type (
	threadNameArgs struct {
		Name string `json:"name"`
	}
	taskArgs struct {
		Task int32 `json:"task"`
	}
	stealArgs struct {
		Task   int32 `json:"task"`
		Victim int32 `json:"victim"`
	}
	pinArgs struct {
		Task  int32  `json:"task"`
		Level string `json:"level"`
	}
)

// chromeDoc is the JSON Object Format wrapper.
type chromeDoc struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
	// DisplayTimeUnit is advisory; timestamps are simulated cycles mapped
	// onto the format's microsecond field.
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// pinLevelName renders an EvPin Aux value for trace args.
func pinLevelName(level int32) string {
	switch level {
	case PinL1:
		return "l1"
	case PinSlice:
		return "slice"
	case PinGlobal:
		return "global"
	default:
		return fmt.Sprintf("level(%d)", level)
	}
}

// WriteChromeTrace exports the recorded events as Chrome trace-event JSON
// (the format Perfetto and chrome://tracing load).  Each core is one thread
// row: task executions render as nested B/E duration slices, and the other
// lifecycle stages (spawn, ready, steal, migrate, pin) render as instant
// events on the row of the core they are attributed to.  Timestamps are
// simulated cycles written into the format's microsecond field, so one
// displayed microsecond is one cycle.
//
// The export is deterministic: events appear in emission order (which the
// simulator guarantees is simulation order) and the encoding uses
// fixed-order structs, so identical runs produce byte-identical documents.
func (t *Tracer) WriteChromeTrace(w io.Writer, cfg ChromeTraceConfig) error {
	events := t.Events()
	maxCore := int32(cfg.Cores) - 1
	for _, e := range events {
		if e.Core > maxCore {
			maxCore = e.Core
		}
	}
	doc := chromeDoc{DisplayTimeUnit: "ms", TraceEvents: make([]chromeEvent, 0, len(events)+int(maxCore)+1)}
	for c := int32(0); c <= maxCore; c++ {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "thread_name", Cat: "__metadata", Phase: "M", PID: 0, TID: c,
			Args: threadNameArgs{Name: fmt.Sprintf("core %d", c)},
		})
	}
	taskName := cfg.TaskName
	if taskName == nil {
		taskName = func(task int32) string { return fmt.Sprintf("task %d", task) }
	}
	for _, e := range events {
		tid := e.Core
		if tid < 0 {
			// DAG roots spawn before any core runs; attribute them to
			// core 0, where the sequential program would begin.
			tid = 0
		}
		switch e.Kind {
		case EvRun:
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: taskName(e.Task), Cat: "task", Phase: "B", TS: e.Time, TID: tid,
				Args: taskArgs{Task: e.Task},
			})
		case EvFinish:
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: taskName(e.Task), Cat: "task", Phase: "E", TS: e.Time, TID: tid,
			})
		case EvSteal:
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: e.Kind.String(), Cat: "sched", Phase: "i", TS: e.Time, TID: tid, Scope: "t",
				Args: stealArgs{Task: e.Task, Victim: e.Aux},
			})
		case EvPin:
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: e.Kind.String(), Cat: "sched", Phase: "i", TS: e.Time, TID: tid, Scope: "t",
				Args: pinArgs{Task: e.Task, Level: pinLevelName(e.Aux)},
			})
		default: // spawn, ready, migrate
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: e.Kind.String(), Cat: "lifecycle", Phase: "i", TS: e.Time, TID: tid, Scope: "t",
				Args: taskArgs{Task: e.Task},
			})
		}
	}
	data, err := json.Marshal(doc)
	if err != nil {
		return fmt.Errorf("obs: encode chrome trace: %w", err)
	}
	data = append(data, '\n')
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("obs: write chrome trace: %w", err)
	}
	return nil
}
