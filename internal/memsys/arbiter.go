package memsys

import "fmt"

// Arbiter multiplexes per-L2-slice request streams onto one off-chip memory
// channel.  Pin bandwidth is a chip-level resource: slicing the L2 does not
// add pins, so every slice's fetches and write-backs contend for the same
// FIFO channel.  The arbiter keeps per-port (per-slice) statistics so
// topology experiments can attribute queueing delay and traffic to slices,
// while the underlying Memory keeps the chip-level aggregate.
//
// Timing is exactly the underlying Memory's: with one port the arbiter is a
// transparent wrapper, which is what keeps shared-topology simulations
// cycle-identical to the pre-topology model.
type Arbiter struct {
	mem   *Memory
	ports []Stats
}

// NewArbiter returns an arbiter over mem with the given number of ports.
func NewArbiter(mem *Memory, ports int) (*Arbiter, error) {
	if ports <= 0 {
		return nil, fmt.Errorf("memsys: arbiter needs at least one port, got %d", ports)
	}
	return &Arbiter{mem: mem, ports: make([]Stats, ports)}, nil
}

// MustNewArbiter is NewArbiter but panics on error.
func MustNewArbiter(mem *Memory, ports int) *Arbiter {
	a, err := NewArbiter(mem, ports)
	if err != nil {
		panic(err)
	}
	return a
}

// Memory returns the underlying off-chip channel.
func (a *Arbiter) Memory() *Memory { return a.mem }

// Ports returns the number of ports.
func (a *Arbiter) Ports() int { return len(a.ports) }

// Fetch issues a demand line fetch from port at time now and returns the
// cycle at which the data is available to the requester.
func (a *Arbiter) Fetch(port int, now int64) int64 {
	a.checkPort(port)
	done := a.mem.Fetch(now)
	p := &a.ports[port]
	p.Fetches++
	p.QueueCycles += done - now - a.mem.cfg.LatencyCycles
	p.BusyCycles += a.mem.cfg.ServiceIntervalCycles
	return done
}

// Writeback schedules a dirty-line write-back from port at time now.
func (a *Arbiter) Writeback(port int, now int64) {
	a.checkPort(port)
	a.mem.Writeback(now)
	p := &a.ports[port]
	p.Writebacks++
	p.BusyCycles += a.mem.cfg.ServiceIntervalCycles
}

// PortStats returns a copy of the per-port statistics, indexed by port.
func (a *Arbiter) PortStats() []Stats {
	out := make([]Stats, len(a.ports))
	copy(out, a.ports)
	return out
}

// Reset clears the channel and every port's statistics.
func (a *Arbiter) Reset() {
	a.mem.Reset()
	for i := range a.ports {
		a.ports[i] = Stats{}
	}
}

func (a *Arbiter) checkPort(port int) {
	if port < 0 || port >= len(a.ports) {
		panic(fmt.Sprintf("memsys: access from unknown arbiter port %d (have %d)", port, len(a.ports)))
	}
}
