package memsys

import (
	"testing"
	"testing/quick"
)

func paperMemory(t *testing.T) *Memory {
	t.Helper()
	m, err := New(Config{LatencyCycles: 300, ServiceIntervalCycles: 30})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func TestValidate(t *testing.T) {
	if err := (Config{LatencyCycles: -1}).Validate(); err == nil {
		t.Fatalf("accepted negative latency")
	}
	if err := (Config{ServiceIntervalCycles: -1}).Validate(); err == nil {
		t.Fatalf("accepted negative service interval")
	}
	if _, err := New(Config{LatencyCycles: -1}); err == nil {
		t.Fatalf("New accepted invalid config")
	}
}

func TestUncontendedFetchLatency(t *testing.T) {
	m := paperMemory(t)
	done := m.Fetch(1000)
	if done != 1300 {
		t.Fatalf("fetch completion = %d, want 1300", done)
	}
	s := m.Stats()
	if s.Fetches != 1 || s.QueueCycles != 0 || s.BusyCycles != 30 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestBandwidthQueueing(t *testing.T) {
	m := paperMemory(t)
	// Two simultaneous fetches: the second queues for one service interval.
	d1 := m.Fetch(0)
	d2 := m.Fetch(0)
	if d1 != 300 {
		t.Fatalf("first fetch = %d, want 300", d1)
	}
	if d2 != 330 {
		t.Fatalf("second fetch = %d, want 330 (queued behind the first)", d2)
	}
	if m.Stats().QueueCycles != 30 {
		t.Fatalf("queue cycles = %d, want 30", m.Stats().QueueCycles)
	}
}

func TestWidelySpacedFetchesDoNotQueue(t *testing.T) {
	m := paperMemory(t)
	m.Fetch(0)
	d := m.Fetch(1000)
	if d != 1300 {
		t.Fatalf("spaced fetch = %d, want 1300", d)
	}
	if m.Stats().QueueCycles != 0 {
		t.Fatalf("unexpected queueing: %+v", m.Stats())
	}
}

func TestWritebackConsumesBandwidthWithoutStalling(t *testing.T) {
	m := paperMemory(t)
	m.Writeback(0)
	d := m.Fetch(0)
	if d != 330 {
		t.Fatalf("fetch after writeback = %d, want 330", d)
	}
	s := m.Stats()
	if s.Writebacks != 1 || s.Transfers() != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestUtilization(t *testing.T) {
	m := paperMemory(t)
	for i := 0; i < 10; i++ {
		m.Fetch(int64(i) * 30)
	}
	// 10 transfers x 30 cycles over 300 cycles = 100% busy.
	if u := m.Utilization(300); u != 1.0 {
		t.Fatalf("utilization = %f, want 1.0", u)
	}
	if u := m.Utilization(600); u != 0.5 {
		t.Fatalf("utilization = %f, want 0.5", u)
	}
	if u := m.Utilization(0); u != 0 {
		t.Fatalf("utilization with zero elapsed = %f, want 0", u)
	}
}

func TestReset(t *testing.T) {
	m := paperMemory(t)
	m.Fetch(0)
	m.Reset()
	if m.Stats().Fetches != 0 || m.NextFree() != 0 {
		t.Fatalf("Reset did not clear state")
	}
}

func TestZeroServiceIntervalMeansInfiniteBandwidth(t *testing.T) {
	m := MustNew(Config{LatencyCycles: 100, ServiceIntervalCycles: 0})
	d1 := m.Fetch(0)
	d2 := m.Fetch(0)
	if d1 != 100 || d2 != 100 {
		t.Fatalf("fetches = %d, %d, want 100, 100", d1, d2)
	}
}

// Property: completion time is always >= issue time + latency, and issue
// order preserves channel start order (FIFO).
func TestPropertyFetchMonotonic(t *testing.T) {
	f := func(deltas []uint8) bool {
		m := MustNew(Config{LatencyCycles: 50, ServiceIntervalCycles: 7})
		now := int64(0)
		lastDone := int64(0)
		for _, d := range deltas {
			now += int64(d % 20)
			done := m.Fetch(now)
			if done < now+50 {
				return false
			}
			if done < lastDone {
				return false
			}
			lastDone = done
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("MustNew did not panic")
		}
	}()
	MustNew(Config{LatencyCycles: -1})
}
