// Package memsys models the off-chip memory system: a fixed access latency
// plus a pin-bandwidth constraint expressed as a service interval (cycles
// between successive line transfers), as in Table 1 of the paper
// (latency 300 cycles, service rate 30 cycles).
//
// The bandwidth channel is a single FIFO resource: a request issued at time
// t starts service at max(t, nextFree); queueing delay is charged to the
// requester.  Write-backs occupy a transfer slot but do not stall the
// requesting core.
package memsys

import "fmt"

// Config describes the off-chip memory system.
type Config struct {
	// LatencyCycles is the unloaded latency of a line fetch.
	LatencyCycles int64
	// ServiceIntervalCycles is the minimum spacing between successive
	// off-chip transfers; it encodes the pin bandwidth (one 128-byte line
	// every 30 cycles in the paper's configurations).
	ServiceIntervalCycles int64
}

// Validate reports inconsistent configurations.
func (c Config) Validate() error {
	if c.LatencyCycles < 0 {
		return fmt.Errorf("memsys: negative latency %d", c.LatencyCycles)
	}
	if c.ServiceIntervalCycles < 0 {
		return fmt.Errorf("memsys: negative service interval %d", c.ServiceIntervalCycles)
	}
	return nil
}

// Stats summarises memory-system activity.
type Stats struct {
	// Fetches is the number of demand line fetches.
	Fetches int64
	// Writebacks is the number of dirty-line write-backs.
	Writebacks int64
	// QueueCycles is the total time requests spent waiting for the
	// bandwidth channel.
	QueueCycles int64
	// BusyCycles is the total time the channel spent transferring.
	BusyCycles int64
}

// Transfers returns the total number of off-chip transfers.
func (s Stats) Transfers() int64 { return s.Fetches + s.Writebacks }

// Memory is the off-chip memory model. The zero value is unusable; use New.
type Memory struct {
	cfg      Config
	nextFree int64
	stats    Stats
}

// New returns a memory system with the given configuration.
func New(cfg Config) (*Memory, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Memory{cfg: cfg}, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *Memory {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Config returns the configuration.
func (m *Memory) Config() Config { return m.cfg }

// Stats returns a copy of the accumulated statistics.
func (m *Memory) Stats() Stats { return m.stats }

// Fetch issues a demand line fetch at time now and returns the cycle at
// which the data is available to the requester (queueing + latency).
func (m *Memory) Fetch(now int64) int64 {
	start := now
	if m.nextFree > start {
		start = m.nextFree
	}
	m.stats.QueueCycles += start - now
	m.nextFree = start + m.cfg.ServiceIntervalCycles
	m.stats.BusyCycles += m.cfg.ServiceIntervalCycles
	m.stats.Fetches++
	return start + m.cfg.LatencyCycles
}

// Writeback schedules a dirty-line write-back at time now. The requester
// does not wait for it, but it consumes a bandwidth slot, delaying later
// transfers.
func (m *Memory) Writeback(now int64) {
	start := now
	if m.nextFree > start {
		start = m.nextFree
	}
	m.nextFree = start + m.cfg.ServiceIntervalCycles
	m.stats.BusyCycles += m.cfg.ServiceIntervalCycles
	m.stats.Writebacks++
}

// NextFree returns the earliest cycle at which the channel is idle. It is
// exposed for tests and for bandwidth-utilization reporting.
func (m *Memory) NextFree() int64 { return m.nextFree }

// Utilization returns the fraction of elapsed cycles the off-chip channel
// was busy, in [0, 1]. elapsed must be positive for a meaningful result.
func (m *Memory) Utilization(elapsed int64) float64 {
	if elapsed <= 0 {
		return 0
	}
	u := float64(m.stats.BusyCycles) / float64(elapsed)
	if u > 1 {
		u = 1
	}
	return u
}

// Reset clears all state and statistics.
func (m *Memory) Reset() {
	m.nextFree = 0
	m.stats = Stats{}
}
