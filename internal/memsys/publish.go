package memsys

import "cmpsched/internal/obs"

// Publish folds the statistics into reg as counters under prefix (e.g.
// "mem" yields "mem.fetches").  Counters accumulate across publishes;
// publishing into a nil registry is a no-op.
func (s Stats) Publish(reg *obs.Registry, prefix string) {
	reg.Counter(prefix + ".fetches").Add(s.Fetches)
	reg.Counter(prefix + ".writebacks").Add(s.Writebacks)
	reg.Counter(prefix + ".queue_cycles").Add(s.QueueCycles)
	reg.Counter(prefix + ".busy_cycles").Add(s.BusyCycles)
}
