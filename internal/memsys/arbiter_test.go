package memsys

import "testing"

func TestArbiterValidation(t *testing.T) {
	m := paperMemory(t)
	if _, err := NewArbiter(m, 0); err == nil {
		t.Fatalf("accepted zero ports")
	}
	if _, err := NewArbiter(m, -1); err == nil {
		t.Fatalf("accepted negative ports")
	}
	a, err := NewArbiter(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Ports() != 2 || a.Memory() != m {
		t.Fatalf("arbiter state: ports=%d", a.Ports())
	}
}

// TestArbiterTimingTransparent checks the arbiter adds no timing of its own:
// completion times match direct Memory calls exactly.
func TestArbiterTimingTransparent(t *testing.T) {
	direct := paperMemory(t)
	arbMem := paperMemory(t)
	a := MustNewArbiter(arbMem, 3)
	issues := []struct {
		port int
		now  int64
	}{{0, 0}, {1, 0}, {2, 10}, {0, 1000}}
	for _, is := range issues {
		want := direct.Fetch(is.now)
		if got := a.Fetch(is.port, is.now); got != want {
			t.Errorf("Fetch(port=%d, now=%d) = %d, want %d", is.port, is.now, got, want)
		}
	}
	direct.Writeback(2000)
	a.Writeback(1, 2000)
	if direct.Stats() != arbMem.Stats() {
		t.Errorf("chip-level stats diverged: %+v vs %+v", direct.Stats(), arbMem.Stats())
	}
}

// TestArbiterPortAttribution checks contention is charged to the port that
// suffered it and that port stats sum to the chip-level stats.
func TestArbiterPortAttribution(t *testing.T) {
	a := MustNewArbiter(paperMemory(t), 2)
	a.Fetch(0, 0) // starts service at 0
	a.Fetch(1, 0) // queues 30 cycles behind port 0
	ports := a.PortStats()
	if ports[0].QueueCycles != 0 {
		t.Errorf("port 0 queue = %d, want 0", ports[0].QueueCycles)
	}
	if ports[1].QueueCycles != 30 {
		t.Errorf("port 1 queue = %d, want 30", ports[1].QueueCycles)
	}
	a.Writeback(0, 100)
	ports = a.PortStats()
	var f, w, q, b int64
	for _, p := range ports {
		f += p.Fetches
		w += p.Writebacks
		q += p.QueueCycles
		b += p.BusyCycles
	}
	chip := a.Memory().Stats()
	if f != chip.Fetches || w != chip.Writebacks || q != chip.QueueCycles || b != chip.BusyCycles {
		t.Errorf("port sums (f=%d w=%d q=%d b=%d) != chip stats %+v", f, w, q, b, chip)
	}
}

func TestArbiterReset(t *testing.T) {
	a := MustNewArbiter(paperMemory(t), 2)
	a.Fetch(0, 0)
	a.Fetch(1, 0)
	a.Reset()
	for i, p := range a.PortStats() {
		if p != (Stats{}) {
			t.Errorf("port %d stats not cleared: %+v", i, p)
		}
	}
	if a.Memory().Stats() != (Stats{}) || a.Memory().NextFree() != 0 {
		t.Errorf("memory not reset")
	}
}
