package graph

import (
	"encoding/binary"
	"strings"
	"testing"
)

func TestCompressRoundtripAllFamilies(t *testing.T) {
	for _, family := range Families() {
		g := mustNew(t, Config{Family: family, Vertices: 1 << 12, AvgDegree: 8, Seed: 9})
		c, err := Compress(g)
		if err != nil {
			t.Fatalf("%s: %v", family, err)
		}
		if c.GraphName() != g.GraphName() || c.NumVertices() != g.N || c.NumEdges() != g.NumEdges() {
			t.Fatalf("%s: shape mismatch after compression", family)
		}
		var buf []int32
		for v := int64(0); v < g.N; v++ {
			if c.Degree(v) != g.Degree(v) || c.FirstEdge(v) != g.FirstEdge(v) {
				t.Fatalf("%s: degree/offset mismatch at vertex %d", family, v)
			}
			buf = c.AdjInto(v, buf)
			want := g.Adj(v)
			if len(buf) != len(want) {
				t.Fatalf("%s: vertex %d decodes %d neighbours, want %d", family, v, len(buf), len(want))
			}
			for i := range buf {
				if buf[i] != want[i] {
					t.Fatalf("%s: vertex %d neighbour %d = %d, want %d", family, v, i, buf[i], want[i])
				}
			}
		}
	}
}

func TestCompressShrinksGeneratedGraphs(t *testing.T) {
	for _, family := range Families() {
		g := mustNew(t, Config{Family: family, Vertices: 1 << 12, AvgDegree: 8, Seed: 9})
		c, err := Compress(g)
		if err != nil {
			t.Fatalf("%s: %v", family, err)
		}
		if c.SizeBytes() >= g.SizeBytes() {
			t.Errorf("%s: compressed %d bytes >= flat %d bytes", family, c.SizeBytes(), g.SizeBytes())
		}
		fb, cb := BytesPerEdge(g), BytesPerEdge(c)
		t.Logf("%s: %.2f B/edge flat, %.2f B/edge compressed (%.1f%%)", family, fb, cb, 100*cb/fb)
		if cb <= 0 || cb >= fb {
			t.Errorf("%s: bytes/edge did not improve: flat %.2f, compressed %.2f", family, fb, cb)
		}
	}
}

func TestCompressEmptyAndIsolated(t *testing.T) {
	g := fromPairs(5, nil) // five isolated vertices, zero edges
	g.Name = "isolated-5"
	c, err := Compress(g)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumEdges() != 0 {
		t.Fatalf("edge count %d, want 0", c.NumEdges())
	}
	for v := int64(0); v < 5; v++ {
		if adj := c.AdjInto(v, nil); len(adj) != 0 {
			t.Fatalf("vertex %d decodes %d neighbours, want 0", v, len(adj))
		}
	}
	if BytesPerEdge(c) != 0 {
		t.Fatalf("BytesPerEdge of an edgeless graph = %f, want 0", BytesPerEdge(c))
	}
}

func TestDecodeAdjIntoErrors(t *testing.T) {
	// A valid stream to mutate: vertex 4 in an n=16 graph with neighbours
	// {1, 3, 9}: zigzag(1-4)=zigzag(-3), then deltas 3-1-1=1 and 9-3-1=5.
	valid := binary.AppendUvarint(nil, zigzag(-3))
	valid = binary.AppendUvarint(valid, 1)
	valid = binary.AppendUvarint(valid, 5)

	check := func(name string, source, n, deg int64, data []byte, wantErr string) {
		t.Helper()
		out, consumed, err := DecodeAdjInto(nil, source, n, deg, data)
		if wantErr == "" {
			if err != nil {
				t.Fatalf("%s: unexpected error: %v", name, err)
			}
			return
		}
		if err == nil {
			t.Fatalf("%s: decoded %v without error, want %q", name, out, wantErr)
		}
		if !strings.Contains(err.Error(), wantErr) {
			t.Fatalf("%s: error %q does not mention %q", name, err, wantErr)
		}
		if consumed > len(data) {
			t.Fatalf("%s: consumed %d bytes of %d", name, consumed, len(data))
		}
	}

	check("valid", 4, 16, 3, valid, "")
	check("truncated mid-varint", 4, 16, 3, valid[:1], "truncated")
	check("truncated missing neighbour", 4, 16, 3, valid[:2], "truncated")
	check("empty stream nonzero degree", 4, 16, 1, nil, "truncated")
	check("neighbour past n", 4, 8, 3, valid, "outside")
	check("negative first neighbour", 0, 16, 1, binary.AppendUvarint(nil, zigzag(-1)), "outside")
	check("negative degree", 4, 16, -1, valid, "invalid shape")
	check("zero vertices", 0, 0, 0, nil, "invalid shape")
	// Ten 0xFF bytes followed by 0x7F: a varint wider than 64 bits, which
	// binary.Uvarint reports as overlong (sz < 0).
	over := append([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}, 0x7F)
	check("overlong varint", 4, 16, 1, over, "truncated or overlong")
	// Max uvarint as a follow-on delta overflows int64.
	big := binary.AppendUvarint(binary.AppendUvarint(nil, zigzag(0)), ^uint64(0))
	check("delta overflow", 4, 16, 2, big, "overflow")
}

func TestCompressMinimalCSR(t *testing.T) {
	// The degenerate one-vertex, one-self-loop CSR compresses and verifies.
	g := &CSR{Name: "tiny", N: 1, Offsets: []int64{0, 1}, Edges: make([]int32, 1)}
	if _, err := Compress(g); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestAdjIntoBufferReuse(t *testing.T) {
	g := mustNew(t, Config{Family: FamilyUniform, Vertices: 1 << 8, AvgDegree: 8, Seed: 2})
	c, err := Compress(g)
	if err != nil {
		t.Fatal(err)
	}
	// A shared buffer across calls must yield the same lists as fresh ones.
	var shared []int32
	for v := int64(0); v < g.N; v++ {
		shared = c.AdjInto(v, shared)
		fresh := c.AdjInto(v, nil)
		if len(shared) != len(fresh) {
			t.Fatalf("vertex %d: reused buffer len %d, fresh %d", v, len(shared), len(fresh))
		}
		for i := range shared {
			if shared[i] != fresh[i] {
				t.Fatalf("vertex %d neighbour %d differs under buffer reuse", v, i)
			}
		}
	}
}
