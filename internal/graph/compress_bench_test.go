package graph

import "testing"

// Neighbour-walk microbenchmarks: the raw cost of iterating every adjacency
// list through the Graph interface, flat (zero-copy slice views) versus
// compressed (varint-delta decode into a reused buffer).  The bytes/edge
// metric reports the host footprint each walk touches.

func benchmarkAdjWalk(b *testing.B, g Graph) {
	b.Helper()
	n := g.NumVertices()
	var adj []int32
	var sum int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for v := int64(0); v < n; v++ {
			adj = g.AdjInto(v, adj)
			for _, w := range adj {
				sum += int64(w)
			}
		}
	}
	b.StopTimer()
	if sum == 42 { // keep the walk from being optimised away
		b.Log(sum)
	}
	b.ReportMetric(float64(g.NumEdges()), "edges/walk")
	b.ReportMetric(BytesPerEdge(g), "B/edge")
}

func walkFixture(b *testing.B) *CSR {
	b.Helper()
	g, err := New(Config{Family: FamilyRMAT, Vertices: 1 << 16, AvgDegree: 8, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkAdjWalkFlat(b *testing.B) {
	benchmarkAdjWalk(b, walkFixture(b))
}

func BenchmarkAdjWalkCompressed(b *testing.B) {
	c, err := Compress(walkFixture(b))
	if err != nil {
		b.Fatal(err)
	}
	benchmarkAdjWalk(b, c)
}

func BenchmarkCompress(b *testing.B) {
	g := walkFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := Compress(g)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(BytesPerEdge(c), "B/edge")
		}
	}
}
