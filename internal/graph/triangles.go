package graph

import (
	"fmt"

	"cmpsched/internal/dag"
	"cmpsched/internal/taskgroup"
)

// Triangles builds the computation DAG of an oriented triangle count: each
// undirected triangle {u, v, w} with u < v < w is counted exactly once by
// intersecting the forward (greater-id) adjacency lists of u and v.  The
// vertex range is cut into tasks by estimated intersection work, a spawn
// task fans out to the counting tasks and a reduction task folds the
// per-task partial counts — a single wide fork-join phase, the shape that
// gives schedulers the most freedom (and the least temporal structure to
// exploit).
//
// A counting task streams its own vertices' adjacency lists sequentially but
// re-reads, for every forward edge (u, v), the offset entry and the forward
// adjacency lines of v — list-sized, degree-skewed gathers.
//
// The second return value is the exact triangle count, used by tests (a grid
// has none; random families have predictably many).
func Triangles(g Graph, costs Costs) (*dag.DAG, *taskgroup.Tree, int64, error) {
	c := costs.withDefaults()
	n := g.NumVertices()

	d := dag.New(fmt.Sprintf("triangles-%s", g.GraphName()))
	tree := taskgroup.New("triangles")

	spawn := d.AddComputeTask("triangles-spawn", c.SpawnInstrs)
	spawn.Site = "graph/triangles.go:spawn"
	tree.Own(tree.Root, spawn.ID)

	// fwdLoc(v) is the position of v's first forward (greater-id) neighbour
	// within its adjacency list; FirstEdge(v)+fwdLoc(v) is the absolute
	// index of the forward suffix in the simulated flat edge array.
	fwdLoc := make([]int64, n)
	var scan []int32
	for v := int64(0); v < n; v++ {
		scan = g.AdjInto(v, scan)
		k := int64(0)
		for k < int64(len(scan)) && int64(scan[k]) <= v {
			k++
		}
		fwdLoc[v] = k
	}
	fwdDeg := func(v int64) int64 { return g.Degree(v) - fwdLoc[v] }

	work := func(u int64) int64 {
		w := 1 + g.Degree(u)
		scan = g.AdjInto(u, scan)
		for _, x := range scan[fwdLoc[u]:] {
			w += fwdDeg(u) + fwdDeg(int64(x))
		}
		return w
	}
	group := tree.AddChild(tree.Root, "triangles-count", "graph/triangles.go:count", 0, 0)
	var total int64
	var groupBytes int64
	chunks := chunk(n, 4*c.EdgesPerTask, work)
	chunkIDs := make([]dag.TaskID, 0, len(chunks))
	tr := newTrace(c) // reused across counting tasks; see bfs.go
	var adjU, adjV []int32
	for ci, cr := range chunks {
		tr.reset()
		var count int64
		for u := cr[0]; u < cr[1]; u++ {
			tr.touch(offsetAddr(u), false, c.InstrsPerVertex)
			tr.touch(offsetAddr(u+1), false, 0)
			adjU = g.AdjInto(u, adjU)
			baseU := g.FirstEdge(u)
			tr.span(edgeAddr(baseU), int64(len(adjU))*edgeEntryBytes, false, c.InstrsPerEdge)
			for jl := fwdLoc[u]; jl < int64(len(adjU)); jl++ {
				v := int64(adjU[jl])
				tr.touch(offsetAddr(v), false, 0)
				tr.touch(offsetAddr(v+1), false, 0)
				adjV = g.AdjInto(v, adjV)
				baseV := g.FirstEdge(v)
				// Merge-intersect fwd(u) (past jl) with fwd(v): the walk
				// re-touches u's suffix interleaved with v's list.
				a, b := jl+1, fwdLoc[v]
				for a < int64(len(adjU)) && b < int64(len(adjV)) {
					tr.touch(edgeAddr(baseU+a), false, 0)
					tr.touch(edgeAddr(baseV+b), false, c.InstrsPerEdge)
					switch {
					case adjU[a] == adjV[b]:
						count++
						a++
						b++
					case adjU[a] < adjV[b]:
						a++
					default:
						b++
					}
				}
			}
		}
		tr.touch(accumAddr(int64(ci)), true, 4)
		t := d.AddTask(fmt.Sprintf("triangles[%d:%d)", cr[0], cr[1]), tr.gen(c.SpawnInstrs/4))
		t.Site = "graph/triangles.go:count"
		t.Param = float64(tr.bytes())
		groupBytes += tr.bytes()
		tree.Own(group, t.ID)
		d.MustEdge(spawn.ID, t.ID)
		chunkIDs = append(chunkIDs, t.ID)
		total += count
	}
	group.Param = float64(groupBytes)

	reduce := newTrace(c)
	reduce.span(accumAddr(0), int64(len(chunks))*vertexEntryBytes, false, 4)
	reduce.touch(accumAddr(int64(len(chunks))), true, 2)
	reduceTask := d.AddTask("triangles-reduce", reduce.gen(c.SpawnInstrs))
	reduceTask.Site = "graph/triangles.go:reduce"
	reduceTask.Param = float64(reduce.bytes())
	tree.Own(tree.Root, reduceTask.ID)
	for _, id := range chunkIDs {
		d.MustEdge(id, reduceTask.ID)
	}

	d2, t2, err := finish(d, tree, "triangles", c)
	return d2, t2, total, err
}
