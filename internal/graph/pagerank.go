package graph

import (
	"fmt"

	"cmpsched/internal/dag"
	"cmpsched/internal/taskgroup"
)

// PageRank builds the computation DAG of a pull-based PageRank power
// iteration: iterations sweeps over all vertices, each sweep cut into tasks
// of roughly Costs.EdgesPerTask edge traversals, with a reduction barrier
// (the dangling-mass/normalisation step) between sweeps.  Rank vectors
// alternate between two buffers by iteration parity.
//
// A task owns a contiguous vertex range: it streams the range's CSR offsets
// and edge lines sequentially but gathers the previous-iteration ranks and
// the offset (degree) entries of its neighbours — the scattered,
// graph-dependent part of the access pattern — and writes its own vertices'
// next ranks sequentially.
func PageRank(g Graph, iterations int64, costs Costs) (*dag.DAG, *taskgroup.Tree, error) {
	c := costs.withDefaults()
	if iterations <= 0 {
		iterations = 8
	}

	d := dag.New(fmt.Sprintf("pagerank-%s", g.GraphName()))
	tree := taskgroup.New("pagerank")

	init := newTrace(c)
	init.span(rankAddr(0, 0), g.NumVertices()*vertexEntryBytes, true, 1)
	initTask := d.AddTask("pagerank-init", init.gen(c.SpawnInstrs))
	initTask.Site = "graph/pagerank.go:init"
	initTask.Param = float64(init.bytes())
	tree.Own(tree.Root, initTask.ID)

	chunks := chunk(g.NumVertices(), c.EdgesPerTask, func(v int64) int64 { return 1 + g.Degree(v) })
	prevBarrier := initTask.ID
	// Reused across gather tasks; the parity addressing makes iterations i and
	// i+2 emit byte-identical chunk streams, which the interning store then
	// collapses to one arena each.
	tr := newTrace(c)
	var adj []int32
	for iter := int64(0); iter < iterations; iter++ {
		parity := int(iter) % 2
		group := tree.AddChild(tree.Root, fmt.Sprintf("pagerank-iter%d", iter), "graph/pagerank.go:iter", 0, int(iter))
		var groupBytes int64

		chunkIDs := make([]dag.TaskID, 0, len(chunks))
		for _, cr := range chunks {
			tr.reset()
			for u := cr[0]; u < cr[1]; u++ {
				tr.touch(offsetAddr(u), false, c.InstrsPerVertex)
				tr.touch(offsetAddr(u+1), false, 0)
				adj = g.AdjInto(u, adj)
				j0 := g.FirstEdge(u)
				for k, w := range adj {
					j := j0 + int64(k)
					v := int64(w)
					tr.touch(edgeAddr(j), false, c.InstrsPerEdge)
					// Gather rank(v)/degree(v) from the previous iteration.
					tr.touch(rankAddr(parity, v), false, 0)
					tr.touch(offsetAddr(v), false, 0)
				}
				tr.touch(rankAddr(1-parity, u), true, 2)
			}
			t := d.AddTask(fmt.Sprintf("pagerank-i%d[%d:%d)", iter, cr[0], cr[1]), tr.gen(c.SpawnInstrs/4))
			t.Site = "graph/pagerank.go:gather"
			t.Param = float64(tr.bytes())
			t.Level = int(iter)
			groupBytes += tr.bytes()
			tree.Own(group, t.ID)
			d.MustEdge(prevBarrier, t.ID)
			chunkIDs = append(chunkIDs, t.ID)
		}

		barrier := d.AddComputeTask(fmt.Sprintf("pagerank-reduce%d", iter), c.SpawnInstrs+g.NumVertices()/8)
		barrier.Site = "graph/pagerank.go:reduce"
		barrier.Level = int(iter)
		tree.Own(group, barrier.ID)
		for _, id := range chunkIDs {
			d.MustEdge(id, barrier.ID)
		}
		group.Param = float64(groupBytes)
		prevBarrier = barrier.ID
	}

	return finish(d, tree, "pagerank", c)
}
