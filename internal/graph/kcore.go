package graph

import (
	"fmt"

	"cmpsched/internal/dag"
	"cmpsched/internal/taskgroup"
)

// KCore builds the computation DAG of a bucketed peeling k-core
// decomposition (the Julienne/GBBS shape): stage k repeatedly extracts every
// live vertex whose induced degree has fallen to ≤ k, assigns it coreness k,
// and decrements its live neighbours — cascades within a stage run as
// sub-rounds with a barrier between them.  Peel tasks read the extracted
// frontier and the CSR offset/edge lines, then scatter read-modify-writes
// into the induced-degree vector (the irregular part) and write the state
// flags of the vertices they retire.
//
// The third return value is the coreness of every vertex, used by tests
// against a serial reference peeler.
func KCore(g Graph, costs Costs) (*dag.DAG, *taskgroup.Tree, []int64, error) {
	c := costs.withDefaults()
	n := g.NumVertices()

	d := dag.New(fmt.Sprintf("kcore-%s", g.GraphName()))
	tree := taskgroup.New("kcore")

	// Initialisation: compute the starting induced degrees, clear states.
	init := newTrace(c)
	init.span(offsetAddr(0), (n+1)*offsetEntryBytes, false, 1)
	init.span(degAddr(0), n*vertexEntryBytes, true, 1)
	init.span(stateAddr(0), n*vertexEntryBytes, true, 1)
	initTask := d.AddTask("kcore-init", init.gen(c.SpawnInstrs))
	initTask.Site = "graph/kcore.go:init"
	initTask.Param = float64(init.bytes())
	tree.Own(tree.Root, initTask.ID)
	prevBarrier := initTask.ID

	deg := make([]int64, n)
	for v := int64(0); v < n; v++ {
		deg[v] = g.Degree(v)
	}
	core := make([]int64, n)
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	remaining := n

	tr := newTrace(c)
	var adj []int32
	round := 0 // global sub-round counter, drives frontier parity
	var maxCore int64
	for k := int64(0); remaining > 0; k++ {
		for {
			// Extract the stage's current frontier: live vertices whose
			// induced degree has dropped to ≤ k, in ascending id order (the
			// deterministic order a parallel filter over the bucket yields).
			var frontier []int32
			for v := int64(0); v < n; v++ {
				if alive[v] && deg[v] <= k {
					frontier = append(frontier, int32(v))
				}
			}
			if len(frontier) == 0 {
				break
			}
			parity := round % 2
			group := tree.AddChild(tree.Root, fmt.Sprintf("kcore-k%d-r%d", k, round), "graph/kcore.go:peel", 0, round)
			var groupBytes int64
			nextSlot := int64(0)
			chunks := chunk(int64(len(frontier)), c.EdgesPerTask, func(i int64) int64 {
				return 1 + g.Degree(int64(frontier[i]))
			})
			chunkIDs := make([]dag.TaskID, 0, len(chunks))
			for _, cr := range chunks {
				tr.reset()
				for i := cr[0]; i < cr[1]; i++ {
					u := int64(frontier[i])
					alive[u] = false
					core[u] = k
					maxCore = k
					remaining--
					tr.touch(frontAddr(parity, i), false, c.InstrsPerVertex)
					tr.touch(stateAddr(u), true, 1) // retire u
					tr.touch(degAddr(u), true, 1)   // coreness lands in the degree slot
					tr.touch(offsetAddr(u), false, 0)
					tr.touch(offsetAddr(u+1), false, 0)
					adj = g.AdjInto(u, adj)
					j0 := g.FirstEdge(u)
					for kk, w32 := range adj {
						j := j0 + int64(kk)
						w := int64(w32)
						tr.touch(edgeAddr(j), false, c.InstrsPerEdge)
						tr.touch(stateAddr(w), false, 0)
						if alive[w] {
							wasAbove := deg[w] > k
							deg[w]--
							tr.touch(degAddr(w), true, 2)
							if wasAbove && deg[w] <= k {
								// w just fell into the bucket: it joins the
								// next sub-round's frontier.
								tr.touch(frontAddr(1-parity, nextSlot), true, 1)
								nextSlot++
							}
						}
					}
				}
				t := d.AddTask(fmt.Sprintf("kcore-k%d-r%d[%d:%d)", k, round, cr[0], cr[1]), tr.gen(c.SpawnInstrs/4))
				t.Site = "graph/kcore.go:peel"
				t.Param = float64(tr.bytes())
				t.Level = round
				groupBytes += tr.bytes()
				tree.Own(group, t.ID)
				d.MustEdge(prevBarrier, t.ID)
				chunkIDs = append(chunkIDs, t.ID)
			}
			barrier := d.AddComputeTask(fmt.Sprintf("kcore-sync-k%d-r%d", k, round), c.SpawnInstrs)
			barrier.Site = "graph/kcore.go:sync"
			barrier.Level = round
			tree.Own(group, barrier.ID)
			for _, id := range chunkIDs {
				d.MustEdge(id, barrier.ID)
			}
			group.Param = float64(groupBytes)
			prevBarrier = barrier.ID
			round++
		}
	}
	d.RecordMetric("kcore.rounds", int64(round))
	d.RecordMetric("kcore.max_core", maxCore)

	d2, t2, err := finish(d, tree, "kcore", c)
	return d2, t2, core, err
}
