package graph

import (
	"fmt"

	"cmpsched/internal/dag"
	"cmpsched/internal/prng"
	"cmpsched/internal/taskgroup"
)

// edgePrio returns the deterministic random priority of the undirected edge
// {u, v} under seed; lower is stronger.  It lives in a simulated per-edge
// array (the weight region, reused — matching and SSSP never share a DAG)
// but needs no host backing store.
func edgePrio(u, v int64, seed uint64, n int64) uint64 {
	lo, hi := u, v
	if lo > hi {
		lo, hi = hi, lo
	}
	return prng.Mix64(seed ^ 0xD1B54A32D192ED03 ^ uint64(lo)*uint64(n) ^ uint64(hi))
}

// MaximalMatching builds the computation DAG of a random-priority maximal
// matching (the GBBS handshake shape): every round, each unmatched vertex
// points at its strongest (lowest-priority) live incident edge, and edges
// picked from both endpoints match their pair; survivors with live
// neighbours pack into the next round's list.  Round tasks read the active
// list, the CSR offset/edge lines, the per-edge priority lines and the
// scattered match-vector entries of their neighbours, writing the entries
// they claim.
//
// The third return value is the matched partner of every vertex (-1 if
// unmatched), used by tests for the validity and maximality invariants.
func MaximalMatching(g Graph, seed uint64, costs Costs) (*dag.DAG, *taskgroup.Tree, []int64, error) {
	c := costs.withDefaults()
	n := g.NumVertices()

	d := dag.New(fmt.Sprintf("matching-%s", g.GraphName()))
	tree := taskgroup.New("matching")

	// Initialisation: clear the match vector, seed the active list.
	init := newTrace(c)
	init.span(matchAddr(0), n*vertexEntryBytes, true, 1)
	init.touch(frontAddr(0, 0), true, c.InstrsPerVertex)
	initTask := d.AddTask("matching-init", init.gen(c.SpawnInstrs))
	initTask.Site = "graph/matching.go:init"
	initTask.Param = float64(init.bytes())
	tree.Own(tree.Root, initTask.ID)
	prevBarrier := initTask.ID

	match := make([]int64, n)
	for i := range match {
		match[i] = -1
	}
	// The starting active list: vertices with at least one neighbour.
	active := make([]int32, 0, n)
	for v := int64(0); v < n; v++ {
		if g.Degree(v) > 0 {
			active = append(active, int32(v))
		}
	}

	tr := newTrace(c)
	var adj []int32
	for round := 0; len(active) > 0; round++ {
		d.RecordMetric("matching.rounds", int64(round)+1)
		parity := round % 2
		group := tree.AddChild(tree.Root, fmt.Sprintf("matching-round%d", round), "graph/matching.go:round", 0, round)
		var groupBytes int64

		// Jacobi semantics: every vertex picks its strongest live edge
		// against the match vector as it stood at the round start; mutual
		// picks match.  The globally strongest live edge is always mutual,
		// so every round makes progress.
		best := make(map[int64]int64, len(active))
		for _, u32 := range active {
			u := int64(u32)
			adj = g.AdjInto(u, adj)
			bestW, bestP := int64(-1), ^uint64(0)
			for _, w32 := range adj {
				w := int64(w32)
				if match[w] != -1 {
					continue
				}
				if p := edgePrio(u, w, seed, n); bestW == -1 || p < bestP || (p == bestP && w < bestW) {
					bestW, bestP = w, p
				}
			}
			if bestW != -1 {
				best[u] = bestW
			}
		}

		var next []int32
		nextSlot := int64(0)
		chunks := chunk(int64(len(active)), c.EdgesPerTask, func(i int64) int64 {
			return 1 + g.Degree(int64(active[i]))
		})
		chunkIDs := make([]dag.TaskID, 0, len(chunks))
		for _, cr := range chunks {
			tr.reset()
			for i := cr[0]; i < cr[1]; i++ {
				u := int64(active[i])
				tr.touch(frontAddr(parity, i), false, c.InstrsPerVertex)
				tr.touch(offsetAddr(u), false, 0)
				tr.touch(offsetAddr(u+1), false, 0)
				adj = g.AdjInto(u, adj)
				j0 := g.FirstEdge(u)
				for k, w32 := range adj {
					j := j0 + int64(k)
					w := int64(w32)
					tr.touch(edgeAddr(j), false, c.InstrsPerEdge)
					tr.touch(matchAddr(w), false, 0)
					if match[w] == -1 {
						tr.touch(weightAddr(j), false, 0) // the edge's priority
					}
				}
				if w, ok := best[u]; ok && best[w] == u {
					// A mutual pick: u claims its own match entry (its
					// partner symmetrically claims the other).
					tr.touch(matchAddr(u), true, 2)
				}
			}
			t := d.AddTask(fmt.Sprintf("matching-r%d[%d:%d)", round, cr[0], cr[1]), tr.gen(c.SpawnInstrs/4))
			t.Site = "graph/matching.go:handshake"
			t.Param = float64(tr.bytes())
			t.Level = round
			groupBytes += tr.bytes()
			tree.Own(group, t.ID)
			d.MustEdge(prevBarrier, t.ID)
			chunkIDs = append(chunkIDs, t.ID)
		}

		// Commit the round's mutual picks, then pack the survivors that
		// still have a live neighbour.
		for _, u32 := range active {
			u := int64(u32)
			if w, ok := best[u]; ok && best[w] == u && match[u] == -1 && match[w] == -1 {
				match[u], match[w] = w, u
			}
		}
		pack := newTrace(c)
		for _, u32 := range active {
			u := int64(u32)
			if match[u] != -1 {
				continue
			}
			live := false
			adj = g.AdjInto(u, adj)
			for _, w32 := range adj {
				if match[w32] == -1 && int64(w32) != u {
					live = true
					break
				}
			}
			if live {
				pack.touch(frontAddr(1-parity, nextSlot), true, 1)
				nextSlot++
				next = append(next, u32)
			}
		}
		barrier := d.AddTask(fmt.Sprintf("matching-pack%d", round), pack.gen(c.SpawnInstrs))
		barrier.Site = "graph/matching.go:pack"
		barrier.Param = float64(pack.bytes())
		barrier.Level = round
		tree.Own(group, barrier.ID)
		for _, id := range chunkIDs {
			d.MustEdge(id, barrier.ID)
		}
		group.Param = float64(groupBytes)
		prevBarrier = barrier.ID
		active = next
	}
	var matched int64
	for _, w := range match {
		if w != -1 {
			matched++
		}
	}
	d.RecordMetric("matching.matched_vertices", matched)

	d2, t2, err := finish(d, tree, "matching", c)
	return d2, t2, match, err
}
