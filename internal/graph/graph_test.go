package graph

import (
	"testing"

	"cmpsched/internal/refs"
)

func mustNew(t *testing.T, cfg Config) *CSR {
	t.Helper()
	g, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	return g
}

// checkCSR verifies structural invariants: monotone offsets, sorted
// deduplicated self-loop-free adjacency, symmetric edges.
func checkCSR(t *testing.T, g *CSR) {
	t.Helper()
	if int64(len(g.Offsets)) != g.N+1 {
		t.Fatalf("%s: offsets len %d, want %d", g.Name, len(g.Offsets), g.N+1)
	}
	if g.Offsets[g.N] != int64(len(g.Edges)) {
		t.Fatalf("%s: offsets[N]=%d, edges=%d", g.Name, g.Offsets[g.N], len(g.Edges))
	}
	has := func(u, v int64) bool {
		for _, w := range g.Adj(u) {
			if int64(w) == v {
				return true
			}
		}
		return false
	}
	for v := int64(0); v < g.N; v++ {
		if g.Offsets[v] > g.Offsets[v+1] {
			t.Fatalf("%s: offsets not monotone at %d", g.Name, v)
		}
		adj := g.Adj(v)
		for i, w := range adj {
			if int64(w) == v {
				t.Fatalf("%s: self loop at %d", g.Name, v)
			}
			if i > 0 && adj[i-1] >= w {
				t.Fatalf("%s: adjacency of %d not sorted/deduped: %v", g.Name, v, adj)
			}
			if !has(int64(w), v) {
				t.Fatalf("%s: edge %d->%d has no reverse", g.Name, v, w)
			}
		}
	}
}

func TestGeneratorsAreDeterministic(t *testing.T) {
	for _, family := range Families() {
		cfg := Config{Family: family, Vertices: 1 << 10, AvgDegree: 8, Seed: 7}
		a := mustNew(t, cfg)
		b := mustNew(t, cfg)
		checkCSR(t, a)
		if a.N != b.N || len(a.Edges) != len(b.Edges) {
			t.Fatalf("%s: rebuild differs in shape", family)
		}
		for i := range a.Edges {
			if a.Edges[i] != b.Edges[i] {
				t.Fatalf("%s: rebuild differs at edge %d", family, i)
			}
		}
	}
}

func TestUniformSeedChangesEdges(t *testing.T) {
	a := mustNew(t, Config{Vertices: 1 << 10, Seed: 1})
	b := mustNew(t, Config{Vertices: 1 << 10, Seed: 2})
	same := len(a.Edges) == len(b.Edges)
	if same {
		for i := range a.Edges {
			if a.Edges[i] != b.Edges[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatalf("seeds 1 and 2 produced identical graphs")
	}
}

func TestUniformHitsTargetDegree(t *testing.T) {
	g := mustNew(t, Config{Vertices: 1 << 12, AvgDegree: 8})
	checkCSR(t, g)
	avg := float64(g.NumEdges()) / float64(g.N)
	if avg < 6 || avg > 8.1 {
		t.Fatalf("uniform avg degree = %.2f, want near 8", avg)
	}
}

func TestGridShape(t *testing.T) {
	g := mustNew(t, Config{Family: FamilyGrid, Vertices: 64})
	checkCSR(t, g)
	if g.N != 64 {
		t.Fatalf("grid N = %d, want 64", g.N)
	}
	// 2 * (2 * 8 * 7) directed edge slots in an 8x8 lattice.
	if g.NumEdges() != 224 {
		t.Fatalf("grid edges = %d, want 224", g.NumEdges())
	}
	if d := g.Degree(0); d != 2 {
		t.Fatalf("corner degree = %d, want 2", d)
	}
	if d := g.Degree(9); d != 4 { // interior vertex (row 1, col 1)
		t.Fatalf("interior degree = %d, want 4", d)
	}
	// Vertices round down to a square.
	if g2 := mustNew(t, Config{Family: FamilyGrid, Vertices: 70}); g2.N != 64 {
		t.Fatalf("grid rounds to %d, want 64", g2.N)
	}
}

func TestRMATIsSkewed(t *testing.T) {
	g := mustNew(t, Config{Family: FamilyRMAT, Vertices: 1 << 12, AvgDegree: 8})
	checkCSR(t, g)
	if g.N != 1<<12 {
		t.Fatalf("rmat N = %d, want %d", g.N, 1<<12)
	}
	avg := float64(g.NumEdges()) / float64(g.N)
	if g.MaxDegree() < int64(6*avg) {
		t.Fatalf("rmat max degree %d not skewed vs avg %.1f", g.MaxDegree(), avg)
	}
}

func TestNewRejectsBadConfigs(t *testing.T) {
	if _, err := New(Config{Family: "torus"}); err == nil {
		t.Fatalf("unknown family accepted")
	}
	if _, err := New(Config{Vertices: 1}); err == nil {
		t.Fatalf("single-vertex graph accepted")
	}
	// The grid rounds down to a square, so below 2x2 it must refuse rather
	// than silently return a single-vertex lattice.
	if _, err := New(Config{Family: FamilyGrid, Vertices: 3}); err == nil {
		t.Fatalf("sub-2x2 grid accepted")
	}
	if g, err := New(Config{Family: FamilyGrid, Vertices: 4}); err != nil || g.N != 4 {
		t.Fatalf("2x2 grid: %v, %+v", err, g)
	}
	if _, err := New(Config{AvgDegree: -2}); err == nil {
		t.Fatalf("negative degree accepted")
	}
	// Vertex ids are int32: oversized counts must be rejected, not wrapped.
	if _, err := New(Config{Vertices: 1 << 32}); err == nil {
		t.Fatalf("int32-overflowing vertex count accepted")
	}
	if _, err := New(Config{Family: FamilyRMAT, Vertices: 1<<30 + 1}); err == nil {
		t.Fatalf("rmat vertex count that rounds past int32 accepted")
	}
}

func TestTraceDedupesConsecutiveLines(t *testing.T) {
	tr := newTrace(Costs{}.withDefaults())
	tr.touch(0, false, 5)
	tr.touch(64, false, 7)  // same line: collapses, instrs accumulate
	tr.touch(100, true, 1)  // same line again, upgrades to write
	tr.touch(128, false, 2) // next line
	tr.touch(0, false, 3)   // back to line 0: a new reference
	g := tr.gen(10)
	got := refs.Collect(g)
	want := []refs.Ref{
		{Addr: 0, Write: true, Instrs: 5},
		{Addr: 128, Write: false, Instrs: 7 + 1 + 2},
		{Addr: 0, Write: false, Instrs: 3},
	}
	if len(got) != len(want) {
		t.Fatalf("refs = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ref %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if g.Instrs() != 5+7+1+2+3+10 {
		t.Fatalf("Instrs = %d", g.Instrs())
	}
}

func TestTraceSpan(t *testing.T) {
	tr := newTrace(Costs{}.withDefaults())
	tr.span(256, 300, true, 2) // lines 2, 3, 4
	got := refs.Collect(tr.gen(0))
	if len(got) != 3 || got[0].Addr != 256 || got[2].Addr != 512 {
		t.Fatalf("span refs = %+v", got)
	}
	for _, r := range got {
		if !r.Write || r.Instrs != 2 {
			t.Fatalf("span ref %+v", r)
		}
	}
}

func TestChunkRespectsBudgetAndCoverage(t *testing.T) {
	weights := []int64{5, 5, 5, 50, 1, 1, 1, 1}
	chunks := chunk(int64(len(weights)), 10, func(i int64) int64 { return weights[i] })
	var covered int64
	prevEnd := int64(0)
	for _, c := range chunks {
		if c[0] != prevEnd || c[1] <= c[0] {
			t.Fatalf("chunks not contiguous: %v", chunks)
		}
		prevEnd = c[1]
		covered += c[1] - c[0]
	}
	if covered != int64(len(weights)) || prevEnd != int64(len(weights)) {
		t.Fatalf("chunks do not cover the range: %v", chunks)
	}
	// The oversized item 3 must still land in a chunk of its own tail.
	if len(chunks) < 3 {
		t.Fatalf("expected several chunks, got %v", chunks)
	}
	// Single chunk when the budget swallows everything.
	if one := chunk(4, 1<<30, func(int64) int64 { return 1 }); len(one) != 1 {
		t.Fatalf("huge budget: %v", one)
	}
	if none := chunk(0, 10, func(int64) int64 { return 1 }); len(none) != 0 {
		t.Fatalf("empty range: %v", none)
	}
}
