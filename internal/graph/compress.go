package graph

import (
	"encoding/binary"
	"fmt"
)

// Representation names returned by Graph.Repr and accepted by the workload
// layer's GraphShape.Representation.
const (
	ReprFlat       = "flat"       // CSR: int64 offsets + int32 edge array
	ReprCompressed = "compressed" // CompressedCSR: varint-delta byte codec
)

// Graph is the representation-independent view the kernels walk.  Both the
// flat CSR and the byte-compressed CompressedCSR implement it, and both
// expose the *same logical layout*: FirstEdge/Degree index into the flat
// edge array even when the bytes on the host are compressed.  Kernels
// reconstruct absolute edge indices as FirstEdge(v)+k while iterating the
// decoded adjacency, so the simulated address trace models the flat CSR
// arrays regardless of host representation — which is exactly what makes
// the flat-vs-compressed differential fingerprints byte-identical.
type Graph interface {
	// GraphName identifies the generated instance (same string for both
	// representations of one instance).
	GraphName() string
	// NumVertices returns the vertex count.
	NumVertices() int64
	// NumEdges returns the number of directed edge slots.
	NumEdges() int64
	// Degree returns the degree of v.
	Degree(v int64) int64
	// FirstEdge returns the logical index of v's first edge in the flat
	// edge array.
	FirstEdge(v int64) int64
	// AdjInto returns the sorted neighbour list of v.  The flat CSR returns
	// a zero-copy view into its edge array (buf is ignored); the compressed
	// form decodes into buf (grown as needed).  Callers keep the idiom
	// adj = g.AdjInto(v, adj) and must not retain adj across calls.
	AdjInto(v int64, buf []int32) []int32
	// SizeBytes returns the host memory footprint of the representation.
	SizeBytes() int64
	// Repr returns ReprFlat or ReprCompressed.
	Repr() string
}

// GraphName returns the instance name (Graph interface).
func (g *CSR) GraphName() string { return g.Name }

// NumVertices returns the vertex count (Graph interface).
func (g *CSR) NumVertices() int64 { return g.N }

// FirstEdge returns the index of v's first edge (Graph interface).
func (g *CSR) FirstEdge(v int64) int64 { return g.Offsets[v] }

// AdjInto returns v's neighbour list as a zero-copy view into Edges; buf is
// ignored (Graph interface).
func (g *CSR) AdjInto(v int64, _ []int32) []int32 { return g.Adj(v) }

// SizeBytes returns the flat representation's host footprint (Graph
// interface).
func (g *CSR) SizeBytes() int64 {
	return int64(len(g.Offsets))*8 + int64(len(g.Edges))*4
}

// Repr returns ReprFlat (Graph interface).
func (g *CSR) Repr() string { return ReprFlat }

// CompressedCSR is the Ligra+-style byte-compressed adjacency structure:
// each vertex's sorted neighbour list is stored as varint deltas — the first
// neighbour as a zigzag delta from the source vertex id, each subsequent
// neighbour as (next − prev − 1) — with a per-vertex byte offset for O(1)
// random access and a logical (flat) edge offset so kernels can address the
// simulated flat edge array.  Undirected deg-8 RMAT compresses to roughly a
// third of the flat bytes/edge; see ARCHITECTURE.md.
type CompressedCSR struct {
	name    string
	n       int64
	offsets []int32  // logical flat-edge offsets, n+1 entries
	byteOff []uint32 // byte offsets into data, n+1 entries
	data    []byte   // varint-delta encoded neighbour lists
}

// zigzag maps a signed delta to an unsigned varint payload.
func zigzag(d int64) uint64 { return uint64((d << 1) ^ (d >> 63)) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Compress encodes g into the byte-compressed representation.  It fails if
// the edge count overflows the int32 logical-offset table or the byte stream
// overflows the uint32 byte-offset table, and verifies every vertex's list
// round-trips through the decoder before returning.
func Compress(g *CSR) (*CompressedCSR, error) {
	if int64(len(g.Edges)) > 1<<31-1 {
		return nil, fmt.Errorf("graph: compress: %d edges overflow the int32 offset table", len(g.Edges))
	}
	c := &CompressedCSR{
		name:    g.Name,
		n:       g.N,
		offsets: make([]int32, g.N+1),
		byteOff: make([]uint32, g.N+1),
		// At deg-8 the deltas average under 3 bytes; reserve half the flat
		// edge bytes and let append grow the rest.
		data: make([]byte, 0, len(g.Edges)*2),
	}
	for v := int64(0); v < g.N; v++ {
		adj := g.Adj(v)
		c.offsets[v] = int32(g.Offsets[v])
		c.byteOff[v] = uint32(len(c.data))
		if len(adj) > 0 {
			c.data = binary.AppendUvarint(c.data, zigzag(int64(adj[0])-v))
			prev := int64(adj[0])
			for _, w := range adj[1:] {
				c.data = binary.AppendUvarint(c.data, uint64(int64(w)-prev-1))
				prev = int64(w)
			}
		}
		if int64(len(c.data)) > 1<<32-1 {
			return nil, fmt.Errorf("graph: compress: byte stream overflows the uint32 offset table at vertex %d", v)
		}
	}
	c.offsets[g.N] = int32(g.Offsets[g.N])
	c.byteOff[g.N] = uint32(len(c.data))
	c.data = c.data[:len(c.data):len(c.data)]
	// Verify the roundtrip once at build time so AdjInto can trust the
	// stream unconditionally on the hot path.
	var buf []int32
	for v := int64(0); v < g.N; v++ {
		buf = c.AdjInto(v, buf)
		want := g.Adj(v)
		if len(buf) != len(want) {
			return nil, fmt.Errorf("graph: compress: vertex %d decodes %d neighbours, want %d", v, len(buf), len(want))
		}
		for i := range buf {
			if buf[i] != want[i] {
				return nil, fmt.Errorf("graph: compress: vertex %d neighbour %d decodes to %d, want %d", v, i, buf[i], want[i])
			}
		}
	}
	return c, nil
}

// GraphName returns the instance name — identical to the flat CSR it was
// compressed from (Graph interface).
func (c *CompressedCSR) GraphName() string { return c.name }

// NumVertices returns the vertex count (Graph interface).
func (c *CompressedCSR) NumVertices() int64 { return c.n }

// NumEdges returns the number of directed edge slots (Graph interface).
func (c *CompressedCSR) NumEdges() int64 { return int64(c.offsets[c.n]) }

// Degree returns the degree of v (Graph interface).
func (c *CompressedCSR) Degree(v int64) int64 { return int64(c.offsets[v+1] - c.offsets[v]) }

// FirstEdge returns the logical flat-edge index of v's first edge (Graph
// interface).
func (c *CompressedCSR) FirstEdge(v int64) int64 { return int64(c.offsets[v]) }

// AdjInto decodes v's neighbour list into buf (grown as needed) and returns
// it.  The stream was verified at Compress time, so a decode failure here is
// internal corruption and panics.
func (c *CompressedCSR) AdjInto(v int64, buf []int32) []int32 {
	out, _, err := DecodeAdjInto(buf[:0], v, c.n, c.Degree(v), c.data[c.byteOff[v]:c.byteOff[v+1]])
	if err != nil {
		panic(fmt.Sprintf("graph: compressed stream corrupt at vertex %d: %v", v, err))
	}
	return out
}

// SizeBytes returns the compressed representation's host footprint (Graph
// interface).
func (c *CompressedCSR) SizeBytes() int64 {
	return int64(len(c.offsets))*4 + int64(len(c.byteOff))*4 + int64(len(c.data))
}

// Repr returns ReprCompressed (Graph interface).
func (c *CompressedCSR) Repr() string { return ReprCompressed }

// BytesPerEdge returns the host bytes per directed edge slot of any
// representation (offset tables included), the headline compression metric.
func BytesPerEdge(g Graph) float64 {
	if g.NumEdges() == 0 {
		return 0
	}
	return float64(g.SizeBytes()) / float64(g.NumEdges())
}

// DecodeAdjInto decodes deg varint-delta neighbours of source from data,
// appending them to dst.  It returns the extended slice and the number of
// bytes consumed.  Corrupt or truncated input returns an error — the decoder
// never panics and never reads past len(data):
//   - every varint must terminate within the input (and within 10 bytes),
//   - every decoded neighbour must lie in [0, n),
//   - neighbours are strictly increasing by construction (deltas are
//     non-negative), so overflow past n−1 is the only monotonicity failure.
func DecodeAdjInto(dst []int32, source, n, deg int64, data []byte) ([]int32, int, error) {
	if deg < 0 || n <= 0 {
		return dst, 0, fmt.Errorf("graph: decode: invalid shape deg=%d n=%d", deg, n)
	}
	pos := 0
	prev := int64(0)
	for k := int64(0); k < deg; k++ {
		u, sz := binary.Uvarint(data[pos:])
		if sz <= 0 {
			return dst, pos, fmt.Errorf("graph: decode: truncated or overlong varint for neighbour %d of %d at byte %d", k, deg, pos)
		}
		pos += sz
		var v int64
		if k == 0 {
			v = source + unzigzag(u)
		} else {
			d := int64(u)
			if d < 0 { // u overflowed int64
				return dst, pos, fmt.Errorf("graph: decode: delta overflow for neighbour %d", k)
			}
			v = prev + d + 1
		}
		if v < 0 || v >= n {
			return dst, pos, fmt.Errorf("graph: decode: neighbour %d decodes to %d, outside [0, %d)", k, v, n)
		}
		dst = append(dst, int32(v))
		prev = v
	}
	return dst, pos, nil
}
