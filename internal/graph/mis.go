package graph

import (
	"fmt"

	"cmpsched/internal/dag"
	"cmpsched/internal/prng"
	"cmpsched/internal/taskgroup"
)

// misPrio returns the deterministic random priority of vertex v under seed.
// Ties are broken by vertex id, so priorities form a strict total order.
func misPrio(seed uint64, v int64) uint64 {
	return prng.Mix64(seed ^ uint64(v)*0x9E3779B97F4A7C15)
}

// misBeats reports whether u's priority beats w's.
func misBeats(seed uint64, u, w int64) bool {
	pu, pw := misPrio(seed, u), misPrio(seed, w)
	return pu > pw || (pu == pw && u > w)
}

// MIS builds the computation DAG of a random-priority maximal-independent-
// set computation (the Blelloch–Fineman–Shun rootset shape): every round,
// each undecided vertex compares its hashed priority against its undecided
// neighbours'; local maxima enter the set and knock their neighbours out,
// and the survivors are packed into the next round's list.  Round tasks read
// the active list, the CSR offset/edge lines and the scattered priority and
// state lines of their neighbours, writing the state flags they decide.
//
// The third return value reports set membership per vertex, used by tests
// for the independence and maximality invariants.
func MIS(g Graph, seed uint64, costs Costs) (*dag.DAG, *taskgroup.Tree, []bool, error) {
	c := costs.withDefaults()
	n := g.NumVertices()

	d := dag.New(fmt.Sprintf("mis-%s", g.GraphName()))
	tree := taskgroup.New("mis")

	// Initialisation: draw the priorities, clear states, seed the list.
	init := newTrace(c)
	init.span(prioAddr(0), n*vertexEntryBytes, true, 1)
	init.span(stateAddr(0), n*vertexEntryBytes, true, 1)
	init.touch(frontAddr(0, 0), true, c.InstrsPerVertex)
	initTask := d.AddTask("mis-init", init.gen(c.SpawnInstrs))
	initTask.Site = "graph/mis.go:init"
	initTask.Param = float64(init.bytes())
	tree.Own(tree.Root, initTask.ID)
	prevBarrier := initTask.ID

	const (
		undecided = iota
		inSet
		out
	)
	state := make([]int8, n)
	inMIS := make([]bool, n)
	active := make([]int32, 0, n)
	for v := int64(0); v < n; v++ {
		active = append(active, int32(v))
	}

	tr := newTrace(c)
	var adj []int32
	for round := 0; len(active) > 0; round++ {
		d.RecordMetric("mis.rounds", int64(round)+1)
		parity := round % 2
		group := tree.AddChild(tree.Root, fmt.Sprintf("mis-round%d", round), "graph/mis.go:round", 0, round)
		var groupBytes int64

		// Jacobi semantics: winners are decided against the states as they
		// stood at the round start, so the round's tasks commute.  A winner
		// is an undecided local maximum among its undecided neighbours —
		// two adjacent vertices can never both win.
		winner := make([]bool, len(active))
		for i, u32 := range active {
			u := int64(u32)
			win := true
			adj = g.AdjInto(u, adj)
			for _, w32 := range adj {
				w := int64(w32)
				if state[w] == undecided && misBeats(seed, w, u) {
					win = false
					break
				}
			}
			winner[i] = win
		}

		var next []int32
		nextSlot := int64(0)
		chunks := chunk(int64(len(active)), c.EdgesPerTask, func(i int64) int64 {
			return 1 + g.Degree(int64(active[i]))
		})
		chunkIDs := make([]dag.TaskID, 0, len(chunks))
		for _, cr := range chunks {
			tr.reset()
			for i := cr[0]; i < cr[1]; i++ {
				u := int64(active[i])
				tr.touch(frontAddr(parity, i), false, c.InstrsPerVertex)
				tr.touch(prioAddr(u), false, 0)
				tr.touch(offsetAddr(u), false, 0)
				tr.touch(offsetAddr(u+1), false, 0)
				adj = g.AdjInto(u, adj)
				j0 := g.FirstEdge(u)
				for k, w32 := range adj {
					j := j0 + int64(k)
					w := int64(w32)
					tr.touch(edgeAddr(j), false, c.InstrsPerEdge)
					tr.touch(stateAddr(w), false, 0)
					if state[w] == undecided {
						tr.touch(prioAddr(w), false, 0)
					}
				}
				if winner[i] {
					tr.touch(stateAddr(u), true, 2)
					// Knock the undecided neighbours out.
					for _, w32 := range adj {
						if state[int64(w32)] == undecided && int64(w32) != u {
							tr.touch(stateAddr(int64(w32)), true, 1)
						}
					}
				}
			}
			t := d.AddTask(fmt.Sprintf("mis-r%d[%d:%d)", round, cr[0], cr[1]), tr.gen(c.SpawnInstrs/4))
			t.Site = "graph/mis.go:decide"
			t.Param = float64(tr.bytes())
			t.Level = round
			groupBytes += tr.bytes()
			tree.Own(group, t.ID)
			d.MustEdge(prevBarrier, t.ID)
			chunkIDs = append(chunkIDs, t.ID)
		}

		// Commit the round on the host, then emit the survivor pack writes
		// as part of the sync barrier's trace.
		for i, u32 := range active {
			if winner[i] {
				state[u32] = inSet
				inMIS[u32] = true
			}
		}
		for _, u32 := range active {
			if state[u32] != inSet {
				continue
			}
			u := int64(u32)
			adj = g.AdjInto(u, adj)
			for _, w32 := range adj {
				if state[w32] == undecided {
					state[w32] = out
				}
			}
		}
		pack := newTrace(c)
		for _, u32 := range active {
			if state[u32] == undecided {
				pack.touch(frontAddr(1-parity, nextSlot), true, 1)
				nextSlot++
				next = append(next, u32)
			}
		}
		barrier := d.AddTask(fmt.Sprintf("mis-pack%d", round), pack.gen(c.SpawnInstrs))
		barrier.Site = "graph/mis.go:pack"
		barrier.Param = float64(pack.bytes())
		barrier.Level = round
		tree.Own(group, barrier.ID)
		for _, id := range chunkIDs {
			d.MustEdge(id, barrier.ID)
		}
		group.Param = float64(groupBytes)
		prevBarrier = barrier.ID
		active = next
	}

	d2, t2, err := finish(d, tree, "mis", c)
	return d2, t2, inMIS, err
}
