// Package graph is the irregular-workload subsystem: deterministic seeded
// graph generators materialised into a compact CSR representation, plus
// DAG-emitting parallel graph kernels (level-synchronous BFS, round-based
// Bellman-Ford SSSP, PageRank power iteration and triangle counting).
//
// The paper evaluates constructive cache sharing on regular
// divide-and-conquer and numeric kernels; graph traversals are the canonical
// *data-dependent* scenario family: which memory a task touches is decided by
// the adjacency structure, not by the recursion shape.  Each kernel walks the
// real graph on the host to discover the data-dependent schedule (frontiers,
// relaxation rounds), then emits a computation DAG whose tasks carry
// refs.Gen memory-reference streams over the simulated CSR arrays (offsets,
// edges, weights, frontier, distance/rank vectors).  The existing schedulers,
// cache topologies and the CMP simulator consume those DAGs unmodified.
package graph

import (
	"fmt"
	"sort"

	"cmpsched/internal/imath"
	"cmpsched/internal/prng"
)

// Family names accepted by Config.Family.
const (
	FamilyUniform = "uniform" // Erdős–Rényi-style uniform random edges
	FamilyGrid    = "grid"    // 2D 4-neighbour lattice (regular baseline)
	FamilyRMAT    = "rmat"    // RMAT/power-law (skewed degrees)
)

// Families lists the generator families, sorted.
func Families() []string { return []string{FamilyGrid, FamilyRMAT, FamilyUniform} }

// Config parameterises a graph generator.  The same Config always produces
// the identical CSR, on every platform: generation is seeded splitmix64.
type Config struct {
	// Family is one of FamilyUniform, FamilyGrid, FamilyRMAT (default
	// FamilyUniform).
	Family string
	// Vertices is the number of vertices (default 1<<15).  The grid family
	// rounds down to a square; RMAT rounds up to a power of two.
	Vertices int64
	// AvgDegree is the target average degree for the random families
	// (default 8; the grid's degree is fixed at 4).
	AvgDegree int64
	// Seed selects the pseudo-random edge set (default 1).
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Family == "" {
		c.Family = FamilyUniform
	}
	if c.Vertices == 0 {
		c.Vertices = 1 << 15
	}
	if c.AvgDegree == 0 {
		c.AvgDegree = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// CSR is a compact adjacency structure: the neighbours of vertex v are
// Edges[Offsets[v]:Offsets[v+1]], sorted ascending.  Graphs are undirected
// and stored symmetrically, with self loops and duplicate edges removed.
type CSR struct {
	// Name identifies the generated instance, e.g. "uniform-n32768-d8-s1".
	Name string
	// N is the number of vertices.
	N int64
	// Offsets has N+1 entries; Offsets[N] == len(Edges).
	Offsets []int64
	// Edges holds the concatenated adjacency lists.
	Edges []int32
}

// NumEdges returns the number of directed edge slots (twice the undirected
// edge count).
func (g *CSR) NumEdges() int64 { return int64(len(g.Edges)) }

// Degree returns the degree of v.
func (g *CSR) Degree(v int64) int64 { return g.Offsets[v+1] - g.Offsets[v] }

// Adj returns the sorted neighbour list of v (a view into Edges).
func (g *CSR) Adj(v int64) []int32 { return g.Edges[g.Offsets[v]:g.Offsets[v+1]] }

// MaxDegree returns the largest vertex degree.
func (g *CSR) MaxDegree() int64 {
	var m int64
	for v := int64(0); v < g.N; v++ {
		m = imath.Max(m, g.Degree(v))
	}
	return m
}

// New generates the graph described by cfg.
func New(cfg Config) (*CSR, error) {
	cfg = cfg.withDefaults()
	if cfg.Vertices < 2 {
		return nil, fmt.Errorf("graph: need at least 2 vertices, got %d", cfg.Vertices)
	}
	// Vertex ids are stored as int32 (CSR.Edges and the generator pair
	// lists); larger counts would wrap negative.  RMAT additionally rounds
	// the count up to a power of two, so bound it a doubling earlier.
	if cfg.Vertices > 1<<31-1 || (cfg.Family == FamilyRMAT && cfg.Vertices > 1<<30) {
		return nil, fmt.Errorf("graph: %d vertices exceed the int32 id space", cfg.Vertices)
	}
	if cfg.Family == FamilyGrid && cfg.Vertices < 4 {
		// The lattice rounds down to a square; below 2x2 it would collapse
		// to a single vertex, silently violating the check above.
		return nil, fmt.Errorf("graph: grid family needs at least 4 vertices (a 2x2 lattice), got %d", cfg.Vertices)
	}
	if cfg.AvgDegree < 1 {
		return nil, fmt.Errorf("graph: non-positive average degree %d", cfg.AvgDegree)
	}
	switch cfg.Family {
	case FamilyUniform:
		return uniform(cfg), nil
	case FamilyGrid:
		return grid2D(cfg), nil
	case FamilyRMAT:
		return rmat(cfg), nil
	default:
		return nil, fmt.Errorf("graph: unknown family %q (want one of %v)", cfg.Family, Families())
	}
}

// intn returns a uniform value in [0, n) drawn from r; modulo reduction is
// fine at graph sizes. n must be > 0.
func intn(r *prng.SplitMix64, n int64) int64 { return int64(r.Next() % uint64(n)) }

// uniform draws Vertices*AvgDegree/2 endpoint pairs uniformly at random.
func uniform(cfg Config) *CSR {
	n := cfg.Vertices
	r := &prng.SplitMix64{State: cfg.Seed}
	attempts := n * cfg.AvgDegree / 2
	pairs := make([][2]int32, 0, attempts)
	for i := int64(0); i < attempts; i++ {
		u, v := intn(r, n), intn(r, n)
		if u != v {
			pairs = append(pairs, [2]int32{int32(u), int32(v)})
		}
	}
	g := fromPairs(n, pairs)
	g.Name = fmt.Sprintf("uniform-n%d-d%d-s%d", n, cfg.AvgDegree, cfg.Seed)
	return g
}

// grid2D builds a rows x cols 4-neighbour lattice, rows = cols =
// floor(sqrt(Vertices)): the regular, high-locality baseline the irregular
// families are contrasted against.
func grid2D(cfg Config) *CSR {
	side := int64(1)
	for (side+1)*(side+1) <= cfg.Vertices {
		side++
	}
	n := side * side
	pairs := make([][2]int32, 0, 2*n)
	for row := int64(0); row < side; row++ {
		for col := int64(0); col < side; col++ {
			v := row*side + col
			if col+1 < side {
				pairs = append(pairs, [2]int32{int32(v), int32(v + 1)})
			}
			if row+1 < side {
				pairs = append(pairs, [2]int32{int32(v), int32(v + side)})
			}
		}
	}
	g := fromPairs(n, pairs)
	g.Name = fmt.Sprintf("grid-%dx%d", side, side)
	return g
}

// rmat draws edges by recursive quadrant descent with the Graph500
// probabilities (a, b, c, d) = (0.57, 0.19, 0.19, 0.05), yielding the
// power-law degree distribution that makes graph working sets skewed.
func rmat(cfg Config) *CSR {
	scale := imath.Log2Ceil(cfg.Vertices)
	if scale < 1 {
		scale = 1
	}
	n := int64(1) << scale
	r := &prng.SplitMix64{State: cfg.Seed}
	attempts := n * cfg.AvgDegree / 2
	pairs := make([][2]int32, 0, attempts)
	for i := int64(0); i < attempts; i++ {
		var u, v int64
		for bit := int64(0); bit < scale; bit++ {
			// Quadrant thresholds over a 0..99 draw: a=57, b=19, c=19, d=5.
			switch q := intn(r, 100); {
			case q < 57:
			case q < 76:
				v |= 1 << bit
			case q < 95:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		if u != v {
			pairs = append(pairs, [2]int32{int32(u), int32(v)})
		}
	}
	g := fromPairs(n, pairs)
	g.Name = fmt.Sprintf("rmat-n%d-d%d-s%d", n, cfg.AvgDegree, cfg.Seed)
	return g
}

// fromPairs symmetrises, deduplicates and sorts an endpoint-pair list into a
// CSR.
func fromPairs(n int64, pairs [][2]int32) *CSR {
	deg := make([]int64, n)
	for _, p := range pairs {
		deg[p[0]]++
		deg[p[1]]++
	}
	offsets := make([]int64, n+1)
	for v := int64(0); v < n; v++ {
		offsets[v+1] = offsets[v] + deg[v]
	}
	edges := make([]int32, offsets[n])
	fill := make([]int64, n)
	copy(fill, offsets[:n])
	for _, p := range pairs {
		edges[fill[p[0]]] = p[1]
		fill[p[0]]++
		edges[fill[p[1]]] = p[0]
		fill[p[1]]++
	}
	// Sort each adjacency list and drop duplicate neighbours in place.
	out := edges[:0]
	newOffsets := make([]int64, n+1)
	for v := int64(0); v < n; v++ {
		adj := edges[offsets[v]:offsets[v+1]]
		sort.Slice(adj, func(i, j int) bool { return adj[i] < adj[j] })
		newOffsets[v] = int64(len(out))
		for i, w := range adj {
			if i > 0 && w == adj[i-1] {
				continue
			}
			out = append(out, w)
		}
	}
	newOffsets[n] = int64(len(out))
	return &CSR{N: n, Offsets: newOffsets, Edges: out[:len(out):len(out)]}
}
