package graph

import (
	"fmt"

	"cmpsched/internal/dag"
	"cmpsched/internal/prng"
	"cmpsched/internal/taskgroup"
)

// WeightOf returns the deterministic weight of the undirected edge {u, v}
// under seed: 1 + hash(min, max, seed) mod maxWeight.  Weights live in a
// simulated per-edge array (the kernels touch its lines) but need no backing
// store on the host.
func WeightOf(u, v int64, seed uint64, maxWeight int64) int64 {
	lo, hi := u, v
	if lo > hi {
		lo, hi = hi, lo
	}
	return 1 + int64(prng.Mix64(seed^uint64(lo)<<32^uint64(hi))%uint64(maxWeight))
}

// BellmanFord builds the computation DAG of a round-based single-source
// shortest-paths computation: the frontier (Jacobi) variant of Bellman-Ford
// in which every round relaxes, in parallel, the out-edges of the vertices
// whose distance improved in the previous round, with a barrier between
// rounds.  maxRounds caps the number of rounds (0 means run to convergence);
// maxWeight bounds the per-edge weights drawn from the graph seed.
//
// Tasks read the active list, the CSR offsets/edges, the parallel weight
// array, and the scattered distance slots of their neighbours, writing the
// slots they improve plus the next active list.
func BellmanFord(g Graph, source int64, seed uint64, maxWeight, maxRounds int64, costs Costs) (*dag.DAG, *taskgroup.Tree, error) {
	c := costs.withDefaults()
	if err := checkSource(g, source); err != nil {
		return nil, nil, fmt.Errorf("graph: sssp: %w", err)
	}
	if maxWeight <= 0 {
		maxWeight = 16
	}

	const inf = int64(1) << 62
	dist := make([]int64, g.NumVertices())
	for i := range dist {
		dist[i] = inf
	}
	dist[source] = 0

	d := dag.New(fmt.Sprintf("sssp-%s", g.GraphName()))
	tree := taskgroup.New("sssp")

	init := newTrace(c)
	init.span(distAddr(0), g.NumVertices()*vertexEntryBytes, true, 1)
	init.touch(frontAddr(0, 0), true, c.InstrsPerVertex)
	initTask := d.AddTask("sssp-init", init.gen(c.SpawnInstrs))
	initTask.Site = "graph/sssp.go:init"
	initTask.Param = float64(init.bytes())
	tree.Own(tree.Root, initTask.ID)

	prevBarrier := initTask.ID
	tr := newTrace(c) // reused across relax tasks; see bfs.go
	var adj []int32
	active := []int32{int32(source)}
	for round := 0; len(active) > 0 && (maxRounds == 0 || int64(round) < maxRounds); round++ {
		d.RecordMetric(fmt.Sprintf("sssp.active.round_%02d.vertices", round), int64(len(active)))
		d.RecordMetric("sssp.rounds", int64(round)+1)
		parity := round % 2
		group := tree.AddChild(tree.Root, fmt.Sprintf("sssp-round%d", round), "graph/sssp.go:round", 0, round)
		var groupBytes int64

		// Jacobi semantics: every relaxation in this round reads the
		// distances as they stood at the end of the previous round, so the
		// round's tasks are order-independent (they can run in parallel).
		// newDist collects the round's improvements; next collects the
		// improved vertices in the order their next-frontier slots are
		// claimed below, so the host's next active list matches the
		// modelled slot writes exactly.
		newDist := make(map[int64]int64)
		var next []int32
		nextSlot := int64(0)
		chunks := chunk(int64(len(active)), c.EdgesPerTask, func(i int64) int64 {
			return 1 + g.Degree(int64(active[i]))
		})
		chunkIDs := make([]dag.TaskID, 0, len(chunks))
		for _, cr := range chunks {
			tr.reset()
			for i := cr[0]; i < cr[1]; i++ {
				u := int64(active[i])
				tr.touch(frontAddr(parity, i), false, c.InstrsPerVertex)
				tr.touch(offsetAddr(u), false, 0)
				tr.touch(offsetAddr(u+1), false, 0)
				tr.touch(distAddr(u), false, 0)
				adj = g.AdjInto(u, adj)
				j0 := g.FirstEdge(u)
				for k, w := range adj {
					j := j0 + int64(k)
					v := int64(w)
					tr.touch(edgeAddr(j), false, c.InstrsPerEdge)
					tr.touch(weightAddr(j), false, 0)
					tr.touch(distAddr(v), false, 0)
					cand := dist[u] + WeightOf(u, v, seed, maxWeight)
					best, improvedBefore := newDist[v]
					if cand < dist[v] && (!improvedBefore || cand < best) {
						if !improvedBefore {
							tr.touch(frontAddr(1-parity, nextSlot), true, 1)
							nextSlot++
							next = append(next, int32(v))
						}
						newDist[v] = cand
						tr.touch(distAddr(v), true, 2)
					}
				}
			}
			t := d.AddTask(fmt.Sprintf("sssp-r%d[%d:%d)", round, cr[0], cr[1]), tr.gen(c.SpawnInstrs/4))
			t.Site = "graph/sssp.go:relax"
			t.Param = float64(tr.bytes())
			t.Level = round
			groupBytes += tr.bytes()
			tree.Own(group, t.ID)
			d.MustEdge(prevBarrier, t.ID)
			chunkIDs = append(chunkIDs, t.ID)
		}

		barrier := d.AddComputeTask(fmt.Sprintf("sssp-sync%d", round), c.SpawnInstrs)
		barrier.Site = "graph/sssp.go:sync"
		barrier.Level = round
		tree.Own(group, barrier.ID)
		for _, id := range chunkIDs {
			d.MustEdge(id, barrier.ID)
		}
		group.Param = float64(groupBytes)
		prevBarrier = barrier.ID

		// Commit the round.
		for v, dv := range newDist {
			dist[v] = dv
		}
		active = next
	}

	return finish(d, tree, "sssp", c)
}
