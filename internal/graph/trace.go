package graph

import (
	"cmpsched/internal/imath"
	"cmpsched/internal/refs"
)

// The simulated address-space layout of the kernel data structures.  Bases
// are spaced far apart so regions never alias, and sit above the workload
// package's bases (0x1..0xC_0000_0000).
const (
	baseOffsets uint64 = 0x20_0000_0000 // CSR offsets array, 8 B entries
	baseEdges   uint64 = 0x21_0000_0000 // CSR edge array, 4 B entries
	baseWeights uint64 = 0x22_0000_0000 // per-edge weights, 8 B entries
	baseFrontA  uint64 = 0x23_0000_0000 // frontier / active list, even levels
	baseFrontB  uint64 = 0x24_0000_0000 // frontier / active list, odd levels
	baseDist    uint64 = 0x25_0000_0000 // distance vector, 8 B entries
	baseRankA   uint64 = 0x26_0000_0000 // rank vector, even iterations
	baseRankB   uint64 = 0x27_0000_0000 // rank vector, odd iterations
	baseAccum   uint64 = 0x28_0000_0000 // per-task partial results
	baseComp    uint64 = 0x29_0000_0000 // final component labels, 8 B entries
	baseDeg     uint64 = 0x2A_0000_0000 // induced degrees / core numbers, 8 B
	basePrio    uint64 = 0x2B_0000_0000 // per-vertex priorities / LDD shifts
	baseState   uint64 = 0x2C_0000_0000 // per-vertex state flags, 8 B entries
	baseMatch   uint64 = 0x2D_0000_0000 // matched-partner vector, 8 B entries
	baseCOffA   uint64 = 0x2E_0000_0000 // contracted CSR offsets, even levels
	baseCOffB   uint64 = 0x2F_0000_0000 // contracted CSR offsets, odd levels
	baseCEdgeA  uint64 = 0x30_0000_0000 // contracted CSR edges, even levels
	baseCEdgeB  uint64 = 0x31_0000_0000 // contracted CSR edges, odd levels
	baseLabel   uint64 = 0x32_0000_0000 // per-level cluster labels, 8 B
)

const (
	offsetEntryBytes = 8
	edgeEntryBytes   = 4
	weightEntryBytes = 8
	vertexEntryBytes = 8 // distance / rank / frontier entries
)

func offsetAddr(v int64) uint64 { return baseOffsets + uint64(v)*offsetEntryBytes }
func edgeAddr(i int64) uint64   { return baseEdges + uint64(i)*edgeEntryBytes }
func weightAddr(i int64) uint64 { return baseWeights + uint64(i)*weightEntryBytes }
func distAddr(v int64) uint64   { return baseDist + uint64(v)*vertexEntryBytes }
func accumAddr(t int64) uint64  { return baseAccum + uint64(t)*vertexEntryBytes }
func frontBase(parity int) uint64 {
	if parity%2 == 0 {
		return baseFrontA
	}
	return baseFrontB
}
func frontAddr(parity int, slot int64) uint64 {
	return frontBase(parity) + uint64(slot)*vertexEntryBytes
}
func rankBase(parity int) uint64 {
	if parity%2 == 0 {
		return baseRankA
	}
	return baseRankB
}
func rankAddr(parity int, v int64) uint64 {
	return rankBase(parity) + uint64(v)*vertexEntryBytes
}
func compAddr(v int64) uint64  { return baseComp + uint64(v)*vertexEntryBytes }
func degAddr(v int64) uint64   { return baseDeg + uint64(v)*vertexEntryBytes }
func prioAddr(v int64) uint64  { return basePrio + uint64(v)*vertexEntryBytes }
func stateAddr(v int64) uint64 { return baseState + uint64(v)*vertexEntryBytes }
func matchAddr(v int64) uint64 { return baseMatch + uint64(v)*vertexEntryBytes }
func coffAddr(parity int, v int64) uint64 {
	if parity%2 == 0 {
		return baseCOffA + uint64(v)*offsetEntryBytes
	}
	return baseCOffB + uint64(v)*offsetEntryBytes
}
func cedgeAddr(parity int, j int64) uint64 {
	if parity%2 == 0 {
		return baseCEdgeA + uint64(j)*edgeEntryBytes
	}
	return baseCEdgeB + uint64(j)*edgeEntryBytes
}
func labelAddr(v int64) uint64 { return baseLabel + uint64(v)*vertexEntryBytes }

// trace accumulates one task's memory references at cache-line granularity:
// consecutive touches to the same line collapse into one reference (their
// instruction counts accumulate), matching how the regular workload
// generators emit one reference per line touched.
//
// The line arithmetic is hoisted to a precomputed shift when lineBytes is a
// power of two (it always is for the configured line sizes), so the host
// walks pay one shift per touch instead of two hardware divisions.  When the
// trace feeds an interning store (the default — see Costs), gen copies the
// accumulated references into the store's arena, so one trace can be reused
// across tasks via reset, keeping kernel builds free of per-task slice
// growth.
type trace struct {
	lineBytes int64
	lineShift uint // valid when pow2
	pow2      bool
	store     *refs.TraceStore
	refs      []refs.Ref
	lastLine  uint64
	pending   int64 // instructions to charge before the next emitted ref
}

func newTrace(c Costs) *trace {
	t := &trace{lineBytes: c.LineBytes, store: c.store, lastLine: ^uint64(0)}
	if lb := uint64(c.LineBytes); lb&(lb-1) == 0 {
		t.pow2 = true
		for uint64(1)<<t.lineShift < lb {
			t.lineShift++
		}
	}
	return t
}

// reset rewinds the trace for the next task.  The accumulated buffer is
// reused only when an interning store copied its contents (gen hands the
// slice itself to the generator otherwise).
func (t *trace) reset() {
	if t.store != nil {
		t.refs = t.refs[:0]
	} else {
		t.refs = nil
	}
	t.lastLine = ^uint64(0)
	t.pending = 0
}

// line maps an address to its line index.
func (t *trace) line(addr uint64) uint64 {
	if t.pow2 {
		return addr >> t.lineShift
	}
	return addr / uint64(t.lineBytes)
}

// lineAddr maps a line index back to its base address.
func (t *trace) lineAddr(line uint64) uint64 {
	if t.pow2 {
		return line << t.lineShift
	}
	return line * uint64(t.lineBytes)
}

// touch records an access to addr, charging instrs instructions before it.
func (t *trace) touch(addr uint64, write bool, instrs int64) {
	line := t.line(addr)
	t.pending += instrs
	if len(t.refs) > 0 && line == t.lastLine {
		if write {
			t.refs[len(t.refs)-1].Write = true
		}
		return
	}
	t.refs = append(t.refs, refs.Ref{
		Addr:   t.lineAddr(line),
		Write:  write,
		Instrs: t.pending,
	})
	t.pending = 0
	t.lastLine = line
}

// span records a sequential access to the region [addr, addr+bytes).
func (t *trace) span(addr uint64, bytes int64, write bool, instrsPerLine int64) {
	if bytes <= 0 {
		return
	}
	first := t.line(addr)
	last := t.line(addr + uint64(bytes) - 1)
	for line := first; line <= last; line++ {
		t.touch(t.lineAddr(line), write, instrsPerLine)
	}
}

// gen finalises the trace into a replayable generator, charging tail
// instructions (plus any pending ones) after the final reference.  With an
// interning store (the default) the result is a refs.Recorded whose arena is
// shared by every identical task stream of the build; without one it is a
// refs.Points over the accumulated slice.  Either way the generator serves
// the simulator's batched reader (refs.Bulk) and zero-copy slice path
// (refs.Sliced) natively, and its instruction total is computed once at
// construction.
func (t *trace) gen(tail int64) refs.Gen {
	if t.store != nil {
		return t.store.InternRefs(t.refs, tail+t.pending)
	}
	return refs.NewPoints(t.refs, tail+t.pending)
}

// bytes estimates the task's working set: one line per emitted reference.
// Consecutive-line dedupe makes this a slight overcount for re-touched lines
// and that is fine for a coarsening parameter.
func (t *trace) bytes() int64 { return int64(len(t.refs)) * t.lineBytes }

// Costs parameterise the kernels' reference granularity, task grain and
// instruction accounting.
type Costs struct {
	// LineBytes is the granularity of emitted references (default 128,
	// Table 1's line size).
	LineBytes int64
	// EdgesPerTask is the target number of edge traversals per task: the
	// task-granularity knob of the irregular kernels (default 4096).
	// Frontier chunks are cut greedily so each task stays near this budget.
	EdgesPerTask int64
	// InstrsPerEdge is the instruction cost per edge traversed (default 8).
	InstrsPerEdge int64
	// InstrsPerVertex is the instruction cost per vertex processed
	// (default 16).
	InstrsPerVertex int64
	// SpawnInstrs is the overhead charged to barrier/spawn tasks
	// (default 200).
	SpawnInstrs int64

	// store interns the per-task traces so byte-identical sibling streams
	// share one arena.  withDefaults creates a fresh per-build store, so
	// interning is always on; the field stays unexported because it is a
	// pure perf layer with no effect on the emitted streams.
	store *refs.TraceStore
}

func (c Costs) withDefaults() Costs {
	if c.LineBytes == 0 {
		c.LineBytes = 128
	}
	if c.EdgesPerTask == 0 {
		c.EdgesPerTask = 4096
	}
	if c.InstrsPerEdge == 0 {
		c.InstrsPerEdge = 8
	}
	if c.InstrsPerVertex == 0 {
		c.InstrsPerVertex = 16
	}
	if c.SpawnInstrs == 0 {
		c.SpawnInstrs = 200
	}
	if c.store == nil {
		c.store = refs.NewTraceStore()
	}
	return c
}

// chunk splits the index range [0, n) greedily so that each chunk's work —
// work(i), typically the vertex's degree — stays at or under budget while
// every chunk holds at least one index.  It returns half-open [start, end)
// ranges.
func chunk(n int64, budget int64, work func(i int64) int64) [][2]int64 {
	budget = imath.Max(1, budget)
	var out [][2]int64
	start := int64(0)
	acc := int64(0)
	for i := int64(0); i < n; i++ {
		w := work(i)
		if i > start && acc+w > budget {
			out = append(out, [2]int64{start, i})
			start, acc = i, 0
		}
		acc += w
	}
	if start < n {
		out = append(out, [2]int64{start, n})
	}
	return out
}
