package graph

import (
	"fmt"
	"sort"

	"cmpsched/internal/dag"
	"cmpsched/internal/imath"
	"cmpsched/internal/prng"
	"cmpsched/internal/taskgroup"
)

// lddView abstracts one level of the contraction hierarchy for the LDD
// walker: level 0 walks the input Graph and addresses the real CSR regions;
// deeper levels walk a host-built contracted CSR whose simulated offset and
// edge arrays live in the parity-selected contracted regions.
type lddView struct {
	n         int64
	deg       func(v int64) int64
	firstEdge func(v int64) int64
	adjInto   func(v int64, buf []int32) []int32
	offAddr   func(v int64) uint64
	edgAddr   func(j int64) uint64
}

func viewOfGraph(g Graph) lddView {
	return lddView{
		n:         g.NumVertices(),
		deg:       g.Degree,
		firstEdge: g.FirstEdge,
		adjInto:   g.AdjInto,
		offAddr:   offsetAddr,
		edgAddr:   edgeAddr,
	}
}

func viewOfContracted(cg *CSR, parity int) lddView {
	return lddView{
		n:         cg.N,
		deg:       cg.Degree,
		firstEdge: func(v int64) int64 { return cg.Offsets[v] },
		adjInto:   cg.AdjInto,
		offAddr:   func(v int64) uint64 { return coffAddr(parity, v) },
		edgAddr:   func(j int64) uint64 { return cedgeAddr(parity, j) },
	}
}

// geomShift draws vertex v's deterministic LDD start round: a geometric
// sample with p = 1/8 (so ~n/8 vertices wake as cluster centers in round 0
// and the stragglers stagger out), capped at cap rounds.
func geomShift(seed uint64, level int, v int64, cap int64) int64 {
	r := prng.SplitMix64{State: prng.Mix64(seed + uint64(level)*0xA24BAED4963EE407 + uint64(v)*0x9E3779B97F4A7C15)}
	for s := int64(0); s < cap; s++ {
		if r.Next() < 1<<61 {
			return s
		}
	}
	return cap
}

// Connectivity builds the computation DAG of a connected-components
// computation via recursive low-diameter decomposition (the GBBS / Shun–
// Dhulipala–Blelloch shape): each level runs an LDD — a staggered
// multi-source BFS whose sources wake on geometrically distributed rounds,
// so every cluster has O(log n) radius — then contracts clusters to a
// smaller graph and recurses until no inter-cluster edges remain.  Round
// tasks read the frontier, the level's offset/edge arrays and the scattered
// cluster-label lines of their neighbours, claiming unvisited vertices;
// contraction tasks stream the level's edges and emit the next level's edge
// list; a final relabel phase writes the component vector.
//
// The third return value is the per-vertex component labelling (labels are
// arbitrary but equal exactly for connected vertices), used by tests against
// a serial union-find reference.
func Connectivity(g Graph, seed uint64, costs Costs) (*dag.DAG, *taskgroup.Tree, []int64, error) {
	c := costs.withDefaults()
	n0 := g.NumVertices()

	d := dag.New(fmt.Sprintf("connectivity-%s", g.GraphName()))
	tree := taskgroup.New("connectivity")

	// Initialisation: clear the label vector, draw the level-0 shifts.
	init := newTrace(c)
	init.span(labelAddr(0), n0*vertexEntryBytes, true, 1)
	init.span(prioAddr(0), n0*vertexEntryBytes, true, 1)
	initTask := d.AddTask("conn-init", init.gen(c.SpawnInstrs))
	initTask.Site = "graph/connectivity.go:init"
	initTask.Param = float64(init.bytes())
	tree.Own(tree.Root, initTask.ID)
	prevBarrier := initTask.ID

	tr := newTrace(c)
	var adj []int32
	const maxLevels = 32
	lvl := viewOfGraph(g)
	var maps [][]int64 // per level: vertex -> next-level cluster index
	totalRounds := 0
	sequentialTail := false

	for level := 0; ; level++ {
		labels, rounds, err := lddPass(d, tree, &prevBarrier, tr, &adj, lvl, level, seed, c)
		if err != nil {
			return nil, nil, nil, err
		}
		totalRounds += rounds

		// Relabel clusters to [0, nc) in ascending-center order and collect
		// the inter-cluster edge set, emitting the contraction tasks.
		centers := make([]int64, 0)
		seenCenter := make(map[int64]bool)
		for v := int64(0); v < lvl.n; v++ {
			if !seenCenter[labels[v]] {
				seenCenter[labels[v]] = true
				centers = append(centers, labels[v])
			}
		}
		sort.Slice(centers, func(i, j int) bool { return centers[i] < centers[j] })
		cidx := make(map[int64]int64, len(centers))
		for i, ctr := range centers {
			cidx[ctr] = int64(i)
		}
		nc := int64(len(centers))
		m := make([]int64, lvl.n)
		for v := int64(0); v < lvl.n; v++ {
			m[v] = cidx[labels[v]]
		}
		maps = append(maps, m)

		pairs := contract(d, tree, &prevBarrier, tr, &adj, lvl, level, m, c)
		if len(pairs) == 0 {
			break
		}
		if nc >= lvl.n || level+1 >= maxLevels {
			// No contraction progress (vanishingly unlikely under the
			// geometric shifts) or the level cap: finish the remaining
			// merges with a sequential union-find, modelled as one task
			// streaming the residual edge list and label lines.
			maps = append(maps, unionFindTail(d, tree, &prevBarrier, c, nc, pairs, (level+1)%2))
			sequentialTail = true
			break
		}
		cg := fromPairs(nc, pairs)
		cg.Name = fmt.Sprintf("conn-contracted-l%d", level+1)
		lvl = viewOfContracted(cg, (level+1)%2)
	}

	// Compose the per-level mappings down to the original vertices and emit
	// the final relabel sweep.
	comp := make([]int64, n0)
	for v := int64(0); v < n0; v++ {
		id := v
		for _, m := range maps {
			id = m[id]
		}
		comp[v] = id
	}
	group := tree.AddChild(tree.Root, "conn-relabel", "graph/connectivity.go:relabel", 0, 0)
	var groupBytes int64
	chunks := chunk(n0, c.EdgesPerTask, func(int64) int64 { return 1 })
	chunkIDs := make([]dag.TaskID, 0, len(chunks))
	for _, cr := range chunks {
		tr.reset()
		tr.span(labelAddr(cr[0]), (cr[1]-cr[0])*vertexEntryBytes, false, 1)
		tr.span(compAddr(cr[0]), (cr[1]-cr[0])*vertexEntryBytes, true, 1)
		t := d.AddTask(fmt.Sprintf("conn-relabel[%d:%d)", cr[0], cr[1]), tr.gen(c.SpawnInstrs/4))
		t.Site = "graph/connectivity.go:relabel"
		t.Param = float64(tr.bytes())
		groupBytes += tr.bytes()
		tree.Own(group, t.ID)
		d.MustEdge(prevBarrier, t.ID)
		chunkIDs = append(chunkIDs, t.ID)
	}
	group.Param = float64(groupBytes)
	done := d.AddComputeTask("conn-done", c.SpawnInstrs)
	done.Site = "graph/connectivity.go:done"
	tree.Own(tree.Root, done.ID)
	for _, id := range chunkIDs {
		d.MustEdge(id, done.ID)
	}

	components := make(map[int64]bool)
	for _, id := range comp {
		components[id] = true
	}
	d.RecordMetric("conn.levels", int64(len(maps)))
	d.RecordMetric("conn.rounds", int64(totalRounds))
	d.RecordMetric("conn.components", int64(len(components)))
	if sequentialTail {
		d.RecordMetric("conn.sequential_tail", 1)
	}

	d2, t2, err := finish(d, tree, "connectivity", c)
	return d2, t2, comp, err
}

// lddPass runs one low-diameter decomposition over lvl on the host, emitting
// one DAG level per staggered-BFS round, and returns the cluster labelling
// (labels[v] = the center vertex whose ball claimed v) plus the round count.
func lddPass(d *dag.DAG, tree *taskgroup.Tree, prevBarrier *dag.TaskID, tr *trace, adj *[]int32, lvl lddView, level int, seed uint64, c Costs) ([]int64, int, error) {
	n := lvl.n
	shiftCap := 2*imath.Log2Ceil(n) + 8
	wake := make(map[int64][]int32)
	for v := int64(0); v < n; v++ {
		s := geomShift(seed, level, v, shiftCap)
		wake[s] = append(wake[s], int32(v))
	}

	labels := make([]int64, n)
	for i := range labels {
		labels[i] = -1
	}
	visited := int64(0)
	var claimed []int32 // claimed during the previous round, in claim order
	rounds := 0
	for r := int64(0); ; r++ {
		// The round's frontier: last round's claims first (their slots were
		// written then), then this round's newly woken centers appending
		// themselves.
		frontier := claimed
		nCarried := len(frontier)
		for _, v32 := range wake[r] {
			if labels[v32] == -1 {
				labels[int64(v32)] = int64(v32)
				visited++
				frontier = append(frontier, v32)
			}
		}
		if len(frontier) == 0 {
			if visited == n {
				break
			}
			continue // host-only skip: nobody woke or propagated this round
		}
		rounds++
		parity := int(r) % 2
		group := tree.AddChild(tree.Root, fmt.Sprintf("conn-l%d-round%d", level, r), "graph/connectivity.go:round", 0, int(r))
		var groupBytes int64

		var next []int32
		nextSlot := int64(0)
		chunks := chunk(int64(len(frontier)), c.EdgesPerTask, func(i int64) int64 {
			return 1 + lvl.deg(int64(frontier[i]))
		})
		chunkIDs := make([]dag.TaskID, 0, len(chunks))
		for _, cr := range chunks {
			tr.reset()
			for i := cr[0]; i < cr[1]; i++ {
				u := int64(frontier[i])
				if i >= int64(nCarried) {
					// A center seating itself: read its shift, claim its own
					// label, append itself to the frontier list.
					tr.touch(prioAddr(u), false, c.InstrsPerVertex)
					tr.touch(labelAddr(u), true, 1)
					tr.touch(frontAddr(parity, i), true, 1)
				} else {
					tr.touch(frontAddr(parity, i), false, c.InstrsPerVertex)
				}
				tr.touch(lvl.offAddr(u), false, 0)
				tr.touch(lvl.offAddr(u+1), false, 0)
				*adj = lvl.adjInto(u, *adj)
				j0 := lvl.firstEdge(u)
				for k, w32 := range *adj {
					j := j0 + int64(k)
					w := int64(w32)
					tr.touch(lvl.edgAddr(j), false, c.InstrsPerEdge)
					tr.touch(labelAddr(w), false, 0)
					if labels[w] == -1 {
						labels[w] = labels[u]
						visited++
						tr.touch(labelAddr(w), true, 2)
						tr.touch(frontAddr(1-parity, nextSlot), true, 1)
						nextSlot++
						next = append(next, w32)
					}
				}
			}
			t := d.AddTask(fmt.Sprintf("conn-l%d-r%d[%d:%d)", level, r, cr[0], cr[1]), tr.gen(c.SpawnInstrs/4))
			t.Site = "graph/connectivity.go:explore"
			t.Param = float64(tr.bytes())
			t.Level = int(r)
			groupBytes += tr.bytes()
			tree.Own(group, t.ID)
			d.MustEdge(*prevBarrier, t.ID)
			chunkIDs = append(chunkIDs, t.ID)
		}

		barrier := d.AddComputeTask(fmt.Sprintf("conn-l%d-advance%d", level, r), c.SpawnInstrs)
		barrier.Site = "graph/connectivity.go:advance"
		barrier.Level = int(r)
		tree.Own(group, barrier.ID)
		for _, id := range chunkIDs {
			d.MustEdge(id, barrier.ID)
		}
		group.Param = float64(groupBytes)
		*prevBarrier = barrier.ID
		claimed = next
	}
	return labels, rounds, nil
}

// contract emits the cluster-contraction phase for one level: chunked tasks
// stream the level's edges, read both endpoints' cluster labels and write
// each newly discovered inter-cluster edge into the next level's edge region.
// It returns the deduplicated inter-cluster endpoint pairs (in cluster ids).
func contract(d *dag.DAG, tree *taskgroup.Tree, prevBarrier *dag.TaskID, tr *trace, adj *[]int32, lvl lddView, level int, m []int64, c Costs) [][2]int32 {
	nextParity := (level + 1) % 2
	group := tree.AddChild(tree.Root, fmt.Sprintf("conn-l%d-contract", level), "graph/connectivity.go:contract", 0, 0)
	var groupBytes int64
	seen := make(map[[2]int32]bool)
	var pairs [][2]int32
	chunks := chunk(lvl.n, c.EdgesPerTask, func(v int64) int64 { return 1 + lvl.deg(v) })
	chunkIDs := make([]dag.TaskID, 0, len(chunks))
	for _, cr := range chunks {
		tr.reset()
		for u := cr[0]; u < cr[1]; u++ {
			tr.touch(lvl.offAddr(u), false, c.InstrsPerVertex)
			tr.touch(lvl.offAddr(u+1), false, 0)
			tr.touch(labelAddr(u), false, 0)
			*adj = lvl.adjInto(u, *adj)
			j0 := lvl.firstEdge(u)
			for k, w32 := range *adj {
				j := j0 + int64(k)
				w := int64(w32)
				tr.touch(lvl.edgAddr(j), false, c.InstrsPerEdge)
				tr.touch(labelAddr(w), false, 0)
				cu, cw := m[u], m[w]
				if cu == cw {
					continue
				}
				lo, hi := int32(cu), int32(cw)
				if lo > hi {
					lo, hi = hi, lo
				}
				key := [2]int32{lo, hi}
				if !seen[key] {
					seen[key] = true
					slot := int64(len(pairs))
					pairs = append(pairs, key)
					tr.touch(cedgeAddr(nextParity, 2*slot), true, 1)
					tr.touch(cedgeAddr(nextParity, 2*slot+1), true, 1)
				}
			}
		}
		t := d.AddTask(fmt.Sprintf("conn-l%d-contract[%d:%d)", level, cr[0], cr[1]), tr.gen(c.SpawnInstrs/4))
		t.Site = "graph/connectivity.go:contract"
		t.Param = float64(tr.bytes())
		groupBytes += tr.bytes()
		tree.Own(group, t.ID)
		d.MustEdge(*prevBarrier, t.ID)
		chunkIDs = append(chunkIDs, t.ID)
	}
	group.Param = float64(groupBytes)
	barrier := d.AddComputeTask(fmt.Sprintf("conn-l%d-build", level), c.SpawnInstrs+int64(len(pairs))/8)
	barrier.Site = "graph/connectivity.go:build"
	tree.Own(group, barrier.ID)
	for _, id := range chunkIDs {
		d.MustEdge(id, barrier.ID)
	}
	*prevBarrier = barrier.ID
	return pairs
}

// unionFindTail finishes the residual merges sequentially: one task streams
// the leftover inter-cluster edge list and folds it with a host union-find,
// returning the cluster -> representative mapping.
func unionFindTail(d *dag.DAG, tree *taskgroup.Tree, prevBarrier *dag.TaskID, c Costs, nc int64, pairs [][2]int32, parity int) []int64 {
	parent := make([]int64, nc)
	for i := range parent {
		parent[i] = int64(i)
	}
	var find func(x int64) int64
	find = func(x int64) int64 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	tr := newTrace(c)
	for i, p := range pairs {
		tr.touch(cedgeAddr(parity, 2*int64(i)), false, c.InstrsPerEdge)
		a, b := find(int64(p[0])), find(int64(p[1]))
		if a != b {
			parent[b] = a
			tr.touch(labelAddr(b), true, 2)
		}
	}
	m := make([]int64, nc)
	for i := range m {
		m[i] = find(int64(i))
	}
	t := d.AddTask("conn-seqtail", tr.gen(c.SpawnInstrs))
	t.Site = "graph/connectivity.go:seqtail"
	t.Param = float64(tr.bytes())
	tree.Own(tree.Root, t.ID)
	d.MustEdge(*prevBarrier, t.ID)
	*prevBarrier = t.ID
	return m
}
