package graph

import (
	"testing"

	"cmpsched/internal/dag"
	"cmpsched/internal/refs"
)

// The differential suite is the pin for the compressed-CSR tentpole: every
// kernel must emit a byte-identical DAG — same task names, instruction
// counts, dependence edges, and per-task reference-stream fingerprints —
// whether it walks the flat or the byte-compressed representation.  Kernels
// address the simulated flat layout (FirstEdge(v)+k) no matter how the host
// stores the bytes, so any divergence here is a codec or traversal bug.

// kernelRunners enumerates every registered DAG-emitting kernel with fixed
// parameters, so a new kernel only needs one entry here to join the
// differential matrix.
func kernelRunners() map[string]func(g Graph) (*dag.DAG, error) {
	c := tinyCosts()
	return map[string]func(g Graph) (*dag.DAG, error){
		"bfs": func(g Graph) (*dag.DAG, error) {
			d, _, err := BFS(g, 0, c)
			return d, err
		},
		"sssp": func(g Graph) (*dag.DAG, error) {
			d, _, err := BellmanFord(g, 0, 17, 64, 16, c)
			return d, err
		},
		"pagerank": func(g Graph) (*dag.DAG, error) {
			d, _, err := PageRank(g, 3, c)
			return d, err
		},
		"triangles": func(g Graph) (*dag.DAG, error) {
			d, _, _, err := Triangles(g, c)
			return d, err
		},
		"connectivity": func(g Graph) (*dag.DAG, error) {
			d, _, _, err := Connectivity(g, 19, c)
			return d, err
		},
		"kcore": func(g Graph) (*dag.DAG, error) {
			d, _, _, err := KCore(g, c)
			return d, err
		},
		"mis": func(g Graph) (*dag.DAG, error) {
			d, _, _, err := MIS(g, 23, c)
			return d, err
		},
		"matching": func(g Graph) (*dag.DAG, error) {
			d, _, _, err := MaximalMatching(g, 29, c)
			return d, err
		},
	}
}

// taskFingerprint folds one task's identity — name, instruction count,
// predecessor list, and full reference stream — into a single hash.
func taskFingerprint(t *dag.Task) uint64 {
	h := uint64(len(t.Name))
	for _, ch := range []byte(t.Name) {
		h = h*131 + uint64(ch)
	}
	h ^= uint64(t.Instrs) * 0x9E3779B97F4A7C15
	for _, p := range t.Preds {
		h = h*1000003 + uint64(p)
	}
	if t.Refs != nil {
		h ^= refs.Fingerprint(t.Refs)
	}
	return h
}

func TestFlatAndCompressedEmitIdenticalDAGs(t *testing.T) {
	for _, seed := range []uint64{3, 101} {
		for _, family := range Families() {
			flat := mustNew(t, Config{Family: family, Vertices: 1 << 10, AvgDegree: 8, Seed: seed})
			comp, err := Compress(flat)
			if err != nil {
				t.Fatalf("%s seed %d: %v", family, seed, err)
			}
			for kernel, run := range kernelRunners() {
				df, err := run(flat)
				if err != nil {
					t.Fatalf("%s/%s flat: %v", kernel, family, err)
				}
				dc, err := run(comp)
				if err != nil {
					t.Fatalf("%s/%s compressed: %v", kernel, family, err)
				}
				diffDAGs(t, kernel+"/"+family, df, dc)
			}
		}
	}
}

// diffDAGs asserts task-by-task equality of two DAGs and reports the first
// divergence precisely enough to debug a codec fault.
func diffDAGs(t *testing.T, name string, df, dc *dag.DAG) {
	t.Helper()
	if df.NumTasks() != dc.NumTasks() {
		t.Fatalf("%s: task counts differ: flat %d, compressed %d", name, df.NumTasks(), dc.NumTasks())
	}
	ft, ct := df.Tasks(), dc.Tasks()
	for i := range ft {
		if ft[i].Name != ct[i].Name {
			t.Fatalf("%s: task %d name %q (flat) vs %q (compressed)", name, i, ft[i].Name, ct[i].Name)
		}
		if ft[i].Instrs != ct[i].Instrs {
			t.Fatalf("%s: task %q instrs %d (flat) vs %d (compressed)", name, ft[i].Name, ft[i].Instrs, ct[i].Instrs)
		}
		if fp, cp := taskFingerprint(ft[i]), taskFingerprint(ct[i]); fp != cp {
			t.Fatalf("%s: task %q reference streams diverge (%#x vs %#x)", name, ft[i].Name, fp, cp)
		}
	}
}

// TestDifferentialCatchesMutation guards the harness itself: two different
// graphs must NOT fingerprint identically, or the suite is vacuous.
func TestDifferentialCatchesMutation(t *testing.T) {
	a := mustNew(t, Config{Family: FamilyUniform, Vertices: 1 << 10, AvgDegree: 8, Seed: 3})
	b := mustNew(t, Config{Family: FamilyUniform, Vertices: 1 << 10, AvgDegree: 8, Seed: 4})
	da, _, err := BFS(a, 0, tinyCosts())
	if err != nil {
		t.Fatal(err)
	}
	db, _, err := BFS(b, 0, tinyCosts())
	if err != nil {
		t.Fatal(err)
	}
	if da.NumTasks() == db.NumTasks() {
		ta, tb := da.Tasks(), db.Tasks()
		same := true
		for i := range ta {
			if taskFingerprint(ta[i]) != taskFingerprint(tb[i]) {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different graphs produced identical task fingerprints; differential harness is vacuous")
		}
	}
}
