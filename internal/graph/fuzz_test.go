package graph

import (
	"encoding/binary"
	"sort"
	"testing"
)

// FuzzDecodeAdj drives the varint-delta decoder with arbitrary byte streams
// and shape parameters.  The decoder's contract under fuzzing:
//
//  1. It never panics and never reads past len(data), however corrupt the
//     input (the consumed-byte count stays within bounds).
//  2. On success every neighbour lies in [0, n) and, past the first, the list
//     is strictly increasing (deltas encode next−prev−1 ≥ 0).
//  3. A list the fuzzer can derive from the raw bytes re-encodes and decodes
//     back to itself exactly (roundtrip through the production encoder).
func FuzzDecodeAdj(f *testing.F) {
	f.Add(int64(4), int64(16), int64(3), []byte{0x05, 0x01, 0x05})
	f.Add(int64(0), int64(1), int64(1), []byte{0x00})
	f.Add(int64(7), int64(8), int64(2), []byte{0x0D, 0x00})
	f.Add(int64(0), int64(1<<30), int64(1), []byte{0xFF, 0xFF, 0xFF, 0xFF, 0x0F})
	f.Add(int64(3), int64(100), int64(5), []byte{})
	f.Add(int64(1), int64(2), int64(1), []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F})

	f.Fuzz(func(t *testing.T, source, n, deg int64, data []byte) {
		if deg > int64(len(data))+1 {
			deg = int64(len(data)) + 1 // cap the work; every neighbour needs ≥1 byte
		}
		out, consumed, err := DecodeAdjInto(nil, source, n, deg, data)
		if consumed < 0 || consumed > len(data) {
			t.Fatalf("consumed %d bytes of %d", consumed, len(data))
		}
		if err != nil {
			return
		}
		if int64(len(out)) != deg {
			t.Fatalf("decoded %d neighbours, want %d", len(out), deg)
		}
		for i, v := range out {
			if int64(v) < 0 || int64(v) >= n {
				t.Fatalf("neighbour %d = %d outside [0, %d)", i, v, n)
			}
			if i > 0 && out[i] <= out[i-1] {
				t.Fatalf("neighbours not strictly increasing: out[%d]=%d, out[%d]=%d",
					i-1, out[i-1], i, out[i])
			}
		}

		// Roundtrip: re-encode the decoded list with the production scheme
		// and decode again; the lists must match.  (The bytes themselves may
		// differ — binary.Uvarint accepts non-minimal varint encodings.)
		enc := encodeAdj(nil, source, out)
		again, _, err := DecodeAdjInto(nil, source, n, deg, enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		for i := range out {
			if again[i] != out[i] {
				t.Fatalf("roundtrip diverged at neighbour %d: %d vs %d", i, out[i], again[i])
			}
		}
	})
}

// encodeAdj is the reference encoder for a sorted neighbour list, mirroring
// the scheme in Compress: first neighbour zigzag-from-source, then
// (next − prev − 1) unsigned deltas.
func encodeAdj(dst []byte, source int64, adj []int32) []byte {
	if len(adj) == 0 {
		return dst
	}
	dst = binary.AppendUvarint(dst, zigzag(int64(adj[0])-source))
	prev := int64(adj[0])
	for _, w := range adj[1:] {
		dst = binary.AppendUvarint(dst, uint64(int64(w)-prev-1))
		prev = int64(w)
	}
	return dst
}

// FuzzEncodeDecodeAdj fuzzes from the other direction: derive a sorted,
// duplicate-free neighbour list from arbitrary bytes, encode it with the
// production scheme, and require an exact decode.
func FuzzEncodeDecodeAdj(f *testing.F) {
	f.Add(int64(0), uint16(64), []byte{1, 2, 3, 4})
	f.Add(int64(100), uint16(1000), []byte{0xFF, 0x00, 0x80, 0x7F, 0x01})
	f.Add(int64(5), uint16(6), []byte{})

	f.Fuzz(func(t *testing.T, source int64, n16 uint16, raw []byte) {
		n := int64(n16) + 1
		// Unsigned modulo maps any input (including MinInt64, which ordinary
		// negation can't fix) into [0, n).
		source = int64(uint64(source) % uint64(n))
		seen := make(map[int32]bool)
		for i := 0; i+1 < len(raw); i += 2 {
			v := int32(uint32(raw[i])<<8|uint32(raw[i+1])) % int32(n)
			seen[v] = true
		}
		adj := make([]int32, 0, len(seen))
		for v := range seen {
			adj = append(adj, v)
		}
		sort.Slice(adj, func(i, j int) bool { return adj[i] < adj[j] })

		enc := encodeAdj(nil, source, adj)
		out, consumed, err := DecodeAdjInto(nil, source, n, int64(len(adj)), enc)
		if err != nil {
			t.Fatalf("decode of freshly encoded list failed: %v", err)
		}
		if consumed != len(enc) {
			t.Fatalf("consumed %d of %d encoded bytes", consumed, len(enc))
		}
		if len(out) != len(adj) {
			t.Fatalf("decoded %d neighbours, want %d", len(out), len(adj))
		}
		for i := range adj {
			if out[i] != adj[i] {
				t.Fatalf("neighbour %d: decoded %d, want %d", i, out[i], adj[i])
			}
		}
	})
}
