package graph

import (
	"fmt"

	"cmpsched/internal/dag"
	"cmpsched/internal/taskgroup"
)

// BFS builds the computation DAG of a level-synchronous parallel
// breadth-first search from source.
//
// The host walks the real graph to discover the frontier of every level (the
// data-dependent part a static generator cannot know), then emits one DAG
// level per BFS level: the frontier is cut into tasks of roughly
// Costs.EdgesPerTask edge traversals, the tasks of a level run in parallel,
// and a barrier task separates consecutive levels — the classic
// level-synchronous structure.  Each task's reference stream touches the
// frontier slots it reads, the CSR offset and edge lines of its vertices,
// and the *scattered* distance-vector lines of every neighbour it inspects,
// writing the slots of newly discovered vertices and the next frontier.
func BFS(g Graph, source int64, costs Costs) (*dag.DAG, *taskgroup.Tree, error) {
	c := costs.withDefaults()
	if err := checkSource(g, source); err != nil {
		return nil, nil, fmt.Errorf("graph: bfs: %w", err)
	}
	levels, discoverer := bfsLevels(g, source)

	d := dag.New(fmt.Sprintf("bfs-%s", g.GraphName()))
	tree := taskgroup.New("bfs")

	// Initialisation: write the distance vector and the first frontier.
	init := newTrace(c)
	init.span(distAddr(0), g.NumVertices()*vertexEntryBytes, true, 1)
	init.touch(frontAddr(0, 0), true, c.InstrsPerVertex)
	initTask := d.AddTask("bfs-init", init.gen(c.SpawnInstrs))
	initTask.Site = "graph/bfs.go:init"
	initTask.Param = float64(init.bytes())
	tree.Own(tree.Root, initTask.ID)

	prevBarrier := initTask.ID
	d.RecordMetric("bfs.levels", int64(len(levels)))
	// One trace serves every explore task: the interning store copies each
	// finalised stream into its arena, so the accumulation buffer is reused
	// across chunks.
	tr := newTrace(c)
	var adj []int32
	for level, frontier := range levels {
		d.RecordMetric(fmt.Sprintf("bfs.frontier.level_%02d.vertices", level), int64(len(frontier)))
		parity := level % 2
		group := tree.AddChild(tree.Root, fmt.Sprintf("bfs-level%d", level), "graph/bfs.go:level", 0, level)
		var groupBytes int64

		nextSlot := int64(0) // slot counter in the next frontier
		chunks := chunk(int64(len(frontier)), c.EdgesPerTask, func(i int64) int64 {
			return 1 + g.Degree(int64(frontier[i]))
		})
		chunkIDs := make([]dag.TaskID, 0, len(chunks))
		for _, cr := range chunks {
			tr.reset()
			for i := cr[0]; i < cr[1]; i++ {
				u := int64(frontier[i])
				tr.touch(frontAddr(parity, i), false, c.InstrsPerVertex)
				tr.touch(offsetAddr(u), false, 0)
				tr.touch(offsetAddr(u+1), false, 0)
				adj = g.AdjInto(u, adj)
				j0 := g.FirstEdge(u)
				for k, w := range adj {
					j := j0 + int64(k)
					v := int64(w)
					tr.touch(edgeAddr(j), false, c.InstrsPerEdge)
					tr.touch(distAddr(v), false, 0)
					if discoverer[v] == j {
						// This edge discovers v: claim it and append it to
						// the next frontier.
						tr.touch(distAddr(v), true, 2)
						tr.touch(frontAddr(1-parity, nextSlot), true, 1)
						nextSlot++
					}
				}
			}
			t := d.AddTask(fmt.Sprintf("bfs-l%d[%d:%d)", level, cr[0], cr[1]), tr.gen(c.SpawnInstrs/4))
			t.Site = "graph/bfs.go:explore"
			t.Param = float64(tr.bytes())
			t.Level = level
			groupBytes += tr.bytes()
			tree.Own(group, t.ID)
			d.MustEdge(prevBarrier, t.ID)
			chunkIDs = append(chunkIDs, t.ID)
		}

		barrier := d.AddComputeTask(fmt.Sprintf("bfs-advance%d", level), c.SpawnInstrs)
		barrier.Site = "graph/bfs.go:advance"
		barrier.Level = level
		tree.Own(group, barrier.ID)
		for _, id := range chunkIDs {
			d.MustEdge(id, barrier.ID)
		}
		group.Param = float64(groupBytes)
		prevBarrier = barrier.ID
	}

	return finish(d, tree, "bfs", c)
}

// bfsLevels runs the breadth-first search on the host.  It returns the
// frontier of every level (in discovery order) and, for each vertex, the
// index of the edge that discovered it (-1 for the source and unreached
// vertices) — the tie-break a deterministic parallel BFS with in-order
// claiming would produce.
func bfsLevels(g Graph, source int64) (levels [][]int32, discoverer []int64) {
	n := g.NumVertices()
	discoverer = make([]int64, n)
	seen := make([]bool, n)
	for i := range discoverer {
		discoverer[i] = -1
	}
	seen[source] = true
	frontier := []int32{int32(source)}
	var adj []int32
	for len(frontier) > 0 {
		levels = append(levels, frontier)
		var next []int32
		for _, u32 := range frontier {
			u := int64(u32)
			adj = g.AdjInto(u, adj)
			j0 := g.FirstEdge(u)
			for k, v := range adj {
				if !seen[v] {
					seen[v] = true
					discoverer[v] = j0 + int64(k)
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return levels, discoverer
}

// checkSource validates a source vertex.
func checkSource(g Graph, source int64) error {
	if source < 0 || source >= g.NumVertices() {
		return fmt.Errorf("source %d out of range [0, %d)", source, g.NumVertices())
	}
	return nil
}

// finish validates the DAG, records the build's trace-interning statistics
// as DAG metrics (published under the "dag." prefix when a run is observed),
// and finalises the group tree.
func finish(d *dag.DAG, tree *taskgroup.Tree, kernel string, c Costs) (*dag.DAG, *taskgroup.Tree, error) {
	if c.store != nil {
		st := c.store.Stats()
		d.RecordMetric("trace.interned", st.Interned)
		d.RecordMetric("trace.unique", st.Unique)
		d.RecordMetric("trace.arena_bytes", st.ArenaBytes)
	}
	if err := d.Validate(); err != nil {
		return nil, nil, fmt.Errorf("graph: %s: %w", kernel, err)
	}
	if err := tree.Finalize(d); err != nil {
		return nil, nil, fmt.Errorf("graph: %s: %w", kernel, err)
	}
	return d, tree, nil
}
