package graph

import (
	"strings"
	"testing"

	"cmpsched/internal/dag"
	"cmpsched/internal/taskgroup"
)

// checkKernel performs the structural checks every kernel DAG must satisfy.
func checkKernel(t *testing.T, name string, d *dag.DAG, tree *taskgroup.Tree) {
	t.Helper()
	if err := d.Validate(); err != nil {
		t.Fatalf("%s: invalid DAG: %v", name, err)
	}
	if _, err := d.TopologicalCheck(); err != nil {
		t.Fatalf("%s: cyclic DAG: %v", name, err)
	}
	if d.NumTasks() < 3 {
		t.Fatalf("%s: suspiciously small DAG (%d tasks)", name, d.NumTasks())
	}
	if d.TotalInstrs() <= 0 || d.TotalRefs() <= 0 {
		t.Fatalf("%s: DAG has no work: %+v", name, d.ComputeStats())
	}
	if d.Depth() >= d.TotalInstrs() {
		t.Fatalf("%s: no parallelism: depth=%d work=%d", name, d.Depth(), d.TotalInstrs())
	}
	if tree == nil {
		t.Fatalf("%s: kernel built no task-group tree", name)
	}
	if tree.Root.First != 0 || int(tree.Root.Last) != d.NumTasks()-1 {
		t.Fatalf("%s: group tree covers [%d,%d] of %d tasks",
			name, tree.Root.First, tree.Root.Last, d.NumTasks())
	}
}

func testGraph(t *testing.T, family string) *CSR {
	t.Helper()
	return mustNew(t, Config{Family: family, Vertices: 1 << 10, AvgDegree: 8, Seed: 3})
}

// tinyCosts keeps kernel DAGs small in tests while still multi-task.
func tinyCosts() Costs { return Costs{EdgesPerTask: 512} }

func TestBFSStructure(t *testing.T) {
	g := testGraph(t, FamilyUniform)
	d, tree, err := BFS(g, 0, tinyCosts())
	if err != nil {
		t.Fatal(err)
	}
	checkKernel(t, "bfs", d, tree)
	if roots := d.Roots(); len(roots) != 1 || d.Task(roots[0]).Name != "bfs-init" {
		t.Fatalf("bfs roots = %v", roots)
	}
	if sinks := d.Sinks(); len(sinks) != 1 {
		t.Fatalf("bfs sinks = %v", sinks)
	}
	// One group per BFS level, in phase order.
	levels, _ := bfsLevels(g, 0)
	if len(tree.Root.Children) != len(levels) {
		t.Fatalf("level groups = %d, want %d", len(tree.Root.Children), len(levels))
	}
	for i, c := range tree.Root.Children {
		if c.Phase != i {
			t.Fatalf("level group %d has phase %d", i, c.Phase)
		}
	}
}

func TestBFSGridLevelCountIsManhattanEccentricity(t *testing.T) {
	g := mustNew(t, Config{Family: FamilyGrid, Vertices: 64})
	levels, disc := bfsLevels(g, 0)
	// From corner 0 of an 8x8 lattice the farthest vertex is 14 hops away.
	if len(levels) != 15 {
		t.Fatalf("grid BFS levels = %d, want 15", len(levels))
	}
	var reached int
	for _, f := range levels {
		reached += len(f)
	}
	if reached != 64 {
		t.Fatalf("grid BFS reached %d of 64", reached)
	}
	if disc[0] != -1 {
		t.Fatalf("source has a discovering edge: %d", disc[0])
	}
}

func TestBFSDeterministicRebuild(t *testing.T) {
	g := testGraph(t, FamilyRMAT)
	a, _, err := BFS(g, 0, tinyCosts())
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := BFS(g, 0, tinyCosts())
	if err != nil {
		t.Fatal(err)
	}
	if a.NumTasks() != b.NumTasks() || a.TotalInstrs() != b.TotalInstrs() || a.TotalRefs() != b.TotalRefs() {
		t.Fatalf("BFS rebuild differs: %v vs %v", a.ComputeStats(), b.ComputeStats())
	}
}

func TestBFSRejectsBadSource(t *testing.T) {
	g := testGraph(t, FamilyUniform)
	if _, _, err := BFS(g, -1, Costs{}); err == nil {
		t.Fatalf("negative source accepted")
	}
	if _, _, err := BFS(g, g.N, Costs{}); err == nil {
		t.Fatalf("out-of-range source accepted")
	}
}

func TestGranularityControlsKernelTaskCount(t *testing.T) {
	g := testGraph(t, FamilyUniform)
	coarse, _, err := BFS(g, 0, Costs{EdgesPerTask: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	fine, _, err := BFS(g, 0, Costs{EdgesPerTask: 128})
	if err != nil {
		t.Fatal(err)
	}
	if fine.NumTasks() <= coarse.NumTasks() {
		t.Fatalf("finer grain should create more tasks: fine=%d coarse=%d",
			fine.NumTasks(), coarse.NumTasks())
	}
}

func TestWeightOfIsSymmetricAndBounded(t *testing.T) {
	for u := int64(0); u < 50; u++ {
		for v := u + 1; v < 50; v++ {
			w := WeightOf(u, v, 9, 16)
			if w != WeightOf(v, u, 9, 16) {
				t.Fatalf("asymmetric weight for {%d,%d}", u, v)
			}
			if w < 1 || w > 16 {
				t.Fatalf("weight %d out of [1,16]", w)
			}
		}
	}
}

func TestBellmanFordStructureAndRoundCap(t *testing.T) {
	g := testGraph(t, FamilyUniform)
	d, tree, err := BellmanFord(g, 0, 9, 16, 0, tinyCosts())
	if err != nil {
		t.Fatal(err)
	}
	checkKernel(t, "sssp", d, tree)
	rounds := len(tree.Root.Children)
	levels, _ := bfsLevels(g, 0)
	// Weighted relaxation cannot settle faster than the hop distance.
	if rounds < len(levels)-1 {
		t.Fatalf("sssp rounds = %d, below BFS level count %d", rounds, len(levels))
	}
	capped, treeCapped, err := BellmanFord(g, 0, 9, 16, 3, tinyCosts())
	if err != nil {
		t.Fatal(err)
	}
	checkKernel(t, "sssp-capped", capped, treeCapped)
	if got := len(treeCapped.Root.Children); got != 3 {
		t.Fatalf("capped sssp rounds = %d, want 3", got)
	}
	if capped.NumTasks() >= d.NumTasks() {
		t.Fatalf("capping rounds did not shrink the DAG: %d vs %d", capped.NumTasks(), d.NumTasks())
	}
}

func TestPageRankStructure(t *testing.T) {
	g := testGraph(t, FamilyRMAT)
	const iters = 5
	d, tree, err := PageRank(g, iters, tinyCosts())
	if err != nil {
		t.Fatal(err)
	}
	checkKernel(t, "pagerank", d, tree)
	if len(tree.Root.Children) != iters {
		t.Fatalf("iteration groups = %d, want %d", len(tree.Root.Children), iters)
	}
	// Every iteration has the same chunking, so group sizes match.
	first := tree.Root.Children[0].NumTasks()
	for i, c := range tree.Root.Children {
		if c.NumTasks() != first {
			t.Fatalf("iteration %d has %d tasks, iteration 0 has %d", i, c.NumTasks(), first)
		}
	}
	// Default iteration count kicks in for non-positive requests.
	_, tree8, err := PageRank(g, 0, tinyCosts())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tree8.Root.Children); got != 8 {
		t.Fatalf("default iterations = %d, want 8", got)
	}
}

func TestTrianglesCountsKnownGraphs(t *testing.T) {
	// A 4-clique has C(4,3) = 4 triangles.
	clique := fromPairs(4, [][2]int32{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
	clique.Name = "k4"
	d, tree, count, err := Triangles(clique, Costs{EdgesPerTask: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkKernel(t, "triangles-k4", d, tree)
	if count != 4 {
		t.Fatalf("K4 triangles = %d, want 4", count)
	}
	// A lattice is bipartite-free of triangles.
	grid := mustNew(t, Config{Family: FamilyGrid, Vertices: 256})
	_, _, count, err = Triangles(grid, tinyCosts())
	if err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Fatalf("grid triangles = %d, want 0", count)
	}
	// Random graphs at this density contain triangles.
	uni := testGraph(t, FamilyUniform)
	dU, treeU, count, err := Triangles(uni, tinyCosts())
	if err != nil {
		t.Fatal(err)
	}
	checkKernel(t, "triangles-uniform", dU, treeU)
	if count <= 0 {
		t.Fatalf("uniform graph has no triangles")
	}
}

func TestKernelTaskNamesCarryKernelPrefixes(t *testing.T) {
	g := testGraph(t, FamilyUniform)
	d, _, err := BFS(g, 0, tinyCosts())
	if err != nil {
		t.Fatal(err)
	}
	var explore int
	for _, task := range d.Tasks() {
		if strings.HasPrefix(task.Name, "bfs-l") {
			explore++
			if task.Refs == nil || task.Refs.Len() == 0 {
				t.Fatalf("explore task %s has no references", task.Name)
			}
		}
	}
	if explore < 2 {
		t.Fatalf("bfs explore tasks = %d", explore)
	}
}
