package graph

import (
	"fmt"
	"testing"

	"cmpsched/internal/dag"
	"cmpsched/internal/taskgroup"
)

// Small adversarial graphs for the reference-implementation tests: extreme
// degree skew (star), maximal diameter (path), maximal density (clique), a
// disconnected union with isolated vertices, and a duplicate-heavy edge list
// the generator pipeline must deduplicate.
func adversarialGraphs() map[string]*CSR {
	star := fromPairs(9, [][2]int32{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}, {0, 6}, {0, 7}, {0, 8}})
	star.Name = "star-9"

	path := fromPairs(12, [][2]int32{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 8}, {8, 9}, {9, 10}, {10, 11},
	})
	path.Name = "path-12"

	var cliquePairs [][2]int32
	for i := int32(0); i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			cliquePairs = append(cliquePairs, [2]int32{i, j})
		}
	}
	clique := fromPairs(6, cliquePairs)
	clique.Name = "clique-6"

	// Two components (a triangle and a 4-cycle) plus two isolated vertices.
	disc := fromPairs(9, [][2]int32{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 6}, {6, 3}})
	disc.Name = "disconnected-9"

	// Duplicate edges (and reversed duplicates) collapse to a self-loop-free
	// simple triangle plus a pendant.
	dup := fromPairs(4, [][2]int32{{0, 1}, {1, 0}, {0, 1}, {1, 2}, {2, 0}, {2, 1}, {2, 3}, {3, 2}})
	dup.Name = "duplicates-4"

	return map[string]*CSR{"star": star, "path": path, "clique": clique, "disconnected": disc, "duplicates": dup}
}

// refComponents labels components with a serial union-find.
func refComponents(g *CSR) []int64 {
	parent := make([]int64, g.N)
	for i := range parent {
		parent[i] = int64(i)
	}
	var find func(x int64) int64
	find = func(x int64) int64 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for v := int64(0); v < g.N; v++ {
		for _, w := range g.Adj(v) {
			a, b := find(v), find(int64(w))
			if a != b {
				parent[b] = a
			}
		}
	}
	out := make([]int64, g.N)
	for v := int64(0); v < g.N; v++ {
		out[v] = find(v)
	}
	return out
}

// samePartition reports whether two labellings induce the same partition.
func samePartition(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	fwd := make(map[int64]int64)
	rev := make(map[int64]int64)
	for i := range a {
		if x, ok := fwd[a[i]]; ok && x != b[i] {
			return false
		}
		if x, ok := rev[b[i]]; ok && x != a[i] {
			return false
		}
		fwd[a[i]] = b[i]
		rev[b[i]] = a[i]
	}
	return true
}

// refCores computes core numbers with the textbook serial peeler: repeatedly
// remove a minimum-degree vertex; its coreness is the running maximum of the
// minimum degree seen.
func refCores(g *CSR) []int64 {
	deg := make([]int64, g.N)
	alive := make([]bool, g.N)
	for v := int64(0); v < g.N; v++ {
		deg[v] = g.Degree(v)
		alive[v] = true
	}
	core := make([]int64, g.N)
	var k int64
	for removed := int64(0); removed < g.N; removed++ {
		best := int64(-1)
		for v := int64(0); v < g.N; v++ {
			if alive[v] && (best == -1 || deg[v] < deg[best]) {
				best = v
			}
		}
		if deg[best] > k {
			k = deg[best]
		}
		core[best] = k
		alive[best] = false
		for _, w := range g.Adj(best) {
			if alive[w] {
				deg[w]--
			}
		}
	}
	return core
}

// checkKernelAny runs the full structural checks on generated graphs and a
// relaxed variant (no parallelism assertion — a handful of vertices can
// legitimately serialize) on the tiny adversarial graphs.
func checkKernelAny(t *testing.T, name string, g *CSR, d *dag.DAG, tree *taskgroup.Tree) {
	t.Helper()
	if g.N >= 1<<8 {
		checkKernel(t, name, d, tree)
		return
	}
	checkKernelRelaxed(t, name, d, tree)
}

// checkKernelRelaxed is checkKernel without the parallelism assertion, for
// DAGs that legitimately serialize (tiny graphs, or wavefront peeling on the
// grid where every cascade frontier fits in a single chunk).
func checkKernelRelaxed(t *testing.T, name string, d *dag.DAG, tree *taskgroup.Tree) {
	t.Helper()
	if err := d.Validate(); err != nil {
		t.Fatalf("%s: invalid DAG: %v", name, err)
	}
	if _, err := d.TopologicalCheck(); err != nil {
		t.Fatalf("%s: cyclic DAG: %v", name, err)
	}
	if d.TotalInstrs() <= 0 || d.TotalRefs() <= 0 {
		t.Fatalf("%s: DAG has no work", name)
	}
	if tree == nil || tree.Root.First != 0 || int(tree.Root.Last) != d.NumTasks()-1 {
		t.Fatalf("%s: group tree does not cover the DAG", name)
	}
}

func testGraphs(t *testing.T) map[string]*CSR {
	t.Helper()
	gs := adversarialGraphs()
	for _, family := range Families() {
		gs["gen-"+family] = testGraph(t, family)
	}
	return gs
}

func TestConnectivityMatchesUnionFind(t *testing.T) {
	for name, g := range testGraphs(t) {
		d, tree, labels, err := Connectivity(g, 7, tinyCosts())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkKernelAny(t, "connectivity-"+name, g, d, tree)
		if want := refComponents(g); !samePartition(labels, want) {
			t.Errorf("%s: connectivity labelling does not match union-find", name)
		}
	}
}

func TestConnectivityDeterministic(t *testing.T) {
	g := testGraph(t, FamilyRMAT)
	d1, _, l1, err := Connectivity(g, 5, tinyCosts())
	if err != nil {
		t.Fatal(err)
	}
	d2, _, l2, err := Connectivity(g, 5, tinyCosts())
	if err != nil {
		t.Fatal(err)
	}
	if d1.NumTasks() != d2.NumTasks() {
		t.Fatalf("task counts differ: %d vs %d", d1.NumTasks(), d2.NumTasks())
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatalf("labels differ at %d", i)
		}
	}
}

func TestKCoreMatchesReference(t *testing.T) {
	for name, g := range testGraphs(t) {
		d, tree, core, err := KCore(g, tinyCosts())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if name == "gen-grid" {
			// The 2D grid peels as a diagonal wavefront whose frontiers all
			// fit in one chunk at test sizes, so this DAG is a chain.
			checkKernelRelaxed(t, "kcore-"+name, d, tree)
		} else {
			checkKernelAny(t, "kcore-"+name, g, d, tree)
		}
		want := refCores(g)
		for v := range core {
			if core[v] != want[v] {
				t.Fatalf("%s: core[%d] = %d, want %d", name, v, core[v], want[v])
			}
		}
	}
}

func TestKCoreKnownValues(t *testing.T) {
	gs := adversarialGraphs()
	// Every clique-6 vertex has coreness 5; every star leaf (and hence the
	// center) peels at 1; path vertices all have coreness 1.
	for v, c := range mustKCore(t, gs["clique"]) {
		if c != 5 {
			t.Errorf("clique core[%d] = %d, want 5", v, c)
		}
	}
	for v, c := range mustKCore(t, gs["star"]) {
		if c != 1 {
			t.Errorf("star core[%d] = %d, want 1", v, c)
		}
	}
}

func mustKCore(t *testing.T, g *CSR) []int64 {
	t.Helper()
	_, _, core, err := KCore(g, tinyCosts())
	if err != nil {
		t.Fatal(err)
	}
	return core
}

func TestMISIsIndependentAndMaximal(t *testing.T) {
	for name, g := range testGraphs(t) {
		d, tree, in, err := MIS(g, 11, tinyCosts())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkKernelAny(t, "mis-"+name, g, d, tree)
		for v := int64(0); v < g.N; v++ {
			if in[v] {
				for _, w := range g.Adj(v) {
					if in[w] {
						t.Fatalf("%s: adjacent vertices %d and %d both in MIS", name, v, w)
					}
				}
				continue
			}
			covered := false
			for _, w := range g.Adj(v) {
				if in[w] {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("%s: vertex %d outside the MIS has no MIS neighbour", name, v)
			}
		}
	}
}

func TestMaximalMatchingIsValidAndMaximal(t *testing.T) {
	for name, g := range testGraphs(t) {
		d, tree, match, err := MaximalMatching(g, 13, tinyCosts())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkKernelAny(t, "matching-"+name, g, d, tree)
		for v := int64(0); v < g.N; v++ {
			w := match[v]
			if w == -1 {
				continue
			}
			if w < 0 || w >= g.N || w == v {
				t.Fatalf("%s: match[%d] = %d out of range", name, v, w)
			}
			if match[w] != v {
				t.Fatalf("%s: match[%d] = %d but match[%d] = %d", name, v, w, w, match[w])
			}
			adjacent := false
			for _, x := range g.Adj(v) {
				if int64(x) == w {
					adjacent = true
					break
				}
			}
			if !adjacent {
				t.Fatalf("%s: matched pair (%d, %d) is not an edge", name, v, w)
			}
		}
		// Maximality: no edge has both endpoints unmatched.
		for v := int64(0); v < g.N; v++ {
			if match[v] != -1 {
				continue
			}
			for _, w := range g.Adj(v) {
				if match[w] == -1 {
					t.Fatalf("%s: edge (%d, %d) has both endpoints unmatched", name, v, w)
				}
			}
		}
	}
}

func TestNewKernelsOnCompressedMatchHostResults(t *testing.T) {
	// Host-side results must be representation-independent too, not just the
	// traces (the differential suite covers those).
	for _, family := range Families() {
		g := testGraph(t, family)
		cg, err := Compress(g)
		if err != nil {
			t.Fatal(err)
		}
		_, _, lf, err := Connectivity(g, 7, tinyCosts())
		if err != nil {
			t.Fatal(err)
		}
		_, _, lc, err := Connectivity(cg, 7, tinyCosts())
		if err != nil {
			t.Fatal(err)
		}
		for i := range lf {
			if lf[i] != lc[i] {
				t.Fatalf("%s: connectivity labels diverge at %d", family, i)
			}
		}
		_, _, kf, err := KCore(g, tinyCosts())
		if err != nil {
			t.Fatal(err)
		}
		_, _, kc, err := KCore(cg, tinyCosts())
		if err != nil {
			t.Fatal(err)
		}
		for i := range kf {
			if kf[i] != kc[i] {
				t.Fatalf("%s: core numbers diverge at %d", family, i)
			}
		}
	}
}

func TestNewKernelMetricsRecorded(t *testing.T) {
	g := testGraph(t, FamilyUniform)
	d, _, _, err := Connectivity(g, 7, tinyCosts())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"conn.levels", "conn.rounds", "conn.components"} {
		if _, ok := d.Metrics()[m]; !ok {
			t.Errorf("connectivity DAG missing metric %q (have %v)", m, d.Metrics())
		}
	}
	d, _, _, err = KCore(g, tinyCosts())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Metrics()["kcore.max_core"]; !ok {
		t.Errorf("kcore DAG missing kcore.max_core")
	}
}

func TestConnectivityComponentCounts(t *testing.T) {
	gs := adversarialGraphs()
	for name, wantComponents := range map[string]int{
		"star": 1, "path": 1, "clique": 1, "disconnected": 4, "duplicates": 1,
	} {
		_, _, labels, err := Connectivity(gs[name], 3, tinyCosts())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		distinct := make(map[int64]bool)
		for _, l := range labels {
			distinct[l] = true
		}
		if len(distinct) != wantComponents {
			t.Errorf("%s: %d components, want %d", name, len(distinct), wantComponents)
		}
	}
}

func ExampleConnectivity() {
	g := fromPairs(5, [][2]int32{{0, 1}, {1, 2}, {3, 4}})
	g.Name = "example"
	_, _, labels, _ := Connectivity(g, 1, Costs{})
	fmt.Println(samePartition(labels, []int64{0, 0, 0, 1, 1}))
	// Output: true
}
