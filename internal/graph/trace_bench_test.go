package graph

import "testing"

// Generator-side micro-benchmarks for the trace accumulator: touch is the
// per-edge cost of every kernel's host walk, span the per-region cost of the
// init/reduce tasks.  Both sit on the hoisted line-shift arithmetic (one
// shift per touch instead of two divisions), and gen on the interning store,
// so these pin the DAG-build side of the trace-memoization work; the
// simulate-side win is tracked by the facade's BenchmarkSimulate* suite.

func BenchmarkTraceTouch(b *testing.B) {
	tr := newTrace(Costs{}.withDefaults())
	// A scatter over 4096 lines with every 4th touch a write: roughly the
	// shape of a BFS explore task's distance-vector gathers.
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.reset()
		for j := 0; j < 4096; j++ {
			addr := uint64(j*2654435761) % (4096 * 128)
			tr.touch(addr, j%4 == 0, 8)
		}
	}
}

func BenchmarkTraceSpan(b *testing.B) {
	tr := newTrace(Costs{}.withDefaults())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.reset()
		tr.span(0, 4096*128, true, 1)
	}
}

// BenchmarkTraceGenInterned measures the full accumulate-and-intern cycle
// with every stream identical — the steady state of a kernel emitting
// repeated chunk shapes, where gen is a fingerprint plus one arena lookup.
func BenchmarkTraceGenInterned(b *testing.B) {
	tr := newTrace(Costs{}.withDefaults())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.reset()
		for j := 0; j < 256; j++ {
			tr.touch(uint64(j)*128, false, 4)
		}
		if g := tr.gen(100); g.Len() == 0 {
			b.Fatal("empty generator")
		}
	}
}

// BenchmarkBuildPageRankTrace builds the full PageRank DAG — the kernel with
// the heaviest per-edge trace traffic and real intra-build stream sharing
// (parity addressing makes iterations i and i+2 byte-identical).
func BenchmarkBuildPageRankTrace(b *testing.B) {
	g, err := New(Config{Family: FamilyRMAT, Vertices: 1 << 12, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := PageRank(g, 4, Costs{}); err != nil {
			b.Fatal(err)
		}
	}
}
