// Package config encodes the CMP configurations evaluated in the paper:
// Table 1 (parameters common to all configurations), Table 2 (default,
// scaling-technology configurations for 1–32 cores) and Table 3 (the 45 nm
// single-technology design space for 1–26 cores).  It also provides the
// down-scaling rule used to keep simulations laptop-sized while preserving
// the paper's capacity ratios, and parameter-sweep helpers for the
// sensitivity studies (Figures 4 and 5).
package config

import (
	"fmt"
	"strings"

	"cmpsched/internal/cache"
	"cmpsched/internal/memsys"
)

// Byte-size constants.
const (
	KB int64 = 1 << 10
	MB int64 = 1 << 20
)

// DefaultScale is the factor by which cache capacities and workload inputs
// are divided in the repository's default experiment runs.  Scaling both by
// the same factor preserves the input-to-cache and working-set-to-cache
// ratios that drive the paper's results while keeping traces small enough to
// simulate in seconds.
const DefaultScale int64 = 32

// Common holds the parameters shared by every configuration (Table 1).
type Common struct {
	// L1SizeBytes is the per-core private L1 capacity (64 KB).
	L1SizeBytes int64
	// LineBytes is the cache-line size for both levels (128 B).
	LineBytes int64
	// L1Assoc is the L1 associativity (4).
	L1Assoc int
	// L1HitLatency is the L1 hit latency in cycles (1).
	L1HitLatency int64
	// MemLatency is the main-memory latency in cycles (300).
	MemLatency int64
	// MemServiceInterval is the off-chip service rate in cycles per line
	// transfer (30).
	MemServiceInterval int64
}

// CommonParams returns Table 1.
func CommonParams() Common {
	return Common{
		L1SizeBytes:        64 * KB,
		LineBytes:          128,
		L1Assoc:            4,
		L1HitLatency:       1,
		MemLatency:         300,
		MemServiceInterval: 30,
	}
}

// CMP is a complete machine configuration for the simulator.
type CMP struct {
	// Name identifies the configuration, e.g. "default-8core" or
	// "45nm-18core".
	Name string
	// Cores is the number of processing cores P.
	Cores int
	// TechnologyNM is the process technology in nanometres.
	TechnologyNM int
	// L1 is the per-core private L1 configuration.
	L1 cache.Config
	// L2 is the total on-chip L2 configuration.  Topology decides how that
	// capacity is organised (one shared cache, per-core private slices, or
	// clustered slices).
	L2 cache.Config
	// Topology partitions the L2 among the cores.  The zero value is the
	// shared topology — the paper's machine — so the configuration tables
	// behave exactly as before the topology layer existed.  Its canonical
	// string form ("shared", "private", "clustered:<k>") is part of the
	// configuration's fingerprint, so sweep content-address keys always
	// distinguish topologies.
	Topology cache.Topology
	// Memory is the off-chip memory configuration.
	Memory memsys.Config
	// Scale records the factor by which capacities were divided relative
	// to the paper (1 = full size).
	Scale int64
}

// Validate checks the configuration for consistency.
func (c CMP) Validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("config: %s: cores must be positive, got %d", c.Name, c.Cores)
	}
	if err := c.L1.Validate(); err != nil {
		return fmt.Errorf("config: %s: L1: %w", c.Name, err)
	}
	if err := c.L2.Validate(); err != nil {
		return fmt.Errorf("config: %s: L2: %w", c.Name, err)
	}
	if err := c.Topology.Validate(c.Cores); err != nil {
		return fmt.Errorf("config: %s: topology: %w", c.Name, err)
	}
	if err := c.Topology.SliceConfig(c.L2, c.Cores).Validate(); err != nil {
		return fmt.Errorf("config: %s: L2 slice (%s): %w", c.Name, c.Topology, err)
	}
	if err := c.Memory.Validate(); err != nil {
		return fmt.Errorf("config: %s: memory: %w", c.Name, err)
	}
	return nil
}

// Scaled returns a copy of the configuration with L1 and L2 capacities
// divided by factor (minimum one set each). Latencies are unchanged: the
// paper's latency parameters are architectural, not capacity-derived, and
// keeping them fixed preserves the on-chip/off-chip gap that matters.
func (c CMP) Scaled(factor int64) CMP {
	if factor <= 1 {
		return c
	}
	out := c
	out.Name = fmt.Sprintf("%s/scale%d", c.Name, factor)
	out.Scale = c.Scale * factor
	out.L1.SizeBytes = maxInt64(c.L1.SizeBytes/factor, c.L1.LineBytes*int64(c.L1.Assoc))
	out.L2.SizeBytes = maxInt64(c.L2.SizeBytes/factor, c.L2.LineBytes*int64(c.L2.Assoc))
	return out
}

// WithTopology returns a copy with the cache topology replaced.  Non-shared
// topologies are recorded in the name (any previous topology suffix is
// replaced, never stacked); selecting the shared topology restores the
// canonical table name.
func (c CMP) WithTopology(t cache.Topology) CMP {
	out := c
	out.Name = strings.TrimSuffix(c.Name, "/"+c.Topology.String())
	out.Topology = t
	if t.Kind != cache.TopologyShared {
		out.Name = fmt.Sprintf("%s/%s", out.Name, t)
	}
	return out
}

// WithL2HitLatency returns a copy with the L2 hit latency replaced; used by
// the Figure 4 sensitivity study (7 vs 19 cycles).
func (c CMP) WithL2HitLatency(cycles int64) CMP {
	out := c
	out.Name = fmt.Sprintf("%s/l2hit%d", c.Name, cycles)
	out.L2.HitLatency = cycles
	return out
}

// WithMemLatency returns a copy with the main-memory latency replaced; used
// by the Figure 5 sensitivity study (100–1100 cycles).
func (c CMP) WithMemLatency(cycles int64) CMP {
	out := c
	out.Name = fmt.Sprintf("%s/mem%d", c.Name, cycles)
	out.Memory.LatencyCycles = cycles
	return out
}

// HierarchyConfig converts the CMP configuration into the cache-hierarchy
// configuration consumed by the simulator.
func (c CMP) HierarchyConfig() cache.HierarchyConfig {
	return cache.HierarchyConfig{
		Cores:    c.Cores,
		L1:       c.L1,
		L2:       c.L2,
		Topology: c.Topology,
	}
}

func newCMP(name string, cores, techNM int, l2Bytes int64, l2Assoc int, l2Hit int64) CMP {
	common := CommonParams()
	return CMP{
		Name:         name,
		Cores:        cores,
		TechnologyNM: techNM,
		Scale:        1,
		L1: cache.Config{
			SizeBytes:  common.L1SizeBytes,
			LineBytes:  common.LineBytes,
			Assoc:      common.L1Assoc,
			HitLatency: common.L1HitLatency,
		},
		L2: cache.Config{
			SizeBytes:  l2Bytes,
			LineBytes:  common.LineBytes,
			Assoc:      l2Assoc,
			HitLatency: l2Hit,
		},
		Memory: memsys.Config{
			LatencyCycles:         common.MemLatency,
			ServiceIntervalCycles: common.MemServiceInterval,
		},
	}
}

// defaultTable is Table 2: the default (scaling-technology) configurations.
var defaultTable = []CMP{
	newCMP("default-1core", 1, 90, 10*MB, 20, 15),
	newCMP("default-2core", 2, 90, 8*MB, 16, 13),
	newCMP("default-4core", 4, 90, 4*MB, 16, 11),
	newCMP("default-8core", 8, 65, 8*MB, 16, 13),
	newCMP("default-16core", 16, 45, 20*MB, 20, 19),
	newCMP("default-32core", 32, 32, 40*MB, 20, 23),
}

// DefaultCores lists the core counts available in Table 2.
func DefaultCores() []int { return []int{1, 2, 4, 8, 16, 32} }

// Default returns the Table 2 configuration with the given core count.
func Default(cores int) (CMP, error) {
	for _, c := range defaultTable {
		if c.Cores == cores {
			return c, nil
		}
	}
	return CMP{}, fmt.Errorf("config: no default configuration with %d cores (have %v)", cores, DefaultCores())
}

// MustDefault is Default but panics on error.
func MustDefault(cores int) CMP {
	c, err := Default(cores)
	if err != nil {
		panic(err)
	}
	return c
}

// Defaults returns all Table 2 configurations in core order.
func Defaults() []CMP {
	out := make([]CMP, len(defaultTable))
	copy(out, defaultTable)
	return out
}

// singleTech45Table is Table 3: the 45 nm single-technology design space.
var singleTech45Table = []CMP{
	newCMP("45nm-1core", 1, 45, 48*MB, 24, 25),
	newCMP("45nm-2core", 2, 45, 44*MB, 22, 25),
	newCMP("45nm-4core", 4, 45, 40*MB, 20, 23),
	newCMP("45nm-6core", 6, 45, 36*MB, 18, 23),
	newCMP("45nm-8core", 8, 45, 32*MB, 16, 21),
	newCMP("45nm-10core", 10, 45, 32*MB, 16, 21),
	newCMP("45nm-12core", 12, 45, 28*MB, 28, 21),
	newCMP("45nm-14core", 14, 45, 24*MB, 24, 19),
	newCMP("45nm-16core", 16, 45, 20*MB, 20, 19),
	newCMP("45nm-18core", 18, 45, 16*MB, 16, 17),
	newCMP("45nm-20core", 20, 45, 12*MB, 24, 15),
	newCMP("45nm-22core", 22, 45, 9*MB, 18, 15),
	newCMP("45nm-24core", 24, 45, 5*MB, 20, 13),
	newCMP("45nm-26core", 26, 45, 1*MB, 16, 7),
}

// SingleTech45Cores lists the core counts available in Table 3.
func SingleTech45Cores() []int {
	return []int{1, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24, 26}
}

// SingleTech45 returns the Table 3 configuration with the given core count.
func SingleTech45(cores int) (CMP, error) {
	for _, c := range singleTech45Table {
		if c.Cores == cores {
			return c, nil
		}
	}
	return CMP{}, fmt.Errorf("config: no 45nm configuration with %d cores (have %v)", cores, SingleTech45Cores())
}

// MustSingleTech45 is SingleTech45 but panics on error.
func MustSingleTech45(cores int) CMP {
	c, err := SingleTech45(cores)
	if err != nil {
		panic(err)
	}
	return c
}

// SingleTech45All returns all Table 3 configurations in core order.
func SingleTech45All() []CMP {
	out := make([]CMP, len(singleTech45Table))
	copy(out, singleTech45Table)
	return out
}

// L2HitLatencySweep returns the L2 hit latencies evaluated in Figure 4.
func L2HitLatencySweep() []int64 { return []int64{7, 19} }

// MemLatencySweep returns the main-memory latencies evaluated in Figure 5.
func MemLatencySweep() []int64 { return []int64{100, 300, 500, 700, 900, 1100} }

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
