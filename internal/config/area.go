package config

// This file contains a simple area model in the spirit of the paper's
// methodology (§4.1): a fixed 240 mm² die, 75% of which is devoted to cores,
// L2 cache and interconnect, 15% of that core-cache area to the
// interconnect, the remainder split between in-order cores and SRAM.  The
// published configuration tables (Tables 2 and 3) are authoritative and are
// encoded verbatim in config.go; the model here exists so that the trade-off
// between core count and cache capacity can be explored beyond the published
// points (e.g. by the hashjoin_design_space example), and is calibrated so
// that its 45 nm predictions bracket Table 3.

// AreaModel captures the area-budget parameters.
type AreaModel struct {
	// DieMM2 is the total die area in mm².
	DieMM2 float64
	// CoreCacheFraction is the fraction of the die devoted to cores,
	// cache and interconnect (0.75 in the paper).
	CoreCacheFraction float64
	// InterconnectFraction is the fraction of the core-cache area used by
	// the interconnect (0.15 in the paper).
	InterconnectFraction float64
	// CoreAreaMM2 maps process technology (nm) to the area of one
	// single-threaded in-order core.
	CoreAreaMM2 map[int]float64
	// CacheMM2PerMB maps process technology (nm) to the SRAM area cost of
	// one megabyte of L2 cache.
	CacheMM2PerMB map[int]float64
}

// DefaultAreaModel returns an area model calibrated against Table 3: at
// 45 nm, 1 core leaves room for roughly 48 MB of L2 and 26 cores leave room
// for roughly 1 MB.
func DefaultAreaModel() AreaModel {
	return AreaModel{
		DieMM2:               240,
		CoreCacheFraction:    0.75,
		InterconnectFraction: 0.15,
		CoreAreaMM2: map[int]float64{
			90: 22.0,
			65: 11.5,
			45: 5.65,
			32: 2.9,
		},
		CacheMM2PerMB: map[int]float64{
			90: 12.0,
			65: 6.1,
			45: 3.05,
			32: 1.55,
		},
	}
}

// UsableAreaMM2 returns the die area available for cores plus cache.
func (m AreaModel) UsableAreaMM2() float64 {
	return m.DieMM2 * m.CoreCacheFraction * (1 - m.InterconnectFraction)
}

// CacheMBFor returns the L2 capacity (in MB) left after placing `cores`
// cores at the given technology node, or 0 when the cores alone exceed the
// budget. The result is a continuous estimate; real designs round to bank
// multiples.
func (m AreaModel) CacheMBFor(techNM, cores int) float64 {
	coreArea, okCore := m.CoreAreaMM2[techNM]
	perMB, okCache := m.CacheMM2PerMB[techNM]
	if !okCore || !okCache || cores < 0 {
		return 0
	}
	remaining := m.UsableAreaMM2() - float64(cores)*coreArea
	if remaining <= 0 {
		return 0
	}
	return remaining / perMB
}

// MaxCores returns the largest core count that still leaves room for at
// least minCacheMB of L2 at the given technology node.
func (m AreaModel) MaxCores(techNM int, minCacheMB float64) int {
	cores := 0
	for m.CacheMBFor(techNM, cores+1) >= minCacheMB {
		cores++
		if cores > 1024 {
			break
		}
	}
	return cores
}
