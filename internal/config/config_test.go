package config

import (
	"fmt"
	"strings"
	"testing"

	"cmpsched/internal/cache"
)

func TestCommonParamsTable1(t *testing.T) {
	c := CommonParams()
	if c.L1SizeBytes != 64*KB || c.LineBytes != 128 || c.L1Assoc != 4 || c.L1HitLatency != 1 {
		t.Fatalf("L1 parameters wrong: %+v", c)
	}
	if c.MemLatency != 300 || c.MemServiceInterval != 30 {
		t.Fatalf("memory parameters wrong: %+v", c)
	}
}

func TestDefaultTable2(t *testing.T) {
	want := []struct {
		cores int
		tech  int
		l2MB  int64
		assoc int
		l2Hit int64
	}{
		{1, 90, 10, 20, 15},
		{2, 90, 8, 16, 13},
		{4, 90, 4, 16, 11},
		{8, 65, 8, 16, 13},
		{16, 45, 20, 20, 19},
		{32, 32, 40, 20, 23},
	}
	if len(DefaultCores()) != len(want) {
		t.Fatalf("DefaultCores length %d", len(DefaultCores()))
	}
	for _, w := range want {
		c, err := Default(w.cores)
		if err != nil {
			t.Fatalf("Default(%d): %v", w.cores, err)
		}
		if c.TechnologyNM != w.tech {
			t.Errorf("%d cores: tech = %d, want %d", w.cores, c.TechnologyNM, w.tech)
		}
		if c.L2.SizeBytes != w.l2MB*MB {
			t.Errorf("%d cores: L2 = %d, want %d MB", w.cores, c.L2.SizeBytes, w.l2MB)
		}
		if c.L2.Assoc != w.assoc {
			t.Errorf("%d cores: assoc = %d, want %d", w.cores, c.L2.Assoc, w.assoc)
		}
		if c.L2.HitLatency != w.l2Hit {
			t.Errorf("%d cores: L2 hit = %d, want %d", w.cores, c.L2.HitLatency, w.l2Hit)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("%d cores: Validate: %v", w.cores, err)
		}
	}
	if _, err := Default(3); err == nil {
		t.Fatalf("Default(3) should fail")
	}
}

func TestSingleTech45Table3(t *testing.T) {
	cores := SingleTech45Cores()
	l2MB := []int64{48, 44, 40, 36, 32, 32, 28, 24, 20, 16, 12, 9, 5, 1}
	assoc := []int{24, 22, 20, 18, 16, 16, 28, 24, 20, 16, 24, 18, 20, 16}
	hit := []int64{25, 25, 23, 23, 21, 21, 21, 19, 19, 17, 15, 15, 13, 7}
	if len(cores) != 14 {
		t.Fatalf("expected 14 configurations, got %d", len(cores))
	}
	for i, p := range cores {
		c, err := SingleTech45(p)
		if err != nil {
			t.Fatalf("SingleTech45(%d): %v", p, err)
		}
		if c.TechnologyNM != 45 {
			t.Errorf("%d cores: tech %d", p, c.TechnologyNM)
		}
		if c.L2.SizeBytes != l2MB[i]*MB {
			t.Errorf("%d cores: L2 %d, want %d MB", p, c.L2.SizeBytes, l2MB[i])
		}
		if c.L2.Assoc != assoc[i] {
			t.Errorf("%d cores: assoc %d, want %d", p, c.L2.Assoc, assoc[i])
		}
		if c.L2.HitLatency != hit[i] {
			t.Errorf("%d cores: hit %d, want %d", p, c.L2.HitLatency, hit[i])
		}
		if err := c.Validate(); err != nil {
			t.Errorf("%d cores: Validate: %v", p, err)
		}
	}
	if _, err := SingleTech45(3); err == nil {
		t.Fatalf("SingleTech45(3) should fail")
	}
	if len(SingleTech45All()) != 14 || len(Defaults()) != 6 {
		t.Fatalf("All accessors wrong lengths")
	}
}

func TestL2CacheShrinksAsCoresGrow45nm(t *testing.T) {
	// The single-technology trade-off: more cores, less cache.
	prev := int64(1 << 62)
	for _, p := range SingleTech45Cores() {
		c := MustSingleTech45(p)
		if c.L2.SizeBytes > prev {
			t.Fatalf("L2 size grew from %d to %d at %d cores", prev, c.L2.SizeBytes, p)
		}
		prev = c.L2.SizeBytes
	}
}

func TestScaled(t *testing.T) {
	c := MustDefault(8)
	s := c.Scaled(32)
	if s.L2.SizeBytes != c.L2.SizeBytes/32 {
		t.Fatalf("scaled L2 = %d", s.L2.SizeBytes)
	}
	if s.L1.SizeBytes != c.L1.SizeBytes/32 {
		t.Fatalf("scaled L1 = %d", s.L1.SizeBytes)
	}
	if s.Scale != 32 {
		t.Fatalf("Scale = %d", s.Scale)
	}
	if s.L2.HitLatency != c.L2.HitLatency || s.Memory.LatencyCycles != c.Memory.LatencyCycles {
		t.Fatalf("latencies must not change under scaling")
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("scaled config invalid: %v", err)
	}
	// Scaling by 1 or less is the identity.
	if got := c.Scaled(1); got.L2.SizeBytes != c.L2.SizeBytes || got.Name != c.Name {
		t.Fatalf("Scaled(1) should be identity")
	}
	// Extreme scaling clamps to at least one set.
	tiny := c.Scaled(1 << 30)
	if err := tiny.Validate(); err != nil {
		t.Fatalf("extreme scaling produced invalid config: %v", err)
	}
}

func TestWithOverrides(t *testing.T) {
	c := MustDefault(16)
	h := c.WithL2HitLatency(7)
	if h.L2.HitLatency != 7 || c.L2.HitLatency != 19 {
		t.Fatalf("WithL2HitLatency mutated original or failed")
	}
	m := c.WithMemLatency(1100)
	if m.Memory.LatencyCycles != 1100 || c.Memory.LatencyCycles != 300 {
		t.Fatalf("WithMemLatency mutated original or failed")
	}
}

func TestHierarchyConfig(t *testing.T) {
	c := MustDefault(4)
	h := c.HierarchyConfig()
	if h.Cores != 4 || h.L1 != c.L1 || h.L2 != c.L2 {
		t.Fatalf("HierarchyConfig mismatch: %+v", h)
	}
}

func TestSweeps(t *testing.T) {
	if got := L2HitLatencySweep(); len(got) != 2 || got[0] != 7 || got[1] != 19 {
		t.Fatalf("L2HitLatencySweep = %v", got)
	}
	mem := MemLatencySweep()
	if len(mem) != 6 || mem[0] != 100 || mem[len(mem)-1] != 1100 {
		t.Fatalf("MemLatencySweep = %v", mem)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	c := MustDefault(1)
	c.Cores = 0
	if err := c.Validate(); err == nil {
		t.Fatalf("accepted zero cores")
	}
	c = MustDefault(1)
	c.L2.Assoc = 0
	if err := c.Validate(); err == nil {
		t.Fatalf("accepted invalid L2")
	}
	c = MustDefault(1)
	c.Memory.LatencyCycles = -5
	if err := c.Validate(); err == nil {
		t.Fatalf("accepted invalid memory")
	}
}

func TestMustPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("MustDefault(7) should panic")
		}
	}()
	MustDefault(7)
}

func TestWithTopology(t *testing.T) {
	base := MustDefault(8)
	if base.Topology != cache.Shared() {
		t.Fatalf("table configurations must default to the shared topology, got %v", base.Topology)
	}

	priv := base.WithTopology(cache.Private())
	if priv.Topology != cache.Private() {
		t.Errorf("WithTopology did not set the topology")
	}
	if priv.Name != "default-8core/private" {
		t.Errorf("private name = %q", priv.Name)
	}
	if priv.L2 != base.L2 || priv.Cores != base.Cores {
		t.Errorf("WithTopology changed unrelated fields")
	}
	if err := priv.Validate(); err != nil {
		t.Errorf("private config invalid: %v", err)
	}

	// Re-selecting shared keeps the canonical name.
	if got := base.WithTopology(cache.Shared()); got.Name != base.Name {
		t.Errorf("shared topology renamed the config to %q", got.Name)
	}

	// Re-applying a topology replaces the name suffix, never stacks or
	// strands it.
	if got := priv.WithTopology(cache.Shared()); got.Name != base.Name || got.Topology != cache.Shared() {
		t.Errorf("shared-after-private = %q (%v), want %q", got.Name, got.Topology, base.Name)
	}
	if got := priv.WithTopology(cache.Clustered(2)); got.Name != base.Name+"/clustered:2" {
		t.Errorf("clustered-after-private name = %q", got.Name)
	}

	// The canonical topology encoding is part of the configuration
	// fingerprint used by sweep content-address keys.
	for _, topo := range []cache.Topology{cache.Shared(), cache.Private(), cache.Clustered(4)} {
		fp := fmt.Sprintf("%+v", base.WithTopology(topo))
		if !strings.Contains(fp, topo.String()) {
			t.Errorf("fingerprint for %v does not contain %q: %s", topo, topo.String(), fp)
		}
	}

	// HierarchyConfig threads the topology through to the cache layer.
	if hc := priv.HierarchyConfig(); hc.Topology != cache.Private() {
		t.Errorf("HierarchyConfig dropped the topology: %+v", hc)
	}

	// Validate rejects topologies whose slices would be invalid.
	bad := base.WithTopology(cache.Clustered(0))
	if err := bad.Validate(); err == nil {
		t.Errorf("accepted cluster size 0")
	}
}

func TestAreaModel(t *testing.T) {
	m := DefaultAreaModel()
	if m.UsableAreaMM2() <= 0 || m.UsableAreaMM2() >= m.DieMM2 {
		t.Fatalf("usable area %f out of range", m.UsableAreaMM2())
	}
	// More cores always means less cache at a fixed technology.
	prev := m.CacheMBFor(45, 1)
	for p := 2; p <= 26; p++ {
		cur := m.CacheMBFor(45, p)
		if cur > prev {
			t.Fatalf("cache grew with cores at p=%d", p)
		}
		prev = cur
	}
	// The calibration should bracket Table 3's endpoints loosely.
	if got := m.CacheMBFor(45, 1); got < 30 || got > 70 {
		t.Fatalf("45nm 1-core cache estimate %f MB implausible vs Table 3 (48 MB)", got)
	}
	if got := m.CacheMBFor(45, 26); got < 0 || got > 8 {
		t.Fatalf("45nm 26-core cache estimate %f MB implausible vs Table 3 (1 MB)", got)
	}
	// Unknown technology yields zero.
	if m.CacheMBFor(22, 4) != 0 {
		t.Fatalf("unknown technology should yield 0")
	}
	if m.MaxCores(45, 1.0) < 20 {
		t.Fatalf("MaxCores(45nm, 1MB) = %d, expected >= 20", m.MaxCores(45, 1.0))
	}
	if m.MaxCores(22, 1.0) != 0 {
		t.Fatalf("MaxCores for unknown tech should be 0")
	}
}
