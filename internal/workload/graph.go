package workload

import (
	"fmt"

	"cmpsched/internal/dag"
	"cmpsched/internal/graph"
	"cmpsched/internal/taskgroup"
)

// GraphShape selects the input graph and the trace granularity shared by the
// irregular graph kernels (BFS, SSSP, PageRank, triangle counting,
// connectivity, k-core, MIS, maximal matching).  These
// are the "graph-shape parameters" of the workloads: unlike the regular
// benchmarks, the reference streams depend on the generated adjacency
// structure, not only on the input size.
type GraphShape struct {
	// Family is the generator family: "uniform", "grid" or "rmat"
	// (default "uniform").
	Family string
	// Vertices is the number of vertices (default kernel-specific; the
	// kernels' defaults are sized so a full default-table sweep finishes in
	// minutes, like the regular benchmarks).
	Vertices int64
	// AvgDegree is the target average degree (default 8).
	AvgDegree int64
	// Seed selects the pseudo-random edge set (default 1).
	Seed uint64
	// LineBytes is the granularity of emitted references (default 128).
	LineBytes int64
	// EdgesPerTask is the per-task edge-traversal budget, the
	// task-granularity knob (default 4096).
	EdgesPerTask int64
	// Representation selects the host representation the kernels walk:
	// graph.ReprFlat or graph.ReprCompressed (default flat).  The choice
	// never changes the emitted DAG — kernels address the simulated flat
	// CSR layout either way (the differential suite in internal/graph pins
	// this) — it only changes host memory and build time, which is what
	// lets RMAT at 2^22+ vertices fit.
	Representation string
}

func (s GraphShape) withDefaults(vertices int64) GraphShape {
	if s.Family == "" {
		s.Family = graph.FamilyUniform
	}
	if s.Representation == "" {
		s.Representation = graph.ReprFlat
	}
	if s.Vertices == 0 {
		s.Vertices = vertices
	}
	if s.AvgDegree == 0 {
		s.AvgDegree = 8
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.LineBytes == 0 {
		s.LineBytes = DefaultLineBytes
	}
	if s.EdgesPerTask == 0 {
		s.EdgesPerTask = 4096
	}
	return s
}

// build materialises the graph for the shape in the selected representation.
func (s GraphShape) build() (graph.Graph, error) {
	g, err := graph.New(graph.Config{
		Family:    s.Family,
		Vertices:  s.Vertices,
		AvgDegree: s.AvgDegree,
		Seed:      s.Seed,
	})
	if err != nil {
		return nil, err
	}
	switch s.Representation {
	case "", graph.ReprFlat:
		return g, nil
	case graph.ReprCompressed:
		return graph.Compress(g)
	default:
		return nil, fmt.Errorf("workload: unknown graph representation %q (want %q or %q)",
			s.Representation, graph.ReprFlat, graph.ReprCompressed)
	}
}

// costs maps the shape to kernel cost parameters.
func (s GraphShape) costs() graph.Costs {
	return graph.Costs{LineBytes: s.LineBytes, EdgesPerTask: s.EdgesPerTask}
}

// BFSConfig parameterises the level-synchronous breadth-first search
// benchmark.
type BFSConfig struct {
	Shape GraphShape
	// Source is the search root (default 0).
	Source int64
}

// BFSWorkload builds BFS DAGs.
type BFSWorkload struct{ cfg BFSConfig }

// NewBFS returns a BFS workload; zero config fields take defaults.
func NewBFS(cfg BFSConfig) *BFSWorkload {
	cfg.Shape = cfg.Shape.withDefaults(1 << 15)
	return &BFSWorkload{cfg: cfg}
}

// Name implements Workload.
func (w *BFSWorkload) Name() string { return "bfs" }

// Config returns the effective (default-filled) configuration.
func (w *BFSWorkload) Config() BFSConfig { return w.cfg }

// Build implements Workload.
func (w *BFSWorkload) Build() (*dag.DAG, *taskgroup.Tree, error) {
	g, err := w.cfg.Shape.build()
	if err != nil {
		return nil, nil, err
	}
	return graph.BFS(g, w.cfg.Source, w.cfg.Shape.costs())
}

// SSSPConfig parameterises the round-based Bellman-Ford single-source
// shortest-paths benchmark.
type SSSPConfig struct {
	Shape GraphShape
	// Source is the search root (default 0).
	Source int64
	// MaxWeight bounds the deterministic per-edge weights (default 16).
	MaxWeight int64
	// MaxRounds caps the relaxation rounds (default 64; 0 keeps the
	// default — use a negative value to run to convergence).
	MaxRounds int64
}

// SSSPWorkload builds Bellman-Ford DAGs.
type SSSPWorkload struct{ cfg SSSPConfig }

// NewSSSP returns an SSSP workload; zero config fields take defaults.
func NewSSSP(cfg SSSPConfig) *SSSPWorkload {
	cfg.Shape = cfg.Shape.withDefaults(1 << 15)
	if cfg.MaxWeight == 0 {
		cfg.MaxWeight = 16
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = 64
	}
	return &SSSPWorkload{cfg: cfg}
}

// Name implements Workload.
func (w *SSSPWorkload) Name() string { return "sssp" }

// Config returns the effective (default-filled) configuration.
func (w *SSSPWorkload) Config() SSSPConfig { return w.cfg }

// Build implements Workload.
func (w *SSSPWorkload) Build() (*dag.DAG, *taskgroup.Tree, error) {
	g, err := w.cfg.Shape.build()
	if err != nil {
		return nil, nil, err
	}
	rounds := w.cfg.MaxRounds
	if rounds < 0 {
		rounds = 0 // run to convergence
	}
	return graph.BellmanFord(g, w.cfg.Source, w.cfg.Shape.Seed, w.cfg.MaxWeight, rounds, w.cfg.Shape.costs())
}

// PageRankConfig parameterises the PageRank power-iteration benchmark.
type PageRankConfig struct {
	Shape GraphShape
	// Iterations is the number of power-iteration sweeps (default 8).
	Iterations int64
}

// PageRankWorkload builds PageRank DAGs.
type PageRankWorkload struct{ cfg PageRankConfig }

// NewPageRank returns a PageRank workload; zero config fields take defaults.
func NewPageRank(cfg PageRankConfig) *PageRankWorkload {
	cfg.Shape = cfg.Shape.withDefaults(1 << 13)
	if cfg.Iterations == 0 {
		cfg.Iterations = 8
	}
	return &PageRankWorkload{cfg: cfg}
}

// Name implements Workload.
func (w *PageRankWorkload) Name() string { return "pagerank" }

// Config returns the effective (default-filled) configuration.
func (w *PageRankWorkload) Config() PageRankConfig { return w.cfg }

// Build implements Workload.
func (w *PageRankWorkload) Build() (*dag.DAG, *taskgroup.Tree, error) {
	g, err := w.cfg.Shape.build()
	if err != nil {
		return nil, nil, err
	}
	return graph.PageRank(g, w.cfg.Iterations, w.cfg.Shape.costs())
}

// TrianglesConfig parameterises the triangle-counting benchmark.
type TrianglesConfig struct {
	Shape GraphShape
}

// TrianglesWorkload builds triangle-counting DAGs.
type TrianglesWorkload struct{ cfg TrianglesConfig }

// NewTriangles returns a triangle-counting workload; zero config fields take
// defaults.
func NewTriangles(cfg TrianglesConfig) *TrianglesWorkload {
	cfg.Shape = cfg.Shape.withDefaults(1 << 14)
	return &TrianglesWorkload{cfg: cfg}
}

// Name implements Workload.
func (w *TrianglesWorkload) Name() string { return "triangles" }

// Config returns the effective (default-filled) configuration.
func (w *TrianglesWorkload) Config() TrianglesConfig { return w.cfg }

// Build implements Workload.
func (w *TrianglesWorkload) Build() (*dag.DAG, *taskgroup.Tree, error) {
	g, err := w.cfg.Shape.build()
	if err != nil {
		return nil, nil, err
	}
	d, tree, _, err := graph.Triangles(g, w.cfg.Shape.costs())
	return d, tree, err
}

// ConnectivityConfig parameterises the low-diameter-decomposition
// connected-components benchmark.
type ConnectivityConfig struct {
	Shape GraphShape
}

// ConnectivityWorkload builds LDD connectivity DAGs.
type ConnectivityWorkload struct{ cfg ConnectivityConfig }

// NewConnectivity returns a connectivity workload; zero config fields take
// defaults.
func NewConnectivity(cfg ConnectivityConfig) *ConnectivityWorkload {
	cfg.Shape = cfg.Shape.withDefaults(1 << 15)
	return &ConnectivityWorkload{cfg: cfg}
}

// Name implements Workload.
func (w *ConnectivityWorkload) Name() string { return "connectivity" }

// Config returns the effective (default-filled) configuration.
func (w *ConnectivityWorkload) Config() ConnectivityConfig { return w.cfg }

// Build implements Workload.
func (w *ConnectivityWorkload) Build() (*dag.DAG, *taskgroup.Tree, error) {
	g, err := w.cfg.Shape.build()
	if err != nil {
		return nil, nil, err
	}
	d, tree, _, err := graph.Connectivity(g, w.cfg.Shape.Seed, w.cfg.Shape.costs())
	return d, tree, err
}

// KCoreConfig parameterises the bucketed-peeling k-core benchmark.
type KCoreConfig struct {
	Shape GraphShape
}

// KCoreWorkload builds k-core peeling DAGs.
type KCoreWorkload struct{ cfg KCoreConfig }

// NewKCore returns a k-core workload; zero config fields take defaults.
func NewKCore(cfg KCoreConfig) *KCoreWorkload {
	cfg.Shape = cfg.Shape.withDefaults(1 << 15)
	return &KCoreWorkload{cfg: cfg}
}

// Name implements Workload.
func (w *KCoreWorkload) Name() string { return "kcore" }

// Config returns the effective (default-filled) configuration.
func (w *KCoreWorkload) Config() KCoreConfig { return w.cfg }

// Build implements Workload.
func (w *KCoreWorkload) Build() (*dag.DAG, *taskgroup.Tree, error) {
	g, err := w.cfg.Shape.build()
	if err != nil {
		return nil, nil, err
	}
	d, tree, _, err := graph.KCore(g, w.cfg.Shape.costs())
	return d, tree, err
}

// MISConfig parameterises the random-priority maximal-independent-set
// benchmark.
type MISConfig struct {
	Shape GraphShape
}

// MISWorkload builds MIS DAGs.
type MISWorkload struct{ cfg MISConfig }

// NewMIS returns an MIS workload; zero config fields take defaults.
func NewMIS(cfg MISConfig) *MISWorkload {
	cfg.Shape = cfg.Shape.withDefaults(1 << 15)
	return &MISWorkload{cfg: cfg}
}

// Name implements Workload.
func (w *MISWorkload) Name() string { return "mis" }

// Config returns the effective (default-filled) configuration.
func (w *MISWorkload) Config() MISConfig { return w.cfg }

// Build implements Workload.
func (w *MISWorkload) Build() (*dag.DAG, *taskgroup.Tree, error) {
	g, err := w.cfg.Shape.build()
	if err != nil {
		return nil, nil, err
	}
	d, tree, _, err := graph.MIS(g, w.cfg.Shape.Seed, w.cfg.Shape.costs())
	return d, tree, err
}

// MatchingConfig parameterises the random-priority maximal-matching
// benchmark.
type MatchingConfig struct {
	Shape GraphShape
}

// MatchingWorkload builds maximal-matching DAGs.
type MatchingWorkload struct{ cfg MatchingConfig }

// NewMatching returns a maximal-matching workload; zero config fields take
// defaults.
func NewMatching(cfg MatchingConfig) *MatchingWorkload {
	cfg.Shape = cfg.Shape.withDefaults(1 << 15)
	return &MatchingWorkload{cfg: cfg}
}

// Name implements Workload.
func (w *MatchingWorkload) Name() string { return "matching" }

// Config returns the effective (default-filled) configuration.
func (w *MatchingWorkload) Config() MatchingConfig { return w.cfg }

// Build implements Workload.
func (w *MatchingWorkload) Build() (*dag.DAG, *taskgroup.Tree, error) {
	g, err := w.cfg.Shape.build()
	if err != nil {
		return nil, nil, err
	}
	d, tree, _, err := graph.MaximalMatching(g, w.cfg.Shape.Seed, w.cfg.Shape.costs())
	return d, tree, err
}

// The graph kernels self-register, like any future workload should.
func init() {
	Register("bfs", func() Workload { return NewBFS(BFSConfig{}) })
	Register("sssp", func() Workload { return NewSSSP(SSSPConfig{}) })
	Register("pagerank", func() Workload { return NewPageRank(PageRankConfig{}) })
	Register("triangles", func() Workload { return NewTriangles(TrianglesConfig{}) })
	Register("connectivity", func() Workload { return NewConnectivity(ConnectivityConfig{}) })
	Register("kcore", func() Workload { return NewKCore(KCoreConfig{}) })
	Register("mis", func() Workload { return NewMIS(MISConfig{}) })
	Register("matching", func() Workload { return NewMatching(MatchingConfig{}) })
}
