package workload

import (
	"cmpsched/internal/dag"
	"cmpsched/internal/graph"
	"cmpsched/internal/taskgroup"
)

// GraphShape selects the input graph and the trace granularity shared by the
// irregular graph kernels (BFS, SSSP, PageRank, triangle counting).  These
// are the "graph-shape parameters" of the workloads: unlike the regular
// benchmarks, the reference streams depend on the generated adjacency
// structure, not only on the input size.
type GraphShape struct {
	// Family is the generator family: "uniform", "grid" or "rmat"
	// (default "uniform").
	Family string
	// Vertices is the number of vertices (default kernel-specific; the
	// kernels' defaults are sized so a full default-table sweep finishes in
	// minutes, like the regular benchmarks).
	Vertices int64
	// AvgDegree is the target average degree (default 8).
	AvgDegree int64
	// Seed selects the pseudo-random edge set (default 1).
	Seed uint64
	// LineBytes is the granularity of emitted references (default 128).
	LineBytes int64
	// EdgesPerTask is the per-task edge-traversal budget, the
	// task-granularity knob (default 4096).
	EdgesPerTask int64
}

func (s GraphShape) withDefaults(vertices int64) GraphShape {
	if s.Family == "" {
		s.Family = graph.FamilyUniform
	}
	if s.Vertices == 0 {
		s.Vertices = vertices
	}
	if s.AvgDegree == 0 {
		s.AvgDegree = 8
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.LineBytes == 0 {
		s.LineBytes = DefaultLineBytes
	}
	if s.EdgesPerTask == 0 {
		s.EdgesPerTask = 4096
	}
	return s
}

// build materialises the CSR for the shape.
func (s GraphShape) build() (*graph.CSR, error) {
	return graph.New(graph.Config{
		Family:    s.Family,
		Vertices:  s.Vertices,
		AvgDegree: s.AvgDegree,
		Seed:      s.Seed,
	})
}

// costs maps the shape to kernel cost parameters.
func (s GraphShape) costs() graph.Costs {
	return graph.Costs{LineBytes: s.LineBytes, EdgesPerTask: s.EdgesPerTask}
}

// BFSConfig parameterises the level-synchronous breadth-first search
// benchmark.
type BFSConfig struct {
	Shape GraphShape
	// Source is the search root (default 0).
	Source int64
}

// BFSWorkload builds BFS DAGs.
type BFSWorkload struct{ cfg BFSConfig }

// NewBFS returns a BFS workload; zero config fields take defaults.
func NewBFS(cfg BFSConfig) *BFSWorkload {
	cfg.Shape = cfg.Shape.withDefaults(1 << 15)
	return &BFSWorkload{cfg: cfg}
}

// Name implements Workload.
func (w *BFSWorkload) Name() string { return "bfs" }

// Config returns the effective (default-filled) configuration.
func (w *BFSWorkload) Config() BFSConfig { return w.cfg }

// Build implements Workload.
func (w *BFSWorkload) Build() (*dag.DAG, *taskgroup.Tree, error) {
	g, err := w.cfg.Shape.build()
	if err != nil {
		return nil, nil, err
	}
	return graph.BFS(g, w.cfg.Source, w.cfg.Shape.costs())
}

// SSSPConfig parameterises the round-based Bellman-Ford single-source
// shortest-paths benchmark.
type SSSPConfig struct {
	Shape GraphShape
	// Source is the search root (default 0).
	Source int64
	// MaxWeight bounds the deterministic per-edge weights (default 16).
	MaxWeight int64
	// MaxRounds caps the relaxation rounds (default 64; 0 keeps the
	// default — use a negative value to run to convergence).
	MaxRounds int64
}

// SSSPWorkload builds Bellman-Ford DAGs.
type SSSPWorkload struct{ cfg SSSPConfig }

// NewSSSP returns an SSSP workload; zero config fields take defaults.
func NewSSSP(cfg SSSPConfig) *SSSPWorkload {
	cfg.Shape = cfg.Shape.withDefaults(1 << 15)
	if cfg.MaxWeight == 0 {
		cfg.MaxWeight = 16
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = 64
	}
	return &SSSPWorkload{cfg: cfg}
}

// Name implements Workload.
func (w *SSSPWorkload) Name() string { return "sssp" }

// Config returns the effective (default-filled) configuration.
func (w *SSSPWorkload) Config() SSSPConfig { return w.cfg }

// Build implements Workload.
func (w *SSSPWorkload) Build() (*dag.DAG, *taskgroup.Tree, error) {
	g, err := w.cfg.Shape.build()
	if err != nil {
		return nil, nil, err
	}
	rounds := w.cfg.MaxRounds
	if rounds < 0 {
		rounds = 0 // run to convergence
	}
	return graph.BellmanFord(g, w.cfg.Source, w.cfg.Shape.Seed, w.cfg.MaxWeight, rounds, w.cfg.Shape.costs())
}

// PageRankConfig parameterises the PageRank power-iteration benchmark.
type PageRankConfig struct {
	Shape GraphShape
	// Iterations is the number of power-iteration sweeps (default 8).
	Iterations int64
}

// PageRankWorkload builds PageRank DAGs.
type PageRankWorkload struct{ cfg PageRankConfig }

// NewPageRank returns a PageRank workload; zero config fields take defaults.
func NewPageRank(cfg PageRankConfig) *PageRankWorkload {
	cfg.Shape = cfg.Shape.withDefaults(1 << 13)
	if cfg.Iterations == 0 {
		cfg.Iterations = 8
	}
	return &PageRankWorkload{cfg: cfg}
}

// Name implements Workload.
func (w *PageRankWorkload) Name() string { return "pagerank" }

// Config returns the effective (default-filled) configuration.
func (w *PageRankWorkload) Config() PageRankConfig { return w.cfg }

// Build implements Workload.
func (w *PageRankWorkload) Build() (*dag.DAG, *taskgroup.Tree, error) {
	g, err := w.cfg.Shape.build()
	if err != nil {
		return nil, nil, err
	}
	return graph.PageRank(g, w.cfg.Iterations, w.cfg.Shape.costs())
}

// TrianglesConfig parameterises the triangle-counting benchmark.
type TrianglesConfig struct {
	Shape GraphShape
}

// TrianglesWorkload builds triangle-counting DAGs.
type TrianglesWorkload struct{ cfg TrianglesConfig }

// NewTriangles returns a triangle-counting workload; zero config fields take
// defaults.
func NewTriangles(cfg TrianglesConfig) *TrianglesWorkload {
	cfg.Shape = cfg.Shape.withDefaults(1 << 14)
	return &TrianglesWorkload{cfg: cfg}
}

// Name implements Workload.
func (w *TrianglesWorkload) Name() string { return "triangles" }

// Config returns the effective (default-filled) configuration.
func (w *TrianglesWorkload) Config() TrianglesConfig { return w.cfg }

// Build implements Workload.
func (w *TrianglesWorkload) Build() (*dag.DAG, *taskgroup.Tree, error) {
	g, err := w.cfg.Shape.build()
	if err != nil {
		return nil, nil, err
	}
	d, tree, _, err := graph.Triangles(g, w.cfg.Shape.costs())
	return d, tree, err
}

// The graph kernels self-register, like any future workload should.
func init() {
	Register("bfs", func() Workload { return NewBFS(BFSConfig{}) })
	Register("sssp", func() Workload { return NewSSSP(SSSPConfig{}) })
	Register("pagerank", func() Workload { return NewPageRank(PageRankConfig{}) })
	Register("triangles", func() Workload { return NewTriangles(TrianglesConfig{}) })
}
