package workload

import (
	"fmt"

	"cmpsched/internal/dag"
	"cmpsched/internal/imath"
	"cmpsched/internal/refs"
	"cmpsched/internal/taskgroup"
)

// CholeskyConfig parameterises the Cholesky factorisation benchmark, one of
// the additional numeric benchmarks of §5.5 (from the Cilk distribution).
// Like LU and Matrix Multiply it achieves good cache performance with a very
// small amount of data in cache, so PDF and WS perform alike on it; it is
// included to exercise that benchmark class alongside LU.
type CholeskyConfig struct {
	// N is the matrix dimension in elements (doubles). Default 512.
	N int64
	// BlockElems is the block size controlling the grain of parallelism.
	BlockElems int64
	// ElemBytes is the element size (8 for doubles).
	ElemBytes int64
	// LineBytes is the reference granularity (default 128).
	LineBytes int64
	// FlopsPerInstr scales floating-point work into retired instructions.
	FlopsPerInstr int64
	// SpawnInstrs is the per-task spawn/sync overhead.
	SpawnInstrs int64
}

func (c CholeskyConfig) withDefaults() CholeskyConfig {
	if c.N == 0 {
		c.N = 512
	}
	if c.BlockElems == 0 {
		c.BlockElems = 32
	}
	if c.ElemBytes == 0 {
		c.ElemBytes = 8
	}
	if c.LineBytes == 0 {
		c.LineBytes = DefaultLineBytes
	}
	if c.FlopsPerInstr == 0 {
		c.FlopsPerInstr = 3
	}
	if c.SpawnInstrs == 0 {
		c.SpawnInstrs = 200
	}
	return c
}

// Cholesky builds blocked Cholesky-factorisation DAGs (right-looking, lower
// triangular): at step k, factor the diagonal block, solve the panel below
// it, then update the trailing lower-triangular matrix.
type Cholesky struct {
	cfg CholeskyConfig
}

// NewCholesky returns a Cholesky workload; zero config fields take defaults.
func NewCholesky(cfg CholeskyConfig) *Cholesky { return &Cholesky{cfg: cfg.withDefaults()} }

// Name implements Workload.
func (c *Cholesky) Name() string { return "cholesky" }

// Config returns the effective configuration.
func (c *Cholesky) Config() CholeskyConfig { return c.cfg }

// Build implements Workload.
func (ch *Cholesky) Build() (*dag.DAG, *taskgroup.Tree, error) {
	c := ch.cfg
	if c.N <= 0 || c.BlockElems <= 0 {
		return nil, nil, fmt.Errorf("workload: cholesky: non-positive sizes")
	}
	if c.N%c.BlockElems != 0 {
		return nil, nil, fmt.Errorf("workload: cholesky: N=%d not a multiple of block size %d", c.N, c.BlockElems)
	}
	nb := c.N / c.BlockElems
	d := dag.New(fmt.Sprintf("cholesky-%d", c.N))
	tree := taskgroup.New("cholesky")

	blockBytes := c.BlockElems * c.BlockElems * c.ElemBytes
	blockAddr := func(i, j int64) uint64 {
		return baseMatrixA + uint64((i*nb+j)*blockBytes)
	}
	lastWriter := make([]dag.TaskID, nb*nb)
	for i := range lastWriter {
		lastWriter[i] = dag.None
	}
	dependOn := func(t, prev dag.TaskID) {
		if prev != dag.None && prev != t {
			d.MustEdge(prev, t)
		}
	}

	b := c.BlockElems
	linesPerBlock := imath.Max(1, blockBytes/c.LineBytes)
	potrfInstrs := (b * b * b / 3) * c.FlopsPerInstr
	trsmInstrs := (b * b * b) * c.FlopsPerInstr
	updateInstrs := (2 * b * b * b) * c.FlopsPerInstr

	blockScan := func(i, j int64, write bool, perRef int64) *refs.Scan {
		return &refs.Scan{Base: blockAddr(i, j), Bytes: blockBytes, LineBytes: c.LineBytes, Write: write, InstrsPerRef: imath.Max(1, perRef)}
	}

	for k := int64(0); k < nb; k++ {
		group := tree.AddChild(tree.Root, fmt.Sprintf("iteration-%d", k), "cholesky.go:iteration", float64((nb-k)*(nb-k))*float64(blockBytes), 0)

		potrf := d.AddTask(fmt.Sprintf("potrf(%d)", k), refs.NewWithTail(refs.NewConcat(
			blockScan(k, k, false, potrfInstrs/(2*linesPerBlock)),
			blockScan(k, k, true, potrfInstrs/(2*linesPerBlock)),
		), c.SpawnInstrs))
		potrf.Site = "cholesky.go:potrf"
		potrf.Level = int(k)
		dependOn(potrf.ID, lastWriter[k*nb+k])
		lastWriter[k*nb+k] = potrf.ID
		tree.Own(group, potrf.ID)

		panel := make([]dag.TaskID, 0, nb-k-1)
		for i := k + 1; i < nb; i++ {
			t := d.AddTask(fmt.Sprintf("trsm(%d,%d)", i, k), refs.NewWithTail(refs.NewConcat(
				blockScan(k, k, false, trsmInstrs/(3*linesPerBlock)),
				blockScan(i, k, false, trsmInstrs/(3*linesPerBlock)),
				blockScan(i, k, true, trsmInstrs/(3*linesPerBlock)),
			), c.SpawnInstrs))
			t.Site = "cholesky.go:trsm"
			t.Level = int(k)
			d.MustEdge(potrf.ID, t.ID)
			dependOn(t.ID, lastWriter[i*nb+k])
			lastWriter[i*nb+k] = t.ID
			tree.Own(group, t.ID)
			panel = append(panel, t.ID)
		}

		// Trailing update of the lower triangle: block (i,j) with j <= i
		// is updated with panel blocks i and j (syrk on the diagonal,
		// gemm off the diagonal).
		for i := k + 1; i < nb; i++ {
			for j := k + 1; j <= i; j++ {
				kind := "gemm"
				instrs := updateInstrs
				if i == j {
					kind = "syrk"
					instrs = updateInstrs / 2
				}
				t := d.AddTask(fmt.Sprintf("%s(%d,%d,%d)", kind, i, j, k), refs.NewWithTail(refs.NewConcat(
					blockScan(i, k, false, instrs/(4*linesPerBlock)),
					blockScan(j, k, false, instrs/(4*linesPerBlock)),
					blockScan(i, j, false, instrs/(4*linesPerBlock)),
					blockScan(i, j, true, instrs/(4*linesPerBlock)),
				), c.SpawnInstrs))
				t.Site = "cholesky.go:update"
				t.Level = int(k)
				d.MustEdge(panel[i-k-1], t.ID)
				if j != i {
					d.MustEdge(panel[j-k-1], t.ID)
				}
				dependOn(t.ID, lastWriter[i*nb+j])
				lastWriter[i*nb+j] = t.ID
				tree.Own(group, t.ID)
			}
		}
	}

	if err := d.Validate(); err != nil {
		return nil, nil, fmt.Errorf("workload: cholesky: %w", err)
	}
	if err := tree.Finalize(d); err != nil {
		return nil, nil, fmt.Errorf("workload: cholesky: %w", err)
	}
	return d, tree, nil
}
