package workload

import (
	"testing"

	"cmpsched/internal/refs"
)

// TestMemoizeReplaysIdentically pins that a memoised workload's instances
// drain exactly the streams a fresh build produces, and that repeated Builds
// hand out independent cursors.
func TestMemoizeReplaysIdentically(t *testing.T) {
	cfg := MergesortConfig{Elements: 1 << 14, TaskWorkingSetBytes: 8 << 10}
	fresh, _, err := NewMergesort(cfg).Build()
	if err != nil {
		t.Fatal(err)
	}
	m := Memoize(NewMergesort(cfg))
	if m.Name() != "mergesort" {
		t.Fatalf("Name = %q", m.Name())
	}
	d1, tree1, err := m.Build()
	if err != nil {
		t.Fatal(err)
	}
	d2, tree2, err := m.Build()
	if err != nil {
		t.Fatal(err)
	}
	if tree1 != tree2 {
		t.Fatalf("memoised builds returned different trees")
	}
	if d1 == d2 {
		t.Fatalf("memoised builds returned the same DAG instance")
	}
	if d1.NumTasks() != fresh.NumTasks() || d1.TotalInstrs() != fresh.TotalInstrs() {
		t.Fatalf("instance shape (%d tasks, %d instrs), want (%d, %d)",
			d1.NumTasks(), d1.TotalInstrs(), fresh.NumTasks(), fresh.TotalInstrs())
	}
	for i, want := range fresh.Tasks() {
		got := d1.Task(want.ID)
		if (got.Refs == nil) != (want.Refs == nil) {
			t.Fatalf("task %d stream presence differs", i)
		}
		if want.Refs == nil {
			continue
		}
		ws := refs.Collect(want.Refs)
		gs := refs.Collect(got.Refs)
		if len(ws) != len(gs) {
			t.Fatalf("task %d drained %d refs, want %d", i, len(gs), len(ws))
		}
		for j := range ws {
			if ws[j] != gs[j] {
				t.Fatalf("task %d ref %d = %+v, want %+v", i, j, gs[j], ws[j])
			}
		}
	}
	// Instances are independent: draining d1's first stream must not move
	// d2's.
	for _, task := range d1.Tasks() {
		if task.Refs != nil {
			refs.Collect(task.Refs)
			break
		}
	}
	for _, task := range d2.Tasks() {
		if task.Refs != nil {
			if got := refs.Collect(task.Refs); int64(len(got)) != task.Refs.Len() {
				t.Fatalf("sibling instance cursor disturbed: %d of %d refs", len(got), task.Refs.Len())
			}
			break
		}
	}
	// Mergesort's leaf/merge tasks at one level share stream shapes only
	// when byte-identical; either way the recording must have interned every
	// task stream.
	st := m.(interface{ Stats() refs.TraceStoreStats }).Stats()
	if st.Interned == 0 || st.Unique == 0 || st.ArenaBytes == 0 {
		t.Fatalf("no interning recorded: %+v", st)
	}
}
