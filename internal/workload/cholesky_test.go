package workload

import (
	"strings"
	"testing"

	"cmpsched/internal/cmpsim"
	"cmpsched/internal/config"
	"cmpsched/internal/sched"
)

func TestCholeskyStructure(t *testing.T) {
	ch := NewCholesky(CholeskyConfig{N: 128, BlockElems: 32})
	d, _ := checkWorkload(t, ch)
	nb := int64(4)
	var potrf, trsm, update int64
	for _, task := range d.Tasks() {
		switch {
		case strings.HasPrefix(task.Name, "potrf"):
			potrf++
		case strings.HasPrefix(task.Name, "trsm"):
			trsm++
		case strings.HasPrefix(task.Name, "syrk"), strings.HasPrefix(task.Name, "gemm"):
			update++
		}
	}
	if potrf != nb {
		t.Fatalf("potrf tasks = %d, want %d", potrf, nb)
	}
	var wantTrsm, wantUpdate int64
	for k := int64(0); k < nb; k++ {
		m := nb - k - 1
		wantTrsm += m
		wantUpdate += m * (m + 1) / 2
	}
	if trsm != wantTrsm || update != wantUpdate {
		t.Fatalf("trsm=%d (want %d) update=%d (want %d)", trsm, wantTrsm, update, wantUpdate)
	}
}

func TestCholeskyRejectsBadConfig(t *testing.T) {
	if _, _, err := NewCholesky(CholeskyConfig{N: 100, BlockElems: 32}).Build(); err == nil {
		t.Fatalf("non-multiple N accepted")
	}
	if _, _, err := NewCholesky(CholeskyConfig{N: -1, BlockElems: 8}).Build(); err == nil {
		t.Fatalf("negative N accepted")
	}
}

// Cholesky belongs to the small-working-set class: PDF and WS should perform
// within a few percent of each other (§5.5), unlike Hash Join or Mergesort.
func TestCholeskyPDFandWSPerformAlike(t *testing.T) {
	cfg := config.MustDefault(8).Scaled(config.DefaultScale * 8)
	build := func() *Cholesky { return NewCholesky(CholeskyConfig{N: 256, BlockElems: 32}) }
	d1, _, err := build().Build()
	if err != nil {
		t.Fatal(err)
	}
	pdf, err := cmpsim.Run(d1, sched.NewPDF(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	d2, _, err := build().Build()
	if err != nil {
		t.Fatal(err)
	}
	ws, err := cmpsim.Run(d2, sched.NewWS(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(ws.Cycles) / float64(pdf.Cycles)
	if ratio < 0.9 || ratio > 1.15 {
		t.Fatalf("Cholesky PDF/WS ratio %.3f; expected the schedulers to perform alike", ratio)
	}
}

func TestNewByNameIncludesCholesky(t *testing.T) {
	w, err := New("cholesky")
	if err != nil || w.Name() != "cholesky" {
		t.Fatalf("New(cholesky) = %v, %v", w, err)
	}
}
