package workload

import (
	"sync"

	"cmpsched/internal/dag"
	"cmpsched/internal/refs"
	"cmpsched/internal/taskgroup"
)

// memoized wraps a Workload so the generation work happens once: the first
// Build runs the wrapped workload and records its DAG into a
// content-addressed trace store (identical task streams share one arena),
// and every Build — the first included — returns a fresh instance replaying
// the recording.  Instances simulate bit-identically to the wrapped
// workload's own DAGs and are independent, so callers may simulate them
// concurrently; the task-group tree is returned as-is (it is read-only after
// Finalize).
type memoized struct {
	w    Workload
	mu   sync.Mutex
	snap *dag.Snapshot
	tree *taskgroup.Tree
	err  error
}

// Memoize wraps w so repeated Builds replay a recording of the first instead
// of regenerating the DAG.  Use it when the same workload instance is built
// many times — repeated simulator runs, benchmark loops — and the build cost
// or the per-build stream memory matters.  The wrapped workload must build
// deterministically (every registered workload does).
func Memoize(w Workload) Workload {
	return &memoized{w: w}
}

// Name implements Workload.
func (m *memoized) Name() string { return m.w.Name() }

// Build implements Workload, serving instances of the memoised recording.
func (m *memoized) Build() (*dag.DAG, *taskgroup.Tree, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return nil, nil, m.err
	}
	if m.snap == nil {
		d, tree, err := m.w.Build()
		if err != nil {
			m.err = err
			return nil, nil, err
		}
		m.snap = dag.Record(d, refs.NewTraceStore())
		m.tree = tree
	}
	return m.snap.Instantiate(), m.tree, nil
}

// Stats returns the interning statistics of the recording's trace store
// (zeros before the first Build).
func (m *memoized) Stats() refs.TraceStoreStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.snap == nil {
		return refs.TraceStoreStats{}
	}
	return m.snap.Store().Stats()
}
