package workload

import (
	"fmt"

	"cmpsched/internal/dag"
	"cmpsched/internal/imath"
	"cmpsched/internal/refs"
	"cmpsched/internal/taskgroup"
)

// MatMulConfig parameterises the blocked matrix-multiply benchmark, one of
// the additional numeric benchmarks summarised in §5.5: like LU it has a
// small per-task working set and a tiny L2 miss ratio, so PDF and WS behave
// alike on it.
type MatMulConfig struct {
	// N is the matrix dimension in elements (doubles). Default 256.
	N int64
	// BlockElems is the output-block size per task. Default 32.
	BlockElems int64
	// ElemBytes is the element size (8 for doubles).
	ElemBytes int64
	// LineBytes is the reference granularity (default 128).
	LineBytes int64
	// SpawnInstrs is the per-task spawn/sync overhead.
	SpawnInstrs int64
}

func (c MatMulConfig) withDefaults() MatMulConfig {
	if c.N == 0 {
		c.N = 256
	}
	if c.BlockElems == 0 {
		c.BlockElems = 32
	}
	if c.ElemBytes == 0 {
		c.ElemBytes = 8
	}
	if c.LineBytes == 0 {
		c.LineBytes = DefaultLineBytes
	}
	if c.SpawnInstrs == 0 {
		c.SpawnInstrs = 200
	}
	return c
}

// MatMul builds blocked matrix-multiply DAGs.
type MatMul struct {
	cfg MatMulConfig
}

// NewMatMul returns a MatMul workload; zero config fields take defaults.
func NewMatMul(cfg MatMulConfig) *MatMul { return &MatMul{cfg: cfg.withDefaults()} }

// Name implements Workload.
func (m *MatMul) Name() string { return "matmul" }

// Config returns the effective configuration.
func (m *MatMul) Config() MatMulConfig { return m.cfg }

// Build implements Workload.
func (m *MatMul) Build() (*dag.DAG, *taskgroup.Tree, error) {
	c := m.cfg
	if c.N <= 0 || c.BlockElems <= 0 || c.N%c.BlockElems != 0 {
		return nil, nil, fmt.Errorf("workload: matmul: N=%d must be a positive multiple of block size %d", c.N, c.BlockElems)
	}
	nb := c.N / c.BlockElems
	d := dag.New(fmt.Sprintf("matmul-%d", c.N))
	tree := taskgroup.New("matmul")

	blockBytes := c.BlockElems * c.BlockElems * c.ElemBytes
	panelBytes := c.BlockElems * c.N * c.ElemBytes
	b := c.BlockElems
	// One task computes C(i,j) += sum_k A(i,k)*B(k,j): it streams the
	// row panel of A and the column panel of B and read-writes one block
	// of C, performing 2*N*B^2 flops.
	taskInstrs := 2 * c.N * b * b
	linesTouched := imath.Max(1, (2*panelBytes+2*blockBytes)/c.LineBytes)
	perRef := imath.Max(1, taskInstrs/linesTouched)

	root := d.AddComputeTask("matmul-start", c.SpawnInstrs)
	tree.Own(tree.Root, root.ID)

	for i := int64(0); i < nb; i++ {
		rowGroup := tree.AddChild(tree.Root, fmt.Sprintf("row-%d", i), "matmul.go:row", float64(panelBytes), 0)
		for j := int64(0); j < nb; j++ {
			gen := refs.NewWithTail(refs.NewConcat(
				&refs.Scan{Base: baseMatrixA + uint64(i*panelBytes), Bytes: panelBytes, LineBytes: c.LineBytes, InstrsPerRef: perRef},
				&refs.Scan{Base: baseMatrixB + uint64(j*panelBytes), Bytes: panelBytes, LineBytes: c.LineBytes, InstrsPerRef: perRef},
				&refs.Scan{Base: baseMatrixC + uint64((i*nb+j)*blockBytes), Bytes: blockBytes, LineBytes: c.LineBytes, InstrsPerRef: perRef},
				&refs.Scan{Base: baseMatrixC + uint64((i*nb+j)*blockBytes), Bytes: blockBytes, LineBytes: c.LineBytes, Write: true, InstrsPerRef: perRef},
			), c.SpawnInstrs)
			t := d.AddTask(fmt.Sprintf("C(%d,%d)", i, j), gen)
			t.Site = "matmul.go:block"
			t.Level = int(i)
			t.Param = float64(2*panelBytes + blockBytes)
			d.MustEdge(root.ID, t.ID)
			tree.Own(rowGroup, t.ID)
		}
	}

	if err := d.Validate(); err != nil {
		return nil, nil, fmt.Errorf("workload: matmul: %w", err)
	}
	if err := tree.Finalize(d); err != nil {
		return nil, nil, fmt.Errorf("workload: matmul: %w", err)
	}
	return d, tree, nil
}
