// Package workload generates the benchmark computation DAGs studied in the
// paper as synthetic DAG + memory-reference models: Mergesort, Hash Join and
// LU (the three benchmarks analysed in detail in §5), plus Matrix Multiply,
// Quicksort and a Heat stencil from the broader benchmark suite (§5.5).
//
// Each workload builds (a) a computation DAG whose tasks carry reference
// streams modelling the data structures and access patterns of the original
// program, and (b) a task-group tree describing the natural hierarchical
// grouping of tasks (used by the working-set profiler and the automatic
// task-coarsening pass).
//
// The generators take the place of the paper's binary instrumentation and
// trace collection: the schedulers and the cache simulator only ever observe
// the DAG and the reference streams, so generating those streams directly
// from the algorithms preserves the behaviour being measured while keeping
// the repository self-contained (see DESIGN.md, "Substitutions").
package workload

import (
	"fmt"

	"cmpsched/internal/dag"
	"cmpsched/internal/taskgroup"
)

// Workload builds a benchmark instance.
type Workload interface {
	// Name returns the benchmark name, e.g. "mergesort".
	Name() string
	// Build generates the computation DAG and its task-group tree. The
	// tree may be nil for workloads without a meaningful hierarchy.
	Build() (*dag.DAG, *taskgroup.Tree, error)
}

// Default address-space bases for the synthetic data structures, spaced far
// apart so regions never alias.
const (
	baseArrayA    uint64 = 0x1_0000_0000
	baseArrayB    uint64 = 0x2_0000_0000
	baseBuild     uint64 = 0x3_0000_0000
	baseProbe     uint64 = 0x4_0000_0000
	baseHash      uint64 = 0x5_0000_0000
	baseOutput    uint64 = 0x6_0000_0000
	baseMatrixA   uint64 = 0x7_0000_0000
	baseMatrixB   uint64 = 0x8_0000_0000
	baseMatrixC   uint64 = 0x9_0000_0000
	baseGridA     uint64 = 0xA_0000_0000
	baseGridB     uint64 = 0xB_0000_0000
	baseQuicksort uint64 = 0xC_0000_0000
)

// DefaultLineBytes is the cache-line granularity at which reference streams
// are emitted; it matches Table 1's 128-byte lines.
const DefaultLineBytes int64 = 128

// New constructs a workload by name with its default (scaled) parameters.
// Recognised names: mergesort, hashjoin, lu, matmul, cholesky, quicksort,
// heat.
func New(name string) (Workload, error) {
	switch name {
	case "mergesort":
		return NewMergesort(MergesortConfig{}), nil
	case "hashjoin":
		return NewHashJoin(HashJoinConfig{}), nil
	case "lu":
		return NewLU(LUConfig{}), nil
	case "matmul":
		return NewMatMul(MatMulConfig{}), nil
	case "cholesky":
		return NewCholesky(CholeskyConfig{}), nil
	case "quicksort":
		return NewQuicksort(QuicksortConfig{}), nil
	case "heat":
		return NewHeat(HeatConfig{}), nil
	default:
		return nil, fmt.Errorf("workload: unknown workload %q (want one of %v)", name, Names())
	}
}

// Names lists the available workloads.
func Names() []string {
	return []string{"mergesort", "hashjoin", "lu", "matmul", "cholesky", "quicksort", "heat"}
}

// ceilDiv returns ceil(a/b) for positive b.
func ceilDiv(a, b int64) int64 {
	if b <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// log2Ceil returns ceil(log2(n)) for n >= 1.
func log2Ceil(n int64) int64 {
	if n <= 1 {
		return 0
	}
	var l int64
	v := int64(1)
	for v < n {
		v <<= 1
		l++
	}
	return l
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
