// Package workload generates the benchmark computation DAGs studied in the
// paper as synthetic DAG + memory-reference models: Mergesort, Hash Join and
// LU (the three benchmarks analysed in detail in §5), plus Matrix Multiply,
// Quicksort and a Heat stencil from the broader benchmark suite (§5.5), and
// the irregular graph kernels (BFS, SSSP, PageRank, triangle counting) that
// extend the study to data-dependent access patterns.
//
// Each workload builds (a) a computation DAG whose tasks carry reference
// streams modelling the data structures and access patterns of the original
// program, and (b) a task-group tree describing the natural hierarchical
// grouping of tasks (used by the working-set profiler and the automatic
// task-coarsening pass).
//
// The generators take the place of the paper's binary instrumentation and
// trace collection: the schedulers and the cache simulator only ever observe
// the DAG and the reference streams, so generating those streams directly
// from the algorithms preserves the behaviour being measured while keeping
// the repository self-contained (see DESIGN.md, "Substitutions").
package workload

import (
	"fmt"
	"sort"
	"sync"

	"cmpsched/internal/dag"
	"cmpsched/internal/taskgroup"
)

// Workload builds a benchmark instance.
type Workload interface {
	// Name returns the benchmark name, e.g. "mergesort".
	Name() string
	// Build generates the computation DAG and its task-group tree. The
	// tree may be nil for workloads without a meaningful hierarchy.
	Build() (*dag.DAG, *taskgroup.Tree, error)
}

// Default address-space bases for the synthetic data structures, spaced far
// apart so regions never alias.
const (
	baseArrayA    uint64 = 0x1_0000_0000
	baseArrayB    uint64 = 0x2_0000_0000
	baseBuild     uint64 = 0x3_0000_0000
	baseProbe     uint64 = 0x4_0000_0000
	baseHash      uint64 = 0x5_0000_0000
	baseOutput    uint64 = 0x6_0000_0000
	baseMatrixA   uint64 = 0x7_0000_0000
	baseMatrixB   uint64 = 0x8_0000_0000
	baseMatrixC   uint64 = 0x9_0000_0000
	baseGridA     uint64 = 0xA_0000_0000
	baseGridB     uint64 = 0xB_0000_0000
	baseQuicksort uint64 = 0xC_0000_0000
)

// DefaultLineBytes is the cache-line granularity at which reference streams
// are emitted; it matches Table 1's 128-byte lines.
const DefaultLineBytes int64 = 128

// Factory constructs a workload instance with its default (scaled)
// parameters.
type Factory func() Workload

// registry maps workload names to factories.  Workload files self-register
// from init functions, so the table — not a hardcoded switch — decides what
// New accepts and what Names reports.  The mutex also admits late
// registrations (the facade exports Register), e.g. from a program that
// adds a custom workload while sweeps run on other goroutines.
var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{}
)

// Register adds a named workload factory.  It panics on duplicate or empty
// names: both are programming errors in a workload file's init.
func Register(name string, f Factory) {
	if name == "" || f == nil {
		panic("workload: Register requires a name and a factory")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("workload: duplicate registration of %q", name))
	}
	registry[name] = f
}

// The classic benchmark suite registers here; the graph kernels register in
// graph.go.  New workloads only need their own Register call.
func init() {
	for _, e := range []struct {
		name string
		f    Factory
	}{
		{"mergesort", func() Workload { return NewMergesort(MergesortConfig{}) }},
		{"hashjoin", func() Workload { return NewHashJoin(HashJoinConfig{}) }},
		{"lu", func() Workload { return NewLU(LUConfig{}) }},
		{"matmul", func() Workload { return NewMatMul(MatMulConfig{}) }},
		{"cholesky", func() Workload { return NewCholesky(CholeskyConfig{}) }},
		{"quicksort", func() Workload { return NewQuicksort(QuicksortConfig{}) }},
		{"heat", func() Workload { return NewHeat(HeatConfig{}) }},
	} {
		Register(e.name, e.f)
	}
}

// New constructs a registered workload by name with its default (scaled)
// parameters. See Names for the available names.
func New(name string) (Workload, error) {
	registryMu.RLock()
	f, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("workload: unknown workload %q (want one of %v)", name, Names())
	}
	return f(), nil
}

// Names lists the registered workloads in sorted order.
func Names() []string {
	registryMu.RLock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	registryMu.RUnlock()
	sort.Strings(names)
	return names
}
