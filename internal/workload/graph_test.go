package workload

import (
	"strings"
	"testing"
)

// tinyShape keeps graph workload tests fast while preserving multi-level,
// multi-task structure.
func tinyShape(family string) GraphShape {
	return GraphShape{Family: family, Vertices: 1 << 10, EdgesPerTask: 512}
}

func TestGraphWorkloadsBuildValidDAGs(t *testing.T) {
	// A 32x32 grid's BFS frontiers are short diagonals, so the grid case
	// needs a finer grain than the random families to stay parallel.
	gridShape := tinyShape("grid")
	gridShape.EdgesPerTask = 64
	for _, w := range []Workload{
		NewBFS(BFSConfig{Shape: tinyShape("uniform")}),
		NewBFS(BFSConfig{Shape: gridShape}),
		NewBFS(BFSConfig{Shape: tinyShape("rmat")}),
		NewSSSP(SSSPConfig{Shape: tinyShape("uniform"), MaxRounds: 8}),
		NewPageRank(PageRankConfig{Shape: tinyShape("rmat"), Iterations: 3}),
		NewTriangles(TrianglesConfig{Shape: tinyShape("uniform")}),
	} {
		checkWorkload(t, w)
	}
}

func TestGraphWorkloadsAreRegistered(t *testing.T) {
	names := Names()
	for _, want := range []string{"bfs", "sssp", "pagerank", "triangles"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("Names() = %v is missing %q", names, want)
		}
		w, err := New(want)
		if err != nil {
			t.Fatalf("New(%q): %v", want, err)
		}
		if w.Name() != want {
			t.Errorf("New(%q).Name() = %q", want, w.Name())
		}
	}
}

func TestGraphShapeDefaults(t *testing.T) {
	bfs := NewBFS(BFSConfig{})
	cfg := bfs.Config()
	if cfg.Shape.Family != "uniform" || cfg.Shape.Vertices != 1<<15 || cfg.Shape.AvgDegree != 8 {
		t.Fatalf("bfs defaults = %+v", cfg.Shape)
	}
	if cfg.Shape.LineBytes != DefaultLineBytes {
		t.Fatalf("bfs line bytes = %d", cfg.Shape.LineBytes)
	}
	sssp := NewSSSP(SSSPConfig{})
	if c := sssp.Config(); c.MaxWeight != 16 || c.MaxRounds != 64 {
		t.Fatalf("sssp defaults = %+v", c)
	}
	pr := NewPageRank(PageRankConfig{})
	if c := pr.Config(); c.Iterations != 8 || c.Shape.Vertices != 1<<13 {
		t.Fatalf("pagerank defaults = %+v", c)
	}
}

func TestGraphWorkloadsRejectBadShapes(t *testing.T) {
	if _, _, err := NewBFS(BFSConfig{Shape: GraphShape{Family: "torus"}}).Build(); err == nil {
		t.Fatalf("unknown family accepted")
	}
	if _, _, err := NewSSSP(SSSPConfig{Source: -5}).Build(); err == nil {
		t.Fatalf("bad source accepted")
	}
}

func TestGraphWorkloadDeterministicRebuild(t *testing.T) {
	build := func() (int, int64, int64) {
		d, _, err := NewBFS(BFSConfig{Shape: tinyShape("rmat")}).Build()
		if err != nil {
			t.Fatal(err)
		}
		return d.NumTasks(), d.TotalInstrs(), d.TotalRefs()
	}
	t1, i1, r1 := build()
	t2, i2, r2 := build()
	if t1 != t2 || i1 != i2 || r1 != r2 {
		t.Fatalf("bfs rebuild differs: (%d,%d,%d) vs (%d,%d,%d)", t1, i1, r1, t2, i2, r2)
	}
}

func TestGraphWorkloadGranularityKnob(t *testing.T) {
	coarseShape := tinyShape("uniform")
	coarseShape.EdgesPerTask = 1 << 20
	fineShape := tinyShape("uniform")
	fineShape.EdgesPerTask = 128
	coarse, _, err := NewBFS(BFSConfig{Shape: coarseShape}).Build()
	if err != nil {
		t.Fatal(err)
	}
	fine, _, err := NewBFS(BFSConfig{Shape: fineShape}).Build()
	if err != nil {
		t.Fatal(err)
	}
	if fine.NumTasks() <= coarse.NumTasks() {
		t.Fatalf("EdgesPerTask knob has no effect: fine=%d coarse=%d", fine.NumTasks(), coarse.NumTasks())
	}
}

func TestGraphWorkloadTaskNames(t *testing.T) {
	d, _, err := NewPageRank(PageRankConfig{Shape: tinyShape("uniform"), Iterations: 2}).Build()
	if err != nil {
		t.Fatal(err)
	}
	var gathers int
	for _, task := range d.Tasks() {
		if strings.HasPrefix(task.Name, "pagerank-i") {
			gathers++
		}
	}
	if gathers < 2 {
		t.Fatalf("pagerank gather tasks = %d", gathers)
	}
}
