package workload

import (
	"strings"
	"testing"

	"cmpsched/internal/dag"
	"cmpsched/internal/refs"
	"cmpsched/internal/taskgroup"
)

// checkWorkload performs the structural checks every benchmark must satisfy.
func checkWorkload(t *testing.T, w Workload) (*dag.DAG, *taskgroup.Tree) {
	t.Helper()
	d, tree, err := w.Build()
	if err != nil {
		t.Fatalf("%s: Build: %v", w.Name(), err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("%s: invalid DAG: %v", w.Name(), err)
	}
	if _, err := d.TopologicalCheck(); err != nil {
		t.Fatalf("%s: cyclic DAG: %v", w.Name(), err)
	}
	if d.NumTasks() < 2 {
		t.Fatalf("%s: suspiciously small DAG (%d tasks)", w.Name(), d.NumTasks())
	}
	if d.TotalInstrs() <= 0 || d.TotalRefs() <= 0 {
		t.Fatalf("%s: DAG has no work: %+v", w.Name(), d.ComputeStats())
	}
	// Parallelism must exist: depth strictly less than total work.
	if d.Depth() >= d.TotalInstrs() {
		t.Fatalf("%s: no parallelism: depth=%d work=%d", w.Name(), d.Depth(), d.TotalInstrs())
	}
	if tree != nil {
		if tree.Root.First != 0 || int(tree.Root.Last) != d.NumTasks()-1 {
			t.Fatalf("%s: group tree does not cover the DAG: [%d,%d] of %d",
				w.Name(), tree.Root.First, tree.Root.Last, d.NumTasks())
		}
	}
	return d, tree
}

func tinyMergesort() *Mergesort {
	return NewMergesort(MergesortConfig{Elements: 1 << 14, TaskWorkingSetBytes: 8 << 10})
}

func tinyHashJoin() *HashJoin {
	return NewHashJoin(HashJoinConfig{PartitionBytes: 2 << 20, SubPartitionBytes: 128 << 10, ProbeChunkBytes: 32 << 10})
}

func TestAllWorkloadsBuildValidDAGs(t *testing.T) {
	workloads := []Workload{
		tinyMergesort(),
		tinyHashJoin(),
		NewLU(LUConfig{N: 128, BlockElems: 32}),
		NewMatMul(MatMulConfig{N: 128, BlockElems: 32}),
		NewQuicksort(QuicksortConfig{Elements: 1 << 14, LeafElems: 1 << 11}),
		NewHeat(HeatConfig{Rows: 64, Cols: 64, Steps: 4, RowsPerTask: 16}),
	}
	for _, w := range workloads {
		checkWorkload(t, w)
	}
}

func TestNewByNameAndDefaults(t *testing.T) {
	for _, name := range Names() {
		w, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if w.Name() != name {
			t.Fatalf("New(%q).Name() = %q", name, w.Name())
		}
	}
	if _, err := New("bogus"); err == nil {
		t.Fatalf("unknown workload accepted")
	}
}

func TestMergesortStructure(t *testing.T) {
	ms := tinyMergesort()
	d, tree := checkWorkload(t, ms)
	// Exactly one root (the top divide) and one sink (the top combine).
	if roots := d.Roots(); len(roots) != 1 {
		t.Fatalf("mergesort roots = %v", roots)
	}
	if sinks := d.Sinks(); len(sinks) != 1 {
		t.Fatalf("mergesort sinks = %v", sinks)
	}
	// Total bytes sorted appear in the top group's parameter (2n rule).
	if got := tree.Root.Children[0].Param; got != float64(2*ms.TotalBytes()) {
		t.Fatalf("top group param = %f, want %f", got, float64(2*ms.TotalBytes()))
	}
	// There must be leaf sort tasks and merge tasks.
	var leaves, merges, divides int
	for _, task := range d.Tasks() {
		switch {
		case strings.HasPrefix(task.Name, "sortleaf"):
			leaves++
		case strings.HasPrefix(task.Name, "merge"):
			merges++
		case strings.HasPrefix(task.Name, "divide"):
			divides++
		}
	}
	if leaves == 0 || merges == 0 || divides == 0 {
		t.Fatalf("mergesort task mix: leaves=%d merges=%d divides=%d", leaves, merges, divides)
	}
	// Every merge level must offer enough parallel tasks.
	cfg := ms.Config()
	if cfg.MergeTasksPerLevel != 64 {
		t.Fatalf("default MergeTasksPerLevel = %d", cfg.MergeTasksPerLevel)
	}
}

func TestMergesortGranularityControlsTaskCount(t *testing.T) {
	coarse := NewMergesort(MergesortConfig{Elements: 1 << 15, TaskWorkingSetBytes: 64 << 10})
	fine := NewMergesort(MergesortConfig{Elements: 1 << 15, TaskWorkingSetBytes: 4 << 10})
	dc, _, err := coarse.Build()
	if err != nil {
		t.Fatal(err)
	}
	df, _, err := fine.Build()
	if err != nil {
		t.Fatal(err)
	}
	if df.NumTasks() <= dc.NumTasks() {
		t.Fatalf("finer tasks should create more tasks: fine=%d coarse=%d", df.NumTasks(), dc.NumTasks())
	}
	// The total data touched is the same order of magnitude: refs may
	// differ by overheads but must not differ wildly.
	ratio := float64(df.TotalRefs()) / float64(dc.TotalRefs())
	if ratio < 0.5 || ratio > 3.0 {
		t.Fatalf("refs changed too much with granularity: fine=%d coarse=%d", df.TotalRefs(), dc.TotalRefs())
	}
}

func TestMergesortLeafWorkingSetMatchesTarget(t *testing.T) {
	ms := NewMergesort(MergesortConfig{Elements: 1 << 16, TaskWorkingSetBytes: 16 << 10})
	d, _, err := ms.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range d.Tasks() {
		if strings.HasPrefix(task.Name, "sortleaf") {
			if task.Param > float64(16<<10) {
				t.Fatalf("leaf %s param %f exceeds the task working-set target", task.Name, task.Param)
			}
		}
	}
}

func TestMergesortRejectsBadConfig(t *testing.T) {
	if _, _, err := NewMergesort(MergesortConfig{Elements: -1}).Build(); err == nil {
		t.Fatalf("negative elements accepted")
	}
	if _, _, err := NewMergesort(MergesortConfig{Elements: 1024, TaskWorkingSetBytes: 64}).Build(); err == nil {
		t.Fatalf("tiny task working set accepted")
	}
}

func TestHashJoinStructure(t *testing.T) {
	hj := tinyHashJoin()
	d, tree := checkWorkload(t, hj)
	if hj.BuildBytes()+hj.ProbeBytes() != hj.Config().PartitionBytes {
		t.Fatalf("partition split inconsistent")
	}
	// Every build record matches 2 probe records -> probe is (about) twice
	// build, up to integer-division rounding of the partition split.
	if diff := hj.ProbeBytes() - 2*hj.BuildBytes(); diff < 0 || diff > 2 {
		t.Fatalf("probe/build ratio: %d vs %d", hj.ProbeBytes(), hj.BuildBytes())
	}
	wantSub := int(hj.SubPartitions())
	var builds, probes int
	for _, task := range d.Tasks() {
		switch {
		case strings.HasPrefix(task.Name, "build-"):
			builds++
		case strings.HasPrefix(task.Name, "probe-"):
			probes++
		}
	}
	if builds != wantSub {
		t.Fatalf("builds = %d, want %d", builds, wantSub)
	}
	if probes <= builds {
		t.Fatalf("fine-grained probe should have multiple tasks per sub-partition: probes=%d builds=%d", probes, builds)
	}
	// Probe tasks depend on their build task.
	for _, task := range d.Tasks() {
		if strings.HasPrefix(task.Name, "probe-") && len(task.Preds) == 0 {
			t.Fatalf("probe task %s has no predecessors", task.Name)
		}
	}
	// Group tree has one group per sub-partition.
	if len(tree.Root.Children) != wantSub {
		t.Fatalf("group tree children = %d, want %d", len(tree.Root.Children), wantSub)
	}
}

func TestHashJoinCoarseGrainedHasOneProbePerSubPartition(t *testing.T) {
	cfg := tinyHashJoin().Config()
	cfg.CoarseGrained = true
	hj := NewHashJoin(cfg)
	d, _, err := hj.Build()
	if err != nil {
		t.Fatal(err)
	}
	var probes int
	for _, task := range d.Tasks() {
		if strings.HasPrefix(task.Name, "probe-") {
			probes++
		}
	}
	if probes != int(hj.SubPartitions()) {
		t.Fatalf("coarse-grained probes = %d, want %d", probes, hj.SubPartitions())
	}
}

func TestLUStructure(t *testing.T) {
	lu := NewLU(LUConfig{N: 128, BlockElems: 32})
	d, _ := checkWorkload(t, lu)
	nb := int64(4)
	var diag, trsm, gemm int64
	for _, task := range d.Tasks() {
		switch {
		case strings.HasPrefix(task.Name, "lu("):
			diag++
		case strings.HasPrefix(task.Name, "trsm"):
			trsm++
		case strings.HasPrefix(task.Name, "gemm"):
			gemm++
		}
	}
	if diag != nb {
		t.Fatalf("diag tasks = %d, want %d", diag, nb)
	}
	var wantTrsm, wantGemm int64
	for k := int64(0); k < nb; k++ {
		wantTrsm += 2 * (nb - k - 1)
		wantGemm += (nb - k - 1) * (nb - k - 1)
	}
	if trsm != wantTrsm || gemm != wantGemm {
		t.Fatalf("trsm=%d (want %d) gemm=%d (want %d)", trsm, wantTrsm, gemm, wantGemm)
	}
	if lu.MatrixBytes() != 128*128*8 {
		t.Fatalf("MatrixBytes = %d", lu.MatrixBytes())
	}
}

func TestLURejectsBadConfig(t *testing.T) {
	if _, _, err := NewLU(LUConfig{N: 100, BlockElems: 32}).Build(); err == nil {
		t.Fatalf("non-multiple N accepted")
	}
	if _, _, err := NewLU(LUConfig{N: -4, BlockElems: 2}).Build(); err == nil {
		t.Fatalf("negative N accepted")
	}
}

func TestMatMulStructure(t *testing.T) {
	mm := NewMatMul(MatMulConfig{N: 128, BlockElems: 32})
	d, _ := checkWorkload(t, mm)
	// 4x4 output blocks plus the start task.
	if d.NumTasks() != 17 {
		t.Fatalf("matmul tasks = %d, want 17", d.NumTasks())
	}
	if _, _, err := NewMatMul(MatMulConfig{N: 100, BlockElems: 32}).Build(); err == nil {
		t.Fatalf("non-multiple N accepted")
	}
}

func TestQuicksortImbalancedSplits(t *testing.T) {
	qs := NewQuicksort(QuicksortConfig{Elements: 1 << 15, LeafElems: 1 << 11})
	d, _ := checkWorkload(t, qs)
	// Find a partition task whose two recursive children differ in size;
	// with splits drawn from [0.25, 0.75] imbalance is near-certain.
	imbalanced := false
	for _, task := range d.Tasks() {
		if !strings.HasPrefix(task.Name, "partition") || len(task.Succs) != 2 {
			continue
		}
		a := d.Task(task.Succs[0]).Param
		b := d.Task(task.Succs[1]).Param
		if a != b {
			imbalanced = true
			break
		}
	}
	if !imbalanced {
		t.Fatalf("quicksort splits look perfectly balanced; expected irregular divide")
	}
	// Determinism: rebuilding produces the identical DAG shape.
	d2, _, err := NewQuicksort(QuicksortConfig{Elements: 1 << 15, LeafElems: 1 << 11}).Build()
	if err != nil {
		t.Fatal(err)
	}
	if d2.NumTasks() != d.NumTasks() || d2.TotalInstrs() != d.TotalInstrs() {
		t.Fatalf("quicksort build is not deterministic")
	}
}

func TestQuicksortRejectsBadSplitRange(t *testing.T) {
	if _, _, err := NewQuicksort(QuicksortConfig{Elements: 1024, MinSplit: 0.9, MaxSplit: 0.1}).Build(); err == nil {
		t.Fatalf("invalid split range accepted")
	}
}

func TestHeatStructure(t *testing.T) {
	h := NewHeat(HeatConfig{Rows: 64, Cols: 64, Steps: 3, RowsPerTask: 16})
	d, tree := checkWorkload(t, h)
	// 4 blocks per step + 1 barrier per step + init task.
	want := 1 + 3*(4+1)
	if d.NumTasks() != want {
		t.Fatalf("heat tasks = %d, want %d", d.NumTasks(), want)
	}
	if len(tree.Root.Children) != 3 {
		t.Fatalf("heat step groups = %d, want 3", len(tree.Root.Children))
	}
	if h.GridBytes() != 64*64*8 {
		t.Fatalf("GridBytes = %d", h.GridBytes())
	}
	if _, _, err := NewHeat(HeatConfig{Rows: -1}).Build(); err == nil {
		t.Fatalf("negative rows accepted")
	}
}

func TestReferenceStreamsAreReplayable(t *testing.T) {
	// The simulator and the profiler replay the same DAG; generators must
	// produce identical streams after ResetRefs.
	d, _, err := tinyMergesort().Build()
	if err != nil {
		t.Fatal(err)
	}
	var task *dag.Task
	for _, cand := range d.Tasks() {
		if cand.Refs != nil && cand.Refs.Len() > 0 {
			task = cand
			break
		}
	}
	if task == nil {
		t.Fatalf("no task with references found")
	}
	a := refs.Collect(task.Refs)
	b := refs.Collect(task.Refs)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay differs at ref %d", i)
		}
	}
}

func TestRegistryRejectsBadRegistrations(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("duplicate", func() { Register("mergesort", func() Workload { return nil }) })
	mustPanic("empty name", func() { Register("", func() Workload { return nil }) })
	mustPanic("nil factory", func() { Register("x", nil) })
}

func TestUnknownWorkloadErrorListsNames(t *testing.T) {
	_, err := New("bogus")
	if err == nil {
		t.Fatalf("unknown workload accepted")
	}
	for _, name := range []string{"mergesort", "bfs", "pagerank"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list %q", err, name)
		}
	}
}

// TestWorkloadGeneratorsImplementBulk pins the contract the simulator's
// batched reference reader relies on: every task generator a workload emits
// supports refs.Bulk natively, so the hot loop never falls back to
// per-reference dynamic dispatch.  A representative regular, irregular and
// stencil workload stand in for the full registry (all workloads compose
// the same refs generators, each of which asserts Bulk at compile time).
func TestWorkloadGeneratorsImplementBulk(t *testing.T) {
	builds := map[string]Workload{
		"mergesort": NewMergesort(MergesortConfig{Elements: 4 << 10, TaskWorkingSetBytes: 1 << 10}),
		"hashjoin":  NewHashJoin(HashJoinConfig{PartitionBytes: 1 << 20, SubPartitionBytes: 64 << 10}),
		"heat":      NewHeat(HeatConfig{Rows: 64, Cols: 64, Steps: 2}),
		"bfs":       NewBFS(BFSConfig{Shape: GraphShape{Family: "uniform", Vertices: 1 << 10}}),
	}
	for name, w := range builds {
		d, _, err := w.Build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, task := range d.Tasks() {
			if task.Refs == nil {
				continue
			}
			if _, ok := task.Refs.(refs.Bulk); !ok {
				t.Fatalf("%s: task %q generator %T does not implement refs.Bulk", name, task.Name, task.Refs)
			}
		}
	}
}
