package workload

import (
	"fmt"

	"cmpsched/internal/dag"
	"cmpsched/internal/imath"
	"cmpsched/internal/refs"
	"cmpsched/internal/taskgroup"
)

// HeatConfig parameterises the Heat diffusion (Jacobi stencil) benchmark,
// one of the scientific-simulation benchmarks summarised in §5.5.  Each time
// step updates every grid point from its neighbours in the previous-step
// buffer; the grid is split into row blocks that are updated by parallel
// tasks, with a synchronisation between steps.  When the two grid buffers
// fit in the shared L2 the benchmark has excellent reuse across steps and
// scheduling barely matters; when they do not, every step streams the grid
// from memory under either scheduler.
type HeatConfig struct {
	// Rows and Cols are the grid dimensions in elements (doubles).
	// Defaults 512 x 512 (a 2 MB grid).
	Rows, Cols int64
	// Steps is the number of time steps (default 20).
	Steps int64
	// RowsPerTask is the row-block height per task (default 32).
	RowsPerTask int64
	// ElemBytes is the element size (8 for doubles).
	ElemBytes int64
	// LineBytes is the reference granularity (default 128).
	LineBytes int64
	// InstrsPerElem is the instruction cost per grid point per step.
	InstrsPerElem int64
	// SpawnInstrs is the per-task and per-barrier overhead.
	SpawnInstrs int64
}

func (c HeatConfig) withDefaults() HeatConfig {
	if c.Rows == 0 {
		c.Rows = 512
	}
	if c.Cols == 0 {
		c.Cols = 512
	}
	if c.Steps == 0 {
		c.Steps = 20
	}
	if c.RowsPerTask == 0 {
		c.RowsPerTask = 32
	}
	if c.ElemBytes == 0 {
		c.ElemBytes = 8
	}
	if c.LineBytes == 0 {
		c.LineBytes = DefaultLineBytes
	}
	if c.InstrsPerElem == 0 {
		c.InstrsPerElem = 8
	}
	if c.SpawnInstrs == 0 {
		c.SpawnInstrs = 200
	}
	return c
}

// Heat builds Jacobi-stencil DAGs.
type Heat struct {
	cfg HeatConfig
}

// NewHeat returns a Heat workload; zero config fields take defaults.
func NewHeat(cfg HeatConfig) *Heat { return &Heat{cfg: cfg.withDefaults()} }

// Name implements Workload.
func (h *Heat) Name() string { return "heat" }

// Config returns the effective configuration.
func (h *Heat) Config() HeatConfig { return h.cfg }

// GridBytes returns the size of one grid buffer.
func (h *Heat) GridBytes() int64 { return h.cfg.Rows * h.cfg.Cols * h.cfg.ElemBytes }

// Build implements Workload.
func (h *Heat) Build() (*dag.DAG, *taskgroup.Tree, error) {
	c := h.cfg
	if c.Rows <= 0 || c.Cols <= 0 || c.Steps <= 0 || c.RowsPerTask <= 0 {
		return nil, nil, fmt.Errorf("workload: heat: non-positive sizes")
	}
	d := dag.New(fmt.Sprintf("heat-%dx%dx%d", c.Rows, c.Cols, c.Steps))
	tree := taskgroup.New("heat")

	rowBytes := c.Cols * c.ElemBytes
	blocks := imath.CeilDiv(c.Rows, c.RowsPerTask)
	perLine := imath.Max(1, c.InstrsPerElem*c.LineBytes/c.ElemBytes)

	prevBarrier := d.AddComputeTask("heat-init", c.SpawnInstrs)
	tree.Own(tree.Root, prevBarrier.ID)

	for step := int64(0); step < c.Steps; step++ {
		stepGroup := tree.AddChild(tree.Root, fmt.Sprintf("step-%d", step), "heat.go:step", float64(2*h.GridBytes()), 0)
		src, dst := baseGridA, baseGridB
		if step%2 == 1 {
			src, dst = dst, src
		}
		ids := make([]dag.TaskID, 0, blocks)
		for blk := int64(0); blk < blocks; blk++ {
			firstRow := blk * c.RowsPerTask
			rows := imath.Min(c.RowsPerTask, c.Rows-firstRow)
			// Read the block plus one halo row on each side; write the
			// block into the destination buffer.
			readFirst := imath.Max(0, firstRow-1)
			readRows := imath.Min(c.Rows, firstRow+rows+1) - readFirst
			gen := refs.NewWithTail(refs.NewConcat(
				&refs.Scan{Base: src + uint64(readFirst*rowBytes), Bytes: readRows * rowBytes, LineBytes: c.LineBytes, InstrsPerRef: perLine},
				&refs.Scan{Base: dst + uint64(firstRow*rowBytes), Bytes: rows * rowBytes, LineBytes: c.LineBytes, Write: true, InstrsPerRef: perLine / 4},
			), c.SpawnInstrs)
			t := d.AddTask(fmt.Sprintf("heat[%d].rows[%d:%d)", step, firstRow, firstRow+rows), gen)
			t.Site = "heat.go:block"
			t.Param = float64(readRows * rowBytes)
			t.Level = int(step)
			d.MustEdge(prevBarrier.ID, t.ID)
			tree.Own(stepGroup, t.ID)
			ids = append(ids, t.ID)
		}
		barrier := d.AddComputeTask(fmt.Sprintf("heat-sync-%d", step), c.SpawnInstrs)
		barrier.Site = "heat.go:step"
		barrier.Level = int(step)
		for _, id := range ids {
			d.MustEdge(id, barrier.ID)
		}
		tree.Own(stepGroup, barrier.ID)
		prevBarrier = barrier
	}

	if err := d.Validate(); err != nil {
		return nil, nil, fmt.Errorf("workload: heat: %w", err)
	}
	if err := tree.Finalize(d); err != nil {
		return nil, nil, fmt.Errorf("workload: heat: %w", err)
	}
	return d, tree, nil
}
