package workload

import (
	"fmt"

	"cmpsched/internal/dag"
	"cmpsched/internal/imath"
	"cmpsched/internal/prng"
	"cmpsched/internal/refs"
	"cmpsched/internal/taskgroup"
)

// QuicksortConfig parameterises the parallel Quicksort benchmark (§5.5).
//
// Quicksort follows the recursive divide-and-conquer paradigm like
// Mergesort, but its "divide" step (the partition around a pivot) can split
// a sub-problem into two highly imbalanced parts, which is the property the
// paper calls out: PDF must handle irregular, dynamically spawned tasks.
// The generator draws pivot split fractions deterministically from a
// configurable range to model that imbalance.
type QuicksortConfig struct {
	// Elements is the number of 4-byte keys to sort. Default 1<<20.
	Elements int64
	// ElemBytes is the key size (default 4).
	ElemBytes int64
	// LineBytes is the reference granularity (default 128).
	LineBytes int64
	// LeafElems is the sub-array size sorted sequentially. Default 4096.
	LeafElems int64
	// MinSplit and MaxSplit bound the fraction of elements that fall on
	// the left of the pivot (defaults 0.25 and 0.75).
	MinSplit, MaxSplit float64
	// PartitionInstrsPerElem and SortInstrsPerElem are instruction costs.
	PartitionInstrsPerElem int64
	SortInstrsPerElem      int64
	// SpawnInstrs is the spawn/sync overhead per recursive call.
	SpawnInstrs int64
	// Seed drives the deterministic pivot choices.
	Seed uint64
}

func (c QuicksortConfig) withDefaults() QuicksortConfig {
	if c.Elements == 0 {
		c.Elements = 1 << 20
	}
	if c.ElemBytes == 0 {
		c.ElemBytes = 4
	}
	if c.LineBytes == 0 {
		c.LineBytes = DefaultLineBytes
	}
	if c.LeafElems == 0 {
		c.LeafElems = 4096
	}
	if c.MinSplit == 0 {
		c.MinSplit = 0.25
	}
	if c.MaxSplit == 0 {
		c.MaxSplit = 0.75
	}
	if c.PartitionInstrsPerElem == 0 {
		c.PartitionInstrsPerElem = 4
	}
	if c.SortInstrsPerElem == 0 {
		c.SortInstrsPerElem = 6
	}
	if c.SpawnInstrs == 0 {
		c.SpawnInstrs = 200
	}
	if c.Seed == 0 {
		c.Seed = 0x5eed_ca11
	}
	return c
}

// Quicksort builds parallel Quicksort DAGs.
type Quicksort struct {
	cfg QuicksortConfig
}

// NewQuicksort returns a Quicksort workload; zero fields take defaults.
func NewQuicksort(cfg QuicksortConfig) *Quicksort {
	return &Quicksort{cfg: cfg.withDefaults()}
}

// Name implements Workload.
func (q *Quicksort) Name() string { return "quicksort" }

// Config returns the effective configuration.
func (q *Quicksort) Config() QuicksortConfig { return q.cfg }

// Build implements Workload.
func (q *Quicksort) Build() (*dag.DAG, *taskgroup.Tree, error) {
	c := q.cfg
	if c.Elements <= 0 || c.LeafElems <= 0 {
		return nil, nil, fmt.Errorf("workload: quicksort: non-positive sizes")
	}
	if c.MinSplit <= 0 || c.MaxSplit >= 1 || c.MinSplit > c.MaxSplit {
		return nil, nil, fmt.Errorf("workload: quicksort: invalid split range [%f, %f]", c.MinSplit, c.MaxSplit)
	}
	d := dag.New(fmt.Sprintf("quicksort-%dK", c.Elements>>10))
	tree := taskgroup.New("quicksort")
	b := &qsBuilder{cfg: c, d: d, tree: tree, rng: prng.SplitMix64{State: c.Seed}}
	b.sort(tree.Root, 0, c.Elements, 0)
	if err := d.Validate(); err != nil {
		return nil, nil, fmt.Errorf("workload: quicksort: %w", err)
	}
	if err := tree.Finalize(d); err != nil {
		return nil, nil, fmt.Errorf("workload: quicksort: %w", err)
	}
	return d, tree, nil
}

type qsBuilder struct {
	cfg  QuicksortConfig
	d    *dag.DAG
	tree *taskgroup.Tree
	rng  prng.SplitMix64
}

// splitFraction returns a deterministic pseudo-random fraction in
// [MinSplit, MaxSplit].
func (b *qsBuilder) splitFraction() float64 {
	u := float64(b.rng.Next()>>11) / float64(1<<53)
	return b.cfg.MinSplit + u*(b.cfg.MaxSplit-b.cfg.MinSplit)
}

func (b *qsBuilder) instrsPerLine(perElem int64) int64 {
	elemsPerLine := b.cfg.LineBytes / b.cfg.ElemBytes
	if elemsPerLine < 1 {
		elemsPerLine = 1
	}
	return perElem * elemsPerLine
}

func (b *qsBuilder) region(lo, n int64) (uint64, int64) {
	return baseQuicksort + uint64(lo*b.cfg.ElemBytes), n * b.cfg.ElemBytes
}

// sort emits tasks sorting elements [lo, lo+n). It returns the entry task
// and the exit tasks (quicksort has no combine step, so a sub-DAG may have
// several sinks).
func (b *qsBuilder) sort(parent *taskgroup.Node, lo, n int64, depth int) (entry dag.TaskID, exits []dag.TaskID) {
	nBytes := n * b.cfg.ElemBytes
	group := b.tree.AddChild(parent, fmt.Sprintf("qsort[%d:%d)", lo, lo+n), "quicksort.go:sort", float64(nBytes), 0)

	if n <= b.cfg.LeafElems {
		addr, bytes := b.region(lo, n)
		passes := imath.Max(1, imath.Log2Ceil(n))
		onePass := refs.NewConcat(
			&refs.Scan{Base: addr, Bytes: bytes, LineBytes: b.cfg.LineBytes, InstrsPerRef: b.instrsPerLine(b.cfg.SortInstrsPerElem)},
			&refs.Scan{Base: addr, Bytes: bytes, LineBytes: b.cfg.LineBytes, Write: true, InstrsPerRef: b.instrsPerLine(b.cfg.SortInstrsPerElem) / 2},
		)
		t := b.d.AddTask(fmt.Sprintf("qsortleaf[%d:%d)", lo, lo+n), refs.NewWithTail(refs.NewRepeat(onePass, int(passes)), b.cfg.SpawnInstrs))
		t.Site = "quicksort.go:leaf"
		t.Param = float64(nBytes)
		t.Level = depth
		b.tree.Own(group, t.ID)
		return t.ID, []dag.TaskID{t.ID}
	}

	// Partition: one sequential pass reading and writing the region.
	addr, bytes := b.region(lo, n)
	part := b.d.AddTask(fmt.Sprintf("partition[%d:%d)", lo, lo+n), refs.NewWithTail(refs.NewInterleave(
		&refs.Scan{Base: addr, Bytes: bytes, LineBytes: b.cfg.LineBytes, InstrsPerRef: b.instrsPerLine(b.cfg.PartitionInstrsPerElem)},
		&refs.Scan{Base: addr, Bytes: bytes, LineBytes: b.cfg.LineBytes, Write: true, InstrsPerRef: b.instrsPerLine(b.cfg.PartitionInstrsPerElem) / 2},
	), b.cfg.SpawnInstrs))
	part.Site = "quicksort.go:partition"
	part.Param = float64(nBytes)
	part.Level = depth
	b.tree.Own(group, part.ID)

	// The divide point is chosen by the pivot, not for balance.
	leftN := int64(float64(n) * b.splitFraction())
	if leftN < 1 {
		leftN = 1
	}
	if leftN >= n {
		leftN = n - 1
	}
	leftEntry, leftExits := b.sort(group, lo, leftN, depth+1)
	rightEntry, rightExits := b.sort(group, lo+leftN, n-leftN, depth+1)
	b.d.MustEdge(part.ID, leftEntry)
	b.d.MustEdge(part.ID, rightEntry)
	return part.ID, append(leftExits, rightExits...)
}
