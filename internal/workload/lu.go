package workload

import (
	"fmt"

	"cmpsched/internal/dag"
	"cmpsched/internal/imath"
	"cmpsched/internal/refs"
	"cmpsched/internal/taskgroup"
)

// LUConfig parameterises the LU factorisation benchmark.
//
// LU is the paper's representative scientific benchmark: easy
// parallelisation and small per-task working sets (a few B×B blocks), so its
// L2 misses per instruction are tiny and PDF and WS perform alike.  The
// paper used the recursive Cilk LU; this generator uses the equivalent
// right-looking blocked factorisation, whose DAG has the same block-level
// tasks (diagonal factorisation, triangular solves, trailing matrix
// updates) and the same per-task working sets, which is what the cache
// comparison depends on (see DESIGN.md).
type LUConfig struct {
	// N is the matrix dimension in elements (doubles). The default, 512
	// (a 2 MB matrix), is the paper's 2K x 2K input scaled down with the
	// caches.
	N int64
	// BlockElems is the block size B controlling the grain of
	// parallelism; a smaller block creates more, smaller tasks.
	BlockElems int64
	// ElemBytes is the element size (8 for doubles).
	ElemBytes int64
	// LineBytes is the reference granularity (default 128).
	LineBytes int64
	// FlopsPerInstr scales floating-point work into retired instructions
	// (default 3: an in-order scalar core spends loads, address arithmetic
	// and stores alongside each floating-point operation).
	FlopsPerInstr int64
	// SpawnInstrs is the per-task spawn/sync overhead.
	SpawnInstrs int64
}

func (c LUConfig) withDefaults() LUConfig {
	if c.N == 0 {
		c.N = 512
	}
	if c.BlockElems == 0 {
		c.BlockElems = 32
	}
	if c.ElemBytes == 0 {
		c.ElemBytes = 8
	}
	if c.LineBytes == 0 {
		c.LineBytes = DefaultLineBytes
	}
	if c.FlopsPerInstr == 0 {
		c.FlopsPerInstr = 3
	}
	if c.SpawnInstrs == 0 {
		c.SpawnInstrs = 200
	}
	return c
}

// LU builds blocked LU-factorisation DAGs.
type LU struct {
	cfg LUConfig
}

// NewLU returns an LU workload; zero config fields take defaults.
func NewLU(cfg LUConfig) *LU { return &LU{cfg: cfg.withDefaults()} }

// Name implements Workload.
func (l *LU) Name() string { return "lu" }

// Config returns the effective configuration.
func (l *LU) Config() LUConfig { return l.cfg }

// MatrixBytes returns the size of the input matrix.
func (l *LU) MatrixBytes() int64 { return l.cfg.N * l.cfg.N * l.cfg.ElemBytes }

// Build implements Workload.
func (l *LU) Build() (*dag.DAG, *taskgroup.Tree, error) {
	c := l.cfg
	if c.N <= 0 || c.BlockElems <= 0 {
		return nil, nil, fmt.Errorf("workload: lu: non-positive sizes")
	}
	if c.N%c.BlockElems != 0 {
		return nil, nil, fmt.Errorf("workload: lu: N=%d not a multiple of block size %d", c.N, c.BlockElems)
	}
	nb := c.N / c.BlockElems
	d := dag.New(fmt.Sprintf("lu-%d", c.N))
	tree := taskgroup.New("lu")

	blockBytes := c.BlockElems * c.BlockElems * c.ElemBytes
	blockAddr := func(i, j int64) uint64 {
		return baseMatrixA + uint64((i*nb+j)*blockBytes)
	}
	// lastWriter[i*nb+j] is the task that last wrote block (i,j).
	lastWriter := make([]dag.TaskID, nb*nb)
	for i := range lastWriter {
		lastWriter[i] = dag.None
	}
	dependOn := func(t dag.TaskID, prev dag.TaskID) {
		if prev != dag.None && prev != t {
			d.MustEdge(prev, t)
		}
	}

	b := c.BlockElems
	linesPerBlock := imath.Max(1, blockBytes/c.LineBytes)
	// Per-reference instruction budgets chosen so the per-task totals
	// approximate the block kernels' flop counts.
	diagInstrs := (2 * b * b * b / 3) * c.FlopsPerInstr
	trsmInstrs := (b * b * b) * c.FlopsPerInstr
	gemmInstrs := (2 * b * b * b) * c.FlopsPerInstr

	blockScan := func(i, j int64, write bool, perRef int64) *refs.Scan {
		return &refs.Scan{Base: blockAddr(i, j), Bytes: blockBytes, LineBytes: c.LineBytes, Write: write, InstrsPerRef: perRef}
	}

	for k := int64(0); k < nb; k++ {
		group := tree.AddChild(tree.Root, fmt.Sprintf("iteration-%d", k), "lu.go:iteration", float64((nb-k)*(nb-k))*float64(blockBytes), 0)

		// Diagonal block factorisation.
		diag := d.AddTask(fmt.Sprintf("lu(%d,%d)", k, k), refs.NewWithTail(refs.NewConcat(
			blockScan(k, k, false, diagInstrs/(2*linesPerBlock)),
			blockScan(k, k, true, diagInstrs/(2*linesPerBlock)),
		), c.SpawnInstrs))
		diag.Site = "lu.go:diag"
		diag.Level = int(k)
		dependOn(diag.ID, lastWriter[k*nb+k])
		lastWriter[k*nb+k] = diag.ID
		tree.Own(group, diag.ID)

		// Row and column panel solves.
		rowSolves := make([]dag.TaskID, 0, nb-k-1)
		colSolves := make([]dag.TaskID, 0, nb-k-1)
		for j := k + 1; j < nb; j++ {
			t := d.AddTask(fmt.Sprintf("trsmU(%d,%d)", k, j), refs.NewWithTail(refs.NewConcat(
				blockScan(k, k, false, trsmInstrs/(3*linesPerBlock)),
				blockScan(k, j, false, trsmInstrs/(3*linesPerBlock)),
				blockScan(k, j, true, trsmInstrs/(3*linesPerBlock)),
			), c.SpawnInstrs))
			t.Site = "lu.go:trsm"
			t.Level = int(k)
			d.MustEdge(diag.ID, t.ID)
			dependOn(t.ID, lastWriter[k*nb+j])
			lastWriter[k*nb+j] = t.ID
			tree.Own(group, t.ID)
			rowSolves = append(rowSolves, t.ID)
		}
		for i := k + 1; i < nb; i++ {
			t := d.AddTask(fmt.Sprintf("trsmL(%d,%d)", i, k), refs.NewWithTail(refs.NewConcat(
				blockScan(k, k, false, trsmInstrs/(3*linesPerBlock)),
				blockScan(i, k, false, trsmInstrs/(3*linesPerBlock)),
				blockScan(i, k, true, trsmInstrs/(3*linesPerBlock)),
			), c.SpawnInstrs))
			t.Site = "lu.go:trsm"
			t.Level = int(k)
			d.MustEdge(diag.ID, t.ID)
			dependOn(t.ID, lastWriter[i*nb+k])
			lastWriter[i*nb+k] = t.ID
			tree.Own(group, t.ID)
			colSolves = append(colSolves, t.ID)
		}

		// Trailing-matrix update.
		for i := k + 1; i < nb; i++ {
			for j := k + 1; j < nb; j++ {
				t := d.AddTask(fmt.Sprintf("gemm(%d,%d,%d)", i, j, k), refs.NewWithTail(refs.NewConcat(
					blockScan(i, k, false, gemmInstrs/(4*linesPerBlock)),
					blockScan(k, j, false, gemmInstrs/(4*linesPerBlock)),
					blockScan(i, j, false, gemmInstrs/(4*linesPerBlock)),
					blockScan(i, j, true, gemmInstrs/(4*linesPerBlock)),
				), c.SpawnInstrs))
				t.Site = "lu.go:gemm"
				t.Level = int(k)
				d.MustEdge(colSolves[i-k-1], t.ID)
				d.MustEdge(rowSolves[j-k-1], t.ID)
				dependOn(t.ID, lastWriter[i*nb+j])
				lastWriter[i*nb+j] = t.ID
				tree.Own(group, t.ID)
			}
		}
	}

	if err := d.Validate(); err != nil {
		return nil, nil, fmt.Errorf("workload: lu: %w", err)
	}
	if err := tree.Finalize(d); err != nil {
		return nil, nil, fmt.Errorf("workload: lu: %w", err)
	}
	return d, tree, nil
}
