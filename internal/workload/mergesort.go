package workload

import (
	"fmt"

	"cmpsched/internal/dag"
	"cmpsched/internal/imath"
	"cmpsched/internal/refs"
	"cmpsched/internal/taskgroup"
)

// MergesortConfig parameterises the parallel Mergesort benchmark.
//
// The benchmark follows the paper's description (§4.2): a recursive
// divide-and-conquer mergesort, structured after libpmsort but with the
// serial merge replaced by a parallel merge that picks k splitting points
// and merges the resulting k pairs of array chunks in parallel.  Sorting a
// sub-array of n bytes uses 2n bytes of memory (the source and destination
// buffers alternate by recursion level), which is the working-set rule the
// task-coarsening analysis relies on.
type MergesortConfig struct {
	// Elements is the number of keys to sort. The default, 1<<20 keys of
	// 4 bytes (4 MB), is the paper's 32M-key input divided by the default
	// capacity scale factor of 32.
	Elements int64
	// ElemBytes is the size of one key (default 4, as in the paper).
	ElemBytes int64
	// LineBytes is the granularity of emitted references (default 128).
	LineBytes int64
	// TaskWorkingSetBytes is the target per-task working set (the Figure 6
	// knob). Leaf sub-arrays are sized to half of it (sorting n bytes
	// touches 2n) and parallel-merge chunks to half of it. Default 16 KB,
	// the scaled equivalent of the paper's well-performing 512 KB tasks.
	TaskWorkingSetBytes int64
	// MergeTasksPerLevel is the minimum aggregate number of merge tasks
	// per DAG level (the paper uses 64 so that every core finds work).
	MergeTasksPerLevel int64
	// SpawnInstrs is the instruction overhead charged to each divide and
	// combine task, modelling spawn/sync and parallel-code overhead.
	SpawnInstrs int64
	// MergeInstrsPerElem is the instruction cost per element merged.
	MergeInstrsPerElem int64
	// SortInstrsPerElem is the instruction cost per element per pass of
	// the sequential leaf sort.
	SortInstrsPerElem int64
	// SerialMerge reproduces the original libpmsort behaviour of merging
	// two sorted sub-arrays with a single serial merge task instead of
	// the parallel k-way split merge; used by the §5.4 coarse- vs
	// fine-grained comparison.
	SerialMerge bool
}

// withDefaults fills zero fields with defaults.
func (c MergesortConfig) withDefaults() MergesortConfig {
	if c.Elements == 0 {
		c.Elements = 1 << 20
	}
	if c.ElemBytes == 0 {
		c.ElemBytes = 4
	}
	if c.LineBytes == 0 {
		c.LineBytes = DefaultLineBytes
	}
	if c.TaskWorkingSetBytes == 0 {
		c.TaskWorkingSetBytes = 16 << 10
	}
	if c.MergeTasksPerLevel == 0 {
		c.MergeTasksPerLevel = 64
	}
	if c.SpawnInstrs == 0 {
		c.SpawnInstrs = 200
	}
	if c.MergeInstrsPerElem == 0 {
		c.MergeInstrsPerElem = 8
	}
	if c.SortInstrsPerElem == 0 {
		c.SortInstrsPerElem = 6
	}
	return c
}

// Mergesort builds parallel Mergesort DAGs.
type Mergesort struct {
	cfg MergesortConfig
}

// NewMergesort returns a Mergesort workload; zero config fields take
// defaults.
func NewMergesort(cfg MergesortConfig) *Mergesort {
	return &Mergesort{cfg: cfg.withDefaults()}
}

// Name implements Workload.
func (m *Mergesort) Name() string { return "mergesort" }

// Config returns the effective (default-filled) configuration.
func (m *Mergesort) Config() MergesortConfig { return m.cfg }

// TotalBytes returns the size of the array being sorted.
func (m *Mergesort) TotalBytes() int64 { return m.cfg.Elements * m.cfg.ElemBytes }

// Build implements Workload.
func (m *Mergesort) Build() (*dag.DAG, *taskgroup.Tree, error) {
	c := m.cfg
	if c.Elements <= 0 || c.ElemBytes <= 0 {
		return nil, nil, fmt.Errorf("workload: mergesort: non-positive input size")
	}
	if c.TaskWorkingSetBytes < 2*c.LineBytes {
		return nil, nil, fmt.Errorf("workload: mergesort: TaskWorkingSetBytes %d smaller than two cache lines", c.TaskWorkingSetBytes)
	}
	d := dag.New(fmt.Sprintf("mergesort-%dK", c.Elements>>10))
	tree := taskgroup.New("mergesort")

	b := &msBuilder{cfg: c, d: d, tree: tree, totalBytes: c.Elements * c.ElemBytes}
	b.sort(tree.Root, 0, c.Elements, 0, true, 0)
	if err := d.Validate(); err != nil {
		return nil, nil, fmt.Errorf("workload: mergesort: %w", err)
	}
	if err := tree.Finalize(d); err != nil {
		return nil, nil, fmt.Errorf("workload: mergesort: %w", err)
	}
	return d, tree, nil
}

type msBuilder struct {
	cfg        MergesortConfig
	d          *dag.DAG
	tree       *taskgroup.Tree
	totalBytes int64
}

// leafElems returns the number of elements sorted sequentially in a leaf:
// half the target task working set (sorting n bytes touches 2n bytes).
func (b *msBuilder) leafElems() int64 {
	elems := (b.cfg.TaskWorkingSetBytes / 2) / b.cfg.ElemBytes
	if elems < 1 {
		elems = 1
	}
	return elems
}

// mergeChunkElems returns the output elements per parallel-merge task.
func (b *msBuilder) mergeChunkElems() int64 {
	elems := (b.cfg.TaskWorkingSetBytes / 2) / b.cfg.ElemBytes
	if elems < 1 {
		elems = 1
	}
	return elems
}

// region returns the byte range [addr, addr+len) of elements [lo, lo+n) in
// buffer A or B.
func (b *msBuilder) region(lo, n int64, inA bool) (uint64, int64) {
	base := baseArrayA
	if !inA {
		base = baseArrayB
	}
	return base + uint64(lo*b.cfg.ElemBytes), n * b.cfg.ElemBytes
}

// instrsPerLine converts a per-element instruction cost into a per-line
// cost at the configured reference granularity.
func (b *msBuilder) instrsPerLine(perElem int64) int64 {
	elemsPerLine := b.cfg.LineBytes / b.cfg.ElemBytes
	if elemsPerLine < 1 {
		elemsPerLine = 1
	}
	return perElem * elemsPerLine
}

// sort emits the DAG for sorting elements [lo, lo+n), leaving the result in
// buffer A when dstA is true (in B otherwise). depth is the recursion depth
// from the root (0 at the top) and phase is the group's phase within its
// parent.  It returns the entry and exit task IDs of the generated sub-DAG.
func (b *msBuilder) sort(parent *taskgroup.Node, lo, n int64, depth int, dstA bool, phase int) (dag.TaskID, dag.TaskID) {
	nBytes := n * b.cfg.ElemBytes
	group := b.tree.AddChild(parent, fmt.Sprintf("sort[%d:%d)", lo, lo+n), "mergesort.go:sort", float64(2*nBytes), phase)

	if n <= b.leafElems() {
		id := b.leafSort(lo, n, depth, dstA)
		b.tree.Own(group, id)
		return id, id
	}

	// Divide task: spawn overhead plus the k-way split-point selection
	// (binary searches) modelled as a handful of references at merge time.
	divide := b.d.AddComputeTask(fmt.Sprintf("divide[%d:%d)", lo, lo+n), b.cfg.SpawnInstrs)
	divide.Site = "mergesort.go:sort"
	divide.Param = float64(2 * nBytes)
	divide.Level = depth
	b.tree.Own(group, divide.ID)

	half := n / 2
	leftEntry, leftExit := b.sort(group, lo, half, depth+1, !dstA, 0)
	rightEntry, rightExit := b.sort(group, lo+half, n-half, depth+1, !dstA, 0)
	b.d.MustEdge(divide.ID, leftEntry)
	b.d.MustEdge(divide.ID, rightEntry)

	// Parallel merge of the two sorted halves (living in the opposite
	// buffer) into the destination buffer.
	mergeGroup := b.tree.AddChild(group, fmt.Sprintf("merge[%d:%d)", lo, lo+n), "mergesort.go:merge", float64(2*nBytes), 1)
	mergeIDs := b.parallelMerge(mergeGroup, lo, n, depth, dstA)
	for _, mid := range mergeIDs {
		b.d.MustEdge(leftExit, mid)
		b.d.MustEdge(rightExit, mid)
	}

	combine := b.d.AddComputeTask(fmt.Sprintf("combine[%d:%d)", lo, lo+n), b.cfg.SpawnInstrs)
	combine.Site = "mergesort.go:sort"
	combine.Param = float64(2 * nBytes)
	combine.Level = depth
	b.tree.Own(group, combine.ID)
	for _, mid := range mergeIDs {
		b.d.MustEdge(mid, combine.ID)
	}
	return divide.ID, combine.ID
}

// leafSort emits a single task that sorts elements [lo, lo+n) sequentially.
// It is modelled as ceil(log2 n) passes, each reading the current source
// region and writing the destination region (the two buffers alternate), so
// the task's working set is 2*nBytes, matching the paper's accounting.
func (b *msBuilder) leafSort(lo, n int64, depth int, dstA bool) dag.TaskID {
	passes := imath.Log2Ceil(n)
	if passes < 1 {
		passes = 1
	}
	srcAddr, nBytes := b.region(lo, n, !dstA)
	dstAddr, _ := b.region(lo, n, dstA)
	perLine := b.instrsPerLine(b.cfg.SortInstrsPerElem)
	onePass := refs.NewConcat(
		&refs.Scan{Base: srcAddr, Bytes: nBytes, LineBytes: b.cfg.LineBytes, InstrsPerRef: perLine},
		&refs.Scan{Base: dstAddr, Bytes: nBytes, LineBytes: b.cfg.LineBytes, Write: true, InstrsPerRef: perLine},
	)
	gen := refs.NewWithTail(refs.NewRepeat(onePass, int(passes)), b.cfg.SpawnInstrs)
	t := b.d.AddTask(fmt.Sprintf("sortleaf[%d:%d)", lo, lo+n), gen)
	t.Site = "mergesort.go:sortleaf"
	t.Param = float64(2 * nBytes)
	t.Level = depth
	return t.ID
}

// parallelMerge emits the k merge tasks that merge the two sorted halves of
// [lo, lo+n) from the source buffer into the destination buffer, splitting
// the output into chunks.  The chunk count is at least large enough to keep
// MergeTasksPerLevel tasks per DAG level in aggregate.
func (b *msBuilder) parallelMerge(group *taskgroup.Node, lo, n int64, depth int, dstA bool) []dag.TaskID {
	nBytes := n * b.cfg.ElemBytes
	mergesAtLevel := imath.Max(1, b.totalBytes/nBytes)
	k := imath.CeilDiv(n, b.mergeChunkElems())
	if minK := imath.CeilDiv(b.cfg.MergeTasksPerLevel, mergesAtLevel); k < minK {
		k = minK
	}
	if k > n {
		k = n
	}
	if b.cfg.SerialMerge {
		k = 1
	}
	perLine := b.instrsPerLine(b.cfg.MergeInstrsPerElem)
	ids := make([]dag.TaskID, 0, k)
	chunk := imath.CeilDiv(n, k)
	for start := int64(0); start < n; start += chunk {
		cnt := imath.Min(chunk, n-start)
		// A merge task reads roughly cnt elements spread over the two
		// source halves and writes cnt output elements. We model the
		// reads as two scans of cnt/2 elements at the matching offsets
		// of each half and the write as a scan of the output chunk,
		// plus a short binary-search probe for the split points.
		srcLoAddr, _ := b.region(lo+start/2, cnt/2+1, !dstA)
		srcHiAddr, _ := b.region(lo+n/2+start/2, cnt/2+1, !dstA)
		dstAddr, _ := b.region(lo+start, cnt, dstA)
		halfBytes := (cnt/2 + 1) * b.cfg.ElemBytes
		search := &refs.Strided{
			Base:         srcLoAddr,
			StrideBytes:  imath.Max(b.cfg.LineBytes, nBytes/16),
			Count:        imath.Min(8, imath.Max(1, imath.Log2Ceil(n))),
			InstrsPerRef: 12,
		}
		gen := refs.NewWithTail(refs.NewConcat(
			search,
			refs.NewInterleave(
				&refs.Scan{Base: srcLoAddr, Bytes: halfBytes, LineBytes: b.cfg.LineBytes, InstrsPerRef: perLine},
				&refs.Scan{Base: srcHiAddr, Bytes: halfBytes, LineBytes: b.cfg.LineBytes, InstrsPerRef: perLine},
			),
			&refs.Scan{Base: dstAddr, Bytes: cnt * b.cfg.ElemBytes, LineBytes: b.cfg.LineBytes, Write: true, InstrsPerRef: perLine / 2},
		), b.cfg.SpawnInstrs/4)
		t := b.d.AddTask(fmt.Sprintf("merge[%d:%d)+%d", lo, lo+n, start), gen)
		t.Site = "mergesort.go:merge"
		t.Param = float64(2 * nBytes)
		t.Level = depth
		b.tree.Own(group, t.ID)
		ids = append(ids, t.ID)
	}
	return ids
}
