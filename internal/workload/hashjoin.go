package workload

import (
	"fmt"

	"cmpsched/internal/dag"
	"cmpsched/internal/imath"
	"cmpsched/internal/refs"
	"cmpsched/internal/taskgroup"
)

// HashJoinConfig parameterises the hash-join benchmark.
//
// The benchmark models the join phase of a state-of-the-art database hash
// join (§4.2): a pair of build and probe partitions that together fit in the
// join's memory buffer is processed sub-partition by sub-partition.  Each
// sub-partition's build fragment is scanned and its keys inserted into a
// hash table sized to fit the L2 cache; the corresponding probe fragment is
// then scanned, probing the hash table for matches and concatenating the
// matching records into the output.  The original code ran one thread per
// sub-partition; as in the paper, the probe procedure is further divided
// into parallel tasks to produce finer-grained threading.
type HashJoinConfig struct {
	// PartitionBytes is the combined size of the build and probe
	// partitions being joined (the paper's 1 GB memory buffer, divided by
	// the default scale factor of 32: 32 MB).
	PartitionBytes int64
	// SubPartitionBytes is the build-side bytes per sub-partition; the
	// hash table built from it is sized to fit within the L2 cache.
	// Default 80 KB (an eighth of the scaled 16-core default L2, the way
	// HashJoinConfigForL2 would size it). Use HashJoinConfigForL2 to
	// derive it from a specific configuration.
	SubPartitionBytes int64
	// RecordBytes is the record size (100 bytes in the paper).
	RecordBytes int64
	// ProbeMatchesPerBuild is the number of probe records matching each
	// build record (2 in the paper).
	ProbeMatchesPerBuild int64
	// ProbeChunkBytes is the probe bytes handled by one fine-grained
	// probe task. Default 8 KB, small enough that the probes of a single
	// sub-partition can occupy every core of the largest configurations.
	ProbeChunkBytes int64
	// LineBytes is the granularity of emitted references (default 128).
	LineBytes int64
	// HashTableFudge scales the hash-table size relative to the build
	// fragment (buckets, pointers, padding). Default 1.5.
	HashTableFudge float64
	// BuildInstrsPerRecord and ProbeInstrsPerRecord are the instruction
	// costs per record processed.
	BuildInstrsPerRecord int64
	ProbeInstrsPerRecord int64
	// SpawnInstrs is the overhead charged to partitioning/finish tasks.
	SpawnInstrs int64
	// Seed makes the hash-access sequences deterministic.
	Seed uint64
	// CoarseGrained reproduces the original code's threading (one task
	// per sub-partition, serial probe) instead of the fine-grained
	// version; used by the granularity comparison in §5.4.
	CoarseGrained bool
}

func (c HashJoinConfig) withDefaults() HashJoinConfig {
	if c.PartitionBytes == 0 {
		c.PartitionBytes = 32 << 20
	}
	if c.SubPartitionBytes == 0 {
		c.SubPartitionBytes = 80 << 10
	}
	if c.RecordBytes == 0 {
		c.RecordBytes = 100
	}
	if c.ProbeMatchesPerBuild == 0 {
		c.ProbeMatchesPerBuild = 2
	}
	if c.ProbeChunkBytes == 0 {
		c.ProbeChunkBytes = 8 << 10
	}
	if c.LineBytes == 0 {
		c.LineBytes = DefaultLineBytes
	}
	if c.HashTableFudge == 0 {
		c.HashTableFudge = 1.5
	}
	if c.BuildInstrsPerRecord == 0 {
		c.BuildInstrsPerRecord = 120
	}
	if c.ProbeInstrsPerRecord == 0 {
		c.ProbeInstrsPerRecord = 100
	}
	if c.SpawnInstrs == 0 {
		c.SpawnInstrs = 200
	}
	if c.Seed == 0 {
		c.Seed = 0x9a4e_c0de
	}
	return c
}

// HashJoin builds hash-join DAGs.
type HashJoin struct {
	cfg HashJoinConfig
}

// NewHashJoin returns a HashJoin workload; zero config fields take defaults.
func NewHashJoin(cfg HashJoinConfig) *HashJoin {
	return &HashJoin{cfg: cfg.withDefaults()}
}

// HashJoinConfigForL2 returns the default configuration with the
// sub-partition size chosen for the given shared-L2 capacity, the way a
// database system sizes its cache-resident hash tables.  The build fragment
// is a twelfth of the L2: with the ~1.5x hash-table expansion and the
// streaming probe input and output sharing the cache, that is the largest
// sub-partition whose hash table stays resident between probes under LRU.
// Probe chunks are sized so one sub-partition's probes can occupy every
// core of the largest configurations.
func HashJoinConfigForL2(l2Bytes int64) HashJoinConfig {
	cfg := HashJoinConfig{}.withDefaults()
	sub := l2Bytes / 12
	if sub < 16<<10 {
		sub = 16 << 10
	}
	cfg.SubPartitionBytes = sub
	chunk := sub / 24
	if chunk < 2<<10 {
		chunk = 2 << 10
	}
	cfg.ProbeChunkBytes = chunk
	return cfg
}

// Name implements Workload.
func (h *HashJoin) Name() string { return "hashjoin" }

// Config returns the effective configuration.
func (h *HashJoin) Config() HashJoinConfig { return h.cfg }

// BuildBytes returns the build-partition size implied by the configuration:
// every build record matches ProbeMatchesPerBuild probe records of the same
// size, so the build side is 1/(1+matches) of the partition pair.
func (h *HashJoin) BuildBytes() int64 {
	return h.cfg.PartitionBytes / (1 + h.cfg.ProbeMatchesPerBuild)
}

// ProbeBytes returns the probe-partition size.
func (h *HashJoin) ProbeBytes() int64 { return h.cfg.PartitionBytes - h.BuildBytes() }

// SubPartitions returns the number of cache-sized sub-partitions.
func (h *HashJoin) SubPartitions() int64 {
	return imath.Max(1, imath.CeilDiv(h.BuildBytes(), h.cfg.SubPartitionBytes))
}

// Build implements Workload.
func (h *HashJoin) Build() (*dag.DAG, *taskgroup.Tree, error) {
	c := h.cfg
	if c.PartitionBytes <= 0 || c.RecordBytes <= 0 {
		return nil, nil, fmt.Errorf("workload: hashjoin: non-positive sizes")
	}
	d := dag.New(fmt.Sprintf("hashjoin-%dMB", c.PartitionBytes>>20))
	tree := taskgroup.New("hashjoin")

	buildBytes := h.BuildBytes()
	probeBytes := h.ProbeBytes()
	subParts := h.SubPartitions()
	buildPer := imath.CeilDiv(buildBytes, subParts)
	probePer := imath.CeilDiv(probeBytes, subParts)
	htBytes := int64(float64(buildPer) * c.HashTableFudge)
	if htBytes < c.LineBytes {
		htBytes = c.LineBytes
	}

	root := d.AddComputeTask("join-setup", c.SpawnInstrs)
	root.Site = "hashjoin.go:join"
	tree.Own(tree.Root, root.ID)

	final := make([]dag.TaskID, 0, subParts)
	for sp := int64(0); sp < subParts; sp++ {
		group := tree.AddChild(tree.Root, fmt.Sprintf("subpartition-%d", sp), "hashjoin.go:subpartition", float64(buildPer+probePer), 0)

		buildBase := baseBuild + uint64(sp*buildPer)
		probeBase := baseProbe + uint64(sp*probePer)
		htBase := baseHash + uint64(sp*htBytes)
		outBase := baseOutput + uint64(sp*probePer*2)

		buildRecords := imath.Max(1, buildPer/c.RecordBytes)
		buildGen := refs.NewWithTail(refs.NewInterleave(
			&refs.Scan{Base: buildBase, Bytes: buildPer, LineBytes: c.LineBytes, InstrsPerRef: c.BuildInstrsPerRecord * c.LineBytes / c.RecordBytes},
			&refs.Random{Base: htBase, Bytes: htBytes, LineBytes: c.LineBytes, Count: buildRecords, Seed: c.Seed + uint64(sp)*7919, Write: true, InstrsPerRef: c.BuildInstrsPerRecord / 2},
		), c.SpawnInstrs)
		build := d.AddTask(fmt.Sprintf("build-%d", sp), buildGen)
		build.Site = "hashjoin.go:build"
		build.Param = float64(buildPer)
		build.Level = 0
		d.MustEdge(root.ID, build.ID)
		tree.Own(group, build.ID)

		probeGroup := tree.AddChild(group, fmt.Sprintf("probe-%d", sp), "hashjoin.go:probe", float64(probePer), 1)
		chunk := c.ProbeChunkBytes
		if c.CoarseGrained {
			chunk = probePer
		}
		nChunks := imath.Max(1, imath.CeilDiv(probePer, chunk))
		probeIDs := make([]dag.TaskID, 0, nChunks)
		for pc := int64(0); pc < nChunks; pc++ {
			lo := pc * chunk
			sz := imath.Min(chunk, probePer-lo)
			records := imath.Max(1, sz/c.RecordBytes)
			// Each probe record: stream the probe input, hash the key
			// and follow the bucket chain (two dependent hash-table
			// reads), fetch the matching build record from the
			// cache-resident build fragment, and append the concatenated
			// result to the output. The hash-table and build-fragment
			// accesses are the reusable part of the working set that
			// constructive sharing keeps on chip.
			streaming := refs.NewInterleave(
				&refs.Scan{Base: probeBase + uint64(lo), Bytes: sz, LineBytes: c.LineBytes, InstrsPerRef: c.ProbeInstrsPerRecord * c.LineBytes / (2 * c.RecordBytes)},
				&refs.Scan{Base: outBase + uint64(lo*2), Bytes: sz * 2, LineBytes: c.LineBytes, Write: true, InstrsPerRef: 24},
			)
			resident := refs.NewInterleave(
				&refs.Random{Base: htBase, Bytes: htBytes, LineBytes: c.LineBytes, Count: 2 * records, Seed: c.Seed ^ (uint64(sp)<<20 + uint64(pc)), InstrsPerRef: c.ProbeInstrsPerRecord / 4},
				&refs.Random{Base: buildBase, Bytes: buildPer, LineBytes: c.LineBytes, Count: records, Seed: c.Seed ^ (uint64(sp)<<21 + uint64(pc)*13), InstrsPerRef: c.ProbeInstrsPerRecord / 4},
			)
			gen := refs.NewWithTail(refs.NewInterleave(streaming, resident), c.SpawnInstrs/4)
			probe := d.AddTask(fmt.Sprintf("probe-%d.%d", sp, pc), gen)
			probe.Site = "hashjoin.go:probe"
			probe.Param = float64(sz)
			probe.Level = 1
			d.MustEdge(build.ID, probe.ID)
			tree.Own(probeGroup, probe.ID)
			probeIDs = append(probeIDs, probe.ID)
		}

		finish := d.AddComputeTask(fmt.Sprintf("finish-%d", sp), c.SpawnInstrs)
		finish.Site = "hashjoin.go:subpartition"
		finish.Level = 2
		for _, pid := range probeIDs {
			d.MustEdge(pid, finish.ID)
		}
		tree.Own(group, finish.ID)
		final = append(final, finish.ID)
	}

	done := d.AddComputeTask("join-done", c.SpawnInstrs)
	done.Site = "hashjoin.go:join"
	for _, f := range final {
		d.MustEdge(f, done.ID)
	}
	tree.Own(tree.Root, done.ID)

	if err := d.Validate(); err != nil {
		return nil, nil, fmt.Errorf("workload: hashjoin: %w", err)
	}
	if err := tree.Finalize(d); err != nil {
		return nil, nil, fmt.Errorf("workload: hashjoin: %w", err)
	}
	return d, tree, nil
}
