package sweepsvc

import (
	"strings"
	"testing"
	"time"

	"cmpsched/internal/dag"
	"cmpsched/internal/sweep"
	"cmpsched/internal/workload"
)

// TestPanickingJobBecomesFailedRow: a job that panics inside its build must
// come back as that job's error event while the daemon — runners included —
// keeps serving everything else.
func TestPanickingJobBecomesFailedRow(t *testing.T) {
	mk := newJobMaker()
	svc := NewService(Options{Workers: 1})

	bad := sweep.NewJob("svc-test", "panicky", "pdf", testCfg(t), func() (*dag.DAG, error) {
		panic("workload bug")
	})
	sw, err := svc.Submit([]sweep.Job{mk.job(t, "ok-before", nil, nil), bad, mk.job(t, "ok-after", nil, nil)})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	results, terminal := collect(t, sw)
	if terminal.Type != EventDone {
		t.Fatalf("terminal = %+v, want done", terminal)
	}
	var failed, completed int
	for _, ev := range results {
		if ev.Err != "" {
			failed++
			if !strings.Contains(ev.Err, "job panicked") {
				t.Fatalf("failed row error = %q, want the recovered panic", ev.Err)
			}
		} else {
			completed++
		}
	}
	if failed != 1 || completed != 2 {
		t.Fatalf("failed=%d completed=%d, want 1 failed and 2 completed", failed, completed)
	}

	// The runner pool survived: a fresh submission still completes.
	sw2, err := svc.Submit([]sweep.Job{mk.job(t, "post-panic", nil, nil)})
	if err != nil {
		t.Fatalf("submit after panic: %v", err)
	}
	if _, terminal := collect(t, sw2); terminal.Type != EventDone {
		t.Fatalf("post-panic sweep terminal = %+v", terminal)
	}
}

// TestJobTimeoutFailsRow: a service-level JobTimeout turns a runaway
// simulation into a failed row instead of a wedged runner.
func TestJobTimeoutFailsRow(t *testing.T) {
	svc := NewService(Options{Workers: 1, JobTimeout: time.Nanosecond})
	// Big enough that the simulator reaches its cancellation poll; the tiny
	// test DAG can finish before the first poll fires.
	slow := sweep.NewJob("svc-test", "too-slow", "pdf", testCfg(t), func() (*dag.DAG, error) {
		d, _, err := workload.NewMergesort(workload.MergesortConfig{
			Elements: 64 << 10, TaskWorkingSetBytes: 4 << 10}).Build()
		return d, err
	})
	sw, err := svc.Submit([]sweep.Job{slow})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	results, terminal := collect(t, sw)
	if terminal.Type != EventDone {
		t.Fatalf("terminal = %+v, want done", terminal)
	}
	if len(results) != 1 || !strings.Contains(results[0].Err, "exceeded timeout") {
		t.Fatalf("results = %+v, want one timeout-failed row", results)
	}
}
