package sweepsvc

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"cmpsched/internal/sweep"
)

// Handler is the HTTP/JSON binding of a Service:
//
//	POST   /sweeps       submit a Request; streams the sweep's events as
//	                     NDJSON (or SSE when Accept: text/event-stream),
//	                     with the sweep ID in the X-Sweep-ID header
//	GET    /sweeps/{id}  status snapshot of an active sweep
//	DELETE /sweeps/{id}  cancel an active sweep
//	GET    /metrics      JSON metrics snapshot (registry + derived rates)
//	GET    /healthz      liveness; 503 once draining
//
// Admission failures map to transport codes: SaturatedError to 429 with a
// Retry-After header, ErrDraining to 503 with Retry-After, LimitError and
// wire-validation failures to 400.  A client that disconnects mid-stream
// cancels its sweep, releasing its claim on every unstarted job.
type Handler struct {
	// Expand converts a decoded, validated Request into jobs; it defaults
	// to (*Request).Jobs.  It is an exported seam so tests can drive the
	// full HTTP path with jobs of controllable duration.
	Expand func(*Request) ([]sweep.Job, error)
	// Logf, when non-nil, receives one line per submission and rejection.
	Logf func(format string, args ...any)

	svc *Service
	mux *http.ServeMux
}

// NewHandler binds a service.
func NewHandler(svc *Service) *Handler {
	h := &Handler{
		svc:    svc,
		Expand: func(r *Request) ([]sweep.Job, error) { return r.Jobs() },
	}
	h.mux = http.NewServeMux()
	h.mux.HandleFunc("GET /healthz", h.healthz)
	h.mux.HandleFunc("GET /metrics", h.metrics)
	h.mux.HandleFunc("POST /sweeps", h.submit)
	h.mux.HandleFunc("GET /sweeps/{id}", h.status)
	h.mux.HandleFunc("DELETE /sweeps/{id}", h.cancel)
	return h
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

// logf logs through the handler's logger when one is set.
func (h *Handler) logf(format string, args ...any) {
	if h.Logf != nil {
		h.Logf(format, args...)
	}
}

// healthz reports liveness; a draining service answers 503 so load
// balancers stop routing to it while its backlog finishes.
func (h *Handler) healthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if h.svc.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

// MetricsSnapshot is the /metrics response body: the raw registry samples
// plus the derived service rates dashboards want precomputed.
type MetricsSnapshot struct {
	// Service carries the derived service-level summary.
	Service ServiceSummary `json:"service"`
	// Metrics is the flattened registry snapshot (service svc.* and engine
	// sweep.* names alike).
	Metrics map[string]int64 `json:"metrics"`
}

// ServiceSummary is the derived half of a metrics snapshot.
type ServiceSummary struct {
	// UptimeSec is the service's age in seconds.
	UptimeSec float64 `json:"uptime_sec"`
	// QueueDepth is the number of admitted-but-unstarted jobs.
	QueueDepth int64 `json:"queue_depth"`
	// InflightJobs is the number of jobs on runners right now.
	InflightJobs int64 `json:"inflight_jobs"`
	// ActiveSweeps is the number of admitted, unfinished sweeps.
	ActiveSweeps int64 `json:"active_sweeps"`
	// JobsServed counts jobs delivered to clients: completions plus
	// cross-client dedup subscriptions.
	JobsServed int64 `json:"jobs_served"`
	// DedupHits counts cross-client single-flight subscriptions.
	DedupHits int64 `json:"dedup_hits"`
	// CacheHits and CacheMisses are the result cache's counters.
	CacheHits int64 `json:"cache_hits"`
	// CacheMisses counts result-cache misses.
	CacheMisses int64 `json:"cache_misses"`
	// CacheHitRate is hits/(hits+misses), 0 with no traffic or no cache.
	CacheHitRate float64 `json:"cache_hit_rate"`
	// SimCycles is the total simulated cycles this process computed.
	SimCycles int64 `json:"sim_cycles"`
	// CyclesPerSec is SimCycles divided by uptime.
	CyclesPerSec float64 `json:"cycles_per_sec"`
}

// metrics renders the snapshot.
func (h *Handler) metrics(w http.ResponseWriter, r *http.Request) {
	samples := h.svc.Metrics().Snapshot()
	flat := make(map[string]int64, len(samples))
	for _, s := range samples {
		flat[s.Name] = s.Value
	}
	hits, misses := h.svc.CacheStats()
	uptime := h.svc.Uptime().Seconds()
	sum := ServiceSummary{
		UptimeSec:    uptime,
		QueueDepth:   flat["svc.queue_depth"],
		InflightJobs: flat["svc.inflight_jobs"],
		ActiveSweeps: flat["svc.active_sweeps"],
		JobsServed:   flat["svc.jobs_completed"] + flat["svc.jobs_deduped"],
		DedupHits:    flat["svc.jobs_deduped"],
		CacheHits:    hits,
		CacheMisses:  misses,
		SimCycles:    flat["sweep.sim_cycles"],
	}
	if total := hits + misses; total > 0 {
		sum.CacheHitRate = float64(hits) / float64(total)
	}
	if uptime > 0 {
		sum.CyclesPerSec = float64(sum.SimCycles) / uptime
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(MetricsSnapshot{Service: sum, Metrics: flat})
}

// retryAfterSeconds renders a Retry-After value, at least one second.
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// submit decodes, validates, admits and streams one sweep.
func (h *Handler) submit(w http.ResponseWriter, r *http.Request) {
	req, err := DecodeRequest(r.Body)
	if err == nil {
		err = req.Validate()
	}
	if err != nil {
		h.logf("sweepd: reject: %v", err)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	jobs, err := h.Expand(req)
	if err != nil {
		h.logf("sweepd: reject: %v", err)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	sw, err := h.svc.Submit(jobs)
	if err != nil {
		h.reject(w, err)
		return
	}
	h.logf("sweepd: %s: accepted %d jobs", sw.ID(), len(jobs))

	sse := r.Header.Get("Accept") == "text/event-stream"
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("X-Sweep-ID", sw.ID())
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	ctx := r.Context()
	for {
		select {
		case ev, ok := <-sw.Events():
			if !ok {
				return
			}
			if sse {
				fmt.Fprintf(w, "event: %s\ndata: ", ev.Type)
			}
			_ = enc.Encode(ev) // Encode terminates the JSON with \n: one event per line.
			if sse {
				fmt.Fprint(w, "\n")
			}
			if flusher != nil {
				flusher.Flush()
			}
		case <-ctx.Done():
			// The client went away: release the sweep's claim on its
			// unstarted jobs, then drain the stream so the sweep retires.
			h.svc.Cancel(sw.ID())
			for range sw.Events() {
			}
			h.logf("sweepd: %s: client disconnected, cancelled", sw.ID())
			return
		}
	}
}

// reject maps an admission error to its transport code.
func (h *Handler) reject(w http.ResponseWriter, err error) {
	h.logf("sweepd: reject: %v", err)
	switch e := err.(type) {
	case *SaturatedError:
		w.Header().Set("Retry-After", retryAfterSeconds(e.RetryAfter))
		http.Error(w, e.Error(), http.StatusTooManyRequests)
	case *LimitError:
		http.Error(w, e.Error(), http.StatusBadRequest)
	default:
		if err == ErrDraining {
			w.Header().Set("Retry-After", retryAfterSeconds(h.svc.opts.RetryAfter))
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// status answers GET /sweeps/{id}.
func (h *Handler) status(w http.ResponseWriter, r *http.Request) {
	st, ok := h.svc.Status(r.PathValue("id"))
	if !ok {
		http.Error(w, "no active sweep "+r.PathValue("id"), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(st)
}

// cancel answers DELETE /sweeps/{id}.
func (h *Handler) cancel(w http.ResponseWriter, r *http.Request) {
	if !h.svc.Cancel(r.PathValue("id")) {
		http.Error(w, "no active sweep "+r.PathValue("id"), http.StatusNotFound)
		return
	}
	h.logf("sweepd: %s: cancelled", r.PathValue("id"))
	w.WriteHeader(http.StatusNoContent)
}
