package sweepsvc

import (
	"strings"
	"testing"

	"cmpsched/internal/experiments"
	"cmpsched/internal/sweep"
)

// TestWireJobsMatchSpecJobs is the canonicalization keystone: a wire grid
// expands to exactly the job keys — same order, same hashes — that
// sweep.Spec produces for cmd/sweep, so wire submissions share cache
// entries with CLI runs.
func TestWireJobsMatchSpecJobs(t *testing.T) {
	req := &Request{
		Workloads:  []string{"mergesort", "hashjoin"},
		Schedulers: []string{"pdf", "ws"},
		Tables:     []string{"default", "45nm"},
		Topologies: []string{"shared", "private"},
		Cores:      []int{2, 8},
		Quick:      true,
		Sequential: true,
	}
	wireJobs, err := req.Jobs()
	if err != nil {
		t.Fatalf("wire Jobs: %v", err)
	}
	spec := sweep.Spec{
		Workloads:  req.Workloads,
		Schedulers: req.Schedulers,
		Tables:     req.Tables,
		Topologies: req.Topologies,
		Cores:      req.Cores,
		Quick:      true,
		Sequential: true,
		Factory:    experiments.Options{Quick: true}.WorkloadFactory(),
	}
	specJobs, err := spec.Jobs()
	if err != nil {
		t.Fatalf("spec Jobs: %v", err)
	}
	if len(wireJobs) != len(specJobs) {
		t.Fatalf("wire expands to %d jobs, spec to %d", len(wireJobs), len(specJobs))
	}
	for i := range wireJobs {
		if wireJobs[i].Key != specJobs[i].Key {
			t.Errorf("job %d: wire key %+v != spec key %+v", i, wireJobs[i].Key, specJobs[i].Key)
		}
		if wireJobs[i].Key.Hash() != specJobs[i].Key.Hash() {
			t.Errorf("job %d: hash mismatch", i)
		}
	}
}

// TestPointShardingPreservesKeys pins the property sweepctl's fan-out rests
// on: expanding a grid to points and submitting each point individually
// yields the same keys in the same positions as submitting the whole grid.
func TestPointShardingPreservesKeys(t *testing.T) {
	req := &Request{
		Workloads:  []string{"mergesort"},
		Schedulers: []string{"pdf", "ws"},
		Topologies: []string{"shared", "clustered:4"},
		Cores:      []int{2, 8},
		Quick:      true,
		Sequential: true,
	}
	full, err := req.Jobs()
	if err != nil {
		t.Fatalf("full Jobs: %v", err)
	}
	points, err := req.ExpandPoints()
	if err != nil {
		t.Fatalf("ExpandPoints: %v", err)
	}
	if len(points) != len(full) {
		t.Fatalf("%d points for %d jobs", len(points), len(full))
	}
	for i, p := range points {
		shard := &Request{Points: []Point{p}, Quick: true}
		jobs, err := shard.Jobs()
		if err != nil {
			t.Fatalf("point %d: %v", i, err)
		}
		if len(jobs) != 1 || jobs[0].Key != full[i].Key {
			t.Errorf("point %d expands to key %+v, want %+v", i, jobs[0].Key, full[i].Key)
		}
	}
}

// TestDecodeRequestStrict: unknown fields and trailing data are rejected.
func TestDecodeRequestStrict(t *testing.T) {
	if _, err := DecodeRequest(strings.NewReader(`{"workloads":["mergesort"],"shedulers":["pdf"]}`)); err == nil {
		t.Errorf("misspelled field must be rejected")
	}
	if _, err := DecodeRequest(strings.NewReader(`{"workloads":["mergesort"]} {"x":1}`)); err == nil {
		t.Errorf("trailing data must be rejected")
	}
	req, err := DecodeRequest(strings.NewReader(`{"workloads":["mergesort"],"quick":true}`))
	if err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	if !req.Quick || len(req.Workloads) != 1 {
		t.Errorf("decoded request = %+v", req)
	}
}

// TestValidateRejections walks every axis's failure mode.
func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		req  Request
		want string
	}{
		{"no workloads", Request{}, "no workloads"},
		{"unknown workload", Request{Workloads: []string{"nope"}}, "nope"},
		{"unknown scheduler", Request{Workloads: []string{"mergesort"}, Schedulers: []string{"nope"}}, "nope"},
		{"unknown table", Request{Workloads: []string{"mergesort"}, Tables: []string{"90nm"}}, "90nm"},
		{"bad topology", Request{Workloads: []string{"mergesort"}, Topologies: []string{"toroidal"}}, "toroidal"},
		{"negative scale", Request{Workloads: []string{"mergesort"}, Scale: -1}, "scale"},
		{"points plus grid", Request{Workloads: []string{"mergesort"}, Points: []Point{{Workload: "mergesort", Scheduler: "pdf", Cores: 2}}}, "mixes"},
		{"point unknown workload", Request{Points: []Point{{Workload: "nope", Scheduler: "pdf", Cores: 2}}}, "nope"},
		{"point bad cores", Request{Points: []Point{{Workload: "mergesort", Scheduler: "pdf", Cores: 3}}}, "3 cores"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.req.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %+v", tc.req)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestValidateAccepts covers the valid shapes, including the sequential
// pseudo-scheduler and parameterised scheduler spellings.
func TestValidateAccepts(t *testing.T) {
	ok := []Request{
		{Workloads: []string{"mergesort"}},
		{Workloads: []string{"bfs"}, Schedulers: []string{"seq", "ws:nearest", "sb"}},
		{Points: []Point{{Workload: "mergesort", Scheduler: "seq", Cores: 2}}},
		{Points: []Point{{Workload: "mergesort", Scheduler: "pdf", Table: "45nm", Topology: "clustered:2", Cores: 8}}},
	}
	for i, req := range ok {
		if err := req.Validate(); err != nil {
			t.Errorf("request %d rejected: %v", i, err)
		}
	}
}
