package sweepsvc

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"cmpsched/internal/config"
	"cmpsched/internal/dag"
	"cmpsched/internal/sweep"
	"cmpsched/internal/workload"
)

// testCfg returns a small simulatable configuration (quick-scale capacity).
func testCfg(t *testing.T) config.CMP {
	t.Helper()
	for _, c := range config.Defaults() {
		if c.Cores == 2 {
			return c.Scaled(config.DefaultScale * 16)
		}
	}
	t.Fatal("no 2-core default configuration")
	return config.CMP{}
}

// buildTinyDAG builds a milliseconds-scale mergesort DAG.
func buildTinyDAG() (*dag.DAG, error) {
	d, _, err := workload.NewMergesort(workload.MergesortConfig{Elements: 1 << 10, TaskWorkingSetBytes: 1 << 10}).Build()
	return d, err
}

// jobMaker hands out jobs with per-name build counting and optional
// started/gate channels for deterministic scheduling control.  Job keys are
// distinguished by name (folded into Params), so two jobs of the same name
// are duplicates by sweep.Key.
type jobMaker struct {
	mu     sync.Mutex
	builds map[string]int
}

func newJobMaker() *jobMaker {
	return &jobMaker{builds: make(map[string]int)}
}

func (m *jobMaker) buildCount(name string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.builds[name]
}

// job returns a job named name.  When started is non-nil it receives (non-
// blocking) as soon as a runner begins the build; when gate is non-nil the
// build blocks until the gate is closed.
func (m *jobMaker) job(t *testing.T, name string, started chan<- struct{}, gate <-chan struct{}) sweep.Job {
	cfg := testCfg(t)
	build := func() (*dag.DAG, error) {
		m.mu.Lock()
		m.builds[name]++
		m.mu.Unlock()
		if started != nil {
			select {
			case started <- struct{}{}:
			default:
			}
		}
		if gate != nil {
			<-gate
		}
		return buildTinyDAG()
	}
	return sweep.NewJob("svc-test", name, "pdf", cfg, build)
}

// countingCache wraps a cache and counts Put calls per key hash — one Put
// per actual simulation, which is what the single-flight tests assert on.
type countingCache struct {
	inner *sweep.MemoryCache
	mu    sync.Mutex
	puts  map[string]int
}

func newCountingCache() *countingCache {
	return &countingCache{inner: sweep.NewMemoryCache(), puts: make(map[string]int)}
}

func (c *countingCache) Get(k sweep.Key) (sweep.Entry, bool) { return c.inner.Get(k) }

func (c *countingCache) Put(e sweep.Entry) error {
	c.mu.Lock()
	c.puts[e.Key.Hash()]++
	c.mu.Unlock()
	return c.inner.Put(e)
}

func (c *countingCache) Stats() (hits, misses int64) { return c.inner.Stats() }

func (c *countingCache) putCounts() map[string]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int, len(c.puts))
	for k, v := range c.puts {
		out[k] = v
	}
	return out
}

// collect drains a sweep's stream, separating result events from the
// terminal event.
func collect(t *testing.T, sw *Sweep) (results []Event, terminal Event) {
	t.Helper()
	deadline := time.After(30 * time.Second)
	for {
		select {
		case ev, ok := <-sw.Events():
			if !ok {
				if terminal.Type == "" {
					t.Fatalf("stream closed without a terminal event")
				}
				return results, terminal
			}
			switch ev.Type {
			case EventAccepted:
			case EventResult:
				results = append(results, ev)
			case EventDone, EventCancelled:
				terminal = ev
			}
		case <-deadline:
			t.Fatalf("timed out draining sweep %s", sw.ID())
		}
	}
}

// TestSingleFlightAcrossClients pins the cross-client dedup contract with
// deterministic overlap: client B submits while A's duplicated jobs are
// still queued or running, each duplicated key simulates exactly once, and
// both clients receive its row.
func TestSingleFlightAcrossClients(t *testing.T) {
	mk := newJobMaker()
	cc := newCountingCache()
	svc := NewService(Options{Workers: 1, Cache: cc})
	defer svc.Drain(context.Background())

	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	// A: j0 blocks on the gate, j1 and j2 queue behind it.
	a, err := svc.Submit([]sweep.Job{
		mk.job(t, "j0", started, gate),
		mk.job(t, "j1", nil, nil),
		mk.job(t, "j2", nil, nil),
	})
	if err != nil {
		t.Fatalf("submit A: %v", err)
	}
	<-started // j0 is on the runner; j1, j2 are queued.

	// B overlaps A on j1 and j2 while they are provably unstarted.
	b, err := svc.Submit([]sweep.Job{
		mk.job(t, "j1", nil, nil),
		mk.job(t, "j3", nil, nil),
		mk.job(t, "j2", nil, nil),
	})
	if err != nil {
		t.Fatalf("submit B: %v", err)
	}
	close(gate)

	aResults, aTerm := collect(t, a)
	bResults, bTerm := collect(t, b)
	if len(aResults) != 3 || len(bResults) != 3 {
		t.Fatalf("rows: A=%d B=%d, want 3 and 3", len(aResults), len(bResults))
	}
	if aTerm.Type != EventDone || bTerm.Type != EventDone {
		t.Fatalf("terminals: A=%s B=%s", aTerm.Type, bTerm.Type)
	}
	if bTerm.Summary.DedupHits != 2 {
		t.Errorf("B dedup hits = %d, want 2 (j1 and j2)", bTerm.Summary.DedupHits)
	}
	// Every key simulated exactly once (one cache Put per key) even though
	// j1 and j2 were wanted by both clients.
	for key, n := range cc.putCounts() {
		if n != 1 {
			t.Errorf("key %s simulated %d times, want 1", key, n)
		}
	}
	for _, name := range []string{"j0", "j1", "j2", "j3"} {
		if n := mk.buildCount(name); n != 1 {
			t.Errorf("job %s built %d times, want 1", name, n)
		}
	}
	// Both clients hold the duplicated rows, and they are the same rows.
	rowCycles := func(evs []Event, idx int) int64 {
		for _, ev := range evs {
			if ev.Index == idx {
				return ev.Result.Sim.Cycles
			}
		}
		t.Fatalf("missing row %d", idx)
		return 0
	}
	if a1, b0 := rowCycles(aResults, 1), rowCycles(bResults, 0); a1 != b0 {
		t.Errorf("duplicated j1 rows differ: %d vs %d", a1, b0)
	}
	if a2, b2 := rowCycles(aResults, 2), rowCycles(bResults, 2); a2 != b2 {
		t.Errorf("duplicated j2 rows differ: %d vs %d", a2, b2)
	}
}

// TestConcurrentGridSubmissions is the ISSUE's satellite shape: two
// goroutines submit overlapping wire grids concurrently; every duplicated
// key must simulate exactly once (served by single-flight or by the result
// cache) and both clients must receive a full, identical row set.
func TestConcurrentGridSubmissions(t *testing.T) {
	cc := newCountingCache()
	svc := NewService(Options{Workers: 2, Cache: cc})
	defer svc.Drain(context.Background())

	req := &Request{Workloads: []string{"mergesort"}, Schedulers: []string{"pdf", "ws"}, Cores: []int{2, 8}, Quick: true}
	jobs, err := req.Jobs()
	if err != nil {
		t.Fatalf("Jobs: %v", err)
	}

	type stream struct {
		results []Event
		term    Event
	}
	streams := make([]stream, 2)
	var wg sync.WaitGroup
	for i := range streams {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Each client expands its own copy of the grid (fresh builders,
			// same keys), as two real clients would.
			jobs, err := req.Jobs()
			if err != nil {
				t.Errorf("client %d: Jobs: %v", i, err)
				return
			}
			sw, err := svc.Submit(jobs)
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			streams[i].results, streams[i].term = collect(t, sw)
		}(i)
	}
	wg.Wait()

	for key, n := range cc.putCounts() {
		if n != 1 {
			t.Errorf("key %s simulated %d times, want 1", key, n)
		}
	}
	if got := len(cc.putCounts()); got != len(jobs) {
		t.Errorf("distinct keys simulated = %d, want %d", got, len(jobs))
	}
	for i, st := range streams {
		if len(st.results) != len(jobs) {
			t.Fatalf("client %d received %d rows, want %d", i, len(st.results), len(jobs))
		}
	}
	// The overlap was served by the cache or by single-flight; either way
	// both clients' rows must agree point for point.
	byIndex := func(st stream) map[int]int64 {
		out := make(map[int]int64)
		for _, ev := range st.results {
			out[ev.Index] = ev.Result.Sim.Cycles
		}
		return out
	}
	c0, c1 := byIndex(streams[0]), byIndex(streams[1])
	for i := range jobs {
		if c0[i] != c1[i] {
			t.Errorf("row %d differs between clients: %d vs %d cycles", i, c0[i], c1[i])
		}
	}
}

// TestAdmissionSaturation pins the bounded-queue contract: with the queue
// bound at N, the submission that would make N+1 pending jobs is rejected
// with a SaturatedError carrying the retry hint, while admitted sweeps keep
// streaming to completion.
func TestAdmissionSaturation(t *testing.T) {
	mk := newJobMaker()
	svc := NewService(Options{Workers: 1, MaxQueue: 2, RetryAfter: 7 * time.Second})
	defer svc.Drain(context.Background())

	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	a, err := svc.Submit([]sweep.Job{mk.job(t, "a0", started, gate)})
	if err != nil {
		t.Fatalf("submit A: %v", err)
	}
	<-started // a0 runs; the queue is empty.

	b, err := svc.Submit([]sweep.Job{mk.job(t, "b0", nil, nil), mk.job(t, "b1", nil, nil)})
	if err != nil {
		t.Fatalf("submit B (fills the queue): %v", err)
	}

	_, err = svc.Submit([]sweep.Job{mk.job(t, "c0", nil, nil)})
	var sat *SaturatedError
	if !errors.As(err, &sat) {
		t.Fatalf("overflow submission: err = %v, want SaturatedError", err)
	}
	if sat.RetryAfter != 7*time.Second {
		t.Errorf("RetryAfter = %s, want 7s", sat.RetryAfter)
	}
	if mk.buildCount("c0") != 0 {
		t.Errorf("rejected job must not run")
	}

	// The in-flight sweeps are unaffected by the rejection.
	close(gate)
	if _, term := collect(t, a); term.Type != EventDone {
		t.Errorf("A terminal = %s, want done", term.Type)
	}
	if _, term := collect(t, b); term.Type != EventDone {
		t.Errorf("B terminal = %s, want done", term.Type)
	}

	// With the queue drained, admission recovers.
	if _, err := svc.Submit([]sweep.Job{mk.job(t, "d0", nil, nil)}); err != nil {
		t.Fatalf("post-drain submission: %v", err)
	}
}

// TestMaxSweepsSaturation covers the active-sweep bound.
func TestMaxSweepsSaturation(t *testing.T) {
	mk := newJobMaker()
	svc := NewService(Options{Workers: 1, MaxSweeps: 1})
	defer svc.Drain(context.Background())

	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	a, err := svc.Submit([]sweep.Job{mk.job(t, "a0", started, gate)})
	if err != nil {
		t.Fatalf("submit A: %v", err)
	}
	<-started
	var sat *SaturatedError
	if _, err := svc.Submit([]sweep.Job{mk.job(t, "b0", nil, nil)}); !errors.As(err, &sat) {
		t.Fatalf("second sweep: err = %v, want SaturatedError", err)
	}
	close(gate)
	collect(t, a)
}

// TestPerSweepJobLimit covers the job-count limit: a LimitError, not a
// retryable saturation.
func TestPerSweepJobLimit(t *testing.T) {
	mk := newJobMaker()
	svc := NewService(Options{Workers: 1, MaxJobsPerSweep: 2})
	defer svc.Drain(context.Background())
	jobs := []sweep.Job{mk.job(t, "l0", nil, nil), mk.job(t, "l1", nil, nil), mk.job(t, "l2", nil, nil)}
	var lim *LimitError
	if _, err := svc.Submit(jobs); !errors.As(err, &lim) {
		t.Fatalf("err = %v, want LimitError", err)
	}
}

// TestCancelSkipsUnstartedJobs: cancelling a sweep drops its claim on
// queued jobs (they are skipped, never simulated), finishes the running job
// into the cache, and terminates the stream with EventCancelled.
func TestCancelSkipsUnstartedJobs(t *testing.T) {
	mk := newJobMaker()
	cc := newCountingCache()
	svc := NewService(Options{Workers: 1, Cache: cc})

	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	sw, err := svc.Submit([]sweep.Job{
		mk.job(t, "c0", started, gate),
		mk.job(t, "c1", nil, nil),
		mk.job(t, "c2", nil, nil),
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	<-started
	if !svc.Cancel(sw.ID()) {
		t.Fatalf("Cancel reported no active sweep")
	}
	if svc.Cancel(sw.ID()) {
		t.Fatalf("double Cancel must report false")
	}
	_, term := collect(t, sw)
	if term.Type != EventCancelled {
		t.Fatalf("terminal = %s, want cancelled", term.Type)
	}
	close(gate)
	if err := svc.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if n := mk.buildCount("c1") + mk.buildCount("c2"); n != 0 {
		t.Errorf("cancelled queued jobs built %d times, want 0", n)
	}
	// The job that was already running completed into the cache.
	if n := cc.putCounts(); len(n) != 1 {
		t.Errorf("cache holds %d entries, want 1 (the running job)", len(n))
	}
}

// TestDrainRejectsAndFinishes: draining stops admission with ErrDraining
// and completes the backlog; after Drain, no service goroutines remain.
func TestDrainRejectsAndFinishes(t *testing.T) {
	before := runtime.NumGoroutine()
	mk := newJobMaker()
	svc := NewService(Options{Workers: 2})
	sw, err := svc.Submit([]sweep.Job{mk.job(t, "d0", nil, nil), mk.job(t, "d1", nil, nil)})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if err := svc.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, err := svc.Submit([]sweep.Job{mk.job(t, "d2", nil, nil)}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while draining: err = %v, want ErrDraining", err)
	}
	results, term := collect(t, sw)
	if len(results) != 2 || term.Type != EventDone {
		t.Fatalf("backlog must finish under drain: %d rows, terminal %s", len(results), term.Type)
	}
	// Idempotent.
	if err := svc.Drain(context.Background()); err != nil {
		t.Fatalf("second drain: %v", err)
	}
	// No leaked goroutines: the runner pool is gone.  Poll briefly — the
	// last runner may still be between its final send and exit.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before service, %d after drain", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStatusAndMetrics covers the observability surface at the service
// level: Status of an active sweep and the registry counters.
func TestStatusAndMetrics(t *testing.T) {
	mk := newJobMaker()
	svc := NewService(Options{Workers: 1})
	defer svc.Drain(context.Background())

	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	sw, err := svc.Submit([]sweep.Job{mk.job(t, "s0", started, gate), mk.job(t, "s1", nil, nil)})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	<-started
	st, ok := svc.Status(sw.ID())
	if !ok || st.Total != 2 || st.Done != 0 {
		t.Fatalf("status = %+v ok=%v, want total 2 done 0", st, ok)
	}
	if ids := svc.ActiveSweeps(); len(ids) != 1 || ids[0] != sw.ID() {
		t.Fatalf("active sweeps = %v", ids)
	}
	close(gate)
	collect(t, sw)
	if _, ok := svc.Status(sw.ID()); ok {
		t.Fatalf("completed sweep must retire from Status")
	}

	values := make(map[string]int64)
	for _, s := range svc.Metrics().Snapshot() {
		values[s.Name] = s.Value
	}
	for name, want := range map[string]int64{
		"svc.sweeps_accepted":  1,
		"svc.sweeps_completed": 1,
		"svc.jobs_submitted":   2,
		"svc.jobs_completed":   2,
		"svc.active_sweeps":    0,
		"svc.queue_depth":      0,
		"svc.inflight_jobs":    0,
	} {
		if values[name] != want {
			t.Errorf("%s = %d, want %d", name, values[name], want)
		}
	}
	if _, ok := values["sweep.jobs"]; !ok {
		t.Errorf("engine metrics must share the service registry")
	}
}

// TestSubmitEmptyAndFailedJobs covers the degenerate shapes: empty
// submissions are rejected outright, and a failing job streams an error
// event while the rest of the sweep completes.
func TestSubmitEmptyAndFailedJobs(t *testing.T) {
	mk := newJobMaker()
	svc := NewService(Options{Workers: 1})
	defer svc.Drain(context.Background())

	var lim *LimitError
	if _, err := svc.Submit(nil); !errors.As(err, &lim) {
		t.Fatalf("empty submit: err = %v, want LimitError", err)
	}

	bad := sweep.NewJob("svc-test", "bad", "pdf", testCfg(t), func() (*dag.DAG, error) {
		return nil, fmt.Errorf("synthetic build failure")
	})
	sw, err := svc.Submit([]sweep.Job{bad, mk.job(t, "ok", nil, nil)})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	results, term := collect(t, sw)
	if len(results) != 2 {
		t.Fatalf("rows = %d, want 2", len(results))
	}
	if term.Summary.Completed != 1 || term.Summary.Failed != 1 {
		t.Fatalf("summary = %+v, want 1 completed 1 failed", term.Summary)
	}
	for _, ev := range results {
		if ev.Index == 0 && ev.Err == "" {
			t.Errorf("failing job must carry its error")
		}
		if ev.Index == 1 && ev.Result == nil {
			t.Errorf("succeeding job must carry its row")
		}
	}
}
