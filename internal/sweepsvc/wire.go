package sweepsvc

import (
	"encoding/json"
	"fmt"
	"io"

	"cmpsched/internal/cache"
	"cmpsched/internal/config"
	"cmpsched/internal/experiments"
	"cmpsched/internal/sched"
	"cmpsched/internal/sweep"
	"cmpsched/internal/workload"
)

// Request is the wire encoding of one submission: either a declarative grid
// (the cross product of the axis fields, exactly sweep.Spec's semantics) or
// an explicit Points list.  Scale and Quick apply to both forms.
//
// The encoding is strict by design: unknown JSON fields are rejected at
// decode, axis values are validated against the live workload/scheduler
// registries before any job is admitted, and jobs are constructed through
// the same workload factory and configuration tables cmd/sweep uses — so a
// grid submitted over the wire produces byte-identical sweep.Keys (and hence
// shares cache entries) with the same grid run on the CLI.
type Request struct {
	// Workloads lists benchmark names (workload registry spellings).
	Workloads []string `json:"workloads,omitempty"`
	// Schedulers lists scheduler names; empty means {"pdf", "ws"}.
	Schedulers []string `json:"schedulers,omitempty"`
	// Tables lists configuration tables ("default", "45nm"); empty means
	// {"default"}.
	Tables []string `json:"tables,omitempty"`
	// Topologies lists cache topologies ("shared", "private",
	// "clustered:<k>"); empty means {"shared"}.
	Topologies []string `json:"topologies,omitempty"`
	// Cores restricts the core counts; empty means every count the
	// selected tables define.
	Cores []int `json:"cores,omitempty"`
	// Scale is the capacity scale factor (0 means the default).
	Scale int64 `json:"scale,omitempty"`
	// Quick selects reduced inputs, mirroring cmd/sweep -quick.
	Quick bool `json:"quick,omitempty"`
	// Sequential also runs the one-core sequential baseline per point.
	Sequential bool `json:"sequential,omitempty"`
	// Points, when non-empty, is the explicit job list form; the grid axis
	// fields must then be empty.
	Points []Point `json:"points,omitempty"`
}

// Point is one explicit design-space point: exactly one simulation job.
// Zero-valued Table and Topology mean "default" and "shared".
type Point struct {
	// Workload names the benchmark.
	Workload string `json:"workload"`
	// Scheduler names the scheduler, or "seq" for the sequential baseline.
	Scheduler string `json:"scheduler"`
	// Table names the configuration table ("" means "default").
	Table string `json:"table,omitempty"`
	// Topology encodes the cache topology ("" means "shared").
	Topology string `json:"topology,omitempty"`
	// Cores selects the table configuration by core count.
	Cores int `json:"cores"`
}

// canonical fills the defaulted fields, returning the spelling under which
// the point is expanded and reported.
func (p Point) canonical() Point {
	if p.Table == "" {
		p.Table = sweep.TableDefault
	}
	if p.Topology == "" {
		p.Topology = cache.Shared().String()
	}
	return p
}

// DecodeRequest reads one strict-JSON Request: unknown fields, trailing
// data and type mismatches are errors, so malformed submissions fail before
// admission instead of silently sweeping a different grid.
func DecodeRequest(r io.Reader) (*Request, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req Request
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("sweepsvc: decode request: %w", err)
	}
	// A second Decode distinguishes EOF (good) from trailing garbage.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, fmt.Errorf("sweepsvc: trailing data after request body")
	}
	return &req, nil
}

// validScheduler accepts registry names (including parameterised spellings)
// and the sequential pseudo-scheduler.
func validScheduler(name string) error {
	if name == sweep.Sequential {
		return nil
	}
	_, err := sched.New(name)
	return err
}

// Validate checks every axis value against the live registries and tables.
// It returns the first error in canonical expansion order, so clients get a
// deterministic diagnosis.
func (r *Request) Validate() error {
	if len(r.Points) > 0 {
		if len(r.Workloads) > 0 || len(r.Schedulers) > 0 || len(r.Tables) > 0 ||
			len(r.Topologies) > 0 || len(r.Cores) > 0 || r.Sequential {
			return fmt.Errorf("sweepsvc: request mixes points with grid axis fields")
		}
		for i, p := range r.Points {
			if err := p.validate(); err != nil {
				return fmt.Errorf("sweepsvc: point %d: %w", i, err)
			}
		}
		return nil
	}
	if len(r.Workloads) == 0 {
		return fmt.Errorf("sweepsvc: request has no workloads and no points")
	}
	for _, w := range r.Workloads {
		if _, err := workload.New(w); err != nil {
			return fmt.Errorf("sweepsvc: %w", err)
		}
	}
	for _, s := range r.Schedulers {
		if err := validScheduler(s); err != nil {
			return fmt.Errorf("sweepsvc: %w", err)
		}
	}
	for _, tbl := range r.tables() {
		if _, err := sweep.TableConfigs(tbl); err != nil {
			return err
		}
	}
	for _, topo := range r.topologies() {
		if _, err := cache.ParseTopology(topo); err != nil {
			return fmt.Errorf("sweepsvc: %w", err)
		}
	}
	if r.Scale < 0 {
		return fmt.Errorf("sweepsvc: negative scale %d", r.Scale)
	}
	return nil
}

// validate checks one explicit point.
func (p Point) validate() error {
	p = p.canonical()
	if _, err := workload.New(p.Workload); err != nil {
		return err
	}
	if err := validScheduler(p.Scheduler); err != nil {
		return err
	}
	cfgs, err := sweep.TableConfigs(p.Table)
	if err != nil {
		return err
	}
	if _, err := cache.ParseTopology(p.Topology); err != nil {
		return err
	}
	for _, c := range cfgs {
		if c.Cores == p.Cores {
			return nil
		}
	}
	return fmt.Errorf("no %s configuration has %d cores", p.Table, p.Cores)
}

// tables returns the request's tables with the default applied.
func (r *Request) tables() []string {
	if len(r.Tables) == 0 {
		return []string{sweep.TableDefault}
	}
	return r.Tables
}

// topologies returns the request's topologies with the default applied.
func (r *Request) topologies() []string {
	if len(r.Topologies) == 0 {
		return []string{cache.Shared().String()}
	}
	return r.Topologies
}

// schedulers returns the request's schedulers with the default applied.
func (r *Request) schedulers() []string {
	if len(r.Schedulers) == 0 {
		return []string{"pdf", "ws"}
	}
	return r.Schedulers
}

// ExpandPoints flattens the request into its explicit point list in the
// canonical job order — the exact nesting sweep.Spec.Jobs uses (workloads,
// then tables, then topologies, then the table's core counts, then the
// sequential baseline followed by the schedulers) — so a client can shard a
// grid across service instances and still merge rows back into the same
// deterministic order a single submission would stream.  A points request
// returns its points, canonicalised, unchanged in order.
func (r *Request) ExpandPoints() ([]Point, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	if len(r.Points) > 0 {
		out := make([]Point, len(r.Points))
		for i, p := range r.Points {
			out[i] = p.canonical()
		}
		return out, nil
	}
	wantCores := func(c int) bool {
		if len(r.Cores) == 0 {
			return true
		}
		for _, want := range r.Cores {
			if want == c {
				return true
			}
		}
		return false
	}
	var out []Point
	for _, wl := range r.Workloads {
		for _, tbl := range r.tables() {
			cfgs, err := sweep.TableConfigs(tbl)
			if err != nil {
				return nil, err
			}
			matched := false
			for _, topo := range r.topologies() {
				for _, base := range cfgs {
					if !wantCores(base.Cores) {
						continue
					}
					matched = true
					if r.Sequential {
						out = append(out, Point{Workload: wl, Scheduler: sweep.Sequential, Table: tbl, Topology: topo, Cores: base.Cores}.canonical())
					}
					for _, sc := range r.schedulers() {
						out = append(out, Point{Workload: wl, Scheduler: sc, Table: tbl, Topology: topo, Cores: base.Cores}.canonical())
					}
				}
			}
			if !matched {
				return nil, fmt.Errorf("sweepsvc: no %s configuration matches cores %v", tbl, r.Cores)
			}
		}
	}
	return out, nil
}

// Jobs expands the request into its sweep job list.  Jobs are built through
// the experiment harness's workload factory at the request's Scale/Quick —
// the same parameterisation cmd/sweep applies — so wire-submitted points
// carry keys identical to CLI-run points and the two share cache entries.
func (r *Request) Jobs() ([]sweep.Job, error) {
	points, err := r.ExpandPoints()
	if err != nil {
		return nil, err
	}
	factory := experiments.Options{Scale: r.Scale, Quick: r.Quick}.WorkloadFactory()
	scale := sweep.Spec{Scale: r.Scale, Quick: r.Quick}.EffectiveScale()
	jobs := make([]sweep.Job, 0, len(points))
	for _, p := range points {
		p = p.canonical()
		cfgs, err := sweep.TableConfigs(p.Table)
		if err != nil {
			return nil, err
		}
		var base *config.CMP
		for i := range cfgs {
			if cfgs[i].Cores == p.Cores {
				base = &cfgs[i]
				break
			}
		}
		if base == nil {
			return nil, fmt.Errorf("sweepsvc: no %s configuration has %d cores", p.Table, p.Cores)
		}
		topo, err := cache.ParseTopology(p.Topology)
		if err != nil {
			return nil, fmt.Errorf("sweepsvc: %w", err)
		}
		cfg := base.Scaled(scale).WithTopology(topo)
		build, params, err := factory(p.Workload, cfg)
		if err != nil {
			return nil, fmt.Errorf("sweepsvc: %s on %s: %w", p.Workload, cfg.Name, err)
		}
		jobs = append(jobs, sweep.NewJob(p.Workload, params, p.Scheduler, cfg, build))
	}
	return jobs, nil
}
