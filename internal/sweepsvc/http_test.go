package sweepsvc

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"cmpsched/internal/sweep"
)

// postStream POSTs a body to /sweeps and decodes the NDJSON stream.
func postStream(t *testing.T, client *http.Client, url, body string) (events []Event, sweepID string, status int) {
	t.Helper()
	resp, err := client.Post(url+"/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /sweeps: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, "", resp.StatusCode
	}
	sweepID = resp.Header.Get("X-Sweep-ID")
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	return events, sweepID, resp.StatusCode
}

// TestHTTPEndToEndByteIdentity is the PR's acceptance keystone: a grid
// submitted over the wire yields rows — keys, key hashes and every
// simulator metric — byte-identical to the same grid run directly on a
// sweep engine, i.e. the transport does not perturb results or cache keys.
func TestHTTPEndToEndByteIdentity(t *testing.T) {
	svc := NewService(Options{Workers: 2, Cache: sweep.NewMemoryCache()})
	defer svc.Drain(context.Background())
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	const grid = `{"workloads":["mergesort","hashjoin"],"schedulers":["pdf","ws"],"cores":[2],"quick":true,"sequential":true}`
	events, sweepID, status := postStream(t, srv.Client(), srv.URL, grid)
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if sweepID == "" {
		t.Fatalf("missing X-Sweep-ID header")
	}

	req, err := DecodeRequest(strings.NewReader(grid))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	jobs, err := req.Jobs()
	if err != nil {
		t.Fatalf("jobs: %v", err)
	}
	direct, err := sweep.NewEngine(sweep.EngineOptions{Workers: 2}).Run(jobs)
	if err != nil {
		t.Fatalf("direct run: %v", err)
	}

	if events[0].Type != EventAccepted || events[0].SweepID != sweepID || events[0].Total != len(jobs) {
		t.Fatalf("first event = %+v", events[0])
	}
	last := events[len(events)-1]
	if last.Type != EventDone || last.Summary == nil || last.Summary.Completed != len(jobs) {
		t.Fatalf("terminal event = %+v", last)
	}
	rows := make([]*sweep.Result, len(jobs))
	for _, ev := range events[1 : len(events)-1] {
		if ev.Type != EventResult || ev.Result == nil {
			t.Fatalf("mid-stream event = %+v", ev)
		}
		rows[ev.Index] = ev.Result
	}
	for i, row := range rows {
		if row == nil {
			t.Fatalf("row %d never streamed", i)
		}
		if row.Key != direct[i].Key {
			t.Errorf("row %d key = %+v, want %+v", i, row.Key, direct[i].Key)
		}
		if row.Key.Hash() != direct[i].Key.Hash() {
			t.Errorf("row %d hash mismatch", i)
		}
		// Byte identity of every simulator metric: marshal both sides and
		// compare the bytes (map keys marshal sorted, so this is exact).
		wire, err := json.Marshal(row.Sim)
		if err != nil {
			t.Fatal(err)
		}
		want, err := json.Marshal(direct[i].Sim)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wire, want) {
			t.Errorf("row %d simulator results differ:\nwire:   %s\ndirect: %s", i, wire, want)
		}
	}
}

// TestHTTPSaturation429 pins the transport mapping of admission control:
// with the queue bounded, the overflowing submission gets 429 with a
// Retry-After header while the in-flight sweep keeps streaming to
// completion.
func TestHTTPSaturation429(t *testing.T) {
	mk := newJobMaker()
	svc := NewService(Options{Workers: 1, MaxQueue: 2, RetryAfter: 3 * time.Second})
	defer svc.Drain(context.Background())
	h := NewHandler(svc)
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	// The seam: requests name their jobs via the workloads field, which must
	// still pass wire validation — so bodies spell registered workload names
	// and Expand maps "mergesort" to the gated blocker job.
	h.Expand = func(r *Request) ([]sweep.Job, error) {
		var jobs []sweep.Job
		for _, name := range r.Workloads {
			if name == "mergesort" {
				jobs = append(jobs, mk.job(t, name, started, gate))
			} else {
				jobs = append(jobs, mk.job(t, name, nil, nil))
			}
		}
		return jobs, nil
	}
	srv := httptest.NewServer(h)
	defer srv.Close()

	type streamOut struct {
		events []Event
		status int
	}
	// A: one job, picked up by the single runner and held on the gate.
	aDone := make(chan streamOut, 1)
	go func() {
		evs, _, status := postStream(t, srv.Client(), srv.URL, `{"workloads":["mergesort"]}`)
		aDone <- streamOut{evs, status}
	}()
	<-started // the blocker is on the runner; the queue is empty.

	// B: two jobs, filling the whole queue behind the blocker.
	bDone := make(chan streamOut, 1)
	go func() {
		evs, _, status := postStream(t, srv.Client(), srv.URL, `{"workloads":["hashjoin","lu"]}`)
		bDone <- streamOut{evs, status}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		depth := int64(0)
		for _, s := range svc.Metrics().Snapshot() {
			if s.Name == "svc.queue_depth" {
				depth = s.Value
			}
		}
		if depth == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// The N+1th pending job overflows the bound: 429 plus the retry hint.
	resp, err := srv.Client().Post(srv.URL+"/sweeps", "application/json", strings.NewReader(`{"workloads":["bfs"]}`))
	if err != nil {
		t.Fatalf("overflow POST: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow status = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Errorf("Retry-After = %q, want \"3\"", got)
	}
	if mk.buildCount("bfs") != 0 {
		t.Errorf("rejected job must not run")
	}

	close(gate)
	a, b := <-aDone, <-bDone
	if a.status != http.StatusOK || b.status != http.StatusOK {
		t.Fatalf("in-flight sweep statuses = %d, %d", a.status, b.status)
	}
	for name, out := range map[string]streamOut{"A": a, "B": b} {
		last := out.events[len(out.events)-1]
		if last.Type != EventDone || last.Summary == nil || last.Summary.Failed != 0 {
			t.Fatalf("sweep %s must stream to completion through the rejection, terminal = %+v", name, last)
		}
	}
}

// TestHTTPStatusAndCancel covers GET and DELETE on /sweeps/{id}.
func TestHTTPStatusAndCancel(t *testing.T) {
	mk := newJobMaker()
	svc := NewService(Options{Workers: 1})
	defer svc.Drain(context.Background())
	h := NewHandler(svc)
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	h.Expand = func(r *Request) ([]sweep.Job, error) {
		return []sweep.Job{mk.job(t, "h0", started, gate), mk.job(t, "h1", nil, nil)}, nil
	}
	srv := httptest.NewServer(h)
	defer srv.Close()

	done := make(chan []Event)
	go func() {
		evs, _, _ := postStream(t, srv.Client(), srv.URL, `{"workloads":["mergesort"]}`)
		done <- evs
	}()
	<-started

	// The sweep ID is in the stream's accepted event; fetch it via the
	// service (the streaming goroutine owns the response).
	ids := svc.ActiveSweeps()
	if len(ids) != 1 {
		t.Fatalf("active sweeps = %v", ids)
	}
	id := ids[0]

	resp, err := srv.Client().Get(srv.URL + "/sweeps/" + id)
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("status decode: %v", err)
	}
	resp.Body.Close()
	if st.ID != id || st.Total != 2 {
		t.Errorf("status = %+v", st)
	}

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/sweeps/"+id, nil)
	resp, err = srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE status = %d, want 204", resp.StatusCode)
	}
	close(gate)
	evs := <-done
	if last := evs[len(evs)-1]; last.Type != EventCancelled {
		t.Fatalf("terminal = %+v, want cancelled", last)
	}
	if mk.buildCount("h1") != 0 {
		t.Errorf("DELETE must skip the queued job")
	}

	// Unknown IDs 404 on both verbs.
	resp, _ = srv.Client().Get(srv.URL + "/sweeps/zzz")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET unknown = %d, want 404", resp.StatusCode)
	}
	req, _ = http.NewRequest(http.MethodDelete, srv.URL+"/sweeps/zzz", nil)
	resp, _ = srv.Client().Do(req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("DELETE unknown = %d, want 404", resp.StatusCode)
	}
}

// TestHTTPClientDisconnectCancels: dropping the streaming connection
// releases the sweep's unstarted jobs.
func TestHTTPClientDisconnectCancels(t *testing.T) {
	mk := newJobMaker()
	svc := NewService(Options{Workers: 1})
	defer svc.Drain(context.Background())
	h := NewHandler(svc)
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	h.Expand = func(r *Request) ([]sweep.Job, error) {
		return []sweep.Job{mk.job(t, "x0", started, gate), mk.job(t, "x1", nil, nil)}, nil
	}
	srv := httptest.NewServer(h)
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/sweeps", strings.NewReader(`{"workloads":["mergesort"]}`))
	req.Header.Set("Content-Type", "application/json")
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	cancel() // client walks away mid-stream
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	// The service notices the disconnect and retires the sweep; only then is
	// the running job released, so the queued job's skip is deterministic.
	deadline := time.Now().Add(10 * time.Second)
	for len(svc.ActiveSweeps()) > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("sweep still active after client disconnect")
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(gate)
	if err := svc.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if mk.buildCount("x1") != 0 {
		t.Errorf("disconnect must skip the queued job")
	}
}

// TestHTTPSSE: the SSE framing carries the same events.
func TestHTTPSSE(t *testing.T) {
	svc := NewService(Options{Workers: 1})
	defer svc.Drain(context.Background())
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/sweeps", strings.NewReader(`{"workloads":["mergesort"],"schedulers":["pdf"],"cores":[2],"quick":true}`))
	req.Header.Set("Accept", "text/event-stream")
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{"event: accepted\n", "event: result\n", "event: done\n", "data: "} {
		if !strings.Contains(text, want) {
			t.Errorf("SSE stream missing %q:\n%s", want, text)
		}
	}
}

// TestHTTPHealthzMetricsDrain covers the operational endpoints across the
// drain transition.
func TestHTTPHealthzMetricsDrain(t *testing.T) {
	svc := NewService(Options{Workers: 1, RetryAfter: 2 * time.Second})
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz = %d %q", code, body)
	}

	// One sweep through, so the metrics have content.
	events, _, status := postStream(t, srv.Client(), srv.URL, `{"workloads":["mergesort"],"schedulers":["pdf"],"cores":[2],"quick":true}`)
	if status != http.StatusOK || events[len(events)-1].Type != EventDone {
		t.Fatalf("seed sweep failed: status %d", status)
	}
	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics = %d", code)
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("metrics decode: %v\n%s", err, body)
	}
	if snap.Service.JobsServed != 1 || snap.Metrics["svc.sweeps_completed"] != 1 {
		t.Errorf("snapshot = %+v", snap.Service)
	}
	if snap.Metrics["sweep.jobs"] != 1 {
		t.Errorf("engine metrics missing from snapshot")
	}
	if snap.Service.SimCycles <= 0 || snap.Service.CyclesPerSec <= 0 {
		t.Errorf("throughput fields = %+v", snap.Service)
	}

	if err := svc.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if code, body := get("/healthz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("draining healthz = %d %q", code, body)
	}
	resp, err := srv.Client().Post(srv.URL+"/sweeps", "application/json", strings.NewReader(`{"workloads":["mergesort"]}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining POST = %d, want 503", resp.StatusCode)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Errorf("draining Retry-After = %q", resp.Header.Get("Retry-After"))
	}
}

// TestHTTPBadRequests: malformed and invalid submissions are 400s with a
// diagnostic body.
func TestHTTPBadRequests(t *testing.T) {
	svc := NewService(Options{Workers: 1})
	defer svc.Drain(context.Background())
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	for name, body := range map[string]string{
		"unknown field":    `{"worklods":["mergesort"]}`,
		"unknown workload": `{"workloads":["nope"]}`,
		"not json":         `hello`,
		"mixed forms":      `{"workloads":["mergesort"],"points":[{"workload":"mergesort","scheduler":"pdf","cores":2}]}`,
	} {
		resp, err := srv.Client().Post(srv.URL+"/sweeps", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (%s)", name, resp.StatusCode, b)
		}
	}
}
