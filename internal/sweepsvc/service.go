// Package sweepsvc is the sweep engine as a long-running service: a
// transport-neutral job server over sweep.Engine plus an HTTP/JSON binding
// (see http.go) and a strict wire encoding of sweep grids (see wire.go).
//
// The service exists for the shared-channel amortisation argument the
// broadcast-scheduling literature makes: N clients asking for overlapping
// design-space points should cost one computation per distinct point, not N.
// Three layers deliver that.  The engine's content-addressed result cache
// serves points computed in the past; the engine's DAG-template memoisation
// shares builds between points of one grid; and the service's single-flight
// layer deduplicates points that are queued or running right now — two
// clients submitting overlapping grids concurrently each wait on the same
// in-flight job (keyed by sweep.Key) and both receive its row when it
// completes.
//
// The service is explicitly bounded: a fixed runner pool, a bounded queue of
// unstarted jobs, a cap on concurrently active sweeps and on jobs per
// submission.  Submissions that would exceed a bound fail fast with a
// SaturatedError carrying a retry hint (HTTP maps it to 429 + Retry-After)
// instead of queueing without limit.  Cancellation drops a sweep's claim on
// its unstarted jobs; jobs already running finish (their results are
// cacheable) but deliver to nobody.  Drain stops admission, lets the backlog
// finish, and then stops the runners, so SIGTERM never truncates a row.
package sweepsvc

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"cmpsched/internal/obs"
	"cmpsched/internal/sweep"
)

// Options configure a Service.
type Options struct {
	// Workers is the number of concurrent job runners.  Zero means one per
	// host CPU (the sweep engine's convention).
	Workers int
	// MaxQueue bounds the number of admitted-but-unstarted jobs across all
	// sweeps.  A submission whose new (non-deduplicated) jobs would exceed
	// the bound is rejected with a SaturatedError.  Zero means 1024.
	MaxQueue int
	// MaxSweeps bounds the number of concurrently active sweeps.  Zero
	// means 64.
	MaxSweeps int
	// MaxJobsPerSweep bounds one submission's job count.  Zero means 4096.
	MaxJobsPerSweep int
	// RetryAfter is the backoff hint attached to SaturatedErrors.  Zero
	// means one second.
	RetryAfter time.Duration
	// Cache, when non-nil, memoises finished jobs across sweeps and (with
	// a disk cache) across processes and service instances.
	Cache sweep.Cache
	// Metrics receives service and engine metrics.  Nil means a private
	// registry (the service always accounts; Metrics only chooses where).
	Metrics *obs.Registry
	// JobTimeout, when positive, bounds each job's simulation wall-clock
	// time (sweep.EngineOptions.JobTimeout): a runaway simulation is
	// cancelled and reported as that job's failed row instead of wedging a
	// runner forever.
	JobTimeout time.Duration
}

// withDefaults fills the zero fields.
func (o Options) withDefaults() Options {
	if o.MaxQueue <= 0 {
		o.MaxQueue = 1024
	}
	if o.MaxSweeps <= 0 {
		o.MaxSweeps = 64
	}
	if o.MaxJobsPerSweep <= 0 {
		o.MaxJobsPerSweep = 4096
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.Metrics == nil {
		o.Metrics = obs.NewRegistry()
	}
	return o
}

// ErrDraining rejects submissions while the service shuts down.
var ErrDraining = errors.New("sweepsvc: draining, not accepting new sweeps")

// SaturatedError reports that a submission was rejected by admission
// control; RetryAfter is the suggested backoff.  HTTP maps it to
// 429 Too Many Requests with a Retry-After header.
type SaturatedError struct {
	// Reason says which bound rejected the submission.
	Reason string
	// RetryAfter is the suggested client backoff.
	RetryAfter time.Duration
}

// Error implements error.
func (e *SaturatedError) Error() string {
	return fmt.Sprintf("sweepsvc: saturated: %s (retry after %s)", e.Reason, e.RetryAfter)
}

// LimitError reports a submission that is invalid regardless of load (e.g.
// over the per-sweep job limit); retrying does not help.  HTTP maps it to
// 400 Bad Request.
type LimitError struct {
	// Reason says which limit the submission broke.
	Reason string
}

// Error implements error.
func (e *LimitError) Error() string { return "sweepsvc: " + e.Reason }

// EventType discriminates the events of a sweep's stream.
type EventType string

// The event types, in stream order: one EventAccepted, zero or more
// EventResult, then exactly one terminal EventDone or EventCancelled.
const (
	// EventAccepted opens every stream, carrying the sweep ID and total.
	EventAccepted EventType = "accepted"
	// EventResult reports one finished job (Result on success, Err on
	// simulation failure), with running Done/Failed progress counts.
	EventResult EventType = "result"
	// EventDone terminates a completed sweep's stream with its Summary.
	EventDone EventType = "done"
	// EventCancelled terminates a cancelled sweep's stream; the Summary
	// covers the jobs that completed before cancellation.
	EventCancelled EventType = "cancelled"
)

// Event is one message of a sweep's result stream; it is the NDJSON/SSE
// wire unit of the HTTP binding.
type Event struct {
	// Type discriminates the event.
	Type EventType `json:"type"`
	// SweepID names the sweep the event belongs to.
	SweepID string `json:"sweep_id"`
	// Index is the job's position in the submitted job list (meaningful on
	// EventResult only); clients reassemble deterministic row order from it.
	Index int `json:"index"`
	// Done counts the jobs finished successfully so far.
	Done int `json:"done"`
	// Failed counts the jobs that failed so far.
	Failed int `json:"failed,omitempty"`
	// Total is the sweep's job count.
	Total int `json:"total"`
	// Result carries the finished job's row on EventResult.
	Result *sweep.Result `json:"result,omitempty"`
	// Err carries the job's error text when it failed.
	Err string `json:"error,omitempty"`
	// Summary is attached to the terminal event.
	Summary *Summary `json:"summary,omitempty"`
}

// Summary is the terminal accounting of one sweep.
type Summary struct {
	// Jobs is the submitted job count.
	Jobs int `json:"jobs"`
	// Completed counts jobs that finished successfully.
	Completed int `json:"completed"`
	// Failed counts jobs whose simulation failed.
	Failed int `json:"failed"`
	// DedupHits counts jobs served by subscribing to another sweep's
	// queued or running job instead of enqueueing their own.
	DedupHits int `json:"dedup_hits"`
	// CacheHits counts jobs served from the result cache.
	CacheHits int `json:"cache_hits"`
	// ElapsedNS is the sweep's wall-clock time in this service.
	ElapsedNS int64 `json:"elapsed_ns"`
}

// Status is a point-in-time snapshot of an active sweep.
type Status struct {
	// ID is the sweep's identifier.
	ID string `json:"id"`
	// Total is the sweep's job count.
	Total int `json:"total"`
	// Done counts jobs finished successfully.
	Done int `json:"done"`
	// Failed counts jobs that failed.
	Failed int `json:"failed"`
	// DedupHits counts submit-time single-flight subscriptions.
	DedupHits int `json:"dedup_hits"`
}

// flightState is a flight's lifecycle position.
type flightState int

const (
	flightQueued flightState = iota
	flightRunning
	flightDone
)

// flightSub is one sweep's claim on a flight's outcome: the sweep and the
// job's index within it.
type flightSub struct {
	sw    *Sweep
	index int
}

// flight is one in-flight (queued or running) distinct job, shared by every
// sweep that submitted its key — the single-flight unit.  All fields after
// job/hash are guarded by the Service mutex.
type flight struct {
	job   sweep.Job
	hash  string
	state flightState
	subs  []flightSub
}

// Sweep is one accepted submission: a handle streaming the submission's
// events.  The stream is the buffered Events channel; its capacity covers
// every event the sweep can emit, so the service never blocks on a slow or
// departed consumer.
type Sweep struct {
	svc *Service
	id  string

	// Guarded by svc.mu.
	total     int
	done      int
	failed    int
	dedup     int
	cacheHits int
	start     time.Time
	closed    bool
	flights   []*flight
	events    chan Event
}

// ID returns the sweep's service-unique identifier.
func (sw *Sweep) ID() string { return sw.id }

// Events returns the sweep's event stream: one EventAccepted, an EventResult
// per job in completion order, and a terminal EventDone or EventCancelled,
// after which the channel is closed.
func (sw *Sweep) Events() <-chan Event { return sw.events }

// serviceMetrics holds the service's registry handles.
type serviceMetrics struct {
	sweepsAccepted, sweepsRejected     *obs.Counter
	sweepsCompleted, sweepsCancelled   *obs.Counter
	jobsSubmitted, jobsDeduped         *obs.Counter
	jobsCompleted, jobsFailed          *obs.Counter
	jobsSkipped                        *obs.Counter
	queueDepth, inflight, activeSweeps *obs.Gauge
}

func newServiceMetrics(reg *obs.Registry) serviceMetrics {
	return serviceMetrics{
		sweepsAccepted:  reg.Counter("svc.sweeps_accepted"),
		sweepsRejected:  reg.Counter("svc.sweeps_rejected"),
		sweepsCompleted: reg.Counter("svc.sweeps_completed"),
		sweepsCancelled: reg.Counter("svc.sweeps_cancelled"),
		jobsSubmitted:   reg.Counter("svc.jobs_submitted"),
		jobsDeduped:     reg.Counter("svc.jobs_deduped"),
		jobsCompleted:   reg.Counter("svc.jobs_completed"),
		jobsFailed:      reg.Counter("svc.jobs_failed"),
		jobsSkipped:     reg.Counter("svc.jobs_skipped"),
		queueDepth:      reg.Gauge("svc.queue_depth"),
		inflight:        reg.Gauge("svc.inflight_jobs"),
		activeSweeps:    reg.Gauge("svc.active_sweeps"),
	}
}

// Service is the transport-neutral sweep job server.  One Service owns one
// sweep.Engine (hence one DAG-template store and one result cache) and a
// fixed runner pool; Submit adds jobs, deduplicating against everything
// queued or running.
type Service struct {
	opts   Options
	engine *sweep.Engine
	reg    *obs.Registry
	sm     serviceMetrics
	birth  time.Time

	queue chan *flight
	wg    sync.WaitGroup

	mu       sync.Mutex
	flights  map[string]*flight
	sweeps   map[string]*Sweep
	pending  int // flights admitted but not yet picked up by a runner
	running  int // flights being simulated
	seq      int64
	draining bool
}

// NewService starts a service: the runner pool is live on return.
func NewService(opts Options) *Service {
	opts = opts.withDefaults()
	s := &Service{
		opts:    opts,
		reg:     opts.Metrics,
		sm:      newServiceMetrics(opts.Metrics),
		birth:   time.Now(),
		queue:   make(chan *flight, opts.MaxQueue),
		flights: make(map[string]*flight),
		sweeps:  make(map[string]*Sweep),
	}
	s.engine = sweep.NewEngine(sweep.EngineOptions{
		Workers:    opts.Workers,
		Cache:      opts.Cache,
		Metrics:    opts.Metrics,
		JobTimeout: opts.JobTimeout,
	})
	for i := 0; i < s.engine.Workers(); i++ {
		s.wg.Add(1)
		go s.runner()
	}
	return s
}

// Metrics returns the service's registry (engine and service metrics both).
func (s *Service) Metrics() *obs.Registry { return s.reg }

// Uptime returns the time since the service started.
func (s *Service) Uptime() time.Duration { return time.Since(s.birth) }

// CacheStats reports the result cache's hit/miss counters (zeros without a
// cache).
func (s *Service) CacheStats() (hits, misses int64) {
	if s.opts.Cache == nil {
		return 0, 0
	}
	return s.opts.Cache.Stats()
}

// Draining reports whether the service has stopped admitting sweeps.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// updateGauges publishes the queue/in-flight/active gauges; callers hold mu.
func (s *Service) updateGauges() {
	s.sm.queueDepth.Set(int64(s.pending))
	s.sm.inflight.Set(int64(s.running))
	s.sm.activeSweeps.Set(int64(len(s.sweeps)))
}

// Submit admits a job list as one sweep, deduplicating each job against
// every queued or running job service-wide: a duplicated key subscribes to
// the existing flight instead of consuming queue capacity, so overlapping
// concurrent submissions each simulate the overlap once.  The returned
// Sweep's event stream is already primed with its EventAccepted.
//
// Submit rejects with ErrDraining after Drain begins, a LimitError over the
// per-sweep job limit, and a SaturatedError when the sweep or queue bound is
// hit.  Rejections are atomic: no partial jobs are admitted.
func (s *Service) Submit(jobs []sweep.Job) (*Sweep, error) {
	if len(jobs) == 0 {
		return nil, &LimitError{Reason: "empty job list"}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.sm.sweepsRejected.Add(1)
		return nil, ErrDraining
	}
	if len(jobs) > s.opts.MaxJobsPerSweep {
		s.sm.sweepsRejected.Add(1)
		return nil, &LimitError{Reason: fmt.Sprintf("%d jobs exceeds the per-sweep limit of %d", len(jobs), s.opts.MaxJobsPerSweep)}
	}
	if len(s.sweeps) >= s.opts.MaxSweeps {
		s.sm.sweepsRejected.Add(1)
		return nil, &SaturatedError{
			Reason:     fmt.Sprintf("%d active sweeps at the limit of %d", len(s.sweeps), s.opts.MaxSweeps),
			RetryAfter: s.opts.RetryAfter,
		}
	}
	// Admission is all-or-nothing: count the queue slots the submission
	// needs (deduplicated jobs need none) before touching any state.
	fresh := 0
	seen := make(map[string]bool, len(jobs))
	for i := range jobs {
		h := jobs[i].Key.Hash()
		if s.flights[h] == nil && !seen[h] {
			seen[h] = true
			fresh++
		}
	}
	if s.pending+fresh > s.opts.MaxQueue {
		s.sm.sweepsRejected.Add(1)
		return nil, &SaturatedError{
			Reason:     fmt.Sprintf("%d queued + %d new jobs exceeds the queue bound of %d", s.pending, fresh, s.opts.MaxQueue),
			RetryAfter: s.opts.RetryAfter,
		}
	}

	s.seq++
	sw := &Sweep{
		svc:   s,
		id:    fmt.Sprintf("s%06d", s.seq),
		total: len(jobs),
		start: time.Now(),
		// Capacity for the full stream (accepted + one result per job +
		// terminal) keeps delivery non-blocking forever: a consumer that
		// stops reading can never back up a runner.
		events: make(chan Event, len(jobs)+2),
	}
	var enqueue []*flight
	for i := range jobs {
		h := jobs[i].Key.Hash()
		f := s.flights[h]
		if f == nil {
			f = &flight{job: jobs[i], hash: h}
			s.flights[h] = f
			enqueue = append(enqueue, f)
			s.pending++
		} else {
			sw.dedup++
			s.sm.jobsDeduped.Add(1)
		}
		f.subs = append(f.subs, flightSub{sw: sw, index: i})
		sw.flights = append(sw.flights, f)
	}
	s.sweeps[sw.id] = sw
	s.sm.sweepsAccepted.Add(1)
	s.sm.jobsSubmitted.Add(int64(len(jobs)))
	sw.events <- Event{Type: EventAccepted, SweepID: sw.id, Total: sw.total}
	// The queue's capacity equals MaxQueue and pending <= MaxQueue is the
	// admission invariant, so these sends cannot block under the lock.
	for _, f := range enqueue {
		s.queue <- f
	}
	s.updateGauges()
	return sw, nil
}

// runner is one worker: it executes flights off the queue until Drain
// closes it.
func (s *Service) runner() {
	defer s.wg.Done()
	for f := range s.queue {
		s.mu.Lock()
		s.pending--
		if len(f.subs) == 0 {
			// Every subscriber cancelled before the job started.
			f.state = flightDone
			delete(s.flights, f.hash)
			s.sm.jobsSkipped.Add(1)
			s.updateGauges()
			s.mu.Unlock()
			continue
		}
		f.state = flightRunning
		s.running++
		s.updateGauges()
		s.mu.Unlock()

		results, err := s.engine.Run([]sweep.Job{f.job})
		var res sweep.Result
		if err == nil {
			res = results[0]
		}

		s.mu.Lock()
		f.state = flightDone
		delete(s.flights, f.hash)
		s.running--
		if err != nil {
			s.sm.jobsFailed.Add(1)
		} else {
			s.sm.jobsCompleted.Add(1)
		}
		for _, sub := range f.subs {
			sub.sw.deliverLocked(sub.index, res, err)
		}
		f.subs = nil
		s.updateGauges()
		s.mu.Unlock()
	}
}

// deliverLocked folds one finished job into the sweep and emits its event;
// the caller holds the service mutex.
func (sw *Sweep) deliverLocked(index int, r sweep.Result, err error) {
	if sw.closed {
		return
	}
	ev := Event{Type: EventResult, SweepID: sw.id, Index: index, Total: sw.total}
	if err != nil {
		sw.failed++
		ev.Err = err.Error()
	} else {
		sw.done++
		rr := r
		ev.Result = &rr
		if r.Cached {
			sw.cacheHits++
		}
	}
	ev.Done, ev.Failed = sw.done, sw.failed
	sw.events <- ev
	if sw.done+sw.failed == sw.total {
		sw.finishLocked(EventDone)
	}
}

// finishLocked emits the terminal event, closes the stream and retires the
// sweep; the caller holds the service mutex.
func (sw *Sweep) finishLocked(typ EventType) {
	if sw.closed {
		return
	}
	sw.closed = true
	sw.events <- Event{
		Type: typ, SweepID: sw.id, Done: sw.done, Failed: sw.failed, Total: sw.total,
		Summary: &Summary{
			Jobs:      sw.total,
			Completed: sw.done,
			Failed:    sw.failed,
			DedupHits: sw.dedup,
			CacheHits: sw.cacheHits,
			ElapsedNS: time.Since(sw.start).Nanoseconds(),
		},
	}
	close(sw.events)
	delete(sw.svc.sweeps, sw.id)
	if typ == EventDone {
		sw.svc.sm.sweepsCompleted.Add(1)
	} else {
		sw.svc.sm.sweepsCancelled.Add(1)
	}
}

// Cancel withdraws an active sweep: its claims on unstarted jobs are
// dropped (a job nobody else wants is skipped when a runner reaches it), its
// running jobs finish without delivering to it (their results still land in
// the cache), and its stream terminates with EventCancelled.  It reports
// whether the ID named an active sweep.
func (s *Service) Cancel(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	sw, ok := s.sweeps[id]
	if !ok || sw.closed {
		return false
	}
	for _, f := range sw.flights {
		if f.state == flightDone {
			continue
		}
		keep := f.subs[:0]
		for _, sub := range f.subs {
			if sub.sw != sw {
				keep = append(keep, sub)
			}
		}
		f.subs = keep
	}
	sw.finishLocked(EventCancelled)
	s.updateGauges()
	return true
}

// Status reports an active sweep's progress.  Completed and cancelled sweeps
// are retired immediately, so they report false.
func (s *Service) Status(id string) (Status, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sw, ok := s.sweeps[id]
	if !ok {
		return Status{}, false
	}
	return Status{ID: sw.id, Total: sw.total, Done: sw.done, Failed: sw.failed, DedupHits: sw.dedup}, true
}

// ActiveSweeps returns the IDs of the currently active sweeps, sorted by
// admission order (IDs are sequential).
func (s *Service) ActiveSweeps() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.sweeps))
	for id := range s.sweeps {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Drain stops admission (Submit returns ErrDraining), closes the queue, and
// waits for the backlog — everything already admitted — to finish.  If ctx
// expires first, the remaining active sweeps are cancelled so unstarted jobs
// are skipped, running jobs are awaited (a simulation cannot be interrupted
// mid-run), and ctx's error is returned.  Drain is idempotent; concurrent
// calls all wait.
func (s *Service) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	// Forced drain: withdraw the remaining sweeps and wait out the jobs
	// that are actually on a runner.
	for _, id := range s.ActiveSweeps() {
		s.Cancel(id)
	}
	<-done
	return ctx.Err()
}
