package sweep

import (
	"fmt"

	"cmpsched/internal/cache"
	"cmpsched/internal/config"
	"cmpsched/internal/dag"
	"cmpsched/internal/workload"
)

// WorkloadFactory produces a DAG builder and a canonical parameter
// fingerprint for a named workload on a configuration.  The experiment
// harness supplies a factory that sizes inputs the way the paper's runs do
// (see experiments.Options.WorkloadFactory); DefaultFactory builds each
// workload with its library defaults.
type WorkloadFactory func(name string, cfg config.CMP) (build BuildFunc, params string, err error)

// DefaultFactory builds workloads with their default parameters.
func DefaultFactory(name string, cfg config.CMP) (BuildFunc, string, error) {
	if _, err := workload.New(name); err != nil {
		return nil, "", err
	}
	build := func() (*dag.DAG, error) {
		w, err := workload.New(name)
		if err != nil {
			return nil, err
		}
		d, _, err := w.Build()
		return d, err
	}
	return build, "default", nil
}

// Configuration table names accepted by Spec.Tables.
const (
	TableDefault = "default" // Table 2, the scaling-technology configurations
	Table45nm    = "45nm"    // Table 3, the 45 nm single-technology design space
)

// Spec declares a design-space sweep: the cross product of workloads,
// schedulers and CMP configurations, each point one simulation job.
type Spec struct {
	// Workloads lists benchmark names (see workload.Names).
	Workloads []string
	// Schedulers lists scheduler names; empty means {"pdf", "ws"}.
	Schedulers []string
	// Tables lists configuration tables (TableDefault, Table45nm); empty
	// means {TableDefault}.
	Tables []string
	// Cores restricts the core counts; empty means every core count the
	// selected tables define.
	Cores []int
	// Topologies lists cache-topology encodings ("shared", "private",
	// "clustered:<k>"); empty means {"shared"}, the paper's machine.  Each
	// topology multiplies the grid and is folded into the configuration
	// fingerprint, so results for different topologies never share cache
	// entries.
	Topologies []string
	// Scale is the capacity scale factor (0 means config.DefaultScale).
	Scale int64
	// Quick shrinks inputs and caches a further 16x, mirroring the
	// experiment harness's quick mode.
	Quick bool
	// Sequential also runs the one-core sequential baseline for every
	// (workload, configuration) point.
	Sequential bool
	// Factory builds the workloads; nil means DefaultFactory.
	Factory WorkloadFactory
}

// EffectiveScale returns the capacity scale factor the spec implies,
// following the scale-factor convention of DESIGN.md.
func (s Spec) EffectiveScale() int64 {
	scale := s.Scale
	if scale == 0 {
		scale = config.DefaultScale
	}
	if s.Quick {
		scale *= 16
	}
	return scale
}

// TableConfigs returns the (unscaled) configurations of a named table, in
// the table's canonical order.  Exported for service layers (sweepsvc) that
// resolve wire-submitted grid points to the same configurations — and hence
// the same cache keys — a Spec expansion would.
func TableConfigs(table string) ([]config.CMP, error) {
	switch table {
	case TableDefault:
		return config.Defaults(), nil
	case Table45nm:
		return config.SingleTech45All(), nil
	default:
		return nil, fmt.Errorf("sweep: unknown configuration table %q (want %q or %q)", table, TableDefault, Table45nm)
	}
}

// Jobs expands the spec into its job list, in a deterministic order:
// workloads outermost, then tables, then topologies, then core counts, then
// (sequential, schedulers...).
func (s Spec) Jobs() ([]Job, error) {
	if len(s.Workloads) == 0 {
		return nil, fmt.Errorf("sweep: spec has no workloads")
	}
	schedulers := s.Schedulers
	if len(schedulers) == 0 {
		schedulers = []string{"pdf", "ws"}
	}
	tables := s.Tables
	if len(tables) == 0 {
		tables = []string{TableDefault}
	}
	topoNames := s.Topologies
	if len(topoNames) == 0 {
		topoNames = []string{cache.Shared().String()}
	}
	topologies := make([]cache.Topology, len(topoNames))
	for i, name := range topoNames {
		t, err := cache.ParseTopology(name)
		if err != nil {
			return nil, fmt.Errorf("sweep: %w", err)
		}
		topologies[i] = t
	}
	factory := s.Factory
	if factory == nil {
		factory = DefaultFactory
	}
	wantCores := func(c int) bool {
		if len(s.Cores) == 0 {
			return true
		}
		for _, want := range s.Cores {
			if want == c {
				return true
			}
		}
		return false
	}

	scale := s.EffectiveScale()
	var jobs []Job
	for _, wl := range s.Workloads {
		for _, table := range tables {
			cfgs, err := TableConfigs(table)
			if err != nil {
				return nil, err
			}
			matched := false
			for _, topo := range topologies {
				for _, base := range cfgs {
					if !wantCores(base.Cores) {
						continue
					}
					matched = true
					cfg := base.Scaled(scale).WithTopology(topo)
					build, params, err := factory(wl, cfg)
					if err != nil {
						return nil, fmt.Errorf("sweep: %s on %s: %w", wl, cfg.Name, err)
					}
					if s.Sequential {
						jobs = append(jobs, NewJob(wl, params, Sequential, cfg, build))
					}
					for _, sc := range schedulers {
						jobs = append(jobs, NewJob(wl, params, sc, cfg, build))
					}
				}
			}
			if !matched {
				return nil, fmt.Errorf("sweep: no %s configuration matches cores %v", table, s.Cores)
			}
		}
	}
	return jobs, nil
}

// Run expands the spec and executes it on an engine with the given options.
func (s Spec) Run(opts EngineOptions) ([]Result, error) {
	jobs, err := s.Jobs()
	if err != nil {
		return nil, err
	}
	return NewEngine(opts).Run(jobs)
}
