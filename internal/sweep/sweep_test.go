package sweep

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"cmpsched/internal/config"
	"cmpsched/internal/dag"
	"cmpsched/internal/workload"
)

// testFactory builds small workload instances so sweeps finish in
// milliseconds.
func testFactory(name string, cfg config.CMP) (BuildFunc, string, error) {
	switch name {
	case "mergesort":
		ms := workload.MergesortConfig{Elements: 16 << 10, TaskWorkingSetBytes: 2 << 10}
		return func() (*dag.DAG, error) {
			d, _, err := workload.NewMergesort(ms).Build()
			return d, err
		}, fmt.Sprintf("%+v", ms), nil
	case "hashjoin":
		hj := workload.HashJoinConfigForL2(cfg.L2.SizeBytes)
		hj.PartitionBytes = 1 << 20
		return func() (*dag.DAG, error) {
			d, _, err := workload.NewHashJoin(hj).Build()
			return d, err
		}, fmt.Sprintf("%+v", hj), nil
	default:
		return nil, "", fmt.Errorf("testFactory: unknown workload %q", name)
	}
}

func testSpec() Spec {
	return Spec{
		Workloads:  []string{"mergesort", "hashjoin"},
		Schedulers: []string{"pdf", "ws"},
		Cores:      []int{2, 8},
		Quick:      true,
		Sequential: true,
		Factory:    testFactory,
	}
}

// stripVariance zeroes the per-run fields (timing, cache provenance) that
// are legitimately allowed to differ between runs of identical jobs.
func stripVariance(results []Result) []Result {
	out := make([]Result, len(results))
	for i, r := range results {
		r.Elapsed = 0
		r.Cached = false
		out[i] = r
	}
	return out
}

func TestKeyHashDistinguishesFields(t *testing.T) {
	base := Key{Workload: "ms", Params: "p", Scheduler: "pdf", Config: "c", Options: "o"}
	if base.Hash() != base.Hash() {
		t.Fatalf("hash not stable")
	}
	variants := []Key{
		{Workload: "ms2", Params: "p", Scheduler: "pdf", Config: "c", Options: "o"},
		{Workload: "ms", Params: "p2", Scheduler: "pdf", Config: "c", Options: "o"},
		{Workload: "ms", Params: "p", Scheduler: "ws", Config: "c", Options: "o"},
		{Workload: "ms", Params: "p", Scheduler: "pdf", Config: "c2", Options: "o"},
		{Workload: "ms", Params: "p", Scheduler: "pdf", Config: "c", Options: "o2"},
		// Field-boundary ambiguity: ("ab","c") vs ("a","bc").
		{Workload: "msp", Params: "", Scheduler: "pdf", Config: "c", Options: "o"},
	}
	seen := map[string]bool{base.Hash(): true}
	for _, v := range variants {
		h := v.Hash()
		if seen[h] {
			t.Errorf("key %+v collides", v)
		}
		seen[h] = true
	}
}

// TestKeyHashPinned pins the content address of one representative job to a
// literal value captured before the simulator hot-path overhaul.  The sweep
// cache's soundness rests on keys being a pure function of the inputs: if
// this hash moves, previously cached results (including on-disk caches from
// earlier builds) silently stop matching, so any change here must be a
// deliberate, documented cache-format break.
func TestKeyHashPinned(t *testing.T) {
	cfg, err := config.Default(8)
	if err != nil {
		t.Fatal(err)
	}
	cfg = cfg.Scaled(config.DefaultScale)
	j := NewJob("mergesort", "{Elements:1024}", "pdf", cfg, nil)
	const want = "bb3450c04f3bd362f90839ea458740fd26a65177b5b057660bb80406270bbfc7"
	if got := j.Key.Hash(); got != want {
		t.Fatalf("pinned key hash changed:\n  got  %s\n  want %s", got, want)
	}
}

// TestKeySchedulerAxisPinned guards the cache-key contract after the
// scheduler-registry refactor: the new registry names ("sb", "ws:nearest",
// "ws:oldest") must content-address to their own pinned cache entries,
// while the pre-registry names keep their exact historical addresses (the
// "pdf" hash below is the same literal TestKeyHashPinned has pinned since
// before the registry existed), so sweep caches warmed by earlier builds
// stay valid and can never serve a classic-WS result for a ws:nearest run.
func TestKeySchedulerAxisPinned(t *testing.T) {
	cfg, err := config.Default(8)
	if err != nil {
		t.Fatal(err)
	}
	cfg = cfg.Scaled(config.DefaultScale)
	pinned := map[string]string{
		"pdf":        "bb3450c04f3bd362f90839ea458740fd26a65177b5b057660bb80406270bbfc7",
		"ws":         "012b5fa4097972a880024fcd6b5f79871a44edc5d9433419e1a7eddb1b8d3a32",
		"sb":         "0669e18c1348259323dc21d360107330390a3af54fc5a2f915e0fde24b82852d",
		"ws:nearest": "2c08a3dfef0e3e359f7cd32d20b77f67feff98df714bd4a62ee92ca6e5ca285c",
		"ws:oldest":  "cccfe02ffd64e0dcb36b2e55adca28891254ba40be74ab0129094a21a451c12a",
	}
	seen := map[string]string{}
	for sc, want := range pinned {
		j := NewJob("mergesort", "{Elements:1024}", sc, cfg, nil)
		got := j.Key.Hash()
		if got != want {
			t.Errorf("%s: pinned key hash changed:\n  got  %s\n  want %s", sc, got, want)
		}
		if prev, dup := seen[got]; dup {
			t.Errorf("schedulers %s and %s share a content address", prev, sc)
		}
		seen[got] = sc
	}
}

// TestKeyDistinguishesTopologies guards the cache-key contract after the
// topology refactor: two otherwise-identical runs that differ only in cache
// topology must content-address to distinct keys, or a sweep cache warmed
// before the config change could serve stale shared-L2 results for
// private/clustered points.
func TestKeyDistinguishesTopologies(t *testing.T) {
	jobsFor := func(topos []string) []Job {
		spec := testSpec()
		spec.Workloads = []string{"mergesort"}
		spec.Schedulers = []string{"pdf"}
		spec.Cores = []int{8}
		spec.Sequential = false
		spec.Topologies = topos
		jobs, err := spec.Jobs()
		if err != nil {
			t.Fatalf("Jobs(%v): %v", topos, err)
		}
		return jobs
	}
	topos := []string{"shared", "private", "clustered:2", "clustered:4"}
	jobs := jobsFor(topos)
	if len(jobs) != len(topos) {
		t.Fatalf("jobs = %d, want %d", len(jobs), len(topos))
	}
	hashes := make(map[string]string)
	for i, j := range jobs {
		h := j.Key.Hash()
		if prev, dup := hashes[h]; dup {
			t.Errorf("topologies %q and %q share cache key %s", prev, topos[i], h)
		}
		hashes[h] = topos[i]
		if !strings.Contains(j.Key.Config, topos[i]) {
			t.Errorf("config fingerprint for %q does not encode the topology: %s", topos[i], j.Key.Config)
		}
	}
	// The default (no Topologies) expansion must key identically to an
	// explicit shared topology, so existing warm caches stay valid.
	def := jobsFor(nil)
	if def[0].Key.Hash() != jobs[0].Key.Hash() {
		t.Errorf("default topology key %s != explicit shared key %s", def[0].Key.Hash(), jobs[0].Key.Hash())
	}

	bad := testSpec()
	bad.Topologies = []string{"l3:nope"}
	if _, err := bad.Jobs(); err == nil {
		t.Errorf("unknown topology should fail spec expansion")
	}
}

func TestSpecExpansion(t *testing.T) {
	jobs, err := testSpec().Jobs()
	if err != nil {
		t.Fatalf("Jobs: %v", err)
	}
	// 2 workloads x 2 core counts x (seq + pdf + ws).
	if len(jobs) != 2*2*3 {
		t.Fatalf("jobs = %d, want 12", len(jobs))
	}
	// Deterministic order: workload-major, then cores, then scheduler.
	if jobs[0].Key.Workload != "mergesort" || jobs[0].Scheduler != Sequential {
		t.Errorf("unexpected first job %+v", jobs[0].Key)
	}
	if jobs[1].Scheduler != "pdf" || jobs[2].Scheduler != "ws" {
		t.Errorf("scheduler order wrong: %s, %s", jobs[1].Scheduler, jobs[2].Scheduler)
	}
	if jobs[6].Key.Workload != "hashjoin" {
		t.Errorf("workload order wrong: %s", jobs[6].Key.Workload)
	}
	// The scaled config is baked into the jobs.
	wantScale := config.DefaultScale * 16
	if got := jobs[0].Config.Scale; got != wantScale {
		t.Errorf("config scale = %d, want %d", got, wantScale)
	}

	if _, err := (Spec{}).Jobs(); err == nil {
		t.Errorf("empty spec should fail")
	}
	bad := testSpec()
	bad.Tables = []string{"90nm"}
	if _, err := bad.Jobs(); err == nil || !strings.Contains(err.Error(), "unknown configuration table") {
		t.Errorf("unknown table should fail, got %v", err)
	}
	none := testSpec()
	none.Cores = []int{7}
	if _, err := none.Jobs(); err == nil || !strings.Contains(err.Error(), "no default configuration") {
		t.Errorf("unmatched cores should fail, got %v", err)
	}
	unknown := testSpec()
	unknown.Workloads = []string{"nope"}
	if _, err := unknown.Jobs(); err == nil {
		t.Errorf("unknown workload should fail")
	}
}

func TestDefaultFactory(t *testing.T) {
	if _, _, err := DefaultFactory("nope", config.MustDefault(2)); err == nil {
		t.Fatalf("unknown workload should fail")
	}
	build, params, err := DefaultFactory("matmul", config.MustDefault(2))
	if err != nil {
		t.Fatalf("DefaultFactory: %v", err)
	}
	if params != "default" {
		t.Errorf("params = %q", params)
	}
	d, err := build()
	if err != nil || d.NumTasks() == 0 {
		t.Fatalf("build failed: %v", err)
	}
}

func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	jobs, err := testSpec().Jobs()
	if err != nil {
		t.Fatalf("Jobs: %v", err)
	}
	serial, err := NewEngine(EngineOptions{Workers: 1}).Run(jobs)
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	parallel, err := NewEngine(EngineOptions{Workers: 8}).Run(jobs)
	if err != nil {
		t.Fatalf("parallel run: %v", err)
	}
	if !reflect.DeepEqual(stripVariance(serial), stripVariance(parallel)) {
		t.Fatalf("parallel sweep results differ from serial")
	}
	// Sequential jobs really ran on one core.
	for _, r := range serial {
		if r.Key.Scheduler == Sequential {
			if r.Sim.Config.Cores != 1 || !strings.HasSuffix(r.Sim.Config.Name, "/sequential") {
				t.Errorf("sequential job ran on %+v", r.Sim.Config.Name)
			}
		}
		if r.Sim.TaskStats != nil {
			t.Errorf("TaskStats should be dropped by default")
		}
		if r.Sim.Cycles == 0 {
			t.Errorf("empty result for %s", r.Key)
		}
	}
}

func TestStreamCallbackCoversAllJobs(t *testing.T) {
	jobs, err := testSpec().Jobs()
	if err != nil {
		t.Fatalf("Jobs: %v", err)
	}
	agg := NewAggregator()
	seen := make([]bool, len(jobs))
	_, err = NewEngine(EngineOptions{Workers: 4}).RunStream(jobs, func(i int, r Result) {
		seen[i] = true
		agg.Add(r)
	})
	if err != nil {
		t.Fatalf("RunStream: %v", err)
	}
	for i, s := range seen {
		if !s {
			t.Errorf("job %d not streamed", i)
		}
	}
	rows := agg.Rows()
	// 2 workloads x 3 schedulers.
	if len(rows) != 6 {
		t.Fatalf("summary rows = %d, want 6", len(rows))
	}
	if rows[0].Workload != "hashjoin" || rows[0].Scheduler != "pdf" {
		t.Errorf("summary order wrong: %+v", rows[0])
	}
	for _, row := range rows {
		if row.Runs != 2 || row.TotalCycles == 0 || row.BestConfig == "" {
			t.Errorf("malformed summary row %+v", row)
		}
	}
}

func TestMemoryCacheHitMiss(t *testing.T) {
	jobs, err := testSpec().Jobs()
	if err != nil {
		t.Fatalf("Jobs: %v", err)
	}
	cache := NewMemoryCache()
	eng := NewEngine(EngineOptions{Workers: 4, Cache: cache})
	first, err := eng.Run(jobs)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	for _, r := range first {
		if r.Cached {
			t.Errorf("first run should not hit the cache: %s", r.Key)
		}
	}
	if hits, misses := cache.Stats(); hits != 0 || misses != int64(len(jobs)) {
		t.Errorf("after first run: hits=%d misses=%d", hits, misses)
	}
	if cache.Len() != len(jobs) {
		t.Errorf("cache holds %d entries, want %d", cache.Len(), len(jobs))
	}
	second, err := eng.Run(jobs)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	for _, r := range second {
		if !r.Cached {
			t.Errorf("second run should hit the cache: %s", r.Key)
		}
	}
	if !reflect.DeepEqual(stripVariance(first), stripVariance(second)) {
		t.Fatalf("cached results differ from computed results")
	}
}

func TestDiskCachePersistsAcrossInstances(t *testing.T) {
	dir := t.TempDir()
	jobs, err := testSpec().Jobs()
	if err != nil {
		t.Fatalf("Jobs: %v", err)
	}
	jobs = jobs[:4]

	c1, err := NewDiskCache(dir)
	if err != nil {
		t.Fatalf("NewDiskCache: %v", err)
	}
	first, err := NewEngine(EngineOptions{Workers: 2, Cache: c1}).Run(jobs)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}

	// A fresh instance over the same directory simulates a new process.
	c2, err := NewDiskCache(dir)
	if err != nil {
		t.Fatalf("NewDiskCache: %v", err)
	}
	second, err := NewEngine(EngineOptions{Workers: 2, Cache: c2}).Run(jobs)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	for _, r := range second {
		if !r.Cached {
			t.Errorf("second process should hit the disk cache: %s", r.Key)
		}
	}
	if !reflect.DeepEqual(stripVariance(first), stripVariance(second)) {
		t.Fatalf("disk-cached results differ from computed results")
	}

	// Corrupt every entry: the cache must degrade to recomputation.
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(files) != len(jobs) {
		t.Fatalf("cache files = %d (%v), want %d", len(files), err, len(jobs))
	}
	for _, f := range files {
		if err := os.WriteFile(f, []byte("not json"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	c3, err := NewDiskCache(dir)
	if err != nil {
		t.Fatalf("NewDiskCache: %v", err)
	}
	third, err := NewEngine(EngineOptions{Workers: 2, Cache: c3}).Run(jobs)
	if err != nil {
		t.Fatalf("third run: %v", err)
	}
	for _, r := range third {
		if r.Cached {
			t.Errorf("corrupt entries must read as misses: %s", r.Key)
		}
	}
	if !reflect.DeepEqual(stripVariance(first), stripVariance(third)) {
		t.Fatalf("recomputed results differ")
	}
}

func TestExportRoundTripJSON(t *testing.T) {
	jobs, err := testSpec().Jobs()
	if err != nil {
		t.Fatalf("Jobs: %v", err)
	}
	results, err := NewEngine(EngineOptions{Workers: 4}).Run(jobs[:6])
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, results); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if !reflect.DeepEqual(results, back) {
		t.Fatalf("JSON round trip changed the results")
	}
	if _, err := ReadJSON(strings.NewReader("{broken")); err == nil {
		t.Errorf("broken JSON should fail")
	}
}

func TestExportCSV(t *testing.T) {
	jobs, err := testSpec().Jobs()
	if err != nil {
		t.Fatalf("Jobs: %v", err)
	}
	results, err := NewEngine(EngineOptions{Workers: 4}).Run(jobs[:3])
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, results); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("parse CSV: %v", err)
	}
	if len(rows) != len(results)+1 {
		t.Fatalf("rows = %d, want %d", len(rows), len(results)+1)
	}
	if !reflect.DeepEqual(rows[0], CSVHeader()) {
		t.Errorf("header = %v", rows[0])
	}
	for i, r := range results {
		row := rows[i+1]
		if row[0] != r.Key.Workload || row[1] != r.Key.Scheduler {
			t.Errorf("row %d key mismatch: %v", i, row)
		}
		if want := fmt.Sprint(r.Sim.Cycles); row[4] != want {
			t.Errorf("row %d cycles = %s, want %s", i, row[4], want)
		}
	}
	// Empty exports still carry the header.
	buf.Reset()
	if err := WriteCSV(&buf, nil); err != nil {
		t.Fatalf("empty WriteCSV: %v", err)
	}
	if got := strings.TrimSpace(buf.String()); got != strings.Join(CSVHeader(), ",") {
		t.Errorf("empty CSV = %q", got)
	}
	// Unfilled entries of a failed run's partial slice are skipped, not
	// dereferenced.
	buf.Reset()
	if err := WriteCSV(&buf, []Result{results[0], {}, results[1]}); err != nil {
		t.Fatalf("partial WriteCSV: %v", err)
	}
	partial, err := csv.NewReader(&buf).ReadAll()
	if err != nil || len(partial) != 3 {
		t.Errorf("partial CSV rows = %d (%v), want header + 2", len(partial), err)
	}
}

func TestEngineErrorIsDeterministic(t *testing.T) {
	good, _, err := testFactory("mergesort", config.MustDefault(2))
	if err != nil {
		t.Fatal(err)
	}
	bad := func() (*dag.DAG, error) { return nil, fmt.Errorf("boom") }
	cfg := config.MustDefault(2).Scaled(512)
	jobs := []Job{
		NewJob("ms", "p", "pdf", cfg, good),
		NewJob("ms", "bad1", "pdf", cfg, bad),
		NewJob("ms", "p", "ws", cfg, good),
		NewJob("ms", "bad2", "ws", cfg, bad),
	}
	for _, workers := range []int{1, 4} {
		_, err := NewEngine(EngineOptions{Workers: workers}).Run(jobs)
		if err == nil || !strings.Contains(err.Error(), "job 1") || !strings.Contains(err.Error(), "boom") {
			t.Errorf("workers=%d: error = %v, want lowest failing job 1", workers, err)
		}
	}
	// A nil build function is rejected rather than panicking.
	if _, err := NewEngine(EngineOptions{Workers: 1}).Run([]Job{{Key: Key{Workload: "x"}, Scheduler: "pdf", Config: cfg}}); err == nil {
		t.Errorf("nil build should fail")
	}
	// Unknown schedulers are rejected.
	if _, err := NewEngine(EngineOptions{Workers: 1}).Run([]Job{NewJob("ms", "p", "nope", cfg, good)}); err == nil {
		t.Errorf("unknown scheduler should fail")
	}
}

func TestKeepTaskStatsBypassesCache(t *testing.T) {
	build, params, err := testFactory("mergesort", config.MustDefault(2))
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.MustDefault(2).Scaled(512)
	plain := NewJob("mergesort", params, "pdf", cfg, build)
	keep := plain
	keep.KeepTaskStats = true

	cache := NewMemoryCache()
	eng := NewEngine(EngineOptions{Workers: 1, Cache: cache})
	if _, err := eng.Run([]Job{plain}); err != nil {
		t.Fatalf("plain run: %v", err)
	}
	// Despite the equal key, the stats-keeping job must not be served the
	// stripped cached entry — and must not overwrite it with task stats.
	res, err := eng.Run([]Job{keep})
	if err != nil {
		t.Fatalf("keep run: %v", err)
	}
	if res[0].Cached || res[0].Sim.TaskStats == nil {
		t.Fatalf("KeepTaskStats job served from cache or missing stats (cached=%v)", res[0].Cached)
	}
	res, err = eng.Run([]Job{plain})
	if err != nil {
		t.Fatalf("second plain run: %v", err)
	}
	if !res[0].Cached || res[0].Sim.TaskStats != nil {
		t.Fatalf("cached entry corrupted by KeepTaskStats run (cached=%v)", res[0].Cached)
	}
}

func TestDeriveLevelMisses(t *testing.T) {
	build, params, err := testFactory("mergesort", config.MustDefault(8))
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.MustDefault(8).Scaled(512)
	job := NewJob("mergesort", params, "pdf", cfg, build).WithDerive("levels", DeriveLevelMisses)
	plain := NewJob("mergesort", params, "pdf", cfg, build)
	if job.Key == plain.Key {
		t.Errorf("derive tag must change the key")
	}
	cache := NewMemoryCache()
	res, err := NewEngine(EngineOptions{Workers: 1, Cache: cache}).Run([]Job{job})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	levels := LevelMisses(res[0].Derived)
	if len(levels) == 0 {
		t.Fatalf("no level metrics derived")
	}
	var total int64
	for _, v := range levels {
		total += v
	}
	if total != res[0].Sim.L2.Misses {
		t.Errorf("level misses sum %d != total L2 misses %d", total, res[0].Sim.L2.Misses)
	}
	// Derived metrics survive the cache.
	res2, err := NewEngine(EngineOptions{Workers: 1, Cache: cache}).Run([]Job{job})
	if err != nil {
		t.Fatalf("cached run: %v", err)
	}
	if !res2[0].Cached || !reflect.DeepEqual(res2[0].Derived, res[0].Derived) {
		t.Errorf("derived metrics lost in the cache")
	}
}
