package sweep

import (
	"errors"
	"strings"
	"testing"
	"time"

	"cmpsched/internal/cmpsim"
	"cmpsched/internal/config"
	"cmpsched/internal/dag"
)

func hardeningCfg(t *testing.T) config.CMP {
	t.Helper()
	for _, c := range config.Defaults() {
		if c.Cores == 2 {
			return c.Scaled(config.DefaultScale)
		}
	}
	t.Fatal("no 2-core default configuration")
	return config.CMP{}
}

// TestRunJobRecoversPanic: a panicking job must surface as that job's error,
// not kill the worker (and, transitively, a sweepd daemon).
func TestRunJobRecoversPanic(t *testing.T) {
	cfg := hardeningCfg(t)
	j := NewJob("panicky", "p", "pdf", cfg, func() (*dag.DAG, error) {
		panic("workload bug")
	})
	_, err := NewEngine(EngineOptions{Workers: 1}).Run([]Job{j})
	if err == nil || !strings.Contains(err.Error(), "job panicked: workload bug") {
		t.Fatalf("err = %v, want the recovered panic", err)
	}

	// The pool path recovers too, and healthy jobs around the panicking one
	// still complete.
	build, params, err := testFactory("mergesort", cfg)
	if err != nil {
		t.Fatal(err)
	}
	good := NewJob("mergesort", params, "pdf", cfg, build)
	results, err := NewEngine(EngineOptions{Workers: 2}).Run([]Job{good, j})
	if err == nil || !strings.Contains(err.Error(), "job panicked") {
		t.Fatalf("pool err = %v, want the recovered panic", err)
	}
	if results[0].Sim == nil {
		t.Fatal("healthy job's result was lost to the panicking one")
	}
}

// TestJobTimeoutCancelsRunawaySimulation: with a vanishingly small
// JobTimeout every real simulation exceeds its budget and fails with a
// timeout error (wrapping cmpsim.ErrCancelled) instead of running on.
func TestJobTimeoutCancelsRunawaySimulation(t *testing.T) {
	cfg := hardeningCfg(t)
	build, params, err := testFactory("mergesort", cfg)
	if err != nil {
		t.Fatal(err)
	}
	j := NewJob("mergesort", params, "pdf", cfg, build)
	eng := NewEngine(EngineOptions{Workers: 1, JobTimeout: time.Nanosecond})
	_, err = eng.Run([]Job{j})
	if err == nil || !errors.Is(err, cmpsim.ErrCancelled) {
		t.Fatalf("err = %v, want a timeout wrapping cmpsim.ErrCancelled", err)
	}
	if !strings.Contains(err.Error(), "exceeded timeout") {
		t.Fatalf("err = %v, want the timeout phrasing", err)
	}

	// A generous timeout does not perturb results: same rows as no timeout.
	fast := NewEngine(EngineOptions{Workers: 1, JobTimeout: time.Hour})
	withTimeout, err := fast.Run([]Job{j})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewEngine(EngineOptions{Workers: 1}).Run([]Job{j})
	if err != nil {
		t.Fatal(err)
	}
	if withTimeout[0].Sim.Cycles != plain[0].Sim.Cycles {
		t.Fatalf("timeout changed the simulation: %d vs %d cycles",
			withTimeout[0].Sim.Cycles, plain[0].Sim.Cycles)
	}
}
