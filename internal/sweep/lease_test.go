package sweep

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"cmpsched/internal/cmpsim"
	"cmpsched/internal/faultinject"
	"cmpsched/internal/obs"
)

// fastLeaseOptions keeps the protocol's waits in test territory.
func fastLeaseOptions(owner string) LeaseOptions {
	return LeaseOptions{
		Owner:     owner,
		TTL:       200 * time.Millisecond,
		Heartbeat: 20 * time.Millisecond,
		Poll:      5 * time.Millisecond,
		Metrics:   obs.NewRegistry(),
	}
}

func testKey(n int) Key {
	return Key{Workload: "w", Params: fmt.Sprintf("p%d", n), Scheduler: "pdf", Config: "c"}
}

func testEntry(k Key) Entry {
	return Entry{Key: k, Sim: &cmpsim.Result{Cycles: 42}}
}

// TestLeaseSingleFlight: the first Acquire wins the lease, a concurrent
// second Acquire waits and adopts the entry the winner puts.
func TestLeaseSingleFlight(t *testing.T) {
	dir := t.TempDir()
	open := func(owner string) *LeasedCache {
		dc, err := NewDiskCache(dir)
		if err != nil {
			t.Fatal(err)
		}
		return NewLeasedCache(dc, fastLeaseOptions(owner))
	}
	a, b := open("a"), open("b")
	k := testKey(1)

	_, ok, lease, err := a.Acquire(context.Background(), k)
	if err != nil || ok || lease == nil {
		t.Fatalf("first acquire: ok=%v lease=%v err=%v, want a held lease", ok, lease, err)
	}

	adopted := make(chan Entry, 1)
	go func() {
		e, ok, l, err := b.Acquire(context.Background(), k)
		if err != nil || !ok || l != nil {
			t.Errorf("waiter: ok=%v lease=%v err=%v, want adoption", ok, l, err)
		}
		adopted <- e
	}()

	time.Sleep(30 * time.Millisecond) // let the waiter contend
	if err := a.Put(testEntry(k)); err != nil {
		t.Fatal(err)
	}
	lease.Release()

	select {
	case e := <-adopted:
		if e.Sim == nil || e.Sim.Cycles != 42 {
			t.Fatalf("adopted entry = %+v, want the put entry", e)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never adopted")
	}

	if got := b.lm.adopted.Value(); got != 1 {
		t.Fatalf("adopted counter = %d, want 1", got)
	}
	if got := a.lm.released.Value(); got != 1 {
		t.Fatalf("released counter = %d, want 1", got)
	}
	// The lease file must be gone after a clean release.
	if _, err := os.Stat(a.leasePath(k)); !os.IsNotExist(err) {
		t.Fatalf("lease file survived release: %v", err)
	}
}

// TestLeaseStaleTakeover: a lease whose holder died (no heartbeat for longer
// than the TTL) is fenced and reclaimed with an incremented token.
func TestLeaseStaleTakeover(t *testing.T) {
	dir := t.TempDir()
	dc, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := NewLeasedCache(dc, fastLeaseOptions("survivor"))
	k := testKey(2)

	// Plant a dead holder's lease: token 7, mtime far past the TTL.
	path := c.leasePath(k)
	body, _ := json.Marshal(leaseRecord{Owner: "deceased", Token: 7})
	if err := os.WriteFile(path, body, 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(path, old, old); err != nil {
		t.Fatal(err)
	}

	_, ok, lease, err := c.Acquire(context.Background(), k)
	if err != nil || ok || lease == nil {
		t.Fatalf("takeover acquire: ok=%v lease=%v err=%v", ok, lease, err)
	}
	if lease.token != 8 {
		t.Fatalf("fencing token = %d, want 8 (old token + 1)", lease.token)
	}
	if got := c.lm.takeovers.Value(); got != 1 {
		t.Fatalf("takeovers counter = %d, want 1", got)
	}
	lease.Release()
}

// TestLeaseReleaseFencing: a holder that lost its lease to a takeover must
// not delete the successor's lease file.
func TestLeaseReleaseFencing(t *testing.T) {
	dir := t.TempDir()
	dc, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := NewLeasedCache(dc, fastLeaseOptions("zombie"))
	k := testKey(3)

	_, _, lease, err := c.Acquire(context.Background(), k)
	if err != nil || lease == nil {
		t.Fatalf("acquire: lease=%v err=%v", lease, err)
	}

	// A successor fences the lease while the holder stalls.
	path := c.leasePath(k)
	body, _ := json.Marshal(leaseRecord{Owner: "successor", Token: lease.token + 1})
	if err := os.WriteFile(path, body, 0o644); err != nil {
		t.Fatal(err)
	}

	lease.Release()
	if got := c.lm.fenced.Value(); got != 1 {
		t.Fatalf("fenced counter = %d, want 1", got)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("successor's lease was deleted by the fenced holder: %v", err)
	}
	var rec leaseRecord
	if json.Unmarshal(data, &rec) != nil || rec.Owner != "successor" {
		t.Fatalf("lease content clobbered: %s", data)
	}
}

// TestLeaseCrashMidFlightRecovered rehearses the headline crash: a holder
// claims the lease, begins writing its entry, and dies mid-rename (SIGKILL
// semantics via faultinject).  A second instance must take the flight over
// and complete it, and a reopened cache must collect the debris.
func TestLeaseCrashMidFlightRecovered(t *testing.T) {
	dir := t.TempDir()
	k := testKey(4)

	// Instance 1 on a crashing filesystem: claims the lease, then dies at
	// its first rename (the entry Put), leaving lease + temp file behind.
	crashFS := faultinject.NewFaulty(faultinject.OS(), 1)
	crashFS.CrashAt(faultinject.OpRename, 1)
	dc1, err := NewDiskCacheWith(dir, DiskCacheOptions{FS: crashFS})
	if err != nil {
		t.Fatal(err)
	}
	c1 := NewLeasedCache(dc1, fastLeaseOptions("victim"))
	_, ok, lease1, err := c1.Acquire(context.Background(), k)
	if err != nil || ok || lease1 == nil {
		t.Fatalf("victim acquire: ok=%v lease=%v err=%v", ok, lease1, err)
	}
	if err := c1.Put(testEntry(k)); err == nil {
		t.Fatal("put should crash")
	}
	if !crashFS.Crashed() {
		t.Fatal("filesystem not crashed")
	}
	// The victim is dead: no Release, no heartbeat (the heartbeat goroutine
	// will fail its Chtimes through the crashed FS and mark the lease lost).

	// Instance 2 on the real filesystem: sees the stale lease (after TTL),
	// fences it, and completes the flight.
	dc2, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewLeasedCache(dc2, fastLeaseOptions("survivor"))
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, ok, lease2, err := c2.Acquire(context.Background(), k)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatal("entry cannot exist yet")
		}
		if lease2 != nil {
			if err := c2.Put(testEntry(k)); err != nil {
				t.Fatal(err)
			}
			lease2.Release()
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("survivor never took the stale lease over")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := c2.lm.takeovers.Value(); got != 1 {
		t.Fatalf("takeovers counter = %d, want 1", got)
	}
	if e, ok := c2.Get(k); !ok || e.Sim.Cycles != 42 {
		t.Fatalf("entry missing after recovery: %+v ok=%v", e, ok)
	}

	// The crash left a put-*.tmp orphan; a reopened cache with an aggressive
	// GC horizon must sweep it (and any leftover lease debris).
	time.Sleep(20 * time.Millisecond)
	dc3, err := NewDiskCacheWith(dir, DiskCacheOptions{
		TempMaxAge:  time.Nanosecond,
		LeaseMaxAge: time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	temps, _ := dc3.GCStats()
	if temps != 1 {
		t.Fatalf("gc collected %d temp files, want 1", temps)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range ents {
		if strings.HasSuffix(ent.Name(), ".tmp") || strings.HasSuffix(ent.Name(), leaseSuffix) {
			t.Fatalf("debris survived gc: %s", ent.Name())
		}
	}
}

// TestLeaseAcquireDegradesOnIOErrors: lease-protocol I/O failures must fall
// back to uncoordinated simulation (nil lease, nil error), never fail the
// job.
func TestLeaseAcquireDegradesOnIOErrors(t *testing.T) {
	dir := t.TempDir()
	faulty := faultinject.NewFaulty(faultinject.OS(), 1)
	dc, err := NewDiskCacheWith(dir, DiskCacheOptions{FS: faulty})
	if err != nil {
		t.Fatal(err)
	}
	c := NewLeasedCache(dc, fastLeaseOptions("degraded"))
	// OpCreate call 1 was the cache's MkdirAll; call 2 is the O_EXCL claim.
	faulty.FailAt(faultinject.OpCreate, 2, nil)

	_, ok, lease, err := c.Acquire(context.Background(), testKey(5))
	if err != nil || ok || lease != nil {
		t.Fatalf("degraded acquire: ok=%v lease=%v err=%v, want (false, nil, nil)", ok, lease, err)
	}
	if got := c.lm.errors.Value(); got != 1 {
		t.Fatalf("errors counter = %d, want 1", got)
	}
}

// TestLeaseAcquireHonoursContext: a waiter blocked on a live holder's lease
// returns promptly when its context is cancelled.
func TestLeaseAcquireHonoursContext(t *testing.T) {
	dir := t.TempDir()
	dc, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := NewLeasedCache(dc, fastLeaseOptions("holder"))
	k := testKey(6)
	_, _, lease, err := c.Acquire(context.Background(), k)
	if err != nil || lease == nil {
		t.Fatalf("acquire: %v", err)
	}
	defer lease.Release()

	c2 := NewLeasedCache(dc, fastLeaseOptions("waiter"))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, _, _, err = c2.Acquire(ctx, k)
	if err == nil {
		t.Fatal("cancelled waiter should return the context error")
	}
}

// TestTwoEnginesShareOneCacheDir is the tentpole's in-process end-to-end:
// two engines, each its own LeasedCache instance over one directory, run the
// same sweep concurrently under -race.  The merged results must be identical
// to a solo run, and the flights must be disjoint — the total number of
// actual simulations across both instances equals the number of distinct
// keys.
func TestTwoEnginesShareOneCacheDir(t *testing.T) {
	jobs, err := testSpec().Jobs()
	if err != nil {
		t.Fatal(err)
	}

	// Reference: a solo run with no cache at all.
	want, err := NewEngine(EngineOptions{Workers: 2}).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	type instance struct {
		reg     *obs.Registry
		results []Result
	}
	insts := make([]*instance, 2)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range insts {
		inst := &instance{reg: obs.NewRegistry()}
		insts[i] = inst
		dc, err := NewDiskCache(dir)
		if err != nil {
			t.Fatal(err)
		}
		lc := NewLeasedCache(dc, LeaseOptions{
			Owner:     fmt.Sprintf("inst-%d", i),
			TTL:       2 * time.Second,
			Heartbeat: 50 * time.Millisecond,
			Poll:      5 * time.Millisecond,
			Metrics:   inst.reg,
		})
		eng := NewEngine(EngineOptions{Workers: 2, Cache: lc, Metrics: inst.reg})
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			insts[idx].results, errs[idx] = eng.Run(jobs)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
	}

	var simulated int64
	for i, inst := range insts {
		if got := stripVariance(inst.results); !reflect.DeepEqual(got, stripVariance(want)) {
			t.Fatalf("instance %d results diverge from the solo run", i)
		}
		vals := make(map[string]int64)
		for _, s := range inst.reg.Snapshot() {
			vals[s.Name] = s.Value
		}
		simulated += vals["sweep.jobs"] - vals["sweep.jobs_cached"]
	}
	distinct := make(map[string]bool)
	for _, j := range jobs {
		distinct[j.Key.Hash()] = true
	}
	if simulated != int64(len(distinct)) {
		t.Fatalf("the two instances simulated %d jobs, want exactly %d (one per distinct key, zero duplicates)",
			simulated, len(distinct))
	}

	// No lease files survive a clean sweep.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range ents {
		if strings.HasSuffix(ent.Name(), leaseSuffix) {
			t.Fatalf("lease debris after clean runs: %s", filepath.Join(dir, ent.Name()))
		}
	}
}
