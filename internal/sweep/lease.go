package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"cmpsched/internal/obs"
	"cmpsched/internal/prng"
)

// leaseSuffix is the lease-file extension next to <hash>.json entries.
const leaseSuffix = ".lease"

// FlightCache is the optional single-flight extension of Cache: a cache
// whose misses can be coordinated across processes.  After a Get miss the
// engine calls Acquire, which returns either the entry (another instance
// finished it while we coordinated — the adopt path), or a held Lease that
// grants this process the right to simulate the key (released after Put),
// or neither when coordination is unavailable and the caller should simulate
// uncoordinated.  See LeasedCache.
type FlightCache interface {
	Cache
	// Acquire coordinates one key: (entry, true, nil, nil) adopts a result
	// another instance computed, (_, false, lease, nil) grants this process
	// the flight, (_, false, nil, nil) degrades to uncoordinated
	// simulation, and a non-nil error reports ctx cancellation.
	Acquire(ctx context.Context, k Key) (Entry, bool, *Lease, error)
}

// leaseRecord is the JSON body of a lease file.  The file's mtime — not the
// body — is the heartbeat: holders refresh it with Chtimes, and waiters
// declare the lease stale when the mtime falls more than TTL behind.
type leaseRecord struct {
	// Owner is the claiming instance's unique identity.
	Owner string `json:"owner"`
	// Token is the fencing token, incremented on every takeover: a release
	// by an owner whose token is no longer current is refused, so a
	// descheduled zombie can never delete its successor's lease.
	Token uint64 `json:"token"`
	// AcquiredUnixNS records when the claim succeeded (diagnostic only).
	AcquiredUnixNS int64 `json:"acquired_unix_ns"`
}

// LeaseOptions configure a LeasedCache.
type LeaseOptions struct {
	// Owner is this instance's unique identity.  Empty derives
	// host:pid:<random> — distinct per process, stable within it.
	Owner string
	// TTL is the staleness bound: a lease whose mtime is older than TTL is
	// considered abandoned and eligible for takeover.  Zero means 10s.
	TTL time.Duration
	// Heartbeat is the holder's mtime refresh interval.  Zero means TTL/4,
	// keeping several missed beats between liveness and takeover.
	Heartbeat time.Duration
	// Poll is the waiter's re-check interval on a contested key.  Zero
	// means 25ms.
	Poll time.Duration
	// Metrics, when non-nil, receives the sweep.lease.* counters.
	Metrics *obs.Registry
	// Logf, when non-nil, receives one line per degradation (I/O failures
	// in the lease protocol) and takeover.
	Logf func(format string, args ...any)
}

// withDefaults fills the zero fields.
func (o LeaseOptions) withDefaults() LeaseOptions {
	if o.Owner == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "unknown"
		}
		o.Owner = fmt.Sprintf("%s:%d:%08x", host, os.Getpid(),
			prng.Mix64(uint64(time.Now().UnixNano()))&0xffffffff)
	}
	if o.TTL <= 0 {
		o.TTL = 10 * time.Second
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = o.TTL / 4
	}
	if o.Poll <= 0 {
		o.Poll = 25 * time.Millisecond
	}
	return o
}

// leaseMetrics are the sweep.lease.* counters.
type leaseMetrics struct {
	acquired  *obs.Counter // flights claimed first try
	contested *obs.Counter // acquires that found another holder
	adopted   *obs.Counter // waits resolved by adopting the holder's entry
	takeovers *obs.Counter // stale leases fenced and reclaimed
	released  *obs.Counter // clean releases by the owner
	fenced    *obs.Counter // releases refused because the lease moved on
	errors    *obs.Counter // protocol I/O failures (degraded to uncoordinated)
}

func newLeaseMetrics(reg *obs.Registry) leaseMetrics {
	return leaseMetrics{
		acquired:  reg.Counter("sweep.lease.acquired"),
		contested: reg.Counter("sweep.lease.contested"),
		adopted:   reg.Counter("sweep.lease.adopted"),
		takeovers: reg.Counter("sweep.lease.takeovers"),
		released:  reg.Counter("sweep.lease.released"),
		fenced:    reg.Counter("sweep.lease.fenced"),
		errors:    reg.Counter("sweep.lease.errors"),
	}
}

// LeasedCache adds crash-safe cross-process single-flight to a DiskCache: a
// fleet of instances (sweepd processes, CLI runs) sharing one cache
// directory each simulate a disjoint subset of any overlapping key sets.
//
// The protocol is lease files next to the cache entries.  Before simulating
// a missed key, an instance claims <hash>.lease with an atomic
// O_CREATE|O_EXCL create naming its owner identity and a fencing token; the
// winner simulates while heartbeating the file's mtime, writes the entry,
// and releases the lease.  Losers wait, polling for either the entry (adopt
// it — the cross-process analogue of sweepsvc's single-flight subscription)
// or the lease going stale (mtime more than TTL old: the holder crashed),
// in which case they take over by atomically replacing the lease with an
// incremented fencing token and re-verifying ownership.  Every failure mode
// degrades toward recomputation, never toward a failed or stuck job: lease
// I/O errors simply fall back to uncoordinated simulation (duplicated work
// is a cost, not a correctness problem — entries are content-addressed
// results of deterministic simulations, so concurrent writers write
// identical rows), and crashed holders are recovered by takeover plus the
// DiskCache's open-time garbage collection.
type LeasedCache struct {
	dc   *DiskCache
	opts LeaseOptions
	lm   leaseMetrics
}

// NewLeasedCache wraps a DiskCache with the lease protocol.
func NewLeasedCache(dc *DiskCache, opts LeaseOptions) *LeasedCache {
	return &LeasedCache{dc: dc, opts: opts.withDefaults(), lm: newLeaseMetrics(opts.Metrics)}
}

// Owner returns this instance's lease identity.
func (c *LeasedCache) Owner() string { return c.opts.Owner }

// Get implements Cache by delegating to the wrapped DiskCache.
func (c *LeasedCache) Get(k Key) (Entry, bool) { return c.dc.Get(k) }

// Put implements Cache by delegating to the wrapped DiskCache.
func (c *LeasedCache) Put(e Entry) error { return c.dc.Put(e) }

// Stats implements Cache by delegating to the wrapped DiskCache.
func (c *LeasedCache) Stats() (hits, misses int64) { return c.dc.Stats() }

// logf logs through the configured logger.
func (c *LeasedCache) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

// leasePath returns the lease file path for a key.
func (c *LeasedCache) leasePath(k Key) string {
	return filepath.Join(c.dc.Dir(), k.Hash()+leaseSuffix)
}

// Acquire implements FlightCache.  It loops until one of: the entry appears
// (another instance finished — adopt), the claim succeeds (simulate under
// the returned lease), the protocol hits an I/O error (degrade: simulate
// uncoordinated), or ctx is cancelled.
func (c *LeasedCache) Acquire(ctx context.Context, k Key) (Entry, bool, *Lease, error) {
	path := c.leasePath(k)
	contested := false
	for {
		if e, ok := c.dc.Get(k); ok {
			if contested {
				c.lm.adopted.Add(1)
			}
			return e, true, nil, nil
		}
		lease, state, err := c.tryClaim(path, k)
		if err != nil {
			c.lm.errors.Add(1)
			c.logf("sweep: lease: %s: %v; simulating uncoordinated", k, err)
			return Entry{}, false, nil, nil
		}
		if lease != nil {
			if state == claimTakeover {
				c.lm.takeovers.Add(1)
				c.logf("sweep: lease: %s: took over a stale lease (token %d)", k, lease.token)
			} else {
				c.lm.acquired.Add(1)
			}
			return Entry{}, false, lease, nil
		}
		if !contested {
			contested = true
			c.lm.contested.Add(1)
		}
		select {
		case <-ctx.Done():
			return Entry{}, false, nil, ctx.Err()
		case <-time.After(c.opts.Poll):
		}
	}
}

// claimState reports how tryClaim obtained (or failed to obtain) the lease.
type claimState int

const (
	claimContested claimState = iota // a live holder owns the lease
	claimFresh                       // claimed with an exclusive create
	claimTakeover                    // claimed by fencing a stale lease
)

// tryClaim makes one attempt at the lease: exclusive create first, then —
// if the lease exists and its heartbeat is stale — the fencing takeover.
// (nil, claimContested, nil) means a live holder has it.
func (c *LeasedCache) tryClaim(path string, k Key) (*Lease, claimState, error) {
	rec := leaseRecord{Owner: c.opts.Owner, Token: 1, AcquiredUnixNS: time.Now().UnixNano()}
	body, err := json.Marshal(rec)
	if err != nil {
		return nil, 0, err
	}
	f, err := c.dc.fs.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err == nil {
		if _, werr := f.Write(body); werr != nil {
			f.Close()
			_ = c.dc.fs.Remove(path)
			return nil, 0, werr
		}
		if cerr := f.Close(); cerr != nil {
			_ = c.dc.fs.Remove(path)
			return nil, 0, cerr
		}
		return c.startLease(path, k, rec), claimFresh, nil
	}
	if !errors.Is(err, fs.ErrExist) {
		return nil, 0, err
	}

	// Held: fresh or stale?
	st, err := c.dc.fs.Stat(path)
	if errors.Is(err, fs.ErrNotExist) {
		// Released between our create and stat: contend again immediately.
		return nil, claimContested, nil
	}
	if err != nil {
		return nil, 0, err
	}
	if time.Since(st.ModTime()) <= c.opts.TTL {
		return nil, claimContested, nil
	}

	// Stale: fence it.  Read the old token, write a replacement lease with
	// token+1 via atomic rename, then re-read to see who actually won — two
	// concurrent takeovers both rename, but the file ends up with exactly
	// one body, and the loser backs off to contention.  (The remaining
	// window — a reader verifying between two renames — can at worst cause
	// one duplicated simulation, never a wrong result.)
	rec.Token = c.readToken(path) + 1
	rec.AcquiredUnixNS = time.Now().UnixNano()
	if body, err = json.Marshal(rec); err != nil {
		return nil, 0, err
	}
	tmp, err := c.dc.fs.CreateTemp(c.dc.Dir(), "lease-*.tmp")
	if err != nil {
		return nil, 0, err
	}
	if _, err := tmp.Write(body); err != nil {
		tmp.Close()
		_ = c.dc.fs.Remove(tmp.Name())
		return nil, 0, err
	}
	if err := tmp.Close(); err != nil {
		_ = c.dc.fs.Remove(tmp.Name())
		return nil, 0, err
	}
	if err := c.dc.fs.Rename(tmp.Name(), path); err != nil {
		_ = c.dc.fs.Remove(tmp.Name())
		return nil, 0, err
	}
	cur, ok := c.readRecord(path)
	if !ok || cur.Owner != rec.Owner || cur.Token != rec.Token {
		return nil, claimContested, nil
	}
	return c.startLease(path, k, rec), claimTakeover, nil
}

// readToken reads the fencing token of an existing lease (0 when
// unreadable, so the successor still moves the token forward).
func (c *LeasedCache) readToken(path string) uint64 {
	rec, ok := c.readRecord(path)
	if !ok {
		return 0
	}
	return rec.Token
}

// readRecord reads and decodes a lease file.
func (c *LeasedCache) readRecord(path string) (leaseRecord, bool) {
	data, err := c.dc.fs.ReadFile(path)
	if err != nil {
		return leaseRecord{}, false
	}
	var rec leaseRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return leaseRecord{}, false
	}
	return rec, true
}

// startLease constructs the held-lease handle and starts its heartbeat.
func (c *LeasedCache) startLease(path string, k Key, rec leaseRecord) *Lease {
	l := &Lease{
		c:     c,
		key:   k,
		path:  path,
		owner: rec.Owner,
		token: rec.Token,
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go l.heartbeat(c.opts.Heartbeat)
	return l
}

// Lease is a held per-key flight claim: the right to simulate one missed
// key on behalf of every instance sharing the cache directory.  The holder
// heartbeats the lease file's mtime in the background; Release (always call
// it, typically deferred) stops the heartbeat and removes the lease — but
// only if this holder still owns it, so a holder that was fenced during a
// long stall cannot delete its successor's claim.
type Lease struct {
	c     *LeasedCache
	key   Key
	path  string
	owner string
	token uint64
	stop  chan struct{}
	done  chan struct{}
	lost  atomic.Bool
}

// Key returns the leased key.
func (l *Lease) Key() Key { return l.key }

// Lost reports whether the lease was observed fenced away (a successor took
// over during a stall).  The flight's result is still valid — entries are
// idempotent — it just may have been duplicated.
func (l *Lease) Lost() bool { return l.lost.Load() }

// heartbeat refreshes the lease file's mtime every interval, re-verifying
// ownership as it goes; it exits on Release or on discovering the lease was
// fenced away.
func (l *Lease) heartbeat(interval time.Duration) {
	defer close(l.done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			rec, ok := l.c.readRecord(l.path)
			if !ok || rec.Owner != l.owner || rec.Token != l.token {
				l.lost.Store(true)
				return
			}
			now := time.Now()
			if err := l.c.dc.fs.Chtimes(l.path, now, now); err != nil {
				// The file vanished or the disk broke: either way we can no
				// longer assert liveness.  Mark lost so Release skips the
				// delete; the flight itself continues to a valid result.
				l.lost.Store(true)
				return
			}
		}
	}
}

// Release ends the flight: it stops the heartbeat and deletes the lease
// file if this holder still owns it.  Callers Release after Put, so waiters
// observe the entry before the lease disappears (they adopt rather than
// re-claim).  Release is idempotent.
func (l *Lease) Release() {
	select {
	case <-l.stop:
		// Already released.
		return
	default:
	}
	close(l.stop)
	<-l.done
	if l.lost.Load() {
		l.c.lm.fenced.Add(1)
		return
	}
	rec, ok := l.c.readRecord(l.path)
	if !ok || rec.Owner != l.owner || rec.Token != l.token {
		l.c.lm.fenced.Add(1)
		return
	}
	if err := l.c.dc.fs.Remove(l.path); err != nil {
		l.c.lm.errors.Add(1)
		l.c.logf("sweep: lease: %s: release: %v", l.key, err)
		return
	}
	l.c.lm.released.Add(1)
}
