package sweep

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"
)

// TestDiskCacheCorruptEntryLogsAndOverwrites pins the corruption-tolerance
// contract: a truncated or garbage entry file reads as a logged miss, the
// job recomputes, and the recomputation's Put overwrites the bad file so the
// next process hits again.
func TestDiskCacheCorruptEntryLogsAndOverwrites(t *testing.T) {
	dir := t.TempDir()
	jobs, err := testSpec().Jobs()
	if err != nil {
		t.Fatalf("Jobs: %v", err)
	}
	jobs = jobs[:1]
	key := jobs[0].Key

	seed, err := NewDiskCache(dir)
	if err != nil {
		t.Fatalf("NewDiskCache: %v", err)
	}
	want, err := NewEngine(EngineOptions{Workers: 1, Cache: seed}).Run(jobs)
	if err != nil {
		t.Fatalf("seed run: %v", err)
	}

	for name, corrupt := range map[string][]byte{
		"truncated": []byte(`{"key":{"workload":"merges`),
		"garbage":   []byte("\x00\xff\x17 not json at all"),
	} {
		t.Run(name, func(t *testing.T) {
			path := seed.path(key)
			if err := os.WriteFile(path, corrupt, 0o644); err != nil {
				t.Fatal(err)
			}
			c, err := NewDiskCache(dir)
			if err != nil {
				t.Fatalf("NewDiskCache: %v", err)
			}
			var mu sync.Mutex
			var logs []string
			c.SetLogf(func(format string, args ...any) {
				mu.Lock()
				logs = append(logs, fmt.Sprintf(format, args...))
				mu.Unlock()
			})
			if _, ok := c.Get(key); ok {
				t.Fatalf("corrupt entry must miss")
			}
			if len(logs) != 1 || !strings.Contains(logs[0], "corrupt entry") {
				t.Fatalf("corrupt entry must be logged once, got %q", logs)
			}

			// The recomputation overwrites the corrupt file in place.
			got, err := NewEngine(EngineOptions{Workers: 1, Cache: c}).Run(jobs)
			if err != nil {
				t.Fatalf("recompute through corrupt cache: %v", err)
			}
			if got[0].Cached {
				t.Fatalf("corrupt entry must force a recomputation")
			}
			if got[0].Sim.Cycles != want[0].Sim.Cycles {
				t.Fatalf("recomputed cycles = %d, want %d", got[0].Sim.Cycles, want[0].Sim.Cycles)
			}
			fresh, err := NewDiskCache(dir)
			if err != nil {
				t.Fatalf("NewDiskCache: %v", err)
			}
			if _, ok := fresh.Get(key); !ok {
				t.Fatalf("recomputation must overwrite the corrupt entry")
			}
		})
	}
}

// TestDiskCacheWrongKeyEntryLogsAndMisses covers the other corruption shape:
// a parseable entry stored under an address whose key it does not match.
func TestDiskCacheWrongKeyEntryLogsAndMisses(t *testing.T) {
	dir := t.TempDir()
	jobs, err := testSpec().Jobs()
	if err != nil {
		t.Fatalf("Jobs: %v", err)
	}
	jobs = jobs[:2]

	seed, err := NewDiskCache(dir)
	if err != nil {
		t.Fatalf("NewDiskCache: %v", err)
	}
	if _, err := NewEngine(EngineOptions{Workers: 1, Cache: seed}).Run(jobs); err != nil {
		t.Fatalf("seed run: %v", err)
	}
	// Swap job 1's entry file under job 0's address.
	data, err := os.ReadFile(seed.path(jobs[1].Key))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seed.path(jobs[0].Key), data, 0o644); err != nil {
		t.Fatal(err)
	}

	c, err := NewDiskCache(dir)
	if err != nil {
		t.Fatalf("NewDiskCache: %v", err)
	}
	var logs []string
	c.SetLogf(func(format string, args ...any) { logs = append(logs, fmt.Sprintf(format, args...)) })
	if _, ok := c.Get(jobs[0].Key); ok {
		t.Fatalf("mismatched entry must miss")
	}
	if len(logs) != 1 || !strings.Contains(logs[0], "holds key") {
		t.Fatalf("mismatched entry must be logged once, got %q", logs)
	}
}

// TestRunContextCancelled asserts the cancellation contract at both worker
// shapes: an already-cancelled context runs nothing; a context cancelled
// after the first completed job stops feeding, keeps the completed results,
// and reports context.Canceled.
func TestRunContextCancelled(t *testing.T) {
	jobs, err := testSpec().Jobs()
	if err != nil {
		t.Fatalf("Jobs: %v", err)
	}
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d/pre-cancelled", workers), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			results, err := NewEngine(EngineOptions{Workers: workers}).RunContext(ctx, jobs)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			for _, r := range results {
				if r.Sim != nil {
					t.Fatalf("pre-cancelled run must not simulate, got %s", r.Key)
				}
			}
		})
		t.Run(fmt.Sprintf("workers=%d/mid-cancel", workers), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var mu sync.Mutex
			streamed := 0
			results, err := NewEngine(EngineOptions{Workers: workers}).RunStreamContext(ctx, jobs,
				func(i int, r Result) {
					mu.Lock()
					streamed++
					mu.Unlock()
					cancel()
				})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			done := 0
			for _, r := range results {
				if r.Sim != nil {
					done++
				}
			}
			if done == 0 || done == len(jobs) {
				t.Fatalf("mid-cancel completed %d of %d jobs, want a strict partial run", done, len(jobs))
			}
			if done != streamed {
				t.Fatalf("streamed %d results but %d are filled in", streamed, done)
			}
		})
	}
}
