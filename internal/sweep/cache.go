package sweep

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cmpsched/internal/cmpsim"
	"cmpsched/internal/faultinject"
)

// Entry is one cached run: the simulator result plus any derived metrics,
// addressed by the job key.
type Entry struct {
	Key     Key              `json:"key"`
	Sim     *cmpsim.Result   `json:"sim"`
	Derived map[string]int64 `json:"derived,omitempty"`
}

// Cache memoises finished runs by content address.  Implementations must be
// safe for concurrent use by the engine's workers.
type Cache interface {
	Get(k Key) (Entry, bool)
	Put(e Entry) error
	// Stats reports the hit/miss counts observed by Get.
	Stats() (hits, misses int64)
}

// counters implements the Stats half of Cache.
type counters struct {
	hits, misses atomic.Int64
}

// Stats implements Cache.
func (c *counters) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// MemoryCache is an in-process map cache.
type MemoryCache struct {
	counters
	mu sync.RWMutex
	m  map[string]Entry
}

// NewMemoryCache returns an empty in-memory cache.
func NewMemoryCache() *MemoryCache {
	return &MemoryCache{m: make(map[string]Entry)}
}

// Get looks the key up.
func (c *MemoryCache) Get(k Key) (Entry, bool) {
	c.mu.RLock()
	e, ok := c.m[k.Hash()]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return e, ok
}

// Put stores the entry.
func (c *MemoryCache) Put(e Entry) error {
	c.mu.Lock()
	c.m[e.Key.Hash()] = e
	c.mu.Unlock()
	return nil
}

// Len returns the number of cached entries.
func (c *MemoryCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// DiskCache persists entries as <hash>.json files under a directory, with an
// in-memory layer in front so repeated hits within a process do not re-read
// or re-parse files.  Entries written by earlier processes are picked up, so
// repeated sweeps across invocations are near-instant.
//
// Corrupt entries — truncated files from a killed writer, garbage from a
// damaged disk, or an entry whose embedded key does not match its address —
// are tolerated: Get logs (when a logger is set) and reports a miss, the job
// recomputes, and the following Put overwrites the bad file.  A shared disk
// cache therefore degrades to recomputation, never to failed jobs.
//
// Opening a cache garbage-collects the debris a crashed writer can leave
// behind: orphaned put-*.tmp files older than TempMaxAge and .lease files
// (see lease.go) older than LeaseMaxAge, so a killed process never
// permanently poisons a cache directory.
type DiskCache struct {
	counters
	dir string
	mem *MemoryCache
	fs  faultinject.FS

	logf func(format string, args ...any)

	gcTemps, gcLeases int
}

// DiskCacheOptions tune a DiskCache; the zero value is the default
// configuration NewDiskCache uses.
type DiskCacheOptions struct {
	// FS is the filesystem the cache operates through.  Nil means the real
	// filesystem; tests substitute a faultinject.Faulty to rehearse crashes
	// and I/O errors deterministically.
	FS faultinject.FS
	// Logf, when non-nil, receives corrupt-entry and garbage-collection
	// reports (same role as SetLogf).
	Logf func(format string, args ...any)
	// TempMaxAge is the age beyond which an orphaned put-*.tmp file is
	// collected on open.  Zero means one hour: long enough that no live
	// writer's temp file is ever collected, short enough that crash debris
	// does not accumulate.
	TempMaxAge time.Duration
	// LeaseMaxAge is the age beyond which a .lease file is collected on
	// open.  Zero means one minute — far beyond any live holder's heartbeat
	// interval (see LeaseOptions), so only leases whose owner died without
	// takeover are swept.
	LeaseMaxAge time.Duration
}

// withDefaults fills the zero fields.
func (o DiskCacheOptions) withDefaults() DiskCacheOptions {
	if o.FS == nil {
		o.FS = faultinject.OS()
	}
	if o.TempMaxAge <= 0 {
		o.TempMaxAge = time.Hour
	}
	if o.LeaseMaxAge <= 0 {
		o.LeaseMaxAge = time.Minute
	}
	return o
}

// NewDiskCache creates the directory if needed and returns a cache over it
// with default options.
func NewDiskCache(dir string) (*DiskCache, error) {
	return NewDiskCacheWith(dir, DiskCacheOptions{})
}

// NewDiskCacheWith is NewDiskCache with explicit options.
func NewDiskCacheWith(dir string, opts DiskCacheOptions) (*DiskCache, error) {
	opts = opts.withDefaults()
	if err := opts.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: cache dir: %w", err)
	}
	c := &DiskCache{dir: dir, mem: NewMemoryCache(), fs: opts.FS, logf: opts.Logf}
	c.gc(opts.TempMaxAge, opts.LeaseMaxAge)
	return c, nil
}

// gc sweeps crash debris out of the cache directory: orphaned temp files
// from writers that died mid-Put, and lease files whose owner died long
// enough ago that no live instance can still be heartbeating them.  GC
// failures are logged and ignored — a cache that cannot clean up still
// works, the debris just waits for the next open.
func (c *DiskCache) gc(tempMaxAge, leaseMaxAge time.Duration) {
	ents, err := c.fs.ReadDir(c.dir)
	if err != nil {
		if c.logf != nil {
			c.logf("sweep: cache: gc: %v", err)
		}
		return
	}
	now := time.Now()
	for _, ent := range ents {
		name := ent.Name()
		var maxAge time.Duration
		switch {
		case strings.HasPrefix(name, "put-") && strings.HasSuffix(name, ".tmp"):
			maxAge = tempMaxAge
		case strings.HasSuffix(name, leaseSuffix):
			maxAge = leaseMaxAge
		default:
			continue
		}
		info, err := ent.Info()
		if err != nil {
			continue
		}
		if age := now.Sub(info.ModTime()); age > maxAge {
			path := filepath.Join(c.dir, name)
			if err := c.fs.Remove(path); err != nil {
				if c.logf != nil {
					c.logf("sweep: cache: gc: %v", err)
				}
				continue
			}
			if strings.HasSuffix(name, leaseSuffix) {
				c.gcLeases++
			} else {
				c.gcTemps++
			}
			if c.logf != nil {
				c.logf("sweep: cache: gc: removed %s (age %s)", path, age.Round(time.Second))
			}
		}
	}
}

// GCStats reports how many orphaned temp files and expired lease files the
// open-time garbage collection removed.
func (c *DiskCache) GCStats() (temps, leases int) { return c.gcTemps, c.gcLeases }

// Dir returns the backing directory.
func (c *DiskCache) Dir() string { return c.dir }

// SetLogf installs a Printf-style logger for corrupt-entry reports (nil, the
// default, keeps them silent).  Set it before the cache is shared between
// goroutines; the engine's workers call Get concurrently.
func (c *DiskCache) SetLogf(logf func(format string, args ...any)) { c.logf = logf }

func (c *DiskCache) path(k Key) string {
	return filepath.Join(c.dir, k.Hash()+".json")
}

// Get checks the memory layer, then the directory.  Unreadable or corrupt
// files are treated as misses (the entry is simply recomputed).
func (c *DiskCache) Get(k Key) (Entry, bool) {
	if e, ok := c.mem.Get(k); ok {
		c.hits.Add(1)
		return e, true
	}
	data, err := c.fs.ReadFile(c.path(k))
	if err != nil {
		c.misses.Add(1)
		return Entry{}, false
	}
	var e Entry
	if err := json.Unmarshal(data, &e); err != nil {
		// Truncated or garbage file: miss, so the job recomputes and the
		// resulting Put overwrites the corrupt entry.
		if c.logf != nil {
			c.logf("sweep: cache: corrupt entry %s (%d bytes): %v; recomputing", c.path(k), len(data), err)
		}
		c.misses.Add(1)
		return Entry{}, false
	}
	if e.Key != k {
		// A parseable entry under the wrong address: either a foreign file
		// or an (astronomically unlikely) hash collision.
		if c.logf != nil {
			c.logf("sweep: cache: entry %s holds key %s, want %s; recomputing", c.path(k), e.Key, k)
		}
		c.misses.Add(1)
		return Entry{}, false
	}
	_ = c.mem.Put(e)
	c.hits.Add(1)
	return e, true
}

// Put writes the entry to the memory layer and then atomically (write to a
// temp file, rename) to the directory, so concurrent writers and readers
// never observe partial files.
func (c *DiskCache) Put(e Entry) error {
	if err := c.mem.Put(e); err != nil {
		return err
	}
	data, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("sweep: encode cache entry: %w", err)
	}
	tmp, err := c.fs.CreateTemp(c.dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("sweep: cache write: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		_ = c.fs.Remove(tmp.Name())
		return fmt.Errorf("sweep: cache write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		_ = c.fs.Remove(tmp.Name())
		return fmt.Errorf("sweep: cache write: %w", err)
	}
	if err := c.fs.Rename(tmp.Name(), c.path(e.Key)); err != nil {
		_ = c.fs.Remove(tmp.Name())
		return fmt.Errorf("sweep: cache write: %w", err)
	}
	return nil
}
