package sweep

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"cmpsched/internal/cmpsim"
)

// Entry is one cached run: the simulator result plus any derived metrics,
// addressed by the job key.
type Entry struct {
	Key     Key              `json:"key"`
	Sim     *cmpsim.Result   `json:"sim"`
	Derived map[string]int64 `json:"derived,omitempty"`
}

// Cache memoises finished runs by content address.  Implementations must be
// safe for concurrent use by the engine's workers.
type Cache interface {
	Get(k Key) (Entry, bool)
	Put(e Entry) error
	// Stats reports the hit/miss counts observed by Get.
	Stats() (hits, misses int64)
}

// counters implements the Stats half of Cache.
type counters struct {
	hits, misses atomic.Int64
}

// Stats implements Cache.
func (c *counters) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// MemoryCache is an in-process map cache.
type MemoryCache struct {
	counters
	mu sync.RWMutex
	m  map[string]Entry
}

// NewMemoryCache returns an empty in-memory cache.
func NewMemoryCache() *MemoryCache {
	return &MemoryCache{m: make(map[string]Entry)}
}

// Get looks the key up.
func (c *MemoryCache) Get(k Key) (Entry, bool) {
	c.mu.RLock()
	e, ok := c.m[k.Hash()]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return e, ok
}

// Put stores the entry.
func (c *MemoryCache) Put(e Entry) error {
	c.mu.Lock()
	c.m[e.Key.Hash()] = e
	c.mu.Unlock()
	return nil
}

// Len returns the number of cached entries.
func (c *MemoryCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// DiskCache persists entries as <hash>.json files under a directory, with an
// in-memory layer in front so repeated hits within a process do not re-read
// or re-parse files.  Entries written by earlier processes are picked up, so
// repeated sweeps across invocations are near-instant.
//
// Corrupt entries — truncated files from a killed writer, garbage from a
// damaged disk, or an entry whose embedded key does not match its address —
// are tolerated: Get logs (when a logger is set) and reports a miss, the job
// recomputes, and the following Put overwrites the bad file.  A shared disk
// cache therefore degrades to recomputation, never to failed jobs.
type DiskCache struct {
	counters
	dir string
	mem *MemoryCache

	logf func(format string, args ...any)
}

// NewDiskCache creates the directory if needed and returns a cache over it.
func NewDiskCache(dir string) (*DiskCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: cache dir: %w", err)
	}
	return &DiskCache{dir: dir, mem: NewMemoryCache()}, nil
}

// Dir returns the backing directory.
func (c *DiskCache) Dir() string { return c.dir }

// SetLogf installs a Printf-style logger for corrupt-entry reports (nil, the
// default, keeps them silent).  Set it before the cache is shared between
// goroutines; the engine's workers call Get concurrently.
func (c *DiskCache) SetLogf(logf func(format string, args ...any)) { c.logf = logf }

func (c *DiskCache) path(k Key) string {
	return filepath.Join(c.dir, k.Hash()+".json")
}

// Get checks the memory layer, then the directory.  Unreadable or corrupt
// files are treated as misses (the entry is simply recomputed).
func (c *DiskCache) Get(k Key) (Entry, bool) {
	if e, ok := c.mem.Get(k); ok {
		c.hits.Add(1)
		return e, true
	}
	data, err := os.ReadFile(c.path(k))
	if err != nil {
		c.misses.Add(1)
		return Entry{}, false
	}
	var e Entry
	if err := json.Unmarshal(data, &e); err != nil {
		// Truncated or garbage file: miss, so the job recomputes and the
		// resulting Put overwrites the corrupt entry.
		if c.logf != nil {
			c.logf("sweep: cache: corrupt entry %s (%d bytes): %v; recomputing", c.path(k), len(data), err)
		}
		c.misses.Add(1)
		return Entry{}, false
	}
	if e.Key != k {
		// A parseable entry under the wrong address: either a foreign file
		// or an (astronomically unlikely) hash collision.
		if c.logf != nil {
			c.logf("sweep: cache: entry %s holds key %s, want %s; recomputing", c.path(k), e.Key, k)
		}
		c.misses.Add(1)
		return Entry{}, false
	}
	_ = c.mem.Put(e)
	c.hits.Add(1)
	return e, true
}

// Put writes the entry to the memory layer and then atomically (write to a
// temp file, rename) to the directory, so concurrent writers and readers
// never observe partial files.
func (c *DiskCache) Put(e Entry) error {
	if err := c.mem.Put(e); err != nil {
		return err
	}
	data, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("sweep: encode cache entry: %w", err)
	}
	tmp, err := os.CreateTemp(c.dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("sweep: cache write: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: cache write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: cache write: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path(e.Key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: cache write: %w", err)
	}
	return nil
}
