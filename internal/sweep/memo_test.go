package sweep

import (
	"reflect"
	"testing"

	"cmpsched/internal/cmpsim"
	"cmpsched/internal/obs"
	"cmpsched/internal/sched"
)

// runDirect simulates one job without any sweep machinery — a fresh DAG
// build per run, no memoised templates, no shared trace store — producing
// the result exactly as Engine.runJob would (task stats dropped).
func runDirect(t *testing.T, j Job) *cmpsim.Result {
	t.Helper()
	d, err := j.Build()
	if err != nil {
		t.Fatalf("%s: build: %v", j.Key, err)
	}
	opts := cmpsim.DefaultOptions()
	opts.RecordTaskStats = false
	var r *cmpsim.Result
	if j.Scheduler == Sequential {
		r, err = cmpsim.RunSequentialWithOptions(d, j.Config, opts)
	} else {
		s, err2 := sched.New(j.Scheduler)
		if err2 != nil {
			t.Fatalf("%s: %v", j.Key, err2)
		}
		r, err = cmpsim.RunWithOptions(d, s, j.Config, opts)
	}
	if err != nil {
		t.Fatalf("%s: run: %v", j.Key, err)
	}
	r.TaskStats = nil
	return r
}

// TestSharedTraceStoreByteIdentical pins the memoisation soundness claim: a
// sweep whose jobs share memoised DAG templates (and, concurrently, one
// trace store) produces byte-identical simulator results to rebuilding every
// DAG from scratch, at any worker count.  Run under -race this also
// exercises concurrent Instantiate against one store.
func TestSharedTraceStoreByteIdentical(t *testing.T) {
	jobs, err := testSpec().Jobs()
	if err != nil {
		t.Fatal(err)
	}
	// The grid shape guarantees sharing: every (workload, cores) pair
	// appears once per scheduler (plus the sequential baseline).
	want := make([]*cmpsim.Result, len(jobs))
	for i := range jobs {
		want[i] = runDirect(t, jobs[i])
	}

	for _, workers := range []int{1, 4, 8} {
		reg := obs.NewRegistry()
		e := NewEngine(EngineOptions{Workers: workers, Metrics: reg})
		results, err := e.Run(jobs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, r := range results {
			if !reflect.DeepEqual(r.Sim, want[i]) {
				t.Fatalf("workers=%d: job %d (%s) differs from unshared rebuild:\nshared:   %+v\nrebuilt: %+v",
					workers, i, jobs[i].Key, r.Sim, want[i])
			}
		}
		// The grid has len(jobs) jobs over fewer distinct templates; the
		// difference must show up as avoided rebuilds, and the shared store
		// must have interned every recorded task exactly once per template.
		builds := reg.ShardedCounter("sweep.dag_builds", 1).Value()
		avoided := reg.ShardedCounter("sweep.dag_rebuilds_avoided", 1).Value()
		if builds == 0 || avoided == 0 || builds+avoided != int64(len(jobs)) {
			t.Fatalf("workers=%d: builds=%d avoided=%d, want both positive summing to %d",
				workers, builds, avoided, len(jobs))
		}
		if interned := reg.Gauge("sweep.trace.interned").Value(); interned == 0 {
			t.Fatalf("workers=%d: no traces interned", workers)
		}
		if arena := reg.Gauge("sweep.trace.arena_bytes").Value(); arena <= 0 {
			t.Fatalf("workers=%d: arena bytes = %d", workers, arena)
		}
	}
}

// TestMemoizedBuildRunsOncePerTemplate pins the single-flight contract: the
// engine calls Build once per (workload, params, config) triple no matter
// how many schedulers fan out from it or how many workers race.
func TestMemoizedBuildRunsOncePerTemplate(t *testing.T) {
	jobs, err := testSpec().Jobs()
	if err != nil {
		t.Fatal(err)
	}
	templates := make(map[string]bool)
	for i := range jobs {
		templates[templateKey(jobs[i].Key)] = true
	}
	reg := obs.NewRegistry()
	e := NewEngine(EngineOptions{Workers: 8, Metrics: reg})
	if _, err := e.Run(jobs); err != nil {
		t.Fatal(err)
	}
	if builds := reg.ShardedCounter("sweep.dag_builds", 1).Value(); builds != int64(len(templates)) {
		t.Fatalf("builds = %d, want one per template = %d", builds, len(templates))
	}
}
