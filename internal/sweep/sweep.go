// Package sweep is the parallel design-space sweep engine.
//
// The paper's evaluation is a grid of (workload x scheduler x CMP
// configuration) simulation runs; every figure is one slice of that grid.
// This package turns such grids into explicit Job lists, runs them on a
// bounded worker pool with deterministic result ordering, memoises finished
// runs in a content-addressed cache (in memory, optionally mirrored to
// disk), and streams results to aggregators and CSV/JSON exporters.
//
// The experiment harness (internal/experiments) expresses every figure as a
// job list executed here, cmd/sweep exposes arbitrary sweeps on the command
// line, and tests exploit the determinism guarantee: the results of a sweep
// are identical regardless of the worker count, because each job simulates a
// private DAG instance (reference generators are stateful, so replay cursors
// are never shared between concurrent simulations) and the simulator itself
// is deterministic.
//
// Jobs that share a (workload, parameters, machine configuration) triple —
// the common shape: one job per scheduler over the same build — share one
// memoised DAG template recorded into a content-addressed trace store; see
// memo.go.  Sharing is driven entirely by job keys, so it needs no opt-in
// and cannot change results: instances replay the recorded streams
// bit-identically to a fresh build.
package sweep

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"cmpsched/internal/cmpsim"
	"cmpsched/internal/config"
	"cmpsched/internal/dag"
	"cmpsched/internal/obs"
	"cmpsched/internal/refs"
	"cmpsched/internal/sched"
)

// Sequential is the pseudo-scheduler name selecting the one-core sequential
// baseline run (the denominator of the paper's speedups).
const Sequential = "seq"

// Key is the content address of one simulation run: every input that can
// change the result is folded into it.  Two jobs with equal keys are
// guaranteed to produce equal results, which is what makes the cache sound.
type Key struct {
	// Workload names the benchmark (or benchmark variant, e.g.
	// "mergesort/coarsened").
	Workload string `json:"workload"`
	// Params is a canonical fingerprint of the workload's build
	// parameters (typically fmt.Sprintf("%+v", cfgStruct)).
	Params string `json:"params"`
	// Scheduler is a canonical scheduler-registry name ("pdf", "ws",
	// "fifo", "sb", "ws:nearest", ...) or Sequential.  Parameterised
	// spellings are part of the name, so scheduler variants never share
	// cache entries.
	Scheduler string `json:"scheduler"`
	// Config is a canonical fingerprint of the CMP configuration.
	Config string `json:"config"`
	// Options is a canonical fingerprint of the simulator options.
	Options string `json:"options"`
}

// Hash returns the hex SHA-256 of the key, used as the cache address.
func (k Key) Hash() string {
	h := sha256.New()
	// A length-prefixed encoding keeps field boundaries unambiguous.
	for _, f := range []string{k.Workload, k.Params, k.Scheduler, k.Config, k.Options} {
		fmt.Fprintf(h, "%d:%s|", len(f), f)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// String renders a short human-readable form for logs and errors.
func (k Key) String() string {
	return fmt.Sprintf("%s/%s", k.Workload, k.Scheduler)
}

// BuildFunc constructs a fresh DAG for one run.  It may be called from any
// worker, so it must be safe to call concurrently with other jobs' builds —
// and must not return a DAG that shares reference generators with any other
// live DAG.
//
// Builds must be pure functions of the job key's Workload, Params and Config
// fields: the engine memoises the built DAG per (Workload, Params, Config)
// triple and serves later jobs of the triple from the recording (see
// memo.go), so two jobs with equal triples MUST build equivalent DAGs, and
// at most one of their Build functions will actually run per sweep engine.
// Every standard constructor (NewJob callers fingerprinting their config
// structs into Params) satisfies this by construction.
type BuildFunc func() (*dag.DAG, error)

// DeriveFunc computes named scalar metrics from a finished run while the
// DAG is still available (e.g. per-level miss aggregation).  Derived values
// are stored in the cache next to the simulator result, so cache hits carry
// them without rebuilding the DAG.
type DeriveFunc func(d *dag.DAG, r *cmpsim.Result) (map[string]int64, error)

// Job is one simulation to run.
type Job struct {
	// Key identifies the job for caching, ordering and reporting.
	Key Key
	// Config is the machine configuration to simulate.
	Config config.CMP
	// Scheduler is the scheduler name ("pdf", "ws", "fifo" or Sequential).
	Scheduler string
	// Build constructs the job's DAG.
	Build BuildFunc
	// Options, when non-nil, overrides cmpsim.DefaultOptions.
	Options *cmpsim.Options
	// Derive, when non-nil, computes extra metrics from the finished run.
	Derive DeriveFunc
	// KeepTaskStats retains the per-task stats on the result.  They are
	// dropped by default: they are positional to the job's private DAG
	// (useless to callers that may be served from the cache) and dominate
	// the result's memory and disk footprint.  Jobs that keep task stats
	// bypass the cache entirely — a cached entry could not honour them.
	KeepTaskStats bool
}

// NewJob builds a Job whose key is derived canonically from the inputs.
// params is the canonical fingerprint of the workload's build parameters —
// conventionally fmt.Sprintf("%+v", cfgStruct) over a pointer-free config
// struct, so equal parameters always produce equal fingerprints.
func NewJob(workload, params, scheduler string, cfg config.CMP, build BuildFunc) Job {
	return Job{
		Key: Key{
			Workload:  workload,
			Params:    params,
			Scheduler: scheduler,
			Config:    fmt.Sprintf("%+v", cfg),
			Options:   "",
		},
		Config:    cfg,
		Scheduler: scheduler,
		Build:     build,
	}
}

// WithDerive attaches a derive function, folding its identity tag into the
// key (different derivations must not share cache entries).
func (j Job) WithDerive(tag string, fn DeriveFunc) Job {
	j.Derive = fn
	j.Key.Options += "|derive=" + tag
	return j
}

// WithOptions attaches simulator options, folding their semantic fingerprint
// into the key.  Options.Fingerprint covers exactly the fields that can
// change simulation results; instrumentation sinks (Tracer, Metrics) are
// excluded, so observed and unobserved runs of the same job share one cache
// entry — and the fingerprint stays free of pointer values that would break
// key determinism.
func (j Job) WithOptions(opts cmpsim.Options) Job {
	j.Options = &opts
	j.Key.Options += "|opts=" + opts.Fingerprint()
	return j
}

// Result is the outcome of one job.
type Result struct {
	// Key echoes the job's key.
	Key Key `json:"key"`
	// Sim is the simulator result (TaskStats dropped unless the job set
	// KeepTaskStats).
	Sim *cmpsim.Result `json:"sim"`
	// Derived holds the job's derived metrics, if any.
	Derived map[string]int64 `json:"derived,omitempty"`
	// Cached reports whether the result was served from the cache.
	Cached bool `json:"cached"`
	// Elapsed is the wall-clock time the job took in this process
	// (near zero on a cache hit).
	Elapsed time.Duration `json:"elapsed_ns"`
}

// Engine runs job lists on a bounded worker pool.
type Engine struct {
	workers    int
	cache      Cache
	jobTimeout time.Duration
	em         engineMetrics

	// snapshots memoises DAG templates by (workload, params, config); the
	// recorded reference streams live in traces, one shared read-only store
	// for the whole engine.  See memo.go.
	snapMu    sync.Mutex
	snapshots map[string]*snapshotEntry
	traces    *refs.TraceStore
}

// EngineOptions configure an Engine.
type EngineOptions struct {
	// Workers is the maximum number of concurrent simulations.  Zero (or
	// negative) means runtime.NumCPU(); 1 forces serial execution.
	Workers int
	// Cache, when non-nil, is consulted before each run and updated after.
	Cache Cache
	// Metrics, when non-nil, receives per-sweep aggregates (job counts,
	// cache hit counts, simulated cycles, cache statistics) as the stream
	// runs.  Workers publish into padded per-worker shards, so concurrent
	// jobs never contend — and the folded totals are independent of worker
	// count and completion order, keeping the published view deterministic.
	Metrics *obs.Registry
	// JobTimeout, when positive, bounds each job's simulation wall-clock
	// time: a run that exceeds it is cancelled (cmpsim.ErrCancelled) and the
	// job fails with a timeout error, instead of a runaway simulation
	// wedging a worker forever.  The timeout covers only the simulation —
	// cache hits and adopted flights are exempt — and is private to the job:
	// engine-level cancellation (RunContext) still takes effect only between
	// jobs, so every non-timed-out Result stays complete and cacheable.
	// Jobs that carry their own Options.Cancel keep it unless a timeout is
	// configured.
	JobTimeout time.Duration
}

// engineMetrics holds the engine's pre-resolved sharded-counter handles, one
// shard per worker.  With a nil registry every handle is nil and each Add is
// a no-op, so the disabled state costs nothing per job.
type engineMetrics struct {
	jobs, cached                       *obs.ShardedCounter
	simCycles, simTasks                *obs.ShardedCounter
	l1Hits, l1Misses, l2Hits, l2Misses *obs.ShardedCounter
	memFetches                         *obs.ShardedCounter
	// dagBuilds counts DAG templates actually built; dagShared counts jobs
	// served from a memoised template instead (see memo.go).  Both are
	// incremented once-per-key-event under the snapshot lock's ordering, so
	// their totals are worker-count independent like everything else here.
	dagBuilds, dagShared *obs.ShardedCounter
	// Trace-interning totals of the engine's shared store, set when a
	// stream finishes.
	traceUnique, traceInterned, traceArena *obs.Gauge
}

func newEngineMetrics(reg *obs.Registry, shards int) engineMetrics {
	return engineMetrics{
		jobs:          reg.ShardedCounter("sweep.jobs", shards),
		cached:        reg.ShardedCounter("sweep.jobs_cached", shards),
		simCycles:     reg.ShardedCounter("sweep.sim_cycles", shards),
		simTasks:      reg.ShardedCounter("sweep.sim_tasks", shards),
		l1Hits:        reg.ShardedCounter("sweep.cache.l1_hits", shards),
		l1Misses:      reg.ShardedCounter("sweep.cache.l1_misses", shards),
		l2Hits:        reg.ShardedCounter("sweep.cache.l2_hits", shards),
		l2Misses:      reg.ShardedCounter("sweep.cache.l2_misses", shards),
		memFetches:    reg.ShardedCounter("sweep.mem_fetches", shards),
		dagBuilds:     reg.ShardedCounter("sweep.dag_builds", 1),
		dagShared:     reg.ShardedCounter("sweep.dag_rebuilds_avoided", 1),
		traceUnique:   reg.Gauge("sweep.trace.unique"),
		traceInterned: reg.Gauge("sweep.trace.interned"),
		traceArena:    reg.Gauge("sweep.trace.arena_bytes"),
	}
}

// publish folds one finished job into the worker's shards.
func (em *engineMetrics) publish(worker int, r Result) {
	em.jobs.Add(worker, 1)
	if r.Cached {
		em.cached.Add(worker, 1)
	}
	if r.Sim == nil {
		return
	}
	em.simCycles.Add(worker, r.Sim.Cycles)
	em.simTasks.Add(worker, int64(r.Sim.TasksExecuted))
	em.l1Hits.Add(worker, r.Sim.L1.Hits)
	em.l1Misses.Add(worker, r.Sim.L1.Misses)
	em.l2Hits.Add(worker, r.Sim.L2.Hits)
	em.l2Misses.Add(worker, r.Sim.L2.Misses)
	em.memFetches.Add(worker, r.Sim.Mem.Fetches)
}

// NewEngine constructs an engine.
func NewEngine(opts EngineOptions) *Engine {
	w := opts.Workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	return &Engine{
		workers:    w,
		cache:      opts.Cache,
		jobTimeout: opts.JobTimeout,
		em:         newEngineMetrics(opts.Metrics, w),
		snapshots:  make(map[string]*snapshotEntry),
		traces:     refs.NewTraceStore(),
	}
}

// Workers returns the engine's concurrency bound.
func (e *Engine) Workers() int { return e.workers }

// Run executes the jobs and returns their results in job order, regardless
// of the completion order of the workers.  On failure it returns the partial
// results together with the error of the lowest-indexed failing job, so the
// reported error is deterministic too.
func (e *Engine) Run(jobs []Job) ([]Result, error) {
	return e.RunStreamContext(context.Background(), jobs, nil)
}

// RunContext is Run with cancellation: when ctx is cancelled the engine
// stops starting new jobs, lets in-flight jobs finish, and returns the
// partial results (completed entries filled, the rest zero) together with
// the context's error.  Cancellation is checked between jobs, never inside a
// simulation, so every returned Result is complete and cacheable.
func (e *Engine) RunContext(ctx context.Context, jobs []Job) ([]Result, error) {
	return e.RunStreamContext(ctx, jobs, nil)
}

// RunStream is Run with a streaming callback: onResult is invoked once per
// finished job, in completion order (not job order), serialised by the
// engine so the callback needs no locking.  The returned slice is still in
// job order.
func (e *Engine) RunStream(jobs []Job, onResult func(index int, r Result)) ([]Result, error) {
	return e.RunStreamContext(context.Background(), jobs, onResult)
}

// RunStreamContext is RunStream with cancellation, combining the contracts
// of RunContext and RunStream: results stream in completion order until ctx
// is cancelled, at which point no new jobs start and the partial job-ordered
// slice is returned with the context's error.  Job errors take precedence
// over cancellation in the returned error, keeping failure reporting
// deterministic.
func (e *Engine) RunStreamContext(ctx context.Context, jobs []Job, onResult func(index int, r Result)) ([]Result, error) {
	defer e.publishTraceStats()
	results := make([]Result, len(jobs))
	errs := make([]error, len(jobs))

	workers := e.workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		// Serial fast path: stop at the first error, like a plain loop.
		for i := range jobs {
			if err := ctx.Err(); err != nil {
				return results, fmt.Errorf("sweep: %w", err)
			}
			r, err := e.runJob(ctx, jobs[i])
			if err != nil {
				return results, fmt.Errorf("sweep: job %d (%s): %w", i, jobs[i].Key, err)
			}
			results[i] = r
			e.em.publish(0, r)
			if onResult != nil {
				onResult(i, r)
			}
		}
		return results, nil
	}

	indexes := make(chan int)
	abort := make(chan struct{})
	var abortOnce sync.Once
	var cbMu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := range indexes {
				r, err := e.runJob(ctx, jobs[i])
				if err != nil {
					errs[i] = err
					// Stop feeding new jobs; in-flight ones finish.
					abortOnce.Do(func() { close(abort) })
					continue
				}
				results[i] = r
				e.em.publish(worker, r)
				if onResult != nil {
					cbMu.Lock()
					onResult(i, r)
					cbMu.Unlock()
				}
			}
		}(w)
	}
feed:
	for i := range jobs {
		select {
		case indexes <- i:
		case <-abort:
			break feed
		case <-ctx.Done():
			break feed
		}
	}
	close(indexes)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return results, fmt.Errorf("sweep: job %d (%s): %w", i, jobs[i].Key, err)
		}
	}
	if err := ctx.Err(); err != nil {
		return results, fmt.Errorf("sweep: %w", err)
	}
	return results, nil
}

// runJob executes (or recalls) a single job.
//
// A panic anywhere in the job — a buggy workload builder, a scheduler edge
// case, a derivation indexing past its stats — is recovered into the job's
// error, so one bad job fails one row instead of killing the process (and,
// under sweepsvc, the whole daemon).  ctx feeds only cross-process flight
// coordination (FlightCache.Acquire waits); simulation cancellation is
// governed by EngineOptions.JobTimeout alone, preserving the documented
// between-jobs cancellation contract.
func (e *Engine) runJob(ctx context.Context, j Job) (res Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("job panicked: %v\n%s", p, debug.Stack())
		}
	}()
	start := time.Now()
	if e.cache != nil && !j.KeepTaskStats {
		if ent, ok := e.cache.Get(j.Key); ok {
			return Result{Key: j.Key, Sim: ent.Sim, Derived: ent.Derived, Cached: true, Elapsed: time.Since(start)}, nil
		}
		if fc, ok := e.cache.(FlightCache); ok {
			// Cross-process single-flight: adopt the entry if another
			// instance lands it first, otherwise hold the flight's lease for
			// the duration of the simulation.  The lease is released after
			// the Put below (deferred, so also on failure — a waiter then
			// re-claims and re-simulates); a nil lease with a nil error means
			// coordination is degraded and we simulate uncoordinated.
			ent, adopted, lease, aerr := fc.Acquire(ctx, j.Key)
			if aerr != nil {
				return Result{}, aerr
			}
			if adopted {
				return Result{Key: j.Key, Sim: ent.Sim, Derived: ent.Derived, Cached: true, Elapsed: time.Since(start)}, nil
			}
			if lease != nil {
				defer lease.Release()
			}
		}
	}
	if j.Build == nil {
		return Result{}, fmt.Errorf("job has no build function")
	}
	d, err := e.instantiate(j)
	if err != nil {
		return Result{}, err
	}

	opts := cmpsim.DefaultOptions()
	if j.Options != nil {
		opts = *j.Options
	} else {
		// Per-task stats cost per-task accounting on every simulated
		// task; record them only when the job will actually consume them.
		opts.RecordTaskStats = j.KeepTaskStats
	}
	if j.Derive != nil {
		// Derivations read per-task stats.
		opts.RecordTaskStats = true
	}
	if e.jobTimeout > 0 {
		// The timeout context is rooted at Background, not ctx: engine-level
		// cancellation must keep taking effect only between jobs.
		tctx, cancel := context.WithTimeout(context.Background(), e.jobTimeout)
		defer cancel()
		opts.Cancel = tctx.Done()
	}
	var r *cmpsim.Result
	if j.Scheduler == Sequential {
		r, err = cmpsim.RunSequentialWithOptions(d, j.Config, opts)
	} else {
		var s sched.Scheduler
		if s, err = sched.New(j.Scheduler); err != nil {
			return Result{}, err
		}
		r, err = cmpsim.RunWithOptions(d, s, j.Config, opts)
	}
	if err != nil {
		if e.jobTimeout > 0 && errors.Is(err, cmpsim.ErrCancelled) {
			return Result{}, fmt.Errorf("job exceeded timeout %v: %w", e.jobTimeout, err)
		}
		return Result{}, err
	}

	var derived map[string]int64
	if j.Derive != nil {
		if derived, err = j.Derive(d, r); err != nil {
			return Result{}, fmt.Errorf("derive: %w", err)
		}
	}
	if !j.KeepTaskStats {
		r.TaskStats = nil
		if e.cache != nil {
			// Cache errors are deliberately non-fatal: a failed disk
			// write only costs a future recomputation.
			_ = e.cache.Put(Entry{Key: j.Key, Sim: r, Derived: derived})
		}
	}
	return Result{Key: j.Key, Sim: r, Derived: derived, Elapsed: time.Since(start)}, nil
}

// DeriveLevelMisses aggregates shared-L2 misses by task level under keys
// "level:<n>" — the per-merge-level picture of Figure 1.
func DeriveLevelMisses(d *dag.DAG, r *cmpsim.Result) (map[string]int64, error) {
	out := make(map[string]int64)
	for level, misses := range r.L2MissesByLevel(d) {
		out[fmt.Sprintf("level:%d", level)] = misses
	}
	return out, nil
}

// LevelMisses decodes the "level:<n>" keys written by DeriveLevelMisses.
func LevelMisses(derived map[string]int64) map[int]int64 {
	out := make(map[int]int64)
	for k, v := range derived {
		var level int
		if _, err := fmt.Sscanf(k, "level:%d", &level); err == nil {
			out[level] = v
		}
	}
	return out
}

// SummaryRow aggregates the results of one (workload, scheduler) series.
type SummaryRow struct {
	Workload    string
	Scheduler   string
	Runs        int
	CacheHits   int
	TotalCycles int64
	// BestCycles/BestConfig identify the fastest point of the series (the
	// design-point question of §5.2).
	BestCycles  int64
	BestConfig  string
	MeanMemUtil float64
}

// Aggregator accumulates results into per-(workload, scheduler) summaries.
// Add may be called from RunStream's callback; Rows returns a
// deterministically sorted snapshot.
type Aggregator struct {
	mu   sync.Mutex
	rows map[string]*SummaryRow
}

// NewAggregator returns an empty aggregator.
func NewAggregator() *Aggregator {
	return &Aggregator{rows: make(map[string]*SummaryRow)}
}

// Add folds one result into the aggregate.
func (a *Aggregator) Add(r Result) {
	a.mu.Lock()
	defer a.mu.Unlock()
	k := r.Key.Workload + "\x00" + r.Key.Scheduler
	row, ok := a.rows[k]
	if !ok {
		row = &SummaryRow{Workload: r.Key.Workload, Scheduler: r.Key.Scheduler}
		a.rows[k] = row
	}
	row.Runs++
	if r.Cached {
		row.CacheHits++
	}
	if r.Sim != nil {
		row.TotalCycles += r.Sim.Cycles
		if row.BestCycles == 0 || r.Sim.Cycles < row.BestCycles {
			row.BestCycles = r.Sim.Cycles
			row.BestConfig = r.Sim.Config.Name
		}
		// Incremental mean keeps Add O(1).
		row.MeanMemUtil += (r.Sim.MemUtilization - row.MeanMemUtil) / float64(row.Runs)
	}
}

// Rows returns the summaries sorted by workload then scheduler.
func (a *Aggregator) Rows() []SummaryRow {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]SummaryRow, 0, len(a.rows))
	for _, r := range a.rows {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Workload != out[j].Workload {
			return out[i].Workload < out[j].Workload
		}
		return out[i].Scheduler < out[j].Scheduler
	})
	return out
}
