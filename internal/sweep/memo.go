package sweep

import (
	"fmt"
	"sync"

	"cmpsched/internal/dag"
)

// A sweep's job list is typically a grid: the same (workload, parameters,
// machine configuration) triple appears once per scheduler, and rebuilding
// the DAG — regenerating every task's reference stream — dominated the cost
// of the uncached jobs.  The engine therefore memoises DAGs as templates: the
// first job to need a triple builds it once and records it into the engine's
// shared content-addressed trace store (dag.Record), and every job — the
// first included — simulates a fresh instance stamped out of the template
// (dag.Snapshot.Instantiate).  Instances share the immutable reference
// arenas but own their replay cursors, so concurrent simulations never share
// generator state and results are byte-identical to per-job rebuilding at
// any worker count.
//
// Memoisation is keyed by the job Key's Workload, Params and Config fields —
// exactly the inputs BuildFunc is required to be a pure function of.  The
// machine configuration is part of the key because some builders shape the
// DAG to the machine (e.g. cache-size-driven coarsening).

// snapshotEntry is one memoised DAG template.  The sync.Once gives the entry
// single-flight semantics: under the parallel engine, concurrent jobs that
// need the same template block on the first builder instead of building
// redundantly.
type snapshotEntry struct {
	once sync.Once
	snap *dag.Snapshot
	err  error
}

// templateKey is the content address of a job's DAG template.
func templateKey(k Key) string {
	return k.Workload + "\x00" + k.Params + "\x00" + k.Config
}

// instantiate returns a fresh DAG instance for the job, building and
// recording the template on first need.  A build error is memoised too, so
// every job sharing the template reports the same deterministic error.
func (e *Engine) instantiate(j Job) (*dag.DAG, error) {
	key := templateKey(j.Key)
	e.snapMu.Lock()
	ent, ok := e.snapshots[key]
	if !ok {
		ent = &snapshotEntry{}
		e.snapshots[key] = ent
	}
	e.snapMu.Unlock()
	ent.once.Do(func() {
		d, err := j.Build()
		if err != nil {
			ent.err = err
			return
		}
		// Template builds are once-per-key, so the counters are independent
		// of worker count and completion order; shard 0's cell is atomic, so
		// concurrent first-builders of different keys never race.
		e.em.dagBuilds.Add(0, 1)
		ent.snap = dag.Record(d, e.traces)
	})
	if ent.err != nil {
		return nil, fmt.Errorf("build: %w", ent.err)
	}
	if !ok {
		// Not necessarily the builder (another job may have interleaved),
		// but exactly one job observes the map miss per key, which is what
		// makes jobs - builds a deterministic rebuild-avoided count.
		return ent.snap.Instantiate(), nil
	}
	e.em.dagShared.Add(0, 1)
	return ent.snap.Instantiate(), nil
}

// publishTraceStats exposes the shared trace store's interning counters as
// gauges.  Called when a stream finishes; the values are cumulative over the
// engine's lifetime and deterministic for a given job list.
func (e *Engine) publishTraceStats() {
	st := e.traces.Stats()
	e.em.traceUnique.Set(st.Unique)
	e.em.traceInterned.Set(st.Interned)
	e.em.traceArena.Set(st.ArenaBytes)
}
