package sweep

import (
	"reflect"
	"strings"
	"testing"

	"cmpsched/internal/cmpsim"
	"cmpsched/internal/config"
	"cmpsched/internal/obs"
)

// TestEngineMetricsDeterministicAcrossWorkerCounts pins the determinism of
// the sweep engine's published metrics: the folded totals come out identical
// whether the jobs ran serially or on a worker pool, because every job's
// contribution is deterministic and counter folding is order-independent.
func TestEngineMetricsDeterministicAcrossWorkerCounts(t *testing.T) {
	jobs, err := testSpec().Jobs()
	if err != nil {
		t.Fatalf("Jobs: %v", err)
	}
	snapshot := func(workers int) []obs.Sample {
		reg := obs.NewRegistry()
		if _, err := NewEngine(EngineOptions{Workers: workers, Metrics: reg}).Run(jobs); err != nil {
			t.Fatalf("run with %d workers: %v", workers, err)
		}
		return reg.Snapshot()
	}
	serial, parallel := snapshot(1), snapshot(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("metrics differ across worker counts:\nserial   %v\nparallel %v", serial, parallel)
	}
	want := map[string]bool{
		"sweep.jobs": true, "sweep.jobs_cached": true, "sweep.sim_cycles": true,
		"sweep.cache.l1_hits": true, "sweep.cache.l2_misses": true, "sweep.mem_fetches": true,
	}
	var jobsTotal int64
	for _, s := range serial {
		delete(want, s.Name)
		if s.Name == "sweep.jobs" {
			jobsTotal = s.Value
		}
	}
	if len(want) > 0 {
		t.Fatalf("snapshot missing metrics %v (got %v)", want, serial)
	}
	if jobsTotal != int64(len(jobs)) {
		t.Fatalf("sweep.jobs = %d, want %d", jobsTotal, len(jobs))
	}
}

// TestEngineMetricsCountCacheHits checks the cached-job counter against the
// memory cache: the second identical sweep is served entirely from cache.
func TestEngineMetricsCountCacheHits(t *testing.T) {
	jobs, err := testSpec().Jobs()
	if err != nil {
		t.Fatalf("Jobs: %v", err)
	}
	reg := obs.NewRegistry()
	e := NewEngine(EngineOptions{Workers: 1, Cache: NewMemoryCache(), Metrics: reg})
	if _, err := e.Run(jobs); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(jobs); err != nil {
		t.Fatal(err)
	}
	got := map[string]int64{}
	for _, s := range reg.Snapshot() {
		got[s.Name] = s.Value
	}
	if got["sweep.jobs"] != int64(2*len(jobs)) || got["sweep.jobs_cached"] != int64(len(jobs)) {
		t.Fatalf("jobs=%d cached=%d, want %d/%d", got["sweep.jobs"], got["sweep.jobs_cached"], 2*len(jobs), len(jobs))
	}
}

// TestWithOptionsKeyUsesSemanticFingerprint pins that attaching
// instrumentation sinks to a job's options does not move its cache key:
// only the semantic fields are folded in.
func TestWithOptionsKeyUsesSemanticFingerprint(t *testing.T) {
	cfg := config.MustDefault(8).Scaled(config.DefaultScale)
	plain := cmpsim.Options{MaxCycles: 100, RecordTaskStats: true}
	observed := plain
	observed.Tracer = obs.NewTracer()
	observed.Metrics = obs.NewRegistry()

	a := NewJob("mergesort", "{Elements:1024}", "pdf", cfg, nil).WithOptions(plain)
	b := NewJob("mergesort", "{Elements:1024}", "pdf", cfg, nil).WithOptions(observed)
	if a.Key.Hash() != b.Key.Hash() {
		t.Fatalf("instrumentation sinks moved the cache key:\n%s\nvs\n%s", a.Key.Options, b.Key.Options)
	}
	if !strings.Contains(a.Key.Options, "{MaxCycles:100 RecordTaskStats:true ValidateDAG:false}") {
		t.Fatalf("options fingerprint = %q", a.Key.Options)
	}
}
