package sweep

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// csvHeader lists the columns WriteCSV emits, one row per result.
var csvHeader = []string{
	"workload", "scheduler", "config", "cores",
	"cycles", "instructions", "refs",
	"l2_misses", "l2_misses_per_kiloinstr", "mem_utilization",
	"cached", "elapsed_ns",
}

// CSVHeader returns a copy of the CSV column names.
func CSVHeader() []string {
	out := make([]string, len(csvHeader))
	copy(out, csvHeader)
	return out
}

func csvRow(r Result) []string {
	sim := r.Sim
	return []string{
		r.Key.Workload,
		r.Key.Scheduler,
		sim.Config.Name,
		strconv.Itoa(sim.Config.Cores),
		strconv.FormatInt(sim.Cycles, 10),
		strconv.FormatInt(sim.Instructions, 10),
		strconv.FormatInt(sim.Refs, 10),
		strconv.FormatInt(sim.L2.Misses, 10),
		strconv.FormatFloat(sim.L2MissesPerKiloInstr(), 'f', 6, 64),
		strconv.FormatFloat(sim.MemUtilization, 'f', 6, 64),
		strconv.FormatBool(r.Cached),
		strconv.FormatInt(int64(r.Elapsed), 10),
	}
}

// CSVWriter streams results to CSV, writing the header lazily so it also
// works as a RunStream callback sink.
type CSVWriter struct {
	w           *csv.Writer
	wroteHeader bool
}

// NewCSVWriter wraps w.
func NewCSVWriter(w io.Writer) *CSVWriter {
	return &CSVWriter{w: csv.NewWriter(w)}
}

// Write appends one result row (and the header before the first row).
// Empty results — e.g. the unfilled entries of a failed run's partial
// result slice — are skipped rather than dereferenced.
func (c *CSVWriter) Write(r Result) error {
	if !c.wroteHeader {
		if err := c.w.Write(csvHeader); err != nil {
			return err
		}
		c.wroteHeader = true
	}
	if r.Sim == nil {
		return nil
	}
	return c.w.Write(csvRow(r))
}

// Flush flushes the underlying csv writer and reports any write error.
func (c *CSVWriter) Flush() error {
	c.w.Flush()
	return c.w.Error()
}

// WriteCSV writes all results as CSV with a header row.
func WriteCSV(w io.Writer, results []Result) error {
	cw := NewCSVWriter(w)
	for _, r := range results {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	if !cw.wroteHeader {
		if err := cw.w.Write(csvHeader); err != nil {
			return err
		}
	}
	return cw.Flush()
}

// WriteJSON writes the results as an indented JSON array.  The encoding is
// lossless for everything a Result carries, so ReadJSON round-trips it.
func WriteJSON(w io.Writer, results []Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// ReadJSON decodes a WriteJSON stream.
func ReadJSON(r io.Reader) ([]Result, error) {
	var out []Result
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return nil, fmt.Errorf("sweep: decode results: %w", err)
	}
	return out, nil
}
