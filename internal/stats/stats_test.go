package stats

import (
	"math"
	"strings"
	"testing"
)

func TestRatioSpeedupPercent(t *testing.T) {
	if Ratio(6, 3) != 2 || Ratio(1, 0) != 0 {
		t.Fatalf("Ratio wrong")
	}
	if Speedup(100, 50) != 2 || Speedup(100, 0) != 0 {
		t.Fatalf("Speedup wrong")
	}
	if PercentChange(10, 15) != 50 || PercentChange(0, 5) != 0 {
		t.Fatalf("PercentChange wrong")
	}
}

func TestMinMaxNormalize(t *testing.T) {
	xs := []float64{4, 2, 8}
	if Min(xs) != 2 || Max(xs) != 8 {
		t.Fatalf("Min/Max wrong")
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Fatalf("empty Min/Max should be 0")
	}
	norm := Normalize(xs)
	if len(norm) != 3 || norm[1] != 1 || norm[0] != 2 || norm[2] != 4 {
		t.Fatalf("Normalize = %v", norm)
	}
	if Normalize(nil) != nil || Normalize([]float64{0, 1}) != nil {
		t.Fatalf("Normalize edge cases wrong")
	}
}

func TestGeoMean(t *testing.T) {
	got := GeoMean([]float64{1, 4})
	if math.Abs(got-2) > 1e-9 {
		t.Fatalf("GeoMean = %f", got)
	}
	if GeoMean(nil) != 0 || GeoMean([]float64{1, -1}) != 0 {
		t.Fatalf("GeoMean edge cases wrong")
	}
}

func TestTable(t *testing.T) {
	tab := NewTable("name", "value")
	tab.AddRow("alpha", "1")
	tab.AddRowf("beta", 2.5)
	tab.AddRow("gamma") // missing cell
	tab.AddRow("delta", "4", "extra dropped")
	if tab.NumRows() != 4 {
		t.Fatalf("NumRows = %d", tab.NumRows())
	}
	out := tab.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "2.500") {
		t.Fatalf("table output missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // header + separator + 4 rows
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	// All lines aligned: same column start for the second column.
	if !strings.HasPrefix(lines[0], "name ") {
		t.Fatalf("header misaligned: %q", lines[0])
	}
}
