// Package stats provides small numeric and text-table helpers used by the
// experiment harness to report results in the shape of the paper's tables
// and figures.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Ratio returns a/b, or 0 when b is zero.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Speedup returns base/measured (how many times faster measured is than
// base), or 0 when measured is zero.
func Speedup(base, measured int64) float64 {
	if measured == 0 {
		return 0
	}
	return float64(base) / float64(measured)
}

// PercentChange returns (to-from)/from*100, or 0 when from is zero.
func PercentChange(from, to float64) float64 {
	if from == 0 {
		return 0
	}
	return (to - from) / from * 100
}

// Min returns the minimum of a non-empty slice (0 for an empty one).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of a non-empty slice (0 for an empty one).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Normalize divides every element by the slice minimum, the normalisation
// used by Figure 8 ("execution time normalized to best"). A nil slice or a
// zero minimum yields nil.
func Normalize(xs []float64) []float64 {
	m := Min(xs)
	if m == 0 || len(xs) == 0 {
		return nil
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x / m
	}
	return out
}

// GeoMean returns the geometric mean of positive values (0 if any value is
// non-positive or the slice is empty).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sumLog := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sumLog += math.Log(x)
	}
	return math.Exp(sumLog / float64(len(xs)))
}

// Table accumulates rows of strings and renders them with aligned columns,
// which is how cmd/experiments prints the regenerated tables and figure
// series.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells beyond the header width are dropped, missing
// cells are left blank.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf formats each cell with fmt.Sprint.
func (t *Table) AddRowf(cells ...interface{}) {
	out := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			out[i] = fmt.Sprintf("%.3f", v)
		default:
			out[i] = fmt.Sprint(c)
		}
	}
	t.AddRow(out...)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
