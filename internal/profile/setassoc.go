package profile

import (
	"fmt"

	"cmpsched/internal/cache"
	"cmpsched/internal/dag"
	"cmpsched/internal/taskgroup"
)

// SetAssoc is the straightforward multi-pass profiler the paper compares
// LruTree against: to obtain the working set of a task group it replays the
// group's memory-reference trace through trace-driven simulations of
// set-associative caches, one per cache size of interest, starting from a
// cold cache.  Because nested task groups must each be measured from a cold
// start, the trace of the whole application is effectively re-processed once
// per level of the group hierarchy, which is what makes SetAssoc an order of
// magnitude slower than the one-pass LruTree on deep trees (§6.1: 253
// minutes vs 13.4 minutes, an 18X gap, on the paper's Mergesort trace).
type SetAssoc struct {
	cfg Config
	// Assoc is the associativity of the simulated caches (default 16).
	Assoc int
}

// NewSetAssoc returns a multi-pass profiler.
func NewSetAssoc(cfg Config, assoc int) *SetAssoc {
	if assoc <= 0 {
		assoc = 16
	}
	return &SetAssoc{cfg: cfg.withDefaults(), Assoc: assoc}
}

// Config returns the profiling configuration.
func (s *SetAssoc) Config() Config { return s.cfg }

// Group measures the task range [first, last] by simulation. The DAG's
// generators are reset before and after.
func (s *SetAssoc) Group(d *dag.DAG, first, last dag.TaskID) (GroupStats, error) {
	if err := s.cfg.Validate(); err != nil {
		return GroupStats{}, err
	}
	g := GroupStats{First: first, Last: last, Hits: make([]int64, len(s.cfg.CacheSizes))}
	caches := make([]*cache.Cache, len(s.cfg.CacheSizes))
	for i, size := range s.cfg.CacheSizes {
		// Clamp the associativity so a cache is never smaller than one
		// set; requesting a very large associativity therefore yields a
		// fully-associative simulation.
		assoc := s.Assoc
		if maxAssoc := int(size / s.cfg.LineBytes); assoc > maxAssoc {
			assoc = maxAssoc
		}
		c, err := cache.New(cache.Config{SizeBytes: size, LineBytes: s.cfg.LineBytes, Assoc: assoc})
		if err != nil {
			return GroupStats{}, fmt.Errorf("profile: setassoc: %w", err)
		}
		caches[i] = c
	}
	distinct := make(map[uint64]struct{})
	for id := first; id <= last && int(id) < d.NumTasks(); id++ {
		task := d.Task(id)
		if task == nil || task.Refs == nil {
			continue
		}
		task.Refs.Reset()
		for {
			r, ok := task.Refs.Next()
			if !ok {
				break
			}
			g.Refs++
			distinct[r.Addr/uint64(s.cfg.LineBytes)] = struct{}{}
			for i, c := range caches {
				if res := c.Access(r.Addr, r.Write); res.Hit {
					g.Hits[i]++
				}
			}
		}
		task.Refs.Reset()
	}
	g.DistinctLines = int64(len(distinct))
	g.WorkingSetBytes = g.DistinctLines * s.cfg.LineBytes
	return g, nil
}

// GroupOf measures a task-group-tree node.
func (s *SetAssoc) GroupOf(d *dag.DAG, n *taskgroup.Node) (GroupStats, error) {
	if n == nil || n.Last < n.First {
		return GroupStats{Hits: make([]int64, len(s.cfg.CacheSizes))}, nil
	}
	return s.Group(d, n.First, n.Last)
}

// AnnotateTree measures every node of the tree, indexed by node ID.  This is
// the multi-pass computation whose cost the LruTree algorithm avoids.
func (s *SetAssoc) AnnotateTree(d *dag.DAG, tree *taskgroup.Tree) ([]GroupStats, error) {
	out := make([]GroupStats, len(tree.Nodes))
	for _, n := range tree.Nodes {
		g, err := s.GroupOf(d, n)
		if err != nil {
			return nil, err
		}
		out[n.ID] = g
	}
	return out, nil
}
