// Package profile implements the working-set profilers of §6.1: the one-pass
// LruTree algorithm and the multi-pass SetAssoc baseline it is compared
// against.
//
// Both profilers consume the sequential trace of a computation DAG (tasks
// replayed in sequential order) and answer the question the automatic
// task-coarsening pass needs answered: for any *group of consecutive tasks*
// and any cache size, how many references hit, and how large is the group's
// working set?
//
// LruTree performs a single pass over the trace.  An LRU stack is maintained
// implicitly: every cache line records the time and task of its previous
// visit, and a Fenwick (binary-indexed) tree over time slots counts, in
// O(log n), how many distinct lines were touched since that visit — the LRU
// stack distance.  (The paper builds a B-tree over a doubly-linked stack for
// the same order-statistics query; the Fenwick tree is this repository's
// equivalent index.)  Each reference is then binned into a per-task
// two-dimensional histogram over (distance bucket, task-ID delta), from
// which the hit count of any consecutive task group [b, e] under any cache
// size is obtained by summing buckets with distance ≤ cache size and task
// delta ≤ i−b — exactly the computation described in §6.1.
package profile

import (
	"fmt"
	"sort"

	"cmpsched/internal/dag"
	"cmpsched/internal/taskgroup"
)

// Config controls a profiling pass.
type Config struct {
	// LineBytes is the cache-line size used for the stack model.
	LineBytes int64
	// CacheSizes is the ascending list of cache sizes (bytes) for which
	// hit counts are computed (the distance-dimension buckets D1 < D2 <
	// ... < Dk of the histogram).
	CacheSizes []int64
}

// DefaultCacheSizes returns a geometric ladder of cache sizes from 32 KB to
// 4 MB, a convenient default for scaled configurations.
func DefaultCacheSizes() []int64 {
	sizes := []int64{}
	for s := int64(32 << 10); s <= 4<<20; s *= 2 {
		sizes = append(sizes, s)
	}
	return sizes
}

func (c Config) withDefaults() Config {
	if c.LineBytes == 0 {
		c.LineBytes = 128
	}
	if len(c.CacheSizes) == 0 {
		c.CacheSizes = DefaultCacheSizes()
	}
	sort.Slice(c.CacheSizes, func(i, j int) bool { return c.CacheSizes[i] < c.CacheSizes[j] })
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.LineBytes <= 0 {
		return fmt.Errorf("profile: LineBytes must be positive")
	}
	if len(c.CacheSizes) == 0 {
		return fmt.Errorf("profile: at least one cache size required")
	}
	for i, s := range c.CacheSizes {
		if s < c.LineBytes {
			return fmt.Errorf("profile: cache size %d smaller than a line", s)
		}
		if i > 0 && s <= c.CacheSizes[i-1] {
			return fmt.Errorf("profile: cache sizes must be strictly ascending")
		}
	}
	return nil
}

// histEntry is one cell of a task's two-dimensional histogram.
type histEntry struct {
	// bucket is the distance bucket: index into CacheSizes for the
	// smallest cache size that would hold the reuse, or len(CacheSizes)
	// when the reuse distance exceeds every profiled cache size.
	bucket int32
	// delta is the difference between the referencing task's ID and the
	// ID of the task that previously visited the line.
	delta int32
	count int64
}

// Profile is the result of an LruTree profiling pass: the per-task
// two-dimensional histograms plus per-task reference counts, from which
// group working sets are computed without revisiting the trace.
type Profile struct {
	cfg      Config
	numTasks int
	// refs[i] is the number of references issued by task i.
	refs []int64
	// hist[i] holds task i's (bucket, delta) histogram, sorted by
	// (bucket, delta).
	hist [][]histEntry
	// totalRefs is the trace length.
	totalRefs int64
}

// Config returns the profiling configuration.
func (p *Profile) Config() Config { return p.cfg }

// NumTasks returns the number of tasks profiled.
func (p *Profile) NumTasks() int { return p.numTasks }

// TotalRefs returns the number of references in the profiled trace.
func (p *Profile) TotalRefs() int64 { return p.totalRefs }

// TaskRefs returns the number of references issued by one task.
func (p *Profile) TaskRefs(id dag.TaskID) int64 {
	if int(id) >= len(p.refs) || id < 0 {
		return 0
	}
	return p.refs[id]
}

// GroupStats summarises one task group's cache behaviour.
type GroupStats struct {
	// First and Last delimit the group's consecutive task range.
	First, Last dag.TaskID
	// Refs is the number of references issued by the group.
	Refs int64
	// DistinctLines is the number of distinct cache lines the group
	// touches (its working set, in lines).
	DistinctLines int64
	// WorkingSetBytes is DistinctLines times the line size.
	WorkingSetBytes int64
	// Hits[i] is the number of references that hit in an LRU cache of
	// Config.CacheSizes[i] bytes, starting cold at the group's beginning.
	Hits []int64
}

// Misses returns the miss count for the i-th profiled cache size.
func (g GroupStats) Misses(i int) int64 {
	if i < 0 || i >= len(g.Hits) {
		return g.Refs
	}
	return g.Refs - g.Hits[i]
}

// Group computes the statistics of the consecutive task range [first, last].
//
// For a cache of size Dp, a reference from task i hits if its previous visit
// was at stack distance ≤ Dp and was made by a task j with i-j ≤ i-first
// (i.e. the previous visit happened inside the group); otherwise it is a
// (cold or capacity) miss.
func (p *Profile) Group(first, last dag.TaskID) GroupStats {
	if first < 0 {
		first = 0
	}
	if int(last) >= p.numTasks {
		last = dag.TaskID(p.numTasks - 1)
	}
	g := GroupStats{First: first, Last: last, Hits: make([]int64, len(p.cfg.CacheSizes))}
	if last < first {
		return g
	}
	var reusesWithinGroup int64
	for i := first; i <= last; i++ {
		g.Refs += p.refs[i]
		maxDelta := int32(i - first)
		for _, e := range p.hist[i] {
			if e.delta > maxDelta {
				continue
			}
			reusesWithinGroup += e.count
			if int(e.bucket) < len(g.Hits) {
				// A reuse at bucket b hits in every cache size >= that
				// bucket's size.
				for s := int(e.bucket); s < len(g.Hits); s++ {
					g.Hits[s] += e.count
				}
			}
		}
	}
	g.DistinctLines = g.Refs - reusesWithinGroup
	g.WorkingSetBytes = g.DistinctLines * p.cfg.LineBytes
	return g
}

// GroupOf computes the statistics for a task-group-tree node.
func (p *Profile) GroupOf(n *taskgroup.Node) GroupStats {
	if n == nil || n.Last < n.First {
		return GroupStats{Hits: make([]int64, len(p.cfg.CacheSizes))}
	}
	return p.Group(n.First, n.Last)
}

// AnnotateTree computes statistics for every node of the tree, indexed by
// node ID.
func (p *Profile) AnnotateTree(tree *taskgroup.Tree) []GroupStats {
	out := make([]GroupStats, len(tree.Nodes))
	for _, n := range tree.Nodes {
		out[n.ID] = p.GroupOf(n)
	}
	return out
}

// lineState records a line's previous visit.
type lineState struct {
	lastTime int32
	lastTask int32
}

// LruTree is the one-pass working-set profiler.
type LruTree struct {
	cfg Config
}

// NewLruTree returns a one-pass profiler with the given configuration.
func NewLruTree(cfg Config) *LruTree { return &LruTree{cfg: cfg.withDefaults()} }

// ProfileDAG replays the DAG's tasks in sequential order and builds the
// per-task histograms.  The DAG's reference generators are reset before and
// after the pass.
func (l *LruTree) ProfileDAG(d *dag.DAG) (*Profile, error) {
	if err := l.cfg.Validate(); err != nil {
		return nil, err
	}
	n := d.NumTasks()
	if n == 0 {
		return nil, fmt.Errorf("profile: empty DAG")
	}
	totalRefs := d.TotalRefs()
	if totalRefs > 1<<31-2 {
		return nil, fmt.Errorf("profile: trace too long (%d references)", totalRefs)
	}
	pr := &Profile{
		cfg:       l.cfg,
		numTasks:  n,
		refs:      make([]int64, n),
		hist:      make([][]histEntry, n),
		totalRefs: 0,
	}
	// Distance thresholds in lines for each cache size.
	thresholds := make([]int64, len(l.cfg.CacheSizes))
	for i, s := range l.cfg.CacheSizes {
		thresholds[i] = s / l.cfg.LineBytes
	}
	bucketFor := func(dist int64) int32 {
		for i, t := range thresholds {
			if dist < t {
				return int32(i)
			}
		}
		return int32(len(thresholds))
	}

	bit := newFenwick(int(totalRefs) + 1)
	lines := make(map[uint64]lineState, 1<<16)
	d.ResetRefs()
	// Scratch map for accumulating one task's histogram before freezing
	// it into a sorted slice.
	scratch := make(map[uint64]int64)

	var now int32
	for _, task := range d.Tasks() {
		if task.Refs == nil {
			continue
		}
		clear(scratch)
		var taskRefs int64
		for {
			r, ok := task.Refs.Next()
			if !ok {
				break
			}
			taskRefs++
			now++
			line := r.Addr / uint64(l.cfg.LineBytes)
			if st, seen := lines[line]; seen {
				dist := bit.rangeSum(int(st.lastTime)+1, int(now)-1)
				bucket := bucketFor(dist)
				delta := int32(task.ID) - st.lastTask
				scratch[uint64(bucket)<<32|uint64(uint32(delta))]++
				bit.add(int(st.lastTime), -1)
			}
			bit.add(int(now), 1)
			lines[line] = lineState{lastTime: now, lastTask: int32(task.ID)}
		}
		pr.refs[task.ID] = taskRefs
		pr.totalRefs += taskRefs
		if len(scratch) > 0 {
			entries := make([]histEntry, 0, len(scratch))
			for k, v := range scratch {
				entries = append(entries, histEntry{
					bucket: int32(k >> 32),
					delta:  int32(uint32(k)),
					count:  v,
				})
			}
			sort.Slice(entries, func(i, j int) bool {
				if entries[i].bucket != entries[j].bucket {
					return entries[i].bucket < entries[j].bucket
				}
				return entries[i].delta < entries[j].delta
			})
			pr.hist[task.ID] = entries
		}
	}
	d.ResetRefs()
	return pr, nil
}
