package profile

import (
	"testing"

	"cmpsched/internal/dag"
	"cmpsched/internal/refs"
)

// Boundary and adversarial streams for the set-associative baseline profiler
// and the Fenwick index: empty traces, single-line traces, and
// power-of-two-strided traces that alias into one cache set — the case where
// a set-associative simulation legitimately diverges from the LRU-stack
// model.

// pointsDAG builds a one-task DAG replaying the given addresses as reads.
func pointsDAG(name string, addrs []uint64) *dag.DAG {
	d := dag.New(name)
	rs := make([]refs.Ref, len(addrs))
	for i, a := range addrs {
		rs[i] = refs.Ref{Addr: a, Instrs: 1}
	}
	d.AddTask(name, refs.NewPoints(rs, 0))
	return d
}

func TestSetAssocEmptyStream(t *testing.T) {
	cfg := Config{LineBytes: 64, CacheSizes: []int64{128, 512}}
	d := dag.New("empty")
	d.AddTask("no-refs", refs.Empty{})
	d.AddComputeTask("compute-only", 100)

	sa := NewSetAssoc(cfg, 4)
	g, err := sa.Group(d, 0, 1)
	if err != nil {
		t.Fatalf("Group: %v", err)
	}
	if g.Refs != 0 || g.DistinctLines != 0 || g.WorkingSetBytes != 0 {
		t.Fatalf("empty stream stats = %+v", g)
	}
	for i, h := range g.Hits {
		if h != 0 {
			t.Fatalf("empty stream hits[%d] = %d", i, h)
		}
	}
	// The one-pass profiler agrees on the empty group.
	pr, err := NewLruTree(cfg).ProfileDAG(d)
	if err != nil {
		t.Fatalf("ProfileDAG: %v", err)
	}
	if lg := pr.Group(0, 1); lg.Refs != 0 || lg.DistinctLines != 0 {
		t.Fatalf("lrutree empty stats = %+v", lg)
	}
}

func TestSetAssocSingleLineStream(t *testing.T) {
	cfg := Config{LineBytes: 64, CacheSizes: []int64{64, 1024}}
	// 16 touches of one line, at varying offsets within the line.
	addrs := make([]uint64, 16)
	for i := range addrs {
		addrs[i] = 0x1000 + uint64(i%4)
	}
	d := pointsDAG("one-line", addrs)
	g, err := NewSetAssoc(cfg, 4).Group(d, 0, 0)
	if err != nil {
		t.Fatalf("Group: %v", err)
	}
	if g.Refs != 16 || g.DistinctLines != 1 || g.WorkingSetBytes != 64 {
		t.Fatalf("single-line stats = %+v", g)
	}
	// Everything after the cold miss hits, even in a one-line cache.
	for i, h := range g.Hits {
		if h != 15 {
			t.Fatalf("hits[%d] = %d, want 15", i, h)
		}
	}
}

// TestSetAssocPowerOfTwoAliasing drives a stream whose stride aliases every
// line into set 0 of a 2-way cache: the set-associative simulation thrashes
// (zero hits) while the fully-associative LRU-stack model holds the whole
// working set.  This is exactly the divergence the paper accepts when it
// approximates caches by LRU stacks (§6.1).
func TestSetAssocPowerOfTwoAliasing(t *testing.T) {
	// One cache size: 512 B, 64 B lines -> 8 lines; assoc 2 -> 4 sets.
	// Stride 4*64 = 256 B maps every address to set 0.
	cfg := Config{LineBytes: 64, CacheSizes: []int64{512}}
	const stride = 256
	var addrs []uint64
	for pass := 0; pass < 4; pass++ {
		for line := uint64(0); line < 4; line++ {
			addrs = append(addrs, line*stride)
		}
	}
	d := pointsDAG("alias", addrs)

	g, err := NewSetAssoc(cfg, 2).Group(d, 0, 0)
	if err != nil {
		t.Fatalf("Group: %v", err)
	}
	if g.Refs != 16 || g.DistinctLines != 4 {
		t.Fatalf("alias stats = %+v", g)
	}
	// 4 lines cycling through one 2-way set: LRU evicts every reuse.
	if g.Hits[0] != 0 {
		t.Fatalf("aliased 2-way hits = %d, want 0", g.Hits[0])
	}

	// Fully associative (huge requested associativity is clamped to
	// size/line): the 4-line working set fits the 8-line cache, so every
	// non-cold reference hits.
	fa, err := NewSetAssoc(cfg, 1<<20).Group(d, 0, 0)
	if err != nil {
		t.Fatalf("Group: %v", err)
	}
	if fa.Hits[0] != 12 {
		t.Fatalf("fully-assoc hits = %d, want 12", fa.Hits[0])
	}
	// The LRU-stack profiler matches the fully-associative simulation, not
	// the aliased one.
	pr, err := NewLruTree(cfg).ProfileDAG(d)
	if err != nil {
		t.Fatalf("ProfileDAG: %v", err)
	}
	if lg := pr.Group(0, 0); lg.Hits[0] != 12 {
		t.Fatalf("lrutree hits = %d, want 12", lg.Hits[0])
	}
}

func TestFenwickBoundaries(t *testing.T) {
	// A zero-slot tree accepts no positions and sums to zero everywhere.
	empty := newFenwick(0)
	empty.add(1, 5) // out of range: must be a no-op, not a panic
	if empty.prefix(0) != 0 || empty.prefix(10) != 0 {
		t.Fatalf("zero-size fenwick not empty")
	}
	if empty.rangeSum(1, 10) != 0 {
		t.Fatalf("zero-size rangeSum != 0")
	}

	f := newFenwick(8)
	f.add(1, 3) // first slot
	f.add(8, 4) // last slot
	if f.prefix(0) != 0 {
		t.Fatalf("prefix(0) = %d", f.prefix(0))
	}
	if f.prefix(1) != 3 || f.prefix(7) != 3 || f.prefix(8) != 7 {
		t.Fatalf("prefix sums wrong: %d %d %d", f.prefix(1), f.prefix(7), f.prefix(8))
	}
	// Inverted and degenerate ranges are empty.
	if f.rangeSum(5, 4) != 0 || f.rangeSum(8, 1) != 0 {
		t.Fatalf("inverted rangeSum != 0")
	}
	// Single-slot ranges at both boundaries.
	if f.rangeSum(1, 1) != 3 || f.rangeSum(8, 8) != 4 {
		t.Fatalf("boundary rangeSum wrong")
	}
	// Out-of-range additions are ignored.
	f.add(9, 100)
	f.add(0, 100) // position 0 is below the 1-based range
	if f.prefix(100) != 7 {
		t.Fatalf("out-of-range add leaked: %d", f.prefix(100))
	}
}

func TestSetAssocGroupRangeBeyondDAGClamps(t *testing.T) {
	cfg := Config{LineBytes: 64, CacheSizes: []int64{512}}
	d := pointsDAG("short", []uint64{0, 64, 128})
	g, err := NewSetAssoc(cfg, 4).Group(d, 0, 100)
	if err != nil {
		t.Fatalf("Group: %v", err)
	}
	if g.Refs != 3 || g.DistinctLines != 3 {
		t.Fatalf("clamped stats = %+v", g)
	}
}
