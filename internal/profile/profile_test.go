package profile

import (
	"testing"
	"testing/quick"

	"cmpsched/internal/dag"
	"cmpsched/internal/refs"
	"cmpsched/internal/workload"
)

func TestFenwick(t *testing.T) {
	f := newFenwick(16)
	f.add(3, 1)
	f.add(7, 1)
	f.add(12, 1)
	if f.prefix(2) != 0 || f.prefix(3) != 1 || f.prefix(16) != 3 {
		t.Fatalf("prefix sums wrong")
	}
	if f.rangeSum(4, 12) != 2 || f.rangeSum(8, 6) != 0 {
		t.Fatalf("rangeSum wrong")
	}
	f.add(7, -1)
	if f.prefix(16) != 2 {
		t.Fatalf("remove failed")
	}
	// Out-of-range prefix clamps.
	if f.prefix(100) != 2 {
		t.Fatalf("prefix clamp failed")
	}
}

func TestFenwickPropertyMatchesNaive(t *testing.T) {
	f := func(ops []uint8) bool {
		const n = 64
		fw := newFenwick(n)
		naive := make([]int32, n+1)
		for _, op := range ops {
			pos := int(op%n) + 1
			if op%2 == 0 {
				fw.add(pos, 1)
				naive[pos]++
			} else if naive[pos] > 0 {
				fw.add(pos, -1)
				naive[pos]--
			}
		}
		var sum int64
		for i := 1; i <= n; i++ {
			sum += int64(naive[i])
			if fw.prefix(i) != sum {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{LineBytes: -1, CacheSizes: []int64{1024}}).Validate(); err == nil {
		t.Fatalf("negative line accepted")
	}
	if err := (Config{LineBytes: 64}).Validate(); err == nil {
		t.Fatalf("empty cache sizes accepted")
	}
	if err := (Config{LineBytes: 64, CacheSizes: []int64{32}}).Validate(); err == nil {
		t.Fatalf("cache smaller than line accepted")
	}
	if err := (Config{LineBytes: 64, CacheSizes: []int64{1024, 1024}}).Validate(); err == nil {
		t.Fatalf("non-ascending sizes accepted")
	}
	c := Config{}.withDefaults()
	if err := c.Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
	if len(DefaultCacheSizes()) == 0 {
		t.Fatalf("no default cache sizes")
	}
}

// handDAG builds a 3-task DAG with a precisely known reference pattern.
//
//	task 0: A B C      (all cold)
//	task 1: A D        (A reused at distance 3: B, C, D... actually B, C)
//	task 2: B A        (B at distance 2 {D, A}; A at distance 1 {B})
func handDAG() *dag.DAG {
	mk := func(addrs ...uint64) refs.Gen {
		rs := make([]refs.Ref, len(addrs))
		for i, a := range addrs {
			rs[i] = refs.Ref{Addr: a * 64, Instrs: 1}
		}
		return refs.NewPoints(rs, 0)
	}
	d := dag.New("hand")
	d.AddTask("t0", mk(0, 1, 2)) // A B C
	d.AddTask("t1", mk(0, 3))    // A D
	d.AddTask("t2", mk(1, 0))    // B A
	d.MustEdge(0, 1)
	d.MustEdge(1, 2)
	return d
}

func TestLruTreeHandTrace(t *testing.T) {
	// Cache sizes: 2 lines (128 B) and 8 lines (512 B).
	cfg := Config{LineBytes: 64, CacheSizes: []int64{128, 512}}
	pr, err := NewLruTree(cfg).ProfileDAG(handDAG())
	if err != nil {
		t.Fatalf("ProfileDAG: %v", err)
	}
	if pr.TotalRefs() != 7 || pr.NumTasks() != 3 {
		t.Fatalf("profile totals wrong: %d refs", pr.TotalRefs())
	}
	if pr.TaskRefs(0) != 3 || pr.TaskRefs(1) != 2 || pr.TaskRefs(2) != 2 {
		t.Fatalf("per-task refs wrong")
	}

	// Whole program, 8-line cache: everything except the 4 cold misses hits.
	whole := pr.Group(0, 2)
	if whole.Refs != 7 {
		t.Fatalf("whole refs = %d", whole.Refs)
	}
	if whole.DistinctLines != 4 || whole.WorkingSetBytes != 4*64 {
		t.Fatalf("whole working set = %d lines", whole.DistinctLines)
	}
	if whole.Hits[1] != 3 {
		t.Fatalf("whole hits (large cache) = %d, want 3", whole.Hits[1])
	}
	// 2-line cache: A reused in task1 at stack distance 2 (B, C) -> miss;
	// B reused in task2 at distance 3 (C, A, D) -> miss;
	// A reused in task2 at distance 2 (D, B) -> miss.
	if whole.Hits[0] != 0 {
		t.Fatalf("whole hits (2-line cache) = %d, want 0", whole.Hits[0])
	}
	if whole.Misses(0) != 7 || whole.Misses(1) != 4 {
		t.Fatalf("misses = %d / %d", whole.Misses(0), whole.Misses(1))
	}

	// Group = tasks 1..2 only: A's reuse in task 1 came from task 0
	// (outside the group) so it is a first touch within the group.
	sub := pr.Group(1, 2)
	if sub.Refs != 4 {
		t.Fatalf("sub refs = %d", sub.Refs)
	}
	// Distinct within group: A, D, B (A touched twice) = 3.
	if sub.DistinctLines != 3 {
		t.Fatalf("sub distinct = %d, want 3", sub.DistinctLines)
	}
	// Only A's reuse in task 2 has its previous visit inside the group
	// (task 1's A): stack distance 2 (D, B), so it misses the 2-line
	// cache and hits the 8-line cache. B's previous visit is task 0,
	// outside the group, so it is a first touch here.
	if sub.Hits[0] != 0 || sub.Hits[1] != 1 {
		t.Fatalf("sub hits = %v, want [0 1]", sub.Hits)
	}

	// Single-task group: task 1 alone touches 2 distinct lines, no reuse.
	one := pr.Group(1, 1)
	if one.DistinctLines != 2 || one.Hits[1] != 0 {
		t.Fatalf("single-task group stats wrong: %+v", one)
	}

	// Out-of-range queries clamp.
	clamped := pr.Group(-5, 100)
	if clamped.Refs != 7 {
		t.Fatalf("clamped group refs = %d", clamped.Refs)
	}
	if empty := pr.Group(2, 1); empty.Refs != 0 {
		t.Fatalf("empty range should have no refs")
	}
}

func TestSetAssocHandTrace(t *testing.T) {
	cfg := Config{LineBytes: 64, CacheSizes: []int64{128, 512}}
	sa := NewSetAssoc(cfg, 1024) // effectively fully associative
	d := handDAG()
	whole, err := sa.Group(d, 0, 2)
	if err != nil {
		t.Fatalf("Group: %v", err)
	}
	if whole.Refs != 7 || whole.DistinctLines != 4 {
		t.Fatalf("setassoc whole = %+v", whole)
	}
	if whole.Hits[0] != 0 || whole.Hits[1] != 3 {
		t.Fatalf("setassoc hits = %v", whole.Hits)
	}
	sub, err := sa.Group(d, 1, 2)
	if err != nil {
		t.Fatalf("Group: %v", err)
	}
	if sub.Hits[1] != 1 || sub.DistinctLines != 3 {
		t.Fatalf("setassoc sub = %+v", sub)
	}
}

// The central §6.1 cross-check: on a real benchmark's task-group tree, the
// one-pass LruTree profiler computes the same hit counts and working sets as
// the multi-pass fully-associative cache simulation, for every group and
// every cache size.
func TestLruTreeMatchesSetAssocOnMergesort(t *testing.T) {
	ms := workload.NewMergesort(workload.MergesortConfig{Elements: 1 << 12, TaskWorkingSetBytes: 2 << 10})
	d, tree, err := ms.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{LineBytes: 128, CacheSizes: []int64{4 << 10, 16 << 10, 64 << 10}}
	pr, err := NewLruTree(cfg).ProfileDAG(d)
	if err != nil {
		t.Fatal(err)
	}
	lru := pr.AnnotateTree(tree)
	// Associativity chosen so every simulated cache is fully associative
	// (one set), making the stack-distance model exact.
	sa, err := NewSetAssoc(cfg, 1<<20).AnnotateTree(d, tree)
	if err != nil {
		t.Fatal(err)
	}
	if len(lru) != len(sa) || len(lru) == 0 {
		t.Fatalf("annotation lengths differ: %d vs %d", len(lru), len(sa))
	}
	for id := range lru {
		if lru[id].Refs != sa[id].Refs {
			t.Fatalf("group %d refs differ: %d vs %d", id, lru[id].Refs, sa[id].Refs)
		}
		if lru[id].DistinctLines != sa[id].DistinctLines {
			t.Fatalf("group %d working set differs: %d vs %d lines", id, lru[id].DistinctLines, sa[id].DistinctLines)
		}
		for s := range cfg.CacheSizes {
			if lru[id].Hits[s] != sa[id].Hits[s] {
				t.Fatalf("group %d cache %d hits differ: LruTree %d vs SetAssoc %d",
					id, cfg.CacheSizes[s], lru[id].Hits[s], sa[id].Hits[s])
			}
		}
	}
}

func TestWorkingSetsAreMonotoneUpTheTree(t *testing.T) {
	ms := workload.NewMergesort(workload.MergesortConfig{Elements: 1 << 13, TaskWorkingSetBytes: 4 << 10})
	d, tree, err := ms.Build()
	if err != nil {
		t.Fatal(err)
	}
	pr, err := NewLruTree(Config{LineBytes: 128, CacheSizes: []int64{16 << 10}}).ProfileDAG(d)
	if err != nil {
		t.Fatal(err)
	}
	stats := pr.AnnotateTree(tree)
	for _, n := range tree.Nodes {
		for _, c := range n.Children {
			if stats[c.ID].WorkingSetBytes > stats[n.ID].WorkingSetBytes {
				t.Fatalf("child group %q working set (%d) exceeds parent %q (%d)",
					c.Name, stats[c.ID].WorkingSetBytes, n.Name, stats[n.ID].WorkingSetBytes)
			}
			if stats[c.ID].Refs > stats[n.ID].Refs {
				t.Fatalf("child refs exceed parent refs")
			}
		}
	}
	// The root's working set must be about twice the sorted array (the
	// two buffers), in lines.
	total := int64(2 * (1 << 13) * 4)
	root := stats[tree.Root.ID]
	if root.WorkingSetBytes < total || root.WorkingSetBytes > total+total/4 {
		t.Fatalf("root working set %d not near %d", root.WorkingSetBytes, total)
	}
}

func TestMergesortTaskGroupWorkingSetsMatch2NRule(t *testing.T) {
	// The paper's footnote: sorting a sub-array of size n uses 2n bytes.
	ms := workload.NewMergesort(workload.MergesortConfig{Elements: 1 << 12, TaskWorkingSetBytes: 2 << 10})
	d, tree, err := ms.Build()
	if err != nil {
		t.Fatal(err)
	}
	pr, err := NewLruTree(Config{LineBytes: 128, CacheSizes: []int64{64 << 10}}).ProfileDAG(d)
	if err != nil {
		t.Fatal(err)
	}
	stats := pr.AnnotateTree(tree)
	checked := 0
	for _, n := range tree.Nodes {
		if n.Site != "mergesort.go:sort" || n.Param == 0 {
			continue
		}
		ws := float64(stats[n.ID].WorkingSetBytes)
		if ws < 0.8*n.Param || ws > 1.3*n.Param {
			t.Fatalf("group %q measured working set %f not close to declared 2n=%f", n.Name, ws, n.Param)
		}
		checked++
	}
	if checked < 3 {
		t.Fatalf("too few sort groups checked: %d", checked)
	}
}

func TestProfileErrors(t *testing.T) {
	if _, err := NewLruTree(Config{LineBytes: -1, CacheSizes: []int64{1024}}).ProfileDAG(handDAG()); err == nil {
		t.Fatalf("invalid config accepted")
	}
	if _, err := NewLruTree(Config{}).ProfileDAG(dag.New("empty")); err == nil {
		t.Fatalf("empty DAG accepted")
	}
	if _, err := NewSetAssoc(Config{LineBytes: -1, CacheSizes: []int64{128}}, 4).Group(handDAG(), 0, 1); err == nil {
		t.Fatalf("setassoc invalid config accepted")
	}
}

func TestGroupOfNilAndEmptyNodes(t *testing.T) {
	cfg := Config{LineBytes: 64, CacheSizes: []int64{1024}}
	pr, err := NewLruTree(cfg).ProfileDAG(handDAG())
	if err != nil {
		t.Fatal(err)
	}
	if got := pr.GroupOf(nil); got.Refs != 0 {
		t.Fatalf("nil node should have empty stats")
	}
	sa := NewSetAssoc(cfg, 8)
	if got, err := sa.GroupOf(handDAG(), nil); err != nil || got.Refs != 0 {
		t.Fatalf("nil node should have empty stats, err=%v", err)
	}
}
