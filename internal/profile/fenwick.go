package profile

// fenwick is a binary indexed tree over time slots used by the LruTree
// profiler to count, in O(log n), how many cache lines were last accessed
// within a given time window.  Each live line owns exactly one set slot (its
// most recent access time), so the number of set slots in (t0, t) is exactly
// the LRU stack distance of a line last touched at t0 and re-touched at t.
type fenwick struct {
	tree []int32
}

func newFenwick(n int) *fenwick {
	return &fenwick{tree: make([]int32, n+1)}
}

// add adds delta at position i (1-based). Out-of-range positions are
// ignored; a non-positive i would otherwise loop forever (i & -i == 0).
func (f *fenwick) add(i int, delta int32) {
	if i <= 0 {
		return
	}
	for ; i < len(f.tree); i += i & (-i) {
		f.tree[i] += delta
	}
}

// prefix returns the sum of positions 1..i.
func (f *fenwick) prefix(i int) int64 {
	var s int64
	if i >= len(f.tree) {
		i = len(f.tree) - 1
	}
	for ; i > 0; i -= i & (-i) {
		s += int64(f.tree[i])
	}
	return s
}

// rangeSum returns the sum of positions lo..hi inclusive (1-based).
func (f *fenwick) rangeSum(lo, hi int) int64 {
	if hi < lo {
		return 0
	}
	return f.prefix(hi) - f.prefix(lo-1)
}
