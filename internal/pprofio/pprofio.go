// Package pprofio wires the standard -cpuprofile / -memprofile flags into
// the repository's commands, so simulator hot-path work is measurable with
// `go tool pprof` without editing code.  The flags follow the conventions of
// `go test`: the CPU profile covers the span between Start and the returned
// stop function, and the heap profile is written after a forced GC so it
// reflects live objects rather than garbage.
package pprofio

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start wires both flags at once: it begins the CPU profile (when cpuPath
// is non-empty) and returns an idempotent flush that stops it and writes
// the heap profile (when memPath is non-empty).  Commands call flush from
// both a defer and their fatal path — os.Exit skips defers, and an
// unflushed CPU profile is truncated and unparseable, so error exits (the
// runs users most want to profile) must flush explicitly.  Flush errors are
// reported on stderr: by then the command is exiting and the profile is
// best-effort.
func Start(cpuPath, memPath string) (flush func(), err error) {
	stopCPU, err := StartCPU(cpuPath)
	if err != nil {
		return nil, err
	}
	flushed := false
	return func() {
		if flushed {
			return
		}
		flushed = true
		stopCPU()
		if err := WriteHeap(memPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}, nil
}

// StartCPU begins a CPU profile written to path and returns the function
// that stops the profile and closes the file.  An empty path is a no-op.
func StartCPU(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("pprofio: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("pprofio: cpu profile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeap writes a heap profile to path after running a GC.  An empty
// path is a no-op.
func WriteHeap(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("pprofio: heap profile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("pprofio: heap profile: %w", err)
	}
	return nil
}
