// Package experiments regenerates every table and figure of the paper's
// evaluation (§5 and §6): the PDF-vs-WS comparison on the default
// configurations (Figure 2), the 45 nm single-technology design space
// (Figure 3), the L2-hit-time and memory-latency sensitivity studies
// (Figures 4 and 5), the task-granularity study (Figure 6), the Mergesort
// miss-per-level picture (Figure 1), the fine- vs coarse-grained comparison
// (§5.4), the LruTree-vs-SetAssoc profiler timing (§6.1) and the automatic
// task-coarsening evaluation (Figure 8).
//
// Each experiment returns a typed result with a String method that prints
// the same rows or series the paper reports; cmd/experiments and the
// benchmarks in the repository root drive these functions.  Absolute numbers
// differ from the paper (the substrate is a scaled event-driven model, not
// the authors' testbed); the shapes — who wins, by what factor, where the
// crossovers fall — are what the harness reproduces (see EXPERIMENTS.md).
//
// Every figure expands into a list of simulation jobs executed by the
// parallel sweep engine (internal/sweep), so figures use all cores of the
// host and repeated runs are served from the engine's result cache when one
// is configured (see Options.Workers and Options.Cache).
package experiments

import (
	"fmt"

	"cmpsched/internal/config"
	"cmpsched/internal/dag"
	"cmpsched/internal/imath"
	"cmpsched/internal/sweep"
	"cmpsched/internal/workload"
)

// Options control experiment scale and execution.
type Options struct {
	// Scale is the capacity scale factor applied to the configuration
	// tables. Zero means config.DefaultScale (32).
	Scale int64
	// Quick shrinks workload inputs (and scales caches down further to
	// preserve ratios) so that a full experiment finishes in a couple of
	// seconds; used by tests. Full runs (Quick=false) take minutes.
	Quick bool
	// Cores optionally restricts the core counts evaluated (when nil the
	// experiment's default list is used).
	Cores []int
	// Workers bounds the number of concurrent simulations when a figure's
	// jobs run on the sweep engine. Zero means one worker per host CPU; 1
	// forces serial execution.
	Workers int
	// Cache, when non-nil, memoises simulation runs across figures (and,
	// with a disk-backed cache, across processes). Repeated runs of the
	// same figure at the same options are then near-instant.
	Cache sweep.Cache
	// GraphRepr selects the host representation the graph kernels walk:
	// graph.ReprFlat (the default) or graph.ReprCompressed.  The emitted
	// DAGs are bit-identical either way; the knob trades host memory for
	// decode time and is what lets 2^22+-vertex RMAT inputs fit.
	GraphRepr string
}

// effectiveScale returns the configuration scale factor for the options.
func (o Options) effectiveScale() int64 {
	s := o.Scale
	if s == 0 {
		s = config.DefaultScale
	}
	if o.Quick {
		s *= 16
	}
	return s
}

// quickDiv returns the factor by which workload inputs shrink in quick mode.
func (o Options) quickDiv() int64 {
	if o.Quick {
		return 16
	}
	return 1
}

func (o Options) coresOrDefault(def []int) []int {
	if len(o.Cores) > 0 {
		return o.Cores
	}
	return def
}

// scaledDefault returns the Table 2 configuration for the core count, scaled.
func (o Options) scaledDefault(cores int) (config.CMP, error) {
	c, err := config.Default(cores)
	if err != nil {
		return config.CMP{}, err
	}
	return c.Scaled(o.effectiveScale()), nil
}

// scaled45nm returns the Table 3 configuration for the core count, scaled.
func (o Options) scaled45nm(cores int) (config.CMP, error) {
	c, err := config.SingleTech45(cores)
	if err != nil {
		return config.CMP{}, err
	}
	return c.Scaled(o.effectiveScale()), nil
}

// mergesortConfig returns the Mergesort input used by the experiments.
func (o Options) mergesortConfig() workload.MergesortConfig {
	return workload.MergesortConfig{
		Elements:            (1 << 20) / o.quickDiv(),
		TaskWorkingSetBytes: imath.Max(2<<10, (16<<10)/o.quickDiv()),
	}
}

// hashJoinConfig returns the Hash Join input used by the experiments, with
// sub-partitions sized for the given configuration's L2 as a database system
// would size them.
func (o Options) hashJoinConfig(cfg config.CMP) workload.HashJoinConfig {
	hj := workload.HashJoinConfigForL2(cfg.L2.SizeBytes)
	hj.PartitionBytes = (32 << 20) / o.quickDiv()
	return hj
}

// luConfig returns the LU input used by the experiments.
func (o Options) luConfig() workload.LUConfig {
	n := int64(512)
	if o.Quick {
		n = 128
	}
	return workload.LUConfig{N: n, BlockElems: 32}
}

// graphShape returns the graph input used by the experiments for a kernel
// and generator family, shrunk in quick mode like every other input.
func (o Options) graphShape(kernel, family string) workload.GraphShape {
	verts := int64(1 << 15)
	switch kernel {
	case "pagerank":
		verts = 1 << 13
	case "triangles":
		verts = 1 << 14
	}
	shape := workload.GraphShape{
		Family:         family,
		Vertices:       imath.Max(1<<11, verts/o.quickDiv()),
		Representation: o.GraphRepr,
	}
	if o.Quick {
		// Keep several tasks per frontier on the shrunken graphs so the
		// schedulers still have co-scheduling decisions to make.
		shape.EdgesPerTask = 512
	}
	return shape
}

// graphWorkload builds a graph kernel workload on the experiments' inputs
// and returns the canonical fingerprint of its default-filled configuration,
// from the same switch, so the two can never drift apart.
func (o Options) graphWorkload(kernel, family string) (workload.Workload, string, error) {
	shape := o.graphShape(kernel, family)
	switch kernel {
	case "bfs":
		w := workload.NewBFS(workload.BFSConfig{Shape: shape})
		return w, fmt.Sprintf("%+v", w.Config()), nil
	case "sssp":
		w := workload.NewSSSP(workload.SSSPConfig{Shape: shape})
		return w, fmt.Sprintf("%+v", w.Config()), nil
	case "pagerank":
		w := workload.NewPageRank(workload.PageRankConfig{Shape: shape})
		return w, fmt.Sprintf("%+v", w.Config()), nil
	case "triangles":
		w := workload.NewTriangles(workload.TrianglesConfig{Shape: shape})
		return w, fmt.Sprintf("%+v", w.Config()), nil
	case "connectivity":
		w := workload.NewConnectivity(workload.ConnectivityConfig{Shape: shape})
		return w, fmt.Sprintf("%+v", w.Config()), nil
	case "kcore":
		w := workload.NewKCore(workload.KCoreConfig{Shape: shape})
		return w, fmt.Sprintf("%+v", w.Config()), nil
	case "mis":
		w := workload.NewMIS(workload.MISConfig{Shape: shape})
		return w, fmt.Sprintf("%+v", w.Config()), nil
	case "matching":
		w := workload.NewMatching(workload.MatchingConfig{Shape: shape})
		return w, fmt.Sprintf("%+v", w.Config()), nil
	default:
		return nil, "", fmt.Errorf("experiments: unknown graph kernel %q", kernel)
	}
}

// GraphKernels lists the irregular graph workloads, in the order the
// irregularity figure reports them.
func GraphKernels() []string {
	return []string{"bfs", "sssp", "pagerank", "triangles", "connectivity", "kcore", "mis", "matching"}
}

// workloadSpec is the single point deciding both the inputs a named
// benchmark is built with and the canonical fingerprint of those inputs —
// one switch, so a sweep cache key always covers exactly what the build
// uses (a drift between the two would silently serve wrong cached results).
func (o Options) workloadSpec(name string, cfg config.CMP) (build sweep.BuildFunc, params string, err error) {
	dagOf := func(w workload.Workload) sweep.BuildFunc {
		return func() (*dag.DAG, error) {
			d, _, err := w.Build()
			return d, err
		}
	}
	switch name {
	case "mergesort":
		c := o.mergesortConfig()
		return dagOf(workload.NewMergesort(c)), fmt.Sprintf("%+v", c), nil
	case "hashjoin":
		c := o.hashJoinConfig(cfg)
		return dagOf(workload.NewHashJoin(c)), fmt.Sprintf("%+v", c), nil
	case "lu":
		c := o.luConfig()
		return dagOf(workload.NewLU(c)), fmt.Sprintf("%+v", c), nil
	case "bfs", "sssp", "pagerank", "triangles", "connectivity", "kcore", "mis", "matching":
		return o.graphSpec(name, "")
	default:
		// The remaining benchmarks take no Options-dependent inputs.
		w, err := workload.New(name)
		if err != nil {
			return nil, "", err
		}
		return dagOf(w), "default", nil
	}
}

// graphSpec returns the build function and canonical fingerprint for a graph
// kernel on the given generator family ("" means the kernel's default,
// uniform).  The fingerprint is the default-filled kernel configuration, so
// it covers the family, the graph shape and the task grain.
func (o Options) graphSpec(kernel, family string) (sweep.BuildFunc, string, error) {
	w, params, err := o.graphWorkload(kernel, family)
	if err != nil {
		return nil, "", err
	}
	build := func() (*dag.DAG, error) {
		d, _, err := w.Build()
		return d, err
	}
	return build, params, nil
}

// graphSchedulerJobs returns the (pdf, ws) jobs for one graph kernel on one
// family and configuration — the fixed order the irregularity figure's
// decoder relies on.
func (o Options) graphSchedulerJobs(kernel, family string, cfg config.CMP) ([]sweep.Job, error) {
	build, params, err := o.graphSpec(kernel, family)
	if err != nil {
		return nil, err
	}
	return []sweep.Job{
		sweep.NewJob(kernel, params, "pdf", cfg, build),
		sweep.NewJob(kernel, params, "ws", cfg, build),
	}, nil
}

// run executes the jobs on the sweep engine configured by the options and
// returns the results in job order.
func (o Options) run(jobs []sweep.Job) ([]sweep.Result, error) {
	return sweep.NewEngine(sweep.EngineOptions{Workers: o.Workers, Cache: o.Cache}).Run(jobs)
}

// grid pairs each experiment grid point's payload with its group of sweep
// jobs, so the two can never drift out of alignment the way parallel
// points/jobs slices could.  runGrid flattens every group into one engine
// run (maximising parallelism across the whole figure) and hands each
// payload its own results back.
type grid[P any] struct {
	points []P
	groups [][]sweep.Job
}

// add appends one grid point and the jobs that evaluate it.
func (g *grid[P]) add(p P, jobs ...sweep.Job) {
	g.points = append(g.points, p)
	g.groups = append(g.groups, jobs)
}

// runGrid executes the grid's jobs through the sweep engine and calls visit
// once per point, in add order, with the point's results in job order.
func runGrid[P any](o Options, g *grid[P], visit func(p P, rs []sweep.Result)) error {
	var jobs []sweep.Job
	for _, group := range g.groups {
		jobs = append(jobs, group...)
	}
	results, err := o.run(jobs)
	if err != nil {
		return err
	}
	for i, p := range g.points {
		n := len(g.groups[i])
		visit(p, results[:n:n])
		results = results[n:]
	}
	return nil
}

// jobsFor returns one job per named scheduler for the workload on cfg, in
// scheduler order.  Scheduler names are any the registry accepts, plus the
// sweep.Sequential pseudo-scheduler.
func (o Options) jobsFor(name string, cfg config.CMP, schedulers []string) ([]sweep.Job, error) {
	build, params, err := o.workloadSpec(name, cfg)
	if err != nil {
		return nil, err
	}
	jobs := make([]sweep.Job, 0, len(schedulers))
	for _, sc := range schedulers {
		jobs = append(jobs, sweep.NewJob(name, params, sc, cfg, build))
	}
	return jobs, nil
}

// schedulerJobs returns the jobs simulating the named workload on cfg —
// optionally led by the sequential baseline, then PDF, then WS — the fixed
// (seq, pdf, ws) order the figure decoders rely on.
func (o Options) schedulerJobs(name string, cfg config.CMP, withSeq bool) ([]sweep.Job, error) {
	schedulers := []string{"pdf", "ws"}
	if withSeq {
		schedulers = append([]string{sweep.Sequential}, schedulers...)
	}
	return o.jobsFor(name, cfg, schedulers)
}

// WorkloadFactory adapts the harness's standard inputs (paper-sized,
// quick-scaled) to sweep.Spec, so cmd/sweep grids use the same workload
// parameterisation as the figures.
func (o Options) WorkloadFactory() sweep.WorkloadFactory {
	return o.workloadSpec
}
