// Package experiments regenerates every table and figure of the paper's
// evaluation (§5 and §6): the PDF-vs-WS comparison on the default
// configurations (Figure 2), the 45 nm single-technology design space
// (Figure 3), the L2-hit-time and memory-latency sensitivity studies
// (Figures 4 and 5), the task-granularity study (Figure 6), the Mergesort
// miss-per-level picture (Figure 1), the fine- vs coarse-grained comparison
// (§5.4), the LruTree-vs-SetAssoc profiler timing (§6.1) and the automatic
// task-coarsening evaluation (Figure 8).
//
// Each experiment returns a typed result with a String method that prints
// the same rows or series the paper reports; cmd/experiments and the
// benchmarks in the repository root drive these functions.  Absolute numbers
// differ from the paper (the substrate is a scaled event-driven model, not
// the authors' testbed); the shapes — who wins, by what factor, where the
// crossovers fall — are what the harness reproduces (see EXPERIMENTS.md).
package experiments

import (
	"fmt"

	"cmpsched/internal/cmpsim"
	"cmpsched/internal/config"
	"cmpsched/internal/dag"
	"cmpsched/internal/sched"
	"cmpsched/internal/taskgroup"
	"cmpsched/internal/workload"
)

// Options control experiment scale.
type Options struct {
	// Scale is the capacity scale factor applied to the configuration
	// tables. Zero means config.DefaultScale (32).
	Scale int64
	// Quick shrinks workload inputs (and scales caches down further to
	// preserve ratios) so that a full experiment finishes in a couple of
	// seconds; used by tests. Full runs (Quick=false) take minutes.
	Quick bool
	// Cores optionally restricts the core counts evaluated (when nil the
	// experiment's default list is used).
	Cores []int
}

// effectiveScale returns the configuration scale factor for the options.
func (o Options) effectiveScale() int64 {
	s := o.Scale
	if s == 0 {
		s = config.DefaultScale
	}
	if o.Quick {
		s *= 16
	}
	return s
}

// quickDiv returns the factor by which workload inputs shrink in quick mode.
func (o Options) quickDiv() int64 {
	if o.Quick {
		return 16
	}
	return 1
}

func (o Options) coresOrDefault(def []int) []int {
	if len(o.Cores) > 0 {
		return o.Cores
	}
	return def
}

// scaledDefault returns the Table 2 configuration for the core count, scaled.
func (o Options) scaledDefault(cores int) (config.CMP, error) {
	c, err := config.Default(cores)
	if err != nil {
		return config.CMP{}, err
	}
	return c.Scaled(o.effectiveScale()), nil
}

// scaled45nm returns the Table 3 configuration for the core count, scaled.
func (o Options) scaled45nm(cores int) (config.CMP, error) {
	c, err := config.SingleTech45(cores)
	if err != nil {
		return config.CMP{}, err
	}
	return c.Scaled(o.effectiveScale()), nil
}

// mergesortConfig returns the Mergesort input used by the experiments.
func (o Options) mergesortConfig() workload.MergesortConfig {
	return workload.MergesortConfig{
		Elements:            (1 << 20) / o.quickDiv(),
		TaskWorkingSetBytes: maxI64(2<<10, (16<<10)/o.quickDiv()),
	}
}

// hashJoinConfig returns the Hash Join input used by the experiments, with
// sub-partitions sized for the given configuration's L2 as a database system
// would size them.
func (o Options) hashJoinConfig(cfg config.CMP) workload.HashJoinConfig {
	hj := workload.HashJoinConfigForL2(cfg.L2.SizeBytes)
	hj.PartitionBytes = (32 << 20) / o.quickDiv()
	return hj
}

// luConfig returns the LU input used by the experiments.
func (o Options) luConfig() workload.LUConfig {
	n := int64(512)
	if o.Quick {
		n = 128
	}
	return workload.LUConfig{N: n, BlockElems: 32}
}

// buildWorkload constructs the named benchmark for a configuration.
func (o Options) buildWorkload(name string, cfg config.CMP) (*dag.DAG, *taskgroup.Tree, error) {
	var w workload.Workload
	switch name {
	case "mergesort":
		w = workload.NewMergesort(o.mergesortConfig())
	case "hashjoin":
		w = workload.NewHashJoin(o.hashJoinConfig(cfg))
	case "lu":
		w = workload.NewLU(o.luConfig())
	default:
		var err error
		w, err = workload.New(name)
		if err != nil {
			return nil, nil, err
		}
	}
	return w.Build()
}

// runPair simulates the DAG under PDF and WS on the configuration and also
// returns the sequential baseline. The DAG is rebuilt for each run via the
// build function to keep generators independent.
func runPair(build func() (*dag.DAG, error), cfg config.CMP) (seq, pdf, ws *cmpsim.Result, err error) {
	d, err := build()
	if err != nil {
		return nil, nil, nil, err
	}
	if seq, err = cmpsim.RunSequential(d, cfg); err != nil {
		return nil, nil, nil, fmt.Errorf("sequential on %s: %w", cfg.Name, err)
	}
	if d, err = build(); err != nil {
		return nil, nil, nil, err
	}
	if pdf, err = cmpsim.Run(d, sched.NewPDF(), cfg); err != nil {
		return nil, nil, nil, fmt.Errorf("pdf on %s: %w", cfg.Name, err)
	}
	if d, err = build(); err != nil {
		return nil, nil, nil, err
	}
	if ws, err = cmpsim.Run(d, sched.NewWS(), cfg); err != nil {
		return nil, nil, nil, fmt.Errorf("ws on %s: %w", cfg.Name, err)
	}
	return seq, pdf, ws, nil
}

// runSchedulers simulates the DAG under PDF and WS only (no sequential
// baseline), for experiments that report raw execution time.
func runSchedulers(build func() (*dag.DAG, error), cfg config.CMP) (pdf, ws *cmpsim.Result, err error) {
	d, err := build()
	if err != nil {
		return nil, nil, err
	}
	if pdf, err = cmpsim.Run(d, sched.NewPDF(), cfg); err != nil {
		return nil, nil, fmt.Errorf("pdf on %s: %w", cfg.Name, err)
	}
	if d, err = build(); err != nil {
		return nil, nil, err
	}
	if ws, err = cmpsim.Run(d, sched.NewWS(), cfg); err != nil {
		return nil, nil, fmt.Errorf("ws on %s: %w", cfg.Name, err)
	}
	return pdf, ws, nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
