package experiments

import (
	"fmt"
	"strings"

	"cmpsched/internal/coarsen"
	"cmpsched/internal/config"
	"cmpsched/internal/dag"
	"cmpsched/internal/imath"
	"cmpsched/internal/profile"
	"cmpsched/internal/stats"
	"cmpsched/internal/sweep"
	"cmpsched/internal/workload"
)

// Figure8Scheme identifies one bar group of Figure 8.
type Figure8Scheme string

// The three schemes of Figure 8.
const (
	// SchemePrevious uses the manually selected task sizes of §5 (the
	// left bars).
	SchemePrevious Figure8Scheme = "previous"
	// SchemeDAG applies the automatically recommended task selection by
	// substituting a coarsened task DAG over the finest-grain trace (the
	// middle bars); merged tasks still pay the parallel-code overheads.
	SchemeDAG Figure8Scheme = "cache/(2*cores) dag"
	// SchemeActual regenerates the Mergesort code with the recommended
	// thresholds (the right bars).
	SchemeActual Figure8Scheme = "cache/(2*cores) actual"
)

// Figure8Row is one bar of Figure 8.
type Figure8Row struct {
	Cores      int
	Scheme     Figure8Scheme
	Cycles     int64
	Normalized float64
	// ThresholdBytes is the task working-set threshold the coarsening
	// pass recommended for the configuration (0 for SchemePrevious).
	ThresholdBytes int64
}

// Figure8Result holds the automatic task-coarsening evaluation.
type Figure8Result struct {
	Rows  []Figure8Row
	Scale int64
}

// Figure8 reproduces Figure 8: Mergesort execution time under PDF on the 32,
// 16 and 8-core default configurations using (a) the manually chosen task
// sizes, (b) the automatic selection applied as a DAG substitution over the
// finest-grain trace, and (c) the automatic selection applied by regenerating
// the program, normalized per core count to the best of the three.  The
// paper's finding: the regenerated version is within 5% of the best in all
// cases.
func Figure8(opts Options) (*Figure8Result, error) {
	res := &Figure8Result{Scale: opts.effectiveScale()}
	coreList := opts.coresOrDefault([]int{32, 16, 8})

	// The finest-grain program: very small tasks, profiled once; the
	// coarsening analysis is then repeated per CMP configuration (§6.2).
	fineCfg := opts.mergesortConfig()
	fineCfg.TaskWorkingSetBytes = imath.Max(2<<10, fineCfg.TaskWorkingSetBytes/8)
	fineDAG, fineTree, err := workload.NewMergesort(fineCfg).Build()
	if err != nil {
		return nil, err
	}
	prof, err := profile.NewLruTree(profile.Config{
		LineBytes:  128,
		CacheSizes: profileSizesFor(opts),
	}).ProfileDAG(fineDAG)
	if err != nil {
		return nil, err
	}

	// Per core count: previous, dag, actual — all under PDF.
	type point struct {
		cores     int
		threshold int64
	}
	var g grid[point]
	for _, cores := range coreList {
		cfg, err := opts.scaledDefault(cores)
		if err != nil {
			return nil, err
		}
		sel, err := coarsen.Coarsen(prof, fineTree, coarsen.Params{CacheSizeBytes: cfg.L2.SizeBytes, Cores: cfg.Cores})
		if err != nil {
			return nil, err
		}
		threshold := int64(sel.Threshold("mergesort.go:sort"))

		// (a) previous: the manual selection used throughout §5.
		prevCfg := opts.mergesortConfig()
		prevBuild := func() (*dag.DAG, error) {
			d, _, err := workload.NewMergesort(prevCfg).Build()
			return d, err
		}

		// (b) dag substitution over the finest-grain trace.  The collapsed
		// DAG shares the source DAG's (stateful) reference generators, so
		// the build rebuilds the deterministic finest-grain program rather
		// than collapsing the shared fineDAG into concurrently-run copies.
		dagBuild := func() (*dag.DAG, error) {
			d, _, err := workload.NewMergesort(fineCfg).Build()
			if err != nil {
				return nil, err
			}
			return coarsen.CollapseDAG(d, fineTree, sel)
		}

		// (c) actual regeneration with the recommended threshold.
		actualCfg := opts.mergesortConfig()
		if threshold > 0 {
			actualCfg.TaskWorkingSetBytes = threshold
		}
		actualBuild := func() (*dag.DAG, error) {
			d, _, err := workload.NewMergesort(actualCfg).Build()
			return d, err
		}

		// The previous/actual schemes are plain mergesort runs keyed only
		// by their configs — the scheme is presentation metadata, not a
		// simulation input — so a shared cache reuses them across figures
		// (Figure 2 runs the identical "previous" simulation).
		g.add(point{cores, threshold},
			sweep.NewJob("mergesort", fmt.Sprintf("%+v", prevCfg), "pdf", cfg, prevBuild),
			sweep.NewJob("mergesort/coarsened", fmt.Sprintf("fine=%+v threshold=%d", fineCfg, threshold), "pdf", cfg, dagBuild),
			sweep.NewJob("mergesort", fmt.Sprintf("%+v", actualCfg), "pdf", cfg, actualBuild),
		)
	}
	err = runGrid(opts, &g, func(pt point, rs []sweep.Result) {
		prevRes, dagRes, actualRes := rs[0].Sim, rs[1].Sim, rs[2].Sim
		cycles := []float64{float64(prevRes.Cycles), float64(dagRes.Cycles), float64(actualRes.Cycles)}
		norm := stats.Normalize(cycles)
		res.Rows = append(res.Rows,
			Figure8Row{Cores: pt.cores, Scheme: SchemePrevious, Cycles: prevRes.Cycles, Normalized: norm[0]},
			Figure8Row{Cores: pt.cores, Scheme: SchemeDAG, Cycles: dagRes.Cycles, Normalized: norm[1], ThresholdBytes: pt.threshold},
			Figure8Row{Cores: pt.cores, Scheme: SchemeActual, Cycles: actualRes.Cycles, Normalized: norm[2], ThresholdBytes: pt.threshold},
		)
	})
	if err != nil {
		return nil, fmt.Errorf("figure8: %w", err)
	}
	return res, nil
}

// profileSizesFor returns the ladder of cache sizes used when profiling the
// finest-grain Mergesort for Figure 8, covering the scaled default configs.
func profileSizesFor(opts Options) []int64 {
	scale := opts.effectiveScale()
	var sizes []int64
	for _, c := range config.Defaults() {
		s := c.L2.SizeBytes / scale
		if s < 2<<10 {
			s = 2 << 10
		}
		sizes = append(sizes, s)
	}
	// Add a few smaller rungs so fine groups are resolved too.
	sizes = append(sizes, 4<<10, 16<<10, 64<<10)
	// Deduplicate and sort via the profile config normalisation.
	seen := map[int64]bool{}
	var out []int64
	for _, s := range sizes {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// Row returns the row for (cores, scheme), or nil.
func (r *Figure8Result) Row(cores int, scheme Figure8Scheme) *Figure8Row {
	for i := range r.Rows {
		if r.Rows[i].Cores == cores && r.Rows[i].Scheme == scheme {
			return &r.Rows[i]
		}
	}
	return nil
}

// WorstNormalized returns the largest normalized execution time for a scheme
// across core counts (the paper: "within 5% of the optimal in all cases" for
// the actual scheme).
func (r *Figure8Result) WorstNormalized(scheme Figure8Scheme) float64 {
	worst := 0.0
	for _, row := range r.Rows {
		if row.Scheme == scheme && row.Normalized > worst {
			worst = row.Normalized
		}
	}
	return worst
}

// String renders Figure 8.
func (r *Figure8Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8: automatic task-coarsening effectiveness (Mergesort, PDF, capacity scale 1/%d)\n", r.Scale)
	t := stats.NewTable("cores", "scheme", "cycles", "normalized to best", "threshold (KB)")
	for _, row := range r.Rows {
		thr := ""
		if row.ThresholdBytes > 0 {
			thr = fmt.Sprintf("%.0f", float64(row.ThresholdBytes)/1024)
		}
		t.AddRow(fmt.Sprint(row.Cores), string(row.Scheme), fmt.Sprint(row.Cycles),
			fmt.Sprintf("%.3f", row.Normalized), thr)
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "worst normalized: previous %.3f, dag %.3f, actual %.3f\n\n",
		r.WorstNormalized(SchemePrevious), r.WorstNormalized(SchemeDAG), r.WorstNormalized(SchemeActual))
	return b.String()
}
