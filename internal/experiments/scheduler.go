package experiments

import (
	"fmt"
	"strings"

	"cmpsched/internal/cache"
	"cmpsched/internal/stats"
	"cmpsched/internal/sweep"
)

// SchedulerRow is one point of the scheduler comparison: one benchmark on
// one core count, one L2 topology and one scheduler from the registry.
type SchedulerRow struct {
	Workload  string
	Cores     int
	Topology  string
	Scheduler string
	// Cycles is the parallel execution time.
	Cycles int64
	// L2MissesPerKiloInstr is the paper's primary cache metric, aggregated
	// over every L2 slice of the topology.
	L2MissesPerKiloInstr float64
	// MemUtilization is the off-chip bandwidth utilisation.
	MemUtilization float64
	// Steals is the scheduler's "steals" counter (work-stealing variants;
	// 0 for schedulers without one).
	Steals int64
	// Migrations is the space-bounded scheduler's count of tasks that ran
	// away from their pinned pool (0 for other schedulers).
	Migrations int64
}

// SchedulerResult holds every row of the scheduler comparison.
type SchedulerResult struct {
	Rows  []SchedulerRow
	Scale int64
}

// SchedulerComparisonSchedulers lists the schedulers the comparison
// evaluates: the paper's pair, the locality-guided stealing variant and the
// space-bounded scheduler.
func SchedulerComparisonSchedulers() []string {
	return []string{"pdf", "ws", "ws:nearest", "sb"}
}

// SchedulerComparisonWorkloads lists the benchmarks the comparison runs:
// the paper's two regular benchmarks analysed in most detail plus one
// irregular graph kernel.
func SchedulerComparisonWorkloads() []string {
	return []string{"mergesort", "hashjoin", "bfs"}
}

// SchedulerComparisonTopologies lists the topology axis, from fully shared
// to fully private.
func SchedulerComparisonTopologies() []cache.Topology {
	return []cache.Topology{cache.Shared(), cache.Clustered(4), cache.Private()}
}

// SchedulerComparison evaluates the scheduler axis the registry opened up:
// every scheduler of SchedulerComparisonSchedulers on every topology of
// SchedulerComparisonTopologies, per benchmark.  It asks two questions the
// paper's PDF-vs-WS pair cannot: does pinning tasks to the smallest cache
// that fits their working set (sb) recover PDF-like constructive sharing on
// a shared L2 while keeping WS-like locality on sliced ones, and does
// steering steals toward the thief's own L2 slice (ws:nearest) claw back
// any of the miss penalty clustered topologies inflict on classic WS?  On
// the shared and private topologies ws:nearest's victim order provably
// degenerates to classic WS's forward scan, so its rows there double as an
// end-to-end determinism check (identical cycle counts), which the shape
// test pins.
func SchedulerComparison(opts Options) (*SchedulerResult, error) {
	res := &SchedulerResult{Scale: opts.effectiveScale()}
	schedulers := SchedulerComparisonSchedulers()
	type point struct {
		wl    string
		cores int
		topo  string
	}
	var g grid[point]
	for _, wl := range SchedulerComparisonWorkloads() {
		for _, cores := range opts.coresOrDefault([]int{8}) {
			base, err := opts.scaledDefault(cores)
			if err != nil {
				return nil, err
			}
			for _, topo := range SchedulerComparisonTopologies() {
				cfg := base.WithTopology(topo)
				jobs, err := opts.jobsFor(wl, cfg, schedulers)
				if err != nil {
					return nil, err
				}
				g.add(point{wl, cores, topo.String()}, jobs...)
			}
		}
	}
	err := runGrid(opts, &g, func(pt point, rs []sweep.Result) {
		for i, sc := range schedulers {
			sim := rs[i].Sim
			res.Rows = append(res.Rows, SchedulerRow{
				Workload: pt.wl, Cores: pt.cores, Topology: pt.topo, Scheduler: sc,
				Cycles:               sim.Cycles,
				L2MissesPerKiloInstr: sim.L2MissesPerKiloInstr(),
				MemUtilization:       sim.MemUtilization,
				Steals:               sim.SchedMetrics["steals"],
				Migrations:           sim.SchedMetrics["migrations"],
			})
		}
	})
	if err != nil {
		return nil, fmt.Errorf("scheduler comparison: %w", err)
	}
	return res, nil
}

// Row returns the row for a workload/cores/topology/scheduler combination,
// or nil.
func (r *SchedulerResult) Row(workload string, cores int, topology, scheduler string) *SchedulerRow {
	for i := range r.Rows {
		row := &r.Rows[i]
		if row.Workload == workload && row.Cores == cores && row.Topology == topology && row.Scheduler == scheduler {
			return row
		}
	}
	return nil
}

// MissReductionPercent returns the relative reduction in L2 misses per 1000
// instructions of scheduler over baseline on one topology, in percent.
// Positive means scheduler misses less than baseline.
func (r *SchedulerResult) MissReductionPercent(workload string, cores int, topology, scheduler, baseline string) float64 {
	s := r.Row(workload, cores, topology, scheduler)
	b := r.Row(workload, cores, topology, baseline)
	if s == nil || b == nil || b.L2MissesPerKiloInstr == 0 {
		return 0
	}
	return (b.L2MissesPerKiloInstr - s.L2MissesPerKiloInstr) / b.L2MissesPerKiloInstr * 100
}

// Best returns the scheduler with the fewest L2 misses per 1000
// instructions at one grid point, or "".
func (r *SchedulerResult) Best(workload string, cores int, topology string) string {
	best, bestMPKI := "", 0.0
	for _, sc := range SchedulerComparisonSchedulers() {
		row := r.Row(workload, cores, topology, sc)
		if row == nil {
			continue
		}
		if best == "" || row.L2MissesPerKiloInstr < bestMPKI {
			best, bestMPKI = sc, row.L2MissesPerKiloInstr
		}
	}
	return best
}

// String renders one panel per workload: topologies down, schedulers within
// each topology, with the per-scheduler miss reduction relative to classic
// WS.
func (r *SchedulerResult) String() string {
	var b strings.Builder
	for _, wl := range SchedulerComparisonWorkloads() {
		rows := false
		t := stats.NewTable("cores", "topology", "sched", "cycles", "L2 misses/1000 instr", "vs ws %", "steals", "migrations", "mem util %")
		for _, row := range r.Rows {
			if row.Workload != wl {
				continue
			}
			rows = true
			vsWS := ""
			if row.Scheduler != "ws" {
				vsWS = fmt.Sprintf("%.1f", r.MissReductionPercent(wl, row.Cores, row.Topology, row.Scheduler, "ws"))
			}
			t.AddRow(
				fmt.Sprint(row.Cores), row.Topology, row.Scheduler,
				fmt.Sprint(row.Cycles),
				fmt.Sprintf("%.3f", row.L2MissesPerKiloInstr),
				vsWS,
				fmt.Sprint(row.Steals),
				fmt.Sprint(row.Migrations),
				fmt.Sprintf("%.1f", row.MemUtilization*100),
			)
		}
		if !rows {
			continue
		}
		fmt.Fprintf(&b, "Scheduler comparison: %s (default configurations, capacity scale 1/%d)\n", wl, r.Scale)
		b.WriteString(t.String())
		b.WriteString("\n")
	}
	return b.String()
}
