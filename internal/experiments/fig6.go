package experiments

import (
	"fmt"
	"strings"

	"cmpsched/internal/dag"
	"cmpsched/internal/stats"
	"cmpsched/internal/sweep"
	"cmpsched/internal/workload"
)

// Figure6Row is one point of Figure 6: Mergesort at one task working-set
// size under one scheduler on one default configuration.
type Figure6Row struct {
	Cores     int
	Scheduler string
	// TaskWorkingSetBytes is the target task working-set size (the x axis
	// of Figure 6, already divided by the capacity scale factor).
	TaskWorkingSetBytes  int64
	L2MissesPerKiloInstr float64
	Cycles               int64
}

// Figure6Result holds the task-granularity study.
type Figure6Result struct {
	Rows  []Figure6Row
	Scale int64
}

// Figure6Sizes returns the task working-set sizes swept, mirroring the
// paper's 8 MB ... 32 KB axis divided by the effective capacity scale.
func Figure6Sizes(opts Options) []int64 {
	paper := []int64{8 << 20, 4 << 20, 2 << 20, 1 << 20, 512 << 10, 256 << 10, 128 << 10, 64 << 10, 32 << 10}
	scale := opts.effectiveScale()
	out := make([]int64, 0, len(paper))
	for _, s := range paper {
		v := s / scale
		if v < 1<<10 {
			v = 1 << 10
		}
		// Avoid duplicates after clamping.
		if len(out) == 0 || out[len(out)-1] != v {
			out = append(out, v)
		}
	}
	return out
}

// Figure6 reproduces Figure 6: the impact of Mergesort task granularity on
// L2 misses and execution time under PDF and WS, on the 32-core and 16-core
// default configurations.  The paper's findings: WS is flat across task
// sizes, PDF improves considerably with smaller tasks, and PDF's advantage
// grows as tasks shrink (until scheduling overheads dominate).
func Figure6(opts Options) (*Figure6Result, error) {
	res := &Figure6Result{Scale: opts.effectiveScale()}
	coreList := opts.coresOrDefault([]int{32, 16})
	sizes := Figure6Sizes(opts)
	if opts.Quick && len(sizes) > 4 {
		sizes = sizes[len(sizes)-4:]
	}
	msBase := opts.mergesortConfig()
	type point struct {
		cores int
		ws    int64
	}
	var g grid[point]
	for _, cores := range coreList {
		cfg, err := opts.scaledDefault(cores)
		if err != nil {
			return nil, err
		}
		for _, ws := range sizes {
			msCfg := msBase
			msCfg.TaskWorkingSetBytes = ws
			build := func() (*dag.DAG, error) {
				d, _, err := workload.NewMergesort(msCfg).Build()
				return d, err
			}
			params := fmt.Sprintf("%+v", msCfg)
			g.add(point{cores, ws},
				sweep.NewJob("mergesort", params, "pdf", cfg, build),
				sweep.NewJob("mergesort", params, "ws", cfg, build),
			)
		}
	}
	err := runGrid(opts, &g, func(pt point, rs []sweep.Result) {
		pdfRes, wsRes := rs[0].Sim, rs[1].Sim
		res.Rows = append(res.Rows,
			Figure6Row{Cores: pt.cores, Scheduler: "pdf", TaskWorkingSetBytes: pt.ws, L2MissesPerKiloInstr: pdfRes.L2MissesPerKiloInstr(), Cycles: pdfRes.Cycles},
			Figure6Row{Cores: pt.cores, Scheduler: "ws", TaskWorkingSetBytes: pt.ws, L2MissesPerKiloInstr: wsRes.L2MissesPerKiloInstr(), Cycles: wsRes.Cycles},
		)
	})
	if err != nil {
		return nil, fmt.Errorf("figure6: %w", err)
	}
	return res, nil
}

// Row returns the row for (cores, scheduler, size), or nil.
func (r *Figure6Result) Row(cores int, scheduler string, size int64) *Figure6Row {
	for i := range r.Rows {
		row := &r.Rows[i]
		if row.Cores == cores && row.Scheduler == scheduler && row.TaskWorkingSetBytes == size {
			return row
		}
	}
	return nil
}

// Sizes returns the distinct task working-set sizes present, largest first.
func (r *Figure6Result) Sizes(cores int) []int64 {
	var out []int64
	seen := map[int64]bool{}
	for _, row := range r.Rows {
		if row.Cores == cores && !seen[row.TaskWorkingSetBytes] {
			seen[row.TaskWorkingSetBytes] = true
			out = append(out, row.TaskWorkingSetBytes)
		}
	}
	return out
}

// MissSpread returns max/min of the misses-per-kilo-instruction across task
// sizes for the given scheduler and core count — the paper's observation is
// that this spread is large for PDF and small (flat) for WS.
func (r *Figure6Result) MissSpread(cores int, scheduler string) float64 {
	var vals []float64
	for _, row := range r.Rows {
		if row.Cores == cores && row.Scheduler == scheduler {
			vals = append(vals, row.L2MissesPerKiloInstr)
		}
	}
	if len(vals) == 0 || stats.Min(vals) == 0 {
		return 0
	}
	return stats.Max(vals) / stats.Min(vals)
}

// BestRelativeSpeedup returns the PDF-over-WS speedup when each scheduler
// uses its own best task size (the paper reports 1.17X on 32 cores).
func (r *Figure6Result) BestRelativeSpeedup(cores int) float64 {
	best := func(sched string) int64 {
		var best int64
		for _, row := range r.Rows {
			if row.Cores == cores && row.Scheduler == sched && (best == 0 || row.Cycles < best) {
				best = row.Cycles
			}
		}
		return best
	}
	pdf, ws := best("pdf"), best("ws")
	if pdf == 0 {
		return 0
	}
	return float64(ws) / float64(pdf)
}

// String renders the three panels of Figure 6.
func (r *Figure6Result) String() string {
	var b strings.Builder
	for _, cores := range []int{32, 16} {
		sizes := r.Sizes(cores)
		if len(sizes) == 0 {
			continue
		}
		fmt.Fprintf(&b, "Figure 6: Mergesort task granularity on %d cores (capacity scale 1/%d)\n", cores, r.Scale)
		t := stats.NewTable("task ws (KB)", "pdf misses/Ki", "ws misses/Ki", "pdf cycles", "ws cycles", "ws/pdf")
		for _, size := range sizes {
			pdf := r.Row(cores, "pdf", size)
			ws := r.Row(cores, "ws", size)
			if pdf == nil || ws == nil {
				continue
			}
			ratio := 0.0
			if pdf.Cycles > 0 {
				ratio = float64(ws.Cycles) / float64(pdf.Cycles)
			}
			t.AddRow(
				fmt.Sprintf("%.0f", float64(size)/1024),
				fmt.Sprintf("%.3f", pdf.L2MissesPerKiloInstr),
				fmt.Sprintf("%.3f", ws.L2MissesPerKiloInstr),
				fmt.Sprint(pdf.Cycles), fmt.Sprint(ws.Cycles),
				fmt.Sprintf("%.2f", ratio),
			)
		}
		b.WriteString(t.String())
		fmt.Fprintf(&b, "miss spread across task sizes: pdf %.2fx, ws %.2fx; best-vs-best PDF/WS speedup %.2f\n\n",
			r.MissSpread(cores, "pdf"), r.MissSpread(cores, "ws"), r.BestRelativeSpeedup(cores))
	}
	return b.String()
}
