package experiments

import (
	"strings"
	"testing"

	"cmpsched/internal/sweep"
)

// TestIrregularComparisonStructure is the figure's golden structural
// contract: full grid coverage (kernels x families x topologies x
// schedulers), non-degenerate metrics on every row, and a rendering that
// names every panel.
func TestIrregularComparisonStructure(t *testing.T) {
	res, err := IrregularComparison(quick(8))
	if err != nil {
		t.Fatalf("IrregularComparison: %v", err)
	}
	kernels := GraphKernels()
	families := IrregularFamilies()
	topos := IrregularTopologies()
	if want := len(kernels) * len(families) * len(topos) * 2; len(res.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(res.Rows), want)
	}
	for _, kernel := range kernels {
		for _, family := range families {
			for _, topo := range topos {
				for _, sched := range []string{"pdf", "ws"} {
					row := res.Row(kernel, family, 8, topo.String(), sched)
					if row == nil {
						t.Fatalf("missing row %s/%s/%s/%s", kernel, family, topo, sched)
					}
					if row.Cores != 8 {
						t.Errorf("%s/%s/%s/%s: cores = %d", kernel, family, topo, sched, row.Cores)
					}
					if row.Cycles <= 0 || row.L2MissesPerKiloInstr <= 0 || row.MemUtilization <= 0 {
						t.Errorf("degenerate row %+v", row)
					}
				}
			}
		}
	}
	if res.Row("bfs", "grid", 8, "shared", "nope") != nil {
		t.Errorf("Row matched an unknown scheduler")
	}
	out := res.String()
	for _, want := range []string{
		"Irregularity study: bfs", "Irregularity study: sssp",
		"Irregularity study: pagerank", "Irregularity study: triangles",
		"grid", "uniform", "rmat", "private", "PDF miss reduction %",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q", want)
		}
	}
}

// TestIrregularComparisonMetricsAreConsistent checks the derived metrics
// against their defining rows.
func TestIrregularComparisonMetricsAreConsistent(t *testing.T) {
	res, err := IrregularComparison(quick(8))
	if err != nil {
		t.Fatalf("IrregularComparison: %v", err)
	}
	pdf := res.Row("bfs", "uniform", 8, "shared", "pdf")
	ws := res.Row("bfs", "uniform", 8, "shared", "ws")
	wantRed := (ws.L2MissesPerKiloInstr - pdf.L2MissesPerKiloInstr) / ws.L2MissesPerKiloInstr * 100
	if got := res.MissReductionPercent("bfs", "uniform", 8, "shared"); got != wantRed {
		t.Errorf("MissReductionPercent = %f, want %f", got, wantRed)
	}
	wantSpeed := float64(ws.Cycles) / float64(pdf.Cycles)
	if got := res.RelativeSpeedup("bfs", "uniform", 8, "shared"); got != wantSpeed {
		t.Errorf("RelativeSpeedup = %f, want %f", got, wantSpeed)
	}
	collapse := res.MissReductionPercent("bfs", "uniform", 8, "shared") - res.MissReductionPercent("bfs", "uniform", 8, "private")
	if got := res.GapCollapse("bfs", "uniform", 8); got != collapse {
		t.Errorf("GapCollapse = %f, want %f", got, collapse)
	}
	if got := res.MissReductionPercent("bfs", "nope", 8, "shared"); got != 0 {
		t.Errorf("missing family should yield 0, got %f", got)
	}
}

// TestIrregularComparisonSharesSweepCache checks the figure's points are
// cache-addressable like any other sweep job.
func TestIrregularComparisonSharesSweepCache(t *testing.T) {
	opts := quick(8)
	opts.Cache = sweep.NewMemoryCache()
	if _, err := IrregularComparison(opts); err != nil {
		t.Fatalf("warm run: %v", err)
	}
	hits0, misses0 := opts.Cache.Stats()
	if hits0 != 0 || misses0 == 0 {
		t.Fatalf("warm run: hits=%d misses=%d", hits0, misses0)
	}
	if _, err := IrregularComparison(opts); err != nil {
		t.Fatalf("cached run: %v", err)
	}
	hits, misses := opts.Cache.Stats()
	if hits != misses0 || misses != misses0 {
		t.Errorf("cached run should be all hits: hits=%d misses=%d (warm misses=%d)", hits, misses, misses0)
	}
}
