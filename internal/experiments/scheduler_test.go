package experiments

import (
	"strings"
	"testing"
)

// TestSchedulerComparisonShape asserts the comparison's qualitative shape
// at quick scale:
//
//   - the space-bounded scheduler's seq-ordered pools must not miss more
//     than classic WS on the shared L2 for mergesort (constructive sharing:
//     the acceptance criterion of the registry PR), and
//   - ws:nearest must be cycle-identical to classic ws on the shared and
//     private topologies, where its victim order provably degenerates to
//     WS's forward scan — a free end-to-end determinism check.
func TestSchedulerComparisonShape(t *testing.T) {
	res, err := SchedulerComparison(quick(8))
	if err != nil {
		t.Fatalf("SchedulerComparison: %v", err)
	}

	sb := res.Row("mergesort", 8, "shared", "sb")
	ws := res.Row("mergesort", 8, "shared", "ws")
	if sb == nil || ws == nil {
		t.Fatalf("missing mergesort shared rows: sb=%v ws=%v", sb, ws)
	}
	if sb.L2MissesPerKiloInstr > ws.L2MissesPerKiloInstr {
		t.Errorf("space-bounded should not miss more than WS on the shared L2 for mergesort: sb %.3f > ws %.3f MPKI",
			sb.L2MissesPerKiloInstr, ws.L2MissesPerKiloInstr)
	}

	for _, wl := range SchedulerComparisonWorkloads() {
		for _, topo := range []string{"shared", "private"} {
			near := res.Row(wl, 8, topo, "ws:nearest")
			classic := res.Row(wl, 8, topo, "ws")
			if near == nil || classic == nil {
				t.Fatalf("%s/%s: missing ws rows", wl, topo)
			}
			if near.Cycles != classic.Cycles {
				t.Errorf("%s/%s: ws:nearest (%d cycles) must equal classic ws (%d cycles) where the victim orders coincide",
					wl, topo, near.Cycles, classic.Cycles)
			}
		}
	}
}

// TestSchedulerComparisonStructure checks the grid shape, per-row
// bookkeeping and rendering.
func TestSchedulerComparisonStructure(t *testing.T) {
	res, err := SchedulerComparison(quick(8))
	if err != nil {
		t.Fatalf("SchedulerComparison: %v", err)
	}
	workloads := SchedulerComparisonWorkloads()
	topos := SchedulerComparisonTopologies()
	schedulers := SchedulerComparisonSchedulers()
	if want := len(workloads) * len(topos) * len(schedulers); len(res.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(res.Rows), want)
	}
	for _, wl := range workloads {
		for _, topo := range topos {
			for _, sc := range schedulers {
				row := res.Row(wl, 8, topo.String(), sc)
				if row == nil {
					t.Fatalf("missing %s/8/%s/%s row", wl, topo, sc)
				}
				if row.Cycles <= 0 || row.L2MissesPerKiloInstr < 0 {
					t.Errorf("degenerate row %+v", row)
				}
			}
			if best := res.Best(wl, 8, topo.String()); res.Row(wl, 8, topo.String(), best) == nil {
				t.Errorf("%s/%s: Best() returned unknown scheduler %q", wl, topo, best)
			}
		}
	}
	// Classic WS must record steals somewhere in the grid; sb must record
	// its pool bookkeeping fields without poisoning other schedulers'.
	var wsSteals int64
	for _, row := range res.Rows {
		if row.Scheduler == "ws" {
			wsSteals += row.Steals
		}
		if row.Scheduler == "pdf" && (row.Steals != 0 || row.Migrations != 0) {
			t.Errorf("pdf row carries stealing counters: %+v", row)
		}
	}
	if wsSteals == 0 {
		t.Errorf("classic WS recorded no steals across the whole grid")
	}
	if res.Row("mergesort", 8, "shared", "nope") != nil {
		t.Errorf("Row returned a match for an unknown scheduler")
	}
	out := res.String()
	for _, want := range []string{"Scheduler comparison: mergesort", "ws:nearest", "sb", "clustered:4", "vs ws %"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q", want)
		}
	}
}
