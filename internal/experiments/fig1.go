package experiments

import (
	"fmt"
	"sort"
	"strings"

	"cmpsched/internal/dag"
	"cmpsched/internal/imath"
	"cmpsched/internal/stats"
	"cmpsched/internal/sweep"
	"cmpsched/internal/workload"
)

// Figure1Row gives the shared-L2 misses charged to the tasks of one merge
// level of Mergesort under each scheduler.
type Figure1Row struct {
	// Level is the recursion depth from the root (0 = the final merge).
	Level int
	// PDFMisses and WSMisses are the L2 misses incurred by tasks at this
	// level.
	PDFMisses int64
	WSMisses  int64
}

// Figure1Result reproduces the phenomenon pictured in Figure 1: when sorting
// an array about the size of the shared cache on P cores, PDF incurs
// (almost) no capacity misses in the top log P merge levels while WS misses
// throughout, because each WS core works on a disjoint sub-array and the
// aggregate working set (2x the array) does not fit.
type Figure1Result struct {
	Cores      int
	L2Bytes    int64
	ArrayBytes int64
	Rows       []Figure1Row
	PDFTotal   int64
	WSTotal    int64
	Scale      int64
}

// Figure1 runs Mergesort with an input sized to the shared L2 of the 8-core
// default configuration and attributes L2 misses to merge levels.
func Figure1(opts Options) (*Figure1Result, error) {
	cfg, err := opts.scaledDefault(8)
	if err != nil {
		return nil, err
	}
	elemBytes := int64(4)
	elements := cfg.L2.SizeBytes / elemBytes // input array of CP bytes
	msCfg := opts.mergesortConfig()
	msCfg.Elements = elements
	msCfg.TaskWorkingSetBytes = imath.Max(2<<10, cfg.L2.SizeBytes/64)

	res := &Figure1Result{
		Cores:      cfg.Cores,
		L2Bytes:    cfg.L2.SizeBytes,
		ArrayBytes: elements * elemBytes,
		Scale:      opts.effectiveScale(),
	}
	build := func() (*dag.DAG, error) {
		d, _, err := workload.NewMergesort(msCfg).Build()
		return d, err
	}
	params := fmt.Sprintf("%+v", msCfg)
	var jobs []sweep.Job
	for _, schedName := range []string{"pdf", "ws"} {
		jobs = append(jobs,
			sweep.NewJob("mergesort", params, schedName, cfg, build).
				WithDerive("levels", sweep.DeriveLevelMisses))
	}
	results, err := opts.run(jobs)
	if err != nil {
		return nil, fmt.Errorf("figure1: %w", err)
	}

	byLevel := map[int]*Figure1Row{}
	for i, schedName := range []string{"pdf", "ws"} {
		for level, misses := range sweep.LevelMisses(results[i].Derived) {
			row, ok := byLevel[level]
			if !ok {
				row = &Figure1Row{Level: level}
				byLevel[level] = row
			}
			if schedName == "pdf" {
				row.PDFMisses += misses
				res.PDFTotal += misses
			} else {
				row.WSMisses += misses
				res.WSTotal += misses
			}
		}
	}
	levels := make([]int, 0, len(byLevel))
	for l := range byLevel {
		levels = append(levels, l)
	}
	sort.Ints(levels)
	for _, l := range levels {
		res.Rows = append(res.Rows, *byLevel[l])
	}
	return res, nil
}

// TopLevelsReductionPercent returns the reduction in misses PDF achieves over
// WS within the top `levels` merge levels (the log P levels of Figure 1).
func (r *Figure1Result) TopLevelsReductionPercent(levels int) float64 {
	var pdf, ws int64
	for _, row := range r.Rows {
		if row.Level < levels {
			pdf += row.PDFMisses
			ws += row.WSMisses
		}
	}
	if ws == 0 {
		return 0
	}
	return float64(ws-pdf) / float64(ws) * 100
}

// String renders the per-level miss comparison.
func (r *Figure1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1: Mergesort of a cache-sized array (%d KB) on %d cores, misses by merge level (capacity scale 1/%d)\n",
		r.ArrayBytes/1024, r.Cores, r.Scale)
	t := stats.NewTable("level (0 = final merge)", "pdf misses", "ws misses", "pdf/ws")
	for _, row := range r.Rows {
		ratio := 0.0
		if row.WSMisses > 0 {
			ratio = float64(row.PDFMisses) / float64(row.WSMisses)
		}
		t.AddRow(fmt.Sprint(row.Level), fmt.Sprint(row.PDFMisses), fmt.Sprint(row.WSMisses), fmt.Sprintf("%.2f", ratio))
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "total misses: pdf %d, ws %d; PDF reduction in the top log2(P)=%d levels: %.1f%%\n\n",
		r.PDFTotal, r.WSTotal, logP(r.Cores), r.TopLevelsReductionPercent(logP(r.Cores)))
	return b.String()
}

func logP(p int) int {
	l := 0
	for v := 1; v < p; v <<= 1 {
		l++
	}
	return l
}
