package experiments

import (
	"fmt"
	"strings"

	"cmpsched/internal/stats"
	"cmpsched/internal/sweep"
)

// Figure3Row is one point of Figure 3: a benchmark on one 45 nm
// configuration under one scheduler.
type Figure3Row struct {
	Workload  string
	Cores     int
	Scheduler string
	Cycles    int64
	// L2SizeBytes records the (scaled) cache size of the configuration,
	// which shrinks as cores are added within the fixed technology.
	L2SizeBytes    int64
	MemUtilization float64
}

// Figure3Result holds the execution-time curves of Figure 3.
type Figure3Result struct {
	Rows  []Figure3Row
	Scale int64
}

// Figure3Workloads lists the benchmarks of Figure 3.
func Figure3Workloads() []string { return []string{"hashjoin", "mergesort"} }

// Figure3 reproduces Figure 3: execution time of Hash Join and Mergesort
// under PDF and WS across the 45 nm single-technology design space (Table 3),
// where adding cores shrinks the shared L2.
func Figure3(opts Options) (*Figure3Result, error) {
	res := &Figure3Result{Scale: opts.effectiveScale()}
	coreList := opts.coresOrDefault([]int{1, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24, 26})
	type point struct {
		wl    string
		cores int
	}
	var g grid[point]
	for _, wl := range Figure3Workloads() {
		for _, cores := range coreList {
			cfg, err := opts.scaled45nm(cores)
			if err != nil {
				return nil, err
			}
			jobs, err := opts.schedulerJobs(wl, cfg, false)
			if err != nil {
				return nil, err
			}
			g.add(point{wl, cores}, jobs...)
		}
	}
	err := runGrid(opts, &g, func(pt point, rs []sweep.Result) {
		pdf, ws := rs[0].Sim, rs[1].Sim
		res.Rows = append(res.Rows,
			Figure3Row{Workload: pt.wl, Cores: pt.cores, Scheduler: "pdf", Cycles: pdf.Cycles, L2SizeBytes: pdf.Config.L2.SizeBytes, MemUtilization: pdf.MemUtilization},
			Figure3Row{Workload: pt.wl, Cores: pt.cores, Scheduler: "ws", Cycles: ws.Cycles, L2SizeBytes: ws.Config.L2.SizeBytes, MemUtilization: ws.MemUtilization},
		)
	})
	if err != nil {
		return nil, fmt.Errorf("figure3: %w", err)
	}
	return res, nil
}

// Cycles returns the execution time for a workload/cores/scheduler point, or
// 0 if missing.
func (r *Figure3Result) Cycles(workload string, cores int, scheduler string) int64 {
	for _, row := range r.Rows {
		if row.Workload == workload && row.Cores == cores && row.Scheduler == scheduler {
			return row.Cycles
		}
	}
	return 0
}

// BestCores returns the core count with the lowest execution time for the
// workload under the scheduler (the design-point discussion of §5.2).
func (r *Figure3Result) BestCores(workload, scheduler string) (cores int, cycles int64) {
	for _, row := range r.Rows {
		if row.Workload != workload || row.Scheduler != scheduler {
			continue
		}
		if cycles == 0 || row.Cycles < cycles {
			cycles = row.Cycles
			cores = row.Cores
		}
	}
	return cores, cycles
}

// DesignFreedomCores returns the core counts at which PDF performs at least
// as well as the best WS point — the paper's argument that PDF broadens the
// designer's choice of design points.
func (r *Figure3Result) DesignFreedomCores(workload string) []int {
	_, bestWS := r.BestCores(workload, "ws")
	var out []int
	for _, row := range r.Rows {
		if row.Workload == workload && row.Scheduler == "pdf" && row.Cycles <= bestWS {
			out = append(out, row.Cores)
		}
	}
	return out
}

// String renders the Figure 3 series.
func (r *Figure3Result) String() string {
	var b strings.Builder
	for _, wl := range Figure3Workloads() {
		fmt.Fprintf(&b, "Figure 3: %s execution time, 45nm single technology (capacity scale 1/%d)\n", wl, r.Scale)
		t := stats.NewTable("cores", "L2 KB", "pdf cycles", "ws cycles", "pdf/ws", "mem util pdf %")
		for _, row := range r.Rows {
			if row.Workload != wl || row.Scheduler != "pdf" {
				continue
			}
			ws := r.Cycles(wl, row.Cores, "ws")
			ratio := 0.0
			if row.Cycles > 0 {
				ratio = float64(ws) / float64(row.Cycles)
			}
			t.AddRow(
				fmt.Sprint(row.Cores),
				fmt.Sprintf("%.0f", float64(row.L2SizeBytes)/1024),
				fmt.Sprint(row.Cycles),
				fmt.Sprint(ws),
				fmt.Sprintf("%.2f", ratio),
				fmt.Sprintf("%.1f", row.MemUtilization*100),
			)
		}
		b.WriteString(t.String())
		pdfBest, _ := r.BestCores(wl, "pdf")
		wsBest, _ := r.BestCores(wl, "ws")
		fmt.Fprintf(&b, "best design point: pdf=%d cores, ws=%d cores; pdf matches best-WS at cores %v\n\n",
			pdfBest, wsBest, r.DesignFreedomCores(wl))
	}
	return b.String()
}
