package experiments

import (
	"reflect"
	"strings"
	"testing"

	"cmpsched/internal/sweep"
)

// quick returns fast options for unit tests.
func quick(cores ...int) Options {
	return Options{Quick: true, Cores: cores}
}

func TestOptionsScaling(t *testing.T) {
	o := Options{}
	if o.effectiveScale() != 32 || o.quickDiv() != 1 {
		t.Fatalf("default options wrong: scale=%d", o.effectiveScale())
	}
	q := Options{Quick: true}
	if q.effectiveScale() != 32*16 || q.quickDiv() != 16 {
		t.Fatalf("quick options wrong")
	}
	s := Options{Scale: 8}
	if s.effectiveScale() != 8 {
		t.Fatalf("explicit scale ignored")
	}
	if got := (Options{Cores: []int{3}}).coresOrDefault([]int{1, 2}); len(got) != 1 || got[0] != 3 {
		t.Fatalf("coresOrDefault wrong")
	}
}

func TestFiguresDeterministicAcrossWorkers(t *testing.T) {
	serial := quick(2, 8, 18)
	serial.Workers = 1
	parallel := quick(2, 8, 18)
	parallel.Workers = 8

	s3, err := Figure3(serial)
	if err != nil {
		t.Fatalf("Figure3 serial: %v", err)
	}
	p3, err := Figure3(parallel)
	if err != nil {
		t.Fatalf("Figure3 parallel: %v", err)
	}
	if !reflect.DeepEqual(s3, p3) {
		t.Errorf("Figure3 differs between 1 and 8 workers")
	}

	s1, err := Figure1(serial)
	if err != nil {
		t.Fatalf("Figure1 serial: %v", err)
	}
	p1, err := Figure1(parallel)
	if err != nil {
		t.Fatalf("Figure1 parallel: %v", err)
	}
	if !reflect.DeepEqual(s1, p1) {
		t.Errorf("Figure1 differs between 1 and 8 workers")
	}
}

func TestFigureCacheReuse(t *testing.T) {
	cache := sweep.NewMemoryCache()
	opts := quick(2, 8)
	opts.Cache = cache

	first, err := Figure3(opts)
	if err != nil {
		t.Fatalf("Figure3: %v", err)
	}
	hits, misses := cache.Stats()
	if hits != 0 || misses == 0 {
		t.Fatalf("first run: hits=%d misses=%d, want cold cache", hits, misses)
	}
	second, err := Figure3(opts)
	if err != nil {
		t.Fatalf("Figure3 (cached): %v", err)
	}
	hits, _ = cache.Stats()
	if hits != misses {
		t.Errorf("second run: hits=%d, want every lookup (%d) served", hits, misses)
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("cached figure differs from computed figure")
	}
	// A different figure sharing the cache must not collide: Figure4 uses
	// the same workloads on different configurations.
	if _, err := Figure4(opts); err != nil {
		t.Fatalf("Figure4 over shared cache: %v", err)
	}
}

func TestFigure2ShapesHold(t *testing.T) {
	res, err := Figure2(quick(1, 4, 16))
	if err != nil {
		t.Fatalf("Figure2: %v", err)
	}
	// LU runs to 16 cores, the others too: 3 workloads x 3 core counts x
	// 2 schedulers.
	if len(res.Rows) != 18 {
		t.Fatalf("rows = %d, want 18", len(res.Rows))
	}
	for _, wl := range []string{"hashjoin", "mergesort"} {
		// PDF never loses to WS at 16 cores and reduces misses.
		if rel := res.RelativeSpeedup(wl, 16); rel < 1.0 {
			t.Errorf("%s: PDF/WS relative speedup at 16 cores = %.3f, want >= 1.0", wl, rel)
		}
		if red := res.MissReductionPercent(wl, 16); red <= 0 {
			t.Errorf("%s: PDF should reduce L2 misses at 16 cores, got %.1f%%", wl, red)
		}
		// Speedups grow with core count.
		if res.Row(wl, 16, "pdf").Speedup <= res.Row(wl, 1, "pdf").Speedup {
			t.Errorf("%s: speedup does not grow with cores", wl)
		}
	}
	// LU: schedulers are within a few percent of each other (paper: the
	// reduced misses scarcely affect performance).
	if rel := res.RelativeSpeedup("lu", 16); rel < 0.9 || rel > 1.15 {
		t.Errorf("lu: PDF and WS should perform alike, relative speedup %.3f", rel)
	}
	// LU uses far less off-chip bandwidth than Hash Join (§5.1).
	luUtil := res.Row("lu", 16, "pdf").MemUtilization
	hjUtil := res.Row("hashjoin", 16, "pdf").MemUtilization
	if luUtil >= hjUtil {
		t.Errorf("lu bandwidth utilisation (%.2f) should be below hashjoin's (%.2f)", luUtil, hjUtil)
	}
	if res.Row("lu", 32, "pdf") != nil {
		t.Errorf("LU should not be reported above 16 cores")
	}
	if !strings.Contains(res.String(), "mergesort") {
		t.Errorf("String output incomplete")
	}
	if res.Row("nope", 1, "pdf") != nil || res.RelativeSpeedup("nope", 1) != 0 {
		t.Errorf("missing rows should be nil/0")
	}
}

func TestFigure3ShapesHold(t *testing.T) {
	res, err := Figure3(quick(2, 8, 18, 26))
	if err != nil {
		t.Fatalf("Figure3: %v", err)
	}
	if len(res.Rows) != 2*4*2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, wl := range Figure3Workloads() {
		// Adding cores beyond 2 improves performance initially.
		if res.Cycles(wl, 8, "pdf") >= res.Cycles(wl, 2, "pdf") {
			t.Errorf("%s: 8 cores not faster than 2 cores under PDF", wl)
		}
		// PDF at least matches WS at the largest core counts (smallest caches).
		if res.Cycles(wl, 26, "pdf") > res.Cycles(wl, 26, "ws") {
			t.Errorf("%s: PDF slower than WS at 26 cores", wl)
		}
		if cores, cycles := res.BestCores(wl, "pdf"); cores == 0 || cycles == 0 {
			t.Errorf("%s: BestCores empty", wl)
		}
		if len(res.DesignFreedomCores(wl)) == 0 {
			t.Errorf("%s: PDF should match best-WS at some design points", wl)
		}
	}
	if res.Cycles("mergesort", 99, "pdf") != 0 {
		t.Errorf("missing point should be 0")
	}
	if !strings.Contains(res.String(), "45nm") {
		t.Errorf("String output incomplete")
	}
}

func TestFigure4And5(t *testing.T) {
	f4, err := Figure4(quick())
	if err != nil {
		t.Fatalf("Figure4: %v", err)
	}
	if len(f4.Rows) != 2*2*2 {
		t.Fatalf("figure4 rows = %d", len(f4.Rows))
	}
	for _, wl := range []string{"hashjoin", "mergesort"} {
		for _, p := range []int64{7, 19} {
			if f4.RelativeSpeedup(wl, p) < 0.97 {
				t.Errorf("figure4 %s at L2 hit %d: PDF slower than WS (%.3f)", wl, p, f4.RelativeSpeedup(wl, p))
			}
		}
	}
	if !strings.Contains(f4.String(), "figure4") {
		t.Errorf("figure4 String incomplete")
	}

	f5, err := Figure5(quick())
	if err != nil {
		t.Fatalf("Figure5: %v", err)
	}
	if len(f5.Rows) != 2*6*2 {
		t.Fatalf("figure5 rows = %d", len(f5.Rows))
	}
	for _, wl := range []string{"hashjoin", "mergesort"} {
		// Execution time grows with memory latency under both schedulers.
		if f5.Cycles(wl, "pdf", 1100) <= f5.Cycles(wl, "pdf", 100) {
			t.Errorf("figure5 %s: higher memory latency should cost cycles", wl)
		}
		if f5.RelativeSpeedup(wl, 1100) < 0.97 {
			t.Errorf("figure5 %s: PDF should not lose at high latency", wl)
		}
	}
}

func TestFigure6ShapesHold(t *testing.T) {
	res, err := Figure6(quick(16))
	if err != nil {
		t.Fatalf("Figure6: %v", err)
	}
	if len(res.Rows) == 0 {
		t.Fatalf("no rows")
	}
	sizes := res.Sizes(16)
	if len(sizes) < 2 {
		t.Fatalf("too few sizes: %v", sizes)
	}
	largest, smallest := sizes[0], sizes[len(sizes)-1]
	pdfLarge := res.Row(16, "pdf", largest)
	pdfSmall := res.Row(16, "pdf", smallest)
	if pdfLarge == nil || pdfSmall == nil {
		t.Fatalf("missing rows")
	}
	// PDF's cache performance improves considerably with smaller tasks.
	if pdfSmall.L2MissesPerKiloInstr >= pdfLarge.L2MissesPerKiloInstr {
		t.Errorf("PDF misses should fall with smaller tasks: %.3f -> %.3f",
			pdfLarge.L2MissesPerKiloInstr, pdfSmall.L2MissesPerKiloInstr)
	}
	// WS is comparatively flat: PDF's spread across task sizes exceeds WS's.
	if res.MissSpread(16, "pdf") <= res.MissSpread(16, "ws") {
		t.Errorf("PDF miss spread (%.2f) should exceed WS's (%.2f)",
			res.MissSpread(16, "pdf"), res.MissSpread(16, "ws"))
	}
	if res.BestRelativeSpeedup(16) < 1.0 {
		t.Errorf("best-vs-best PDF/WS speedup %.3f < 1", res.BestRelativeSpeedup(16))
	}
	if !strings.Contains(res.String(), "task granularity") {
		t.Errorf("String output incomplete")
	}
}

func TestFigure1ShapesHold(t *testing.T) {
	res, err := Figure1(quick())
	if err != nil {
		t.Fatalf("Figure1: %v", err)
	}
	if res.PDFTotal >= res.WSTotal {
		t.Errorf("PDF total misses (%d) should be below WS's (%d) on a cache-sized sort", res.PDFTotal, res.WSTotal)
	}
	if res.TopLevelsReductionPercent(logP(res.Cores)) <= 0 {
		t.Errorf("PDF should eliminate misses in the top log P merge levels")
	}
	if len(res.Rows) == 0 || !strings.Contains(res.String(), "merge level") {
		t.Errorf("result incomplete")
	}
	if logP(8) != 3 || logP(1) != 0 {
		t.Errorf("logP wrong")
	}
}

func TestGranularityShapesHold(t *testing.T) {
	res, err := Granularity(quick())
	if err != nil {
		t.Fatalf("Granularity: %v", err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.CoarseCycles == 0 || row.FineCycles == 0 {
			t.Fatalf("missing cycles in %+v", row)
		}
	}
	// The serial-merge Mergesort has a sequential bottleneck: the
	// fine-grained version must be clearly faster under both schedulers.
	for _, sched := range []string{"pdf", "ws"} {
		if sp := res.Row("mergesort", sched).Speedup(); sp < 1.2 {
			t.Errorf("mergesort fine-grained speedup under %s = %.2f, want >= 1.2", sched, sp)
		}
	}
	// Fine-grained Hash Join is at least competitive with the original.
	if sp := res.Row("hashjoin", "pdf").Speedup(); sp < 0.95 {
		t.Errorf("hashjoin fine-grained speedup = %.2f, want >= 0.95", sp)
	}
	if res.Row("nope", "pdf") != nil {
		t.Errorf("missing row should be nil")
	}
	if !strings.Contains(res.String(), "coarse") {
		t.Errorf("String output incomplete")
	}
}

func TestProfilerComparisonShapesHold(t *testing.T) {
	res, err := ProfilerComparison(quick())
	if err != nil {
		t.Fatalf("ProfilerComparison: %v", err)
	}
	if res.SpeedupX() < 2 {
		t.Errorf("LruTree should be several times faster than SetAssoc, got %.1fX", res.SpeedupX())
	}
	if res.AvgRevisits < 3 {
		t.Errorf("SetAssoc should revisit references many times, got %.1f", res.AvgRevisits)
	}
	if res.MaxWorkingSetMismatch != 0 {
		t.Errorf("working sets should agree exactly, mismatch %.4f", res.MaxWorkingSetMismatch)
	}
	if res.Tasks == 0 || res.Groups <= res.Tasks/10 || res.Refs == 0 {
		t.Errorf("result incomplete: %+v", res)
	}
	if !strings.Contains(res.String(), "LruTree") {
		t.Errorf("String output incomplete")
	}
}

func TestFigure8ShapesHold(t *testing.T) {
	res, err := Figure8(quick(16, 8))
	if err != nil {
		t.Fatalf("Figure8: %v", err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(res.Rows))
	}
	for _, cores := range []int{16, 8} {
		for _, scheme := range []Figure8Scheme{SchemePrevious, SchemeDAG, SchemeActual} {
			row := res.Row(cores, scheme)
			if row == nil || row.Cycles == 0 || row.Normalized < 1.0 {
				t.Fatalf("missing or malformed row for %d/%s: %+v", cores, scheme, row)
			}
		}
	}
	// The automatically regenerated version stays close to the best
	// scheme (the paper reports within 5%; the scaled quick runs allow a
	// looser 30% band while still excluding pathological selections).
	if worst := res.WorstNormalized(SchemeActual); worst > 1.3 {
		t.Errorf("actual scheme normalized time %.3f too far from best", worst)
	}
	if res.Row(99, SchemeDAG) != nil {
		t.Errorf("missing row should be nil")
	}
	if !strings.Contains(res.String(), "task-coarsening") {
		t.Errorf("String output incomplete")
	}
}
