package experiments

import (
	"fmt"
	"strings"
	"time"

	"cmpsched/internal/profile"
	"cmpsched/internal/stats"
	"cmpsched/internal/workload"
)

// ProfilerComparisonResult reproduces the §6.1 measurement: profiling every
// task group of a Mergesort trace with the one-pass LruTree algorithm versus
// the multi-pass SetAssoc baseline (253 minutes vs 13.4 minutes, 18X, in the
// paper).  Wall-clock times here are for the scaled trace; the claim being
// reproduced is the order-of-magnitude relative gap and the reason for it
// (SetAssoc revisits each reference once per level of the group hierarchy).
type ProfilerComparisonResult struct {
	Tasks        int
	Groups       int
	Refs         int64
	LruTreeTime  time.Duration
	SetAssocTime time.Duration
	// AvgRevisits is how many times SetAssoc processed each reference on
	// average (the paper reports over 22).
	AvgRevisits float64
	// MaxWorkingSetMismatch is the largest relative difference between
	// the two profilers' per-group working sets (a cross-validation; the
	// stack model and the fully-associative simulation agree exactly).
	MaxWorkingSetMismatch float64
	Scale                 int64
}

// SpeedupX returns how many times faster LruTree ran than SetAssoc.
func (r *ProfilerComparisonResult) SpeedupX() float64 {
	if r.LruTreeTime <= 0 {
		return 0
	}
	return float64(r.SetAssocTime) / float64(r.LruTreeTime)
}

// ProfilerComparison profiles a Mergesort trace with both algorithms and
// times them.
func ProfilerComparison(opts Options) (*ProfilerComparisonResult, error) {
	msCfg := opts.mergesortConfig()
	if !opts.Quick {
		// A moderate trace keeps the multi-pass baseline's runtime in
		// tens of seconds while preserving the hierarchy depth that
		// causes its slowdown.
		msCfg.Elements = 256 << 10
		msCfg.TaskWorkingSetBytes = 8 << 10
	}
	d, tree, err := workload.NewMergesort(msCfg).Build()
	if err != nil {
		return nil, err
	}
	cfg := profile.Config{LineBytes: 128, CacheSizes: []int64{8 << 10, 32 << 10, 128 << 10, 512 << 10, 2 << 20}}

	start := time.Now()
	pr, err := profile.NewLruTree(cfg).ProfileDAG(d)
	if err != nil {
		return nil, err
	}
	lruStats := pr.AnnotateTree(tree)
	lruTime := time.Since(start)

	start = time.Now()
	sa := profile.NewSetAssoc(cfg, 1<<30) // fully associative, comparable to the stack model
	saStats, err := sa.AnnotateTree(d, tree)
	if err != nil {
		return nil, err
	}
	saTime := time.Since(start)

	var groupRefs int64
	maxMismatch := 0.0
	for id := range lruStats {
		groupRefs += saStats[id].Refs
		if lruStats[id].WorkingSetBytes > 0 {
			diff := float64(saStats[id].WorkingSetBytes-lruStats[id].WorkingSetBytes) / float64(lruStats[id].WorkingSetBytes)
			if diff < 0 {
				diff = -diff
			}
			if diff > maxMismatch {
				maxMismatch = diff
			}
		}
	}
	res := &ProfilerComparisonResult{
		Tasks:                 d.NumTasks(),
		Groups:                tree.NumGroups(),
		Refs:                  d.TotalRefs(),
		LruTreeTime:           lruTime,
		SetAssocTime:          saTime,
		MaxWorkingSetMismatch: maxMismatch,
		Scale:                 opts.effectiveScale(),
	}
	if res.Refs > 0 {
		res.AvgRevisits = float64(groupRefs) / float64(res.Refs)
	}
	return res, nil
}

// String renders the comparison.
func (r *ProfilerComparisonResult) String() string {
	var b strings.Builder
	b.WriteString("§6.1 working-set profiler comparison (LruTree vs SetAssoc)\n")
	t := stats.NewTable("metric", "value")
	t.AddRow("tasks", fmt.Sprint(r.Tasks))
	t.AddRow("task groups", fmt.Sprint(r.Groups))
	t.AddRow("references", fmt.Sprint(r.Refs))
	t.AddRow("LruTree (one pass)", r.LruTreeTime.String())
	t.AddRow("SetAssoc (multi pass)", r.SetAssocTime.String())
	t.AddRow("SetAssoc/LruTree speedup", fmt.Sprintf("%.1fX", r.SpeedupX()))
	t.AddRow("avg revisits per reference", fmt.Sprintf("%.1f", r.AvgRevisits))
	t.AddRow("max working-set mismatch", fmt.Sprintf("%.4f", r.MaxWorkingSetMismatch))
	b.WriteString(t.String())
	b.WriteString("\n")
	return b.String()
}
