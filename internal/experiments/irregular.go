package experiments

import (
	"fmt"
	"strings"

	"cmpsched/internal/cache"
	"cmpsched/internal/graph"
	"cmpsched/internal/stats"
	"cmpsched/internal/sweep"
)

// IrregularRow is one point of the irregularity study: one graph kernel on
// one generator family, one L2 topology and one scheduler.
type IrregularRow struct {
	Kernel    string
	Family    string
	Cores     int
	Topology  string
	Scheduler string
	// Cycles is the parallel execution time.
	Cycles int64
	// L2MissesPerKiloInstr is the paper's primary cache metric, aggregated
	// over every L2 slice.
	L2MissesPerKiloInstr float64
	// MemUtilization is the off-chip bandwidth utilisation.
	MemUtilization float64
}

// IrregularResult holds every row of the irregularity study.
type IrregularResult struct {
	Rows  []IrregularRow
	Scale int64
}

// IrregularFamilies lists the generator families the study sweeps, ordered
// from regular to most skewed: the 2D lattice is the regular baseline whose
// access pattern a static schedule could predict, the uniform random graph
// scatters neighbours evenly, and RMAT adds a power-law degree skew.
func IrregularFamilies() []string {
	return []string{graph.FamilyGrid, graph.FamilyUniform, graph.FamilyRMAT}
}

// IrregularTopologies lists the cache organisations the study contrasts:
// the paper's shared L2 and the per-core private slices that remove the
// possibility of constructive sharing.
func IrregularTopologies() []cache.Topology {
	return []cache.Topology{cache.Shared(), cache.Private()}
}

// IrregularComparison runs the PDF-vs-WS irregularity study: the paper's
// central question — does fine-grained PDF scheduling keep working sets
// shared? — asked on workloads whose access patterns are data-dependent.
// Every graph kernel runs on every generator family, under both schedulers,
// on a shared and on a private L2 of equal total capacity.
//
// The regular benchmarks' result (PDF's L2-miss advantage on a shared L2,
// collapsing on private slices) is probed here per kernel and family: the
// level-synchronous kernels (BFS, SSSP, PageRank) co-schedule tasks that
// share the frontier, the CSR arrays and the hot vertex-vector lines, while
// triangle counting is one wide fork-join phase with list-sized gathers.
func IrregularComparison(opts Options) (*IrregularResult, error) {
	res := &IrregularResult{Scale: opts.effectiveScale()}
	type point struct {
		kernel string
		family string
		cores  int
		topo   string
	}
	var g grid[point]
	for _, kernel := range GraphKernels() {
		for _, cores := range opts.coresOrDefault([]int{8}) {
			base, err := opts.scaledDefault(cores)
			if err != nil {
				return nil, err
			}
			for _, family := range IrregularFamilies() {
				for _, topo := range IrregularTopologies() {
					cfg := base.WithTopology(topo)
					jobs, err := opts.graphSchedulerJobs(kernel, family, cfg)
					if err != nil {
						return nil, err
					}
					g.add(point{kernel, family, cores, topo.String()}, jobs...)
				}
			}
		}
	}
	err := runGrid(opts, &g, func(pt point, rs []sweep.Result) {
		for i, sc := range []string{"pdf", "ws"} {
			sim := rs[i].Sim
			res.Rows = append(res.Rows, IrregularRow{
				Kernel: pt.kernel, Family: pt.family, Cores: pt.cores,
				Topology: pt.topo, Scheduler: sc,
				Cycles:               sim.Cycles,
				L2MissesPerKiloInstr: sim.L2MissesPerKiloInstr(),
				MemUtilization:       sim.MemUtilization,
			})
		}
	})
	if err != nil {
		return nil, fmt.Errorf("irregular comparison: %w", err)
	}
	return res, nil
}

// Row returns the row for a kernel/family/cores/topology/scheduler
// combination, or nil.
func (r *IrregularResult) Row(kernel, family string, cores int, topology, scheduler string) *IrregularRow {
	for i := range r.Rows {
		row := &r.Rows[i]
		if row.Kernel == kernel && row.Family == family && row.Cores == cores && row.Topology == topology && row.Scheduler == scheduler {
			return row
		}
	}
	return nil
}

// MissReductionPercent returns the relative reduction in L2 misses per 1000
// instructions of PDF vs WS for one kernel/family/cores/topology, in
// percent.  Positive means PDF misses less.
func (r *IrregularResult) MissReductionPercent(kernel, family string, cores int, topology string) float64 {
	pdf := r.Row(kernel, family, cores, topology, "pdf")
	ws := r.Row(kernel, family, cores, topology, "ws")
	if pdf == nil || ws == nil || ws.L2MissesPerKiloInstr == 0 {
		return 0
	}
	return (ws.L2MissesPerKiloInstr - pdf.L2MissesPerKiloInstr) / ws.L2MissesPerKiloInstr * 100
}

// RelativeSpeedup returns the PDF-over-WS speedup (WS cycles / PDF cycles)
// for one kernel/family/cores/topology, or 0 if missing.
func (r *IrregularResult) RelativeSpeedup(kernel, family string, cores int, topology string) float64 {
	pdf := r.Row(kernel, family, cores, topology, "pdf")
	ws := r.Row(kernel, family, cores, topology, "ws")
	if pdf == nil || ws == nil || pdf.Cycles == 0 {
		return 0
	}
	return float64(ws.Cycles) / float64(pdf.Cycles)
}

// GapCollapse returns the shared-topology PDF miss reduction minus the
// private-topology one, in percentage points: how much of PDF's cache
// advantage the private organisation forfeits on this kernel and family.
func (r *IrregularResult) GapCollapse(kernel, family string, cores int) float64 {
	return r.MissReductionPercent(kernel, family, cores, "shared") - r.MissReductionPercent(kernel, family, cores, "private")
}

// String renders one panel per kernel: families and topologies down, PDF
// and WS side by side.
func (r *IrregularResult) String() string {
	var b strings.Builder
	for _, kernel := range GraphKernels() {
		rows := false
		t := stats.NewTable("family", "cores", "topology", "sched", "cycles", "L2 misses/1000 instr", "PDF miss reduction %", "PDF/WS speedup", "mem util %")
		for _, row := range r.Rows {
			if row.Kernel != kernel {
				continue
			}
			rows = true
			reduction, rel := "", ""
			if row.Scheduler == "pdf" {
				reduction = fmt.Sprintf("%.1f", r.MissReductionPercent(kernel, row.Family, row.Cores, row.Topology))
				rel = fmt.Sprintf("%.2f", r.RelativeSpeedup(kernel, row.Family, row.Cores, row.Topology))
			}
			t.AddRow(
				row.Family, fmt.Sprint(row.Cores), row.Topology, row.Scheduler,
				fmt.Sprint(row.Cycles),
				fmt.Sprintf("%.3f", row.L2MissesPerKiloInstr),
				reduction, rel,
				fmt.Sprintf("%.1f", row.MemUtilization*100),
			)
		}
		if !rows {
			continue
		}
		fmt.Fprintf(&b, "Irregularity study: %s (default configurations, capacity scale 1/%d)\n", kernel, r.Scale)
		b.WriteString(t.String())
		b.WriteString("\n")
	}
	return b.String()
}
