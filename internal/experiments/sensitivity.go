package experiments

import (
	"fmt"
	"strings"

	"cmpsched/internal/config"
	"cmpsched/internal/stats"
	"cmpsched/internal/sweep"
)

// SensitivityRow is one point of Figure 4 or Figure 5.
type SensitivityRow struct {
	Workload  string
	Scheduler string
	// Parameter is the swept value: the L2 hit latency (Figure 4) or the
	// main-memory latency (Figure 5), in cycles.
	Parameter int64
	Cycles    int64
}

// SensitivityResult holds a parameter-sensitivity sweep on the 16-core
// default configuration.
type SensitivityResult struct {
	// Name is "figure4" or "figure5".
	Name      string
	Parameter string
	Rows      []SensitivityRow
	Scale     int64
}

// Figure4 reproduces Figure 4: PDF vs WS on the 16-core default
// configuration with the L2 hit time set to 7 and 19 cycles.  The paper's
// observation: PDF on a slow monolithic shared L2 (19 cycles) still beats WS
// on a fast distributed L2 (7 cycles) because the L2 miss time dominates.
func Figure4(opts Options) (*SensitivityResult, error) {
	return sensitivity(opts, "figure4", "L2 hit cycles", config.L2HitLatencySweep(),
		func(cfg config.CMP, v int64) config.CMP { return cfg.WithL2HitLatency(v) })
}

// Figure5 reproduces Figure 5: PDF vs WS on the 16-core default
// configuration with main-memory latency varied from 100 to 1100 cycles.
func Figure5(opts Options) (*SensitivityResult, error) {
	return sensitivity(opts, "figure5", "memory latency", config.MemLatencySweep(),
		func(cfg config.CMP, v int64) config.CMP { return cfg.WithMemLatency(v) })
}

func sensitivity(opts Options, name, param string, values []int64, apply func(config.CMP, int64) config.CMP) (*SensitivityResult, error) {
	base, err := opts.scaledDefault(16)
	if err != nil {
		return nil, err
	}
	res := &SensitivityResult{Name: name, Parameter: param, Scale: opts.effectiveScale()}
	type point struct {
		wl string
		v  int64
	}
	var g grid[point]
	for _, wl := range []string{"hashjoin", "mergesort"} {
		for _, v := range values {
			cfg := apply(base, v)
			jobs, err := opts.schedulerJobs(wl, cfg, false)
			if err != nil {
				return nil, err
			}
			g.add(point{wl, v}, jobs...)
		}
	}
	err = runGrid(opts, &g, func(pt point, rs []sweep.Result) {
		pdf, ws := rs[0].Sim, rs[1].Sim
		res.Rows = append(res.Rows,
			SensitivityRow{Workload: pt.wl, Scheduler: "pdf", Parameter: pt.v, Cycles: pdf.Cycles},
			SensitivityRow{Workload: pt.wl, Scheduler: "ws", Parameter: pt.v, Cycles: ws.Cycles},
		)
	})
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return res, nil
}

// Cycles returns the execution time for a point, or 0.
func (r *SensitivityResult) Cycles(workload string, scheduler string, parameter int64) int64 {
	for _, row := range r.Rows {
		if row.Workload == workload && row.Scheduler == scheduler && row.Parameter == parameter {
			return row.Cycles
		}
	}
	return 0
}

// RelativeSpeedup returns WS cycles / PDF cycles at the given sweep value.
func (r *SensitivityResult) RelativeSpeedup(workload string, parameter int64) float64 {
	pdf := r.Cycles(workload, "pdf", parameter)
	ws := r.Cycles(workload, "ws", parameter)
	if pdf == 0 {
		return 0
	}
	return float64(ws) / float64(pdf)
}

// SlowPDFBeatsFastWS reports whether PDF at the largest swept parameter value
// still outperforms WS at the smallest — the §5.3 "slow shared cache vs fast
// distributed cache" comparison (meaningful for Figure 4).
func (r *SensitivityResult) SlowPDFBeatsFastWS(workload string) bool {
	if len(r.Rows) == 0 {
		return false
	}
	minP, maxP := r.Rows[0].Parameter, r.Rows[0].Parameter
	for _, row := range r.Rows {
		if row.Parameter < minP {
			minP = row.Parameter
		}
		if row.Parameter > maxP {
			maxP = row.Parameter
		}
	}
	pdfSlow := r.Cycles(workload, "pdf", maxP)
	wsFast := r.Cycles(workload, "ws", minP)
	return pdfSlow > 0 && wsFast > 0 && pdfSlow <= wsFast
}

// String renders the sweep.
func (r *SensitivityResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: varying %s on the 16-core default configuration (capacity scale 1/%d)\n", r.Name, r.Parameter, r.Scale)
	t := stats.NewTable("workload", r.Parameter, "pdf cycles", "ws cycles", "pdf/ws")
	for _, row := range r.Rows {
		if row.Scheduler != "pdf" {
			continue
		}
		ws := r.Cycles(row.Workload, "ws", row.Parameter)
		t.AddRow(row.Workload, fmt.Sprint(row.Parameter), fmt.Sprint(row.Cycles), fmt.Sprint(ws),
			fmt.Sprintf("%.2f", r.RelativeSpeedup(row.Workload, row.Parameter)))
	}
	b.WriteString(t.String())
	if r.Name == "figure4" {
		for _, wl := range []string{"hashjoin", "mergesort"} {
			fmt.Fprintf(&b, "%s: PDF with slow L2 beats WS with fast L2: %v\n", wl, r.SlowPDFBeatsFastWS(wl))
		}
	}
	b.WriteString("\n")
	return b.String()
}
