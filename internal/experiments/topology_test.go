package experiments

import (
	"strings"
	"testing"

	"cmpsched/internal/sweep"
)

// TestTopologyComparisonQualitative asserts the paper's central
// shared-vs-private claim on the topology comparison: PDF's L2-MPKI
// advantage over WS is substantial on the shared L2 and collapses on
// per-core private slices, for the sharing-sensitive workloads.
func TestTopologyComparisonQualitative(t *testing.T) {
	res, err := TopologyComparison(quick(8))
	if err != nil {
		t.Fatalf("TopologyComparison: %v", err)
	}
	for _, wl := range []string{"mergesort", "hashjoin"} {
		shared := res.MissReductionPercent(wl, 8, "shared")
		private := res.MissReductionPercent(wl, 8, "private")
		if shared < 3 {
			t.Errorf("%s: PDF should beat WS by >= 3%% L2 MPKI on the shared L2, got %.1f%%", wl, shared)
		}
		if collapse := res.GapCollapse(wl, 8); collapse < 3 {
			t.Errorf("%s: the PDF advantage should collapse on private slices (shared %.1f%%, private %.1f%%, collapse %.1f points)",
				wl, shared, private, collapse)
		}
	}
}

// TestTopologyComparisonStructure checks the grid shape, the per-row
// bookkeeping and the rendering.
func TestTopologyComparisonStructure(t *testing.T) {
	res, err := TopologyComparison(quick(8))
	if err != nil {
		t.Fatalf("TopologyComparison: %v", err)
	}
	topos := TopologyComparisonTopologies()
	// 3 workloads x 1 core count x len(topos) topologies x 2 schedulers.
	if want := 3 * len(topos) * 2; len(res.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(res.Rows), want)
	}
	for _, topo := range topos {
		row := res.Row("mergesort", 8, topo.String(), "pdf")
		if row == nil {
			t.Fatalf("missing mergesort/8/%s/pdf row", topo)
		}
		if row.Cycles <= 0 || row.L2MissesPerKiloInstr <= 0 {
			t.Errorf("degenerate row %+v", row)
		}
	}
	if res.Row("mergesort", 8, "shared", "nope") != nil {
		t.Errorf("Row returned a match for an unknown scheduler")
	}
	out := res.String()
	for _, want := range []string{"Topology comparison: mergesort", "private", "clustered:2", "PDF miss reduction %"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q", want)
		}
	}
}

// TestTopologyComparisonSharesSweepCache checks that topology points are
// cache-addressable like any other sweep job: a second run against the same
// cache is served entirely from it.
func TestTopologyComparisonSharesSweepCache(t *testing.T) {
	opts := quick(8)
	opts.Cache = sweep.NewMemoryCache()
	if _, err := TopologyComparison(opts); err != nil {
		t.Fatalf("warm run: %v", err)
	}
	hits0, misses0 := opts.Cache.Stats()
	if hits0 != 0 || misses0 == 0 {
		t.Fatalf("warm run: hits=%d misses=%d", hits0, misses0)
	}
	if _, err := TopologyComparison(opts); err != nil {
		t.Fatalf("cached run: %v", err)
	}
	hits, misses := opts.Cache.Stats()
	if hits != misses0 || misses != misses0 {
		t.Errorf("cached run should be all hits: hits=%d misses=%d (warm misses=%d)", hits, misses, misses0)
	}
}
