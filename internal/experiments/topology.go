package experiments

import (
	"fmt"
	"strings"

	"cmpsched/internal/cache"
	"cmpsched/internal/stats"
	"cmpsched/internal/sweep"
)

// TopologyRow is one point of the cache-topology comparison: one benchmark
// on one core count, one L2 topology and one scheduler.
type TopologyRow struct {
	Workload  string
	Cores     int
	Topology  string
	Scheduler string
	// Cycles is the parallel execution time.
	Cycles int64
	// L2MissesPerKiloInstr is the paper's primary cache metric, aggregated
	// over every L2 slice of the topology.
	L2MissesPerKiloInstr float64
	// MemUtilization is the off-chip bandwidth utilisation.
	MemUtilization float64
	// MaxSliceQueueCycles is the largest per-slice off-chip queueing delay,
	// exposing bandwidth hot spots among slices.
	MaxSliceQueueCycles int64
}

// TopologyResult holds every row of the topology comparison.
type TopologyResult struct {
	Rows  []TopologyRow
	Scale int64
}

// TopologyComparisonTopologies lists the topologies the comparison
// evaluates, from fully shared to fully private.
func TopologyComparisonTopologies() []cache.Topology {
	return []cache.Topology{cache.Shared(), cache.Clustered(4), cache.Clustered(2), cache.Private()}
}

// TopologyComparison evaluates the paper's shared-vs-private design axis:
// PDF and WS on the same total L2 capacity organised as one shared cache
// (the paper's machine), clustered slices, and per-core private slices.
// The paper's argument (§1, §7) is that PDF's constructive cache sharing
// needs a *shared* L2: co-scheduled tasks overlap their working sets in one
// cache.  With private slices no scheduler can make tasks share capacity,
// so the PDF-over-WS L2-MPKI advantage visible on the shared topology
// collapses — which is exactly what this comparison shows.
func TopologyComparison(opts Options) (*TopologyResult, error) {
	res := &TopologyResult{Scale: opts.effectiveScale()}
	type point struct {
		wl    string
		cores int
		topo  string
	}
	var g grid[point]
	for _, wl := range Figure2Workloads() {
		for _, cores := range opts.coresOrDefault([]int{8}) {
			if wl == "lu" && cores > 16 {
				continue
			}
			base, err := opts.scaledDefault(cores)
			if err != nil {
				return nil, err
			}
			for _, topo := range TopologyComparisonTopologies() {
				cfg := base.WithTopology(topo)
				jobs, err := opts.schedulerJobs(wl, cfg, false)
				if err != nil {
					return nil, err
				}
				g.add(point{wl, cores, topo.String()}, jobs...)
			}
		}
	}
	err := runGrid(opts, &g, func(pt point, rs []sweep.Result) {
		for i, sc := range []string{"pdf", "ws"} {
			sim := rs[i].Sim
			var maxQueue int64
			for _, p := range sim.MemPorts {
				if p.QueueCycles > maxQueue {
					maxQueue = p.QueueCycles
				}
			}
			res.Rows = append(res.Rows, TopologyRow{
				Workload: pt.wl, Cores: pt.cores, Topology: pt.topo, Scheduler: sc,
				Cycles:               sim.Cycles,
				L2MissesPerKiloInstr: sim.L2MissesPerKiloInstr(),
				MemUtilization:       sim.MemUtilization,
				MaxSliceQueueCycles:  maxQueue,
			})
		}
	})
	if err != nil {
		return nil, fmt.Errorf("topology comparison: %w", err)
	}
	return res, nil
}

// Row returns the row for a workload/cores/topology/scheduler combination,
// or nil.
func (r *TopologyResult) Row(workload string, cores int, topology, scheduler string) *TopologyRow {
	for i := range r.Rows {
		row := &r.Rows[i]
		if row.Workload == workload && row.Cores == cores && row.Topology == topology && row.Scheduler == scheduler {
			return row
		}
	}
	return nil
}

// RelativeSpeedup returns the PDF-over-WS speedup (WS cycles / PDF cycles)
// on one topology, or 0 if missing.
func (r *TopologyResult) RelativeSpeedup(workload string, cores int, topology string) float64 {
	pdf := r.Row(workload, cores, topology, "pdf")
	ws := r.Row(workload, cores, topology, "ws")
	if pdf == nil || ws == nil || pdf.Cycles == 0 {
		return 0
	}
	return float64(ws.Cycles) / float64(pdf.Cycles)
}

// MissReductionPercent returns the relative reduction in L2 misses per 1000
// instructions of PDF vs WS on one topology, in percent.  Positive means
// PDF misses less; near zero means the topology gives PDF nothing to win.
func (r *TopologyResult) MissReductionPercent(workload string, cores int, topology string) float64 {
	pdf := r.Row(workload, cores, topology, "pdf")
	ws := r.Row(workload, cores, topology, "ws")
	if pdf == nil || ws == nil || ws.L2MissesPerKiloInstr == 0 {
		return 0
	}
	return (ws.L2MissesPerKiloInstr - pdf.L2MissesPerKiloInstr) / ws.L2MissesPerKiloInstr * 100
}

// GapCollapse returns the shared-topology PDF miss reduction minus the
// private-topology one, in percentage points: how much of PDF's cache
// advantage the private organisation forfeits.
func (r *TopologyResult) GapCollapse(workload string, cores int) float64 {
	return r.MissReductionPercent(workload, cores, "shared") - r.MissReductionPercent(workload, cores, "private")
}

// String renders one panel per workload: topologies down, PDF and WS
// side by side.
func (r *TopologyResult) String() string {
	var b strings.Builder
	for _, wl := range Figure2Workloads() {
		rows := false
		t := stats.NewTable("cores", "topology", "sched", "cycles", "L2 misses/1000 instr", "PDF miss reduction %", "PDF/WS speedup", "mem util %")
		for _, row := range r.Rows {
			if row.Workload != wl {
				continue
			}
			rows = true
			reduction, rel := "", ""
			if row.Scheduler == "pdf" {
				reduction = fmt.Sprintf("%.1f", r.MissReductionPercent(wl, row.Cores, row.Topology))
				rel = fmt.Sprintf("%.2f", r.RelativeSpeedup(wl, row.Cores, row.Topology))
			}
			t.AddRow(
				fmt.Sprint(row.Cores), row.Topology, row.Scheduler,
				fmt.Sprint(row.Cycles),
				fmt.Sprintf("%.3f", row.L2MissesPerKiloInstr),
				reduction, rel,
				fmt.Sprintf("%.1f", row.MemUtilization*100),
			)
		}
		if !rows {
			continue
		}
		fmt.Fprintf(&b, "Topology comparison: %s (default configurations, capacity scale 1/%d)\n", wl, r.Scale)
		b.WriteString(t.String())
		b.WriteString("\n")
	}
	return b.String()
}
