package experiments

import (
	"fmt"
	"strings"

	"cmpsched/internal/stats"
	"cmpsched/internal/sweep"
)

// Figure2Row is one point of Figure 2: one benchmark on one default
// configuration under one scheduler.
type Figure2Row struct {
	Workload  string
	Cores     int
	Scheduler string
	// Speedup is the speedup over sequential execution on one core of the
	// same configuration (Figure 2 a, c, e).
	Speedup float64
	// L2MissesPerKiloInstr is the paper's misses-per-1000-instructions
	// metric (Figure 2 b, d, f).
	L2MissesPerKiloInstr float64
	// MemUtilization is the off-chip bandwidth utilisation discussed in
	// §5.1 (e.g. Hash Join ~90% at 16-32 cores, LU below a few percent).
	MemUtilization float64
	// Cycles is the parallel execution time.
	Cycles int64
}

// Figure2Result holds every row of Figure 2.
type Figure2Result struct {
	Rows  []Figure2Row
	Scale int64
}

// Figure2Workloads lists the benchmarks of Figure 2 in presentation order.
func Figure2Workloads() []string { return []string{"lu", "hashjoin", "mergesort"} }

// Figure2 reproduces Figure 2: PDF vs WS on the default (scaling-technology)
// configurations, reporting speedup over sequential and L2 misses per 1000
// instructions for LU (up to 16 cores, as in the paper), Hash Join and
// Mergesort (up to 32 cores).
func Figure2(opts Options) (*Figure2Result, error) {
	res := &Figure2Result{Scale: opts.effectiveScale()}
	type point struct {
		wl    string
		cores int
	}
	var g grid[point]
	for _, wl := range Figure2Workloads() {
		coreList := opts.coresOrDefault([]int{1, 2, 4, 8, 16, 32})
		for _, cores := range coreList {
			if wl == "lu" && cores > 16 {
				// The paper's LU input is smaller than the 32-core L2,
				// so LU is reported only up to 16 cores.
				continue
			}
			cfg, err := opts.scaledDefault(cores)
			if err != nil {
				return nil, err
			}
			jobs, err := opts.schedulerJobs(wl, cfg, true)
			if err != nil {
				return nil, err
			}
			g.add(point{wl, cores}, jobs...)
		}
	}
	err := runGrid(opts, &g, func(pt point, rs []sweep.Result) {
		seq, pdf, ws := rs[0].Sim, rs[1].Sim, rs[2].Sim
		res.Rows = append(res.Rows,
			Figure2Row{
				Workload: pt.wl, Cores: pt.cores, Scheduler: "pdf",
				Speedup:              pdf.Speedup(seq),
				L2MissesPerKiloInstr: pdf.L2MissesPerKiloInstr(),
				MemUtilization:       pdf.MemUtilization,
				Cycles:               pdf.Cycles,
			},
			Figure2Row{
				Workload: pt.wl, Cores: pt.cores, Scheduler: "ws",
				Speedup:              ws.Speedup(seq),
				L2MissesPerKiloInstr: ws.L2MissesPerKiloInstr(),
				MemUtilization:       ws.MemUtilization,
				Cycles:               ws.Cycles,
			})
	})
	if err != nil {
		return nil, fmt.Errorf("figure2: %w", err)
	}
	return res, nil
}

// Row returns the row for a workload/cores/scheduler combination, or nil.
func (r *Figure2Result) Row(workload string, cores int, scheduler string) *Figure2Row {
	for i := range r.Rows {
		row := &r.Rows[i]
		if row.Workload == workload && row.Cores == cores && row.Scheduler == scheduler {
			return row
		}
	}
	return nil
}

// RelativeSpeedup returns the PDF-over-WS speedup for a workload and core
// count (the paper's headline 1.3-1.6X numbers), or 0 if missing.
func (r *Figure2Result) RelativeSpeedup(workload string, cores int) float64 {
	pdf := r.Row(workload, cores, "pdf")
	ws := r.Row(workload, cores, "ws")
	if pdf == nil || ws == nil || pdf.Cycles == 0 {
		return 0
	}
	return float64(ws.Cycles) / float64(pdf.Cycles)
}

// MissReductionPercent returns the relative reduction in L2 misses per 1000
// instructions of PDF vs WS, in percent.
func (r *Figure2Result) MissReductionPercent(workload string, cores int) float64 {
	pdf := r.Row(workload, cores, "pdf")
	ws := r.Row(workload, cores, "ws")
	if pdf == nil || ws == nil || ws.L2MissesPerKiloInstr == 0 {
		return 0
	}
	return (ws.L2MissesPerKiloInstr - pdf.L2MissesPerKiloInstr) / ws.L2MissesPerKiloInstr * 100
}

// String renders the six panels of Figure 2.
func (r *Figure2Result) String() string {
	var b strings.Builder
	for _, wl := range Figure2Workloads() {
		fmt.Fprintf(&b, "Figure 2: %s (default configurations, capacity scale 1/%d)\n", wl, r.Scale)
		t := stats.NewTable("cores", "sched", "speedup", "L2 misses/1000 instr", "mem util %", "PDF/WS speedup")
		for _, row := range r.Rows {
			if row.Workload != wl {
				continue
			}
			rel := ""
			if row.Scheduler == "pdf" {
				rel = fmt.Sprintf("%.2f", r.RelativeSpeedup(wl, row.Cores))
			}
			t.AddRow(
				fmt.Sprint(row.Cores), row.Scheduler,
				fmt.Sprintf("%.2f", row.Speedup),
				fmt.Sprintf("%.3f", row.L2MissesPerKiloInstr),
				fmt.Sprintf("%.1f", row.MemUtilization*100),
				rel,
			)
		}
		b.WriteString(t.String())
		b.WriteString("\n")
	}
	return b.String()
}
