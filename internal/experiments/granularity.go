package experiments

import (
	"fmt"
	"strings"

	"cmpsched/internal/dag"
	"cmpsched/internal/stats"
	"cmpsched/internal/sweep"
	"cmpsched/internal/workload"
)

// GranularityRow compares a benchmark's original coarse-grained threading
// against the fine-grained version used in the paper (§5.4: "our fine-grained
// versions are up to 2.85X faster than the coarse-grained originals").
type GranularityRow struct {
	Workload     string
	Scheduler    string
	CoarseCycles int64
	FineCycles   int64
}

// Speedup returns the fine-over-coarse speedup.
func (g GranularityRow) Speedup() float64 {
	if g.FineCycles == 0 {
		return 0
	}
	return float64(g.CoarseCycles) / float64(g.FineCycles)
}

// GranularityResult holds the §5.4 coarse-vs-fine comparison.
type GranularityResult struct {
	Cores int
	Rows  []GranularityRow
	Scale int64
}

// Granularity reproduces the §5.4 comparison on the 16-core default
// configuration: Hash Join with one thread per sub-partition (the original
// code) vs the parallelised probe, and Mergesort with a serial merge (as in
// libpmsort) vs the parallel k-way split merge.
func Granularity(opts Options) (*GranularityResult, error) {
	cfg, err := opts.scaledDefault(16)
	if err != nil {
		return nil, err
	}
	res := &GranularityResult{Cores: cfg.Cores, Scale: opts.effectiveScale()}

	hjFine := opts.hashJoinConfig(cfg)
	hjCoarse := hjFine
	hjCoarse.CoarseGrained = true
	msFine := opts.mergesortConfig()
	msCoarse := msFine
	msCoarse.SerialMerge = true

	hjBuild := func(cfg workload.HashJoinConfig) sweep.BuildFunc {
		return func() (*dag.DAG, error) {
			d, _, err := workload.NewHashJoin(cfg).Build()
			return d, err
		}
	}
	msBuild := func(cfg workload.MergesortConfig) sweep.BuildFunc {
		return func() (*dag.DAG, error) {
			d, _, err := workload.NewMergesort(cfg).Build()
			return d, err
		}
	}
	// Per workload: coarse pdf, coarse ws, fine pdf, fine ws.
	var g grid[string]
	for _, wl := range []string{"hashjoin", "mergesort"} {
		var coarse, fine sweep.BuildFunc
		var coarseParams, fineParams string
		if wl == "hashjoin" {
			coarse, fine = hjBuild(hjCoarse), hjBuild(hjFine)
			coarseParams, fineParams = fmt.Sprintf("%+v", hjCoarse), fmt.Sprintf("%+v", hjFine)
		} else {
			coarse, fine = msBuild(msCoarse), msBuild(msFine)
			coarseParams, fineParams = fmt.Sprintf("%+v", msCoarse), fmt.Sprintf("%+v", msFine)
		}
		g.add(wl,
			sweep.NewJob(wl, coarseParams, "pdf", cfg, coarse),
			sweep.NewJob(wl, coarseParams, "ws", cfg, coarse),
			sweep.NewJob(wl, fineParams, "pdf", cfg, fine),
			sweep.NewJob(wl, fineParams, "ws", cfg, fine),
		)
	}
	err = runGrid(opts, &g, func(wl string, rs []sweep.Result) {
		coarsePDF, coarseWS := rs[0].Sim, rs[1].Sim
		finePDF, fineWS := rs[2].Sim, rs[3].Sim
		res.Rows = append(res.Rows,
			GranularityRow{Workload: wl, Scheduler: "pdf", CoarseCycles: coarsePDF.Cycles, FineCycles: finePDF.Cycles},
			GranularityRow{Workload: wl, Scheduler: "ws", CoarseCycles: coarseWS.Cycles, FineCycles: fineWS.Cycles},
		)
	})
	if err != nil {
		return nil, fmt.Errorf("granularity: %w", err)
	}
	return res, nil
}

// Row returns the row for a workload and scheduler, or nil.
func (r *GranularityResult) Row(workload, scheduler string) *GranularityRow {
	for i := range r.Rows {
		if r.Rows[i].Workload == workload && r.Rows[i].Scheduler == scheduler {
			return &r.Rows[i]
		}
	}
	return nil
}

// String renders the comparison.
func (r *GranularityResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§5.4 fine- vs coarse-grained threading on %d cores (capacity scale 1/%d)\n", r.Cores, r.Scale)
	t := stats.NewTable("workload", "sched", "coarse cycles", "fine cycles", "fine/coarse speedup")
	for _, row := range r.Rows {
		t.AddRow(row.Workload, row.Scheduler, fmt.Sprint(row.CoarseCycles), fmt.Sprint(row.FineCycles),
			fmt.Sprintf("%.2f", row.Speedup()))
	}
	b.WriteString(t.String())
	b.WriteString("\n")
	return b.String()
}
