// Package imath provides the small integer helpers shared by the workload
// generators, the graph subsystem and the experiment harness.  They were
// historically copied into each package; this is the single shared set.
package imath

// CeilDiv returns ceil(a/b) for positive b, and 0 when b <= 0.
func CeilDiv(a, b int64) int64 {
	if b <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// Log2Ceil returns ceil(log2(n)) for n >= 1, and 0 for n <= 1.
func Log2Ceil(n int64) int64 {
	if n <= 1 {
		return 0
	}
	var l int64
	v := int64(1)
	for v < n {
		v <<= 1
		l++
	}
	return l
}

// Max returns the larger of a and b.
func Max(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Min returns the smaller of a and b.
func Min(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
