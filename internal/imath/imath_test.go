package imath

import "testing"

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{10, 3, 4}, {9, 3, 3}, {1, 1, 1}, {0, 5, 0},
		{1, 0, 0}, {5, -1, 0}, // non-positive divisor convention
	}
	for _, c := range cases {
		if got := CeilDiv(c.a, c.b); got != c.want {
			t.Errorf("CeilDiv(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := []struct{ n, want int64 }{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {1024, 10}, {1025, 11},
	}
	for _, c := range cases {
		if got := Log2Ceil(c.n); got != c.want {
			t.Errorf("Log2Ceil(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestMinMax(t *testing.T) {
	if Max(3, 5) != 5 || Max(5, 3) != 5 || Max(-1, -2) != -1 {
		t.Errorf("Max wrong")
	}
	if Min(3, 5) != 3 || Min(5, 3) != 3 || Min(-1, -2) != -2 {
		t.Errorf("Min wrong")
	}
}
