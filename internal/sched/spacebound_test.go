package sched

import (
	"testing"

	"cmpsched/internal/dag"
	"cmpsched/internal/refs"
)

// sbMachine is a 4-core machine with two L2 slices (cores {0,1} and {2,3}),
// an 1 KB L1 and 4 KB slices, so scans of 512 B, 2 KB and 16 KB fall into
// the L1, slice and global pools respectively.
func sbMachine() Machine {
	return Machine{
		Cores:        4,
		LineBytes:    128,
		L1Bytes:      1 << 10,
		L2SliceBytes: 4 << 10,
		Slices:       2,
		SliceOfCore:  []int{0, 0, 1, 1},
	}
}

// sbDAG builds root -> {small, medium, large}: a 512 B, a 2 KB and a 16 KB
// scan, each over its own address range.
func sbDAG(t *testing.T) (*dag.DAG, [3]dag.TaskID) {
	t.Helper()
	d := dag.New("sb-test")
	root := d.AddComputeTask("root", 1)
	small := d.AddTask("small", refs.NewScan(0x1_0000_0000, 512, 128, 1))
	medium := d.AddTask("medium", refs.NewScan(0x2_0000_0000, 2<<10, 128, 1))
	large := d.AddTask("large", refs.NewScan(0x3_0000_0000, 16<<10, 128, 1))
	d.Fork(root.ID, small.ID, medium.ID, large.ID)
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return d, [3]dag.TaskID{small.ID, medium.ID, large.ID}
}

func TestSpaceBoundedPinsBySmallestFittingCache(t *testing.T) {
	d, ids := sbDAG(t)
	s := NewSpaceBounded()
	s.SetMachine(sbMachine())
	s.Reset(d, 4)

	// Working sets must match the scans' footprints exactly.
	for i, want := range []int64{512, 2 << 10, 16 << 10} {
		if got := s.ws[ids[i]]; got != want {
			t.Errorf("task %d working set = %d bytes, want %d", ids[i], got, want)
		}
	}

	// Announce the three children as enabled by a completion on core 2
	// (slice 1).
	s.MakeReady(2, ids[:])
	m := s.Metrics()
	if m["pinned_l1"] != 1 || m["pinned_slice"] != 1 || m["pinned_global"] != 1 {
		t.Fatalf("placement counters = %v, want one task per pool", m)
	}

	// Core 2 drains its own pools in capacity order: its L1 pool, then its
	// slice pool, then the global pool.
	want := []dag.TaskID{ids[0], ids[1], ids[2]}
	for i, w := range want {
		id, ok := s.Next(2)
		if !ok || id != w {
			t.Fatalf("Next(2) #%d = (%d, %v), want %d", i, id, ok, w)
		}
	}
	if s.Metrics()["migrations"] != 0 {
		t.Errorf("draining own pools counted migrations: %v", s.Metrics())
	}
	if s.Pending() != 0 {
		t.Errorf("Pending() = %d after draining", s.Pending())
	}
}

func TestSpaceBoundedOverflowsNearestFirst(t *testing.T) {
	d, ids := sbDAG(t)
	s := NewSpaceBounded()
	s.SetMachine(sbMachine())
	s.Reset(d, 4)
	s.MakeReady(2, ids[:])

	// Core 0 (slice 0) has nothing pinned to it: it must take the global
	// task first (no migration), then overflow into slice 1's pools —
	// the slice pool before core 2's private pool.
	if id, ok := s.Next(0); !ok || id != ids[2] {
		t.Fatalf("Next(0) = (%d, %v), want global task %d", id, ok, ids[2])
	}
	if s.Metrics()["migrations"] != 0 {
		t.Fatalf("global pool take counted as migration: %v", s.Metrics())
	}
	if id, ok := s.Next(0); !ok || id != ids[1] {
		t.Fatalf("Next(0) = (%d, %v), want slice-1 task %d", id, ok, ids[1])
	}
	if id, ok := s.Next(0); !ok || id != ids[0] {
		t.Fatalf("Next(0) = (%d, %v), want core-2 task %d", id, ok, ids[0])
	}
	if got := s.Metrics()["migrations"]; got != 2 {
		t.Errorf("migrations = %d, want 2 (slice pool + foreign core pool)", got)
	}
}

func TestSpaceBoundedWithoutMachineDegeneratesToGlobalSeqOrder(t *testing.T) {
	d, ids := sbDAG(t)
	s := NewSpaceBounded()
	// No SetMachine: the fallback machine has one unbounded slice, so every
	// task fits the "L1" of its announcing core; core 1's pool drains in
	// sequential order and other cores overflow deterministically.
	s.Reset(d, 2)
	s.MakeReady(1, ids[:])
	for i, w := range ids {
		id, ok := s.Next(1)
		if !ok || id != w {
			t.Fatalf("Next(1) #%d = (%d, %v), want %d", i, id, ok, w)
		}
	}
}
