package sched

import (
	"fmt"

	"cmpsched/internal/dag"
	"cmpsched/internal/obs"
)

// StealPolicy selects how an idle LocalityWS core picks its steal victim.
type StealPolicy int

const (
	// StealNearest steals from the nearest non-empty deque: cores sharing
	// the thief's L2 slice first, then slices by increasing distance.  A
	// steal within the slice keeps the stolen task's data in the cache it
	// already warmed; under the shared topology (one slice) the victim
	// order degenerates to classic WS's forward scan.
	StealNearest StealPolicy = iota
	// StealOldest steals the globally oldest ready task: the deque bottom
	// with the smallest sequential position across all victims.  Old tasks
	// are the fork-tree's biggest pieces of work and the least likely to
	// share cache state with their victim's current task, making them the
	// classic low-contention choice.
	StealOldest
)

// String returns the policy's canonical suffix ("nearest", "oldest").
func (p StealPolicy) String() string {
	switch p {
	case StealNearest:
		return "nearest"
	case StealOldest:
		return "oldest"
	default:
		return fmt.Sprintf("StealPolicy(%d)", int(p))
	}
}

// LocalityWS is Work Stealing with a locality-guided steal policy.  Local
// behaviour is identical to WS — tasks enabled on a core are pushed onto its
// deque, the owner pops LIFO — but when a core's own deque is empty the
// victim is chosen by the configured StealPolicy rather than WS's flat
// forward scan.  The canonical registry names are "ws:nearest" and
// "ws:oldest"; the classic scheduler keeps the name "ws" and its exact
// historical behaviour.
//
// StealNearest is the policy that matters on clustered topologies: it needs
// the core-to-slice map, which the simulator supplies through SetMachine
// (without one, every core lands in a single slice and the scan order
// matches classic WS).
type LocalityWS struct {
	d      *dag.DAG
	policy StealPolicy
	raw    Machine // as given by SetMachine; normalised into m by Reset
	m      Machine
	deques []deque
	// victims[t] is the precomputed deterministic victim scan order for
	// thief t under StealNearest.
	victims [][]int

	local      int64
	steals     int64
	nearSteals int64
	farSteals  int64
	tr         *obs.Tracer // steal-event sink; nil when tracing is off
}

// NewLocalityWS returns a Work Stealing scheduler with the given steal
// policy.  Out-of-range policy values fall back to StealNearest, so the
// scheduler's Name is always a canonical registry spelling.
func NewLocalityWS(policy StealPolicy) *LocalityWS {
	if policy != StealNearest && policy != StealOldest {
		policy = StealNearest
	}
	return &LocalityWS{policy: policy}
}

// Name implements Scheduler; it returns the canonical parameterised
// spelling, e.g. "ws:nearest", which is what flows into sweep keys.
func (w *LocalityWS) Name() string { return "ws:" + w.policy.String() }

// SetMachine implements MachineAware.
func (w *LocalityWS) SetMachine(m Machine) { w.raw = m }

// Reset implements Scheduler.
func (w *LocalityWS) Reset(d *dag.DAG, cores int) {
	w.d = d
	w.m = w.raw.forCores(cores)
	if cap(w.deques) >= cores {
		w.deques = w.deques[:cores]
		for i := range w.deques {
			w.deques[i].reset()
		}
	} else {
		w.deques = make([]deque, cores)
	}
	w.local, w.steals, w.nearSteals, w.farSteals = 0, 0, 0, 0
	// Built unconditionally: Next routes every policy except StealOldest
	// to the nearest-victim scan, so the table must exist even for policy
	// values that bypassed the constructor's normalisation.
	w.victims = nearestVictims(w.m)
}

// nearestVictims builds, for every thief, the victim order "own slice
// forward scan, then slices by increasing distance, cores ascending within
// each".  The order is a pure function of the machine, so it is computed
// once per Reset.
func nearestVictims(m Machine) [][]int {
	sliceCores := m.coresBySlice()
	victims := make([][]int, m.Cores)
	for t := 0; t < m.Cores; t++ {
		order := make([]int, 0, m.Cores-1)
		home := m.SliceOf(t)
		mates := sliceCores[home]
		pos := 0
		for i, c := range mates {
			if c == t {
				pos = i
				break
			}
		}
		for i := 1; i < len(mates); i++ {
			order = append(order, mates[(pos+i)%len(mates)])
		}
		for dist := 1; dist < m.Slices; dist++ {
			order = append(order, sliceCores[(home+dist)%m.Slices]...)
		}
		victims[t] = order
	}
	return victims
}

// MakeReady implements Scheduler; the deque discipline is identical to WS.
func (w *LocalityWS) MakeReady(core int, tasks []dag.TaskID) {
	if core < 0 {
		core = 0
	}
	if core >= len(w.deques) {
		core = core % len(w.deques)
	}
	for _, id := range tasks {
		w.deques[core].pushTop(id)
	}
}

// Next implements Scheduler.
func (w *LocalityWS) Next(core int) (dag.TaskID, bool) {
	if core < 0 || core >= len(w.deques) {
		return dag.None, false
	}
	if id, ok := w.deques[core].popTop(); ok {
		w.local++
		return id, true
	}
	switch w.policy {
	case StealOldest:
		return w.stealOldest(core)
	default:
		return w.stealNearest(core)
	}
}

// stealNearest takes the bottom of the first non-empty deque in the thief's
// precomputed nearest-first victim order.
func (w *LocalityWS) stealNearest(core int) (dag.TaskID, bool) {
	home := w.m.SliceOf(core)
	for _, v := range w.victims[core] {
		if id, ok := w.deques[v].popBottom(); ok {
			w.steals++
			w.tr.Steal(int32(id), int32(core), int32(v))
			if w.m.SliceOf(v) == home {
				w.nearSteals++
			} else {
				w.farSteals++
			}
			return id, true
		}
	}
	return dag.None, false
}

// stealOldest takes the globally oldest ready task: the deque bottom with
// the smallest sequential position (ties broken by lower core index, so the
// choice is deterministic).
func (w *LocalityWS) stealOldest(core int) (dag.TaskID, bool) {
	victim, bestSeq := -1, 0
	for c := range w.deques {
		if c == core {
			continue
		}
		id, ok := w.deques[c].peekBottom()
		if !ok {
			continue
		}
		if seq := w.d.Task(id).Seq; victim < 0 || seq < bestSeq {
			victim, bestSeq = c, seq
		}
	}
	if victim < 0 {
		return dag.None, false
	}
	id, _ := w.deques[victim].popBottom()
	w.steals++
	w.tr.Steal(int32(id), int32(core), int32(victim))
	return id, true
}

// Pending implements Scheduler.
func (w *LocalityWS) Pending() int {
	total := 0
	for i := range w.deques {
		total += w.deques[i].len()
	}
	return total
}

// Metrics implements Scheduler.
func (w *LocalityWS) Metrics() map[string]int64 {
	m := map[string]int64{"steals": w.steals, "local": w.local}
	if w.policy == StealNearest {
		m["near_steals"] = w.nearSteals
		m["far_steals"] = w.farSteals
	}
	return m
}

func init() {
	Register("ws:nearest", func() Scheduler { return NewLocalityWS(StealNearest) })
	Register("ws:oldest", func() Scheduler { return NewLocalityWS(StealOldest) })
}
