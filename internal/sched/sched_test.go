package sched

import (
	"testing"

	"cmpsched/internal/dag"
)

// chainDAG builds a DAG with a root that fans out to n independent tasks.
func fanOutDAG(t *testing.T, n int) *dag.DAG {
	t.Helper()
	d := dag.New("fanout")
	root := d.AddComputeTask("root", 1)
	for i := 0; i < n; i++ {
		c := d.AddComputeTask("child", 10)
		d.MustEdge(root.ID, c.ID)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return d
}

func TestNewByName(t *testing.T) {
	for _, name := range Names() {
		s, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Fatalf("New(%q).Name() = %q", name, s.Name())
		}
	}
	if _, err := New("PDF"); err != nil {
		t.Fatalf("upper-case alias rejected")
	}
	if _, err := New("bogus"); err == nil {
		t.Fatalf("unknown scheduler accepted")
	}
}

func TestPDFOrdersBySequentialPosition(t *testing.T) {
	d := fanOutDAG(t, 5)
	s := NewPDF()
	s.Reset(d, 4)
	// Make children ready out of order.
	s.MakeReady(0, []dag.TaskID{5, 2, 4, 1, 3})
	want := []dag.TaskID{1, 2, 3, 4, 5}
	for i, w := range want {
		id, ok := s.Next(0)
		if !ok || id != w {
			t.Fatalf("Next %d = (%d, %v), want %d", i, id, ok, w)
		}
	}
	if _, ok := s.Next(0); ok {
		t.Fatalf("Next on empty queue returned a task")
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", s.Pending())
	}
	if s.Metrics()["assigned"] != 5 {
		t.Fatalf("assigned metric = %d", s.Metrics()["assigned"])
	}
}

func TestPDFResetClearsQueue(t *testing.T) {
	d := fanOutDAG(t, 3)
	s := NewPDF()
	s.Reset(d, 2)
	s.MakeReady(-1, []dag.TaskID{1, 2})
	s.Reset(d, 2)
	if s.Pending() != 0 {
		t.Fatalf("Pending after Reset = %d", s.Pending())
	}
}

func TestWSLocalLIFO(t *testing.T) {
	d := fanOutDAG(t, 3)
	s := NewWS()
	s.Reset(d, 2)
	// Tasks forked on core 0 in sequential order 1,2,3.
	s.MakeReady(0, []dag.TaskID{1, 2, 3})
	// The forking core pops the most recently forked first (LIFO).
	id, ok := s.Next(0)
	if !ok || id != 3 {
		t.Fatalf("local pop = %d, want 3", id)
	}
	// A thief steals the oldest task (bottom of the deque).
	id, ok = s.Next(1)
	if !ok || id != 1 {
		t.Fatalf("steal = %d, want 1", id)
	}
	if s.Steals() != 1 {
		t.Fatalf("Steals = %d, want 1", s.Steals())
	}
	m := s.Metrics()
	if m["steals"] != 1 || m["local"] != 1 {
		t.Fatalf("metrics = %v", m)
	}
}

func TestWSStealScanOrder(t *testing.T) {
	d := fanOutDAG(t, 6)
	s := NewWS()
	s.Reset(d, 4)
	// Work only on core 2's deque.
	s.MakeReady(2, []dag.TaskID{1, 2})
	// Core 3 scans 0,1,2 (starting after itself) and steals from core 2.
	id, ok := s.Next(3)
	if !ok || id != 1 {
		t.Fatalf("steal from core 3 = (%d, %v), want task 1", id, ok)
	}
	// Core 0 then steals the remaining task.
	id, ok = s.Next(0)
	if !ok || id != 2 {
		t.Fatalf("steal from core 0 = (%d, %v), want task 2", id, ok)
	}
	if _, ok := s.Next(1); ok {
		t.Fatalf("steal from empty deques should fail")
	}
}

func TestWSRootsSeededOnCoreZero(t *testing.T) {
	d := fanOutDAG(t, 2)
	s := NewWS()
	s.Reset(d, 2)
	s.MakeReady(-1, []dag.TaskID{0})
	// Core 1's local deque is empty; it must steal the root from core 0.
	id, ok := s.Next(1)
	if !ok || id != 0 {
		t.Fatalf("core 1 did not find the seeded root: (%d, %v)", id, ok)
	}
}

func TestWSOutOfRangeCore(t *testing.T) {
	d := fanOutDAG(t, 2)
	s := NewWS()
	s.Reset(d, 2)
	s.MakeReady(5, []dag.TaskID{1}) // folded into a valid deque
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", s.Pending())
	}
	if _, ok := s.Next(-1); ok {
		t.Fatalf("negative core should get no work")
	}
	if _, ok := s.Next(7); ok {
		t.Fatalf("out-of-range core should get no work")
	}
}

func TestWSPendingCountsAllDeques(t *testing.T) {
	d := fanOutDAG(t, 4)
	s := NewWS()
	s.Reset(d, 3)
	s.MakeReady(0, []dag.TaskID{1})
	s.MakeReady(1, []dag.TaskID{2, 3})
	if s.Pending() != 3 {
		t.Fatalf("Pending = %d, want 3", s.Pending())
	}
}

func TestFIFOOrder(t *testing.T) {
	d := fanOutDAG(t, 3)
	s := NewFIFO()
	s.Reset(d, 2)
	s.MakeReady(0, []dag.TaskID{3, 1, 2})
	got := []dag.TaskID{}
	for {
		id, ok := s.Next(0)
		if !ok {
			break
		}
		got = append(got, id)
	}
	want := []dag.TaskID{3, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if s.Metrics()["assigned"] != 3 {
		t.Fatalf("assigned = %d", s.Metrics()["assigned"])
	}
}

// All schedulers must eventually hand out every ready task exactly once
// (greedy, no loss, no duplication).
func TestAllSchedulersDrainWithoutLossOrDuplication(t *testing.T) {
	d := fanOutDAG(t, 50)
	ready := make([]dag.TaskID, 50)
	for i := range ready {
		ready[i] = dag.TaskID(i + 1)
	}
	for _, name := range Names() {
		s, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		s.Reset(d, 4)
		// Announce from several different cores.
		s.MakeReady(0, ready[:20])
		s.MakeReady(2, ready[20:35])
		s.MakeReady(-1, ready[35:])
		seen := make(map[dag.TaskID]bool)
		for core := 0; ; core = (core + 1) % 4 {
			id, ok := s.Next(core)
			if !ok {
				break
			}
			if seen[id] {
				t.Fatalf("%s handed out task %d twice", name, id)
			}
			seen[id] = true
		}
		if len(seen) != 50 {
			t.Fatalf("%s handed out %d of 50 tasks", name, len(seen))
		}
		if s.Pending() != 0 {
			t.Fatalf("%s still has %d pending after drain", name, s.Pending())
		}
	}
}
