package sched

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// stubScheduler is a registerable scheduler — a central FIFO under a custom
// name — so registry tests that add entries keep every package-wide
// invariant (New(name).Name() == name, greedy draining) intact for the
// other tests that iterate Names().
type stubScheduler struct {
	*FIFO
	name string
}

func (s *stubScheduler) Name() string { return s.name }

func stubFactory(name string) Factory {
	return func() Scheduler { return &stubScheduler{FIFO: NewFIFO(), name: name} }
}

// testNameCounter makes test registrations unique within the process, so
// the registry (which is global and panics on duplicates by design) stays
// clean across repeated runs of the same binary (go test -count=N).
var testNameCounter atomic.Int64

func uniqueName(prefix string) string {
	return fmt.Sprintf("%s-%d", prefix, testNameCounter.Add(1))
}

func TestRegistryHasBuiltins(t *testing.T) {
	for _, name := range []string{"pdf", "ws", "fifo", "sb", "ws:nearest", "ws:oldest"} {
		s, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, s.Name())
		}
	}
}

func TestNamesSortedAndDerivedFromTable(t *testing.T) {
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Names() not sorted: %v", names)
	}
	name := uniqueName("zz-test-names")
	Register(name, stubFactory(name))
	grown := Names()
	if len(grown) != len(names)+1 {
		t.Fatalf("Names() has %d entries after registration, want %d", len(grown), len(names)+1)
	}
	if !sort.StringsAreSorted(grown) {
		t.Fatalf("Names() not sorted after registration: %v", grown)
	}
}

func TestUnknownSchedulerErrorListsValidNames(t *testing.T) {
	_, err := New("bogus")
	if err == nil {
		t.Fatal("New(bogus) succeeded")
	}
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list registered scheduler %q", err, name)
		}
	}
}

func TestRegisterRejectsBadInput(t *testing.T) {
	mustPanic := func(why string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", why)
			}
		}()
		fn()
	}
	mustPanic("empty name", func() { Register("", stubFactory("x")) })
	mustPanic("nil factory", func() { Register(uniqueName("zz-test-nil"), nil) })
	mustPanic("non-canonical name", func() { Register("ZZ-Test-Case", stubFactory("zz-test-case")) })
	dup := uniqueName("zz-test-dup")
	Register(dup, stubFactory(dup))
	mustPanic("duplicate name", func() { Register(dup, stubFactory(dup)) })
}

func TestNewIsCaseInsensitive(t *testing.T) {
	for _, name := range []string{"PDF", "Ws", "FIFO", "WS:NEAREST"} {
		s, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if s.Name() != strings.ToLower(name) {
			t.Errorf("New(%q).Name() = %q, want %q", name, s.Name(), strings.ToLower(name))
		}
	}
}

// TestConcurrentRegisterAndNew drives registrations, lookups and listings
// from many goroutines; run with -race (CI does) to prove the registry's
// locking admits late registrations beside running sweeps.
func TestConcurrentRegisterAndNew(t *testing.T) {
	const writers, readers, lookups = 8, 8, 200
	names := make([]string, writers)
	for w := range names {
		names[w] = uniqueName("zz-test-conc")
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			Register(name, stubFactory(name))
		}(names[w])
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < lookups; i++ {
				if _, err := New("pdf"); err != nil {
					t.Errorf("New(pdf): %v", err)
					return
				}
				Names()
			}
		}()
	}
	wg.Wait()
	for _, name := range names {
		if _, err := New(name); err != nil {
			t.Errorf("New(%q) after concurrent registration: %v", name, err)
		}
	}
}
