package sched

// Machine describes the cache machine a scheduler is placing tasks onto:
// the core count, the per-core L1 capacity, the per-slice L2 capacity, and
// the mapping from cores to L2 slices.  The simulator derives it from the
// CMP configuration and its cache topology and hands it to every scheduler
// that implements MachineAware before Reset, so capacity-aware schedulers
// (SpaceBounded) and topology-aware steal policies (LocalityWS) see the
// same machine the caches model.
type Machine struct {
	// Cores is the number of processing cores P.
	Cores int
	// LineBytes is the cache-line size.
	LineBytes int64
	// L1Bytes is the per-core private L1 capacity.
	L1Bytes int64
	// L2SliceBytes is the capacity of one L2 slice (the whole L2 under the
	// shared topology).
	L2SliceBytes int64
	// Slices is the number of L2 slices (1 for shared, Cores for private).
	Slices int
	// SliceOfCore maps each core to the L2 slice serving it; its length is
	// Cores.
	SliceOfCore []int
}

// singleSliceMachine returns the degenerate machine a scheduler assumes
// when no Machine was provided (e.g. when driven outside the simulator):
// every core shares one unbounded L2 slice, so capacity pinning never
// fires and slice-aware policies see a flat machine.
func singleSliceMachine(cores int) Machine {
	const unbounded = int64(1) << 62
	sliceOf := make([]int, cores)
	return Machine{
		Cores:        cores,
		LineBytes:    128,
		L1Bytes:      unbounded,
		L2SliceBytes: unbounded,
		Slices:       1,
		SliceOfCore:  sliceOf,
	}
}

// forCores adapts the machine to the core count the scheduler was Reset
// with: a zero or mismatched machine (SetMachine never called, or called
// for a different configuration) falls back to the single-slice default so
// schedulers stay usable outside the simulator.
func (m Machine) forCores(cores int) Machine {
	if m.Cores != cores || m.Slices <= 0 || len(m.SliceOfCore) != cores {
		return singleSliceMachine(cores)
	}
	return m
}

// SliceOf returns the L2 slice serving core, or 0 when out of range.
func (m Machine) SliceOf(core int) int {
	if core < 0 || core >= len(m.SliceOfCore) {
		return 0
	}
	return m.SliceOfCore[core]
}

// coresBySlice inverts SliceOfCore: element s lists the cores served by
// slice s, in ascending core order.  It is the one place the slice-pool
// structure of the capacity- and topology-aware schedulers is derived
// from the machine.
func (m Machine) coresBySlice() [][]int {
	out := make([][]int, m.Slices)
	for c := 0; c < m.Cores; c++ {
		s := m.SliceOf(c)
		out[s] = append(out[s], c)
	}
	return out
}

// MachineAware is implemented by schedulers whose placement decisions
// depend on the cache machine (capacities, slice mapping).  The simulator
// calls SetMachine once per run, before Reset; schedulers must tolerate
// never receiving a machine (Machine.forCores supplies a flat default).
type MachineAware interface {
	// SetMachine describes the machine of the upcoming run.
	SetMachine(m Machine)
}
