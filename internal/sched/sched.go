// Package sched implements the greedy thread schedulers compared in the
// paper — Work Stealing (WS) and Parallel Depth First (PDF) — plus a central
// FIFO queue used as an ablation baseline, a space-bounded scheduler that
// pins tasks to the smallest cache level or slice whose capacity fits their
// profiled working set, and locality-guided work-stealing variants with
// pluggable steal policies.
//
// The schedulers are driven by the CMP simulator (package cmpsim) through a
// small event interface: the simulator announces tasks that became ready
// (MakeReady) and asks for work on behalf of idle cores (Next).  All
// schedulers here are greedy: a ready task is only left unscheduled when
// every core is busy.
//
// Schedulers are constructed by canonical name through a table-driven
// registry (Register / New / Names), mirroring the workload registry: the
// table — not a hardcoded switch — decides what New accepts, and programs
// may register custom schedulers at run time.  Schedulers that want to place
// tasks by cache capacity additionally implement MachineAware; the simulator
// describes the machine (core count, L1 and L2-slice capacities, core→slice
// map) before each run.  See ARCHITECTURE.md, "Registries".
package sched

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"cmpsched/internal/dag"
	"cmpsched/internal/minheap"
	"cmpsched/internal/obs"
)

// Scheduler decides which ready task each idle core runs next.
//
// Implementations are deterministic and not safe for concurrent use; the
// simulator invokes them from a single goroutine.
type Scheduler interface {
	// Name returns a short identifier such as "pdf" or "ws".
	Name() string
	// Reset prepares the scheduler for a run of d on p cores, discarding
	// any state from previous runs.
	Reset(d *dag.DAG, p int)
	// MakeReady announces tasks that became ready when a task completed
	// on the given core. core is -1 for the DAG's initial roots. Tasks
	// are announced in increasing sequential order. The tasks slice is
	// only valid for the duration of the call — the simulator reuses its
	// backing storage — so implementations must copy the IDs they keep.
	MakeReady(core int, tasks []dag.TaskID)
	// Next returns the task the given idle core should run, or ok=false
	// when the scheduler has no work for it.
	Next(core int) (id dag.TaskID, ok bool)
	// Pending returns the number of ready tasks not yet handed out.
	Pending() int
	// Metrics returns scheduler-specific counters (e.g. steals).
	Metrics() map[string]int64
}

// Factory constructs a fresh scheduler instance.
type Factory func() Scheduler

// registry maps canonical scheduler names to factories.  The scheduler
// files self-register from init, so the table — not a hardcoded switch —
// decides what New accepts and what Names reports.  The mutex also admits
// late registrations (the facade exports RegisterScheduler), e.g. from a
// program that adds a custom scheduler while sweeps run on other
// goroutines.
var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{}
)

// Register adds a named scheduler factory.  Names are canonical spellings
// as they appear in sweep keys and CLI flags ("pdf", "ws:nearest", ...);
// they are matched case-insensitively by New.  Register panics on empty or
// duplicate names and nil factories: all three are programming errors in a
// scheduler file's init.
func Register(name string, f Factory) {
	if name == "" || f == nil {
		panic("sched: Register requires a name and a factory")
	}
	if name != strings.ToLower(name) {
		panic(fmt.Sprintf("sched: scheduler name %q is not canonical (want lower case)", name))
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("sched: duplicate registration of %q", name))
	}
	registry[name] = f
}

// The built-in schedulers register here; SpaceBounded and LocalityWS
// register in their own files.  New schedulers only need their own Register
// call.
func init() {
	Register("pdf", func() Scheduler { return NewPDF() })
	Register("ws", func() Scheduler { return NewWS() })
	Register("fifo", func() Scheduler { return NewFIFO() })
}

// New constructs a registered scheduler by canonical name ("pdf", "ws",
// "fifo", "sb", "ws:nearest", "ws:oldest", or any name added through
// Register).  Lookup is case-insensitive; the error for an unknown name
// lists every valid one.
func New(name string) (Scheduler, error) {
	canonical := strings.ToLower(name)
	registryMu.RLock()
	f, ok := registry[canonical]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("sched: unknown scheduler %q (want one of %s)", name, strings.Join(Names(), ", "))
	}
	return f(), nil
}

// Names lists the registered scheduler names in sorted order.
func Names() []string {
	registryMu.RLock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	registryMu.RUnlock()
	sort.Strings(names)
	return names
}

// ---------------------------------------------------------------------------
// Parallel Depth First (PDF)
// ---------------------------------------------------------------------------

// PDF is the Parallel Depth First scheduler [Blelloch, Gibbons & Matias;
// Blelloch & Gibbons SPAA'04].  When a core completes a task it is assigned
// the ready task that the sequential program would have executed earliest,
// so concurrently scheduled tasks track the sequential schedule and share
// its working set.
type PDF struct {
	d        *dag.DAG
	ready    minheap.Heap[seqItem]
	assigned int64
}

// NewPDF returns a PDF scheduler.
func NewPDF() *PDF { return &PDF{} }

// Name implements Scheduler.
func (*PDF) Name() string { return "pdf" }

// Reset implements Scheduler.
func (p *PDF) Reset(d *dag.DAG, cores int) {
	p.d = d
	p.ready.Reset()
	p.assigned = 0
}

// MakeReady implements Scheduler.
func (p *PDF) MakeReady(core int, tasks []dag.TaskID) {
	for _, id := range tasks {
		p.ready.Push(seqItem{id: id, seq: p.d.Task(id).Seq})
	}
}

// Next implements Scheduler.
func (p *PDF) Next(core int) (dag.TaskID, bool) {
	if p.ready.Len() == 0 {
		return dag.None, false
	}
	item := p.ready.Pop()
	p.assigned++
	return item.id, true
}

// Pending implements Scheduler.
func (p *PDF) Pending() int { return p.ready.Len() }

// Metrics implements Scheduler.
func (p *PDF) Metrics() map[string]int64 {
	return map[string]int64{"assigned": p.assigned}
}

// seqItem is a ready task in PDF's minheap, ordered by sequential position
// (Seq values are unique, so the order is total).  The typed heap keeps
// the per-task pushes allocation-free — container/heap would box each one —
// and its storage persists across Reset.
type seqItem struct {
	id  dag.TaskID
	seq int
}

// Less implements minheap.Ordered.
func (a seqItem) Less(b seqItem) bool { return a.seq < b.seq }

// ---------------------------------------------------------------------------
// Work Stealing (WS)
// ---------------------------------------------------------------------------

// WS is the Work Stealing scheduler [Blumofe & Leiserson].  Each core owns a
// double-ended work queue: tasks forked by work running on the core are
// pushed on top of its local deque, the core pops from the top (LIFO, good
// locality), and an idle core steals from the bottom (the oldest work) of
// the first non-empty deque it finds scanning the other cores.
type WS struct {
	d      *dag.DAG
	deques []deque
	cores  int
	steals int64
	local  int64
	tr     *obs.Tracer // steal-event sink; nil when tracing is off
}

// NewWS returns a Work Stealing scheduler.
func NewWS() *WS { return &WS{} }

// Name implements Scheduler.
func (*WS) Name() string { return "ws" }

// Reset implements Scheduler.
func (w *WS) Reset(d *dag.DAG, cores int) {
	w.d = d
	w.cores = cores
	if cap(w.deques) >= cores {
		w.deques = w.deques[:cores]
		for i := range w.deques {
			w.deques[i].reset()
		}
	} else {
		w.deques = make([]deque, cores)
	}
	w.steals = 0
	w.local = 0
}

// MakeReady implements Scheduler.
//
// Tasks enabled by a completion on core c are pushed onto c's deque in
// sequential order, so the most recently forked work sits on top (run next
// locally) and the earliest forked work sits at the bottom (stolen first),
// matching the classic work-first deque discipline. Initial roots (core -1)
// are seeded onto core 0, where the sequential program would begin.
func (w *WS) MakeReady(core int, tasks []dag.TaskID) {
	if core < 0 {
		core = 0
	}
	if core >= w.cores {
		core = core % w.cores
	}
	for _, id := range tasks {
		w.deques[core].pushTop(id)
	}
}

// Next implements Scheduler.
func (w *WS) Next(core int) (dag.TaskID, bool) {
	if core < 0 || core >= w.cores {
		return dag.None, false
	}
	if id, ok := w.deques[core].popTop(); ok {
		w.local++
		return id, true
	}
	// Steal from the bottom of the first non-empty deque, scanning the
	// other cores deterministically starting after the thief.
	for i := 1; i < w.cores; i++ {
		victim := (core + i) % w.cores
		if id, ok := w.deques[victim].popBottom(); ok {
			w.steals++
			w.tr.Steal(int32(id), int32(core), int32(victim))
			return id, true
		}
	}
	return dag.None, false
}

// Pending implements Scheduler.
func (w *WS) Pending() int {
	total := 0
	for i := range w.deques {
		total += w.deques[i].len()
	}
	return total
}

// Metrics implements Scheduler.
func (w *WS) Metrics() map[string]int64 {
	return map[string]int64{"steals": w.steals, "local": w.local}
}

// Steals returns the number of successful steals in the last run.
func (w *WS) Steals() int64 { return w.steals }

// deque is a double-ended queue of task IDs: a slice plus a head index.
// popBottom advances head instead of re-slicing away the front, so the
// backing array's capacity is never stranded; whenever the deque empties,
// both ends rewind to the start and the storage is reused.  In the
// simulator's steady state pushes therefore allocate nothing.
type deque struct {
	items []dag.TaskID
	head  int
}

func (q *deque) reset() {
	q.items = q.items[:0]
	q.head = 0
}

func (q *deque) len() int { return len(q.items) - q.head }

func (q *deque) pushTop(id dag.TaskID) { q.items = append(q.items, id) }

func (q *deque) popTop() (dag.TaskID, bool) {
	if q.len() == 0 {
		return dag.None, false
	}
	id := q.items[len(q.items)-1]
	q.items = q.items[:len(q.items)-1]
	if len(q.items) == q.head {
		q.reset()
	}
	return id, true
}

// peekBottom returns the oldest task without removing it.
func (q *deque) peekBottom() (dag.TaskID, bool) {
	if q.len() == 0 {
		return dag.None, false
	}
	return q.items[q.head], true
}

func (q *deque) popBottom() (dag.TaskID, bool) {
	if q.len() == 0 {
		return dag.None, false
	}
	id := q.items[q.head]
	q.head++
	if len(q.items) == q.head {
		q.reset()
	}
	return id, true
}

// ---------------------------------------------------------------------------
// Central FIFO (ablation baseline)
// ---------------------------------------------------------------------------

// FIFO is a central first-come-first-served ready queue.  It is not part of
// the paper's comparison; it exists as an ablation point between WS
// (per-core LIFO with stealing) and PDF (global sequential priority).  The
// queue is a slice plus head index (like the WS deque) so dequeues never
// strand capacity and steady-state enqueues are allocation-free.
type FIFO struct {
	queue    []dag.TaskID
	head     int
	assigned int64
}

// NewFIFO returns a central-queue scheduler.
func NewFIFO() *FIFO { return &FIFO{} }

// Name implements Scheduler.
func (*FIFO) Name() string { return "fifo" }

// Reset implements Scheduler.
func (f *FIFO) Reset(d *dag.DAG, cores int) {
	f.queue = f.queue[:0]
	f.head = 0
	f.assigned = 0
}

// MakeReady implements Scheduler.
func (f *FIFO) MakeReady(core int, tasks []dag.TaskID) {
	f.queue = append(f.queue, tasks...)
}

// Next implements Scheduler.
func (f *FIFO) Next(core int) (dag.TaskID, bool) {
	if f.Pending() == 0 {
		return dag.None, false
	}
	id := f.queue[f.head]
	f.head++
	if f.head == len(f.queue) {
		f.queue = f.queue[:0]
		f.head = 0
	}
	f.assigned++
	return id, true
}

// Pending implements Scheduler.
func (f *FIFO) Pending() int { return len(f.queue) - f.head }

// Metrics implements Scheduler.
func (f *FIFO) Metrics() map[string]int64 {
	return map[string]int64{"assigned": f.assigned}
}
