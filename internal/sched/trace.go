package sched

import "cmpsched/internal/obs"

// TraceAware is implemented by schedulers that emit their scheduling
// decisions — steals, migrations, cache-level pins — into the simulator's
// task-lifecycle tracer.  The simulator sets the tracer (nil when tracing is
// off) before Reset, mirroring the MachineAware hook; the tracer carries the
// simulated clock, which the simulator advances before every scheduler
// interaction, so emitted events are stamped with the decision's simulated
// time.  All obs.Tracer emitters are no-ops on a nil tracer, so schedulers
// call them unconditionally.
type TraceAware interface {
	// SetTracer installs the event sink for the next run (nil disables).
	SetTracer(tr *obs.Tracer)
}

// SetTracer implements TraceAware.
func (w *WS) SetTracer(tr *obs.Tracer) { w.tr = tr }

// SetTracer implements TraceAware.
func (w *LocalityWS) SetTracer(tr *obs.Tracer) { w.tr = tr }

// SetTracer implements TraceAware.
func (s *SpaceBounded) SetTracer(tr *obs.Tracer) { s.tr = tr }
