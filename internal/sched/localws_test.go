package sched

import (
	"testing"

	"cmpsched/internal/dag"
)

// localWSMachine mirrors sbMachine: 4 cores, slices {0,1} and {2,3}.
func localWSMachine() Machine { return sbMachine() }

func TestLocalityWSNameIsCanonical(t *testing.T) {
	if got := NewLocalityWS(StealNearest).Name(); got != "ws:nearest" {
		t.Errorf("nearest Name() = %q", got)
	}
	if got := NewLocalityWS(StealOldest).Name(); got != "ws:oldest" {
		t.Errorf("oldest Name() = %q", got)
	}
	// Out-of-range policies normalise to StealNearest: the Name stays a
	// canonical registry spelling and Next never hits a nil victim table.
	bogus := NewLocalityWS(StealPolicy(99))
	if got := bogus.Name(); got != "ws:nearest" {
		t.Errorf("out-of-range policy Name() = %q, want ws:nearest", got)
	}
	d := fanOutDAG(t, 2)
	bogus.Reset(d, 2)
	bogus.MakeReady(1, []dag.TaskID{1})
	if id, ok := bogus.Next(0); !ok || id != 1 {
		t.Errorf("Next(0) = (%d, %v) after policy normalisation, want steal of task 1", id, ok)
	}
}

func TestStealNearestPrefersOwnSlice(t *testing.T) {
	d := fanOutDAG(t, 4)
	w := NewLocalityWS(StealNearest)
	w.SetMachine(localWSMachine())
	w.Reset(d, 4)

	// Work on cores 0 (slice 0) and 2 (slice 1); thief is core 3 (slice 1).
	// Classic WS scans (3+1)%4 = core 0 first; nearest must steal from its
	// slice mate, core 2.
	w.MakeReady(0, []dag.TaskID{1})
	w.MakeReady(2, []dag.TaskID{2})
	id, ok := w.Next(3)
	if !ok || id != 2 {
		t.Fatalf("Next(3) = (%d, %v), want steal of task 2 from slice mate", id, ok)
	}
	m := w.Metrics()
	if m["near_steals"] != 1 || m["far_steals"] != 0 {
		t.Fatalf("metrics = %v, want one near steal", m)
	}

	// With the slice mate empty, the thief expands to the far slice.
	id, ok = w.Next(3)
	if !ok || id != 1 {
		t.Fatalf("Next(3) = (%d, %v), want far steal of task 1", id, ok)
	}
	m = w.Metrics()
	if m["near_steals"] != 1 || m["far_steals"] != 1 || m["steals"] != 2 {
		t.Fatalf("metrics = %v, want one near and one far steal", m)
	}
}

func TestStealOldestTakesGloballyOldestBottom(t *testing.T) {
	d := fanOutDAG(t, 4)
	w := NewLocalityWS(StealOldest)
	w.Reset(d, 4)

	// Task 1 (oldest) sits on core 2; younger tasks sit on core 1, which a
	// forward scan from core 0 would visit first.
	w.MakeReady(1, []dag.TaskID{3, 4})
	w.MakeReady(2, []dag.TaskID{1})
	id, ok := w.Next(0)
	if !ok || id != 1 {
		t.Fatalf("Next(0) = (%d, %v), want globally oldest task 1", id, ok)
	}
	// Next oldest bottom is task 3 (core 1's deque bottom).
	id, ok = w.Next(0)
	if !ok || id != 3 {
		t.Fatalf("Next(0) = (%d, %v), want task 3", id, ok)
	}
	if got := w.Metrics()["steals"]; got != 2 {
		t.Errorf("steals = %d, want 2", got)
	}
}

func TestLocalityWSLocalPopIsLIFO(t *testing.T) {
	d := fanOutDAG(t, 3)
	for _, policy := range []StealPolicy{StealNearest, StealOldest} {
		w := NewLocalityWS(policy)
		w.Reset(d, 2)
		w.MakeReady(0, []dag.TaskID{1, 2, 3})
		for i, want := range []dag.TaskID{3, 2, 1} {
			id, ok := w.Next(0)
			if !ok || id != want {
				t.Fatalf("%v: Next(0) #%d = (%d, %v), want %d", policy, i, id, ok, want)
			}
		}
		if got := w.Metrics()["local"]; got != 3 {
			t.Errorf("%v: local = %d, want 3", policy, got)
		}
	}
}

// TestStealNearestFlatMachineMatchesClassicWS pins the degenerate case the
// golden engine fingerprints rely on reading about: with one slice (or no
// machine at all) the nearest-victim order is classic WS's forward scan.
func TestStealNearestFlatMachineMatchesClassicWS(t *testing.T) {
	d := fanOutDAG(t, 6)
	ws := NewWS()
	near := NewLocalityWS(StealNearest)
	ws.Reset(d, 4)
	near.Reset(d, 4)
	for _, s := range []Scheduler{ws, near} {
		s.MakeReady(1, []dag.TaskID{1, 2})
		s.MakeReady(3, []dag.TaskID{3, 4})
	}
	for core := 0; core < 4; core++ {
		wid, wok := ws.Next(core)
		nid, nok := near.Next(core)
		if wid != nid || wok != nok {
			t.Fatalf("Next(%d): ws = (%d, %v), ws:nearest = (%d, %v)", core, wid, wok, nid, nok)
		}
	}
}
