package sched

import (
	"cmpsched/internal/dag"
	"cmpsched/internal/minheap"
	"cmpsched/internal/obs"
	"cmpsched/internal/profile"
)

// SpaceBounded is a space-bounded scheduler in the spirit of Blelloch,
// Gibbons & Simhadri: every task is annotated with a working-set estimate,
// and a ready task is pinned to the smallest cache level or L2 slice whose
// capacity fits that working set — tasks that fit the private L1 are pinned
// to the core that enabled them (their parent's data is hot there), tasks
// that fit one L2 slice are pinned to the enabling core's slice, and larger
// tasks stay global.  Within each pool, tasks run in sequential (1DF) order,
// like PDF, so the scheduler degenerates to PDF with core affinity on the
// shared topology and becomes slice-aware exactly when the topology gives it
// slices to aim at.
//
// Working sets come from the one-pass LruTree profiler (package profile):
// Reset replays the DAG's sequential trace once and reads each task's
// distinct-line count — the same machinery the coarsening pass's
// W ≤ K·C/(2P) criterion uses (package coarsen).  If the trace cannot be
// profiled (e.g. it overflows the profiler's index), every task is treated
// as global and the scheduler degrades to PDF.
//
// One deliberate deviation from the literature: strict space-bounded
// scheduling may leave a core idle to protect a pinned task's cache slice.
// The simulator's contract is greedy scheduling (and its event loop only
// re-polls idle cores on task completions), so pinning is implemented as a
// preference order with deterministic overflow — an idle core that finds its
// own pools empty takes work from the nearest non-empty pool, nearest slice
// first.  The Metrics counters report how often pinning held ("pinned_l1",
// "pinned_slice", "pinned_global" placements) versus how often work ran away
// from its pool ("migrations").
type SpaceBounded struct {
	d       *dag.DAG
	raw     Machine // as given by SetMachine; normalised into m by Reset
	m       Machine
	ws      []int64 // per-task working-set bytes; -1 means unknown (global)
	coreQ   []minheap.Heap[seqItem]
	sliceQ  []minheap.Heap[seqItem]
	globalQ minheap.Heap[seqItem]
	// sliceCores[s] lists the cores served by slice s, ascending.
	sliceCores [][]int

	assigned    int64
	pinnedL1    int64
	pinnedSlice int64
	pinnedGlob  int64
	migrations  int64
	tr          *obs.Tracer // pin/migrate-event sink; nil when tracing is off
}

// NewSpaceBounded returns a space-bounded scheduler.
func NewSpaceBounded() *SpaceBounded { return &SpaceBounded{} }

// Name implements Scheduler.
func (*SpaceBounded) Name() string { return "sb" }

// SetMachine implements MachineAware.
func (s *SpaceBounded) SetMachine(m Machine) { s.raw = m }

// Reset implements Scheduler.  It profiles the DAG's sequential trace to
// annotate every task with its working-set size (the generators are rewound
// afterwards, so the simulation replays the same streams).
func (s *SpaceBounded) Reset(d *dag.DAG, cores int) {
	s.d = d
	s.m = s.raw.forCores(cores)
	s.ws = taskWorkingSets(d, s.m.LineBytes, s.ws)

	s.coreQ = resetHeaps(s.coreQ, cores)
	s.sliceQ = resetHeaps(s.sliceQ, s.m.Slices)
	s.globalQ.Reset()
	s.sliceCores = s.m.coresBySlice()
	s.assigned, s.pinnedL1, s.pinnedSlice, s.pinnedGlob, s.migrations = 0, 0, 0, 0, 0
}

// resetHeaps returns a slice of n empty heaps, reusing prior storage (and
// the heaps' backing arrays) when possible.
func resetHeaps(h []minheap.Heap[seqItem], n int) []minheap.Heap[seqItem] {
	if cap(h) >= n {
		h = h[:n]
		for i := range h {
			h[i].Reset()
		}
		return h
	}
	return make([]minheap.Heap[seqItem], n)
}

// taskWorkingSets estimates every task's working set (distinct lines times
// the line size) from one LruTree pass over the sequential trace, reusing
// ws as storage.  On a profiling failure every entry is -1 (unknown).
func taskWorkingSets(d *dag.DAG, lineBytes int64, ws []int64) []int64 {
	n := d.NumTasks()
	if cap(ws) >= n {
		ws = ws[:n]
	} else {
		ws = make([]int64, n)
	}
	if lineBytes <= 0 {
		lineBytes = 128
	}
	// Only the distinct-line counts are read, so one profiled cache size
	// (the smallest valid one) keeps the histogram narrow.
	cfg := profile.Config{LineBytes: lineBytes, CacheSizes: []int64{lineBytes}}
	prof, err := profile.NewLruTree(cfg).ProfileDAG(d)
	if err != nil {
		for i := range ws {
			ws[i] = -1
		}
		return ws
	}
	for i := range ws {
		ws[i] = prof.Group(dag.TaskID(i), dag.TaskID(i)).WorkingSetBytes
	}
	return ws
}

// MakeReady implements Scheduler.  Each task is pinned to the smallest
// cache that fits its working set, anchored at the core whose completion
// enabled it (core -1, the DAG roots, anchor at core 0 where the sequential
// program would begin).
func (s *SpaceBounded) MakeReady(core int, tasks []dag.TaskID) {
	home := core
	if home < 0 {
		home = 0
	}
	if home >= s.m.Cores {
		home = home % s.m.Cores
	}
	for _, id := range tasks {
		item := seqItem{id: id, seq: s.d.Task(id).Seq}
		w := s.ws[id]
		switch {
		case w >= 0 && w <= s.m.L1Bytes:
			s.coreQ[home].Push(item)
			s.pinnedL1++
			s.tr.Pin(int32(id), int32(home), obs.PinL1)
		case w >= 0 && w <= s.m.L2SliceBytes:
			s.sliceQ[s.m.SliceOf(home)].Push(item)
			s.pinnedSlice++
			s.tr.Pin(int32(id), int32(home), obs.PinSlice)
		default:
			s.globalQ.Push(item)
			s.pinnedGlob++
			s.tr.Pin(int32(id), int32(home), obs.PinGlobal)
		}
	}
}

// Next implements Scheduler.  An idle core drains, in order: its own core
// pool, its slice's pool, the global pool; then — to keep the scheduler
// greedy — it overflows deterministically into the other pools of its own
// slice and finally into other slices by increasing slice distance.
func (s *SpaceBounded) Next(core int) (dag.TaskID, bool) {
	if core < 0 || core >= s.m.Cores {
		return dag.None, false
	}
	if s.coreQ[core].Len() > 0 {
		return s.take(&s.coreQ[core], core, false)
	}
	slice := s.m.SliceOf(core)
	if s.sliceQ[slice].Len() > 0 {
		return s.take(&s.sliceQ[slice], core, false)
	}
	if s.globalQ.Len() > 0 {
		return s.take(&s.globalQ, core, false)
	}
	// Overflow: other core pools within the own slice, scanning forward
	// from the idle core.
	mates := s.sliceCores[slice]
	pos := indexOf(mates, core)
	for i := 1; i < len(mates); i++ {
		c := mates[(pos+i)%len(mates)]
		if s.coreQ[c].Len() > 0 {
			return s.take(&s.coreQ[c], core, true)
		}
	}
	// Overflow: other slices by increasing slice distance — their slice
	// pool first, then their core pools in index order.
	for dist := 1; dist < s.m.Slices; dist++ {
		v := (slice + dist) % s.m.Slices
		if s.sliceQ[v].Len() > 0 {
			return s.take(&s.sliceQ[v], core, true)
		}
		for _, c := range s.sliceCores[v] {
			if s.coreQ[c].Len() > 0 {
				return s.take(&s.coreQ[c], core, true)
			}
		}
	}
	return dag.None, false
}

// take pops the sequentially earliest task of a pool for the given core,
// counting the assignment (and the migration, when the pool is not the
// core's own).
func (s *SpaceBounded) take(q *minheap.Heap[seqItem], core int, migrated bool) (dag.TaskID, bool) {
	item := q.Pop()
	s.assigned++
	if migrated {
		s.migrations++
		s.tr.Migrate(int32(item.id), int32(core))
	}
	return item.id, true
}

// indexOf returns the position of core in the ascending slice-core list.
func indexOf(cores []int, core int) int {
	for i, c := range cores {
		if c == core {
			return i
		}
	}
	return 0
}

// Pending implements Scheduler.
func (s *SpaceBounded) Pending() int {
	total := s.globalQ.Len()
	for i := range s.coreQ {
		total += s.coreQ[i].Len()
	}
	for i := range s.sliceQ {
		total += s.sliceQ[i].Len()
	}
	return total
}

// Metrics implements Scheduler.
func (s *SpaceBounded) Metrics() map[string]int64 {
	return map[string]int64{
		"assigned":      s.assigned,
		"pinned_l1":     s.pinnedL1,
		"pinned_slice":  s.pinnedSlice,
		"pinned_global": s.pinnedGlob,
		"migrations":    s.migrations,
	}
}

func init() {
	Register("sb", func() Scheduler { return NewSpaceBounded() })
}
