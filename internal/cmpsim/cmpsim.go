// Package cmpsim is a discrete-event simulator of a chip multiprocessor
// executing a computation DAG under a greedy scheduler.
//
// The machine model follows the paper's methodology (§4.1): P in-order,
// scalar cores (1 instruction per cycle when not stalled), per-core private
// L1 caches, an L2 organised by a pluggable topology (one shared cache — the
// paper's machine — per-core private slices, or clustered slices; see
// cache.Topology) with a configuration-dependent hit latency per slice, and
// an off-chip memory with a 300-cycle latency and a bandwidth-limiting
// service interval of 30 cycles per line transfer that every L2 slice
// arbitrates for.
//
// Execution is event driven: each event is a core becoming ready to issue
// its next memory reference (or to complete its current task).  Events are
// processed in global time order, so accesses from different cores interleave
// in the shared L2 and compete for off-chip bandwidth in simulated-time
// order, which is what produces the constructive (or destructive) cache
// sharing behaviour the schedulers are being compared on.
package cmpsim

import (
	"container/heap"
	"fmt"

	"cmpsched/internal/cache"
	"cmpsched/internal/config"
	"cmpsched/internal/dag"
	"cmpsched/internal/memsys"
	"cmpsched/internal/refs"
	"cmpsched/internal/sched"
)

// Options control a simulation run.
type Options struct {
	// MaxCycles aborts the run when simulated time exceeds it. Zero means
	// the default bound of 1e15 cycles.
	MaxCycles int64
	// RecordTaskStats enables per-task start/end/core/miss accounting
	// (needed by schedule visualisations and per-level analyses).
	RecordTaskStats bool
	// ValidateDAG runs dag.Validate before simulating. It is enabled by
	// default in Run; disable for repeated runs of an already-validated
	// DAG.
	ValidateDAG bool
}

// DefaultOptions returns the options used by Run.
func DefaultOptions() Options {
	return Options{RecordTaskStats: true, ValidateDAG: true}
}

// TaskStat records how one task was executed.
type TaskStat struct {
	// Core is the core that executed the task.
	Core int
	// Start and End are the simulated cycles at which the task started
	// and completed.
	Start, End int64
	// L2Misses is the number of shared-L2 misses the task incurred.
	L2Misses int64
	// Refs is the number of memory references the task issued.
	Refs int64
}

// Result summarises a simulation run.
type Result struct {
	// Config is the machine configuration simulated.
	Config config.CMP
	// Scheduler is the name of the scheduler used.
	Scheduler string
	// Cycles is the total execution time.
	Cycles int64
	// Instructions is the total number of instructions retired.
	Instructions int64
	// Refs is the total number of memory references issued.
	Refs int64
	// L1 aggregates the private L1 statistics across cores.
	L1 cache.Stats
	// L2 aggregates the L2 statistics across every slice of the topology;
	// with the shared topology it is the single shared L2's statistics,
	// exactly as before the topology layer existed.
	L2 cache.Stats
	// L2Slices holds the per-slice L2 statistics, indexed by slice (one
	// entry for the shared topology, one per core for private, one per
	// cluster for clustered).
	L2Slices []cache.Stats
	// Mem is the chip-level off-chip memory statistics.
	Mem memsys.Stats
	// MemPorts holds the per-slice off-chip port statistics from the
	// bandwidth arbiter, indexed like L2Slices; QueueCycles attributes
	// channel contention to the slice that suffered it.
	MemPorts []memsys.Stats
	// MemUtilization is the fraction of cycles the off-chip channel was
	// busy (the paper's "memory bandwidth utilization").
	MemUtilization float64
	// CoreBusyCycles is the number of non-idle cycles per core.
	CoreBusyCycles []int64
	// TasksExecuted is the number of tasks run (equals the DAG size on a
	// successful run).
	TasksExecuted int
	// SchedMetrics carries scheduler-specific counters (e.g. "steals").
	SchedMetrics map[string]int64
	// TaskStats, when recorded, is indexed by task ID.
	TaskStats []TaskStat
}

// L2MissesPerKiloInstr returns the paper's primary cache metric: shared-L2
// misses per 1000 instructions.
func (r *Result) L2MissesPerKiloInstr() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.L2.Misses) * 1000 / float64(r.Instructions)
}

// AvgCoreUtilization returns the mean fraction of time cores were busy.
func (r *Result) AvgCoreUtilization() float64 {
	if r.Cycles == 0 || len(r.CoreBusyCycles) == 0 {
		return 0
	}
	var busy int64
	for _, b := range r.CoreBusyCycles {
		busy += b
	}
	return float64(busy) / float64(r.Cycles) / float64(len(r.CoreBusyCycles))
}

// Speedup returns base.Cycles / r.Cycles: the speedup of this run relative
// to a baseline run (typically the sequential execution on the same
// configuration).
func (r *Result) Speedup(base *Result) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(base.Cycles) / float64(r.Cycles)
}

// L2MissesByLevel aggregates per-task L2 misses by the tasks' Level field.
// It requires TaskStats to have been recorded.
func (r *Result) L2MissesByLevel(d *dag.DAG) map[int]int64 {
	out := make(map[int]int64)
	if r.TaskStats == nil {
		return out
	}
	for _, t := range d.Tasks() {
		out[t.Level] += r.TaskStats[t.ID].L2Misses
	}
	return out
}

// Run simulates d on cfg under scheduler s with default options.
func Run(d *dag.DAG, s sched.Scheduler, cfg config.CMP) (*Result, error) {
	return RunWithOptions(d, s, cfg, DefaultOptions())
}

// SequentialConfig returns the one-core baseline configuration (same caches
// and memory) that sequential runs are simulated on.
func SequentialConfig(cfg config.CMP) config.CMP {
	cfg.Cores = 1
	cfg.Name += "/sequential"
	return cfg
}

// RunSequential simulates the sequential execution of d on a single core of
// the given configuration (same caches and memory), which is the baseline
// the paper's speedups are reported against.
func RunSequential(d *dag.DAG, cfg config.CMP) (*Result, error) {
	return RunSequentialWithOptions(d, cfg, DefaultOptions())
}

// RunSequentialWithOptions is RunSequential with explicit options.
func RunSequentialWithOptions(d *dag.DAG, cfg config.CMP, opts Options) (*Result, error) {
	return RunWithOptions(d, sched.NewPDF(), SequentialConfig(cfg), opts)
}

// event is a pending simulator event: core is ready to proceed at time.
type event struct {
	time int64
	core int
	seq  int64 // FIFO tie-break for determinism
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	if h[i].core != h[j].core {
		return h[i].core < h[j].core
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// coreState tracks what a core is doing.
type coreState struct {
	busy      bool
	task      dag.TaskID
	finishing bool  // refs exhausted, waiting for trailing instructions
	consumed  int64 // instructions charged for the current task so far
	start     int64 // cycle the current task started
	l2Misses  int64
	refs      int64
}

// RunWithOptions simulates d on cfg under scheduler s.
func RunWithOptions(d *dag.DAG, s sched.Scheduler, cfg config.CMP, opts Options) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opts.ValidateDAG {
		if err := d.Validate(); err != nil {
			return nil, err
		}
	}
	if d.NumTasks() == 0 {
		return nil, fmt.Errorf("cmpsim: empty DAG %q", d.Name)
	}
	maxCycles := opts.MaxCycles
	if maxCycles <= 0 {
		maxCycles = int64(1e15)
	}

	hier, err := cache.NewHierarchy(cfg.HierarchyConfig())
	if err != nil {
		return nil, err
	}
	mem, err := memsys.New(cfg.Memory)
	if err != nil {
		return nil, err
	}
	// Every L2 slice arbitrates for the same off-chip channel (pins are a
	// chip-level resource); the arbiter attributes queueing per slice.
	arb, err := memsys.NewArbiter(mem, hier.NumSlices())
	if err != nil {
		return nil, err
	}

	d.ResetRefs()
	n := d.NumTasks()
	p := cfg.Cores
	s.Reset(d, p)

	indeg := make([]int, n)
	for _, t := range d.Tasks() {
		indeg[t.ID] = len(t.Preds)
	}

	cores := make([]coreState, p)
	busyCycles := make([]int64, p)
	var taskStats []TaskStat
	if opts.RecordTaskStats {
		taskStats = make([]TaskStat, n)
	}

	events := &eventHeap{}
	var eventSeq int64
	push := func(t int64, core int) {
		eventSeq++
		heap.Push(events, event{time: t, core: core, seq: eventSeq})
	}

	completed := 0
	l1Lat := cfg.L1.HitLatency
	// The topology scales per-slice capacity and hit latency together; with
	// the shared topology the slice latency is exactly cfg.L2.HitLatency.
	l2Lat := hier.SliceConfig().HitLatency

	// assign hands ready tasks to idle cores at time now, trying prefer
	// first (the core that just completed a task), then the others in
	// index order.
	assign := func(now int64, prefer int) {
		tryCore := func(c int) {
			if cores[c].busy {
				return
			}
			id, ok := s.Next(c)
			if !ok {
				return
			}
			cores[c] = coreState{busy: true, task: id, start: now}
			if t := d.Task(id); t.Refs != nil {
				t.Refs.Reset()
			}
			push(now, c)
		}
		if prefer >= 0 && prefer < p {
			tryCore(prefer)
		}
		for c := 0; c < p; c++ {
			if s.Pending() == 0 {
				break
			}
			tryCore(c)
		}
	}

	roots := d.Roots()
	if len(roots) == 0 {
		return nil, fmt.Errorf("cmpsim: DAG %q has no root tasks", d.Name)
	}
	s.MakeReady(-1, roots)
	assign(0, -1)

	var now int64
	for events.Len() > 0 {
		ev := heap.Pop(events).(event)
		now = ev.time
		if now > maxCycles {
			return nil, fmt.Errorf("cmpsim: exceeded MaxCycles=%d (deadlock or runaway workload?)", maxCycles)
		}
		c := ev.core
		st := &cores[c]
		if !st.busy {
			// Stale event (should not happen); ignore defensively.
			continue
		}
		task := d.Task(st.task)

		if !st.finishing {
			var ref refs.Ref
			var ok bool
			if task.Refs != nil {
				ref, ok = task.Refs.Next()
			}
			if ok {
				issue := now + ref.Instrs
				st.consumed += ref.Instrs
				st.refs++
				acc := hier.Access(c, ref.Addr, ref.Write)
				var done int64
				switch acc.Level {
				case cache.LevelL1:
					done = issue + l1Lat
				case cache.LevelL2:
					done = issue + l1Lat + l2Lat
					// Dirty L2 victims displaced by an L1 write-back
					// still consume off-chip bandwidth.
					for i := 0; i < acc.OffChipTransfers; i++ {
						arb.Writeback(acc.Slice, issue)
					}
				case cache.LevelMemory:
					st.l2Misses++
					for i := 1; i < acc.OffChipTransfers; i++ {
						arb.Writeback(acc.Slice, issue)
					}
					done = arb.Fetch(acc.Slice, issue+l1Lat+l2Lat)
				}
				busyCycles[c] += done - now
				push(done, c)
				continue
			}
			// References exhausted: charge the trailing instructions.
			tail := task.Instrs - st.consumed
			if tail < 0 {
				tail = 0
			}
			st.finishing = true
			busyCycles[c] += tail
			push(now+tail, c)
			continue
		}

		// Task completion.
		if taskStats != nil {
			taskStats[task.ID] = TaskStat{
				Core:     c,
				Start:    st.start,
				End:      now,
				L2Misses: st.l2Misses,
				Refs:     st.refs,
			}
		}
		completed++
		var ready []dag.TaskID
		for _, succ := range task.Succs {
			indeg[succ]--
			if indeg[succ] == 0 {
				ready = append(ready, succ)
			}
		}
		cores[c] = coreState{}
		if len(ready) > 0 {
			s.MakeReady(c, ready)
		}
		assign(now, c)
	}

	if completed != n {
		return nil, fmt.Errorf("cmpsim: deadlock: executed %d of %d tasks (cyclic or disconnected dependences?)", completed, n)
	}

	res := &Result{
		Config:         cfg,
		Scheduler:      s.Name(),
		Cycles:         now,
		Instructions:   d.TotalInstrs(),
		Refs:           d.TotalRefs(),
		L1:             hier.L1Stats(),
		L2:             hier.L2Stats(),
		L2Slices:       hier.L2SliceStats(),
		Mem:            mem.Stats(),
		MemPorts:       arb.PortStats(),
		MemUtilization: mem.Utilization(now),
		CoreBusyCycles: busyCycles,
		TasksExecuted:  completed,
		SchedMetrics:   s.Metrics(),
		TaskStats:      taskStats,
	}
	return res, nil
}
