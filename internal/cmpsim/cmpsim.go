// Package cmpsim is a discrete-event simulator of a chip multiprocessor
// executing a computation DAG under a greedy scheduler.
//
// The machine model follows the paper's methodology (§4.1): P in-order,
// scalar cores (1 instruction per cycle when not stalled), per-core private
// L1 caches, an L2 organised by a pluggable topology (one shared cache — the
// paper's machine — per-core private slices, or clustered slices; see
// cache.Topology) with a configuration-dependent hit latency per slice, and
// an off-chip memory with a 300-cycle latency and a bandwidth-limiting
// service interval of 30 cycles per line transfer that every L2 slice
// arbitrates for.
//
// Execution is event driven: each event is a core becoming ready to issue
// its next memory reference (or to complete its current task).  Events are
// processed in global time order, so accesses from different cores interleave
// in the shared L2 and compete for off-chip bandwidth in simulated-time
// order, which is what produces the constructive (or destructive) cache
// sharing behaviour the schedulers are being compared on.
//
// The engine is built for throughput (see DESIGN.md, "Event engine"):
// because a core has at most one pending event, the event queue is a typed
// index min-heap sized to the core count with zero-allocation slice pushes
// and pops; a same-core lookahead keeps executing a core's references inline
// while their completion times precede every other core's pending event (so
// L1-hit bursts never touch the heap); and reference streams are drained in
// refs.BlockSize batches through refs.ReadBlock — or, for recorded streams
// (refs.Sliced, the product of the trace-interning store), replayed straight
// out of their immutable arena with no copying at all — amortising the
// generators' dynamic dispatch.  All three are pure reorderings of identical
// work: event
// processing order, and therefore every cycle count and cache statistic, is
// bit-identical to the straightforward heap-per-event engine (pinned by
// TestGoldenEngineEquivalence).
package cmpsim

import (
	"errors"
	"fmt"

	"cmpsched/internal/cache"
	"cmpsched/internal/config"
	"cmpsched/internal/dag"
	"cmpsched/internal/memsys"
	"cmpsched/internal/minheap"
	"cmpsched/internal/obs"
	"cmpsched/internal/refs"
	"cmpsched/internal/sched"
)

// Options control a simulation run.
type Options struct {
	// MaxCycles aborts the run when simulated time exceeds it. Zero means
	// the default bound of 1e15 cycles.
	MaxCycles int64
	// RecordTaskStats enables per-task start/end/core/miss accounting
	// (needed by schedule visualisations and per-level analyses).
	RecordTaskStats bool
	// ValidateDAG runs dag.Validate before simulating. It is enabled by
	// default in Run; disable for repeated runs of an already-validated
	// DAG.
	ValidateDAG bool

	// Cancel, when non-nil, aborts the run with ErrCancelled once the
	// channel is closed.  The event loop polls it every few thousand
	// references (allocation-free, a countdown and a non-blocking select),
	// so a runaway simulation stops within microseconds of cancellation
	// while an uncancelled run pays essentially nothing.  Like Tracer and
	// Metrics it cannot change a completed run's results and is excluded
	// from Fingerprint.
	Cancel <-chan struct{}

	// Tracer, when non-nil, records the task-lifecycle event stream
	// (spawn/ready/run/finish, plus steal/migrate/pin from trace-aware
	// schedulers).  Tracing observes only per-task scheduling points — never
	// the per-reference hot loop — and a nil tracer is a guaranteed no-op,
	// so disabled runs are cycle- and allocation-identical to uninstrumented
	// ones.
	Tracer *obs.Tracer
	// Metrics, when non-nil, receives end-of-run counters and histograms
	// (cycles, cache stats, arbiter stalls, scheduler metrics, workload
	// annotations).  Publishing happens once after the run completes; a nil
	// registry costs nothing.
	Metrics *obs.Registry
}

// Fingerprint renders the semantically significant options — the ones that
// can change simulation results — in a stable format.  Instrumentation sinks
// (Tracer, Metrics) are deliberately excluded: they observe a run without
// affecting it, and including their pointer values would make content-derived
// cache keys (sweep.Job.WithOptions) nondeterministic.  The format matches
// the historical fmt %+v rendering of the pre-instrumentation struct, so
// existing pinned sweep keys are preserved byte for byte.
func (o Options) Fingerprint() string {
	return fmt.Sprintf("{MaxCycles:%d RecordTaskStats:%t ValidateDAG:%t}",
		o.MaxCycles, o.RecordTaskStats, o.ValidateDAG)
}

// DefaultOptions returns the options used by Run.
func DefaultOptions() Options {
	return Options{RecordTaskStats: true, ValidateDAG: true}
}

// TaskStat records how one task was executed.
type TaskStat struct {
	// Core is the core that executed the task.
	Core int
	// Start and End are the simulated cycles at which the task started
	// and completed.
	Start, End int64
	// L2Misses is the number of shared-L2 misses the task incurred.
	L2Misses int64
	// Refs is the number of memory references the task issued.
	Refs int64
}

// Result summarises a simulation run.
type Result struct {
	// Config is the machine configuration simulated.
	Config config.CMP
	// Scheduler is the name of the scheduler used.
	Scheduler string
	// Cycles is the total execution time.
	Cycles int64
	// Instructions is the total number of instructions retired.
	Instructions int64
	// Refs is the total number of memory references issued.
	Refs int64
	// L1 aggregates the private L1 statistics across cores.
	L1 cache.Stats
	// L2 aggregates the L2 statistics across every slice of the topology;
	// with the shared topology it is the single shared L2's statistics,
	// exactly as before the topology layer existed.
	L2 cache.Stats
	// L2Slices holds the per-slice L2 statistics, indexed by slice (one
	// entry for the shared topology, one per core for private, one per
	// cluster for clustered).
	L2Slices []cache.Stats
	// Mem is the chip-level off-chip memory statistics.
	Mem memsys.Stats
	// MemPorts holds the per-slice off-chip port statistics from the
	// bandwidth arbiter, indexed like L2Slices; QueueCycles attributes
	// channel contention to the slice that suffered it.
	MemPorts []memsys.Stats
	// MemUtilization is the fraction of cycles the off-chip channel was
	// busy (the paper's "memory bandwidth utilization").
	MemUtilization float64
	// CoreBusyCycles is the number of non-idle cycles per core.
	CoreBusyCycles []int64
	// TasksExecuted is the number of tasks run (equals the DAG size on a
	// successful run).
	TasksExecuted int
	// SchedMetrics carries scheduler-specific counters (e.g. "steals").
	SchedMetrics map[string]int64
	// TaskStats, when recorded, is indexed by task ID.
	TaskStats []TaskStat
}

// L2MissesPerKiloInstr returns the paper's primary cache metric: shared-L2
// misses per 1000 instructions.
func (r *Result) L2MissesPerKiloInstr() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.L2.Misses) * 1000 / float64(r.Instructions)
}

// AvgCoreUtilization returns the mean fraction of time cores were busy.
func (r *Result) AvgCoreUtilization() float64 {
	if r.Cycles == 0 || len(r.CoreBusyCycles) == 0 {
		return 0
	}
	var busy int64
	for _, b := range r.CoreBusyCycles {
		busy += b
	}
	return float64(busy) / float64(r.Cycles) / float64(len(r.CoreBusyCycles))
}

// Speedup returns base.Cycles / r.Cycles: the speedup of this run relative
// to a baseline run (typically the sequential execution on the same
// configuration).
func (r *Result) Speedup(base *Result) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(base.Cycles) / float64(r.Cycles)
}

// L2MissesByLevel aggregates per-task L2 misses by the tasks' Level field.
// It requires TaskStats to have been recorded.
func (r *Result) L2MissesByLevel(d *dag.DAG) map[int]int64 {
	out := make(map[int]int64)
	if r.TaskStats == nil {
		return out
	}
	for _, t := range d.Tasks() {
		out[t.Level] += r.TaskStats[t.ID].L2Misses
	}
	return out
}

// ErrCancelled is returned by RunWithOptions when Options.Cancel closes
// before the simulation completes.  It marks the abort as external — the
// run's inputs are fine, it was just not allowed to finish — so callers
// (the sweep engine's job timeouts) can distinguish it from simulation
// failures.
var ErrCancelled = errors.New("cmpsim: run cancelled")

// cancelCheckInterval is how many event-loop iterations pass between polls
// of Options.Cancel.  Each iteration is one historical event (a memory
// access, a tail charge, or a task completion), so at simulator throughput
// this bounds the cancellation latency to well under a millisecond while
// amortising the poll to nothing.
const cancelCheckInterval = 4096

// Run simulates d on cfg under scheduler s with default options.
func Run(d *dag.DAG, s sched.Scheduler, cfg config.CMP) (*Result, error) {
	return RunWithOptions(d, s, cfg, DefaultOptions())
}

// SequentialConfig returns the one-core baseline configuration (same caches
// and memory) that sequential runs are simulated on.
func SequentialConfig(cfg config.CMP) config.CMP {
	cfg.Cores = 1
	cfg.Name += "/sequential"
	return cfg
}

// RunSequential simulates the sequential execution of d on a single core of
// the given configuration (same caches and memory), which is the baseline
// the paper's speedups are reported against.
func RunSequential(d *dag.DAG, cfg config.CMP) (*Result, error) {
	return RunSequentialWithOptions(d, cfg, DefaultOptions())
}

// RunSequentialWithOptions is RunSequential with explicit options.
func RunSequentialWithOptions(d *dag.DAG, cfg config.CMP, opts Options) (*Result, error) {
	return RunWithOptions(d, sched.NewPDF(), SequentialConfig(cfg), opts)
}

// event is a pending simulator event: core is ready to proceed at time.
//
// A core has at most one pending event (it is pushed when the core starts a
// task or finishes a memory access, and consumed before the next is pushed),
// so (time, core) is already a strict total order and no FIFO sequence
// number is needed: the pop order is identical to the historical
// (time, core, push-sequence) order.  The one-event-per-core invariant also
// bounds the queue at the core count, so the minheap backing array is
// allocated once and never grows.
type event struct {
	time int64
	core int32
}

// Less orders events by (time, core); it is the minheap.Ordered method.
func (e event) Less(other event) bool {
	return e.time < other.time || (e.time == other.time && e.core < other.core)
}

// coreState tracks what a core is doing.  The task pointer and generator
// are cached at assignment so the per-reference loop never re-resolves them
// through the DAG, and each core drains its generator through a block view:
// for recorded streams (refs.Sliced) the view aliases the stream's immutable
// arena directly — no copying at all — and for everything else it is the
// core's private buffer refilled by refs.ReadBlock, paying generator dispatch
// once per refs.BlockSize references instead of once per reference.
type coreState struct {
	busy      bool
	finishing bool // refs exhausted, waiting for trailing instructions
	task      *dag.Task
	gen       refs.Gen
	consumed  int64 // instructions charged for the current task so far
	start     int64 // cycle the current task started
	l2Misses  int64
	refs      int64

	buf            []refs.Ref // current block view (own, or a Sliced arena)
	bufPos, bufLen int
	own            []refs.Ref // private block buffer (slice of the run's arena)
}

// RunWithOptions simulates d on cfg under scheduler s.
func RunWithOptions(d *dag.DAG, s sched.Scheduler, cfg config.CMP, opts Options) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opts.ValidateDAG {
		if err := d.Validate(); err != nil {
			return nil, err
		}
	}
	if d.NumTasks() == 0 {
		return nil, fmt.Errorf("cmpsim: empty DAG %q", d.Name)
	}
	maxCycles := opts.MaxCycles
	if maxCycles <= 0 {
		maxCycles = int64(1e15)
	}
	// Cancellation countdown: with no Cancel channel the interval is set so
	// far out the poll never fires, keeping the uncancelled hot loop free of
	// even the non-blocking select.
	cancelEvery := int64(1) << 62
	if opts.Cancel != nil {
		cancelEvery = cancelCheckInterval
	}
	cancelIn := cancelEvery

	hier, err := cache.NewHierarchy(cfg.HierarchyConfig())
	if err != nil {
		return nil, err
	}
	mem, err := memsys.New(cfg.Memory)
	if err != nil {
		return nil, err
	}
	// Every L2 slice arbitrates for the same off-chip channel (pins are a
	// chip-level resource); the arbiter attributes queueing per slice.
	arb, err := memsys.NewArbiter(mem, hier.NumSlices())
	if err != nil {
		return nil, err
	}

	d.ResetRefs()
	n := d.NumTasks()
	p := cfg.Cores
	// Capacity- and topology-aware schedulers (sched.MachineAware) are told
	// what machine they are placing tasks onto before Reset; the classic
	// schedulers ignore this entirely, so their event streams — and the
	// golden fingerprints pinned on them — are untouched.
	// Trace-aware schedulers emit steal/migrate/pin events through the same
	// tracer the simulator stamps lifecycle events into.  The tracer is set
	// unconditionally (nil clears any sink from a previous run), and a nil
	// tracer makes every emission a no-op, so untraced runs behave exactly
	// as before.
	if ta, ok := s.(sched.TraceAware); ok {
		ta.SetTracer(opts.Tracer)
	}
	if ma, ok := s.(sched.MachineAware); ok {
		sliceOf := make([]int, p)
		for c := range sliceOf {
			sliceOf[c] = hier.SliceOf(c)
		}
		ma.SetMachine(sched.Machine{
			Cores:        p,
			LineBytes:    cfg.L2.LineBytes,
			L1Bytes:      cfg.L1.SizeBytes,
			L2SliceBytes: hier.SliceConfig().SizeBytes,
			Slices:       hier.NumSlices(),
			SliceOfCore:  sliceOf,
		})
	}
	s.Reset(d, p)

	indeg := make([]int, n)
	for _, t := range d.Tasks() {
		indeg[t.ID] = len(t.Preds)
	}

	cores := make([]coreState, p)
	busyCycles := make([]int64, p)
	var taskStats []TaskStat
	if opts.RecordTaskStats {
		taskStats = make([]TaskStat, n)
	}

	// One arena backs every core's private block buffer; slicing it keeps
	// the steady-state loop free of allocations.
	bufArena := make([]refs.Ref, p*refs.BlockSize)
	for c := range cores {
		cores[c].own = bufArena[c*refs.BlockSize : (c+1)*refs.BlockSize]
	}

	events := minheap.New[event](p)

	completed := 0
	l1Lat := cfg.L1.HitLatency
	// The topology scales per-slice capacity and hit latency together; with
	// the shared topology the slice latency is exactly cfg.L2.HitLatency.
	l2Lat := hier.SliceConfig().HitLatency

	tr := opts.Tracer
	// The queue-depth histogram is the only in-run metric; its handle is
	// resolved once here and the observation below is gated on it, so a
	// disabled registry adds no work to the completion path.
	var qdepth *obs.Histogram
	if opts.Metrics != nil {
		qdepth = opts.Metrics.Histogram("sched.queue_depth", obs.ExpBuckets(1, 2, 14))
	}

	// assign hands ready tasks to idle cores at time now, trying prefer
	// first (the core that just completed a task), then the others in
	// index order.
	assign := func(now int64, prefer int) {
		tryCore := func(c int) {
			if cores[c].busy {
				return
			}
			id, ok := s.Next(c)
			if !ok {
				return
			}
			tr.Run(int32(id), int32(c))
			t := d.Task(id)
			if t.Refs != nil {
				t.Refs.Reset()
			}
			st := &cores[c]
			own := st.own
			*st = coreState{busy: true, task: t, gen: t.Refs, start: now, own: own}
			events.Push(event{time: now, core: int32(c)})
		}
		if prefer >= 0 && prefer < p {
			tryCore(prefer)
		}
		for c := 0; c < p; c++ {
			if s.Pending() == 0 {
				break
			}
			tryCore(c)
		}
	}

	roots := d.Roots()
	if len(roots) == 0 {
		return nil, fmt.Errorf("cmpsim: DAG %q has no root tasks", d.Name)
	}
	// Roots spawn before any core runs (core -1, time 0) — the sequential
	// program point at which the parallel computation begins.
	tr.SetTime(0)
	for _, id := range roots {
		tr.Spawn(int32(id), -1)
		tr.Ready(int32(id), -1)
	}
	s.MakeReady(-1, roots)

	// ready is reused across completions; its capacity is the DAG's largest
	// fan-out, so the steady-state loop never regrows it.
	maxOut := 0
	for _, t := range d.Tasks() {
		if len(t.Succs) > maxOut {
			maxOut = len(t.Succs)
		}
	}
	ready := make([]dag.TaskID, 0, maxOut)

	assign(0, -1)

	var now int64
	for events.Len() > 0 {
		ev := events.Pop()
		now = ev.time
		c := int(ev.core)
		st := &cores[c]

		// Process core c inline for as long as it remains the earliest
		// event.  Each iteration is exactly one historical event (a memory
		// access completing, the trailing instructions completing, or the
		// task completing); the loop continues without heap traffic when
		// the step's completion time still precedes every other core's
		// pending event under the (time, core) order — the same-core
		// lookahead that keeps L1-hit bursts out of the heap.
		for {
			if now > maxCycles {
				return nil, fmt.Errorf("cmpsim: exceeded MaxCycles=%d (deadlock or runaway workload?)", maxCycles)
			}
			if cancelIn--; cancelIn <= 0 {
				cancelIn = cancelEvery
				select {
				case <-opts.Cancel:
					return nil, fmt.Errorf("%w after %d cycles", ErrCancelled, now)
				default:
				}
			}
			if !st.busy {
				// Stale event (should not happen); ignore defensively.
				break
			}

			if !st.finishing {
				if st.bufPos == st.bufLen && st.gen != nil {
					// Refill the block view.  Recorded streams hand over
					// their whole immutable arena in one shot (zero copies);
					// other generators are drained block-wise into the
					// core's own buffer.  An empty view means the stream is
					// exhausted; a short non-empty block does not.
					if sl, ok := st.gen.(refs.Sliced); ok {
						st.buf = sl.NextSlice()
						st.bufLen = len(st.buf)
					} else {
						st.bufLen = refs.ReadBlock(st.gen, st.own)
						st.buf = st.own
					}
					st.bufPos = 0
				}
				if st.bufPos < st.bufLen {
					ref := st.buf[st.bufPos]
					st.bufPos++
					issue := now + ref.Instrs
					st.consumed += ref.Instrs
					st.refs++
					acc := hier.Access(c, ref.Addr, ref.Write)
					var done int64
					switch acc.Level {
					case cache.LevelL1:
						done = issue + l1Lat
					case cache.LevelL2:
						done = issue + l1Lat + l2Lat
						// Dirty L2 victims displaced by an L1 write-back
						// still consume off-chip bandwidth.
						for i := 0; i < acc.OffChipTransfers; i++ {
							arb.Writeback(acc.Slice, issue)
						}
					case cache.LevelMemory:
						st.l2Misses++
						for i := 1; i < acc.OffChipTransfers; i++ {
							arb.Writeback(acc.Slice, issue)
						}
						done = arb.Fetch(acc.Slice, issue+l1Lat+l2Lat)
					}
					busyCycles[c] += done - now
					if events.Len() == 0 || (event{time: done, core: ev.core}).Less(events.Min()) {
						now = done
						continue
					}
					events.Push(event{time: done, core: ev.core})
					break
				}
				// References exhausted: charge the trailing instructions.
				tail := st.task.Instrs - st.consumed
				if tail < 0 {
					tail = 0
				}
				st.finishing = true
				busyCycles[c] += tail
				done := now + tail
				if events.Len() == 0 || (event{time: done, core: ev.core}).Less(events.Min()) {
					now = done
					continue
				}
				events.Push(event{time: done, core: ev.core})
				break
			}

			// Task completion.
			task := st.task
			if taskStats != nil {
				taskStats[task.ID] = TaskStat{
					Core:     c,
					Start:    st.start,
					End:      now,
					L2Misses: st.l2Misses,
					Refs:     st.refs,
				}
			}
			completed++
			tr.SetTime(now)
			tr.Finish(int32(task.ID), int32(c))
			ready = ready[:0]
			for _, succ := range task.Succs {
				indeg[succ]--
				if indeg[succ] == 0 {
					tr.Spawn(int32(succ), int32(c))
					tr.Ready(int32(succ), int32(c))
					ready = append(ready, succ)
				}
			}
			*st = coreState{own: st.own}
			if len(ready) > 0 {
				s.MakeReady(c, ready)
			}
			if qdepth != nil {
				qdepth.Observe(int64(s.Pending()))
			}
			assign(now, c)
			break
		}
	}

	if completed != n {
		return nil, fmt.Errorf("cmpsim: deadlock: executed %d of %d tasks (cyclic or disconnected dependences?)", completed, n)
	}

	res := &Result{
		Config:         cfg,
		Scheduler:      s.Name(),
		Cycles:         now,
		Instructions:   d.TotalInstrs(),
		Refs:           d.TotalRefs(),
		L1:             hier.L1Stats(),
		L2:             hier.L2Stats(),
		L2Slices:       hier.L2SliceStats(),
		Mem:            mem.Stats(),
		MemPorts:       arb.PortStats(),
		MemUtilization: mem.Utilization(now),
		CoreBusyCycles: busyCycles,
		TasksExecuted:  completed,
		SchedMetrics:   s.Metrics(),
		TaskStats:      taskStats,
	}
	if opts.Metrics != nil {
		publish(opts.Metrics, res, d)
	}
	return res, nil
}

// publish folds one run's results into the registry: totals as counters (so
// repeated runs — a sweep's jobs — accumulate), workload annotations as
// gauges, and per-task distributions as histograms.  The registry sorts its
// snapshot and every value here derives from deterministic simulation state,
// so the published view is reproducible run over run.
func publish(reg *obs.Registry, res *Result, d *dag.DAG) {
	reg.Counter("sim.runs").Add(1)
	reg.Counter("sim.cycles").Add(res.Cycles)
	reg.Counter("sim.instructions").Add(res.Instructions)
	reg.Counter("sim.refs").Add(res.Refs)
	reg.Counter("sim.tasks").Add(int64(res.TasksExecuted))
	res.L1.Publish(reg, "cache.l1")
	res.L2.Publish(reg, "cache.l2")
	res.Mem.Publish(reg, "mem")
	// Arbiter stalls: queueing attributed across every off-chip port.
	var queue int64
	for _, ps := range res.MemPorts {
		queue += ps.QueueCycles
	}
	reg.Counter("mem.arbiter.queue_cycles").Add(queue)
	for name, v := range res.SchedMetrics {
		reg.Counter("sched." + name).Add(v)
	}
	for name, v := range d.Metrics() {
		reg.Gauge("dag." + name).Set(v)
	}
	if res.TaskStats != nil {
		cyc := reg.Histogram("task.cycles", obs.ExpBuckets(64, 4, 10))
		miss := reg.Histogram("task.l2_misses", obs.ExpBuckets(1, 4, 8))
		for _, ts := range res.TaskStats {
			cyc.Observe(ts.End - ts.Start)
			miss.Observe(ts.L2Misses)
		}
	}
}
