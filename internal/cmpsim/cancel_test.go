package cmpsim

import (
	"errors"
	"testing"

	"cmpsched/internal/dag"
	"cmpsched/internal/refs"
	"cmpsched/internal/sched"
)

// TestRunCancelled: a closed Cancel channel aborts the run with ErrCancelled
// once the event loop reaches its poll point.
func TestRunCancelled(t *testing.T) {
	// Enough references that the loop crosses the poll interval.
	rs := make([]refs.Ref, 2*cancelCheckInterval)
	for i := range rs {
		rs[i] = refs.Ref{Addr: 128, Instrs: 1}
	}
	d := dag.New("cancelled")
	d.AddTask("t", refs.NewPoints(rs, 0))

	cancelled := make(chan struct{})
	close(cancelled)
	opts := DefaultOptions()
	opts.Cancel = cancelled
	_, err := RunWithOptions(d, sched.NewPDF(), testConfig(1, 64*1024), opts)
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}

	// The same run with no Cancel channel completes normally.
	opts.Cancel = nil
	if _, err := RunWithOptions(d, sched.NewPDF(), testConfig(1, 64*1024), opts); err != nil {
		t.Fatalf("uncancelled run failed: %v", err)
	}
}

// TestCancelExcludedFromFingerprint: the cancellation channel is a control
// input, not a semantic one — two option sets differing only in Cancel must
// share one cache key.
func TestCancelExcludedFromFingerprint(t *testing.T) {
	a := DefaultOptions()
	b := DefaultOptions()
	b.Cancel = make(chan struct{})
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("Cancel leaked into the fingerprint: %q vs %q", a.Fingerprint(), b.Fingerprint())
	}
}
