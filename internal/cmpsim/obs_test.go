package cmpsim_test

import (
	"bytes"
	"reflect"
	"testing"

	"cmpsched/internal/cache"
	"cmpsched/internal/cmpsim"
	"cmpsched/internal/config"
	"cmpsched/internal/obs"
	"cmpsched/internal/sched"
	"cmpsched/internal/workload"
)

// tracedRun simulates the small mergesort under name, recording into a fresh
// tracer, and returns the tracer plus the result.
func tracedRun(t *testing.T, name string, topo cache.Topology) (*obs.Tracer, *cmpsim.Result) {
	t.Helper()
	d, _, err := workload.NewMergesort(workload.MergesortConfig{
		Elements: 32 << 10, TaskWorkingSetBytes: 4 << 10,
	}).Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := config.Default(8)
	if err != nil {
		t.Fatal(err)
	}
	cfg = cfg.Scaled(config.DefaultScale * 8).WithTopology(topo)
	s, err := sched.New(name)
	if err != nil {
		t.Fatal(err)
	}
	opts := cmpsim.DefaultOptions()
	tr := obs.NewTracer()
	opts.Tracer = tr
	res, err := cmpsim.RunWithOptions(d, s, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	return tr, res
}

// TestTraceLifecycleCoverage checks that every scheduler's trace carries the
// lifecycle stages it can produce: all schedulers spawn/ready/run/finish
// every task; the stealing schedulers add steal events; the space-bounded
// scheduler adds pin events.
func TestTraceLifecycleCoverage(t *testing.T) {
	cases := []struct {
		sched string
		topo  cache.Topology
		want  []obs.EventKind
	}{
		{"pdf", cache.Shared(), []obs.EventKind{obs.EvSpawn, obs.EvReady, obs.EvRun, obs.EvFinish}},
		{"ws", cache.Shared(), []obs.EventKind{obs.EvSpawn, obs.EvReady, obs.EvRun, obs.EvFinish, obs.EvSteal}},
		{"ws:nearest", cache.Clustered(4), []obs.EventKind{obs.EvSpawn, obs.EvReady, obs.EvRun, obs.EvFinish, obs.EvSteal}},
		{"sb", cache.Clustered(4), []obs.EventKind{obs.EvSpawn, obs.EvReady, obs.EvRun, obs.EvFinish, obs.EvPin}},
	}
	for _, tc := range cases {
		t.Run(tc.sched, func(t *testing.T) {
			tr, res := tracedRun(t, tc.sched, tc.topo)
			counts := map[obs.EventKind]int{}
			for _, e := range tr.Events() {
				counts[e.Kind]++
			}
			for _, kind := range tc.want {
				if counts[kind] == 0 {
					t.Errorf("no %s events recorded (counts %v)", kind, counts)
				}
			}
			// Every task runs and finishes exactly once.
			if counts[obs.EvRun] != res.TasksExecuted || counts[obs.EvFinish] != res.TasksExecuted {
				t.Errorf("run/finish = %d/%d, want %d each",
					counts[obs.EvRun], counts[obs.EvFinish], res.TasksExecuted)
			}
		})
	}
}

// TestTraceExportDeterministicAcrossReruns pins the determinism contract of
// the -trace flag: rebuilding the same workload and rerunning the same
// scheduler yields a byte-identical Chrome trace document.
func TestTraceExportDeterministicAcrossReruns(t *testing.T) {
	export := func() []byte {
		tr, _ := tracedRun(t, "ws", cache.Shared())
		var buf bytes.Buffer
		if err := tr.WriteChromeTrace(&buf, obs.ChromeTraceConfig{Cores: 8}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := export(), export()
	if !bytes.Equal(a, b) {
		t.Fatalf("identical runs exported different trace documents (%d vs %d bytes)", len(a), len(b))
	}
	if err := obs.ValidateChromeTrace(a, []string{"spawn", "ready", "run", "finish", "steal"}); err != nil {
		t.Fatalf("exported trace invalid: %v", err)
	}
}

// TestInstrumentationDoesNotChangeResults is the zero-cost contract from the
// result side: a fully observed run (tracer + metrics + task stats) produces
// exactly the same simulation outcome as an unobserved one.  Together with
// TestGoldenEngineEquivalence (unchanged pre-instrumentation fingerprints)
// this proves observation never perturbs the simulation.
func TestInstrumentationDoesNotChangeResults(t *testing.T) {
	run := func(observe bool) *cmpsim.Result {
		d, _, err := workload.NewMergesort(workload.MergesortConfig{
			Elements: 32 << 10, TaskWorkingSetBytes: 4 << 10,
		}).Build()
		if err != nil {
			t.Fatal(err)
		}
		cfg, err := config.Default(8)
		if err != nil {
			t.Fatal(err)
		}
		cfg = cfg.Scaled(config.DefaultScale * 8)
		opts := cmpsim.DefaultOptions()
		if observe {
			opts.Tracer = obs.NewTracer()
			opts.Metrics = obs.NewRegistry()
		}
		res, err := cmpsim.RunWithOptions(d, sched.NewWS(), cfg, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain, observed := run(false), run(true)
	if plain.Cycles != observed.Cycles ||
		plain.L2.Misses != observed.L2.Misses ||
		plain.Mem.Fetches != observed.Mem.Fetches ||
		!reflect.DeepEqual(plain.SchedMetrics, observed.SchedMetrics) ||
		!reflect.DeepEqual(plain.CoreBusyCycles, observed.CoreBusyCycles) {
		t.Fatalf("observation changed the simulation:\nplain    cycles=%d l2=%d sched=%v\nobserved cycles=%d l2=%d sched=%v",
			plain.Cycles, plain.L2.Misses, plain.SchedMetrics,
			observed.Cycles, observed.L2.Misses, observed.SchedMetrics)
	}
}

// TestOptionsFingerprintStable pins the byte format sweep keys depend on:
// it must match the historical fmt %+v rendering of the pre-instrumentation
// Options struct, and must not move when instrumentation sinks are attached.
func TestOptionsFingerprintStable(t *testing.T) {
	opts := cmpsim.Options{MaxCycles: 5000, RecordTaskStats: true}
	want := "{MaxCycles:5000 RecordTaskStats:true ValidateDAG:false}"
	if got := opts.Fingerprint(); got != want {
		t.Fatalf("Fingerprint() = %q, want %q", got, want)
	}
	opts.Tracer = obs.NewTracer()
	opts.Metrics = obs.NewRegistry()
	if got := opts.Fingerprint(); got != want {
		t.Fatalf("instrumentation sinks moved the fingerprint: %q", got)
	}
}

// TestMetricsPublishDAGAnnotations checks that workload-recorded DAG metrics
// (the graph kernels' frontier sizes) surface in the registry under the
// "dag." prefix.
func TestMetricsPublishDAGAnnotations(t *testing.T) {
	d, _, err := workload.NewBFS(workload.BFSConfig{
		Shape: workload.GraphShape{Family: "uniform", Vertices: 1 << 10, EdgesPerTask: 256},
	}).Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := config.Default(8)
	if err != nil {
		t.Fatal(err)
	}
	cfg = cfg.Scaled(config.DefaultScale * 8)
	opts := cmpsim.DefaultOptions()
	reg := obs.NewRegistry()
	opts.Metrics = reg
	if _, err := cmpsim.RunWithOptions(d, sched.NewPDF(), cfg, opts); err != nil {
		t.Fatal(err)
	}
	var levels, frontiers int64
	for _, s := range reg.Snapshot() {
		switch {
		case s.Name == "dag.bfs.levels":
			levels = s.Value
		case len(s.Name) > len("dag.bfs.frontier.") && s.Name[:len("dag.bfs.frontier.")] == "dag.bfs.frontier.":
			frontiers++
		}
	}
	if levels == 0 || frontiers != levels {
		t.Fatalf("dag annotations not published: levels=%d, frontier entries=%d", levels, frontiers)
	}
}
