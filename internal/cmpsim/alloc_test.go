package cmpsim

import (
	"testing"

	"cmpsched/internal/dag"
	"cmpsched/internal/refs"
	"cmpsched/internal/sched"
)

// allocDAG builds a fan-out DAG whose per-task reference count scales with
// refsPerTask while everything else (task count, edges) stays fixed, so the
// difference in allocations between two sizes isolates the per-reference
// cost of the steady-state loop.
func allocDAG(tasks int, refsPerTask int64) *dag.DAG {
	d := dag.New("alloc")
	root := d.AddComputeTask("root", 1)
	const lineBytes = 64
	for i := 0; i < tasks; i++ {
		g := refs.NewConcat(
			&refs.Scan{Base: uint64(i) << 24, Bytes: refsPerTask / 2 * lineBytes, LineBytes: lineBytes, InstrsPerRef: 2},
			&refs.Random{Base: uint64(i) << 24, Bytes: 1 << 16, LineBytes: lineBytes, Count: refsPerTask / 2, Seed: uint64(i + 1), InstrsPerRef: 3},
		)
		task := d.AddTask("work", g)
		d.MustEdge(root.ID, task.ID)
	}
	return d
}

// TestSteadyStateZeroAllocsPerRef guards the engine's allocation hygiene:
// simulating 16x more references must not allocate more than simulating the
// small run.  Per-run setup (hierarchy, arena, result) and per-task costs
// are identical between the two sizes, so any per-reference allocation —
// event boxing, ready-list regrowth, generator refills — shows up as a
// nonzero difference.
func TestSteadyStateZeroAllocsPerRef(t *testing.T) {
	const tasks = 32
	cfg := testConfig(4, 64*1024)
	opts := Options{RecordTaskStats: false, ValidateDAG: false}
	measure := func(refsPerTask int64) float64 {
		d := allocDAG(tasks, refsPerTask)
		s := sched.NewPDF()
		return testing.AllocsPerRun(5, func() {
			if _, err := RunWithOptions(d, s, cfg, opts); err != nil {
				t.Fatal(err)
			}
		})
	}
	small := measure(1 << 10)
	big := measure(1 << 14)
	extraRefs := float64(tasks) * float64(1<<14-1<<10)
	if perRef := (big - small) / extraRefs; perRef > 0 {
		t.Fatalf("steady-state loop allocates: %.0f allocs at %d refs/task vs %.0f at %d (%.6f allocs/ref)",
			big, 1<<14, small, 1<<10, perRef)
	}
}

// TestRunAllocsBounded pins the absolute allocation count of a full run to
// the per-run setup budget: a few allocations per core/slice plus a
// constant, independent of the hundreds of thousands of references
// simulated.  This catches regressions that add "only" per-task or per-run
// allocations, which the scaling test above would miss.
func TestRunAllocsBounded(t *testing.T) {
	d := allocDAG(32, 1<<12)
	cfg := testConfig(8, 64*1024)
	opts := Options{RecordTaskStats: false, ValidateDAG: false}
	s := sched.NewPDF()
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := RunWithOptions(d, s, cfg, opts); err != nil {
			t.Fatal(err)
		}
	})
	// 8 L1s + 1 L2 + hierarchy/arbiter/result plumbing lands around 60;
	// 200 leaves headroom without admitting anything that scales.
	if allocs > 200 {
		t.Fatalf("full run allocated %.0f times, want setup-only (<= 200)", allocs)
	}
}
