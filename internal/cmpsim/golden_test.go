package cmpsim_test

// Golden cycle-for-cycle equivalence tests for the event engine.
//
// The simulator's inner loop has been rewritten for throughput (typed event
// heap, same-core lookahead, batched reference streams); these tests pin the
// engine's observable output — cycles, every cache/memory counter, per-slice
// and per-task accounting — to fingerprints captured from the pre-refactor
// engine, across schedulers x cache topologies x regular/irregular
// workloads.  Any timing or accounting divergence, however small, shows up
// as a fingerprint mismatch.
//
// Regenerate with:
//
//	go test ./internal/cmpsim -run TestGoldenEngineEquivalence -update-golden

import (
	"bufio"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"cmpsched/internal/cache"
	"cmpsched/internal/cmpsim"
	"cmpsched/internal/config"
	"cmpsched/internal/dag"
	"cmpsched/internal/sched"
	"cmpsched/internal/workload"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_engine.txt from the current engine")

const goldenFile = "testdata/golden_engine.txt"

// goldenWorkloads are the DAG builders the engine is pinned on: one regular
// divide-and-conquer benchmark and one irregular graph kernel, both small
// enough that the full matrix runs in seconds.
func goldenWorkloads() []struct {
	name  string
	build func() (*dag.DAG, error)
} {
	return []struct {
		name  string
		build func() (*dag.DAG, error)
	}{
		{"mergesort", func() (*dag.DAG, error) {
			d, _, err := workload.NewMergesort(workload.MergesortConfig{
				Elements: 32 << 10, TaskWorkingSetBytes: 4 << 10,
			}).Build()
			return d, err
		}},
		{"bfs-uniform", func() (*dag.DAG, error) {
			d, _, err := workload.NewBFS(workload.BFSConfig{
				Shape: workload.GraphShape{Family: "uniform", Vertices: 1 << 12, EdgesPerTask: 512},
			}).Build()
			return d, err
		}},
		{"connectivity-rmat", func() (*dag.DAG, error) {
			d, _, err := workload.NewConnectivity(workload.ConnectivityConfig{
				Shape: workload.GraphShape{Family: "rmat", Vertices: 1 << 12, EdgesPerTask: 512},
			}).Build()
			return d, err
		}},
		{"kcore-uniform", func() (*dag.DAG, error) {
			d, _, err := workload.NewKCore(workload.KCoreConfig{
				Shape: workload.GraphShape{Family: "uniform", Vertices: 1 << 12, EdgesPerTask: 512},
			}).Build()
			return d, err
		}},
		{"mis-rmat", func() (*dag.DAG, error) {
			d, _, err := workload.NewMIS(workload.MISConfig{
				Shape: workload.GraphShape{Family: "rmat", Vertices: 1 << 12, EdgesPerTask: 512},
			}).Build()
			return d, err
		}},
		{"matching-uniform", func() (*dag.DAG, error) {
			d, _, err := workload.NewMatching(workload.MatchingConfig{
				Shape: workload.GraphShape{Family: "uniform", Vertices: 1 << 12, EdgesPerTask: 512},
			}).Build()
			return d, err
		}},
		// One compressed-representation pin: must fingerprint identically to
		// a flat build of the same instance (the workload layer only changes
		// host storage, never the simulated trace), and catches any engine
		// sensitivity to the representation plumbing.
		{"bfs-uniform-compressed", func() (*dag.DAG, error) {
			d, _, err := workload.NewBFS(workload.BFSConfig{
				Shape: workload.GraphShape{Family: "uniform", Vertices: 1 << 12, EdgesPerTask: 512,
					Representation: "compressed"},
			}).Build()
			return d, err
		}},
	}
}

// goldenTopologies is the cache-topology axis of the pinning matrix.
func goldenTopologies() map[string]cache.Topology {
	return map[string]cache.Topology{
		"shared":      cache.Shared(),
		"private":     cache.Private(),
		"clustered-4": cache.Clustered(4),
	}
}

// fingerprint folds every observable field of a result into one line:
// headline counters verbatim, bulky per-slice / per-core / per-task arrays
// as an FNV-1a hash so mismatches are detected without storing megabytes.
func fingerprint(r *cmpsim.Result) string {
	h := fnv.New64a()
	for _, s := range r.L2Slices {
		fmt.Fprintf(h, "s:%+v;", s)
	}
	for _, p := range r.MemPorts {
		fmt.Fprintf(h, "p:%+v;", p)
	}
	for _, b := range r.CoreBusyCycles {
		fmt.Fprintf(h, "b:%d;", b)
	}
	for _, ts := range r.TaskStats {
		fmt.Fprintf(h, "t:%+v;", ts)
	}
	return fmt.Sprintf("cycles=%d instrs=%d refs=%d l1=%+v l2=%+v mem=%+v tasks=%d detail=%016x",
		r.Cycles, r.Instructions, r.Refs, r.L1, r.L2, r.Mem, r.TasksExecuted, h.Sum64())
}

// computeGoldens runs the full pinning matrix and returns name->fingerprint.
func computeGoldens(t *testing.T) map[string]string {
	t.Helper()
	out := make(map[string]string)
	for _, w := range goldenWorkloads() {
		for topoName, topo := range goldenTopologies() {
			for _, schedName := range sched.Names() {
				cfg, err := config.Default(8)
				if err != nil {
					t.Fatalf("config: %v", err)
				}
				cfg = cfg.Scaled(config.DefaultScale * 8).WithTopology(topo)
				d, err := w.build()
				if err != nil {
					t.Fatalf("%s: build: %v", w.name, err)
				}
				s, err := sched.New(schedName)
				if err != nil {
					t.Fatalf("sched: %v", err)
				}
				res, err := cmpsim.Run(d, s, cfg)
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", w.name, topoName, schedName, err)
				}
				out[fmt.Sprintf("%s/%s/%s/p8", w.name, topoName, schedName)] = fingerprint(res)
			}
		}
		// One-core sequential baseline (exercises the p=1 event path).
		cfg, err := config.Default(8)
		if err != nil {
			t.Fatalf("config: %v", err)
		}
		cfg = cfg.Scaled(config.DefaultScale * 8)
		d, err := w.build()
		if err != nil {
			t.Fatalf("%s: build: %v", w.name, err)
		}
		res, err := cmpsim.RunSequential(d, cfg)
		if err != nil {
			t.Fatalf("%s/seq: %v", w.name, err)
		}
		out[fmt.Sprintf("%s/shared/seq/p1", w.name)] = fingerprint(res)
	}
	return out
}

func readGoldens(t *testing.T) map[string]string {
	t.Helper()
	f, err := os.Open(goldenFile)
	if err != nil {
		t.Fatalf("open goldens (run with -update-golden to create): %v", err)
	}
	defer f.Close()
	out := make(map[string]string)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, fp, ok := strings.Cut(line, "\t")
		if !ok {
			t.Fatalf("malformed golden line %q", line)
		}
		out[name] = fp
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("read goldens: %v", err)
	}
	return out
}

func writeGoldens(t *testing.T, goldens map[string]string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(goldenFile), 0o755); err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(goldens))
	for name := range goldens {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("# Engine equivalence fingerprints: workload/topology/scheduler/cores -> result fingerprint.\n")
	b.WriteString("# Captured from the pre-refactor (container/heap, per-ref dispatch) engine; regenerate\n")
	b.WriteString("# with `go test ./internal/cmpsim -run TestGoldenEngineEquivalence -update-golden`.\n")
	for _, name := range names {
		fmt.Fprintf(&b, "%s\t%s\n", name, goldens[name])
	}
	if err := os.WriteFile(goldenFile, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestGoldenEngineEquivalence(t *testing.T) {
	got := computeGoldens(t)
	if *updateGolden {
		writeGoldens(t, got)
		t.Logf("wrote %d golden fingerprints to %s", len(got), goldenFile)
		return
	}
	want := readGoldens(t)
	if len(want) != len(got) {
		t.Errorf("golden file has %d entries, matrix produced %d", len(want), len(got))
	}
	for name, wantFP := range want {
		gotFP, ok := got[name]
		if !ok {
			t.Errorf("%s: missing from current matrix", name)
			continue
		}
		if gotFP != wantFP {
			t.Errorf("%s:\n  got  %s\n  want %s", name, gotFP, wantFP)
		}
	}
}
