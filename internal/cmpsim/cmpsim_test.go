package cmpsim

import (
	"testing"

	"cmpsched/internal/cache"
	"cmpsched/internal/config"
	"cmpsched/internal/dag"
	"cmpsched/internal/memsys"
	"cmpsched/internal/refs"
	"cmpsched/internal/sched"
)

// testConfig returns a small, fast machine configuration for unit tests.
func testConfig(cores int, l2Bytes int64) config.CMP {
	return config.CMP{
		Name:  "test",
		Cores: cores,
		Scale: 1,
		L1: cache.Config{
			SizeBytes: 1024, LineBytes: 64, Assoc: 4, HitLatency: 1,
		},
		L2: cache.Config{
			SizeBytes: l2Bytes, LineBytes: 64, Assoc: 8, HitLatency: 10,
		},
		Memory: memsys.Config{LatencyCycles: 300, ServiceIntervalCycles: 30},
	}
}

func TestSingleComputeTaskCycleCount(t *testing.T) {
	d := dag.New("one")
	d.AddComputeTask("t", 1000)
	res, err := Run(d, sched.NewPDF(), testConfig(1, 64*1024))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Cycles != 1000 {
		t.Fatalf("Cycles = %d, want 1000 (1 IPC, no memory)", res.Cycles)
	}
	if res.Instructions != 1000 || res.TasksExecuted != 1 {
		t.Fatalf("result = %+v", res)
	}
}

func TestSingleReferenceLatencies(t *testing.T) {
	// One task with a single cold reference: 5 instr + L1 miss + L2 miss
	// -> memory: 5 + 1 + 10 + 300 = 316 cycles.
	d := dag.New("one-ref")
	d.AddTask("t", refs.NewPoints([]refs.Ref{{Addr: 0, Instrs: 5}}, 0))
	res, err := Run(d, sched.NewPDF(), testConfig(1, 64*1024))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := int64(5 + 1 + 10 + 300)
	if res.Cycles != want {
		t.Fatalf("Cycles = %d, want %d", res.Cycles, want)
	}
	if res.L2.Misses != 1 || res.Mem.Fetches != 1 {
		t.Fatalf("miss accounting: L2=%+v mem=%+v", res.L2, res.Mem)
	}
}

func TestRepeatedReferenceHitsInL1(t *testing.T) {
	// Second access to the same line is an L1 hit: 2 + 1 cycles.
	d := dag.New("two-ref")
	d.AddTask("t", refs.NewPoints([]refs.Ref{
		{Addr: 128, Instrs: 2},
		{Addr: 128, Instrs: 2},
	}, 0))
	res, err := Run(d, sched.NewPDF(), testConfig(1, 64*1024))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := int64((2 + 1 + 10 + 300) + (2 + 1))
	if res.Cycles != want {
		t.Fatalf("Cycles = %d, want %d", res.Cycles, want)
	}
	if res.L1.Hits != 1 {
		t.Fatalf("L1 hits = %d, want 1", res.L1.Hits)
	}
}

func TestTailInstructionsCharged(t *testing.T) {
	// A task whose generator reports more instructions than the sum of
	// its per-reference counts: the remainder is charged after the last
	// reference.
	d := dag.New("tail")
	d.AddTask("t", refs.NewWithTail(refs.NewPoints([]refs.Ref{{Addr: 0, Instrs: 1}}, 0), 50))
	res, err := Run(d, sched.NewPDF(), testConfig(1, 64*1024))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := int64(1 + 1 + 10 + 300 + 50)
	if res.Cycles != want {
		t.Fatalf("Cycles = %d, want %d", res.Cycles, want)
	}
}

func TestDependenciesRespected(t *testing.T) {
	d := dag.New("diamond")
	a := d.AddComputeTask("a", 100)
	b := d.AddComputeTask("b", 200)
	c := d.AddComputeTask("c", 300)
	e := d.AddComputeTask("e", 50)
	d.Fork(a.ID, b.ID, c.ID)
	d.Join(e.ID, b.ID, c.ID)
	for _, name := range sched.Names() {
		s, _ := sched.New(name)
		res, err := Run(d, s, testConfig(2, 64*1024))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ts := res.TaskStats
		if ts == nil {
			t.Fatalf("%s: TaskStats not recorded", name)
		}
		for _, task := range d.Tasks() {
			for _, p := range task.Preds {
				if ts[task.ID].Start < ts[p].End {
					t.Fatalf("%s: task %d started at %d before pred %d ended at %d",
						name, task.ID, ts[task.ID].Start, p, ts[p].End)
				}
			}
		}
		// b and c run in parallel on 2 cores: makespan = 100+300+50.
		if res.Cycles != 450 {
			t.Fatalf("%s: Cycles = %d, want 450", name, res.Cycles)
		}
	}
}

func TestPerCoreSerialExecutionNoOverlap(t *testing.T) {
	d := dag.New("fan")
	root := d.AddComputeTask("root", 10)
	for i := 0; i < 8; i++ {
		c := d.AddComputeTask("c", 100)
		d.MustEdge(root.ID, c.ID)
	}
	res, err := Run(d, sched.NewWS(), testConfig(2, 64*1024))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Group tasks by core and check their spans do not overlap.
	byCore := map[int][]TaskStat{}
	for _, ts := range res.TaskStats {
		byCore[ts.Core] = append(byCore[ts.Core], ts)
	}
	for core, list := range byCore {
		for i := 0; i < len(list); i++ {
			for j := i + 1; j < len(list); j++ {
				a, b := list[i], list[j]
				if a.Start < b.End && b.Start < a.End && a != b {
					t.Fatalf("core %d executed overlapping tasks %+v and %+v", core, a, b)
				}
			}
		}
	}
}

func TestParallelSpeedupOnComputeBoundDAG(t *testing.T) {
	build := func() *dag.DAG {
		d := dag.New("parallel")
		root := d.AddComputeTask("root", 1)
		for i := 0; i < 16; i++ {
			c := d.AddComputeTask("c", 10000)
			d.MustEdge(root.ID, c.ID)
		}
		return d
	}
	seq, err := RunSequential(build(), testConfig(4, 64*1024))
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	par, err := Run(build(), sched.NewPDF(), testConfig(4, 64*1024))
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	speedup := par.Speedup(seq)
	if speedup < 3.5 || speedup > 4.1 {
		t.Fatalf("speedup = %.2f, want ~4 for 4 cores on compute-bound work", speedup)
	}
	if len(par.CoreBusyCycles) != 4 {
		t.Fatalf("CoreBusyCycles length %d", len(par.CoreBusyCycles))
	}
	if par.AvgCoreUtilization() < 0.9 {
		t.Fatalf("core utilization %.2f too low for balanced compute", par.AvgCoreUtilization())
	}
}

func TestDeterminism(t *testing.T) {
	build := func() *dag.DAG {
		d := dag.New("det")
		root := d.AddComputeTask("root", 5)
		for i := 0; i < 12; i++ {
			c := d.AddTask("c", &refs.Random{Base: uint64(i) << 20, Bytes: 1 << 16, LineBytes: 64, Count: 500, Seed: uint64(i), InstrsPerRef: 3})
			d.MustEdge(root.ID, c.ID)
		}
		return d
	}
	for _, name := range sched.Names() {
		s1, _ := sched.New(name)
		s2, _ := sched.New(name)
		r1, err := Run(build(), s1, testConfig(4, 32*1024))
		if err != nil {
			t.Fatalf("%s run1: %v", name, err)
		}
		r2, err := Run(build(), s2, testConfig(4, 32*1024))
		if err != nil {
			t.Fatalf("%s run2: %v", name, err)
		}
		if r1.Cycles != r2.Cycles || r1.L2.Misses != r2.L2.Misses || r1.Mem.Fetches != r2.Mem.Fetches {
			t.Fatalf("%s: non-deterministic results: %d/%d vs %d/%d cycles/misses",
				name, r1.Cycles, r1.L2.Misses, r2.Cycles, r2.L2.Misses)
		}
	}
}

// constructiveSharingDAG builds a DAG in which the first wave of tasks all
// scan region A and the second wave all scan region B, each region sized to
// fit the shared L2 on its own but not together. PDF co-schedules tasks of
// the same wave (constructive sharing); WS mixes waves across cores.
func constructiveSharingDAG(cores int, regionBytes int64) *dag.DAG {
	d := dag.New("constructive")
	root := d.AddComputeTask("root", 1)
	const lineBytes = 64
	baseA := uint64(1) << 30
	baseB := uint64(2) << 30
	for wave, base := range []uint64{baseA, baseB} {
		for i := 0; i < cores; i++ {
			g := &refs.Scan{Base: base, Bytes: regionBytes, LineBytes: lineBytes, InstrsPerRef: 4, Passes: 2}
			task := d.AddTask("scan", g)
			task.Level = wave
			d.MustEdge(root.ID, task.ID)
		}
	}
	return d
}

func TestPDFConstructiveSharingBeatsWS(t *testing.T) {
	const cores = 4
	l2 := int64(64 * 1024)
	region := l2 * 3 / 4 // one region fits, two do not
	pdfRes, err := Run(constructiveSharingDAG(cores, region), sched.NewPDF(), testConfig(cores, l2))
	if err != nil {
		t.Fatalf("pdf: %v", err)
	}
	wsRes, err := Run(constructiveSharingDAG(cores, region), sched.NewWS(), testConfig(cores, l2))
	if err != nil {
		t.Fatalf("ws: %v", err)
	}
	if pdfRes.L2.Misses >= wsRes.L2.Misses {
		t.Fatalf("PDF should incur fewer L2 misses than WS: pdf=%d ws=%d", pdfRes.L2.Misses, wsRes.L2.Misses)
	}
	if pdfRes.Cycles >= wsRes.Cycles {
		t.Fatalf("PDF should be faster than WS: pdf=%d ws=%d cycles", pdfRes.Cycles, wsRes.Cycles)
	}
	// The per-level miss breakdown should be recorded and attributable.
	d := constructiveSharingDAG(cores, region)
	res, err := Run(d, sched.NewPDF(), testConfig(cores, l2))
	if err != nil {
		t.Fatalf("rerun: %v", err)
	}
	byLevel := res.L2MissesByLevel(d)
	if byLevel[0]+byLevel[1] <= 0 {
		t.Fatalf("per-level misses not recorded: %v", byLevel)
	}
}

func TestMemoryBandwidthUtilizationReported(t *testing.T) {
	// Streaming writes from several cores saturate the off-chip channel.
	d := dag.New("stream")
	root := d.AddComputeTask("root", 1)
	for i := 0; i < 8; i++ {
		g := &refs.Scan{Base: uint64(i) << 28, Bytes: 1 << 18, LineBytes: 64, InstrsPerRef: 1, Write: true}
		c := d.AddTask("stream", g)
		d.MustEdge(root.ID, c.ID)
	}
	res, err := Run(d, sched.NewWS(), testConfig(8, 32*1024))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.MemUtilization <= 0.5 || res.MemUtilization > 1.0 {
		t.Fatalf("MemUtilization = %.3f, want high (bandwidth-bound streaming)", res.MemUtilization)
	}
	if res.Mem.QueueCycles == 0 {
		t.Fatalf("expected queueing delay under bandwidth contention")
	}
}

func TestRunSequentialUsesOneCore(t *testing.T) {
	d := dag.New("seq")
	root := d.AddComputeTask("root", 1)
	a := d.AddComputeTask("a", 100)
	b := d.AddComputeTask("b", 100)
	d.Fork(root.ID, a.ID, b.ID)
	res, err := RunSequential(d, testConfig(8, 64*1024))
	if err != nil {
		t.Fatalf("RunSequential: %v", err)
	}
	if res.Config.Cores != 1 {
		t.Fatalf("sequential run used %d cores", res.Config.Cores)
	}
	if res.Cycles != 201 {
		t.Fatalf("Cycles = %d, want 201", res.Cycles)
	}
}

func TestSchedulerMetricsExposed(t *testing.T) {
	d := dag.New("steal")
	root := d.AddComputeTask("root", 1)
	for i := 0; i < 16; i++ {
		c := d.AddComputeTask("c", 5000)
		d.MustEdge(root.ID, c.ID)
	}
	res, err := Run(d, sched.NewWS(), testConfig(4, 64*1024))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.SchedMetrics["steals"] == 0 {
		t.Fatalf("expected steals on a 4-core fan-out, metrics=%v", res.SchedMetrics)
	}
	if res.Scheduler != "ws" {
		t.Fatalf("Scheduler = %q", res.Scheduler)
	}
}

func TestErrors(t *testing.T) {
	empty := dag.New("empty")
	if _, err := Run(empty, sched.NewPDF(), testConfig(1, 64*1024)); err == nil {
		t.Fatalf("empty DAG accepted")
	}

	d := dag.New("one")
	d.AddComputeTask("t", 10)
	bad := testConfig(0, 64*1024)
	if _, err := Run(d, sched.NewPDF(), bad); err == nil {
		t.Fatalf("invalid config accepted")
	}

	// MaxCycles exceeded.
	big := dag.New("big")
	big.AddComputeTask("t", 1_000_000)
	opts := DefaultOptions()
	opts.MaxCycles = 10
	if _, err := RunWithOptions(big, sched.NewPDF(), testConfig(1, 64*1024), opts); err == nil {
		t.Fatalf("MaxCycles not enforced")
	}

	// Invalid DAG rejected when validation enabled.
	inv := dag.New("invalid")
	a := inv.AddComputeTask("a", 1)
	b := inv.AddComputeTask("b", 1)
	inv.Task(b.ID).Succs = append(inv.Task(b.ID).Succs, a.ID)
	inv.Task(a.ID).Preds = append(inv.Task(a.ID).Preds, b.ID)
	if _, err := Run(inv, sched.NewPDF(), testConfig(1, 64*1024)); err == nil {
		t.Fatalf("invalid DAG accepted")
	}
}

func TestResultMetricHelpers(t *testing.T) {
	r := &Result{Instructions: 2000, L2: cache.Stats{Misses: 3}}
	if got := r.L2MissesPerKiloInstr(); got != 1.5 {
		t.Fatalf("L2MissesPerKiloInstr = %f, want 1.5", got)
	}
	empty := &Result{}
	if empty.L2MissesPerKiloInstr() != 0 || empty.AvgCoreUtilization() != 0 || empty.Speedup(r) != 0 {
		t.Fatalf("zero-value metric helpers should return 0")
	}
}

func TestTaskStatsOptional(t *testing.T) {
	d := dag.New("opt")
	d.AddComputeTask("t", 10)
	opts := DefaultOptions()
	opts.RecordTaskStats = false
	res, err := RunWithOptions(d, sched.NewPDF(), testConfig(1, 64*1024), opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.TaskStats != nil {
		t.Fatalf("TaskStats should be nil when not recorded")
	}
	if len(res.L2MissesByLevel(d)) != 0 {
		t.Fatalf("L2MissesByLevel should be empty without TaskStats")
	}
}
