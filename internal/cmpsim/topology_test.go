package cmpsim

import (
	"reflect"
	"testing"

	"cmpsched/internal/cache"
	"cmpsched/internal/config"
	"cmpsched/internal/sched"
	"cmpsched/internal/workload"
)

// goldenCfg is the configuration the pre-topology golden numbers below were
// captured on: Table 2's 8-core machine at capacity scale 32*16.
func goldenCfg(t *testing.T) config.CMP {
	t.Helper()
	return config.MustDefault(8).Scaled(config.DefaultScale * 16)
}

func goldenMergesort(t *testing.T) *workload.MergesortConfig {
	t.Helper()
	return &workload.MergesortConfig{Elements: 1 << 14, TaskWorkingSetBytes: 2 << 10}
}

// TestSharedTopologyGoldenRegression pins the shared topology to the exact
// pre-refactor simulator output (captured on the commit before the topology
// layer was introduced).  Any cycle-level drift in the shared path is a
// regression: the topology generalisation must be invisible at k = P.
func TestSharedTopologyGoldenRegression(t *testing.T) {
	cfg := goldenCfg(t)
	golden := []struct {
		sched          string
		cycles         int64
		l2Miss, l1Miss int64
		fetches, wb    int64
		queue          int64
	}{
		{"pdf", 786278, 8113, 18175, 8113, 3559, 464047},
		{"ws", 872898, 9935, 18048, 9935, 3515, 614140},
	}
	for _, g := range golden {
		d, _, err := workload.NewMergesort(*goldenMergesort(t)).Build()
		if err != nil {
			t.Fatal(err)
		}
		s, err := sched.New(g.sched)
		if err != nil {
			t.Fatal(err)
		}
		r, err := Run(d, s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if r.Cycles != g.cycles || r.L2.Misses != g.l2Miss || r.L1.Misses != g.l1Miss ||
			r.Mem.Fetches != g.fetches || r.Mem.Writebacks != g.wb || r.Mem.QueueCycles != g.queue {
			t.Errorf("%s: got cycles=%d l2miss=%d l1miss=%d fetches=%d wb=%d queue=%d, want %+v",
				g.sched, r.Cycles, r.L2.Misses, r.L1.Misses, r.Mem.Fetches, r.Mem.Writebacks, r.Mem.QueueCycles, g)
		}
	}
}

// TestZeroTopologyEqualsExplicitShared checks that the zero-value topology
// and an explicit shared topology produce identical results.
func TestZeroTopologyEqualsExplicitShared(t *testing.T) {
	base := goldenCfg(t)
	shared := base.WithTopology(cache.Shared())
	var results []*Result
	for _, cfg := range []config.CMP{base, shared} {
		d, _, err := workload.NewMergesort(*goldenMergesort(t)).Build()
		if err != nil {
			t.Fatal(err)
		}
		r, err := Run(d, sched.NewPDF(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		r.Config = config.CMP{} // names differ only if topology was recorded
		results = append(results, r)
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Errorf("zero-value topology result differs from explicit shared:\n%+v\nvs\n%+v", results[0], results[1])
	}
}

// TestTopologySliceAccounting checks the per-slice bookkeeping invariants on
// every topology: slice stats sum to the aggregate, port stats sum to the
// chip-level memory stats, and the slice count matches the topology.
func TestTopologySliceAccounting(t *testing.T) {
	for _, topo := range []cache.Topology{
		cache.Shared(), cache.Private(), cache.Clustered(2), cache.Clustered(4), cache.Clustered(3),
	} {
		t.Run(topo.String(), func(t *testing.T) {
			cfg := goldenCfg(t).WithTopology(topo)
			d, _, err := workload.NewMergesort(*goldenMergesort(t)).Build()
			if err != nil {
				t.Fatal(err)
			}
			r, err := Run(d, sched.NewPDF(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if want := topo.Slices(cfg.Cores); len(r.L2Slices) != want || len(r.MemPorts) != want {
				t.Fatalf("got %d L2 slice stats and %d mem ports, want %d", len(r.L2Slices), len(r.MemPorts), want)
			}
			var l2 cache.Stats
			for _, s := range r.L2Slices {
				l2.Add(s)
			}
			if l2 != r.L2 {
				t.Errorf("per-slice L2 stats sum %+v != aggregate %+v", l2, r.L2)
			}
			var fetches, wbs, queue, busy int64
			for _, p := range r.MemPorts {
				fetches += p.Fetches
				wbs += p.Writebacks
				queue += p.QueueCycles
				busy += p.BusyCycles
			}
			if fetches != r.Mem.Fetches || wbs != r.Mem.Writebacks || queue != r.Mem.QueueCycles || busy != r.Mem.BusyCycles {
				t.Errorf("port stats sum (f=%d wb=%d q=%d b=%d) != chip-level %+v", fetches, wbs, queue, busy, r.Mem)
			}
		})
	}
}

// TestPrivateTopologyIncreasesMisses checks the capacity consequence the
// topology exists to model: splitting the L2 into per-core slices must not
// decrease misses for a working set that exceeds one slice, and the gap
// between PDF and WS misses must shrink (relative to WS) when sharing is
// impossible — the paper's central shared-vs-private claim.
func TestPrivateTopologyIncreasesMisses(t *testing.T) {
	miss := func(topo cache.Topology, s sched.Scheduler) int64 {
		d, _, err := workload.NewMergesort(*goldenMergesort(t)).Build()
		if err != nil {
			t.Fatal(err)
		}
		r, err := Run(d, s, goldenCfg(t).WithTopology(topo))
		if err != nil {
			t.Fatal(err)
		}
		return r.L2.Misses
	}
	sharedPDF := miss(cache.Shared(), sched.NewPDF())
	privatePDF := miss(cache.Private(), sched.NewPDF())
	if privatePDF < sharedPDF {
		t.Errorf("private L2 slices produced fewer PDF misses (%d) than the shared L2 (%d)", privatePDF, sharedPDF)
	}
}
