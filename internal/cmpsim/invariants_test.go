package cmpsim

import (
	"testing"

	"cmpsched/internal/config"
	"cmpsched/internal/sched"
	"cmpsched/internal/workload"
)

// Cross-scheduler invariants on a real workload: every scheduler executes
// every task exactly once, misses never drop below the sequential cold-miss
// floor of the trace, and the greedy schedules respect dependences.
func TestSchedulerInvariantsOnMergesort(t *testing.T) {
	build := func() *workload.Mergesort {
		return workload.NewMergesort(workload.MergesortConfig{Elements: 1 << 14, TaskWorkingSetBytes: 4 << 10})
	}
	cfg := config.MustDefault(4).Scaled(config.DefaultScale * 16)

	d, _, err := build().Build()
	if err != nil {
		t.Fatal(err)
	}
	seq, err := RunSequential(d, cfg)
	if err != nil {
		t.Fatal(err)
	}

	for _, name := range sched.Names() {
		d, _, err := build().Build()
		if err != nil {
			t.Fatal(err)
		}
		s, _ := sched.New(name)
		res, err := Run(d, s, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.TasksExecuted != d.NumTasks() {
			t.Fatalf("%s executed %d of %d tasks", name, res.TasksExecuted, d.NumTasks())
		}
		if res.Instructions != seq.Instructions || res.Refs != seq.Refs {
			t.Fatalf("%s: work changed relative to sequential run", name)
		}
		// A parallel greedy schedule can never beat the sum of work
		// divided by cores, and never exceeds the sequential time.
		if res.Cycles > seq.Cycles {
			t.Fatalf("%s: parallel run slower than sequential: %d > %d", name, res.Cycles, seq.Cycles)
		}
		if res.Cycles*int64(cfg.Cores) < seq.Instructions {
			t.Fatalf("%s: parallel run faster than the work bound", name)
		}
		// Cold misses are unavoidable: the trace touches a fixed set of
		// distinct lines, and every scheduler must miss at least once per
		// distinct line in the shared L2.
		if res.L2.Misses < seq.L2.Misses/4 {
			t.Fatalf("%s: implausibly few L2 misses (%d vs sequential %d)", name, res.L2.Misses, seq.L2.Misses)
		}
		// Dependences respected.
		for _, task := range d.Tasks() {
			for _, p := range task.Preds {
				if res.TaskStats[task.ID].Start < res.TaskStats[p].End {
					t.Fatalf("%s: dependence violated for task %d", name, task.ID)
				}
			}
		}
	}
}

// PDF on a single core reproduces the sequential schedule exactly.
func TestPDFOnOneCoreMatchesSequential(t *testing.T) {
	d, _, err := workload.NewMergesort(workload.MergesortConfig{Elements: 1 << 13, TaskWorkingSetBytes: 4 << 10}).Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.MustDefault(8).Scaled(config.DefaultScale * 16)
	seq, err := RunSequential(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	one := cfg
	one.Cores = 1
	d2, _, err := workload.NewMergesort(workload.MergesortConfig{Elements: 1 << 13, TaskWorkingSetBytes: 4 << 10}).Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(d2, sched.NewPDF(), one)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != seq.Cycles || res.L2.Misses != seq.L2.Misses {
		t.Fatalf("PDF on one core differs from the sequential baseline: %d/%d vs %d/%d cycles/misses",
			res.Cycles, res.L2.Misses, seq.Cycles, seq.L2.Misses)
	}
	// WS on one core is also a valid sequential execution (it may visit
	// tasks in a different depth-first order but does the same work).
	d3, _, err := workload.NewMergesort(workload.MergesortConfig{Elements: 1 << 13, TaskWorkingSetBytes: 4 << 10}).Build()
	if err != nil {
		t.Fatal(err)
	}
	ws, err := Run(d3, sched.NewWS(), one)
	if err != nil {
		t.Fatal(err)
	}
	if ws.Instructions != seq.Instructions {
		t.Fatalf("WS on one core changed the work")
	}
}

// The FIFO ablation scheduler also produces a correct (if cache-oblivious)
// schedule on every workload.
func TestFIFOCompletesAllWorkloads(t *testing.T) {
	cfg := config.MustDefault(4).Scaled(config.DefaultScale * 16)
	for _, name := range workload.Names() {
		var d interface {
			NumTasks() int
		}
		w, err := workload.New(name)
		if err != nil {
			t.Fatal(err)
		}
		full, _, err := w.Build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if full.NumTasks() > 3000 {
			// Keep the test quick: skip the largest default inputs, the
			// per-workload packages cover them.
			continue
		}
		res, err := Run(full, sched.NewFIFO(), cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.TasksExecuted != full.NumTasks() {
			t.Fatalf("%s: FIFO executed %d of %d tasks", name, res.TasksExecuted, full.NumTasks())
		}
		d = full
		_ = d
	}
}
