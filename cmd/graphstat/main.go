// Command graphstat builds one generated graph instance in both host
// representations and reports their memory footprints side by side: flat CSR
// (int64 offsets + int32 edges) versus the Ligra+-style byte-compressed CSR
// (varint-delta neighbour lists with per-vertex byte offsets).  This is the
// tool behind the bytes/edge numbers in EXPERIMENTS.md.
//
// Usage:
//
//	graphstat -family rmat -vertices 22 -degree 8          # 2^22-vertex RMAT
//	graphstat -family uniform -vertices 16 -simulate bfs   # plus a simulated run
//
// -vertices is a log2 exponent, matching how the experiment harness scales
// inputs.  With -simulate the named kernel builds its DAG over both
// representations and the two task counts and total simulated references are
// compared — a cheap end-to-end check that the compressed walk emits the
// same trace shape outside the test suite.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"cmpsched/internal/dag"
	"cmpsched/internal/graph"
)

func main() {
	var (
		family   = flag.String("family", "rmat", "graph family: "+strings.Join(graph.Families(), ", "))
		logV     = flag.Int("vertices", 22, "log2 of the vertex count")
		degree   = flag.Int64("degree", 8, "average degree")
		seed     = flag.Uint64("seed", 1, "generator seed")
		simulate = flag.String("simulate", "", "also build this kernel's DAG over both representations: bfs, connectivity, kcore, mis or matching")
	)
	flag.Parse()

	if *logV < 1 || *logV > 30 {
		fatalf("-vertices must be a log2 exponent in [1, 30], got %d", *logV)
	}
	cfg := graph.Config{Family: *family, Vertices: 1 << *logV, AvgDegree: *degree, Seed: *seed}

	start := time.Now()
	g, err := graph.New(cfg)
	if err != nil {
		fatalf("build: %v", err)
	}
	buildTime := time.Since(start)

	start = time.Now()
	c, err := graph.Compress(g)
	if err != nil {
		fatalf("compress: %v", err)
	}
	compressTime := time.Since(start)

	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)

	fmt.Printf("instance      %s\n", g.GraphName())
	fmt.Printf("vertices      %d (2^%d)\n", g.NumVertices(), *logV)
	fmt.Printf("edge slots    %d\n", g.NumEdges())
	fmt.Printf("build         %.2fs generate, %.2fs compress (roundtrip-verified)\n",
		buildTime.Seconds(), compressTime.Seconds())
	fmt.Printf("heap in use   %.1f MiB\n", float64(mem.HeapInuse)/(1<<20))
	fmt.Println()
	fmt.Printf("%-12s %14s %10s %8s\n", "repr", "bytes", "MiB", "B/edge")
	for _, r := range []graph.Graph{g, c} {
		fmt.Printf("%-12s %14d %10.1f %8.2f\n",
			r.Repr(), r.SizeBytes(), float64(r.SizeBytes())/(1<<20), graph.BytesPerEdge(r))
	}
	fmt.Printf("\ncompressed/flat: %.1f%% of the bytes (%.2fx smaller)\n",
		100*float64(c.SizeBytes())/float64(g.SizeBytes()),
		float64(g.SizeBytes())/float64(c.SizeBytes()))

	if *simulate != "" {
		df, err := buildKernel(*simulate, g)
		if err != nil {
			fatalf("%v", err)
		}
		dc, err := buildKernel(*simulate, c)
		if err != nil {
			fatalf("%v", err)
		}
		fs, cs := df.ComputeStats(), dc.ComputeStats()
		fmt.Printf("\n%s DAG        flat: %d tasks, %d refs; compressed: %d tasks, %d refs\n",
			*simulate, df.NumTasks(), fs.TotalRefs, dc.NumTasks(), cs.TotalRefs)
		if df.NumTasks() != dc.NumTasks() || fs.TotalRefs != cs.TotalRefs {
			fatalf("representations disagree: the traces must be identical")
		}
		fmt.Println("traces agree: task counts and reference totals identical")
	}
}

// buildKernel builds the named kernel's DAG over g with default costs.
func buildKernel(name string, g graph.Graph) (*dag.DAG, error) {
	switch name {
	case "bfs":
		d, _, err := graph.BFS(g, 0, graph.Costs{})
		return d, err
	case "connectivity":
		d, _, _, err := graph.Connectivity(g, 1, graph.Costs{})
		return d, err
	case "kcore":
		d, _, _, err := graph.KCore(g, graph.Costs{})
		return d, err
	case "mis":
		d, _, _, err := graph.MIS(g, 1, graph.Costs{})
		return d, err
	case "matching":
		d, _, _, err := graph.MaximalMatching(g, 1, graph.Costs{})
		return d, err
	default:
		return nil, fmt.Errorf("unknown kernel %q (want bfs, connectivity, kcore, mis or matching)", name)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "graphstat: "+format+"\n", args...)
	os.Exit(1)
}
