// Command doccheck is the repository's documentation gate: it fails when a
// scanned package lacks a package comment or exports an identifier without
// a doc comment.  It is a vendored-free, go/ast-based stand-in for the
// "exported" rules of golint/revive, run by `make doc-check` (and CI) over
// the public facade and internal/sched.
//
// Usage:
//
//	doccheck [-q] DIR...
//
// Rules per scanned package:
//
//   - some file must carry a package comment ("// Package foo ...");
//   - every exported function and method needs a doc comment;
//   - every exported type needs a doc comment on its spec, or on the
//     declaration when it declares that type alone;
//   - exported consts and vars need a doc comment on their spec or on the
//     enclosing block (one comment may document a const/var block).
//
// Findings are printed as file:line: identifier diagnostics; the exit code
// is 1 when any finding exists, so the check can gate CI.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strings"
)

func main() {
	quiet := flag.Bool("q", false, "suppress the per-package summary, print findings only")
	flag.Parse()
	dirs := flag.Args()
	if len(dirs) == 0 {
		fmt.Fprintln(os.Stderr, "usage: doccheck [-q] DIR...")
		os.Exit(2)
	}
	total := 0
	for _, dir := range dirs {
		findings, err := checkDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %s: %v\n", dir, err)
			os.Exit(2)
		}
		for _, f := range findings {
			fmt.Println(f)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "doccheck: %s: %d finding(s)\n", dir, len(findings))
		}
		total += len(findings)
	}
	if total > 0 {
		os.Exit(1)
	}
}

// checkDir parses the non-test Go files of dir and returns one diagnostic
// per rule violation, sorted by position.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var findings []string
	for name, pkg := range pkgs {
		if strings.HasSuffix(name, "_test") {
			continue
		}
		findings = append(findings, checkPackage(fset, dir, pkg)...)
	}
	sort.Strings(findings)
	return findings, nil
}

// checkPackage applies the documentation rules to one parsed package.
func checkPackage(fset *token.FileSet, dir string, pkg *ast.Package) []string {
	var findings []string
	hasPkgDoc := false
	for _, file := range pkg.Files {
		if file.Doc != nil {
			hasPkgDoc = true
		}
		findings = append(findings, checkFile(fset, file)...)
	}
	if !hasPkgDoc {
		findings = append(findings, fmt.Sprintf("%s: package %s has no package comment", dir, pkg.Name))
	}
	return findings
}

// checkFile reports the file's exported declarations that lack docs.
func checkFile(fset *token.FileSet, file *ast.File) []string {
	var findings []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		findings = append(findings, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc == nil {
				kind := "function"
				if d.Recv != nil {
					kind = "method"
				}
				report(d.Pos(), kind, d.Name.Name)
			}
		case *ast.GenDecl:
			switch d.Tok {
			case token.TYPE:
				for _, spec := range d.Specs {
					ts := spec.(*ast.TypeSpec)
					if !ts.Name.IsExported() {
						continue
					}
					// The declaration comment covers a type it declares
					// alone; specs in a grouped block document themselves.
					if ts.Doc == nil && !(len(d.Specs) == 1 && d.Doc != nil) {
						report(ts.Pos(), "type", ts.Name.Name)
					}
				}
			case token.CONST, token.VAR:
				kind := "const"
				if d.Tok == token.VAR {
					kind = "var"
				}
				for _, spec := range d.Specs {
					vs := spec.(*ast.ValueSpec)
					for _, n := range vs.Names {
						if n.IsExported() && vs.Doc == nil && d.Doc == nil {
							report(n.Pos(), kind, n.Name)
						}
					}
				}
			}
		}
	}
	return findings
}
