package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writePkg drops a one-file package into its own temp directory.
func writePkg(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestCleanPackagePasses(t *testing.T) {
	dir := writePkg(t, `// Package p is documented.
package p

// Exported is documented.
func Exported() {}

// T is documented.
type T struct{}

// M is documented.
func (T) M() {}

// Block comment covers the const block.
const (
	A = 1
	B = 2
)

func unexported() {}

type hidden struct{}
`)
	findings, err := checkDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("clean package flagged: %v", findings)
	}
}

func TestMissingDocsAreFlagged(t *testing.T) {
	dir := writePkg(t, `package p

func Exported() {}

type (
	// Documented is fine.
	Documented struct{}
	Undocumented struct{}
)

func (Documented) Method() {}

var V = 1
`)
	findings, err := checkDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	wants := []string{
		"package p has no package comment",
		"exported function Exported",
		"exported type Undocumented",
		"exported method Method",
		"exported var V",
	}
	for _, want := range wants {
		found := false
		for _, f := range findings {
			if strings.Contains(f, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("findings missing %q: %v", want, findings)
		}
	}
	if len(findings) != len(wants) {
		t.Errorf("got %d findings, want %d: %v", len(findings), len(wants), findings)
	}
	for _, f := range findings {
		if strings.Contains(f, "Documented") {
			t.Errorf("documented identifier flagged: %s", f)
		}
	}
}

func TestSingleTypeDeclDocCounts(t *testing.T) {
	dir := writePkg(t, `// Package p is documented.
package p

// T is documented on the declaration, not the spec.
type T struct{}
`)
	findings, err := checkDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("single documented type flagged: %v", findings)
	}
}

func TestTestFilesAreIgnored(t *testing.T) {
	dir := writePkg(t, `// Package p is documented.
package p
`)
	if err := os.WriteFile(filepath.Join(dir, "p_test.go"), []byte(`package p

func TestExportedHelper(t *testing.T) {}
`), 0o644); err != nil {
		t.Fatal(err)
	}
	findings, err := checkDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("test file contents flagged: %v", findings)
	}
}
