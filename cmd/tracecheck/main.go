// Command tracecheck validates a Chrome trace-event JSON file against the
// schema cmpsim's -trace flag emits: well-formed trace-event objects, nested
// B/E duration slices per core row, thread-scoped instants, and at least one
// event per required task-lifecycle stage.  It is the observability
// equivalent of cmd/doccheck — a dependency-free Go checker that CI runs on
// a freshly produced trace — and exits non-zero with the first violation.
//
// Usage:
//
//	cmpsim -workload mergesort -sched ws -trace trace.json
//	tracecheck trace.json
//	tracecheck -require spawn,ready,run,finish,steal trace.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cmpsched/internal/obs"
)

func main() {
	require := flag.String("require", "spawn,ready,run,finish",
		"comma-separated lifecycle stages that must each appear at least once (spawn, ready, run, finish, steal, migrate, pin)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-require stages] trace.json")
		os.Exit(2)
	}
	path := flag.Arg(0)

	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var stages []string
	for _, s := range strings.Split(*require, ",") {
		if s = strings.TrimSpace(s); s != "" {
			stages = append(stages, s)
		}
	}
	if err := obs.ValidateChromeTrace(data, stages); err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	fmt.Printf("tracecheck: %s is a valid trace (stages %s present)\n", path, strings.Join(stages, ", "))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracecheck:", err)
	os.Exit(1)
}
