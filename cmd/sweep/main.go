// Command sweep runs arbitrary design-space sweeps on the parallel sweep
// engine: the cross product of workloads, schedulers and CMP configurations,
// simulated concurrently with deterministic output ordering and an optional
// on-disk result cache.
//
// Usage:
//
//	sweep -list                                         # discover every axis value
//	sweep -workloads mergesort,hashjoin                 # PDF vs WS, Table 2
//	sweep -workloads bfs,sssp,pagerank,triangles        # irregular graph kernels
//	sweep -workloads connectivity,kcore,mis,matching    # GBBS-parity suite
//	sweep -workloads bfs -graph-repr compressed         # byte-compressed CSR host storage
//	sweep -tables 45nm -cores 2,8,18,26 -quick          # a Figure 3 slice
//	sweep -topology shared,private,clustered:4 -quick   # cache-topology axis
//	sweep -schedulers pdf,ws,ws:nearest,sb -quick       # scheduler-registry axis
//	sweep -workloads lu -seq -format csv -o lu.csv      # with speedup baseline
//	sweep -cache-dir .sweep-cache -workloads mergesort  # re-runs are instant
//
// -list reflects the live registries: workloads and schedulers registered
// at run time (including parameterised spellings such as "ws:nearest")
// appear in deterministically sorted order.
//
// Workload inputs are sized exactly as the experiment harness sizes them
// (internal/experiments), so sweep points are comparable to figure points;
// results stream to a summary table, CSV or JSON as they complete.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"cmpsched/internal/config"
	"cmpsched/internal/experiments"
	"cmpsched/internal/obs"
	"cmpsched/internal/pprofio"
	"cmpsched/internal/sched"
	"cmpsched/internal/stats"
	"cmpsched/internal/sweep"
	"cmpsched/internal/workload"
)

func main() {
	var (
		workloads  = flag.String("workloads", "mergesort,hashjoin,lu", "comma-separated workloads: "+strings.Join(workload.Names(), ", "))
		schedulers = flag.String("schedulers", "pdf,ws", "comma-separated schedulers: "+strings.Join(sched.Names(), ", "))
		list       = flag.Bool("list", false, "print the available workloads, schedulers, topologies and configuration tables, then exit")
		tables     = flag.String("tables", sweep.TableDefault, "configuration tables: default (Table 2), 45nm (Table 3)")
		topology   = flag.String("topology", "shared", "comma-separated cache topologies: shared, private, clustered:<k>")
		cores      = flag.String("cores", "", "comma-separated core counts (empty = all the tables define)")
		scale      = flag.Int64("scale", config.DefaultScale, "capacity scale factor relative to the paper's configurations")
		quick      = flag.Bool("quick", false, "use reduced inputs (seconds instead of minutes)")
		graphRepr  = flag.String("graph-repr", "", "host representation for graph kernels: flat or compressed (empty = flat); the simulated trace is identical either way")
		seq        = flag.Bool("seq", false, "also run the sequential baseline per point")
		workers    = flag.Int("workers", 0, "max concurrent simulations (0 = one per host CPU, 1 = serial)")
		cacheDir   = flag.String("cache-dir", "", "directory for the persistent result cache (empty = in-memory only)")
		format     = flag.String("format", "table", "output format: table, csv or json")
		out        = flag.String("o", "", "output file (empty = stdout)")
		verbose    = flag.Bool("v", false, "log each completed job and print the metrics snapshot as a sorted key=value table at exit")
		progress   = flag.Bool("progress", false, "show a live progress line on stderr (done/total, cache hits, ETA)")
		metricsOut = flag.String("metrics-json", "", "write an expvar-style JSON metrics snapshot to this file at exit")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	if *list {
		printAvailable(os.Stdout)
		return
	}

	flush, err := pprofio.Start(*cpuProfile, *memProfile)
	if err != nil {
		fatalf("%v", err)
	}
	flushProfiles = flush
	defer flushProfiles()

	switch *format {
	case "table", "csv", "json":
	default:
		fatalf("unknown format %q (want table, csv or json)", *format)
	}

	spec := sweep.Spec{
		Workloads:  splitList(*workloads),
		Schedulers: splitList(*schedulers),
		Tables:     splitList(*tables),
		Topologies: splitList(*topology),
		Scale:      *scale,
		Quick:      *quick,
		Sequential: *seq,
		Factory:    experiments.Options{Scale: *scale, Quick: *quick, GraphRepr: *graphRepr}.WorkloadFactory(),
	}
	if spec.Cores, err = parseInts(*cores); err != nil {
		fatalf("bad -cores: %v", err)
	}
	jobs, err := spec.Jobs()
	if err != nil {
		fatalf("%v", err)
	}

	var cache sweep.Cache
	if *cacheDir != "" {
		if cache, err = sweep.NewDiskCache(*cacheDir); err != nil {
			fatalf("%v", err)
		}
	}
	var reg *obs.Registry
	if *verbose || *metricsOut != "" {
		reg = obs.NewRegistry()
	}
	engine := sweep.NewEngine(sweep.EngineOptions{Workers: *workers, Cache: cache, Metrics: reg})

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		w = f
	}

	// The summary aggregation and progress log stream as jobs complete;
	// the exported output is always written from the ordered result slice
	// so it is deterministic regardless of worker count.
	agg := sweep.NewAggregator()
	done := 0
	start := time.Now()
	var prog *obs.Progress
	if *progress {
		prog = obs.NewProgress(os.Stderr, "sweep", len(jobs))
	}
	onResult := func(i int, r sweep.Result) {
		agg.Add(r)
		done++
		if *verbose {
			fmt.Fprintf(os.Stderr, "sweep: [%d/%d] %s on %s: %d cycles%s\n",
				done, len(jobs), r.Key, r.Sim.Config.Name, r.Sim.Cycles, cachedTag(r))
		}
		prog.Step(r.Cached)
	}
	// Ctrl-C stops admitting new jobs but flushes every completed row: the
	// exporters below run on the partial result slice (they skip unfilled
	// rows), so an interrupted overnight sweep still yields its finished
	// points.  A second interrupt kills the process immediately.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSignals()
	interrupted := false
	results, err := engine.RunStreamContext(ctx, jobs, onResult)
	prog.Finish()
	if err != nil {
		if !errors.Is(err, context.Canceled) {
			fatalf("%v", err)
		}
		interrupted = true
		fmt.Fprintf(os.Stderr, "sweep: interrupted; writing the %d completed rows\n", done)
	}
	elapsed := time.Since(start)

	switch *format {
	case "csv":
		if err := sweep.WriteCSV(w, results); err != nil {
			fatalf("write csv: %v", err)
		}
	case "json":
		if err := sweep.WriteJSON(w, results); err != nil {
			fatalf("write json: %v", err)
		}
	case "table":
		printTables(w, results)
	}

	if *verbose || *format == "table" {
		printSummary(os.Stderr, agg, engine, cache, len(jobs), elapsed)
	}
	if *verbose {
		fmt.Fprintln(os.Stderr, "\nmetrics:")
		if err := reg.WriteTable(os.Stderr); err != nil {
			fatalf("write metrics: %v", err)
		}
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fatalf("%v", err)
		}
		if err := reg.WriteJSON(f); err != nil {
			f.Close()
			fatalf("write metrics json: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("%v", err)
		}
	}
	if interrupted {
		flushProfiles()
		os.Exit(130)
	}
}

// printAvailable lists every axis value a sweep spec accepts (-list).  Both
// name lists come straight from the live registries (workload.Names,
// sched.Names), already deterministically sorted, so late registrations and
// parameterised scheduler spellings show up without CLI changes.
func printAvailable(w *os.File) {
	fmt.Fprintf(w, "workloads:  %s\n", strings.Join(workload.Names(), ", "))
	fmt.Fprintf(w, "schedulers: %s (plus the %q baseline via -seq)\n",
		strings.Join(sched.Names(), ", "), sweep.Sequential)
	fmt.Fprintf(w, "topologies: shared, private, clustered:<cores-per-slice>\n")
	fmt.Fprintf(w, "tables:     %s (Table 2), %s (Table 3)\n", sweep.TableDefault, sweep.Table45nm)
}

func cachedTag(r sweep.Result) string {
	if r.Cached {
		return " (cached)"
	}
	return ""
}

// printTables renders every result as one aligned row.
func printTables(w *os.File, results []sweep.Result) {
	t := stats.NewTable("workload", "sched", "config", "topology", "cores", "cycles", "L2 misses/Ki", "mem util %", "cached")
	for _, r := range results {
		t.AddRow(
			r.Key.Workload, r.Key.Scheduler, r.Sim.Config.Name,
			r.Sim.Config.Topology.String(),
			strconv.Itoa(r.Sim.Config.Cores),
			strconv.FormatInt(r.Sim.Cycles, 10),
			fmt.Sprintf("%.3f", r.Sim.L2MissesPerKiloInstr()),
			fmt.Sprintf("%.1f", r.Sim.MemUtilization*100),
			strconv.FormatBool(r.Cached),
		)
	}
	fmt.Fprint(w, t.String())
}

// printSummary reports the per-series aggregate and engine statistics.
func printSummary(w *os.File, agg *sweep.Aggregator, engine *sweep.Engine, cache sweep.Cache, jobs int, elapsed time.Duration) {
	t := stats.NewTable("workload", "sched", "runs", "cache hits", "best config", "best cycles", "mean mem util %")
	for _, row := range agg.Rows() {
		t.AddRow(
			row.Workload, row.Scheduler,
			strconv.Itoa(row.Runs), strconv.Itoa(row.CacheHits),
			row.BestConfig, strconv.FormatInt(row.BestCycles, 10),
			fmt.Sprintf("%.1f", row.MeanMemUtil*100),
		)
	}
	fmt.Fprintf(w, "\n%s", t.String())
	fmt.Fprintf(w, "%d jobs on %d workers in %.2fs", jobs, engine.Workers(), elapsed.Seconds())
	if cache != nil {
		hits, misses := cache.Stats()
		fmt.Fprintf(w, "; cache: %d hits, %d misses", hits, misses)
	}
	fmt.Fprintln(w)
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range splitList(s) {
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// flushProfiles is pprofio.Start's idempotent flush; fatalf must run it
// before os.Exit (which skips defers) so failed sweeps still leave
// parseable profiles.
var flushProfiles = func() {}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sweep: "+format+"\n", args...)
	flushProfiles()
	os.Exit(1)
}
